// Tests for the concurrent batched inference subsystem (src/serve):
// thread pool semantics, batcher flush policy, batched-vs-sequential
// output equivalence, concurrent submission, and model-registry
// caching / LRU eviction.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <future>
#include <thread>

#include "laco/model_zoo.hpp"
#include "nn/ops.hpp"
#include "serve/batcher.hpp"
#include "serve/model_registry.hpp"
#include "serve/service.hpp"
#include "util/thread_pool.hpp"

namespace laco {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- fixtures

std::shared_ptr<const LacoModels> tiny_models(LacoScheme scheme, unsigned seed = 900) {
  auto models = std::make_shared<LacoModels>();
  models->scheme = scheme;
  CongestionFcnConfig fc;
  fc.in_channels = f_in_channels(scheme);
  fc.base_width = 4;
  nn::reset_init_seed(seed);
  models->congestion = std::make_shared<CongestionFcn>(fc);
  if (traits_of(scheme).uses_lookahead) {
    LookAheadConfig gc;
    gc.frames = 3;
    gc.channels_per_frame = g_channels(scheme);
    gc.base_width = 8;
    gc.inception_blocks = 1;
    gc.with_vae = traits_of(scheme).uses_vae;
    models->lookahead = std::make_shared<LookAheadModel>(gc);
  }
  for (nn::Tensor p : models->congestion->parameters()) p.set_requires_grad(false);
  if (models->lookahead) {
    for (nn::Tensor p : models->lookahead->parameters()) p.set_requires_grad(false);
  }
  return models;
}

nn::Tensor random_input(int channels, int hw, unsigned seed) {
  nn::Tensor t = nn::Tensor::zeros({1, channels, hw, hw});
  unsigned state = seed * 2654435761u + 1u;
  for (float& v : t.data()) {
    state = state * 1664525u + 1013904223u;
    v = static_cast<float>(state >> 8) / static_cast<float>(1u << 24);
  }
  return t;
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4, 64);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.submit([&count] { count.fetch_add(1); }));
  }
  pool.shutdown();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, TrySubmitRespectsCapacity) {
  ThreadPool pool(1, 1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> done{0};
  // Occupy the single worker, then fill the 1-slot queue.
  ASSERT_TRUE(pool.submit([gate, &done] {
    gate.wait();
    done.fetch_add(1);
  }));
  // Give the worker a moment to dequeue the blocking task.
  while (pool.queue_depth() > 0) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(pool.try_submit([&done] { done.fetch_add(1); }));
  EXPECT_FALSE(pool.try_submit([&done] { done.fetch_add(1); }));  // queue full
  release.set_value();
  pool.shutdown();
  EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPool, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2, 8);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
  EXPECT_FALSE(pool.try_submit([] {}));
}

// ---------------------------------------------------------------- Batcher

serve::BatchItem make_item(std::shared_ptr<const LacoModels> models, nn::Tensor input,
                           serve::ModelKind kind = serve::ModelKind::kCongestion) {
  serve::BatchItem item;
  item.models = std::move(models);
  item.kind = kind;
  item.input = std::move(input);
  item.enqueue_time = std::chrono::steady_clock::now();
  return item;
}

TEST(Batcher, SizeTriggerCutsFullBatch) {
  serve::Batcher batcher({/*max_batch=*/4, /*max_linger_ms=*/1e9});
  const auto models = tiny_models(LacoScheme::kDreamCong);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(batcher.add(make_item(models, random_input(3, 8, i))).has_value());
  }
  EXPECT_EQ(batcher.pending(), 3u);
  auto batch = batcher.add(make_item(models, random_input(3, 8, 3)));
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->items.size(), 4u);
  EXPECT_EQ(batcher.pending(), 0u);
}

TEST(Batcher, TimeTriggerFlushesAgedBucket) {
  serve::Batcher batcher({/*max_batch=*/8, /*max_linger_ms=*/5.0});
  const auto models = tiny_models(LacoScheme::kDreamCong);
  EXPECT_FALSE(batcher.add(make_item(models, random_input(3, 8, 0))).has_value());
  // Not yet lingered: nothing due.
  EXPECT_TRUE(batcher.flush_due(std::chrono::steady_clock::now()).empty());
  EXPECT_EQ(batcher.pending(), 1u);
  // 6 ms in the future the lone request is overdue.
  auto due = batcher.flush_due(std::chrono::steady_clock::now() + 6ms);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].items.size(), 1u);
  EXPECT_EQ(batcher.pending(), 0u);
}

TEST(Batcher, DistinctShapesNeverShareABatch) {
  serve::Batcher batcher({/*max_batch=*/2, /*max_linger_ms=*/1e9});
  const auto models = tiny_models(LacoScheme::kDreamCong);
  EXPECT_FALSE(batcher.add(make_item(models, random_input(3, 8, 0))).has_value());
  // Same model, different H×W: separate bucket.
  EXPECT_FALSE(batcher.add(make_item(models, random_input(3, 16, 1))).has_value());
  EXPECT_EQ(batcher.pending(), 2u);
  auto batch = batcher.add(make_item(models, random_input(3, 8, 2)));
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->items[0].input.dim(2), 8);
  auto rest = batcher.flush_due(std::chrono::steady_clock::now(), /*force=*/true);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].items[0].input.dim(2), 16);
}

TEST(Batcher, TakeSampleSplitsAnNchwBatch) {
  nn::Tensor a = random_input(2, 4, 1);
  nn::Tensor b = random_input(2, 4, 2);
  const nn::Tensor stacked = nn::stack_batch({a, b});
  EXPECT_EQ(serve::take_sample(stacked, 0).data(), a.data());
  EXPECT_EQ(serve::take_sample(stacked, 1).data(), b.data());
  EXPECT_THROW(serve::take_sample(stacked, 2), std::out_of_range);
}

// ------------------------------------------------------- InferenceService

TEST(InferenceService, BatchedMatchesSequentialBitwise) {
  const auto models = tiny_models(LacoScheme::kDreamCong);
  constexpr int kRequests = 12;
  std::vector<nn::Tensor> inputs;
  for (int i = 0; i < kRequests; ++i) inputs.push_back(random_input(3, 8, i));

  std::vector<nn::Tensor> expected;
  {
    nn::NoGradGuard guard;
    for (const nn::Tensor& in : inputs) expected.push_back(models->congestion->forward(in));
  }

  serve::ServiceConfig cfg;
  cfg.num_threads = 3;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_linger_ms = 1.0;
  serve::InferenceService service(cfg);
  std::vector<std::future<nn::Tensor>> futures;
  for (const nn::Tensor& in : inputs) {
    futures.push_back(service.submit(models, serve::ModelKind::kCongestion, in));
  }
  for (int i = 0; i < kRequests; ++i) {
    const nn::Tensor out = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(out.shape(), expected[static_cast<std::size_t>(i)].shape());
    // Per-sample loops in conv/norm make batching bitwise-exact.
    EXPECT_EQ(out.data(), expected[static_cast<std::size_t>(i)].data()) << "request " << i;
  }
  service.drain();  // synchronize with completion bookkeeping
  const serve::ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(counters.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_GE(counters.mean_batch_size(), 1.0);
  EXPECT_LT(counters.batches, static_cast<std::uint64_t>(kRequests));  // some coalescing
}

TEST(InferenceService, LookAheadRequestsServeThePredictionHead) {
  const auto models = tiny_models(LacoScheme::kLookAheadOnly);
  const int channels =
      models->lookahead->config().frames * models->lookahead->config().channels_per_frame;
  const nn::Tensor input = random_input(channels, 8, 42);
  nn::Tensor expected;
  {
    nn::NoGradGuard guard;
    expected = models->lookahead->forward(input).prediction;
  }
  serve::InferenceService service{serve::ServiceConfig{}};
  const nn::Tensor out =
      service.submit(models, serve::ModelKind::kLookAhead, input).get();
  EXPECT_EQ(out.shape(), expected.shape());
  EXPECT_EQ(out.data(), expected.data());
}

TEST(InferenceService, ConcurrentSubmitsFromManyThreads) {
  const auto models = tiny_models(LacoScheme::kDreamCong);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  serve::ServiceConfig cfg;
  cfg.num_threads = 2;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_linger_ms = 0.5;
  serve::InferenceService service(cfg);

  std::vector<nn::Tensor> inputs;
  std::vector<nn::Tensor> expected;
  {
    nn::NoGradGuard guard;
    for (int i = 0; i < kThreads * kPerThread; ++i) {
      inputs.push_back(random_input(3, 8, static_cast<unsigned>(i)));
      expected.push_back(models->congestion->forward(inputs.back()));
    }
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t idx = static_cast<std::size_t>(t * kPerThread + i);
        const nn::Tensor out =
            service.submit(models, serve::ModelKind::kCongestion, inputs[idx]).get();
        if (out.data() != expected[idx].data()) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Futures resolve before the service's completion bookkeeping; drain
  // to synchronize with the counters.
  service.drain();
  EXPECT_EQ(service.counters().completed,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(InferenceService, ErrorsArriveThroughTheFuture) {
  const auto models = tiny_models(LacoScheme::kDreamCong);  // no look-ahead net
  serve::InferenceService service{serve::ServiceConfig{}};
  auto future = service.submit(models, serve::ModelKind::kLookAhead, random_input(3, 8, 0));
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(InferenceService, DrainCompletesOutstandingWork) {
  const auto models = tiny_models(LacoScheme::kDreamCong);
  serve::ServiceConfig cfg;
  cfg.batcher.max_batch = 64;       // never size-triggered
  cfg.batcher.max_linger_ms = 1e9;  // never time-triggered
  serve::InferenceService service(cfg);
  auto future = service.submit(models, serve::ModelKind::kCongestion, random_input(3, 8, 0));
  service.drain();  // force-cuts the partial batch
  EXPECT_EQ(future.wait_for(0s), std::future_status::ready);
}

TEST(Percentile, NearestRank) {
  EXPECT_DOUBLE_EQ(serve::percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(serve::percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(serve::percentile({3.0, 1.0, 2.0}, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(serve::percentile({3.0, 1.0, 2.0}, 0.0), 1.0);
}

// ----------------------------------------------------------- ModelRegistry

TEST(ModelRegistry, LoadsOnceAndCountsHits) {
  const std::string dir = ::testing::TempDir() + "/registry_once";
  ASSERT_TRUE(save_models(*tiny_models(LacoScheme::kDreamCong), dir));
  serve::ModelRegistry registry;
  const auto a = registry.get(dir);
  const auto b = registry.get(dir);
  EXPECT_EQ(a.get(), b.get());  // same resident instance
  const auto stats = registry.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.resident_models, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
  std::filesystem::remove_all(dir);
}

TEST(ModelRegistry, RegistryModelsArriveFrozen) {
  const std::string dir = ::testing::TempDir() + "/registry_frozen";
  // save_models round-trip loads with requires_grad = true by default;
  // the registry must freeze before sharing.
  ASSERT_TRUE(save_models(*tiny_models(LacoScheme::kCellFlowKL), dir));
  serve::ModelRegistry registry;
  const auto models = registry.get(dir);
  for (const nn::Tensor& p : models->congestion->parameters()) {
    EXPECT_FALSE(p.requires_grad());
  }
  for (const nn::Tensor& p : models->lookahead->parameters()) {
    EXPECT_FALSE(p.requires_grad());
  }
  std::filesystem::remove_all(dir);
}

TEST(ModelRegistry, LruEvictionAndReloadRoundTrip) {
  const std::string dir_a = ::testing::TempDir() + "/registry_lru_a";
  const std::string dir_b = ::testing::TempDir() + "/registry_lru_b";
  const auto original_a = tiny_models(LacoScheme::kDreamCong, /*seed=*/1);
  const auto original_b = tiny_models(LacoScheme::kDreamCong, /*seed=*/2);
  ASSERT_TRUE(save_models(*original_a, dir_a));
  ASSERT_TRUE(save_models(*original_b, dir_b));

  serve::RegistryConfig cfg;
  cfg.memory_budget_bytes = serve::model_footprint_bytes(*original_a) + 1;  // fits one
  serve::ModelRegistry registry(cfg);

  const auto a = registry.get(dir_a);
  EXPECT_TRUE(registry.resident(dir_a));
  const auto b = registry.get(dir_b);  // evicts a (LRU)
  EXPECT_TRUE(registry.resident(dir_b));
  EXPECT_FALSE(registry.resident(dir_a));
  EXPECT_EQ(registry.stats().evictions, 1u);

  // The evicted set stays usable through the caller's shared_ptr.
  EXPECT_EQ(a->scheme, LacoScheme::kDreamCong);
  EXPECT_FALSE(a->congestion->parameters().empty());

  // Re-requesting a reloads from disk with identical parameters.
  const auto a2 = registry.get(dir_a);
  EXPECT_NE(a.get(), a2.get());
  const auto pa = a->congestion->parameters();
  const auto pa2 = a2->congestion->parameters();
  ASSERT_EQ(pa.size(), pa2.size());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i].data(), pa2[i].data());
  EXPECT_EQ(registry.stats().misses, 3u);

  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

TEST(ModelRegistry, MissingDirectoryThrowsAndIsNotCached) {
  serve::ModelRegistry registry;
  EXPECT_THROW(registry.get("/nonexistent/laco_registry"), std::runtime_error);
  EXPECT_THROW(registry.get("/nonexistent/laco_registry"), std::runtime_error);
  EXPECT_EQ(registry.stats().resident_models, 0u);
}

TEST(ModelRegistry, ConcurrentGetsCoalesceIntoOneLoad) {
  const std::string dir = ::testing::TempDir() + "/registry_concurrent";
  ASSERT_TRUE(save_models(*tiny_models(LacoScheme::kDreamCong), dir));
  serve::ModelRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const LacoModels>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { results[static_cast<std::size_t>(t)] = registry.get(dir); });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[0].get(), results[static_cast<std::size_t>(t)].get());
  }
  EXPECT_EQ(registry.stats().misses, 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace laco
