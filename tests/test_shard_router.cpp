// Tests for the sharded serving layer (src/serve/shard_router.*,
// src/serve/admission.*): deterministic fake-clock admission control
// (bounded queues, early deadline rejection, priority headroom), the
// router's exact shed accounting, per-shard model replication, the
// per-request completion hook, and the CongestionPenalty remote-forward
// delegation with local fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <stdexcept>
#include <vector>

#include "laco/congestion_penalty.hpp"
#include "laco/model_zoo.hpp"
#include "netlist/generator.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/errors.hpp"
#include "serve/model_registry.hpp"
#include "serve/service.hpp"
#include "serve/shard_router.hpp"
#include "util/mutex.hpp"

namespace laco {
namespace {

using namespace std::chrono_literals;
using TimePoint = serve::ShardAdmission::TimePoint;

// ---------------------------------------------------------------- fixtures

std::shared_ptr<const LacoModels> tiny_models(LacoScheme scheme, unsigned seed = 901) {
  auto models = std::make_shared<LacoModels>();
  models->scheme = scheme;
  CongestionFcnConfig fc;
  fc.in_channels = f_in_channels(scheme);
  fc.base_width = 4;
  nn::reset_init_seed(seed);
  models->congestion = std::make_shared<CongestionFcn>(fc);
  if (traits_of(scheme).uses_lookahead) {
    LookAheadConfig gc;
    gc.frames = 3;
    gc.channels_per_frame = g_channels(scheme);
    gc.base_width = 8;
    gc.inception_blocks = 1;
    gc.with_vae = traits_of(scheme).uses_vae;
    models->lookahead = std::make_shared<LookAheadModel>(gc);
  }
  for (nn::Tensor p : models->congestion->parameters()) p.set_requires_grad(false);
  if (models->lookahead) {
    for (nn::Tensor p : models->lookahead->parameters()) p.set_requires_grad(false);
  }
  return models;
}

nn::Tensor random_input(int channels, int hw, unsigned seed) {
  nn::Tensor t = nn::Tensor::zeros({1, channels, hw, hw});
  unsigned state = seed * 2654435761u + 1u;
  for (float& v : t.data()) {
    state = state * 1664525u + 1013904223u;
    v = static_cast<float>(state >> 8) / static_cast<float>(1u << 24);
  }
  return t;
}

/// Router whose single shard cannot drain during submission: one
/// worker, a huge batch size, and a long linger hold every admitted
/// request in the batcher until drain() forces the flush — admission
/// decisions under a synchronous burst become fully deterministic.
serve::RouterConfig parked_router_config(std::size_t queue_limit) {
  serve::RouterConfig rc;
  rc.num_shards = 1;
  rc.shard.num_threads = 1;
  rc.shard.batcher.max_batch = 1024;
  rc.shard.batcher.max_linger_ms = 60'000.0;
  rc.admission.queue_limit = queue_limit;
  // Class headroom off by default so tests reason about the hard limit
  // alone; the priority test overrides this.
  rc.admission.occupancy_limit = {1.0, 1.0, 1.0};
  return rc;
}

// --------------------------------------------------------- ShardAdmission

TEST(ShardAdmission, BoundedQueueRejectsAtLimit) {
  serve::AdmissionConfig ac;
  ac.queue_limit = 4;
  ac.occupancy_limit = {1.0, 1.0, 1.0};
  serve::ShardAdmission admission(ac);
  const TimePoint now{};  // fake clock: epoch
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(admission.consider(serve::Priority::kInteractive, now, TimePoint::max()),
              serve::AdmissionOutcome::kAdmit);
    admission.on_admit(serve::Priority::kInteractive);
  }
  EXPECT_EQ(admission.queued(), 4u);
  EXPECT_EQ(admission.consider(serve::Priority::kInteractive, now, TimePoint::max()),
            serve::AdmissionOutcome::kShedQueueFull);
  // A completion frees a slot.
  admission.on_complete(serve::Priority::kInteractive, 1.0);
  EXPECT_EQ(admission.consider(serve::Priority::kInteractive, now, TimePoint::max()),
            serve::AdmissionOutcome::kAdmit);
}

TEST(ShardAdmission, DeadlineRejectedBeforeEnqueue) {
  serve::AdmissionConfig ac;
  ac.queue_limit = 100;
  ac.initial_cost_ms = 100.0;
  ac.drain_width = 1;
  serve::ShardAdmission admission(ac);
  const TimePoint now{};
  for (int i = 0; i < 3; ++i) admission.on_admit(serve::Priority::kBatch);
  // Estimated wait: (3 queued + 1) x 100 ms / width 1 = 400 ms.
  EXPECT_DOUBLE_EQ(admission.estimated_wait_ms(), 400.0);
  EXPECT_EQ(admission.consider(serve::Priority::kBatch, now, now + 300ms),
            serve::AdmissionOutcome::kShedDeadline);
  EXPECT_EQ(admission.consider(serve::Priority::kBatch, now, now + 500ms),
            serve::AdmissionOutcome::kAdmit);
  // No deadline: the estimate is irrelevant.
  EXPECT_EQ(admission.consider(serve::Priority::kBatch, now, TimePoint::max()),
            serve::AdmissionOutcome::kAdmit);
}

TEST(ShardAdmission, PriorityClassesKeepReservedHeadroom) {
  serve::AdmissionConfig ac;
  ac.queue_limit = 10;
  ac.occupancy_limit = {1.0, 0.8, 0.5};
  serve::ShardAdmission admission(ac);
  const TimePoint now{};
  const auto admit_all = [&](serve::Priority pri, int want) {
    int got = 0;
    while (admission.consider(pri, now, TimePoint::max()) == serve::AdmissionOutcome::kAdmit) {
      admission.on_admit(pri);
      ++got;
    }
    EXPECT_EQ(got, want) << "class " << serve::to_string(pri);
  };
  // Best-effort fills only half the queue; batch up to 80%; interactive
  // claims the reserved tail up to the hard limit.
  admit_all(serve::Priority::kBestEffort, 5);
  EXPECT_EQ(admission.consider(serve::Priority::kBestEffort, now, TimePoint::max()),
            serve::AdmissionOutcome::kShedQueueFull);
  admit_all(serve::Priority::kBatch, 3);
  admit_all(serve::Priority::kInteractive, 2);
  EXPECT_EQ(admission.queued(), 10u);
  EXPECT_EQ(admission.consider(serve::Priority::kInteractive, now, TimePoint::max()),
            serve::AdmissionOutcome::kShedQueueFull);
  EXPECT_EQ(admission.queued(serve::Priority::kBestEffort), 5u);
  EXPECT_EQ(admission.queued(serve::Priority::kBatch), 3u);
  EXPECT_EQ(admission.queued(serve::Priority::kInteractive), 2u);
}

TEST(ShardAdmission, CostEwmaTracksObservedCompletions) {
  serve::AdmissionConfig ac;
  ac.initial_cost_ms = 2.0;
  ac.cost_ewma_alpha = 0.5;
  serve::ShardAdmission admission(ac);
  admission.on_admit(serve::Priority::kBatch);
  admission.on_complete(serve::Priority::kBatch, 10.0);
  EXPECT_DOUBLE_EQ(admission.cost_estimate_ms(), 6.0);
  // A completion that never reached a forward (exec <= 0) must not
  // drag the estimate toward zero.
  admission.on_admit(serve::Priority::kBatch);
  admission.on_complete(serve::Priority::kBatch, 0.0);
  EXPECT_DOUBLE_EQ(admission.cost_estimate_ms(), 6.0);
}

TEST(ShardAdmission, ValidatedForcesUrgentClassFullQueue) {
  serve::AdmissionConfig ac;
  ac.occupancy_limit = {0.1, 2.0, -1.0};
  const serve::AdmissionConfig v = ac.validated();
  EXPECT_DOUBLE_EQ(v.occupancy_limit[0], 1.0);  // urgent class owns the whole queue
  EXPECT_DOUBLE_EQ(v.occupancy_limit[1], 1.0);  // clamped into [0, 1]
  EXPECT_DOUBLE_EQ(v.occupancy_limit[2], 0.0);
}

// -------------------------------------------------------- InferenceRouter

TEST(InferenceRouter, MatchesLocalForwardAcrossShards) {
  const auto models = tiny_models(LacoScheme::kDreamCong);
  const int channels = models->congestion->config().in_channels;
  serve::RouterConfig rc;
  rc.num_shards = 2;
  rc.shard.num_threads = 2;
  rc.shard.batcher.max_batch = 4;
  rc.shard.batcher.max_linger_ms = 0.5;
  serve::InferenceRouter router(rc);

  std::vector<nn::Tensor> inputs;
  for (int i = 0; i < 24; ++i) inputs.push_back(random_input(channels, 8, 100 + i));
  std::vector<std::future<nn::Tensor>> futures;
  for (const nn::Tensor& in : inputs) {
    futures.push_back(router.submit(models, serve::ModelKind::kCongestion, in));
  }
  double max_err = 0.0;
  {
    nn::NoGradGuard guard;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const nn::Tensor expect = models->congestion->forward(inputs[i]);
      const nn::Tensor got = futures[i].get();
      ASSERT_EQ(got.numel(), expect.numel());
      for (std::size_t k = 0; k < expect.data().size(); ++k) {
        max_err = std::max(max_err,
                           static_cast<double>(std::abs(got.data()[k] - expect.data()[k])));
      }
    }
  }
  EXPECT_LE(max_err, 1e-5);
  router.drain();
  const serve::RouterCounters rcnt = router.counters();
  EXPECT_EQ(rcnt.requests, 24u);
  EXPECT_EQ(rcnt.admitted, 24u);
  EXPECT_EQ(rcnt.completed, 24u);
  EXPECT_EQ(rcnt.shed, 0u);
  // Both shards saw traffic (p2c spreads a 24-request burst).
  EXPECT_GT(router.shard(0).counters().requests, 0u);
  EXPECT_GT(router.shard(1).counters().requests, 0u);
  EXPECT_EQ(router.shard_queued(0), 0u);
  EXPECT_EQ(router.shard_queued(1), 0u);
}

TEST(InferenceRouter, UnmeetableDeadlineShedsEveryRequestBeforeEnqueue) {
  const auto models = tiny_models(LacoScheme::kDreamCong);
  const int channels = models->congestion->config().in_channels;
  serve::RouterConfig rc = parked_router_config(64);
  rc.shard.deadline_ms = 5.0;
  rc.admission.initial_cost_ms = 1e6;  // no deadline is ever meetable
  obs::Counter& shed_counter = obs::MetricRegistry::global().counter("serve.router.shed");
  const std::uint64_t shed_before = shed_counter.value();
  serve::InferenceRouter router(rc);
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    std::future<nn::Tensor> f =
        router.submit(models, serve::ModelKind::kCongestion, random_input(channels, 8, 7u + i));
    // Shed at admission: the future is ready immediately, no shard or
    // queue slot was ever touched.
    ASSERT_EQ(f.wait_for(0ms), std::future_status::ready);
    EXPECT_THROW(f.get(), serve::DeadlineExceededError);
  }
  const serve::RouterCounters rcnt = router.counters();
  EXPECT_EQ(rcnt.requests, static_cast<std::uint64_t>(n));
  EXPECT_EQ(rcnt.shed, static_cast<std::uint64_t>(n));
  EXPECT_EQ(rcnt.shed_deadline, static_cast<std::uint64_t>(n));
  EXPECT_EQ(rcnt.shed_queue_full, 0u);
  EXPECT_EQ(rcnt.admitted, 0u);
  EXPECT_EQ(router.shard(0).counters().requests, 0u);
  // serve.router.shed incremented exactly once per shed request.
  EXPECT_EQ(shed_counter.value() - shed_before, static_cast<std::uint64_t>(n));
}

TEST(InferenceRouter, QueueFullShedsWithShedError) {
  const auto models = tiny_models(LacoScheme::kDreamCong);
  const int channels = models->congestion->config().in_channels;
  serve::InferenceRouter router(parked_router_config(2));
  std::vector<std::future<nn::Tensor>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(
        router.submit(models, serve::ModelKind::kCongestion, random_input(channels, 8, 40u + i)));
  }
  // The first two are parked in the batcher; the rest shed immediately.
  int shed = 0;
  for (auto& f : futures) {
    if (f.wait_for(0ms) != std::future_status::ready) continue;
    EXPECT_THROW(f.get(), serve::ShedError);
    ++shed;
  }
  EXPECT_EQ(shed, 3);
  router.drain();  // the two parked requests complete
  const serve::RouterCounters rcnt = router.counters();
  EXPECT_EQ(rcnt.admitted, 2u);
  EXPECT_EQ(rcnt.shed, 3u);
  EXPECT_EQ(rcnt.shed_queue_full, 3u);
  EXPECT_EQ(rcnt.completed, 2u);
  EXPECT_EQ(router.shard_queued(0), 0u);
}

TEST(InferenceRouter, PriorityHeadroomHonoredUnderSaturation) {
  const auto models = tiny_models(LacoScheme::kDreamCong);
  const int channels = models->congestion->config().in_channels;
  serve::RouterConfig rc = parked_router_config(10);
  rc.admission.occupancy_limit = {1.0, 0.8, 0.5};
  serve::InferenceRouter router(rc);
  unsigned seed = 60;
  const auto burst = [&](serve::Priority pri, int count) {
    int admitted = 0;
    for (int i = 0; i < count; ++i) {
      std::future<nn::Tensor> f = router.submit(
          models, serve::ModelKind::kCongestion, random_input(channels, 8, seed++), pri);
      if (f.wait_for(0ms) != std::future_status::ready) {
        ++admitted;  // parked in the batcher, will resolve on drain
      } else {
        EXPECT_THROW(f.get(), serve::ShedError);
      }
    }
    return admitted;
  };
  // Saturation floods lowest priority first; each class stops at its
  // occupancy cap and interactive claims the reserved tail.
  EXPECT_EQ(burst(serve::Priority::kBestEffort, 8), 5);
  EXPECT_EQ(burst(serve::Priority::kBatch, 8), 3);
  EXPECT_EQ(burst(serve::Priority::kInteractive, 8), 2);
  const serve::RouterCounters rcnt = router.counters();
  EXPECT_EQ(rcnt.admitted_by_class[0], 2u);
  EXPECT_EQ(rcnt.admitted_by_class[1], 3u);
  EXPECT_EQ(rcnt.admitted_by_class[2], 5u);
  EXPECT_EQ(rcnt.shed_by_class[0], 6u);
  EXPECT_EQ(rcnt.shed_by_class[1], 5u);
  EXPECT_EQ(rcnt.shed_by_class[2], 3u);
  router.drain();
  EXPECT_EQ(router.counters().completed, 10u);
}

TEST(InferenceRouter, ReplicatesModelSetsPerShard) {
  const auto models = tiny_models(LacoScheme::kDreamCong);
  const int channels = models->congestion->config().in_channels;
  serve::RouterConfig rc;
  rc.num_shards = 2;
  rc.shard.num_threads = 1;
  rc.shard.batcher.max_batch = 1;
  serve::InferenceRouter router(rc);
  for (int i = 0; i < 8; ++i) {
    router.submit(models, serve::ModelKind::kCongestion, random_input(channels, 8, 70u + i))
        .get();
  }
  router.drain();
  EXPECT_EQ(router.counters().replicated_model_sets, 1u);
  // Shard 0 serves the source set; shard 1 a distinct frozen clone with
  // identical weights.
  EXPECT_EQ(router.replica(models, 0), models);
  const auto replica = router.replica(models, 1);
  ASSERT_NE(replica, nullptr);
  EXPECT_NE(replica, models);
  EXPECT_NE(replica->congestion, models->congestion);
  const auto src_params = models->congestion->parameters();
  const auto rep_params = replica->congestion->parameters();
  ASSERT_EQ(src_params.size(), rep_params.size());
  for (std::size_t i = 0; i < src_params.size(); ++i) {
    EXPECT_FALSE(rep_params[i].requires_grad());
    EXPECT_EQ(src_params[i].data(), rep_params[i].data());
  }
}

TEST(CloneFrozen, ProducesIdenticalIndependentForward) {
  const auto models = tiny_models(LacoScheme::kCellFlowKL);
  const auto clone = serve::clone_frozen(*models);
  ASSERT_NE(clone->congestion, nullptr);
  ASSERT_NE(clone->lookahead, nullptr);
  EXPECT_NE(clone->congestion, models->congestion);
  EXPECT_NE(clone->lookahead, models->lookahead);
  EXPECT_EQ(clone->scheme, models->scheme);
  nn::NoGradGuard guard;
  const nn::Tensor in = random_input(models->congestion->config().in_channels, 8, 5);
  const nn::Tensor a = models->congestion->forward(in);
  const nn::Tensor b = clone->congestion->forward(in);
  EXPECT_EQ(a.data(), b.data());  // bitwise: same weights, same math
}

// --------------------------------------------------------- CompletionHook

TEST(InferenceService, CompletionHookReportsPerRequest) {
  const auto models = tiny_models(LacoScheme::kDreamCong);
  const int channels = models->congestion->config().in_channels;
  Mutex mu;
  std::vector<serve::CompletionInfo> infos;
  serve::ServiceConfig sc;
  sc.num_threads = 1;
  sc.batcher.max_batch = 2;
  sc.batcher.max_linger_ms = 0.5;
  sc.on_complete = [&](const serve::CompletionInfo& info) {
    MutexLock lock(mu);
    infos.push_back(info);
  };
  {
    serve::InferenceService service(sc);
    std::vector<std::future<nn::Tensor>> futures;
    for (int i = 0; i < 4; ++i) {
      futures.push_back(service.submit(models, serve::ModelKind::kCongestion,
                                       random_input(channels, 8, 80u + i), /*tag=*/7));
    }
    for (auto& f : futures) f.get();
    service.drain();
  }
  MutexLock lock(mu);
  ASSERT_EQ(infos.size(), 4u);
  for (const serve::CompletionInfo& info : infos) {
    EXPECT_EQ(info.outcome, serve::CompletionInfo::Outcome::kOk);
    EXPECT_EQ(info.kind, serve::ModelKind::kCongestion);
    EXPECT_EQ(info.tag, 7);
    EXPECT_GE(info.latency_ms, 0.0);
    EXPECT_GT(info.exec_ms_per_item, 0.0);  // a real forward ran
  }
}

// --------------------------------------------------- penalty remote hook

TEST(CongestionPenaltyRemote, RouterBackedPredictMatchesLocal) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 60;
  const Design d = generate_design(gcfg);
  PenaltyConfig pc;
  pc.features_hi = FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, true};
  pc.features_lo = FeatureConfig{8, 8, QuasiVoxScheme::kWeightedSum, true};
  pc.frames = 3;
  pc.spacing = 5;
  const auto models = tiny_models(LacoScheme::kDreamCong, 77);

  CongestionPenalty local(pc, *models);
  GridMap expect;
  ASSERT_TRUE(local.predict(d, expect));

  serve::RouterConfig rc;
  rc.num_shards = 2;
  rc.shard.num_threads = 1;
  serve::InferenceRouter router(rc);
  CongestionPenalty remote(pc, *models);
  remote.set_remote_forward(serve::make_penalty_remote(router, models));
  GridMap got;
  ASSERT_TRUE(remote.predict(d, got));
  EXPECT_EQ(remote.stats().remote_forwards, 1u);
  EXPECT_EQ(remote.stats().remote_fallbacks, 0u);
  ASSERT_EQ(got.nx(), expect.nx());
  ASSERT_EQ(got.ny(), expect.ny());
  double max_err = 0.0;
  for (std::size_t i = 0; i < expect.data().size(); ++i) {
    max_err = std::max(max_err, std::abs(got.data()[i] - expect.data()[i]));
  }
  EXPECT_LE(max_err, 1e-5);
}

TEST(CongestionPenaltyRemote, ThrowingRemoteFallsBackLocally) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 60;
  const Design d = generate_design(gcfg);
  PenaltyConfig pc;
  pc.features_hi = FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, true};
  pc.features_lo = FeatureConfig{8, 8, QuasiVoxScheme::kWeightedSum, true};
  pc.frames = 3;
  pc.spacing = 5;
  const auto models = tiny_models(LacoScheme::kDreamCong, 77);

  CongestionPenalty local(pc, *models);
  GridMap expect;
  ASSERT_TRUE(local.predict(d, expect));

  CongestionPenalty degraded(pc, *models);
  degraded.set_remote_forward([](const nn::Tensor&) -> nn::Tensor {
    throw serve::ShedError("remote fleet saturated");
  });
  GridMap got;
  ASSERT_TRUE(degraded.predict(d, got));  // predict degrades, never fails
  EXPECT_EQ(degraded.stats().remote_forwards, 0u);
  EXPECT_EQ(degraded.stats().remote_fallbacks, 1u);
  ASSERT_EQ(got.data().size(), expect.data().size());
  for (std::size_t i = 0; i < expect.data().size(); ++i) {
    ASSERT_NEAR(got.data()[i], expect.data()[i], 1e-9);  // identical local path
  }
}

}  // namespace
}  // namespace laco
