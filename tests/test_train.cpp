#include <gtest/gtest.h>

#include <functional>

#include "netlist/generator.hpp"
#include "train/congestion_trainer.hpp"
#include "train/dataset.hpp"
#include "train/lookahead_trainer.hpp"
#include "train/scheme.hpp"

namespace laco {
namespace {

SnapshotConfig tiny_snapshot_config() {
  SnapshotConfig cfg;
  cfg.spacing = 10;
  cfg.features = FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, true};
  cfg.lookahead_features = FeatureConfig{8, 8, QuasiVoxScheme::kWeightedSum, true};
  return cfg;
}

TraceCollectionConfig tiny_trace_config() {
  TraceCollectionConfig cfg;
  cfg.snapshot = tiny_snapshot_config();
  cfg.placer.bin_nx = 8;
  cfg.placer.bin_ny = 8;
  cfg.placer.max_iterations = 60;
  cfg.placer.min_iterations = 60;
  cfg.placer.target_overflow = 0.0;
  cfg.router.grid.nx = 16;
  cfg.router.grid.ny = 16;
  return cfg;
}

PlacementTrace tiny_trace(unsigned seed = 1) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 120;
  gcfg.seed = seed;
  Design d = generate_design(gcfg);
  return collect_trace(d, tiny_trace_config());
}

TEST(SchemeTraits, MatchPaperDefinitions) {
  EXPECT_FALSE(traits_of(LacoScheme::kDreamPlace).uses_penalty);
  EXPECT_TRUE(traits_of(LacoScheme::kDreamCong).uses_penalty);
  EXPECT_FALSE(traits_of(LacoScheme::kDreamCong).uses_lookahead);
  EXPECT_TRUE(traits_of(LacoScheme::kCellFlowKL).uses_vae);
  EXPECT_TRUE(traits_of(LacoScheme::kCellFlowKL).f_uses_flow);
  EXPECT_FALSE(traits_of(LacoScheme::kLessFlowKL).f_uses_flow);
  EXPECT_TRUE(traits_of(LacoScheme::kLessFlowKL).g_uses_flow);
  EXPECT_FALSE(traits_of(LacoScheme::kNoFlowKL).g_uses_flow);
  EXPECT_EQ(f_in_channels(LacoScheme::kDreamCong), 3);
  EXPECT_EQ(f_in_channels(LacoScheme::kLookAheadOnly), 6);
  EXPECT_EQ(f_in_channels(LacoScheme::kCellFlowKL), 10);
  EXPECT_EQ(f_in_channels(LacoScheme::kLessFlowKL), 6);
  EXPECT_EQ(g_channels(LacoScheme::kCellFlow), 5);
  EXPECT_EQ(g_channels(LacoScheme::kNoFlowKL), 3);
  EXPECT_EQ(to_string(LacoScheme::kCellFlowKL), "Cell-flow+KL");
}

TEST(SnapshotCollector, CapturesAtSpacing) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 80;
  Design d = generate_design(gcfg);
  SnapshotCollector collector(tiny_snapshot_config());
  GlobalPlacerOptions opts;
  opts.bin_nx = 8;
  opts.bin_ny = 8;
  opts.max_iterations = 45;
  opts.min_iterations = 45;
  opts.target_overflow = 0.0;
  GlobalPlacer placer(d, opts);
  placer.set_observer(std::ref(collector));
  placer.run();
  // Iterations 0, 10, 20, 30, 40.
  ASSERT_EQ(collector.snapshots().size(), 5u);
  EXPECT_EQ(collector.snapshots()[2].iteration, 20);
  EXPECT_EQ(collector.snapshots()[0].frame.rudy.nx(), 16);
  EXPECT_EQ(collector.snapshots()[0].lo_frame.rudy.nx(), 8);
  // Flow exists from the second snapshot on.
  EXPECT_DOUBLE_EQ(collector.snapshots()[0].frame.flow_x.sum(), 0.0);
  double flow_mag = 0.0;
  for (const double v : collector.snapshots()[1].frame.flow_x.data()) flow_mag += std::abs(v);
  EXPECT_GT(flow_mag, 0.0);
}

TEST(Dataset, CollectTraceProducesLabel) {
  const PlacementTrace trace = tiny_trace();
  EXPECT_FALSE(trace.snapshots.empty());
  EXPECT_EQ(trace.congestion_label.nx(), 16);
  EXPECT_GT(trace.congestion_label.max(), 0.0);
  EXPECT_GT(trace.final_hpwl, 0.0);
}

TEST(Dataset, CollectTracesJittersSeeds) {
  TraceCollectionConfig cfg = tiny_trace_config();
  cfg.placer.max_iterations = 40;
  cfg.placer.min_iterations = 40;
  const auto traces = collect_traces({"fft_1"}, 0.003, 2, cfg);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].design_name, "fft_1");
  EXPECT_NE(traces[0].final_hpwl, traces[1].final_hpwl);
}

TEST(LookAheadSamples, WindowsAreContiguous) {
  // Samples hold pointers into the trace vector, so it must outlive them.
  std::vector<PlacementTrace> traces{tiny_trace()};
  const auto samples = build_lookahead_samples(traces, 3);
  // n snapshots -> n - 3 windows (3 history + 1 target).
  ASSERT_EQ(samples.size(), traces[0].snapshots.size() - 3);
  ASSERT_EQ(samples[0].history.size(), 3u);
  EXPECT_EQ(samples[0].history[0], &traces[0].snapshots[0].lo_frame);
  EXPECT_EQ(samples[0].history[2], &traces[0].snapshots[2].lo_frame);
  EXPECT_EQ(samples[0].target, &traces[0].snapshots[3].lo_frame);
}

TEST(LookAheadTrainer, LossDecreases) {
  std::vector<PlacementTrace> traces{tiny_trace(1), tiny_trace(2)};
  const auto samples = build_lookahead_samples(traces, 3);
  ASSERT_GT(samples.size(), 2u);
  const FeatureScale scale = fit_lookahead_scale(traces);

  LookAheadConfig mc;
  mc.frames = 3;
  mc.channels_per_frame = 5;
  mc.base_width = 8;
  mc.inception_blocks = 1;
  mc.with_vae = true;
  nn::reset_init_seed(3);
  LookAheadModel model(mc);
  LookAheadTrainerConfig tc;
  tc.epochs = 5;
  tc.lr = 2e-3f;
  const TrainHistory history = train_lookahead(model, samples, scale, tc);
  ASSERT_EQ(history.epoch_losses.size(), 5u);
  EXPECT_LT(history.epoch_losses.back(), history.epoch_losses.front());
}

TEST(CongestionTrainer, DreamCongSamplesAndTraining) {
  const PlacementTrace t1 = tiny_trace(3);
  const PlacementTrace t2 = tiny_trace(4);
  const FeatureScale scale = fit_congestion_scale({t1, t2});
  const auto samples = build_dreamcong_samples({t1, t2}, scale);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].input.shape(), (nn::Shape{1, 3, 16, 16}));
  EXPECT_EQ(samples[0].label.shape(), (nn::Shape{1, 1, 16, 16}));

  CongestionFcnConfig fc;
  fc.in_channels = 3;
  fc.base_width = 4;
  nn::reset_init_seed(7);
  CongestionFcn model(fc);
  CongestionTrainerConfig tc;
  tc.epochs = 10;
  const TrainHistory history = train_congestion(model, samples, tc);
  EXPECT_LT(history.epoch_losses.back(), history.epoch_losses.front());
  EXPECT_LT(evaluate_congestion(model, samples), history.epoch_losses.front());
}

TEST(Trainers, EmptySamplesAreHarmless) {
  CongestionFcnConfig fc;
  fc.base_width = 4;
  CongestionFcn f(fc);
  EXPECT_TRUE(train_congestion(f, {}, {}).epoch_losses.empty());
  EXPECT_DOUBLE_EQ(evaluate_congestion(f, {}), 0.0);
  LookAheadConfig mc;
  mc.base_width = 8;
  mc.inception_blocks = 1;
  LookAheadModel g(mc);
  FeatureScale scale;
  EXPECT_TRUE(train_lookahead(g, {}, scale, {}).epoch_losses.empty());
  EXPECT_DOUBLE_EQ(evaluate_lookahead(g, {}, scale), 0.0);
}

}  // namespace
}  // namespace laco
