// Tests for the compiled inference plan subsystem (src/plan):
// bitwise plan-vs-eager equality across every zoo model kind and
// several shapes, arena liveness (no live buffers overlap), the
// shape-keyed PlanCache (LRU, hit/miss counters, negative caching,
// coalescing), concurrent execution, eager fallback on unsupported
// ops, and the allocation-free executor contract (nn.tensor.allocs).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "laco/congestion_penalty.hpp"
#include "netlist/generator.hpp"
#include "nn/kernel_pool.hpp"
#include "nn/layers.hpp"
#include "nn/ops.hpp"
#include "plan/plan.hpp"
#include "plan/plan_cache.hpp"
#include "serve/batcher.hpp"
#include "train/scheme.hpp"

namespace laco {
namespace {

// ---------------------------------------------------------------- fixtures

std::shared_ptr<const LacoModels> tiny_models(LacoScheme scheme, unsigned seed = 900) {
  auto models = std::make_shared<LacoModels>();
  models->scheme = scheme;
  CongestionFcnConfig fc;
  fc.in_channels = f_in_channels(scheme);
  fc.base_width = 4;
  nn::reset_init_seed(seed);
  models->congestion = std::make_shared<CongestionFcn>(fc);
  if (traits_of(scheme).uses_lookahead) {
    LookAheadConfig gc;
    gc.frames = 3;
    gc.channels_per_frame = g_channels(scheme);
    gc.base_width = 8;
    gc.inception_blocks = 1;
    gc.with_vae = traits_of(scheme).uses_vae;
    models->lookahead = std::make_shared<LookAheadModel>(gc);
  }
  for (nn::Tensor p : models->congestion->parameters()) p.set_requires_grad(false);
  if (models->lookahead) {
    for (nn::Tensor p : models->lookahead->parameters()) p.set_requires_grad(false);
  }
  return models;
}

nn::Tensor random_input(const nn::Shape& shape, unsigned seed) {
  nn::Tensor t = nn::Tensor::zeros(shape);
  unsigned state = seed * 2654435761u + 1u;
  for (float& v : t.data()) {
    state = state * 1664525u + 1013904223u;
    v = static_cast<float>(state >> 8) / static_cast<float>(1u << 24);
  }
  return t;
}

bool bitwise_equal(const nn::Tensor& a, const nn::Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data().data(), b.data().data(), a.data().size() * sizeof(float)) == 0;
}

// ----------------------------------------------------- plan-vs-eager parity

class PlanSchemes : public ::testing::TestWithParam<LacoScheme> {};

TEST_P(PlanSchemes, CongestionNetBitwiseEqualsEager) {
  const auto models = tiny_models(GetParam());
  const int cin = models->congestion->config().in_channels;
  for (const int grid : {8, 16}) {
    for (const int batch : {1, 2}) {
      const nn::Tensor x = random_input({batch, cin, grid, grid}, 31u * grid + batch);
      nn::Tensor eager;
      {
        nn::NoGradGuard guard;
        eager = models->congestion->forward(x);
      }
      plan::CompileResult compiled = plan::compile(
          [&](const std::vector<nn::Tensor>& in) {
            return models->congestion->forward(in[0]);
          },
          {x});
      ASSERT_NE(compiled.plan, nullptr)
          << "compile failed (" << to_string(GetParam()) << "): " << compiled.error;
      EXPECT_TRUE(bitwise_equal(compiled.traced_output, eager));
      plan::Workspace ws;
      const nn::Tensor replayed = compiled.plan->run({x}, ws);
      EXPECT_TRUE(bitwise_equal(replayed, eager))
          << to_string(GetParam()) << " grid " << grid << " batch " << batch;
      // Replay a second time with a warm workspace: identical again.
      EXPECT_TRUE(bitwise_equal(compiled.plan->run({x}, ws), eager));
    }
  }
}

TEST_P(PlanSchemes, LookAheadNetBitwiseEqualsEager) {
  const auto models = tiny_models(GetParam());
  if (!models->lookahead) GTEST_SKIP() << "scheme has no look-ahead network";
  const LookAheadConfig& gc = models->lookahead->config();
  const int cin = gc.frames * gc.channels_per_frame;
  for (const int grid : {8, 16}) {
    const nn::Tensor x = random_input({1, cin, grid, grid}, 77u + grid);
    nn::Tensor eager;
    {
      nn::NoGradGuard guard;
      eager = models->lookahead->forward(x).prediction;
    }
    plan::CompileResult compiled = plan::compile(
        [&](const std::vector<nn::Tensor>& in) {
          return models->lookahead->forward(in[0]).prediction;
        },
        {x});
    ASSERT_NE(compiled.plan, nullptr)
        << "compile failed (" << to_string(GetParam()) << "): " << compiled.error;
    plan::Workspace ws;
    EXPECT_TRUE(bitwise_equal(compiled.plan->run({x}, ws), eager))
        << to_string(GetParam()) << " grid " << grid;
  }
}

INSTANTIATE_TEST_SUITE_P(AllZooSchemes, PlanSchemes,
                         ::testing::Values(LacoScheme::kDreamCong, LacoScheme::kLookAheadOnly,
                                           LacoScheme::kCellFlow, LacoScheme::kCellFlowKL,
                                           LacoScheme::kNoFlowKL, LacoScheme::kLessFlowKL));

// ----------------------------------------------------------- arena layout

TEST(PlanArena, LiveSpansNeverOverlap) {
  const auto models = tiny_models(LacoScheme::kCellFlowKL);
  const nn::Tensor x =
      random_input({1, models->congestion->config().in_channels, 16, 16}, 5);
  plan::CompileResult compiled = plan::compile(
      [&](const std::vector<nn::Tensor>& in) { return models->congestion->forward(in[0]); },
      {x});
  ASSERT_NE(compiled.plan, nullptr) << compiled.error;
  const auto& spans = compiled.plan->arena_spans();
  ASSERT_FALSE(spans.empty());
  std::size_t peak = 0;
  for (const plan::ArenaSpan& s : spans) peak = std::max(peak, s.offset + s.size);
  EXPECT_LE(peak, compiled.plan->arena_floats());
  // Buffer reuse actually happens: the packed arena is smaller than the
  // sum of all intermediate sizes.
  std::size_t total = 0;
  for (const plan::ArenaSpan& s : spans) total += s.size;
  EXPECT_LT(compiled.plan->arena_floats(), total);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      const plan::ArenaSpan& a = spans[i];
      const plan::ArenaSpan& b = spans[j];
      const bool lifetimes_overlap = a.def <= b.last_use && b.def <= a.last_use;
      const bool bytes_overlap = a.offset < b.offset + b.size && b.offset < a.offset + a.size;
      if (lifetimes_overlap) {
        EXPECT_FALSE(bytes_overlap)
            << "spans " << i << " and " << j << " are live together but share arena bytes";
      }
    }
  }
}

// ------------------------------------------------------- executor contract

TEST(PlanExecutor, SteadyStateAllocatesOnlyTheOutputTensor) {
  const auto models = tiny_models(LacoScheme::kDreamCong);
  const nn::Tensor x =
      random_input({1, models->congestion->config().in_channels, 16, 16}, 9);
  plan::CompileResult compiled = plan::compile(
      [&](const std::vector<nn::Tensor>& in) { return models->congestion->forward(in[0]); },
      {x});
  ASSERT_NE(compiled.plan, nullptr) << compiled.error;
  plan::Workspace ws;
  (void)compiled.plan->run({x}, ws);  // warm the workspace
  const std::uint64_t before = nn::tensor_alloc_count();
  const nn::Tensor out = compiled.plan->run({x}, ws);
  const std::uint64_t after = nn::tensor_alloc_count();
  // The only allocation on the warm plan path is the output tensor
  // itself; every intermediate lives in the arena.
  EXPECT_EQ(after - before, 1u);
  EXPECT_EQ(out.shape(), compiled.plan->output_shape());
}

TEST(PlanExecutor, RunValidatesArityAndShapes) {
  const auto models = tiny_models(LacoScheme::kDreamCong);
  const nn::Tensor x =
      random_input({1, models->congestion->config().in_channels, 16, 16}, 3);
  plan::CompileResult compiled = plan::compile(
      [&](const std::vector<nn::Tensor>& in) { return models->congestion->forward(in[0]); },
      {x});
  ASSERT_NE(compiled.plan, nullptr) << compiled.error;
  plan::Workspace ws;
  EXPECT_THROW(compiled.plan->run({}, ws), std::invalid_argument);
  EXPECT_THROW(compiled.plan->run({x, x}, ws), std::invalid_argument);
  const nn::Tensor wrong =
      random_input({1, models->congestion->config().in_channels, 8, 8}, 3);
  EXPECT_THROW(compiled.plan->run({wrong}, ws), std::invalid_argument);
}

TEST(PlanExecutor, PassthroughCopiesTheInput) {
  const nn::Tensor x = random_input({1, 3, 4, 4}, 21);
  plan::CompileResult compiled =
      plan::compile([](const std::vector<nn::Tensor>& in) { return in[0]; }, {x});
  ASSERT_NE(compiled.plan, nullptr) << compiled.error;
  plan::Workspace ws;
  const nn::Tensor out = compiled.plan->run({x}, ws);
  EXPECT_TRUE(bitwise_equal(out, x));
  EXPECT_NE(out.data().data(), x.data().data());  // a copy, not an alias
}

TEST(PlanExecutor, TiledKernelChainReplayBitwiseEqualsEager) {
  // Raw-op chain through every rewritten tiled kernel — grouped strided
  // conv, leaky_relu, transposed conv, group_norm — compiled once and
  // replayed: the plan kernels share the eager tile code, so replay
  // must be bitwise-equal, including while the kernel pool is parallel.
  const nn::Tensor x = random_input({2, 4, 12, 10}, 57);
  nn::Tensor w1 = random_input({8, 2, 3, 3}, 58);
  nn::Tensor b1 = random_input({8}, 59);
  nn::Tensor w2 = random_input({8, 4, 4, 4}, 60);
  nn::Tensor gamma = random_input({4}, 61);
  nn::Tensor beta = random_input({4}, 62);
  auto fn = [&](const std::vector<nn::Tensor>& in) {
    nn::Tensor h = nn::leaky_relu(nn::conv2d(in[0], w1, b1, 2, 1, 2), 0.1f);
    h = nn::conv_transpose2d(h, w2, nn::Tensor(), 2, 1);
    return nn::group_norm(h, 2, gamma, beta);
  };
  const nn::Tensor eager = fn({x});
  plan::CompileResult compiled = plan::compile(fn, {x});
  ASSERT_NE(compiled.plan, nullptr) << compiled.error;
  EXPECT_TRUE(bitwise_equal(compiled.traced_output, eager));
  plan::Workspace ws;
  for (int threads : {1, 8}) {
    nn::set_kernel_threads(threads);
    EXPECT_TRUE(bitwise_equal(compiled.plan->run({x}, ws), eager))
        << "replay diverged from eager at " << threads << " threads";
  }
  nn::set_kernel_threads(1);
}

TEST(PlanExecutor, ConcurrentExecutionMatchesEager) {
  const auto models = tiny_models(LacoScheme::kCellFlowKL);
  const int cin = models->congestion->config().in_channels;
  const nn::Tensor x = random_input({2, cin, 16, 16}, 13);
  nn::Tensor eager;
  {
    nn::NoGradGuard guard;
    eager = models->congestion->forward(x);
  }
  plan::CompileResult compiled = plan::compile(
      [&](const std::vector<nn::Tensor>& in) { return models->congestion->forward(in[0]); },
      {x});
  ASSERT_NE(compiled.plan, nullptr) << compiled.error;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      plan::Workspace ws;  // one workspace per executing thread
      for (int i = 0; i < 16; ++i) {
        if (!bitwise_equal(compiled.plan->run({x}, ws), eager)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ----------------------------------------------------- unsupported-op fallback

TEST(PlanCompile, UnsupportedOpFallsBackToEager) {
  const nn::Tensor x = random_input({1, 3, 4, 4}, 8);
  // nn::sum is a loss-path reduction with no replay kernel: the trace
  // has a hole, so compilation must fail with a diagnostic rather than
  // produce a plan that silently skips the op.
  plan::CompileResult compiled = plan::compile(
      [](const std::vector<nn::Tensor>& in) { return nn::sum(nn::square(in[0])); }, {x});
  EXPECT_EQ(compiled.plan, nullptr);
  EXPECT_NE(compiled.error.find("unsupported"), std::string::npos) << compiled.error;
  // The tracing run itself still produced the eager output.
  ASSERT_TRUE(compiled.traced_output.defined());
  EXPECT_EQ(compiled.traced_output.numel(), 1);
}

TEST(PlanCompile, ThrowingFnFailsCleanly) {
  const nn::Tensor x = random_input({1, 3, 4, 4}, 8);
  plan::CompileResult compiled = plan::compile(
      [](const std::vector<nn::Tensor>&) -> nn::Tensor {
        throw std::runtime_error("boom");
      },
      {x});
  EXPECT_EQ(compiled.plan, nullptr);
  EXPECT_NE(compiled.error.find("boom"), std::string::npos) << compiled.error;
}

// --------------------------------------------------------------- PlanCache

plan::CompileResult tiny_add_plan(const nn::Tensor& x) {
  return plan::compile(
      [](const std::vector<nn::Tensor>& in) { return nn::add(in[0], in[0]); }, {x});
}

TEST(PlanCache, CountsHitsAndMisses) {
  plan::PlanCache cache;
  const nn::Tensor x = random_input({1, 2, 4, 4}, 1);
  const auto anchor = std::make_shared<int>(0);
  plan::PlanKey key{anchor.get(), 0, plan::shape_signature({x})};
  int compiles = 0;
  const auto compile_fn = [&] {
    ++compiles;
    return tiny_add_plan(x);
  };
  const auto p1 = cache.get_or_compile(key, anchor, compile_fn);
  const auto p2 = cache.get_or_compile(key, anchor, compile_fn);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(compiles, 1);
  const plan::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  plan::PlanCache cache(plan::PlanCacheConfig{2});
  const nn::Tensor x = random_input({1, 2, 4, 4}, 1);
  const auto anchor = std::make_shared<int>(0);
  const auto compile_fn = [&] { return tiny_add_plan(x); };
  const auto key = [&](int variant) {
    return plan::PlanKey{anchor.get(), variant, plan::shape_signature({x})};
  };
  (void)cache.get_or_compile(key(0), anchor, compile_fn);
  (void)cache.get_or_compile(key(1), anchor, compile_fn);
  (void)cache.get_or_compile(key(0), anchor, compile_fn);  // refresh 0: LRU is now 1
  (void)cache.get_or_compile(key(2), anchor, compile_fn);  // evicts 1
  plan::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.misses, 3u);
  // Key 1 was the victim: asking for it again recompiles (and in turn
  // evicts key 0, the new LRU) …
  (void)cache.get_or_compile(key(1), anchor, compile_fn);
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  // … while key 2 (still recent) survived.
  const std::uint64_t hits_before = cache.stats().hits;
  (void)cache.get_or_compile(key(2), anchor, compile_fn);
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
}

TEST(PlanCache, NegativelyCachesFailedCompiles) {
  plan::PlanCache cache;
  const nn::Tensor x = random_input({1, 2, 4, 4}, 1);
  const auto anchor = std::make_shared<int>(0);
  plan::PlanKey key{anchor.get(), 0, plan::shape_signature({x})};
  int compiles = 0;
  const auto failing = [&] {
    ++compiles;
    return plan::compile(
        [](const std::vector<nn::Tensor>& in) { return nn::sum(in[0]); }, {x});
  };
  EXPECT_EQ(cache.get_or_compile(key, anchor, failing), nullptr);
  EXPECT_EQ(cache.get_or_compile(key, anchor, failing), nullptr);
  EXPECT_EQ(compiles, 1) << "failed compile must be cached, not retried";
  const plan::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.compile_failures, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(PlanCache, InvalidateDropsOnlyMatchingIdentity) {
  plan::PlanCache cache;
  const nn::Tensor x = random_input({1, 2, 4, 4}, 1);
  const auto a = std::make_shared<int>(0);
  const auto b = std::make_shared<int>(0);
  const auto compile_fn = [&] { return tiny_add_plan(x); };
  (void)cache.get_or_compile({a.get(), 0, plan::shape_signature({x})}, a, compile_fn);
  (void)cache.get_or_compile({b.get(), 0, plan::shape_signature({x})}, b, compile_fn);
  EXPECT_EQ(cache.stats().size, 2u);
  cache.invalidate(a.get());
  EXPECT_EQ(cache.stats().size, 1u);
  // b's entry is still a hit.
  const std::uint64_t misses = cache.stats().misses;
  (void)cache.get_or_compile({b.get(), 0, plan::shape_signature({x})}, b, compile_fn);
  EXPECT_EQ(cache.stats().misses, misses);
}

TEST(PlanCache, CoalescesConcurrentCompiles) {
  plan::PlanCache cache;
  const nn::Tensor x = random_input({1, 2, 8, 8}, 1);
  const auto anchor = std::make_shared<int>(0);
  plan::PlanKey key{anchor.get(), 0, plan::shape_signature({x})};
  std::atomic<int> compiles{0};
  const auto compile_fn = [&] {
    compiles.fetch_add(1, std::memory_order_relaxed);
    return tiny_add_plan(x);
  };
  std::vector<std::thread> threads;
  std::atomic<int> nulls{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      if (cache.get_or_compile(key, anchor, compile_fn) == nullptr) {
        nulls.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(compiles.load(), 1);
  EXPECT_EQ(nulls.load(), 0);
  const plan::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 8u);
}

// ------------------------------------------------------- serve integration

TEST(PlanServe, ForwardBatchMatchesEagerBitwise) {
  const auto models = tiny_models(LacoScheme::kCellFlowKL);
  const int cin = models->congestion->config().in_channels;
  const auto make_batch = [&] {
    serve::Batch batch;
    for (int i = 0; i < 3; ++i) {
      serve::BatchItem item;
      item.models = models;
      item.kind = serve::ModelKind::kCongestion;
      item.input = random_input({1, cin, 16, 16}, 100u + i);
      batch.items.push_back(std::move(item));
    }
    return batch;
  };
  const serve::Batch batch = make_batch();
  plan::set_plans_enabled(false);
  const nn::Tensor eager = serve::forward_batch(batch);
  plan::set_plans_enabled(true);
  const std::uint64_t misses = plan::shared_plan_cache().stats().misses;
  const nn::Tensor planned = serve::forward_batch(batch);
  // The plan path actually engaged (a compile happened) …
  EXPECT_EQ(plan::shared_plan_cache().stats().misses, misses + 1);
  // … and produced the exact eager bits.
  EXPECT_TRUE(bitwise_equal(planned, eager));
  plan::shared_plan_cache().invalidate(models->congestion.get());
}

// ----------------------------------------------------- penalty integration

TEST(PlanPenalty, PredictMatchesEagerBitwise) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 80;
  Design d = generate_design(gcfg);
  PenaltyConfig pc;
  pc.features_hi = FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, true};
  pc.features_lo = FeatureConfig{8, 8, QuasiVoxScheme::kWeightedSum, true};
  pc.frames = 3;
  pc.spacing = 5;
  pc.start_iteration = 15;
  pc.apply_every = 1;
  const auto models = tiny_models(LacoScheme::kCellFlowKL, 17);
  CongestionPenalty penalty(pc, *models);
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  gx[static_cast<std::size_t>(d.movable_cells()[0])] = 1.0;
  for (int iter = 0; iter <= 10; ++iter) penalty(d, iter, gx, gy);

  GridMap planned, eager;
  plan::set_plans_enabled(true);
  const std::uint64_t misses = plan::shared_plan_cache().stats().misses;
  ASSERT_TRUE(penalty.predict(d, planned));
  EXPECT_EQ(plan::shared_plan_cache().stats().misses, misses + 1);
  plan::set_plans_enabled(false);
  ASSERT_TRUE(penalty.predict(d, eager));
  plan::set_plans_enabled(true);
  ASSERT_EQ(planned.data().size(), eager.data().size());
  for (std::size_t i = 0; i < planned.data().size(); ++i) {
    EXPECT_EQ(planned.data()[i], eager.data()[i]) << "bin " << i;
  }
  plan::shared_plan_cache().invalidate(models->congestion.get());
}

}  // namespace
}  // namespace laco
