#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "placer/poisson.hpp"

namespace laco {
namespace {

TEST(Poisson, ConstantDensityGivesZeroField) {
  PoissonSolver solver(16, 16, 1.0, 1.0);
  std::vector<double> rho(16 * 16, 3.0);
  const auto sol = solver.solve(rho);
  for (const double v : sol.field_x) EXPECT_NEAR(v, 0.0, 1e-9);
  for (const double v : sol.field_y) EXPECT_NEAR(v, 0.0, 1e-9);
  for (const double v : sol.potential) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Poisson, SingleModeAnalyticSolution) {
  // rho(x) = cos(pi x / L): psi = rho / (pi/L)^2 and E_x = sin(pi x/L)/(pi/L).
  const int n = 32;
  const double length = 2.0;
  PoissonSolver solver(n, n, length, length);
  std::vector<double> rho(static_cast<std::size_t>(n) * n);
  const double w = std::numbers::pi / length;
  for (int l = 0; l < n; ++l) {
    for (int k = 0; k < n; ++k) {
      const double x = (k + 0.5) * length / n;
      rho[static_cast<std::size_t>(l) * n + k] = std::cos(w * x);
    }
  }
  const auto sol = solver.solve(rho);
  for (int l = 0; l < n; ++l) {
    for (int k = 0; k < n; ++k) {
      const double x = (k + 0.5) * length / n;
      const std::size_t i = static_cast<std::size_t>(l) * n + k;
      EXPECT_NEAR(sol.potential[i], std::cos(w * x) / (w * w), 1e-6);
      EXPECT_NEAR(sol.field_x[i], std::sin(w * x) / w, 1e-6);
      EXPECT_NEAR(sol.field_y[i], 0.0, 1e-9);
    }
  }
}

TEST(Poisson, FieldIsNegativeGradientOfPotential) {
  // E ≈ −∇ψ via central differences away from the boundary.
  const int n = 32;
  PoissonSolver solver(n, n, 1.0, 1.0);
  std::vector<double> rho(static_cast<std::size_t>(n) * n, 0.0);
  for (int l = 12; l < 20; ++l) {
    for (int k = 8; k < 16; ++k) rho[static_cast<std::size_t>(l) * n + k] = 1.0;
  }
  const auto sol = solver.solve(rho);
  const double h = 1.0 / n;
  for (int l = 2; l < n - 2; ++l) {
    for (int k = 2; k < n - 2; ++k) {
      const std::size_t i = static_cast<std::size_t>(l) * n + k;
      const double dpsi_dx = (sol.potential[i + 1] - sol.potential[i - 1]) / (2 * h);
      const double dpsi_dy = (sol.potential[i + n] - sol.potential[i - n]) / (2 * h);
      // Central differences of a sharp-edged source carry O(h²)
      // discretization error of their own; 15% + floor absorbs it.
      EXPECT_NEAR(sol.field_x[i], -dpsi_dx, 0.15 * std::abs(dpsi_dx) + 0.01);
      EXPECT_NEAR(sol.field_y[i], -dpsi_dy, 0.15 * std::abs(dpsi_dy) + 0.01);
    }
  }
}

TEST(Poisson, FieldPushesAwayFromDensityPeak) {
  const int n = 16;
  PoissonSolver solver(n, n, 1.0, 1.0);
  std::vector<double> rho(static_cast<std::size_t>(n) * n, 0.0);
  rho[static_cast<std::size_t>(8) * n + 8] = 10.0;  // peak at (8, 8)
  const auto sol = solver.solve(rho);
  EXPECT_GT(sol.field_x[static_cast<std::size_t>(8) * n + 11], 0.0);
  EXPECT_LT(sol.field_x[static_cast<std::size_t>(8) * n + 5], 0.0);
  EXPECT_GT(sol.field_y[static_cast<std::size_t>(11) * n + 8], 0.0);
  EXPECT_LT(sol.field_y[static_cast<std::size_t>(5) * n + 8], 0.0);
}

TEST(Poisson, LinearInDensity) {
  const int n = 8;
  PoissonSolver solver(n, n, 1.0, 1.0);
  std::vector<double> rho(static_cast<std::size_t>(n) * n, 0.0);
  rho[10] = 1.0;
  rho[40] = -2.0;
  const auto a = solver.solve(rho);
  for (double& v : rho) v *= 3.0;
  const auto b = solver.solve(rho);
  for (std::size_t i = 0; i < a.potential.size(); ++i) {
    EXPECT_NEAR(b.potential[i], 3.0 * a.potential[i], 1e-9);
    EXPECT_NEAR(b.field_x[i], 3.0 * a.field_x[i], 1e-9);
  }
}

TEST(Poisson, RejectsBadSizes) {
  EXPECT_THROW(PoissonSolver(0, 4, 1, 1), std::invalid_argument);
  EXPECT_THROW(PoissonSolver(4, 4, 0, 1), std::invalid_argument);
  PoissonSolver solver(4, 4, 1, 1);
  EXPECT_THROW(solver.solve(std::vector<double>(3)), std::invalid_argument);
}

}  // namespace
}  // namespace laco
