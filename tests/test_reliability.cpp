// Fault-tolerance suite (docs/RELIABILITY.md): checkpoint integrity
// (CRC-32, truncation, v1 back-compat, atomic saves), deterministic
// failpoints, circuit-breaker state machine, per-request deadlines,
// retry accounting, graceful degradation of the congestion penalty to
// the analytic RUDY fallback, and a multi-client chaos run where every
// future must resolve. Run under TSan by the CI matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "laco/congestion_penalty.hpp"
#include "laco/laco_placer.hpp"
#include "laco/model_zoo.hpp"
#include "models/congestion_fcn.hpp"
#include "netlist/generator.hpp"
#include "nn/serialize.hpp"
#include "serve/circuit_breaker.hpp"
#include "serve/errors.hpp"
#include "serve/model_registry.hpp"
#include "serve/service.hpp"
#include "train/snapshot.hpp"
#include "util/crc32.hpp"
#include "util/errors.hpp"
#include "util/failpoint.hpp"

namespace laco {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- fixtures

std::shared_ptr<const LacoModels> tiny_models(LacoScheme scheme, unsigned seed = 900) {
  auto models = std::make_shared<LacoModels>();
  models->scheme = scheme;
  CongestionFcnConfig fc;
  fc.in_channels = f_in_channels(scheme);
  fc.base_width = 4;
  nn::reset_init_seed(seed);
  models->congestion = std::make_shared<CongestionFcn>(fc);
  if (traits_of(scheme).uses_lookahead) {
    LookAheadConfig gc;
    gc.frames = 3;
    gc.channels_per_frame = g_channels(scheme);
    gc.base_width = 8;
    gc.inception_blocks = 1;
    gc.with_vae = traits_of(scheme).uses_vae;
    models->lookahead = std::make_shared<LookAheadModel>(gc);
  }
  for (nn::Tensor p : models->congestion->parameters()) p.set_requires_grad(false);
  if (models->lookahead) {
    for (nn::Tensor p : models->lookahead->parameters()) p.set_requires_grad(false);
  }
  return models;
}

nn::Tensor random_input(int channels, int hw, unsigned seed) {
  nn::Tensor t = nn::Tensor::zeros({1, channels, hw, hw});
  unsigned state = seed * 2654435761u + 1u;
  for (float& v : t.data()) {
    state = state * 1664525u + 1013904223u;
    v = static_cast<float>(state >> 8) / static_cast<float>(1u << 24);
  }
  return t;
}

// ------------------------------------------------------------------ CRC-32

TEST(Crc32, MatchesKnownVector) {
  // The canonical zlib/IEEE check value.
  const char msg[] = "123456789";
  EXPECT_EQ(crc32(msg, 9), 0xcbf43926u);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  const char msg[] = "congestion optimization in global placement";
  const std::uint32_t whole = crc32(msg, sizeof(msg) - 1);
  std::uint32_t split = crc32(msg, 10);
  split = crc32(msg + 10, sizeof(msg) - 1 - 10, split);
  EXPECT_EQ(split, whole);
  EXPECT_NE(crc32(msg, 5), whole);
}

// ------------------------------------------------- checkpoint round trips

CongestionFcn small_net(unsigned seed) {
  CongestionFcnConfig fc;
  fc.in_channels = 3;
  fc.base_width = 4;
  nn::reset_init_seed(seed);
  return CongestionFcn(fc);
}

TEST(CheckpointIntegrity, V2RoundTripRestoresEveryParameter) {
  CongestionFcn a = small_net(1);
  CongestionFcn b = small_net(2);
  std::stringstream buf;
  nn::save_parameters(a, buf);
  nn::load_parameters(b, buf);
  const auto pa = a.named_parameters();
  const auto pb = b.named_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].second.data(), pb[i].second.data()) << pa[i].first;
  }
}

TEST(CheckpointIntegrity, FlippedBitFailsChecksum) {
  CongestionFcn a = small_net(3);
  std::stringstream buf;
  nn::save_parameters(a, buf);
  std::string bytes = buf.str();
  ASSERT_GT(bytes.size(), 64u);
  // One bit inside the last tensor's float payload (the digest is the
  // final 4 bytes): structurally valid, so only the CRC can catch it.
  bytes[bytes.size() - 8] ^= 0x10;
  std::istringstream corrupt(bytes);
  CongestionFcn b = small_net(4);
  try {
    nn::load_parameters(b, corrupt, "unit.bin");
    FAIL() << "corrupt stream loaded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("unit.bin"), std::string::npos) << e.what();
  }
}

TEST(CheckpointIntegrity, TruncationReportsSourceAndByteOffset) {
  CongestionFcn a = small_net(5);
  std::stringstream buf;
  nn::save_parameters(a, buf);
  const std::string bytes = buf.str();
  std::istringstream truncated(bytes.substr(0, bytes.size() / 2));
  CongestionFcn b = small_net(6);
  try {
    nn::load_parameters(b, truncated, "half.bin");
    FAIL() << "truncated stream loaded";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated read"), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset"), std::string::npos) << what;
    EXPECT_NE(what.find("half.bin"), std::string::npos) << what;
  }
}

TEST(CheckpointIntegrity, UnversionedV1StreamStillLoads) {
  // Hand-write the legacy layout ([magic][count][entries], no sentinel,
  // no CRC) and check the back-compat path accepts it.
  CongestionFcn a = small_net(7);
  std::stringstream buf;
  const auto u32 = [&buf](std::uint32_t v) {
    buf.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const auto named = a.named_parameters();
  u32(0x4c41434fu);
  u32(static_cast<std::uint32_t>(named.size()));
  for (const auto& [name, tensor] : named) {
    u32(static_cast<std::uint32_t>(name.size()));
    buf.write(name.data(), static_cast<std::streamsize>(name.size()));
    u32(static_cast<std::uint32_t>(tensor.shape().size()));
    for (const int d : tensor.shape()) u32(static_cast<std::uint32_t>(d));
    buf.write(reinterpret_cast<const char*>(tensor.data().data()),
              static_cast<std::streamsize>(tensor.data().size() * sizeof(float)));
  }
  CongestionFcn b = small_net(8);
  nn::load_parameters(b, buf, "legacy.bin");
  EXPECT_EQ(a.named_parameters().front().second.data(),
            b.named_parameters().front().second.data());
}

TEST(CheckpointIntegrity, ImplausibleHeaderIsRejectedNotAllocated) {
  std::stringstream buf;
  const auto u32 = [&buf](std::uint32_t v) {
    buf.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  u32(0x4c41434fu);
  u32(0x7fffffffu);  // v1-style entry count from a corrupted header
  CongestionFcn b = small_net(9);
  EXPECT_THROW(nn::load_parameters(b, buf, "absurd.bin"), std::runtime_error);
}

TEST(CheckpointIntegrity, AtomicFileSaveLeavesNoTempAndReloads) {
  const std::string path = testing::TempDir() + "laco_reliability_ckpt.bin";
  CongestionFcn a = small_net(10);
  ASSERT_TRUE(nn::save_parameters_file(a, path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  CongestionFcn b = small_net(11);
  nn::load_parameters_file(b, path);
  EXPECT_EQ(a.named_parameters().front().second.data(),
            b.named_parameters().front().second.data());
  std::remove(path.c_str());
}

TEST(CheckpointIntegrity, RegistryRejectsCorruptCheckpointWithPath) {
  const std::string dir = testing::TempDir() + "laco_reliability_zoo";
  LacoModels models = *tiny_models(LacoScheme::kDreamCong);
  ASSERT_TRUE(save_models(models, dir));
  // Corrupt one byte of the congestion checkpoint, past the header.
  const std::string ckpt = dir + "/congestion.bin";
  {
    std::fstream f(ckpt, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f);
    f.seekp(64);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(64);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  serve::ModelRegistry registry;
  try {
    registry.get(dir);
    FAIL() << "corrupt model set loaded";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(dir), std::string::npos) << what;
    EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
  }
  EXPECT_FALSE(registry.resident(dir));
  // The corrupt load left no pending entry: a fixed checkpoint loads.
  LacoModels fixed = *tiny_models(LacoScheme::kDreamCong, 901);
  ASSERT_TRUE(save_models(fixed, dir));
  EXPECT_NE(registry.get(dir), nullptr);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointIntegrity, FeatureScaleErrorsNamePath) {
  const std::string path = testing::TempDir() + "laco_reliability_scale.txt";
  {
    std::ofstream out(path);
    out << "feature_scale v1\n1.0\n2.0\n";  // fewer channels than expected
  }
  try {
    FeatureScale::load(path);
    FAIL() << "truncated scale loaded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

// -------------------------------------------------------------- failpoints

TEST(Failpoints, DeterministicFirePattern) {
  auto& registry = FailpointRegistry::instance();
  FailpointSpec spec;
  spec.mode = FailpointMode::kError;
  spec.probability = 0.5;
  spec.seed = 123;
  const auto pattern_of = [&registry, &spec] {
    registry.arm("test.pattern", spec);  // arming resets the sequence
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      try {
        registry.evaluate("test.pattern");
        fired.push_back(false);
      } catch (const FailpointError& e) {
        EXPECT_EQ(e.failpoint(), "test.pattern");
        fired.push_back(true);
      }
    }
    return fired;
  };
  const std::vector<bool> first = pattern_of();
  const std::vector<bool> second = pattern_of();
  EXPECT_EQ(first, second);
  const auto fires = static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
  const FailpointStats stats = registry.stats("test.pattern");
  EXPECT_EQ(stats.evaluations, 64u);
  EXPECT_EQ(stats.fires, fires);
  registry.disarm("test.pattern");
}

TEST(Failpoints, ProbabilityEndpointsAndUnarmedNames) {
  auto& registry = FailpointRegistry::instance();
  registry.evaluate("test.never.armed");  // no-op, must not throw
  FailpointSpec always;
  always.mode = FailpointMode::kError;
  always.probability = 1.0;
  registry.arm("test.always", always);
  EXPECT_THROW(registry.evaluate("test.always"), FailpointError);
  FailpointSpec never;
  never.mode = FailpointMode::kError;
  never.probability = 0.0;
  registry.arm("test.never", never);
  registry.evaluate("test.never");
  registry.disarm_all();
  registry.evaluate("test.always");  // disarmed: silent again
}

TEST(Failpoints, SpecStringArmsAndValidates) {
  auto& registry = FailpointRegistry::instance();
  EXPECT_EQ(registry.configure_from_spec("a.b=error:0.25:42,c.d=delay:1:7:2.5"), 2);
  const auto armed = registry.armed();
  EXPECT_EQ(armed.size(), 2u);
  registry.evaluate("c.d");  // a 2.5 ms injected delay, not an error
  registry.disarm_all();
  EXPECT_TRUE(registry.armed().empty());
  EXPECT_THROW(registry.configure_from_spec("a.b=explode"), std::invalid_argument);
  EXPECT_THROW(registry.configure_from_spec("noequals"), std::invalid_argument);
}

// --------------------------------------------------------- circuit breaker

serve::CircuitBreaker::TimePoint fake_clock(double ms) {
  return serve::CircuitBreaker::TimePoint() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double, std::milli>(ms));
}

TEST(CircuitBreaker, OpensAfterThresholdAndRejects) {
  serve::CircuitBreaker breaker({/*failure_threshold=*/3, /*cooldown_ms=*/100.0});
  EXPECT_EQ(breaker.state(), serve::BreakerState::kClosed);
  breaker.record_failure(fake_clock(0));
  breaker.record_failure(fake_clock(1));
  EXPECT_TRUE(breaker.allow(fake_clock(2)));  // still closed below threshold
  breaker.record_failure(fake_clock(2));
  EXPECT_EQ(breaker.state(), serve::BreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_FALSE(breaker.allow(fake_clock(50)));  // cooldown not elapsed
}

TEST(CircuitBreaker, HalfOpenAdmitsSingleProbeThenCloses) {
  serve::CircuitBreaker breaker({2, 100.0});
  breaker.record_failure(fake_clock(0));
  breaker.record_failure(fake_clock(0));
  ASSERT_EQ(breaker.state(), serve::BreakerState::kOpen);
  EXPECT_TRUE(breaker.allow(fake_clock(150)));  // cooldown elapsed: the probe
  EXPECT_EQ(breaker.state(), serve::BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.allow(fake_clock(151)));  // probe in flight
  breaker.record_success();
  EXPECT_EQ(breaker.state(), serve::BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  EXPECT_TRUE(breaker.allow(fake_clock(152)));
}

TEST(CircuitBreaker, FailedProbeReopensWithFreshCooldown) {
  serve::CircuitBreaker breaker({1, 100.0});
  breaker.record_failure(fake_clock(0));
  ASSERT_EQ(breaker.state(), serve::BreakerState::kOpen);
  EXPECT_TRUE(breaker.allow(fake_clock(120)));
  breaker.record_failure(fake_clock(120));  // probe fails
  EXPECT_EQ(breaker.state(), serve::BreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  EXPECT_FALSE(breaker.allow(fake_clock(180)));  // new cooldown from t=120
  EXPECT_TRUE(breaker.allow(fake_clock(230)));
}

// ------------------------------------------------------- service hardening

TEST(ServiceConfig, ValidationClampsSoftKnobs) {
  serve::ServiceConfig sc;
  sc.num_threads = 0;
  sc.batcher.max_linger_ms = 0.0;  // would busy-loop the flusher
  sc.retry_backoff_ms = 5.0;
  sc.retry_backoff_max_ms = 1.0;
  const serve::ServiceConfig v = sc.validated();
  EXPECT_EQ(v.num_threads, 1);
  EXPECT_DOUBLE_EQ(v.batcher.max_linger_ms, serve::ServiceConfig::kMinLingerMs);
  EXPECT_GE(v.retry_backoff_max_ms, v.retry_backoff_ms);
}

TEST(ServiceConfigDeathTest, NegativeKnobsAreCallerBugs) {
  serve::ServiceConfig sc;
  sc.batcher.max_linger_ms = -1.0;
  EXPECT_DEATH((void)sc.validated(), "LACO_CHECK failed");
  serve::ServiceConfig sc2;
  sc2.max_retries = -2;
  EXPECT_DEATH((void)sc2.validated(), "LACO_CHECK failed");
}

TEST(ServiceReliability, ZeroLingerServiceStillServes) {
  serve::ServiceConfig sc;
  sc.num_threads = 2;
  sc.batcher.max_batch = 4;
  sc.batcher.max_linger_ms = 0.0;  // clamped, not a busy loop
  serve::InferenceService service(sc);
  const auto models = tiny_models(LacoScheme::kDreamCong);
  auto f = service.submit(models, serve::ModelKind::kCongestion, random_input(3, 8, 1));
  EXPECT_EQ(f.get().shape().size(), 4u);
}

TEST(ServiceReliability, ExpiredDeadlineYieldsTypedErrorNotHang) {
  serve::ServiceConfig sc;
  sc.num_threads = 1;
  sc.batcher.max_batch = 8;
  sc.batcher.max_linger_ms = 5.0;  // execution happens ≥5 ms after submit
  sc.deadline_ms = 1e-3;           // 1 µs: expired by then, deterministically
  serve::InferenceService service(sc);
  const auto models = tiny_models(LacoScheme::kDreamCong);
  std::vector<std::future<nn::Tensor>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(service.submit(models, serve::ModelKind::kCongestion,
                                     random_input(3, 8, static_cast<unsigned>(i))));
  }
  for (auto& f : futures) EXPECT_THROW(f.get(), serve::DeadlineExceededError);
  service.drain();
  const serve::ServiceCounters c = service.counters();
  EXPECT_EQ(c.deadline_expired, 3u);
  EXPECT_EQ(c.completed, 3u);
}

TEST(ServiceReliability, FailedBatchFailsOnlyItsOwnFutures) {
  serve::ServiceConfig sc;
  sc.num_threads = 2;
  sc.batcher.max_batch = 1;  // every submit cuts its own batch
  sc.breaker.failure_threshold = 1000;
  serve::InferenceService service(sc);
  const auto models = tiny_models(LacoScheme::kDreamCong);  // no look-ahead net
  auto bad = service.submit(models, serve::ModelKind::kLookAhead, random_input(3, 8, 1));
  auto good = service.submit(models, serve::ModelKind::kCongestion, random_input(3, 8, 2));
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get().dim(1), 1);  // unaffected by the sibling failure
  service.drain();
  EXPECT_EQ(service.counters().failed_batches, 1u);
}

TEST(ServiceReliability, BreakerOpensThenFailsFastWithTypedError) {
  serve::ServiceConfig sc;
  sc.num_threads = 1;
  sc.batcher.max_batch = 1;
  sc.breaker.failure_threshold = 2;
  sc.breaker.cooldown_ms = 1e9;  // never half-opens within the test
  serve::InferenceService service(sc);
  const auto models = tiny_models(LacoScheme::kDreamCong);
  for (int i = 0; i < 2; ++i) {
    auto f = service.submit(models, serve::ModelKind::kLookAhead,
                            random_input(3, 8, static_cast<unsigned>(i)));
    EXPECT_THROW(f.get(), std::runtime_error);
    service.drain();  // the failure is recorded before the next submit
  }
  EXPECT_EQ(service.breaker_state(models, serve::ModelKind::kLookAhead),
            serve::BreakerState::kOpen);
  // The congestion breaker for the same model set is independent.
  EXPECT_EQ(service.breaker_state(models, serve::ModelKind::kCongestion),
            serve::BreakerState::kClosed);
  auto rejected = service.submit(models, serve::ModelKind::kLookAhead, random_input(3, 8, 9));
  EXPECT_THROW(rejected.get(), serve::CircuitOpenError);
  const serve::ServiceCounters c = service.counters();
  EXPECT_EQ(c.breaker_rejected, 1u);
  EXPECT_EQ(c.breaker_opens, 1u);
  EXPECT_EQ(c.breakers_open, 1u);
  // A congestion request still flows normally.
  auto ok = service.submit(models, serve::ModelKind::kCongestion, random_input(3, 8, 10));
  EXPECT_EQ(ok.get().dim(1), 1);
}

TEST(ServiceReliability, ChaosMixedLoadEveryFutureResolves) {
  // ~10% of requests target the look-ahead net of a set that has none;
  // 4 client threads submit concurrently. Every future must resolve —
  // good ones with tensors, bad ones with clean errors. TSan-clean.
  serve::ServiceConfig sc;
  sc.num_threads = 2;
  sc.batcher.max_batch = 4;
  sc.batcher.max_linger_ms = 0.5;
  sc.breaker.failure_threshold = 1000000;  // keep failures deterministic
  const auto models = tiny_models(LacoScheme::kDreamCong);
  constexpr int kClients = 4;
  constexpr int kPerClient = 30;
  std::atomic<int> ok{0}, failed{0};
  {
    serve::InferenceService service(sc);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<std::future<nn::Tensor>> futures;
        for (int i = 0; i < kPerClient; ++i) {
          const bool bad = i % 10 == 0;  // 10% injected failures
          futures.push_back(service.submit(
              models, bad ? serve::ModelKind::kLookAhead : serve::ModelKind::kCongestion,
              random_input(3, 8, static_cast<unsigned>(c * 1000 + i))));
        }
        for (auto& f : futures) {
          try {
            f.get();
            ++ok;
          } catch (const std::exception&) {
            ++failed;
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    service.drain();
    const serve::ServiceCounters counters = service.counters();
    EXPECT_EQ(counters.completed, static_cast<std::uint64_t>(kClients * kPerClient));
    EXPECT_EQ(counters.in_flight, 0u);
    EXPECT_GT(counters.failed_batches, 0u);
  }
  EXPECT_EQ(ok.load(), kClients * (kPerClient - kPerClient / 10));
  EXPECT_EQ(failed.load(), kClients * (kPerClient / 10));
}

TEST(ServiceReliability, RetryAndRecoveryUnderInjectedFaults) {
  if (!failpoints_compiled_in()) {
    GTEST_SKIP() << "LACO_FAILPOINT hook sites compiled out (build with -DLACO_FAILPOINTS=ON)";
  }
  auto& registry = FailpointRegistry::instance();
  FailpointSpec spec;
  spec.mode = FailpointMode::kError;
  spec.probability = 1.0;
  registry.arm("serve.forward", spec);
  serve::ServiceConfig sc;
  sc.num_threads = 1;
  sc.batcher.max_batch = 1;
  sc.max_retries = 2;
  sc.retry_backoff_ms = 0.1;
  sc.breaker.failure_threshold = 1;
  sc.breaker.cooldown_ms = 20.0;
  serve::InferenceService service(sc);
  const auto models = tiny_models(LacoScheme::kDreamCong);

  auto doomed = service.submit(models, serve::ModelKind::kCongestion, random_input(3, 8, 1));
  EXPECT_THROW(doomed.get(), FailpointError);  // transient, but retries exhausted
  service.drain();
  serve::ServiceCounters c = service.counters();
  EXPECT_EQ(c.retried_batches, 2u);  // max_retries extra attempts
  EXPECT_EQ(c.failed_batches, 1u);
  EXPECT_EQ(service.breaker_state(models, serve::ModelKind::kCongestion),
            serve::BreakerState::kOpen);

  // Heal the fault, wait out the cooldown: the next request is the
  // half-open probe, succeeds, and closes the breaker.
  registry.disarm("serve.forward");
  std::this_thread::sleep_for(40ms);
  auto probe = service.submit(models, serve::ModelKind::kCongestion, random_input(3, 8, 2));
  EXPECT_EQ(probe.get().dim(1), 1);
  service.drain();
  EXPECT_EQ(service.breaker_state(models, serve::ModelKind::kCongestion),
            serve::BreakerState::kClosed);
}

// ---------------------------------------------------- graceful degradation

LacoModels broken_models() {
  // f expects 5 input channels but kDreamCong builds 3-channel inputs:
  // every learned forward throws a shape error.
  LacoModels models;
  models.scheme = LacoScheme::kDreamCong;
  CongestionFcnConfig fc;
  fc.in_channels = f_in_channels(LacoScheme::kDreamCong) + 2;
  fc.base_width = 4;
  nn::reset_init_seed(77);
  models.congestion = std::make_shared<CongestionFcn>(fc);
  return models;
}

PenaltyConfig small_penalty_config() {
  PenaltyConfig pc;
  pc.features_hi = FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, true};
  pc.features_lo = FeatureConfig{8, 8, QuasiVoxScheme::kWeightedSum, true};
  pc.frames = 3;
  pc.spacing = 5;
  pc.start_iteration = 5;
  pc.apply_every = 1;
  return pc;
}

TEST(GracefulDegradation, AnalyticFallbackKeepsPenaltyActive) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 60;
  Design d = generate_design(gcfg);
  PenaltyConfig pc = small_penalty_config();
  pc.degrade_threshold = 2;
  pc.reprobe_after = 3;
  CongestionPenalty penalty(pc, broken_models());

  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  for (const CellId cid : d.movable_cells()) gx[static_cast<std::size_t>(cid)] = 0.01;
  const std::vector<double> gx_before = gx;

  double last = 0.0;
  for (int iter = pc.start_iteration; iter < pc.start_iteration + 12; ++iter) {
    last = penalty(d, iter, gx, gy);
  }
  const PenaltyStats& stats = penalty.stats();
  EXPECT_EQ(stats.applications, 12u);
  EXPECT_EQ(stats.learned_applications, 0u);  // every learned attempt fails
  EXPECT_GE(stats.learned_failures, 2u);
  EXPECT_EQ(stats.analytic_fallbacks, 12u);
  EXPECT_GE(stats.degradations, 1u);  // threshold crossed, benched, re-probed
  EXPECT_GT(last, 0.0);               // analytic RUDY² loss is positive
  double moved = 0.0;
  for (std::size_t i = 0; i < gx.size(); ++i) moved += std::abs(gx[i] - gx_before[i]);
  EXPECT_GT(moved, 0.0);  // the fallback still pushes cells
}

TEST(GracefulDegradation, HealthyModelNeverDegrades) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 60;
  Design d = generate_design(gcfg);
  CongestionPenalty penalty(small_penalty_config(), *tiny_models(LacoScheme::kDreamCong));
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  gx[static_cast<std::size_t>(d.movable_cells()[0])] = 1.0;
  for (int iter = 0; iter < 10; ++iter) penalty(d, iter, gx, gy);
  EXPECT_EQ(penalty.stats().learned_failures, 0u);
  EXPECT_EQ(penalty.stats().analytic_fallbacks, 0u);
  EXPECT_FALSE(penalty.degraded());
}

TEST(GracefulDegradation, PlacementRunCompletesOnBrokenModel) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 80;
  Design d = generate_design(gcfg);
  LacoPlacerConfig cfg;
  cfg.scheme = LacoScheme::kDreamCong;
  cfg.placer.bin_nx = 8;
  cfg.placer.bin_ny = 8;
  cfg.placer.max_iterations = 40;
  cfg.penalty = small_penalty_config();
  cfg.penalty.degrade_threshold = 2;
  cfg.router.grid.nx = 8;
  cfg.router.grid.ny = 8;
  const LacoModels models = broken_models();
  const LacoRunResult result = run_laco_placement(d, cfg, &models);
  EXPECT_GT(result.placement.iterations, 0);
  EXPECT_GT(result.penalty_stats.applications, 0u);
  EXPECT_EQ(result.penalty_stats.analytic_fallbacks, result.penalty_stats.applications);
  EXPECT_GT(result.penalty_stats.learned_failures, 0u);
}

// ----------------------------------------------------------- misc hardening

TEST(SnapshotDeathTest, ZeroSpacingAbortsInsteadOfSigfpe) {
  SnapshotConfig cfg;
  cfg.spacing = 0;
  EXPECT_DEATH(SnapshotCollector collector(cfg), "LACO_CHECK failed");
}

}  // namespace
}  // namespace laco
