// laco-lint rule coverage: each fixture under tests/lint_fixtures
// violates exactly one rule; these tests assert the exact diagnostics
// (path, line, rule id, message) so a rule that silently stops firing
// breaks the build. LACO_LINT_FIXTURE_DIR is injected by CMake.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace {

using laco::lint::Diagnostic;
using laco::lint::lint_file;

std::filesystem::path fixture(const std::string& name) {
  return std::filesystem::path(LACO_LINT_FIXTURE_DIR) / name;
}

std::vector<std::string> diags(const std::string& name, const std::string& relpath) {
  std::vector<std::string> out;
  for (const Diagnostic& d : lint_file(fixture(name), relpath)) out.push_back(d.str());
  return out;
}

TEST(LintRules, PragmaOnceMissing) {
  EXPECT_EQ(diags("missing_pragma.hpp", "src/fixture/missing_pragma.hpp"),
            std::vector<std::string>{
                "src/fixture/missing_pragma.hpp:1: [pragma-once] header must use '#pragma once'"});
}

TEST(LintRules, BareAssertOnlyInSrc) {
  EXPECT_EQ(diags("bare_assert.cpp", "src/fixture/bare_assert.cpp"),
            std::vector<std::string>{
                "src/fixture/bare_assert.cpp:10: [bare-assert] use LACO_CHECK/LACO_DCHECK "
                "(util/check.hpp); bare asserts vanish under NDEBUG"});
  // The same file under tests/ is fine: GoogleTest code may assert.
  EXPECT_TRUE(diags("bare_assert.cpp", "tests/bare_assert.cpp").empty());
}

TEST(LintRules, NakedNewAndDelete) {
  const std::vector<std::string> expected = {
      "src/fixture/naked_new.cpp:8: [naked-new] use std::make_unique/std::make_shared or "
      "containers instead of naked allocation",
      "src/fixture/naked_new.cpp:9: [naked-new] use RAII owners instead of manual deallocation"};
  EXPECT_EQ(diags("naked_new.cpp", "src/fixture/naked_new.cpp"), expected);
}

TEST(LintRules, RandForbiddenEverywhereButRngImpl) {
  const std::vector<std::string> expected = {
      "src/fixture/uses_rand.cpp:7: [rand] use util/rng.hpp (seeded, reproducible) instead of "
      "the C PRNG",
      "src/fixture/uses_rand.cpp:8: [rand] use util/rng.hpp (seeded, reproducible) instead of "
      "the C PRNG"};
  EXPECT_EQ(diags("uses_rand.cpp", "src/fixture/uses_rand.cpp"), expected);
  // The rng implementation itself is the one allowed wrapper point.
  EXPECT_TRUE(diags("uses_rand.cpp", "src/util/rng.cpp").empty());
}

TEST(LintRules, IostreamOnlyOutsideLoggingToolsBench) {
  const std::vector<std::string> expected = {
      "src/fixture/uses_cout.cpp:6: [iostream] use util/logging.hpp (LACO_LOG_*) for library "
      "output",
      "src/fixture/uses_cout.cpp:7: [iostream] use util/logging.hpp (LACO_LOG_*) for library "
      "output"};
  EXPECT_EQ(diags("uses_cout.cpp", "src/fixture/uses_cout.cpp"), expected);
  EXPECT_TRUE(diags("uses_cout.cpp", "bench/uses_cout.cpp").empty());
  EXPECT_TRUE(diags("uses_cout.cpp", "tools/uses_cout.cpp").empty());
  EXPECT_TRUE(diags("uses_cout.cpp", "src/util/logging.cpp").empty());
}

TEST(LintRules, UnguardedMutexMember) {
  EXPECT_EQ(diags("unguarded_mutex.hpp", "src/fixture/unguarded_mutex.hpp"),
            std::vector<std::string>{
                "src/fixture/unguarded_mutex.hpp:12: [mutex-guard] mutex member without any "
                "LACO_GUARDED_BY annotation in this header"});
  // util/mutex.hpp wraps the raw std::mutex and is exempt.
  EXPECT_TRUE(diags("unguarded_mutex.hpp", "src/util/mutex.hpp").empty());
}

TEST(LintRules, ForwardOutsideNoGradGuard) {
  const std::vector<std::string> expected = {
      "src/serve/nograd_missing.cpp:7: [nograd-forward] model forward() in src/serve must run "
      "under nn::NoGradGuard",
      "src/serve/nograd_missing.cpp:12: [nograd-forward] model forward() in src/serve must run "
      "under nn::NoGradGuard"};
  EXPECT_EQ(diags("nograd_missing.cpp", "src/serve/nograd_missing.cpp"), expected);
  // Outside src/serve the contract is out of scope.
  EXPECT_TRUE(diags("nograd_missing.cpp", "src/laco/nograd_missing.cpp").empty());
}

TEST(LintRules, CatchSwallowInFaultHandlingLayers) {
  const std::vector<std::string> expected = {
      "src/serve/catch_swallow.cpp:10: [catch-swallow] catch (...) in src/serve//src/laco must "
      "rethrow, log (LACO_LOG_*), or forward the exception (set_exception/fail_batch); "
      "swallowed faults defeat the reliability layer"};
  EXPECT_EQ(diags("catch_swallow.cpp", "src/serve/catch_swallow.cpp"), expected);
  // src/laco is the other fault-handling layer; elsewhere out of scope.
  EXPECT_EQ(diags("catch_swallow.cpp", "src/laco/catch_swallow.cpp").size(), 1u);
  EXPECT_TRUE(diags("catch_swallow.cpp", "src/placer/catch_swallow.cpp").empty());
  EXPECT_TRUE(diags("catch_swallow.cpp", "tools/catch_swallow.cpp").empty());
}

TEST(LintRules, PlanHotPathMustNotAllocate) {
  const auto expect_line = [](int line) {
    return "src/plan/executor_fixture.cpp:" + std::to_string(line) +
           ": [plan-hot-alloc] no allocations in the plan executor hot path: Tensor "
           "factories, make_shared/make_unique, and container growth belong in "
           "Workspace::prepare (docs/PLAN.md)";
  };
  const std::vector<std::string> expected = {expect_line(8),  expect_line(9),
                                             expect_line(10), expect_line(11),
                                             expect_line(12), expect_line(13),
                                             expect_line(14), expect_line(15)};
  EXPECT_EQ(diags("plan_hot_alloc.cpp", "src/plan/executor_fixture.cpp"), expected);
  // The rule is scoped to executor translation units: the compiler and
  // cache (cold path) allocate freely, as does everything outside
  // src/plan.
  EXPECT_TRUE(diags("plan_hot_alloc.cpp", "src/plan/compiler.cpp").empty());
  EXPECT_TRUE(diags("plan_hot_alloc.cpp", "src/serve/batcher.cpp").empty());
  // The real executor stays clean under its real relpath.
  EXPECT_TRUE(diags("../../src/plan/executor.cpp", "src/plan/executor.cpp").empty());
}

TEST(LintRules, CleanFileHasNoDiagnostics) {
  EXPECT_TRUE(diags("clean.hpp", "src/fixture/clean.hpp").empty());
}

TEST(LintRules, StripperRemovesCommentsAndStringsOnly) {
  const std::string stripped = laco::lint::strip_comments_and_strings(
      "int x = 1; // trailing\nconst char* s = \"str\\\"ing\";\n/* multi\nline */ int y;\n");
  EXPECT_EQ(stripped,
            "int x = 1;            \nconst char* s =           ;\n        \n        int y;\n");
}

TEST(LintTree, UnregisteredTestFileIsFlagged) {
  // Synthesized tree: test_good.cpp is registered, test_orphan.cpp is
  // not — only the orphan may be diagnosed, and only by this rule.
  namespace fs = std::filesystem;
  const fs::path root = fs::path(::testing::TempDir()) / "lint_reg_tree";
  fs::remove_all(root);
  fs::create_directories(root / "tests");
  const auto put = [](const fs::path& p, const std::string& text) {
    std::ofstream out(p);
    out << text;
  };
  put(root / "tests" / "test_good.cpp", "int main() { return 0; }\n");
  put(root / "tests" / "test_orphan.cpp", "int main() { return 0; }\n");
  put(root / "tests" / "helper.cpp", "int helper() { return 1; }\n");  // not a test: exempt
  put(root / "tests" / "CMakeLists.txt", "laco_add_test(test_good)\n");

  std::vector<std::string> violations;
  for (const Diagnostic& d : laco::lint::lint_tree(root)) violations.push_back(d.str());
  EXPECT_EQ(violations,
            std::vector<std::string>{
                "tests/test_orphan.cpp:1: [test-registered] register it with "
                "laco_add_test(test_orphan) in tests/CMakeLists.txt — unregistered tests "
                "never run"});

  // Registering the orphan clears the diagnostic (whitespace-tolerant).
  put(root / "tests" / "CMakeLists.txt",
      "laco_add_test(test_good)\nlaco_add_test( test_orphan )\n");
  EXPECT_TRUE(laco::lint::lint_tree(root).empty());
  fs::remove_all(root);
}

// Regression pins for the tokenizer-based stripper (analyze_core):
// each of these fixtures made the old hand-rolled state machine
// misfire or drift line numbers.

TEST(LintStripper, RawStringBodiesNeverMatchRules) {
  // Violations spelled inside R"doc(...)doc" are prose; the one real
  // allocation after the literal keeps its exact line number.
  EXPECT_EQ(diags("raw_string.cpp", "src/fixture/raw_string.cpp"),
            std::vector<std::string>{
                "src/fixture/raw_string.cpp:12: [naked-new] use "
                "std::make_unique/std::make_shared or containers instead of naked allocation"});
}

TEST(LintStripper, MacroContinuationLinesAreNotCode) {
  EXPECT_EQ(diags("macro_continuation.cpp", "src/fixture/macro_continuation.cpp"),
            std::vector<std::string>{});
}

TEST(LintStripper, SplicedStringLiteralKeepsLineNumbers) {
  // The backslash-newline splice inside the literal used to swallow a
  // newline and shift every later diagnostic up a line.
  EXPECT_EQ(diags("spliced_string.cpp", "src/fixture/spliced_string.cpp"),
            std::vector<std::string>{
                "src/fixture/spliced_string.cpp:7: [naked-new] use "
                "std::make_unique/std::make_shared or containers instead of naked allocation"});
}

TEST(LintTree, RepoIsCleanAndWalkSkipsFixtures) {
  // The ctest gate runs the binary; this is the API-level equivalent,
  // and proves the walk never descends into lint_fixtures/.
  const std::filesystem::path root = std::filesystem::path(LACO_LINT_FIXTURE_DIR) / ".." / "..";
  const std::vector<std::string> files = laco::lint::collect_files(root);
  ASSERT_FALSE(files.empty());
  for (const std::string& rel : files) {
    EXPECT_EQ(rel.find("lint_fixtures"), std::string::npos) << rel;
    EXPECT_EQ(rel.find("analyze_fixtures"), std::string::npos) << rel;
  }
  std::vector<std::string> violations;
  for (const Diagnostic& d : laco::lint::lint_tree(root)) violations.push_back(d.str());
  EXPECT_EQ(violations, std::vector<std::string>{});
}

}  // namespace
