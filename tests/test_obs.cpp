// src/obs under contention and at its export boundaries: exact counter
// totals across a ThreadPool, well-nested trace spans per thread,
// structurally valid Chrome trace JSON, and the laco-bench schema
// validator. The same binary runs under the TSan CI job, so the
// hammer tests double as data-race probes (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace laco::obs {
namespace {

// --- registry under contention ------------------------------------------

TEST(MetricRegistry, CounterTotalsAreExactAcrossThreadPool) {
  MetricRegistry reg;
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  {
    ThreadPool pool(4);
    for (int t = 0; t < kTasks; ++t) {
      ASSERT_TRUE(pool.submit([&reg] {
        // Re-resolve by name every time: the get-or-create path itself
        // is part of what must be thread-safe.
        Counter& c = reg.counter("hammer.count");
        Gauge& g = reg.gauge("hammer.gauge");
        Histogram& h = reg.histogram("hammer.hist", {10.0, 100.0, 1000.0});
        for (int i = 0; i < kAddsPerTask; ++i) {
          c.add(1);
          g.record_max(static_cast<double>(i));
          h.observe(1.0);  // exactly representable: the sum stays exact
        }
      }));
    }
  }  // pool dtor drains + joins — totals below are quiescent reads
  EXPECT_EQ(reg.counter("hammer.count").value(),
            static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
  EXPECT_EQ(reg.gauge("hammer.gauge").value(), static_cast<double>(kAddsPerTask - 1));
  const HistogramSnapshot snap = reg.histogram("hammer.hist").snapshot();
  EXPECT_EQ(snap.total, static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
  EXPECT_EQ(snap.sum, static_cast<double>(kTasks) * kAddsPerTask);
  EXPECT_EQ(snap.min, 1.0);
  EXPECT_EQ(snap.max, 1.0);
}

TEST(MetricRegistry, ReferencesSurviveResetAndStayRegistered) {
  MetricRegistry reg;
  Counter& c = reg.counter("keep.me");
  c.add(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);   // zeroed in place, not destroyed
  c.add(2);
  EXPECT_EQ(reg.counter("keep.me").value(), 2u);  // same instrument
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_TRUE(snap.counters.count("keep.me"));
  EXPECT_EQ(snap.counters.at("keep.me"), 2u);
}

TEST(MetricRegistry, SnapshotJsonAndStringCarryAllInstruments) {
  MetricRegistry reg;
  reg.counter("a.count").add(3);
  reg.gauge("a.gauge").set(2.5);
  reg.histogram("a.hist").observe(7.0);
  const MetricsSnapshot snap = reg.snapshot();
  const Json j = snap.to_json();
  EXPECT_EQ(j.at("counters").at("a.count").as_int(), 3);
  EXPECT_EQ(j.at("gauges").at("a.gauge").as_double(), 2.5);
  EXPECT_EQ(j.at("histograms").at("a.hist").at("count").as_int(), 1);
  const std::string text = snap.to_string();
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("a.gauge"), std::string::npos);
  // Prefix filter drops non-matching names.
  const std::string filtered = snap.to_string("a.g");
  EXPECT_NE(filtered.find("a.gauge"), std::string::npos);
  EXPECT_EQ(filtered.find("a.count"), std::string::npos);
}

TEST(Histogram, ExponentialBoundsAscendAndCoverHi) {
  const std::vector<double> b = Histogram::exponential_bounds(0.05, 50000.0, 2.0);
  ASSERT_GE(b.size(), 2u);
  EXPECT_EQ(b.front(), 0.05);
  EXPECT_GE(b.back(), 50000.0);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]);
}

// --- tracing -------------------------------------------------------------

/// Per-tid well-nestedness: RAII spans on one thread must form a proper
/// bracket structure — any two spans are disjoint or one contains the
/// other. Partial overlap means begin/end got attributed to the wrong
/// thread or the recorder scrambled timestamps.
void expect_well_nested(const std::vector<TraceEvent>& events) {
  std::map<int, std::vector<TraceEvent>> by_tid;
  for (const TraceEvent& e : events) by_tid[e.tid].push_back(e);
  for (auto& [tid, track] : by_tid) {
    std::sort(track.begin(), track.end(), [](const TraceEvent& a, const TraceEvent& b) {
      return a.ts_us < b.ts_us;
    });
    for (std::size_t i = 0; i < track.size(); ++i) {
      for (std::size_t j = i + 1; j < track.size(); ++j) {
        const double a0 = track[i].ts_us, a1 = a0 + track[i].dur_us;
        const double b0 = track[j].ts_us, b1 = b0 + track[j].dur_us;
        const bool disjoint = b0 >= a1 - 1e-9;
        const bool contained = b1 <= a1 + 1e-9;
        EXPECT_TRUE(disjoint || contained)
            << "tid " << tid << ": spans [" << a0 << "," << a1 << ") '" << track[i].name
            << "' and [" << b0 << "," << b1 << ") '" << track[j].name << "' partially overlap";
      }
    }
  }
}

TEST(Trace, ConcurrentSpansAreWellNestedPerThread) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.start();
  constexpr int kTasks = 16;
  {
    ThreadPool pool(3);
    for (int t = 0; t < kTasks; ++t) {
      ASSERT_TRUE(pool.submit([t] {
        TraceSpan outer("task " + std::to_string(t), "test");
        for (int i = 0; i < 3; ++i) {
          TraceSpan inner("step", "test");
        }
      }));
    }
  }
  rec.stop();
  const std::vector<TraceEvent> events = rec.events();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kTasks) * 4);  // 1 outer + 3 inner
  expect_well_nested(events);
  std::set<int> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_GE(tids.size(), 1u);
  EXPECT_LE(tids.size(), 3u);  // at most one track per pool worker
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.ts_us, 0.0);
    EXPECT_GE(e.dur_us, 0.0);
    EXPECT_EQ(e.category, "test");
  }
  rec.clear();
}

TEST(Trace, DisabledRecorderDropsSpans) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.stop();
  rec.clear();
  {
    TraceSpan span("invisible", "test");
  }
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(Trace, ChromeTraceJsonIsStructurallyValid) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.start();
  {
    TraceSpan outer("outer", "test");
    TraceSpan inner("inner", "test");
  }
  rec.stop();

  const std::string path = ::testing::TempDir() + "/obs_chrome.trace.json";
  ASSERT_TRUE(rec.write_chrome_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in);
  std::ostringstream buf;
  buf << in.rdbuf();
  const Json doc = Json::parse(buf.str());  // throws on malformed JSON

  // The exact shape chrome://tracing / Perfetto accept.
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  const JsonArray& evs = doc.at("traceEvents").as_array();
  ASSERT_EQ(evs.size(), 2u);
  std::set<std::string> names;
  for (const Json& e : evs) {
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_EQ(e.at("cat").as_string(), "test");
    EXPECT_TRUE(e.at("name").is_string());
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_TRUE(e.at("pid").is_number());
    EXPECT_TRUE(e.at("tid").is_number());
    names.insert(e.at("name").as_string());
  }
  EXPECT_EQ(names, (std::set<std::string>{"outer", "inner"}));
  rec.clear();
  std::remove(path.c_str());
}

TEST(Trace, PhaseSpanFeedsBreakdownAndRecorder) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.start();
  RuntimeBreakdown breakdown;
  {
    PhaseSpan span(&breakdown, "unit phase");
  }
  {
    PhaseSpan null_target(nullptr, "no breakdown");  // must be safe
  }
  rec.stop();
  EXPECT_GE(breakdown.seconds("unit phase"), 0.0);
  EXPECT_EQ(breakdown.table().size(), 1u);  // null-target span adds nothing
  const std::vector<TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  for (const TraceEvent& e : events) EXPECT_EQ(e.category, "phase");
  rec.clear();
}

// --- bench reports -------------------------------------------------------

Json minimal_valid_report() {
  BenchReporter report("unit");
  report.set_setting("grid", Json(16));
  report.set_metric("speedup", 2.0);
  report.add_row("sweep", [] {
    Json row = Json::object();
    row["threads"] = 2;
    row["rps"] = 123.5;
    return row;
  }());
  return report.to_json();
}

TEST(BenchReporter, RoundTripsThroughFileAndValidates) {
  const std::string path = ::testing::TempDir() + "/BENCH_unit.json";
  {
    BenchReporter report("unit");
    report.set_setting("grid", Json(16));
    report.set_metric("speedup", 2.0);
    ASSERT_TRUE(report.write(path));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in);
  std::ostringstream buf;
  buf << in.rdbuf();
  const Json doc = Json::parse(buf.str());
  EXPECT_EQ(BenchReporter::validate(doc), "");
  EXPECT_EQ(doc.at("schema").as_string(), "laco-bench");
  EXPECT_EQ(doc.at("schema_version").as_int(), BenchReporter::kSchemaVersion);
  EXPECT_EQ(doc.at("name").as_string(), "unit");
  EXPECT_EQ(doc.at("metrics").at("speedup").as_double(), 2.0);
  std::remove(path.c_str());
}

TEST(BenchReporter, ValidateRejectsMalformedReports) {
  EXPECT_EQ(BenchReporter::validate(minimal_valid_report()), "");

  Json wrong_schema = minimal_valid_report();
  wrong_schema["schema"] = "not-laco-bench";
  EXPECT_NE(BenchReporter::validate(wrong_schema), "");

  Json wrong_version = minimal_valid_report();
  wrong_version["schema_version"] = 999;
  EXPECT_NE(BenchReporter::validate(wrong_version), "");

  Json missing_metrics = minimal_valid_report();
  JsonObject& obj = missing_metrics.as_object();
  obj.erase(std::remove_if(obj.begin(), obj.end(),
                           [](const auto& kv) { return kv.first == "metrics"; }),
            obj.end());
  EXPECT_NE(BenchReporter::validate(missing_metrics), "");

  Json string_metric = minimal_valid_report();
  string_metric["metrics"]["speedup"] = "fast";
  EXPECT_NE(BenchReporter::validate(string_metric), "");

  Json series_not_array = minimal_valid_report();
  series_not_array["series"]["sweep"] = 7;
  EXPECT_NE(BenchReporter::validate(series_not_array), "");

  EXPECT_NE(BenchReporter::validate(Json(3.0)), "");  // not even an object
}

// --- json ----------------------------------------------------------------

TEST(Json, ParseDumpRoundTripPreservesStructure) {
  const std::string text =
      R"({"a": 1, "b": [true, null, "x\n\"y\""], "c": {"d": -2.5e3}, "e": ""})";
  const Json doc = Json::parse(text);
  const Json again = Json::parse(doc.dump());
  EXPECT_EQ(again.at("a").as_int(), 1);
  ASSERT_TRUE(again.at("b").is_array());
  EXPECT_EQ(again.at("b").as_array().size(), 3u);
  EXPECT_TRUE(again.at("b").as_array()[0].as_bool());
  EXPECT_TRUE(again.at("b").as_array()[1].is_null());
  EXPECT_EQ(again.at("b").as_array()[2].as_string(), "x\n\"y\"");
  EXPECT_EQ(again.at("c").at("d").as_double(), -2500.0);
  EXPECT_EQ(again.at("e").as_string(), "");
  // Indented and compact dumps parse to the same document.
  EXPECT_EQ(Json::parse(doc.dump(2)).dump(), doc.dump());
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Json::parse("1 2"), std::runtime_error);
}

}  // namespace
}  // namespace laco::obs
