// Differential tests for the tiled conv/norm kernels (docs/KERNELS.md):
// the optimized nn:: ops must reproduce the naive nn::reference oracle
// *bitwise* — forwards and autograd backwards — across a shape sweep
// covering strides, paddings, groups, non-square kernels/inputs, and
// the zero-skip paths; plus finite-difference gradient checks and
// bitwise determinism across ThreadPool sizes {1, 2, 8}.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "nn/autograd.hpp"
#include "nn/kernel_pool.hpp"
#include "nn/ops.hpp"
#include "nn/reference_kernels.hpp"

namespace laco::nn {
namespace {

Tensor randn(Shape shape, unsigned seed, float lo = -1.0f, float hi = 1.0f) {
  Tensor t = Tensor::zeros(std::move(shape));
  fill_uniform(t, lo, hi, seed);
  return t;
}

/// Independent tensor with identical bits (fresh autograd graph).
Tensor copy_of(const Tensor& t, bool requires_grad = false) {
  Tensor c = Tensor::zeros(t.shape());
  std::memcpy(c.data().data(), t.data().data(), t.numel() * sizeof(float));
  c.set_requires_grad(requires_grad);
  return c;
}

testing::AssertionResult bitwise_equal(const std::vector<float>& a, const std::vector<float>& b,
                                       const char* what) {
  if (a.size() != b.size()) {
    return testing::AssertionFailure() << what << ": size " << a.size() << " vs " << b.size();
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) {
        return testing::AssertionFailure()
               << what << ": first difference at [" << i << "]: " << a[i] << " vs " << b[i];
      }
    }
  }
  return testing::AssertionSuccess();
}

// ------------------------------------------------------------- conv2d

struct ConvCase {
  int n, cin, h, w, cout, kh, kw, stride, padding, groups;
};

std::string conv_case_name(const ConvCase& c) {
  return std::to_string(c.n) + "x" + std::to_string(c.cin) + "x" + std::to_string(c.h) + "x" +
         std::to_string(c.w) + "_k" + std::to_string(c.kh) + "x" + std::to_string(c.kw) + "_s" +
         std::to_string(c.stride) + "_p" + std::to_string(c.padding) + "_g" +
         std::to_string(c.groups);
}

const ConvCase kConvCases[] = {
    {1, 3, 8, 8, 4, 3, 3, 1, 1, 1},   // vanilla 3x3 same-conv
    {2, 4, 9, 7, 6, 3, 3, 2, 1, 1},   // stride 2, non-square input, odd dims
    {1, 4, 8, 8, 4, 3, 3, 1, 1, 2},   // grouped
    {1, 4, 7, 7, 8, 3, 3, 2, 0, 4},   // groups=4, no padding
    {1, 2, 6, 6, 3, 1, 1, 1, 0, 1},   // 1x1 pointwise
    {1, 2, 6, 6, 3, 1, 1, 2, 0, 1},   // 1x1 strided
    {1, 3, 5, 9, 2, 3, 1, 1, 1, 1},   // non-square kernel 3x1
    {1, 3, 9, 5, 2, 1, 3, 2, 1, 1},   // non-square kernel 1x3, stride 2
    {2, 2, 5, 5, 2, 3, 3, 3, 2, 1},   // stride 3, padding 2
    {1, 1, 3, 3, 1, 3, 3, 1, 2, 1},   // padding wider than interior
    {1, 2, 4, 4, 2, 4, 4, 2, 1, 2},   // even kernel, grouped, strided
    {1, 3, 16, 12, 5, 3, 3, 1, 1, 1}, // bigger: interior GEMM dominates
};

class Conv2dDifferential : public testing::TestWithParam<ConvCase> {};

TEST_P(Conv2dDifferential, BitwiseMatchesReferenceForwardAndBackward) {
  const ConvCase c = GetParam();
  Tensor x = randn({c.n, c.cin, c.h, c.w}, 100 + c.h, -1.0f, 1.0f);
  Tensor w = randn({c.cout, c.cin / c.groups, c.kh, c.kw}, 200 + c.kh);
  Tensor b = randn({c.cout}, 300 + c.cout);
  x.set_requires_grad(true);
  w.set_requires_grad(true);
  b.set_requires_grad(true);
  Tensor xr = copy_of(x, true), wr = copy_of(w, true), br = copy_of(b, true);

  Tensor y = conv2d(x, w, b, c.stride, c.padding, c.groups);
  Tensor yr = reference::conv2d(xr, wr, br, c.stride, c.padding, c.groups);
  ASSERT_EQ(y.shape(), yr.shape()) << conv_case_name(c);
  EXPECT_TRUE(bitwise_equal(y.data(), yr.data(), "forward")) << conv_case_name(c);

  sum(square(y)).backward();
  sum(square(yr)).backward();
  EXPECT_TRUE(bitwise_equal(x.grad(), xr.grad(), "x.grad")) << conv_case_name(c);
  EXPECT_TRUE(bitwise_equal(w.grad(), wr.grad(), "w.grad")) << conv_case_name(c);
  EXPECT_TRUE(bitwise_equal(b.grad(), br.grad(), "b.grad")) << conv_case_name(c);
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, Conv2dDifferential, testing::ValuesIn(kConvCases),
                         [](const testing::TestParamInfo<ConvCase>& info) {
                           return conv_case_name(info.param);
                         });

TEST(Conv2dDifferential, NoBiasBitwise) {
  Tensor x = randn({1, 3, 7, 7}, 41);
  Tensor w = randn({4, 3, 3, 3}, 42);
  Tensor y = conv2d(x, w, Tensor(), 2, 1);
  Tensor yr = reference::conv2d(copy_of(x), copy_of(w), Tensor(), 2, 1);
  EXPECT_TRUE(bitwise_equal(y.data(), yr.data(), "forward"));
}

TEST(Conv2dDifferential, SparseUpstreamGradientBitwise) {
  // relu zeroes most of the upstream gradient, exercising the
  // gout == 0 skip in both backward passes.
  Tensor x = randn({1, 2, 8, 8}, 51);
  Tensor w = randn({3, 2, 3, 3}, 52);
  Tensor b = randn({3}, 53);
  x.set_requires_grad(true);
  w.set_requires_grad(true);
  Tensor xr = copy_of(x, true), wr = copy_of(w, true), br = copy_of(b);
  sum(relu(conv2d(x, w, b, 1, 1))).backward();
  sum(relu(reference::conv2d(xr, wr, br, 1, 1))).backward();
  EXPECT_TRUE(bitwise_equal(x.grad(), xr.grad(), "x.grad"));
  EXPECT_TRUE(bitwise_equal(w.grad(), wr.grad(), "w.grad"));
}

// ---------------------------------------------------- conv_transpose2d

struct ConvTCase {
  int n, cin, h, w, cout_g, kh, kw, stride, padding, output_padding, groups;
};

std::string convt_case_name(const ConvTCase& c) {
  return std::to_string(c.n) + "x" + std::to_string(c.cin) + "x" + std::to_string(c.h) + "x" +
         std::to_string(c.w) + "_k" + std::to_string(c.kh) + "x" + std::to_string(c.kw) + "_s" +
         std::to_string(c.stride) + "_p" + std::to_string(c.padding) + "_op" +
         std::to_string(c.output_padding) + "_g" + std::to_string(c.groups);
}

const ConvTCase kConvTCases[] = {
    {1, 4, 4, 4, 3, 4, 4, 2, 1, 0, 1},  // the DREAM-Cong deconv shape family
    {2, 3, 5, 4, 2, 3, 3, 2, 1, 1, 1},  // output_padding, non-square input
    {1, 4, 4, 4, 2, 3, 3, 1, 0, 0, 2},  // grouped, stride 1
    {1, 4, 3, 5, 1, 2, 3, 3, 0, 2, 4},  // groups=4, stride 3, non-square kernel
    {1, 2, 6, 6, 2, 1, 1, 1, 0, 0, 1},  // 1x1
    {1, 2, 4, 4, 2, 3, 3, 2, 2, 1, 1},  // padding 2 (negative obase ranges)
};

class ConvT2dDifferential : public testing::TestWithParam<ConvTCase> {};

TEST_P(ConvT2dDifferential, BitwiseMatchesReferenceForwardAndBackward) {
  const ConvTCase c = GetParam();
  Tensor x = randn({c.n, c.cin, c.h, c.w}, 400 + c.h);
  Tensor w = randn({c.cin, c.cout_g, c.kh, c.kw}, 500 + c.kw);
  Tensor b = randn({c.cout_g * c.groups}, 600 + c.cout_g);
  // Exact zeros in the input exercise the x == 0 contribution skip.
  x.data()[0] = 0.0f;
  x.data()[x.numel() / 2] = 0.0f;
  x.set_requires_grad(true);
  w.set_requires_grad(true);
  b.set_requires_grad(true);
  Tensor xr = copy_of(x, true), wr = copy_of(w, true), br = copy_of(b, true);

  Tensor y = conv_transpose2d(x, w, b, c.stride, c.padding, c.output_padding, c.groups);
  Tensor yr =
      reference::conv_transpose2d(xr, wr, br, c.stride, c.padding, c.output_padding, c.groups);
  ASSERT_EQ(y.shape(), yr.shape()) << convt_case_name(c);
  EXPECT_TRUE(bitwise_equal(y.data(), yr.data(), "forward")) << convt_case_name(c);

  sum(square(y)).backward();
  sum(square(yr)).backward();
  EXPECT_TRUE(bitwise_equal(x.grad(), xr.grad(), "x.grad")) << convt_case_name(c);
  EXPECT_TRUE(bitwise_equal(w.grad(), wr.grad(), "w.grad")) << convt_case_name(c);
  EXPECT_TRUE(bitwise_equal(b.grad(), br.grad(), "b.grad")) << convt_case_name(c);
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, ConvT2dDifferential, testing::ValuesIn(kConvTCases),
                         [](const testing::TestParamInfo<ConvTCase>& info) {
                           return convt_case_name(info.param);
                         });

TEST(ConvT2dDifferential, ZeroRegionInputBitwise) {
  // A half-zero input makes the skip path dominate.
  Tensor x = randn({1, 2, 6, 6}, 61);
  for (std::size_t i = 0; i < x.numel() / 2; ++i) x.data()[i] = 0.0f;
  Tensor w = randn({2, 3, 4, 4}, 62);
  Tensor y = conv_transpose2d(x, w, Tensor(), 2, 1);
  Tensor yr = reference::conv_transpose2d(copy_of(x), copy_of(w), Tensor(), 2, 1);
  EXPECT_TRUE(bitwise_equal(y.data(), yr.data(), "forward"));
}

// ----------------------------------------------------------- group_norm

struct GnCase {
  int n, c, h, w, groups;
};

const GnCase kGnCases[] = {
    {1, 4, 5, 5, 1}, {2, 4, 6, 3, 2}, {1, 8, 4, 4, 4}, {3, 6, 1, 7, 3}, {1, 2, 1, 1, 2},
};

class GroupNormDifferential : public testing::TestWithParam<GnCase> {};

TEST_P(GroupNormDifferential, BitwiseMatchesReferenceForwardAndBackward) {
  const GnCase c = GetParam();
  Tensor x = randn({c.n, c.c, c.h, c.w}, 700 + c.c, -2.0f, 2.0f);
  Tensor gamma = randn({c.c}, 800 + c.c, 0.5f, 1.5f);
  Tensor beta = randn({c.c}, 900 + c.c);
  x.set_requires_grad(true);
  gamma.set_requires_grad(true);
  beta.set_requires_grad(true);
  Tensor xr = copy_of(x, true), gr = copy_of(gamma, true), br = copy_of(beta, true);

  Tensor y = group_norm(x, c.groups, gamma, beta);
  Tensor yr = reference::group_norm(xr, c.groups, gr, br);
  EXPECT_TRUE(bitwise_equal(y.data(), yr.data(), "forward"));

  sum(square(y)).backward();
  sum(square(yr)).backward();
  EXPECT_TRUE(bitwise_equal(x.grad(), xr.grad(), "x.grad"));
  EXPECT_TRUE(bitwise_equal(gamma.grad(), gr.grad(), "gamma.grad"));
  EXPECT_TRUE(bitwise_equal(beta.grad(), br.grad(), "beta.grad"));
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, GroupNormDifferential, testing::ValuesIn(kGnCases));

// ------------------------------------------- finite-difference checks

/// Linear loss with a fixed non-uniform upstream gradient: FD on a
/// quadratic loss would drown in float cancellation noise, while plain
/// sum() only ever exercises gout == 1.
Tensor weighted_sum(const Tensor& y, unsigned seed) {
  Tensor c = randn(y.shape(), seed);
  return sum(mul(y, c));
}

TEST(KernelGradCheck, Conv2dStridedGroupedNonSquare) {
  Tensor x = randn({1, 4, 6, 5}, 21);
  Tensor w = randn({4, 2, 3, 1}, 22);
  Tensor b = randn({4}, 23);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) { return weighted_sum(conv2d(t, w, b, 2, 1, 2), 1); }, x),
            2e-2);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) { return weighted_sum(conv2d(x, t, b, 2, 1, 2), 2); }, w),
            2e-2);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) { return weighted_sum(conv2d(x, w, t, 2, 1, 2), 3); }, b),
            2e-2);
}

TEST(KernelGradCheck, ConvTranspose2dOutputPaddedGrouped) {
  Tensor x = randn({1, 4, 4, 4}, 24);
  Tensor w = randn({4, 2, 3, 3}, 25);
  Tensor b = randn({4}, 26);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) {
                  return weighted_sum(conv_transpose2d(t, w, b, 2, 1, 1, 2), 4);
                },
                x),
            2e-2);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) {
                  return weighted_sum(conv_transpose2d(x, t, b, 2, 1, 1, 2), 5);
                },
                w),
            2e-2);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) {
                  return weighted_sum(conv_transpose2d(x, w, t, 2, 1, 1, 2), 6);
                },
                b),
            2e-2);
}

TEST(KernelGradCheck, GroupNormTiled) {
  Tensor x = randn({2, 4, 3, 3}, 27, -2.0f, 2.0f);
  Tensor gamma = randn({4}, 28, 0.5f, 1.5f);
  Tensor beta = randn({4}, 29);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) { return weighted_sum(group_norm(t, 2, gamma, beta), 7); },
                x),
            2e-2);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) { return weighted_sum(group_norm(x, 2, t, beta), 8); },
                gamma),
            2e-2);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) { return weighted_sum(group_norm(x, 2, gamma, t), 9); },
                beta),
            2e-2);
}

// -------------------------------------- cross-thread-count determinism

struct RunResult {
  std::vector<float> y, xg, w1g, w2g, gg;
};

/// conv2d → leaky_relu → group_norm → conv_transpose2d, forward +
/// backward, at a fixed thread count.
RunResult run_chain(int threads) {
  set_kernel_threads(threads);
  Tensor x = randn({2, 3, 9, 9}, 31);
  Tensor w1 = randn({8, 3, 3, 3}, 32);
  Tensor b1 = randn({8}, 33);
  Tensor gamma = randn({8}, 34, 0.5f, 1.5f);
  Tensor beta = randn({8}, 35);
  Tensor w2 = randn({8, 4, 4, 4}, 36);
  Tensor b2 = randn({4}, 37);
  x.set_requires_grad(true);
  w1.set_requires_grad(true);
  w2.set_requires_grad(true);
  gamma.set_requires_grad(true);
  Tensor h = group_norm(leaky_relu(conv2d(x, w1, b1, 2, 1), 0.1f), 4, gamma, beta);
  Tensor y = conv_transpose2d(h, w2, b2, 2, 1);
  sum(square(y)).backward();
  return RunResult{y.data(), x.grad(), w1.grad(), w2.grad(), gamma.grad()};
}

TEST(KernelDeterminism, BitwiseIdenticalAcrossThreadCounts) {
  const RunResult base = run_chain(1);
  for (int threads : {2, 8}) {
    const RunResult r = run_chain(threads);
    EXPECT_TRUE(bitwise_equal(base.y, r.y, "forward")) << threads << " threads";
    EXPECT_TRUE(bitwise_equal(base.xg, r.xg, "x.grad")) << threads << " threads";
    EXPECT_TRUE(bitwise_equal(base.w1g, r.w1g, "w1.grad")) << threads << " threads";
    EXPECT_TRUE(bitwise_equal(base.w2g, r.w2g, "w2.grad")) << threads << " threads";
    EXPECT_TRUE(bitwise_equal(base.gg, r.gg, "gamma.grad")) << threads << " threads";
  }
  set_kernel_threads(1);
}

TEST(KernelDeterminism, MatchesReferenceAtEightThreads) {
  set_kernel_threads(8);
  Tensor x = randn({1, 4, 11, 7}, 71);
  Tensor w = randn({6, 2, 3, 3}, 72);
  Tensor b = randn({6}, 73);
  Tensor y = conv2d(x, w, b, 1, 1, 2);
  Tensor yr = reference::conv2d(copy_of(x), copy_of(w), copy_of(b), 1, 1, 2);
  EXPECT_TRUE(bitwise_equal(y.data(), yr.data(), "forward"));
  set_kernel_threads(1);
}

}  // namespace
}  // namespace laco::nn
