#include <gtest/gtest.h>

#include "features/cell_flow.hpp"
#include "features/feature_stack.hpp"
#include "features/macro_region.hpp"
#include "features/pin_rudy.hpp"
#include "features/rudy.hpp"
#include "netlist/generator.hpp"

namespace laco {
namespace {

/// 16×16 core, two movable cells, one 2-pin net with pins at the cell
/// centers (offsets = half size).
Design two_cell_design(Point a, Point b) {
  Design d("t", Rect{0, 0, 16, 16}, 1.0);
  for (const Point p : {a, b}) {
    Cell c;
    c.width = 1.0;
    c.height = 1.0;
    c.x = p.x - 0.5;
    c.y = p.y - 0.5;
    d.add_cell(c);
  }
  const NetId n = d.add_net("n");
  d.add_pin(0, n, 0.5, 0.5);
  d.add_pin(1, n, 0.5, 0.5);
  return d;
}

TEST(Rudy, ValueMatchesEq3) {
  // Net box: (4,4)-(12,8) => w=8, h=4; value = 1/8 + 1/4 = 0.375.
  const Design d = two_cell_design({4, 4}, {12, 8});
  const GridMap r = compute_rudy(d, 16, 16);
  // Inside the box, e.g. bin (8, 6) fully covered: value as-is.
  EXPECT_NEAR(r.at(8, 6), 0.375, 1e-9);
  // Far outside: zero.
  EXPECT_NEAR(r.at(0, 15), 0.0, 1e-12);
}

TEST(Rudy, IntegralMatchesValueTimesArea) {
  const Design d = two_cell_design({4, 4}, {12, 8});
  const GridMap r = compute_rudy(d, 16, 16);
  // Sum over bins of value*overlap/bin_area = value * box_area / bin_area.
  EXPECT_NEAR(r.sum(), 0.375 * (8.0 * 4.0) / r.bin_area(), 1e-9);
}

TEST(Rudy, DegenerateNetStillDeposits) {
  const Design d = two_cell_design({8, 8}, {8, 8});
  const GridMap r = compute_rudy(d, 16, 16);
  EXPECT_GT(r.sum(), 0.0);
}

TEST(Rudy, BackwardMatchesEq17ValueTerm) {
  const Design d = two_cell_design({4, 4}, {12, 8});
  GridMap upstream(16, 16, d.core(), 1.0);  // all-ones
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  rudy_backward(d, upstream, gx, gy);
  // S = box_area / bin_area (upstream == 1); dL/dx_h = -S/w².
  const double s = (8.0 * 4.0) / upstream.bin_area();
  EXPECT_NEAR(gx[1], -s / 64.0, 1e-9);  // cell 1 holds x_max
  EXPECT_NEAR(gx[0], +s / 64.0, 1e-9);  // cell 0 holds x_min
  EXPECT_NEAR(gy[1], -s / 16.0, 1e-9);
  EXPECT_NEAR(gy[0], +s / 16.0, 1e-9);
}

TEST(Rudy, BackwardSkipsFixedCells) {
  Design d = two_cell_design({4, 4}, {12, 8});
  d.cell(1).fixed = true;  // note: movable list was built at add time, but
                           // the backward re-checks the flag directly
  GridMap upstream(16, 16, d.core(), 1.0);
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  rudy_backward(d, upstream, gx, gy);
  EXPECT_DOUBLE_EQ(gx[1], 0.0);
  EXPECT_NE(gx[0], 0.0);
}

TEST(Rudy, GradientPullsExtremesInward) {
  const Design d = two_cell_design({4, 4}, {12, 8});
  GridMap upstream(16, 16, d.core(), 1.0);
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  rudy_backward(d, upstream, gx, gy);
  // Descending the congestion value means shrinking 1/w: the max-x pin
  // has negative gradient (moving +x reduces RUDY value).
  EXPECT_LT(gx[1], 0.0);
  EXPECT_GT(gx[0], 0.0);
}

TEST(PinRudy, DepositsAtPinBins) {
  const Design d = two_cell_design({4, 4}, {12, 8});
  const GridMap p = compute_pin_rudy(d, 16, 16);
  const double value = 1.0 / 8 + 1.0 / 4;
  EXPECT_NEAR(p.at(4, 4), value, 1e-9);
  EXPECT_NEAR(p.at(12, 8), value, 1e-9);
  EXPECT_NEAR(p.sum(), 2 * value, 1e-9);
}

TEST(PinRudy, BackwardUsesNetValueDerivative) {
  const Design d = two_cell_design({4, 4}, {12, 8});
  GridMap upstream(16, 16, d.core(), 0.0);
  upstream.at(4, 4) = 1.0;  // only one pin's bin active
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  pin_rudy_backward(d, upstream, gx, gy);
  // s = 1 (single active bin); dvalue/dx_h = -1/64 at cell 1.
  EXPECT_NEAR(gx[1], -1.0 / 64.0, 1e-9);
  EXPECT_NEAR(gx[0], +1.0 / 64.0, 1e-9);
}

TEST(MacroRegion, BinaryCoverage) {
  Design d("m", Rect{0, 0, 8, 8}, 1.0);
  Cell macro;
  macro.kind = CellKind::kMacro;
  macro.fixed = true;
  macro.width = 4;
  macro.height = 4;
  macro.x = 0;
  macro.y = 0;
  d.add_cell(macro);
  Cell c;
  c.width = 1;
  c.height = 1;
  c.x = 6;
  c.y = 6;
  d.add_cell(c);
  const GridMap m = compute_macro_region(d, 8, 8);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(m.at(4, 4), 0.0);
  EXPECT_DOUBLE_EQ(m.at(6, 6), 0.0);  // standard cells are not macros
  EXPECT_DOUBLE_EQ(m.sum(), 16.0);
}

class CellFlowSchemes : public ::testing::TestWithParam<QuasiVoxScheme> {};

TEST_P(CellFlowSchemes, SingleCellFlowReproducesMotion) {
  Design d = two_cell_design({4, 4}, {12, 8});
  // Previous positions: both cells shifted by (-1, -2).
  std::vector<double> px{3, 11}, py{2, 6};
  const CellFlow flow = compute_cell_flow(d, px, py, 16, 16, GetParam());
  // Each cell is alone in its bin, so all schemes reduce to s·c or c.
  const double s = 1.0;  // unit-area cells
  const GridIndex b0 = flow.flow_x.bin_of({4, 4});
  switch (GetParam()) {
    case QuasiVoxScheme::kSampling:
    case QuasiVoxScheme::kWeightedSum:
      EXPECT_NEAR(flow.flow_x.at(b0.k, b0.l), s * 1.0, 1e-9);
      EXPECT_NEAR(flow.flow_y.at(b0.k, b0.l), s * 2.0, 1e-9);
      break;
    case QuasiVoxScheme::kAveraging:
      EXPECT_NEAR(flow.flow_x.at(b0.k, b0.l), 1.0, 1e-9);
      EXPECT_NEAR(flow.flow_y.at(b0.k, b0.l), 2.0, 1e-9);
      break;
  }
}

TEST_P(CellFlowSchemes, BackwardMatchesFiniteDifference) {
  // Loss = sum(upstream ⊙ flow). Perturb one cell's x and compare.
  Design d = two_cell_design({4.2, 4.3}, {12.1, 8.2});
  std::vector<double> px{3.2, 11.1}, py{2.3, 6.2};
  GridMap up_x(16, 16, d.core(), 0.0), up_y(16, 16, d.core(), 0.0);
  // Arbitrary but deterministic upstream.
  for (std::size_t i = 0; i < up_x.size(); ++i) {
    up_x[i] = 0.01 * static_cast<double>(i % 7);
    up_y[i] = 0.02 * static_cast<double>(i % 5);
  }
  const auto loss = [&]() {
    const CellFlow f = compute_cell_flow(d, px, py, 16, 16, GetParam());
    double acc = 0.0;
    for (std::size_t i = 0; i < up_x.size(); ++i) {
      acc += up_x[i] * f.flow_x[i] + up_y[i] * f.flow_y[i];
    }
    return acc;
  };
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  cell_flow_backward(d, up_x, up_y, GetParam(), gx, gy);

  const double eps = 1e-5;  // small enough to stay within the bin
  for (CellId cid : {CellId{0}, CellId{1}}) {
    Cell& cell = d.cell(cid);
    const double saved = cell.x;
    cell.x = saved + eps;
    const double up = loss();
    cell.x = saved - eps;
    const double down = loss();
    cell.x = saved;
    EXPECT_NEAR((up - down) / (2 * eps), gx[static_cast<std::size_t>(cid)], 1e-6)
        << "scheme=" << to_string(GetParam()) << " cell=" << cid;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, CellFlowSchemes,
                         ::testing::Values(QuasiVoxScheme::kSampling,
                                           QuasiVoxScheme::kAveraging,
                                           QuasiVoxScheme::kWeightedSum));

TEST(CellFlow, SamplingPicksLargestCell) {
  Design d("t", Rect{0, 0, 16, 16}, 1.0);
  Cell small;
  small.width = 1;
  small.height = 1;
  small.x = 4;
  small.y = 4;
  Cell big;
  big.width = 2;
  big.height = 2;
  big.x = 3.8;
  big.y = 3.8;
  d.add_cell(small);
  d.add_cell(big);
  // Flows: small moved +1 in x, big moved +3 in x.
  std::vector<double> px{d.cell(0).center().x - 1.0, d.cell(1).center().x - 3.0};
  std::vector<double> py{d.cell(0).center().y, d.cell(1).center().y};
  const CellFlow f = compute_cell_flow(d, px, py, 4, 4, QuasiVoxScheme::kSampling);
  const GridIndex b = f.flow_x.bin_of(d.cell(1).center());
  EXPECT_NEAR(f.flow_x.at(b.k, b.l), 4.0 * 3.0, 1e-9);  // s_big · c_big
}

TEST(CellFlow, WeightedSumBlendsBySize) {
  Design d("t", Rect{0, 0, 8, 8}, 1.0);
  Cell a;
  a.width = 1;
  a.height = 1;
  a.x = 1.0;
  a.y = 1.0;
  Cell b = a;
  b.width = 3;
  b.height = 1;
  b.x = 0.5;
  b.y = 0.8;
  d.add_cell(a);
  d.add_cell(b);
  std::vector<double> px{d.cell(0).center().x - 2.0, d.cell(1).center().x - 1.0};
  std::vector<double> py{d.cell(0).center().y, d.cell(1).center().y};
  const CellFlow f = compute_cell_flow(d, px, py, 2, 2, QuasiVoxScheme::kWeightedSum);
  // Both cells in bin (0,0); weighted sum = (1·2 + 3·1)/2.
  EXPECT_NEAR(f.flow_x.at(0, 0), (1.0 * 2.0 + 3.0 * 1.0) / 2.0, 1e-9);
}

TEST(FeatureExtractor, ComputesAllChannels) {
  GeneratorConfig cfg;
  cfg.num_cells = 120;
  cfg.seed = 5;
  Design d = generate_design(cfg);
  FeatureExtractor ex(FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, true});
  std::vector<double> px, py;
  d.get_movable_positions(px, py);
  for (double& v : px) v += 0.1;
  const FeatureFrame frame = ex.compute(d, &px, &py, 42);
  EXPECT_EQ(frame.iteration, 42);
  EXPECT_GT(frame.rudy.sum(), 0.0);
  EXPECT_GT(frame.pin_rudy.sum(), 0.0);
  EXPECT_LT(frame.flow_x.sum(), 0.0);  // all cells moved −0.1 relative to px
  EXPECT_EQ(&frame.channel(0), &frame.rudy);
  EXPECT_EQ(&frame.channel(4), &frame.flow_y);
  EXPECT_THROW(frame.channel(5), std::out_of_range);
}

TEST(FeatureExtractor, BackwardProducesMovableOrderGradients) {
  GeneratorConfig cfg;
  cfg.num_cells = 60;
  Design d = generate_design(cfg);
  FeatureExtractor ex(FeatureConfig{8, 8, QuasiVoxScheme::kWeightedSum, true});
  FeatureFrameGrad upstream{GridMap(8, 8, d.core(), 1.0), GridMap(8, 8, d.core(), 1.0),
                            GridMap(8, 8, d.core(), 0.5), GridMap(8, 8, d.core(), 0.5)};
  std::vector<double> gx, gy;
  ex.backward(d, upstream, gx, gy);
  EXPECT_EQ(gx.size(), d.num_movable());
  double nonzero = 0;
  for (const double v : gx) nonzero += std::abs(v);
  EXPECT_GT(nonzero, 0.0);
}

}  // namespace
}  // namespace laco
