#include <gtest/gtest.h>

#include <cmath>

#include "nn/autograd.hpp"
#include "nn/ops.hpp"

namespace laco::nn {
namespace {

Tensor randn(Shape shape, unsigned seed, float lo = -1.0f, float hi = 1.0f) {
  Tensor t = Tensor::zeros(std::move(shape));
  fill_uniform(t, lo, hi, seed);
  return t;
}

TEST(Tensor, CreationAndItem) {
  Tensor t = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.numel(), 4);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_THROW(t.item(), std::logic_error);
  EXPECT_FLOAT_EQ(Tensor::scalar(3.5f).item(), 3.5f);
  EXPECT_THROW(Tensor::from_data({3}, {1, 2}), std::invalid_argument);
}

TEST(Tensor, DetachSharesNoGraph) {
  Tensor a = Tensor::scalar(2.0f, true);
  Tensor b = square(a);
  Tensor c = b.detach();
  EXPECT_FALSE(c.requires_grad());
  c.data()[0] = 99.0f;
  EXPECT_FLOAT_EQ(b.data()[0], 4.0f);
}

TEST(Autograd, SimpleChain) {
  // loss = sum((2x)^2) = 4x², dloss/dx = 8x.
  Tensor x = Tensor::from_data({3}, {1, 2, 3}, true);
  Tensor loss = sum(square(scale(x, 2.0f)));
  loss.backward();
  EXPECT_FLOAT_EQ(loss.item(), 4 + 16 + 36);
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 16.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 24.0f);
}

TEST(Autograd, DiamondGraphAccumulates) {
  // loss = sum(x·x + x) -> dloss/dx = 2x + 1.
  Tensor x = Tensor::from_data({2}, {3, -1}, true);
  Tensor loss = sum(add(mul(x, x), x));
  loss.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 7.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], -1.0f);
}

TEST(Autograd, NoGradGuardSkipsGraph) {
  Tensor x = Tensor::scalar(2.0f, true);
  NoGradGuard guard;
  Tensor y = square(x);
  EXPECT_FALSE(y.requires_grad());
}

TEST(Autograd, BackwardRequiresScalar) {
  Tensor x = Tensor::from_data({2}, {1, 2}, true);
  Tensor y = square(x);
  EXPECT_THROW(y.backward(), std::logic_error);
}

TEST(ElementwiseForward, Values) {
  Tensor a = Tensor::from_data({4}, {-2, -0.5, 0.5, 2});
  EXPECT_FLOAT_EQ(leaky_relu(a, 0.1f).data()[0], -0.2f);
  EXPECT_FLOAT_EQ(leaky_relu(a, 0.1f).data()[3], 2.0f);
  EXPECT_FLOAT_EQ(relu(a).data()[0], 0.0f);
  EXPECT_NEAR(sigmoid(a).data()[3], 1.0f / (1.0f + std::exp(-2.0f)), 1e-6);
  EXPECT_NEAR(tanh_op(a).data()[0], std::tanh(-2.0f), 1e-6);
  EXPECT_NEAR(exp_op(a).data()[3], std::exp(2.0f), 1e-4);
  EXPECT_FLOAT_EQ(square(a).data()[0], 4.0f);
  EXPECT_FLOAT_EQ(neg(a).data()[3], -2.0f);
  EXPECT_FLOAT_EQ(add_scalar(a, 1.0f).data()[0], -1.0f);
}

TEST(ElementwiseForward, BinaryOps) {
  Tensor a = Tensor::from_data({2}, {1, 2});
  Tensor b = Tensor::from_data({2}, {10, 20});
  EXPECT_FLOAT_EQ(add(a, b).data()[1], 22.0f);
  EXPECT_FLOAT_EQ(sub(a, b).data()[0], -9.0f);
  EXPECT_FLOAT_EQ(mul(a, b).data()[1], 40.0f);
  Tensor c = Tensor::from_data({3}, {1, 2, 3});
  EXPECT_THROW(add(a, c), std::invalid_argument);
}

// Parameterized gradient checks across unary op kinds.
using UnaryFactory = Tensor (*)(const Tensor&);
class UnaryGradCheck : public ::testing::TestWithParam<std::pair<const char*, UnaryFactory>> {};

TEST_P(UnaryGradCheck, MatchesFiniteDifference) {
  Tensor x = randn({3, 4}, 99, 0.2f, 1.5f);  // positive domain (log/sqrt safe)
  const auto [name, op] = GetParam();
  const double err = gradient_check([op = op](const Tensor& t) { return sum(op(t)); }, x);
  EXPECT_LT(err, 2e-2) << name;
}

Tensor op_leaky(const Tensor& t) { return leaky_relu(t, 0.1f); }
Tensor op_sigmoid(const Tensor& t) { return sigmoid(t); }
Tensor op_tanh(const Tensor& t) { return tanh_op(t); }
Tensor op_exp(const Tensor& t) { return exp_op(t); }
Tensor op_log(const Tensor& t) { return log_op(t); }
Tensor op_square(const Tensor& t) { return square(t); }
Tensor op_scale(const Tensor& t) { return scale(t, -2.5f); }

INSTANTIATE_TEST_SUITE_P(
    Ops, UnaryGradCheck,
    ::testing::Values(std::make_pair("leaky_relu", &op_leaky),
                      std::make_pair("sigmoid", &op_sigmoid),
                      std::make_pair("tanh", &op_tanh), std::make_pair("exp", &op_exp),
                      std::make_pair("log", &op_log), std::make_pair("square", &op_square),
                      std::make_pair("scale", &op_scale)));

TEST(GradCheck, MulBothSides) {
  Tensor a = randn({6}, 1);
  Tensor b = randn({6}, 2);
  b.set_requires_grad(true);
  const double err =
      gradient_check([&b](const Tensor& t) { return sum(mul(t, b)); }, a);
  EXPECT_LT(err, 1e-2);
}

TEST(GradCheck, Linear) {
  Tensor w = randn({3, 5}, 7);
  Tensor b = randn({3}, 8);
  Tensor x = randn({2, 5}, 9);
  EXPECT_LT(gradient_check([&](const Tensor& t) { return sum(linear(t, w, b)); }, x), 1e-2);
  EXPECT_LT(gradient_check([&](const Tensor& t) { return sum(linear(x, t, b)); }, w), 1e-2);
  EXPECT_LT(gradient_check([&](const Tensor& t) { return sum(linear(x, w, t)); }, b), 1e-2);
}

TEST(LinearForward, KnownValues) {
  Tensor x = Tensor::from_data({1, 2}, {1, 2});
  Tensor w = Tensor::from_data({2, 2}, {1, 0, 0, 1});
  Tensor b = Tensor::from_data({2}, {10, 20});
  Tensor y = linear(x, w, b);
  EXPECT_FLOAT_EQ(y.data()[0], 11.0f);
  EXPECT_FLOAT_EQ(y.data()[1], 22.0f);
}

TEST(Conv2dForward, IdentityKernel) {
  Tensor x = randn({1, 1, 4, 4}, 3);
  Tensor w = Tensor::zeros({1, 1, 3, 3});
  w.data()[4] = 1.0f;  // center tap
  Tensor y = conv2d(x, w, Tensor(), 1, 1);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 4, 4}));
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(Conv2dForward, StrideAndShape) {
  Tensor x = randn({2, 3, 8, 8}, 4);
  Tensor w = randn({6, 3, 3, 3}, 5);
  Tensor b = randn({6}, 6);
  Tensor y = conv2d(x, w, b, 2, 1);
  EXPECT_EQ(y.shape(), (Shape{2, 6, 4, 4}));
}

TEST(Conv2dForward, GroupsPartitionChannels) {
  // With groups=2, output channel 0 must ignore input channel 1.
  Tensor x = Tensor::zeros({1, 2, 2, 2});
  for (int i = 4; i < 8; ++i) x.data()[static_cast<std::size_t>(i)] = 5.0f;  // channel 1
  Tensor w = Tensor::zeros({2, 1, 1, 1});
  w.data()[0] = 1.0f;
  w.data()[1] = 1.0f;
  Tensor y = conv2d(x, w, Tensor(), 1, 0, 2);
  EXPECT_FLOAT_EQ(y.data()[0], 0.0f);  // co 0 sees only ci 0 (zeros)
  EXPECT_FLOAT_EQ(y.data()[4], 5.0f);  // co 1 sees ci 1
}

TEST(GradCheck, Conv2d) {
  Tensor x = randn({1, 2, 5, 5}, 10);
  Tensor w = randn({3, 2, 3, 3}, 11);
  Tensor b = randn({3}, 12);
  EXPECT_LT(gradient_check([&](const Tensor& t) { return sum(conv2d(t, w, b, 2, 1)); }, x),
            2e-2);
  EXPECT_LT(gradient_check([&](const Tensor& t) { return sum(conv2d(x, t, b, 2, 1)); }, w),
            2e-2);
  EXPECT_LT(gradient_check([&](const Tensor& t) { return sum(conv2d(x, w, t, 2, 1)); }, b),
            2e-2);
}

TEST(GradCheck, Conv2dGrouped) {
  Tensor x = randn({1, 4, 4, 4}, 13);
  Tensor w = randn({4, 2, 3, 3}, 14);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) { return sum(conv2d(t, w, Tensor(), 1, 1, 2)); }, x),
            2e-2);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) { return sum(conv2d(x, t, Tensor(), 1, 1, 2)); }, w),
            2e-2);
}

TEST(ConvTranspose2dForward, UpsamplesShape) {
  Tensor x = randn({1, 4, 4, 4}, 15);
  Tensor w = randn({4, 2, 4, 4}, 16);
  Tensor y = conv_transpose2d(x, w, Tensor(), 2, 1);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 8, 8}));
}

TEST(ConvTranspose2dForward, InverseOfConvOnSumProperty) {
  // conv_transpose with all-ones 2x2 kernel, stride 2: total mass ×4? No:
  // each input contributes to 4 outputs, so sums scale by kernel sum.
  Tensor x = randn({1, 1, 3, 3}, 17, 0.0f, 1.0f);
  Tensor w = Tensor::full({1, 1, 2, 2}, 1.0f);
  Tensor y = conv_transpose2d(x, w, Tensor(), 2, 0);
  double sx = 0, sy = 0;
  for (float v : x.data()) sx += v;
  for (float v : y.data()) sy += v;
  EXPECT_NEAR(sy, 4.0 * sx, 1e-4);
}

TEST(GradCheck, ConvTranspose2d) {
  Tensor x = randn({1, 2, 3, 3}, 18);
  Tensor w = randn({2, 3, 4, 4}, 19);
  Tensor b = randn({3}, 20);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) { return sum(conv_transpose2d(t, w, b, 2, 1)); }, x),
            2e-2);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) { return sum(conv_transpose2d(x, t, b, 2, 1)); }, w),
            2e-2);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) { return sum(conv_transpose2d(x, w, t, 2, 1)); }, b),
            2e-2);
}

TEST(GroupNormForward, NormalizesPerGroup) {
  Tensor x = randn({2, 4, 3, 3}, 21);
  Tensor gamma = Tensor::full({4}, 1.0f);
  Tensor beta = Tensor::zeros({4});
  Tensor y = group_norm(x, 2, gamma, beta);
  // Each (n, group) slab has ~zero mean and ~unit variance.
  const std::size_t slab = 2 * 9;
  for (int n = 0; n < 2; ++n) {
    for (int g = 0; g < 2; ++g) {
      double m = 0, v = 0;
      const std::size_t base = (static_cast<std::size_t>(n) * 4 + g * 2) * 9;
      for (std::size_t i = 0; i < slab; ++i) m += y.data()[base + i];
      m /= slab;
      for (std::size_t i = 0; i < slab; ++i) {
        const double d = y.data()[base + i] - m;
        v += d * d;
      }
      v /= slab;
      EXPECT_NEAR(m, 0.0, 1e-5);
      EXPECT_NEAR(v, 1.0, 1e-3);
    }
  }
}

TEST(GradCheck, GroupNorm) {
  Tensor x = randn({1, 4, 3, 3}, 22);
  Tensor gamma = randn({4}, 23, 0.5f, 1.5f);
  Tensor beta = randn({4}, 24);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) { return sum(mul(group_norm(t, 2, gamma, beta),
                                                      group_norm(t, 2, gamma, beta))); },
                x),
            3e-2);
  EXPECT_LT(
      gradient_check([&](const Tensor& t) { return sum(square(group_norm(x, 2, t, beta))); },
                     gamma),
      3e-2);
  EXPECT_LT(
      gradient_check([&](const Tensor& t) { return sum(square(group_norm(x, 2, gamma, t))); },
                     beta),
      3e-2);
}

TEST(ShapeOps, ReshapeRoundTrip) {
  Tensor x = randn({2, 6}, 25);
  Tensor y = reshape(x, {3, 4});
  EXPECT_EQ(y.shape(), (Shape{3, 4}));
  EXPECT_THROW(reshape(x, {5, 5}), std::invalid_argument);
  EXPECT_LT(gradient_check([](const Tensor& t) { return sum(square(reshape(t, {12}))); },
                           x),
            1e-2);
}

TEST(ShapeOps, CatAndSliceChannels) {
  Tensor a = randn({1, 2, 3, 3}, 26);
  Tensor b = randn({1, 3, 3, 3}, 27);
  Tensor c = cat_channels({a, b});
  EXPECT_EQ(c.shape(), (Shape{1, 5, 3, 3}));
  Tensor back = slice_channels(c, 2, 5);
  for (std::size_t i = 0; i < b.data().size(); ++i) {
    EXPECT_FLOAT_EQ(back.data()[i], b.data()[i]);
  }
  EXPECT_THROW(slice_channels(c, 3, 3), std::invalid_argument);
}

TEST(GradCheck, CatAndSlice) {
  Tensor a = randn({1, 2, 2, 2}, 28);
  Tensor b = randn({1, 2, 2, 2}, 29);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) { return sum(square(cat_channels({t, b}))); }, a),
            1e-2);
  Tensor c = randn({1, 4, 2, 2}, 30);
  EXPECT_LT(gradient_check(
                [](const Tensor& t) { return sum(square(slice_channels(t, 1, 3))); }, c),
            1e-2);
}

TEST(Resample, UpsampleBilinearConstant) {
  Tensor x = Tensor::full({1, 1, 2, 2}, 3.0f);
  Tensor y = upsample_bilinear(x, 5, 7);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 5, 7}));
  for (const float v : y.data()) EXPECT_NEAR(v, 3.0f, 1e-6);
}

TEST(GradCheck, UpsampleBilinear) {
  Tensor x = randn({1, 2, 3, 3}, 31);
  EXPECT_LT(gradient_check(
                [](const Tensor& t) { return sum(square(upsample_bilinear(t, 6, 6))); }, x),
            1e-2);
}

TEST(Resample, AvgPoolValuesAndShape) {
  Tensor x = Tensor::from_data({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor y = avg_pool2d(x, 2);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y.data()[0], 2.5f);
  EXPECT_THROW(avg_pool2d(x, 3), std::invalid_argument);
}

TEST(GradCheck, AvgPoolAndGlobalPool) {
  Tensor x = randn({1, 2, 4, 4}, 32);
  EXPECT_LT(gradient_check([](const Tensor& t) { return sum(square(avg_pool2d(t, 2))); }, x),
            1e-2);
  EXPECT_LT(
      gradient_check([](const Tensor& t) { return sum(square(global_avg_pool(t))); }, x),
      1e-2);
}

TEST(Losses, MseKnownValue) {
  Tensor a = Tensor::from_data({2}, {1, 3});
  Tensor b = Tensor::from_data({2}, {0, 0});
  EXPECT_FLOAT_EQ(mse_loss(a, b).item(), (1.0f + 9.0f) / 2.0f);
  EXPECT_FLOAT_EQ(mean_square(a).item(), 5.0f);
}

TEST(Losses, VaeKlZeroAtStandardNormal) {
  Tensor mu = Tensor::zeros({1, 4});
  Tensor logvar = Tensor::zeros({1, 4});
  EXPECT_NEAR(vae_kl_loss(mu, logvar).item(), 0.0f, 1e-6);
}

TEST(Losses, VaeKlMatchesClosedForm) {
  // Single element: KL = 0.5 (exp(lv) + mu² − 1 − lv).
  Tensor mu = Tensor::from_data({1, 1}, {2.0f});
  Tensor logvar = Tensor::from_data({1, 1}, {0.5f});
  const float expected = 0.5f * (std::exp(0.5f) + 4.0f - 1.0f - 0.5f);
  EXPECT_NEAR(vae_kl_loss(mu, logvar).item(), expected, 1e-5);
}

TEST(GradCheck, VaeKl) {
  Tensor mu = randn({2, 3}, 33);
  Tensor logvar = randn({2, 3}, 34);
  EXPECT_LT(gradient_check([&](const Tensor& t) { return vae_kl_loss(t, logvar); }, mu), 1e-2);
  EXPECT_LT(gradient_check([&](const Tensor& t) { return vae_kl_loss(mu, t); }, logvar), 1e-2);
}

/// Runs `fn` expecting std::invalid_argument whose message contains
/// every string in `needles` (conv validation must name the offending
/// shapes, not just the rule).
template <typename Fn>
void expect_invalid_with(Fn&& fn, std::initializer_list<const char*> needles) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const char* needle : needles) {
      EXPECT_NE(msg.find(needle), std::string::npos)
          << "message \"" << msg << "\" lacks \"" << needle << "\"";
    }
  }
}

TEST(ConvValidation, Conv2dInconsistentGroupsReportsShapes) {
  Tensor x = randn({1, 3, 4, 4}, 81);
  Tensor w = randn({4, 2, 3, 3}, 82);  // cin/groups = 3 but weight says 2
  expect_invalid_with([&] { conv2d(x, w, Tensor()); },
                      {"groups", "[1, 3, 4, 4]", "[4, 2, 3, 3]"});
  Tensor w2 = randn({3, 2, 3, 3}, 83);  // cout=3 not divisible by groups=2
  Tensor x2 = randn({1, 4, 4, 4}, 84);
  expect_invalid_with([&] { conv2d(x2, w2, Tensor(), 1, 0, 2); },
                      {"groups", "[1, 4, 4, 4]", "[3, 2, 3, 3]"});
}

TEST(ConvValidation, Conv2dNonPositiveOutputReportsGeometry) {
  Tensor x = randn({1, 1, 2, 2}, 85);
  Tensor w = randn({1, 1, 5, 5}, 86);  // kernel larger than padded input
  expect_invalid_with([&] { conv2d(x, w, Tensor()); },
                      {"non-positive output", "[1, 1, 2, 2]", "[1, 1, 5, 5]", "stride 1"});
}

TEST(ConvValidation, ConvTranspose2dInconsistentChannelsReportsShapes) {
  Tensor x = randn({1, 3, 4, 4}, 87);
  Tensor w = randn({4, 2, 3, 3}, 88);  // weight cin = 4 != input cin = 3
  expect_invalid_with([&] { conv_transpose2d(x, w, Tensor()); },
                      {"channels", "[1, 3, 4, 4]", "[4, 2, 3, 3]"});
  Tensor w3 = randn({3, 2, 3, 3}, 89);  // cin=3 not divisible by groups=2
  expect_invalid_with([&] { conv_transpose2d(x, w3, Tensor(), 1, 0, 0, 2); },
                      {"groups", "[1, 3, 4, 4]"});
}

TEST(ConvValidation, ConvTranspose2dNonPositiveOutputReportsGeometry) {
  Tensor x = randn({1, 2, 1, 1}, 90);
  Tensor w = randn({2, 2, 3, 3}, 91);  // (1-1)·1 − 2·2 + 3 = −1
  expect_invalid_with([&] { conv_transpose2d(x, w, Tensor(), 1, 2); },
                      {"non-positive output", "[1, 2, 1, 1]", "padding 2"});
}

TEST(ConvValidation, NonTensorInputsReportRank) {
  Tensor x3 = randn({3, 4, 4}, 92);
  Tensor w = randn({2, 3, 3, 3}, 93);
  expect_invalid_with([&] { conv2d(x3, w, Tensor()); }, {"4-D", "[3, 4, 4]"});
  expect_invalid_with([&] { conv_transpose2d(x3, w, Tensor()); }, {"4-D", "[3, 4, 4]"});
}

}  // namespace
}  // namespace laco::nn
