#include <gtest/gtest.h>

#include "models/congestion_fcn.hpp"
#include "nn/ops.hpp"
#include "models/lookahead_simvp.hpp"
#include "models/model_io.hpp"
#include "models/vae_branch.hpp"
#include "nn/autograd.hpp"
#include "nn/optimizer.hpp"

namespace laco {
namespace {

TEST(CongestionFcn, OutputShapeMatchesInputResolution) {
  CongestionFcnConfig cfg;
  cfg.in_channels = 3;
  cfg.base_width = 4;
  CongestionFcn model(cfg);
  nn::Tensor x = nn::Tensor::zeros({1, 3, 32, 32});
  nn::Tensor y = model.forward(x);
  EXPECT_EQ(y.shape(), (nn::Shape{1, 1, 32, 32}));
}

TEST(CongestionFcn, SupportsWiderInputs) {
  CongestionFcnConfig cfg;
  cfg.in_channels = 10;
  cfg.base_width = 4;
  CongestionFcn model(cfg);
  nn::Tensor x = nn::Tensor::zeros({2, 10, 16, 16});
  EXPECT_EQ(model.forward(x).shape(), (nn::Shape{2, 1, 16, 16}));
}

TEST(CongestionFcn, GradientReachesInput) {
  CongestionFcnConfig cfg;
  cfg.in_channels = 3;
  cfg.base_width = 4;
  CongestionFcn model(cfg);
  nn::Tensor x = nn::Tensor::zeros({1, 3, 16, 16});
  nn::fill_uniform(x, 0.0f, 1.0f, 3);
  x.set_requires_grad(true);
  nn::Tensor loss = nn::mean_square(model.forward(x));
  loss.backward();
  ASSERT_EQ(x.grad().size(), x.data().size());
  double total = 0.0;
  for (const float g : x.grad()) total += std::abs(g);
  EXPECT_GT(total, 0.0);
}

TEST(CongestionFcn, LearnsIdentityHotspot) {
  // Sanity training task: predict the first input channel.
  nn::reset_init_seed(21);
  CongestionFcnConfig cfg;
  cfg.in_channels = 3;
  cfg.base_width = 4;
  CongestionFcn model(cfg);
  nn::Tensor x = nn::Tensor::zeros({1, 3, 16, 16});
  nn::fill_uniform(x, 0.0f, 1.0f, 7);
  nn::Tensor target = nn::slice_channels(x, 0, 1).detach();
  nn::Adam opt(model.parameters(), 3e-3f);
  double first = 0, last = 0;
  for (int i = 0; i < 80; ++i) {
    opt.zero_grad();
    nn::Tensor loss = nn::mse_loss(model.forward(x), target);
    loss.backward();
    opt.step();
    if (i == 0) first = loss.item();
    last = loss.item();
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(LookAhead, OutputIsOneFrame) {
  LookAheadConfig cfg;
  cfg.frames = 4;
  cfg.channels_per_frame = 5;
  cfg.base_width = 8;
  cfg.inception_blocks = 1;
  LookAheadModel model(cfg);
  nn::Tensor x = nn::Tensor::zeros({1, 20, 16, 16});
  const auto out = model.forward(x);
  EXPECT_EQ(out.prediction.shape(), (nn::Shape{1, 5, 16, 16}));
  EXPECT_EQ(out.latent.dim(1), cfg.base_width * 2);
  EXPECT_EQ(out.latent.dim(2), 4);  // two stride-2 stages
}

TEST(LookAhead, ThreeChannelVariant) {
  LookAheadConfig cfg;
  cfg.frames = 4;
  cfg.channels_per_frame = 3;
  cfg.base_width = 8;
  cfg.inception_blocks = 1;
  cfg.with_vae = false;
  LookAheadModel model(cfg);
  EXPECT_FALSE(model.has_vae());
  nn::Tensor x = nn::Tensor::zeros({1, 12, 16, 16});
  EXPECT_EQ(model.forward(x).prediction.shape(), (nn::Shape{1, 3, 16, 16}));
}

TEST(LookAhead, VaePresentWhenConfigured) {
  LookAheadConfig cfg;
  cfg.base_width = 8;
  cfg.inception_blocks = 1;
  cfg.with_vae = true;
  LookAheadModel model(cfg);
  EXPECT_TRUE(model.has_vae());
}

TEST(LookAhead, LearnsToCopyLastFrame) {
  // The easiest valid prediction: future ≈ present. The model should be
  // able to fit "output = last frame" quickly on a fixed sample.
  nn::reset_init_seed(5);
  LookAheadConfig cfg;
  cfg.frames = 2;
  cfg.channels_per_frame = 3;
  cfg.base_width = 8;
  cfg.inception_blocks = 1;
  cfg.with_vae = false;
  LookAheadModel model(cfg);
  nn::Tensor frames = nn::Tensor::zeros({1, 6, 16, 16});
  nn::fill_uniform(frames, 0.0f, 1.0f, 9);
  nn::Tensor target = nn::slice_channels(frames, 3, 6).detach();
  nn::Adam opt(model.parameters(), 3e-3f);
  double first = 0, last = 0;
  for (int i = 0; i < 60; ++i) {
    opt.zero_grad();
    nn::Tensor loss = nn::mse_loss(model.forward(frames).prediction, target);
    loss.backward();
    opt.step();
    if (i == 0) first = loss.item();
    last = loss.item();
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(VaeBranch, ShapesAndLoss) {
  VaeBranchConfig cfg;
  cfg.latent_channels = 8;
  cfg.z_channels = 4;
  VaeBranch vae(cfg);
  nn::Tensor latent = nn::Tensor::zeros({1, 8, 4, 4});
  nn::fill_uniform(latent, -1.0f, 1.0f, 11);
  const auto out = vae.forward(latent, 42);
  EXPECT_EQ(out.mu.shape(), (nn::Shape{1, 4, 4, 4}));
  EXPECT_EQ(out.logvar.shape(), (nn::Shape{1, 4, 4, 4}));
  EXPECT_EQ(out.reconstruction.shape(), latent.shape());
  const nn::Tensor loss = vae.loss(out, latent, 0.1f, 1.0f);
  EXPECT_GT(loss.item(), 0.0f);
}

TEST(VaeBranch, SamplingIsSeedDeterministic) {
  VaeBranchConfig cfg;
  cfg.latent_channels = 8;
  cfg.z_channels = 4;
  VaeBranch vae(cfg);
  nn::Tensor latent = nn::Tensor::zeros({1, 8, 4, 4});
  nn::fill_uniform(latent, -1.0f, 1.0f, 13);
  const auto a = vae.forward(latent, 7);
  const auto b = vae.forward(latent, 7);
  const auto c = vae.forward(latent, 8);
  EXPECT_EQ(a.reconstruction.data(), b.reconstruction.data());
  EXPECT_NE(a.reconstruction.data(), c.reconstruction.data());
}

TEST(VaeBranch, KlLossDrivesTowardStandardNormal) {
  nn::reset_init_seed(31);
  VaeBranchConfig cfg;
  cfg.latent_channels = 4;
  cfg.z_channels = 2;
  VaeBranch vae(cfg);
  nn::Tensor latent = nn::Tensor::zeros({1, 4, 4, 4});
  nn::fill_uniform(latent, -2.0f, 2.0f, 17);
  nn::Adam opt(vae.parameters(), 1e-2f);
  double first = 0, last = 0;
  unsigned seed = 100;
  for (int i = 0; i < 60; ++i) {
    opt.zero_grad();
    const auto out = vae.forward(latent, ++seed);
    nn::Tensor kl = nn::vae_kl_loss(out.mu, out.logvar);
    kl.backward();
    opt.step();
    if (i == 0) first = kl.item();
    last = kl.item();
  }
  EXPECT_LT(last, first);
}

TEST(ModelIo, GridMapTensorRoundTrip) {
  GridMap m(4, 3, Rect{0, 0, 4, 3}, 0.0);
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = static_cast<double>(i);
  nn::Tensor t = gridmap_to_tensor(m);
  EXPECT_EQ(t.shape(), (nn::Shape{1, 1, 3, 4}));
  const GridMap back = tensor_to_gridmap(t, 0, 0, m.region());
  EXPECT_NEAR(GridMap::l1_distance(m, back), 0.0, 1e-6);
}

TEST(ModelIo, FeatureScaleSaveLoad) {
  FeatureScale fs;
  fs.scale = {1.f, 2.f, 3.f, 4.f, 5.f};
  const std::string path = ::testing::TempDir() + "/scale.txt";
  ASSERT_TRUE(fs.save(path));
  const FeatureScale loaded = FeatureScale::load(path);
  EXPECT_EQ(loaded.scale, fs.scale);
  std::remove(path.c_str());
}

TEST(ModelIo, FrameToTensorAppliesScaleAndChannels) {
  FeatureFrame frame{GridMap(4, 4, 1.0), GridMap(4, 4, 2.0), GridMap(4, 4, 0.0),
                     GridMap(4, 4, 3.0), GridMap(4, 4, 4.0), 0};
  FeatureScale fs;
  fs.scale = {10.f, 100.f, 1.f, 1.f, 1.f};
  nn::Tensor t3 = frame_to_tensor(frame, fs, 3);
  EXPECT_EQ(t3.shape(), (nn::Shape{1, 3, 4, 4}));
  EXPECT_FLOAT_EQ(t3.data()[0], 10.0f);                  // rudy * 10
  EXPECT_FLOAT_EQ(t3.data()[16], 200.0f);                // pinrudy * 100
  nn::Tensor t5 = frame_to_tensor(frame, fs, 5);
  EXPECT_EQ(t5.dim(1), 5);
  EXPECT_FLOAT_EQ(t5.data()[4 * 16], 4.0f);  // flow_y
}

TEST(ModelIo, FramesToTensorStacksInOrder) {
  FeatureFrame f1{GridMap(2, 2, 1.0), GridMap(2, 2, 0.0), GridMap(2, 2, 0.0),
                  GridMap(2, 2, 0.0), GridMap(2, 2, 0.0), 0};
  FeatureFrame f2{GridMap(2, 2, 9.0), GridMap(2, 2, 0.0), GridMap(2, 2, 0.0),
                  GridMap(2, 2, 0.0), GridMap(2, 2, 0.0), 1};
  FeatureScale fs;
  nn::Tensor t = frames_to_tensor({&f1, &f2}, fs, 3);
  EXPECT_EQ(t.shape(), (nn::Shape{1, 6, 2, 2}));
  EXPECT_FLOAT_EQ(t.data()[0], 1.0f);       // first frame rudy
  EXPECT_FLOAT_EQ(t.data()[3 * 4], 9.0f);   // second frame rudy
}

TEST(ModelIo, ComputeFeatureScaleNormalizesP99) {
  FeatureFrame frame{GridMap(10, 10, 4.0), GridMap(10, 10, 2.0), GridMap(10, 10, 1.0),
                     GridMap(10, 10, 0.5), GridMap(10, 10, 0.25), 0};
  const FeatureScale fs = compute_feature_scale({&frame});
  EXPECT_NEAR(fs.scale[0], 0.25f, 1e-5);
  EXPECT_NEAR(fs.scale[1], 0.5f, 1e-5);
  EXPECT_NEAR(fs.scale[3], 2.0f, 1e-5);
}

}  // namespace
}  // namespace laco
