#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "placer/detailed_placer.hpp"
#include "placer/global_placer.hpp"
#include "placer/legalizer.hpp"

namespace laco {
namespace {

Design placed_design(int cells, unsigned seed) {
  GeneratorConfig cfg;
  cfg.num_cells = cells;
  cfg.seed = seed;
  Design d = generate_design(cfg);
  GlobalPlacerOptions opts;
  opts.bin_nx = 16;
  opts.bin_ny = 16;
  opts.max_iterations = 200;
  opts.min_iterations = 30;
  GlobalPlacer placer(d, opts);
  placer.run();
  return d;
}

TEST(Legalizer, ProducesLegalPlacement) {
  Design d = placed_design(300, 2);
  const LegalizeResult result = legalize(d);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.placed, d.num_movable());
  EXPECT_EQ(count_legality_violations(d), 0u);
}

TEST(Legalizer, DisplacementIsBounded) {
  Design d = placed_design(300, 3);
  const LegalizeResult result = legalize(d);
  // Mean displacement should be a small fraction of the core width for a
  // reasonably spread global placement.
  const double mean_disp = result.total_displacement / std::max<std::size_t>(1, result.placed);
  EXPECT_LT(mean_disp, 0.15 * d.core().width());
}

TEST(Legalizer, AvoidsMacros) {
  GeneratorConfig cfg;
  cfg.num_cells = 200;
  cfg.num_macros = 3;
  cfg.macro_area_fraction = 0.25;
  Design d = generate_design(cfg);
  // Dump all cells onto the macro area to force avoidance.
  std::vector<double> x, y;
  d.get_movable_positions(x, y);
  Point macro_center{0, 0};
  for (const Cell& c : d.cells()) {
    if (c.kind == CellKind::kMacro) {
      macro_center = c.center();
      break;
    }
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = macro_center.x;
    y[i] = macro_center.y;
  }
  d.set_movable_positions(x, y);
  legalize(d);
  EXPECT_EQ(count_legality_violations(d), 0u);
}

TEST(Legalizer, IdempotentOnLegalInput) {
  Design d = placed_design(150, 4);
  legalize(d);
  std::vector<double> x1, y1;
  d.get_movable_positions(x1, y1);
  const LegalizeResult again = legalize(d);
  EXPECT_EQ(again.failed, 0u);
  // A second pass moves cells very little (Tetris order may reshuffle
  // identical-x cells but stays legal).
  EXPECT_EQ(count_legality_violations(d), 0u);
}

TEST(DetailedPlacer, NeverIncreasesHpwl) {
  Design d = placed_design(250, 5);
  legalize(d);
  const DetailedPlaceResult result = detailed_place(d);
  EXPECT_LE(result.hpwl_after, result.hpwl_before + 1e-9);
}

TEST(DetailedPlacer, KeepsPlacementLegal) {
  Design d = placed_design(250, 6);
  legalize(d);
  detailed_place(d);
  EXPECT_EQ(count_legality_violations(d), 0u);
}

TEST(DetailedPlacer, AcceptsSomeSwapsOnShuffledRows) {
  // Construct a row of cells whose net connectivity prefers the reverse
  // order, so swaps are clearly profitable.
  Design d("row", Rect{0, 0, 20, 4}, 1.0);
  std::vector<CellId> cells;
  for (int i = 0; i < 4; ++i) {
    Cell c;
    c.width = 1;
    c.height = 1;
    c.x = 2.0 * i;
    c.y = 0.0;
    cells.push_back(d.add_cell(c));
  }
  // Anchor pads at both ends.
  Cell left_pad;
  left_pad.kind = CellKind::kPad;
  left_pad.fixed = true;
  left_pad.width = 0.5;
  left_pad.height = 1;
  left_pad.x = 0;
  left_pad.y = 3;
  Cell right_pad = left_pad;
  right_pad.x = 19.5;
  const CellId lp = d.add_cell(left_pad);
  const CellId rp = d.add_cell(right_pad);
  // cell 0 wants to be right, cell 3 wants to be left.
  const NetId n1 = d.add_net("n1");
  d.add_pin(cells[0], n1, 0.5, 0.5);
  d.add_pin(rp, n1, 0.25, 0.5);
  const NetId n2 = d.add_net("n2");
  d.add_pin(cells[3], n2, 0.5, 0.5);
  d.add_pin(lp, n2, 0.25, 0.5);
  const double before = d.hpwl();
  const DetailedPlaceResult result = detailed_place(d, DetailedPlacerOptions{4});
  EXPECT_GT(result.swaps_accepted, 0u);
  EXPECT_LT(d.hpwl(), before);
}

}  // namespace
}  // namespace laco
