// Tests for the auxiliary facilities: ASCII heatmap rendering and the
// model-zoo persistence of complete trained model sets.
#include <gtest/gtest.h>

#include <filesystem>

#include "gridmap/render.hpp"
#include "laco/model_zoo.hpp"

namespace laco {
namespace {

TEST(Render, UsesFullRampAndShape) {
  GridMap m(8, 4, Rect{0, 0, 8, 4});
  for (int k = 0; k < 8; ++k) m.at(k, 0) = k;  // gradient along the bottom row
  RenderOptions opts;
  const std::string art = ascii_heatmap(m, opts);
  // 4 data rows + 1 legend line, each data row 8 chars + newline.
  const std::size_t newlines = std::count(art.begin(), art.end(), '\n');
  EXPECT_EQ(newlines, 5u);
  EXPECT_NE(art.find('@'), std::string::npos);  // max value hits ramp top
  EXPECT_NE(art.find(' '), std::string::npos);  // min hits ramp bottom
}

TEST(Render, DownsamplesLargeMaps) {
  GridMap m(256, 256, Rect{0, 0, 1, 1}, 1.0);
  RenderOptions opts;
  opts.max_width = 32;
  opts.max_height = 16;
  const std::string art = ascii_heatmap(m, opts);
  // First row is 32 characters.
  EXPECT_EQ(art.find('\n'), 32u);
}

TEST(Render, ConstantMapDoesNotDivideByZero) {
  GridMap m(4, 4, Rect{0, 0, 1, 1}, 2.5);
  const std::string art = ascii_heatmap(m);
  EXPECT_FALSE(art.empty());
}

TEST(Render, FixedBoundsClamp) {
  GridMap m(2, 1, Rect{0, 0, 1, 1});
  m.at(0, 0) = -10.0;
  m.at(1, 0) = 10.0;
  RenderOptions opts;
  opts.lo = 0.0;
  opts.hi = 1.0;
  const std::string art = ascii_heatmap(m, opts);
  EXPECT_EQ(art[0], opts.ramp.front());
  EXPECT_EQ(art[1], opts.ramp.back());
}

LacoModels tiny_models(LacoScheme scheme) {
  LacoModels models;
  models.scheme = scheme;
  CongestionFcnConfig fc;
  fc.in_channels = f_in_channels(scheme);
  fc.base_width = 4;
  nn::reset_init_seed(900);
  models.congestion = std::make_shared<CongestionFcn>(fc);
  if (traits_of(scheme).uses_lookahead) {
    LookAheadConfig gc;
    gc.frames = 3;
    gc.channels_per_frame = g_channels(scheme);
    gc.base_width = 8;
    gc.inception_blocks = 1;
    gc.with_vae = traits_of(scheme).uses_vae;
    models.lookahead = std::make_shared<LookAheadModel>(gc);
  }
  models.scale_hi.scale = {1, 2, 3, 4, 5};
  models.scale_lo.scale = {6, 7, 8, 9, 10};
  return models;
}

TEST(ModelZoo, RoundTripFullLaco) {
  const std::string dir = ::testing::TempDir() + "/laco_zoo_full";
  const LacoModels original = tiny_models(LacoScheme::kCellFlowKL);
  ASSERT_TRUE(save_models(original, dir));
  const LacoModels loaded = load_models(dir);
  EXPECT_EQ(loaded.scheme, LacoScheme::kCellFlowKL);
  ASSERT_TRUE(loaded.lookahead);
  EXPECT_TRUE(loaded.lookahead->has_vae());
  EXPECT_EQ(loaded.scale_hi.scale, original.scale_hi.scale);
  EXPECT_EQ(loaded.scale_lo.scale, original.scale_lo.scale);
  // Parameters byte-identical.
  const auto a = original.congestion->parameters();
  const auto b = loaded.congestion->parameters();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].data(), b[i].data());
  const auto ga = original.lookahead->parameters();
  const auto gb = loaded.lookahead->parameters();
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) EXPECT_EQ(ga[i].data(), gb[i].data());
  std::filesystem::remove_all(dir);
}

TEST(ModelZoo, RoundTripDreamCongHasNoLookahead) {
  const std::string dir = ::testing::TempDir() + "/laco_zoo_dc";
  ASSERT_TRUE(save_models(tiny_models(LacoScheme::kDreamCong), dir));
  const LacoModels loaded = load_models(dir);
  EXPECT_EQ(loaded.scheme, LacoScheme::kDreamCong);
  EXPECT_FALSE(loaded.lookahead);
  std::filesystem::remove_all(dir);
}

TEST(ModelZoo, LoadedModelsDriveAPenalty) {
  const std::string dir = ::testing::TempDir() + "/laco_zoo_run";
  ASSERT_TRUE(save_models(tiny_models(LacoScheme::kLookAheadOnly), dir));
  const LacoModels loaded = load_models(dir);
  PenaltyConfig pc;
  pc.features_hi = FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, true};
  pc.features_lo = FeatureConfig{8, 8, QuasiVoxScheme::kWeightedSum, true};
  pc.frames = 3;
  pc.spacing = 5;
  EXPECT_NO_THROW(CongestionPenalty(pc, loaded));
  std::filesystem::remove_all(dir);
}

TEST(ModelZoo, MissingDirectoryThrows) {
  EXPECT_THROW(load_models("/nonexistent/laco_zoo"), std::runtime_error);
}

}  // namespace
}  // namespace laco
