#include <gtest/gtest.h>

#include <sstream>

#include "netlist/bookshelf_io.hpp"
#include "netlist/design.hpp"
#include "netlist/design_stats.hpp"
#include "netlist/generator.hpp"
#include "netlist/ispd2015_suite.hpp"

namespace laco {
namespace {

Design make_toy() {
  Design d("toy", Rect{0, 0, 10, 10}, 1.0);
  Cell a;
  a.name = "a";
  a.width = 1;
  a.height = 1;
  a.x = 1;
  a.y = 1;
  Cell b = a;
  b.name = "b";
  b.x = 5;
  b.y = 7;
  Cell m;
  m.name = "m";
  m.kind = CellKind::kMacro;
  m.width = 3;
  m.height = 3;
  m.x = 6;
  m.y = 0;
  m.fixed = true;
  const CellId ca = d.add_cell(a);
  const CellId cb = d.add_cell(b);
  d.add_cell(m);
  const NetId n = d.add_net("n1");
  d.add_pin(ca, n, 0.5, 0.5);
  d.add_pin(cb, n, 0.5, 0.5);
  return d;
}

TEST(Design, BasicAccessors) {
  const Design d = make_toy();
  EXPECT_EQ(d.num_cells(), 3u);
  EXPECT_EQ(d.num_movable(), 2u);
  EXPECT_EQ(d.num_nets(), 1u);
  EXPECT_EQ(d.num_pins(), 2u);
  EXPECT_EQ(d.net(0).degree(), 2);
  EXPECT_EQ(d.pin_position(0), (Point{1.5, 1.5}));
}

TEST(Design, HpwlMatchesManualComputation) {
  const Design d = make_toy();
  // Pins at (1.5, 1.5) and (5.5, 7.5): HPWL = 4 + 6 = 10.
  EXPECT_DOUBLE_EQ(d.hpwl(), 10.0);
}

TEST(Design, MovablePositionRoundTrip) {
  Design d = make_toy();
  std::vector<double> x, y;
  d.get_movable_positions(x, y);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_DOUBLE_EQ(x[0], 1.5);
  x[0] = 3.0;
  y[0] = 4.0;
  d.set_movable_positions(x, y);
  EXPECT_DOUBLE_EQ(d.cell(0).center().x, 3.0);
  EXPECT_DOUBLE_EQ(d.cell(0).center().y, 4.0);
}

TEST(Design, SetPositionsClampsToCore) {
  Design d = make_toy();
  std::vector<double> x{100.0, -50.0}, y{100.0, -50.0};
  d.set_movable_positions(x, y);
  for (const CellId cid : d.movable_cells()) {
    const Rect r = d.cell(cid).rect();
    EXPECT_GE(r.xl, d.core().xl - 1e-12);
    EXPECT_LE(r.xh, d.core().xh + 1e-12);
    EXPECT_GE(r.yl, d.core().yl - 1e-12);
    EXPECT_LE(r.yh, d.core().yh + 1e-12);
  }
}

TEST(Design, UtilizationAccountsForMacros) {
  const Design d = make_toy();
  // movable area 2, core 100, macro 9 -> 2 / 91.
  EXPECT_NEAR(d.utilization(), 2.0 / 91.0, 1e-12);
}

TEST(Design, AddPinValidation) {
  Design d = make_toy();
  EXPECT_THROW(d.add_pin(99, 0, 0, 0), std::out_of_range);
  EXPECT_THROW(d.add_pin(0, 99, 0, 0), std::out_of_range);
}

TEST(Generator, ProducesRequestedScale) {
  GeneratorConfig cfg;
  cfg.num_cells = 500;
  cfg.seed = 3;
  const Design d = generate_design(cfg);
  const DesignStats stats = compute_stats(d);
  EXPECT_EQ(stats.num_movable, 500u);
  EXPECT_EQ(stats.num_macros, static_cast<std::size_t>(cfg.num_macros));
  EXPECT_NEAR(static_cast<double>(stats.num_nets), 500.0, 1.0);
  EXPECT_GE(stats.avg_net_degree, 2.0);
  EXPECT_LE(stats.max_net_degree, cfg.max_net_degree);
}

TEST(Generator, Deterministic) {
  GeneratorConfig cfg;
  cfg.num_cells = 200;
  cfg.seed = 11;
  const Design a = generate_design(cfg);
  const Design b = generate_design(cfg);
  ASSERT_EQ(a.num_cells(), b.num_cells());
  ASSERT_EQ(a.num_pins(), b.num_pins());
  for (std::size_t i = 0; i < a.num_cells(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells()[i].x, b.cells()[i].x);
    EXPECT_DOUBLE_EQ(a.cells()[i].width, b.cells()[i].width);
  }
}

TEST(Generator, UtilizationNearTarget) {
  GeneratorConfig cfg;
  cfg.num_cells = 1000;
  cfg.target_utilization = 0.7;
  const Design d = generate_design(cfg);
  EXPECT_NEAR(d.utilization(), 0.7, 0.1);
}

TEST(Generator, MacrosInsideCoreAndDisjoint) {
  GeneratorConfig cfg;
  cfg.num_cells = 400;
  cfg.num_macros = 5;
  cfg.macro_area_fraction = 0.2;
  const Design d = generate_design(cfg);
  std::vector<Rect> macros;
  for (const Cell& c : d.cells()) {
    if (c.kind != CellKind::kMacro) continue;
    EXPECT_GE(c.x, d.core().xl - 1e-9);
    EXPECT_LE(c.x + c.width, d.core().xh + 1e-9);
    for (const Rect& other : macros) {
      EXPECT_DOUBLE_EQ(overlap_area(c.rect(), other), 0.0);
    }
    macros.push_back(c.rect());
  }
}

TEST(Generator, AllNetsHaveAtLeastTwoPins) {
  GeneratorConfig cfg;
  cfg.num_cells = 300;
  const Design d = generate_design(cfg);
  for (const Net& n : d.nets()) {
    EXPECT_GE(n.degree(), 2);
  }
}

TEST(Ispd2015Suite, HasTwentyDesignsInPaperOrder) {
  const auto names = ispd2015_design_names();
  ASSERT_EQ(names.size(), 20u);
  EXPECT_EQ(names.front(), "des_perf_1");
  EXPECT_EQ(names.back(), "superblue19");
  EXPECT_EQ(ispd2015_first8_names().size(), 8u);
}

TEST(Ispd2015Suite, SpecLookup) {
  const BenchmarkSpec& spec = ispd2015_spec("superblue12");
  EXPECT_EQ(spec.paper_cells_k, 1293);
  EXPECT_THROW(ispd2015_spec("nonexistent"), std::out_of_range);
}

TEST(Ispd2015Suite, ScaledAnalogMatchesRelativeSizes) {
  const Design small = make_ispd2015_analog("fft_1", 0.01);
  const Design large = make_ispd2015_analog("superblue12", 0.01);
  // superblue12 is ~37x fft_1 in the paper; expect the analogs to keep
  // a large ratio.
  EXPECT_GT(static_cast<double>(large.num_movable()) / small.num_movable(), 20.0);
}

TEST(Ispd2015Suite, SeedOffsetChangesInstance) {
  const Design a = make_ispd2015_analog("fft_1", 0.01, 0);
  const Design b = make_ispd2015_analog("fft_1", 0.01, 1);
  EXPECT_EQ(a.num_movable(), b.num_movable());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.num_cells() && !any_diff; ++i) {
    any_diff = a.cells()[i].x != b.cells()[i].x;
  }
  EXPECT_TRUE(any_diff);
}

TEST(BookshelfIo, RoundTrip) {
  const Design d = make_toy();
  std::stringstream ss;
  write_bookshelf(d, ss);
  const Design r = read_bookshelf(ss);
  EXPECT_EQ(r.name(), "toy");
  EXPECT_EQ(r.num_cells(), d.num_cells());
  EXPECT_EQ(r.num_nets(), d.num_nets());
  EXPECT_EQ(r.num_pins(), d.num_pins());
  EXPECT_DOUBLE_EQ(r.hpwl(), d.hpwl());
  EXPECT_EQ(r.cell(2).kind, CellKind::kMacro);
  EXPECT_TRUE(r.cell(2).fixed);
}

TEST(BookshelfIo, RoundTripGeneratedDesign) {
  GeneratorConfig cfg;
  cfg.num_cells = 150;
  const Design d = generate_design(cfg);
  std::stringstream ss;
  write_bookshelf(d, ss);
  const Design r = read_bookshelf(ss);
  EXPECT_EQ(r.num_cells(), d.num_cells());
  EXPECT_NEAR(r.hpwl(), d.hpwl(), 1e-6 * d.hpwl());
}

TEST(BookshelfIo, RejectsMalformedInput) {
  std::stringstream no_core("CELL a std 1 1 0 0 0\n");
  EXPECT_THROW(read_bookshelf(no_core), std::runtime_error);
  std::stringstream bad_tag("CORE 0 0 1 1 1\nBOGUS x\n");
  EXPECT_THROW(read_bookshelf(bad_tag), std::runtime_error);
  std::stringstream pin_before_net("CORE 0 0 1 1 1\nPIN 0 0 0\n");
  EXPECT_THROW(read_bookshelf(pin_before_net), std::runtime_error);
}

TEST(DesignStats, ToStringContainsCounts) {
  const DesignStats stats = compute_stats(make_toy());
  const std::string s = to_string(stats);
  EXPECT_NE(s.find("cells=3"), std::string::npos);
  EXPECT_NE(s.find("nets=1"), std::string::npos);
}

}  // namespace
}  // namespace laco
