// Autograd graph lifetime regression tests. A backward closure that
// captures its own output impl creates a shared_ptr cycle, silently
// leaking every graph ever built (caught once as multi-GB growth in the
// training benches). These tests pin the invariant: when the last
// user-visible handle to an op result dies, its impl dies too.
#include <gtest/gtest.h>

#include "nn/autograd.hpp"
#include "nn/layers.hpp"
#include "nn/ops.hpp"

namespace laco::nn {
namespace {

Tensor randn(Shape shape, unsigned seed) {
  Tensor t = Tensor::zeros(std::move(shape));
  fill_uniform(t, 0.1f, 1.0f, seed);
  return t;
}

/// Applies `op` to a grad-requiring input and checks the result impl is
/// released when the handle goes out of scope.
template <typename Op>
void expect_released(Op op, const char* name) {
  Tensor a = randn({1, 4, 8, 8}, 7);
  a.set_requires_grad(true);
  std::weak_ptr<TensorImpl> watch;
  {
    Tensor out = op(a);
    watch = out.impl();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired()) << name << " output survives its last handle (cycle?)";
}

TEST(GraphLifetime, ElementwiseOpsRelease) {
  expect_released([](const Tensor& t) { return leaky_relu(t, 0.1f); }, "leaky_relu");
  expect_released([](const Tensor& t) { return sigmoid(t); }, "sigmoid");
  expect_released([](const Tensor& t) { return exp_op(t); }, "exp");
  expect_released([](const Tensor& t) { return square(t); }, "square");
  expect_released([](const Tensor& t) { return scale(t, 2.0f); }, "scale");
  expect_released([](const Tensor& t) { return add(t, t); }, "add");
  expect_released([](const Tensor& t) { return mul(t, t); }, "mul");
}

TEST(GraphLifetime, StructuralOpsRelease) {
  expect_released([](const Tensor& t) { return reshape(t, {4, 64}); }, "reshape");
  expect_released([](const Tensor& t) { return slice_channels(t, 0, 2); }, "slice");
  expect_released([](const Tensor& t) { return cat_channels({t, t}); }, "cat");
  expect_released([](const Tensor& t) { return upsample_bilinear(t, 4, 4); }, "upsample");
  expect_released([](const Tensor& t) { return avg_pool2d(t, 2); }, "avg_pool");
  expect_released([](const Tensor& t) { return stack_batch({t, t}); }, "stack_batch");
}

TEST(GraphLifetime, WholeTrainingGraphReleases) {
  reset_init_seed(5);
  Conv2d conv(4, 4, 3);
  Tensor x = randn({1, 4, 8, 8}, 9);
  std::weak_ptr<TensorImpl> mid_watch, loss_watch;
  {
    Tensor mid = leaky_relu(conv.forward(x), 0.1f);
    mid_watch = mid.impl();
    Tensor loss = mean_square(mid);
    loss_watch = loss.impl();
    loss.backward();
  }
  EXPECT_TRUE(mid_watch.expired());
  EXPECT_TRUE(loss_watch.expired());
}

TEST(GraphLifetime, LeavesSurviveGraphDestruction) {
  Tensor a = Tensor::scalar(2.0f, true);
  {
    Tensor loss = square(a);
    loss.backward();
  }
  // Leaf and its accumulated gradient remain valid after the graph dies.
  EXPECT_FLOAT_EQ(a.data()[0], 2.0f);
  ASSERT_EQ(a.grad().size(), 1u);
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);
}

TEST(GraphLifetime, RepeatedTrainingStepsKeepGraphCountBounded) {
  // Indirect leak probe without RSS flakiness: impl use_count of a leaf
  // equals handle + graph references; after each step only the handle
  // must remain.
  Tensor w = Tensor::scalar(1.0f, true);
  for (int i = 0; i < 50; ++i) {
    Tensor loss = square(w);
    loss.backward();
    // handle + loss's parent edge + loss's backward-closure capture: a
    // constant, not growing with i (growth here = leaked graphs).
    EXPECT_EQ(w.impl().use_count(), 3) << "iteration " << i;
  }
  // After the last graph dies only the local handle remains (+1 probe).
  Tensor probe = w;
  EXPECT_EQ(w.impl().use_count(), 2);
}

}  // namespace
}  // namespace laco::nn
