// Crash-safe placement coverage (docs/RELIABILITY.md "Placement
// snapshots & resume"): PlacementSnapshot round-trips bitwise through
// the v2 CRC container, corruption and truncation are rejected with the
// canonical wording, the double-buffered SnapshotStore survives a
// corrupted slot, a killed run resumed from its snapshots finishes
// bitwise-identical to the uninterrupted run, and the divergence
// watchdog rolls back injected NaNs (bounded, failing cleanly when the
// budget is exhausted). CongestionPenalty and NesterovOptimizer state
// codecs are round-tripped here too.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "laco/congestion_penalty.hpp"
#include "netlist/generator.hpp"
#include "obs/metrics.hpp"
#include "placer/global_placer.hpp"
#include "placer/nesterov.hpp"
#include "placer/snapshot.hpp"
#include "util/serial.hpp"

namespace laco {
namespace {

namespace fs = std::filesystem;

fs::path temp_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("laco_snapshot_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

PlacementSnapshot make_snapshot(int iteration) {
  PlacementSnapshot snap;
  snap.design_name = "synthetic";
  snap.num_movable = 3;
  snap.iteration = iteration;
  snap.ratio = 0.125;
  snap.prev_overflow = 0.75;
  snap.best_overflow = 0.5;
  snap.best_overflow_iter = iteration - 1;
  snap.rollbacks = 2;
  snap.rollback_damp = 0.25;
  snap.last_rollback_iter = 7;
  snap.rng_state = "12345 67890";
  snap.optimizer.ux = {1.0, 2.0, 3.0};
  snap.optimizer.uy = {4.0, 5.0, 6.0};
  snap.optimizer.vx = {1.5, 2.5, 3.5};
  snap.optimizer.vy = {4.5, 5.5, 6.5};
  snap.optimizer.prev_vx = {1.0, 2.0, 3.0};
  snap.optimizer.prev_vy = {4.0, 5.0, 6.0};
  snap.optimizer.prev_gx = {0.1, 0.2, 0.3};
  snap.optimizer.prev_gy = {0.4, 0.5, 0.6};
  snap.optimizer.a = 1.618;
  snap.optimizer.initial_step = 2.0;
  snap.optimizer.step_scale = 0.5;
  snap.optimizer.have_prev = true;
  for (int i = 0; i < 3; ++i) {
    IterationStats s;
    s.iteration = i;
    s.wa_wirelength = 100.0 + i;
    s.hpwl = 90.0 + i;
    s.overflow = 0.9 - 0.1 * i;
    s.lambda = 0.01 * i;
    s.penalty = 0.5 * i;
    s.step_size = 1.0 / (i + 1);
    snap.history.push_back(s);
  }
  snap.penalty_state = std::string("opaque\0blob", 11);
  return snap;
}

void expect_snapshot_eq(const PlacementSnapshot& a, const PlacementSnapshot& b) {
  EXPECT_EQ(a.design_name, b.design_name);
  EXPECT_EQ(a.num_movable, b.num_movable);
  EXPECT_EQ(a.iteration, b.iteration);
  EXPECT_EQ(a.ratio, b.ratio);
  EXPECT_EQ(a.prev_overflow, b.prev_overflow);
  EXPECT_EQ(a.best_overflow, b.best_overflow);
  EXPECT_EQ(a.best_overflow_iter, b.best_overflow_iter);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_EQ(a.rollback_damp, b.rollback_damp);
  EXPECT_EQ(a.last_rollback_iter, b.last_rollback_iter);
  EXPECT_EQ(a.rng_state, b.rng_state);
  EXPECT_EQ(a.optimizer.ux, b.optimizer.ux);
  EXPECT_EQ(a.optimizer.uy, b.optimizer.uy);
  EXPECT_EQ(a.optimizer.vx, b.optimizer.vx);
  EXPECT_EQ(a.optimizer.vy, b.optimizer.vy);
  EXPECT_EQ(a.optimizer.prev_vx, b.optimizer.prev_vx);
  EXPECT_EQ(a.optimizer.prev_vy, b.optimizer.prev_vy);
  EXPECT_EQ(a.optimizer.prev_gx, b.optimizer.prev_gx);
  EXPECT_EQ(a.optimizer.prev_gy, b.optimizer.prev_gy);
  EXPECT_EQ(a.optimizer.a, b.optimizer.a);
  EXPECT_EQ(a.optimizer.initial_step, b.optimizer.initial_step);
  EXPECT_EQ(a.optimizer.step_scale, b.optimizer.step_scale);
  EXPECT_EQ(a.optimizer.have_prev, b.optimizer.have_prev);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].iteration, b.history[i].iteration);
    EXPECT_EQ(a.history[i].wa_wirelength, b.history[i].wa_wirelength);
    EXPECT_EQ(a.history[i].hpwl, b.history[i].hpwl);
    EXPECT_EQ(a.history[i].overflow, b.history[i].overflow);
    EXPECT_EQ(a.history[i].lambda, b.history[i].lambda);
    EXPECT_EQ(a.history[i].penalty, b.history[i].penalty);
    EXPECT_EQ(a.history[i].step_size, b.history[i].step_size);
  }
  EXPECT_EQ(a.penalty_state, b.penalty_state);
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(PlacementSnapshot, FileRoundTripIsBitwise) {
  const fs::path dir = temp_dir("roundtrip");
  const std::string path = (dir / "snap.lsnap").string();
  const PlacementSnapshot snap = make_snapshot(42);
  ASSERT_TRUE(save_snapshot_file(snap, path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // atomic publish leaves no temp
  const PlacementSnapshot loaded = load_snapshot_file(path);
  expect_snapshot_eq(snap, loaded);
  fs::remove_all(dir);
}

TEST(PlacementSnapshot, FlippedPayloadByteFailsChecksum) {
  const fs::path dir = temp_dir("corrupt");
  const std::string path = (dir / "snap.lsnap").string();
  ASSERT_TRUE(save_snapshot_file(make_snapshot(10), path));
  std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 40u);
  bytes[bytes.size() / 2] ^= 0x20;  // payload byte, inside the CRC span
  spit(path, bytes);
  try {
    load_snapshot_file(path);
    FAIL() << "corrupt snapshot accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"), std::string::npos) << e.what();
  }
  fs::remove_all(dir);
}

TEST(PlacementSnapshot, TruncationIsRejected) {
  const fs::path dir = temp_dir("truncate");
  const std::string path = (dir / "snap.lsnap").string();
  ASSERT_TRUE(save_snapshot_file(make_snapshot(10), path));
  std::string bytes = slurp(path);
  spit(path, bytes.substr(0, bytes.size() - 9));
  try {
    load_snapshot_file(path);
    FAIL() << "truncated snapshot accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated read"), std::string::npos) << e.what();
  }
  fs::remove_all(dir);
}

TEST(PlacementSnapshot, BadMagicIsRejected) {
  const fs::path dir = temp_dir("magic");
  const std::string path = (dir / "snap.lsnap").string();
  ASSERT_TRUE(save_snapshot_file(make_snapshot(10), path));
  std::string bytes = slurp(path);
  bytes[0] ^= 0xff;
  spit(path, bytes);
  try {
    load_snapshot_file(path);
    FAIL() << "bad-magic snapshot accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic (not a placement snapshot)"),
              std::string::npos)
        << e.what();
  }
  fs::remove_all(dir);
}

TEST(SnapshotStore, DoubleBuffersAcrossSaves) {
  const fs::path dir = temp_dir("store");
  SnapshotStore store(dir.string());
  ASSERT_TRUE(store.save(make_snapshot(10)));
  ASSERT_TRUE(store.save(make_snapshot(20)));
  const auto slots = SnapshotStore::slot_paths(dir.string());
  EXPECT_TRUE(fs::exists(slots[0]));
  EXPECT_TRUE(fs::exists(slots[1]));
  ASSERT_TRUE(store.save(make_snapshot(30)));  // overwrites the oldest slot
  const auto latest = store.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->iteration, 30);
  // A fresh store must aim its first save away from the newest slot.
  SnapshotStore reopened(dir.string());
  ASSERT_TRUE(reopened.save(make_snapshot(40)));
  const auto after = reopened.load_latest();
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->iteration, 40);
  bool kept_30 = false;
  for (const std::string& slot : slots) {
    const PlacementSnapshot snap = load_snapshot_file(slot);
    if (snap.iteration == 30) kept_30 = true;
  }
  EXPECT_TRUE(kept_30) << "reopened store clobbered the newest snapshot";
  fs::remove_all(dir);
}

TEST(SnapshotStore, PartialWriteFallsBackToLastGood) {
  const fs::path dir = temp_dir("partial");
  SnapshotStore store(dir.string());
  ASSERT_TRUE(store.save(make_snapshot(10)));
  ASSERT_TRUE(store.save(make_snapshot(20)));
  // Simulate a crash mid-write of the newest slot: truncate it.
  for (const std::string& slot : SnapshotStore::slot_paths(dir.string())) {
    if (load_snapshot_file(slot).iteration == 20) {
      const std::string bytes = slurp(slot);
      spit(slot, bytes.substr(0, bytes.size() / 2));
    }
  }
  std::string why;
  const auto latest = SnapshotStore(dir.string()).load_latest(&why);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->iteration, 10);
  EXPECT_NE(why.find("truncated read"), std::string::npos) << why;
  fs::remove_all(dir);
}

GlobalPlacerOptions fixed_run_options() {
  GlobalPlacerOptions opts;
  opts.bin_nx = 8;
  opts.bin_ny = 8;
  opts.max_iterations = 60;
  opts.min_iterations = 60;
  opts.target_overflow = 0.0;  // never converge early: exactly 60 iters
  opts.stall_window = 0;
  return opts;
}

Design test_design(int cells = 150) {
  GeneratorConfig cfg;
  cfg.num_cells = cells;
  cfg.seed = 11;
  return generate_design(cfg);
}

/// Stands in for SIGKILL at an iteration boundary: thrown out of the
/// observer, abandoning the placer mid-run with snapshots on disk.
struct SimulatedCrash : std::runtime_error {
  SimulatedCrash() : std::runtime_error("simulated crash") {}
};

TEST(PlacementResume, KilledRunResumesBitwiseIdentical) {
  const fs::path dir = temp_dir("resume");

  // Golden: uninterrupted, no durable snapshots.
  Design golden_design = test_design();
  GlobalPlacer golden_placer(golden_design, fixed_run_options());
  const PlacementResult golden = golden_placer.run();
  std::vector<double> golden_x, golden_y;
  golden_design.get_movable_positions(golden_x, golden_y);

  // Crashed: snapshots every 10, killed at iteration 25.
  Design crashed_design = test_design();
  GlobalPlacerOptions crash_opts = fixed_run_options();
  crash_opts.recovery.snapshot_dir = dir.string();
  crash_opts.recovery.snapshot_every = 10;
  GlobalPlacer crashed_placer(crashed_design, crash_opts);
  crashed_placer.set_observer([](const Design&, const IterationStats& stats) {
    if (stats.iteration == 25) throw SimulatedCrash();
  });
  EXPECT_THROW(crashed_placer.run(), SimulatedCrash);

  // Resumed: picks up at the iteration-20 snapshot and finishes.
  Design resumed_design = test_design();
  GlobalPlacerOptions resume_opts = crash_opts;
  resume_opts.recovery.resume = true;
  GlobalPlacer resumed_placer(resumed_design, resume_opts);
  const PlacementResult resumed = resumed_placer.run();
  EXPECT_EQ(resumed.recovery.resumed_from_iteration, 20);
  EXPECT_GT(resumed.recovery.snapshot_saves, 0u);

  // Bitwise: same iterate stream, same history, same final placement.
  EXPECT_EQ(resumed.iterations, golden.iterations);
  EXPECT_EQ(resumed.final_hpwl, golden.final_hpwl);
  EXPECT_EQ(resumed.final_overflow, golden.final_overflow);
  ASSERT_EQ(resumed.history.size(), golden.history.size());
  for (std::size_t i = 0; i < golden.history.size(); ++i) {
    EXPECT_EQ(resumed.history[i].hpwl, golden.history[i].hpwl) << "iter " << i;
    EXPECT_EQ(resumed.history[i].overflow, golden.history[i].overflow) << "iter " << i;
    EXPECT_EQ(resumed.history[i].step_size, golden.history[i].step_size) << "iter " << i;
  }
  std::vector<double> resumed_x, resumed_y;
  resumed_design.get_movable_positions(resumed_x, resumed_y);
  EXPECT_EQ(resumed_x, golden_x);
  EXPECT_EQ(resumed_y, golden_y);
  fs::remove_all(dir);
}

TEST(PlacementResume, SnapshotOfWrongDesignIsRefused) {
  const fs::path dir = temp_dir("mismatch");
  Design a = test_design(150);
  GlobalPlacerOptions opts = fixed_run_options();
  opts.max_iterations = 15;
  opts.min_iterations = 15;
  opts.recovery.snapshot_dir = dir.string();
  opts.recovery.snapshot_every = 10;
  GlobalPlacer placer_a(a, opts);
  placer_a.run();

  Design b = test_design(100);  // different movable count
  opts.recovery.resume = true;
  GlobalPlacer placer_b(b, opts);
  EXPECT_THROW(placer_b.run(), std::runtime_error);
  fs::remove_all(dir);
}

TEST(DivergenceWatchdog, RollsBackInjectedNaNAndConverges) {
  Design golden_design = test_design();
  GlobalPlacerOptions opts = fixed_run_options();
  opts.max_iterations = 120;
  opts.min_iterations = 120;
  GlobalPlacer golden_placer(golden_design, opts);
  const PlacementResult golden = golden_placer.run();
  EXPECT_EQ(golden.recovery.watchdog_trips, 0u);

  const std::uint64_t rollbacks_before =
      obs::MetricRegistry::global().counter("placer.recovery.rollbacks").value();

  Design design = test_design();
  GlobalPlacer placer(design, opts);
  bool injected = false;  // one-shot: the replay after rollback is clean
  placer.set_penalty_hook(
      [&injected](const Design& d, int iter, std::vector<double>& gx, std::vector<double>&) {
        if (iter == 25 && !injected) {
          injected = true;
          gx[static_cast<std::size_t>(d.movable_cells()[0])] =
              std::numeric_limits<double>::quiet_NaN();
        }
        return 0.0;
      });
  const PlacementResult result = placer.run();

  EXPECT_GE(result.recovery.watchdog_trips, 1u);
  EXPECT_GE(result.recovery.rollbacks, 1u);
  EXPECT_GE(obs::MetricRegistry::global().counter("placer.recovery.rollbacks").value(),
            rollbacks_before + 1);
  // The damped retry follows a different trajectory but must land in the
  // same quality regime as the clean run.
  EXPECT_NEAR(result.final_overflow, golden.final_overflow, 0.15);
  EXPECT_NEAR(result.final_hpwl, golden.final_hpwl, 0.3 * golden.final_hpwl);
  // Sustained recovery relaxes the damped scale back toward 1.0.
  EXPECT_GE(result.recovery.step_scale_relaxes, 1u);
}

TEST(DivergenceWatchdog, PersistentNaNFailsCleanlyAfterBudget) {
  Design design = test_design(80);
  GlobalPlacerOptions opts = fixed_run_options();
  opts.recovery.max_rollbacks = 3;
  GlobalPlacer placer(design, opts);
  placer.set_penalty_hook(
      [](const Design& d, int iter, std::vector<double>& gx, std::vector<double>&) {
        if (iter >= 5) {
          gx[static_cast<std::size_t>(d.movable_cells()[0])] =
              std::numeric_limits<double>::quiet_NaN();
        }
        return 0.0;
      });
  try {
    placer.run();
    FAIL() << "diverging run did not throw";
  } catch (const PlacementDivergedError& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite gradient"), std::string::npos) << e.what();
    EXPECT_GE(e.iteration(), 0);
  }
}

TEST(NesterovState, RoundTripReproducesTrajectory) {
  const std::vector<double> x0 = {0.0, 1.0, 2.0};
  const std::vector<double> y0 = {0.0, -1.0, -2.0};
  NesterovOptimizer a(x0, y0, 0.1);
  const std::vector<double> g = {0.5, -0.25, 0.125};
  a.step(g, g);
  a.set_step_scale(0.5);
  EXPECT_EQ(a.step_scale(), 0.5);

  NesterovOptimizer b(x0, y0, 0.1);
  b.restore(a.state());
  a.step(g, g);
  b.step(g, g);
  EXPECT_EQ(a.vx(), b.vx());
  EXPECT_EQ(a.vy(), b.vy());

  NesterovState bad = a.state();
  bad.uy.pop_back();
  EXPECT_THROW(b.restore(bad), std::invalid_argument);
  bad = a.state();
  bad.prev_gx.clear();  // have_prev demands full BB vectors
  EXPECT_THROW(b.restore(bad), std::invalid_argument);
}

LacoModels snapshot_test_models(LacoScheme scheme) {
  LacoModels models;
  models.scheme = scheme;
  CongestionFcnConfig fc;
  fc.in_channels = f_in_channels(scheme);
  fc.base_width = 4;
  nn::reset_init_seed(17);
  models.congestion = std::make_shared<CongestionFcn>(fc);
  if (traits_of(scheme).uses_lookahead) {
    LookAheadConfig gc;
    gc.frames = 3;
    gc.channels_per_frame = g_channels(scheme);
    gc.base_width = 8;
    gc.inception_blocks = 1;
    gc.with_vae = traits_of(scheme).uses_vae;
    models.lookahead = std::make_shared<LookAheadModel>(gc);
  }
  return models;
}

PenaltyConfig snapshot_test_penalty_config() {
  PenaltyConfig pc;
  pc.features_hi = FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, true};
  pc.features_lo = FeatureConfig{8, 8, QuasiVoxScheme::kWeightedSum, true};
  pc.frames = 3;
  pc.spacing = 5;
  pc.start_iteration = 10;
  pc.apply_every = 1;
  return pc;
}

std::string penalty_blob(const CongestionPenalty& penalty) {
  std::ostringstream out;
  serial::Writer w(out);
  penalty.save_state(w);
  return out.str();
}

TEST(CongestionPenalty, StateRoundTripIsByteStable) {
  Design d = test_design(80);
  CongestionPenalty penalty(snapshot_test_penalty_config(),
                            snapshot_test_models(LacoScheme::kCellFlowKL));
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  gx[static_cast<std::size_t>(d.movable_cells()[0])] = 1.0;
  for (int iter = 0; iter <= 20; ++iter) penalty(d, iter, gx, gy);
  ASSERT_GT(penalty.stats().applications, 0u);

  const std::string blob = penalty_blob(penalty);
  CongestionPenalty restored(snapshot_test_penalty_config(),
                             snapshot_test_models(LacoScheme::kCellFlowKL));
  std::istringstream in(blob);
  serial::Reader r(in, "<test blob>", "restore_penalty_state");
  restored.restore_state(r);
  EXPECT_EQ(restored.stats().applications, penalty.stats().applications);
  EXPECT_EQ(restored.stats().learned_applications, penalty.stats().learned_applications);
  EXPECT_EQ(restored.stats().analytic_fallbacks, penalty.stats().analytic_fallbacks);
  // Save → restore → save must reproduce the exact byte stream: the
  // blob's stability is what makes resumed runs bitwise.
  EXPECT_EQ(penalty_blob(restored), blob);
}

TEST(CongestionPenalty, UnsupportedStateVersionIsRejected) {
  CongestionPenalty penalty(snapshot_test_penalty_config(),
                            snapshot_test_models(LacoScheme::kDreamCong));
  std::ostringstream out;
  serial::Writer w(out);
  w.u32(99);  // bogus version word
  std::istringstream in(out.str());
  serial::Reader r(in, "<test blob>", "restore_penalty_state");
  try {
    penalty.restore_state(r);
    FAIL() << "bogus version accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported penalty state version"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace laco
