#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "nn/autograd.hpp"
#include "nn/layers.hpp"
#include "nn/ops.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"

namespace laco::nn {
namespace {

TEST(Module, ParameterRegistry) {
  Conv2d conv(3, 8, 3);
  const auto named = conv.named_parameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
  EXPECT_EQ(conv.num_parameters(), 8 * 3 * 3 * 3 + 8);
  for (const Tensor& p : conv.parameters()) EXPECT_TRUE(p.requires_grad());
}

class TinyNet : public Module {
 public:
  TinyNet() : conv_(2, 4, 3), gn_(2, 4), head_(4, 1, 1, 1, 0) {
    register_module("conv", &conv_);
    register_module("gn", &gn_);
    register_module("head", &head_);
  }
  Tensor forward(const Tensor& x) const {
    return head_.forward(leaky_relu(gn_.forward(conv_.forward(x)), 0.1f));
  }

 private:
  Conv2d conv_;
  GroupNorm gn_;
  Conv2d head_;
};

TEST(Module, NestedNamesArePrefixed) {
  TinyNet net;
  const auto named = net.named_parameters();
  bool found = false;
  for (const auto& [name, t] : named) {
    if (name == "gn.gamma") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Layers, Conv2dDefaultPaddingIsSame) {
  Conv2d conv(2, 2, 3);  // padding defaults to k/2
  Tensor x = Tensor::zeros({1, 2, 6, 6});
  EXPECT_EQ(conv.forward(x).shape(), (Shape{1, 2, 6, 6}));
}

TEST(Layers, ConvTransposeDoublesResolution) {
  ConvTranspose2d deconv(4, 2, 4, 2, 1);
  Tensor x = Tensor::zeros({1, 4, 5, 5});
  EXPECT_EQ(deconv.forward(x).shape(), (Shape{1, 2, 10, 10}));
}

TEST(Layers, LinearShape) {
  Linear fc(10, 3);
  Tensor x = Tensor::zeros({4, 10});
  EXPECT_EQ(fc.forward(x).shape(), (Shape{4, 3}));
}

TEST(Optimizer, SgdDescendsQuadratic) {
  // minimize (w - 3)^2.
  Tensor w = Tensor::scalar(0.0f, true);
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    Tensor loss = square(add_scalar(w, -3.0f));
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(w.data()[0], 3.0f, 1e-3);
}

TEST(Optimizer, SgdMomentumDescends) {
  Tensor w = Tensor::scalar(0.0f, true);
  Sgd opt({w}, 0.02f, 0.9f);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    Tensor loss = square(add_scalar(w, -3.0f));
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(w.data()[0], 3.0f, 1e-2);
}

TEST(Optimizer, AdamDescendsQuadratic) {
  Tensor w = Tensor::from_data({2}, {5.0f, -5.0f}, true);
  Adam opt({w}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    Tensor target = Tensor::from_data({2}, {1.0f, 2.0f});
    Tensor loss = mse_loss(w, target);
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(w.data()[0], 1.0f, 1e-2);
  EXPECT_NEAR(w.data()[1], 2.0f, 1e-2);
}

TEST(Optimizer, TrainsTinyNetToFitConstant) {
  reset_init_seed(77);
  TinyNet net;
  Tensor x = Tensor::zeros({1, 2, 8, 8});
  fill_uniform(x, -1.0f, 1.0f, 5);
  Tensor target = Tensor::full({1, 1, 8, 8}, 0.7f);
  Adam opt(net.parameters(), 5e-3f);
  double first_loss = 0.0, last_loss = 0.0;
  for (int i = 0; i < 120; ++i) {
    opt.zero_grad();
    Tensor loss = mse_loss(net.forward(x), target);
    loss.backward();
    opt.step();
    if (i == 0) first_loss = loss.item();
    last_loss = loss.item();
  }
  EXPECT_LT(last_loss, first_loss * 0.1);
}

TEST(Serialize, RoundTripPreservesParameters) {
  reset_init_seed(123);
  TinyNet a;
  std::stringstream ss;
  save_parameters(a, ss);

  reset_init_seed(456);  // different init
  TinyNet b;
  // Parameters differ before load.
  bool differ = false;
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  for (std::size_t i = 0; i < pa.size() && !differ; ++i) {
    differ = pa[i].data() != pb[i].data();
  }
  EXPECT_TRUE(differ);

  load_parameters(b, ss);
  const auto pb2 = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].data(), pb2[i].data());
  }
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream ss("garbage");
  TinyNet net;
  EXPECT_THROW(load_parameters(net, ss), std::runtime_error);
}

TEST(Serialize, RejectsShapeMismatch) {
  Conv2d small(2, 2, 3);
  std::stringstream ss;
  save_parameters(small, ss);
  Conv2d big(2, 4, 3);
  EXPECT_THROW(load_parameters(big, ss), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  reset_init_seed(9);
  Conv2d conv(1, 2, 3);
  const std::string path = ::testing::TempDir() + "/laco_params.bin";
  ASSERT_TRUE(save_parameters_file(conv, path));
  Conv2d loaded(1, 2, 3);
  load_parameters_file(loaded, path);
  EXPECT_EQ(conv.parameters()[0].data(), loaded.parameters()[0].data());
  std::remove(path.c_str());
}

TEST(Init, KaimingScalesWithFanIn) {
  Tensor big = Tensor::zeros({1000});
  fill_kaiming(big, 100, 1);
  double var = 0.0;
  for (const float v : big.data()) var += v * v;
  var /= big.numel();
  EXPECT_NEAR(var, 2.0 / 100.0, 0.01);
}

}  // namespace
}  // namespace laco::nn
