// LACO_CHECK / LACO_DCHECK semantics (util/check.hpp): CHECK aborts
// with file:line in every build type; DCHECK follows the NDEBUG cost
// model (compiled out in Release, aborting in Debug) without ever
// evaluating its condition under NDEBUG.
#include "util/check.hpp"

#include <gtest/gtest.h>

namespace {

TEST(CheckDeathTest, CheckAbortsWithFileLineAndCondition) {
  EXPECT_DEATH(LACO_CHECK(1 == 2), "LACO_CHECK failed at .*test_check\\.cpp:[0-9]+: 1 == 2");
}

TEST(CheckDeathTest, CheckPassesSilently) {
  LACO_CHECK(2 + 2 == 4);  // must not abort
  SUCCEED();
}

TEST(CheckDeathTest, CheckSurvivesReleaseBuilds) {
  // The whole point versus assert(): NDEBUG must not disable it.
  int x = 5;
  EXPECT_DEATH(LACO_CHECK(x < 0), "LACO_CHECK failed");
}

#ifdef NDEBUG
TEST(DCheckTest, CompiledOutUnderNdebug) {
  LACO_DCHECK(false);  // no-op in Release
  SUCCEED();
}

TEST(DCheckTest, ConditionNotEvaluatedUnderNdebug) {
  int evaluations = 0;
  auto bump = [&evaluations] { return ++evaluations > 0; };
  LACO_DCHECK(bump());
  EXPECT_EQ(evaluations, 0);
}
#else
TEST(DCheckDeathTest, AbortsInDebugBuilds) {
  EXPECT_DEATH(LACO_DCHECK(false), "LACO_CHECK failed");
}
#endif

TEST(CheckTest, GridMapOutOfRangeAbortsInAllBuildTypes) {
  // Satellite regression: gridmap/grid_map.cpp bounds check must abort
  // in Release instead of silently corrupting congestion maps.
  // (Covered here structurally; the GridMap death test lives in
  // test_gridmap.cpp next to the class's other tests.)
  LACO_CHECK(true);
  SUCCEED();
}

}  // namespace
