// Additional nn edge cases: odd shapes, grouped transposed convolution,
// output padding, instance-norm-like group counts, optimizer behavior on
// a non-convex function, and autograd reuse patterns.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/autograd.hpp"
#include "nn/layers.hpp"
#include "nn/ops.hpp"
#include "nn/optimizer.hpp"

namespace laco::nn {
namespace {

Tensor randn(Shape shape, unsigned seed, float lo = -1.0f, float hi = 1.0f) {
  Tensor t = Tensor::zeros(std::move(shape));
  fill_uniform(t, lo, hi, seed);
  return t;
}

TEST(ConvEdge, OneByOneKernel) {
  Tensor x = randn({1, 3, 5, 5}, 1);
  Tensor w = randn({4, 3, 1, 1}, 2);
  Tensor y = conv2d(x, w, Tensor(), 1, 0);
  EXPECT_EQ(y.shape(), (Shape{1, 4, 5, 5}));
  // float32 + squared loss: finite differences carry a few % error.
  EXPECT_LT(gradient_check([&](const Tensor& t) { return sum(square(conv2d(t, w, Tensor()))); }, x),
            5e-2);
}

TEST(ConvEdge, NonSquareSpatialDims) {
  Tensor x = randn({2, 2, 6, 10}, 3);
  Tensor w = randn({2, 2, 3, 3}, 4);
  Tensor y = conv2d(x, w, Tensor(), 2, 1);
  EXPECT_EQ(y.shape(), (Shape{2, 2, 3, 5}));
}

TEST(ConvEdge, RejectsInconsistentGroups) {
  Tensor x = randn({1, 3, 4, 4}, 5);
  Tensor w = randn({2, 1, 3, 3}, 6);
  EXPECT_THROW(conv2d(x, w, Tensor(), 1, 1, 2), std::invalid_argument);
}

TEST(ConvEdge, RejectsTooSmallInput) {
  Tensor x = randn({1, 1, 2, 2}, 7);
  Tensor w = randn({1, 1, 5, 5}, 8);
  EXPECT_THROW(conv2d(x, w, Tensor(), 1, 0), std::invalid_argument);
}

TEST(ConvTransposeEdge, OutputPadding) {
  Tensor x = randn({1, 2, 3, 3}, 9);
  Tensor w = randn({2, 2, 3, 3}, 10);
  Tensor y = conv_transpose2d(x, w, Tensor(), 2, 1, 1);
  // (3-1)*2 - 2 + 3 + 1 = 6.
  EXPECT_EQ(y.shape(), (Shape{1, 2, 6, 6}));
}

TEST(ConvTransposeEdge, GroupedGradCheck) {
  Tensor x = randn({1, 4, 3, 3}, 11);
  Tensor w = randn({4, 1, 2, 2}, 12);  // groups=4 -> Cout = 4
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) {
                  return sum(square(conv_transpose2d(t, w, Tensor(), 2, 0, 0, 4)));
                },
                x),
            2e-2);
  EXPECT_LT(gradient_check(
                [&](const Tensor& t) {
                  return sum(square(conv_transpose2d(x, t, Tensor(), 2, 0, 0, 4)));
                },
                w),
            2e-2);
}

TEST(GroupNormEdge, InstanceNormAndLayerNormLimits) {
  Tensor x = randn({2, 4, 3, 3}, 13);
  Tensor gamma = Tensor::full({4}, 1.0f);
  Tensor beta = Tensor::zeros({4});
  // groups == channels (instance norm) and groups == 1 (layer norm).
  EXPECT_NO_THROW(group_norm(x, 4, gamma, beta));
  EXPECT_NO_THROW(group_norm(x, 1, gamma, beta));
  EXPECT_THROW(group_norm(x, 3, gamma, beta), std::invalid_argument);
}

TEST(UpsampleEdge, DownscaleAlsoWorks) {
  Tensor x = randn({1, 1, 8, 8}, 14, 0.0f, 1.0f);
  Tensor y = upsample_bilinear(x, 3, 3);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 3, 3}));
  // Values stay within the input range (bilinear is a convex combination).
  for (const float v : y.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(UpsampleEdge, IdentityWhenSameSize) {
  Tensor x = randn({1, 2, 4, 4}, 15);
  Tensor y = upsample_bilinear(x, 4, 4);
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    EXPECT_NEAR(y.data()[i], x.data()[i], 1e-6);
  }
}

TEST(Autograd, RepeatedBackwardAccumulatesIntoLeaves) {
  Tensor x = Tensor::scalar(2.0f, true);
  for (int i = 0; i < 3; ++i) {
    Tensor loss = square(x);
    loss.backward();
  }
  // 3 × d(x²)/dx = 3 × 4.
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(Autograd, SharedSubexpressionGradIsCorrect) {
  // y = x*x; loss = sum(y + y) => dloss/dx = 4x.
  Tensor x = Tensor::from_data({2}, {1.5f, -2.0f}, true);
  Tensor y = mul(x, x);
  Tensor loss = sum(add(y, y));
  loss.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], -8.0f);
}

TEST(Optimizer, AdamHandlesUntouchedParameters) {
  // A parameter that never receives gradient must not be perturbed.
  Tensor used = Tensor::scalar(1.0f, true);
  Tensor unused = Tensor::scalar(5.0f, true);
  Adam opt({used, unused}, 0.1f);
  Tensor loss = square(used);
  loss.backward();
  opt.step();
  EXPECT_FLOAT_EQ(unused.data()[0], 5.0f);
  EXPECT_NE(used.data()[0], 1.0f);
}

TEST(Optimizer, AdamEscapesPlateauOnQuartic) {
  // f(w) = (w² - 1)², minima at ±1; start near the flat saddle at 0.
  Tensor w = Tensor::scalar(0.05f, true);
  Adam opt({w}, 0.05f);
  for (int i = 0; i < 400; ++i) {
    opt.zero_grad();
    Tensor f = square(add_scalar(square(w), -1.0f));
    f.backward();
    opt.step();
  }
  EXPECT_NEAR(std::abs(w.data()[0]), 1.0f, 1e-2);
}

TEST(Layers, InitIsSeedControlled) {
  reset_init_seed(100);
  Conv2d a(2, 2, 3);
  reset_init_seed(100);
  Conv2d b(2, 2, 3);
  EXPECT_EQ(a.parameters()[0].data(), b.parameters()[0].data());
  Conv2d c(2, 2, 3);  // different (advanced) seed
  EXPECT_NE(a.parameters()[0].data(), c.parameters()[0].data());
}

TEST(TensorEdge, ZeroSizedDimsRejectedByOps) {
  EXPECT_EQ(Tensor::zeros({0}).numel(), 0);
  Tensor empty = Tensor::zeros({0});
  Tensor loss = sum(empty);
  EXPECT_FLOAT_EQ(loss.item(), 0.0f);
}

}  // namespace
}  // namespace laco::nn
