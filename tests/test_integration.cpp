// End-to-end integration tests over the full pipeline: trace collection
// → model training → prediction evaluation → congestion-guided
// placement. Configurations are tiny so the suite stays fast, but every
// stage of the paper's flow is exercised for real.
#include <gtest/gtest.h>

#include "laco/pipeline.hpp"
#include "laco/laco_placer.hpp"
#include "netlist/ispd2015_suite.hpp"

namespace laco {
namespace {

PipelineConfig tiny_pipeline_config() {
  PipelineConfig cfg = default_pipeline_config();
  cfg.scale = 0.002;  // ~70-260 cell designs
  cfg.runs_per_design = 1;
  cfg.trace.snapshot.spacing = 10;
  cfg.trace.snapshot.features = FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, true};
  cfg.trace.snapshot.lookahead_features =
      FeatureConfig{8, 8, QuasiVoxScheme::kWeightedSum, true};
  cfg.trace.placer.bin_nx = 8;
  cfg.trace.placer.bin_ny = 8;
  cfg.trace.placer.max_iterations = 70;
  cfg.trace.placer.min_iterations = 70;
  cfg.trace.placer.target_overflow = 0.0;
  cfg.trace.router.grid.nx = 16;
  cfg.trace.router.grid.ny = 16;
  cfg.lookahead_model.frames = 3;
  cfg.lookahead_model.base_width = 8;
  cfg.lookahead_model.inception_blocks = 1;
  cfg.congestion_model.base_width = 4;
  cfg.lookahead_trainer.epochs = 3;
  cfg.congestion_trainer.epochs = 4;
  return cfg;
}

class PipelineTest : public ::testing::Test {
 protected:
  static Pipeline& pipeline() {
    static Pipeline instance(tiny_pipeline_config());
    return instance;
  }
  static const std::vector<PlacementTrace>& train_traces() {
    return pipeline().traces_for({"fft_1", "fft_2"});
  }
  static const std::vector<PlacementTrace>& test_traces() {
    return pipeline().traces_for({"pci_bridge32_b"});
  }
};

TEST_F(PipelineTest, TracesHaveSnapshotsAndLabels) {
  const auto& traces = train_traces();
  ASSERT_EQ(traces.size(), 2u);
  for (const auto& trace : traces) {
    EXPECT_GE(trace.snapshots.size(), 4u);
    EXPECT_GT(trace.congestion_label.max(), 0.0);
  }
}

TEST_F(PipelineTest, TraceCacheReturnsSameObject) {
  const auto& a = pipeline().traces_for({"fft_1", "fft_2"});
  const auto& b = pipeline().traces_for({"fft_1", "fft_2"});
  EXPECT_EQ(&a, &b);
}

TEST_F(PipelineTest, DreamCongTrainsAndEvaluates) {
  const LacoModels models = pipeline().train_models(LacoScheme::kDreamCong, train_traces());
  EXPECT_EQ(models.scheme, LacoScheme::kDreamCong);
  EXPECT_FALSE(models.lookahead);
  const PredictionQuality q = pipeline().evaluate_prediction(models, test_traces());
  EXPECT_GT(q.samples, 0);
  EXPECT_GT(q.nrms, 0.0);
  EXPECT_LE(q.ssim, 1.0);
}

TEST_F(PipelineTest, LacoTrainsAndEvaluates) {
  const LacoModels models = pipeline().train_models(LacoScheme::kCellFlowKL, train_traces());
  ASSERT_TRUE(models.lookahead);
  EXPECT_TRUE(models.lookahead->has_vae());
  const PredictionQuality q = pipeline().evaluate_prediction(models, test_traces());
  EXPECT_GT(q.samples, 0);
  // A trained model should beat a constant-zero predictor on NRMS for a
  // non-trivial label... at minimum produce a finite sane value.
  EXPECT_GT(q.nrms, 0.0);
  EXPECT_LT(q.nrms, 5.0);
}

TEST_F(PipelineTest, FSampleChannelCountsFollowScheme) {
  const LacoModels dc = pipeline().train_models(LacoScheme::kDreamCong, train_traces());
  const auto dc_samples = pipeline().build_f_samples(LacoScheme::kDreamCong, dc, test_traces());
  ASSERT_FALSE(dc_samples.empty());
  EXPECT_EQ(dc_samples[0].input.dim(1), 3);

  const LacoModels cf = pipeline().train_models(LacoScheme::kCellFlow, train_traces());
  const auto cf_samples = pipeline().build_f_samples(LacoScheme::kCellFlow, cf, test_traces());
  ASSERT_FALSE(cf_samples.empty());
  EXPECT_EQ(cf_samples[0].input.dim(1), 10);
  // Look-ahead schemes produce one sample per window, i.e. more samples
  // than DREAM-Cong's one-per-trace.
  EXPECT_GT(cf_samples.size(), dc_samples.size());
}

TEST_F(PipelineTest, LessFlowKLDropsFlowFromFInputsOnly) {
  const LacoModels models = pipeline().train_models(LacoScheme::kLessFlowKL, train_traces());
  // g still models flow (5 channels per frame)...
  EXPECT_EQ(models.lookahead->config().channels_per_frame, 5);
  // ...but f sees 3 predicted + 3 shortcut channels only.
  const auto samples =
      pipeline().build_f_samples(LacoScheme::kLessFlowKL, models, test_traces());
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(samples[0].input.dim(1), 6);
}

TEST_F(PipelineTest, NoFlowKLRemovesFlowEverywhere) {
  const LacoModels models = pipeline().train_models(LacoScheme::kNoFlowKL, train_traces());
  EXPECT_EQ(models.lookahead->config().channels_per_frame, 3);
  EXPECT_TRUE(models.lookahead->has_vae());
  const auto samples = pipeline().build_f_samples(LacoScheme::kNoFlowKL, models, test_traces());
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(samples[0].input.dim(1), 6);
}

TEST_F(PipelineTest, PerDesignEvaluationCoversAllDesigns) {
  const LacoModels models = pipeline().train_models(LacoScheme::kLookAheadOnly, train_traces());
  const auto per_design = pipeline().evaluate_prediction_per_design(models, test_traces());
  ASSERT_EQ(per_design.size(), 1u);
  EXPECT_TRUE(per_design.count("pci_bridge32_b"));
}

TEST_F(PipelineTest, GuidedPlacementRunsWithTrainedModels) {
  const LacoModels models = pipeline().train_models(LacoScheme::kCellFlowKL, train_traces());
  Design d = make_ispd2015_analog("pci_bridge32_b", 0.002);
  LacoPlacerConfig cfg;
  cfg.scheme = LacoScheme::kCellFlowKL;
  cfg.placer = tiny_pipeline_config().trace.placer;
  cfg.penalty = pipeline().penalty_config();
  cfg.penalty.frames = 3;
  cfg.penalty.spacing = 10;
  cfg.penalty.start_iteration = 30;
  cfg.router = tiny_pipeline_config().trace.router;
  const LacoRunResult result = run_laco_placement(d, cfg, &models);
  EXPECT_EQ(result.evaluation.legality_violations, 0u);
  bool fired = false;
  for (const auto& stats : result.placement.history) fired |= stats.penalty != 0.0;
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace laco
