#include <gtest/gtest.h>

#include "laco/congestion_penalty.hpp"
#include "laco/frame_history.hpp"
#include "laco/laco_placer.hpp"
#include "netlist/generator.hpp"

namespace laco {
namespace {

TEST(FrameHistory, CapturesAndRolls) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 50;
  const Design d = generate_design(gcfg);
  FrameHistory history(3, 10);
  EXPECT_TRUE(history.due(0));
  EXPECT_TRUE(history.due(20));
  EXPECT_FALSE(history.due(15));
  EXPECT_FALSE(history.ready());

  FeatureFrame frame{GridMap(4, 4, d.core(), 0.0), GridMap(4, 4, d.core(), 0.0),
                     GridMap(4, 4, d.core(), 0.0), GridMap(4, 4, d.core(), 0.0),
                     GridMap(4, 4, d.core(), 0.0), 0};
  history.capture(frame, d);
  EXPECT_FALSE(history.ready());  // needs C-1 = 2
  frame.iteration = 10;
  history.capture(frame, d);
  EXPECT_TRUE(history.ready());
  frame.iteration = 20;
  history.capture(frame, d);
  const auto ctx = history.context();
  ASSERT_EQ(ctx.size(), 2u);  // rolls: keeps the latest C-1
  EXPECT_EQ(ctx[0]->iteration, 10);
  EXPECT_EQ(ctx[1]->iteration, 20);
  EXPECT_TRUE(history.has_positions());
  EXPECT_EQ(history.prev_x().size(), d.num_movable());
  history.clear();
  EXPECT_FALSE(history.ready());
  EXPECT_FALSE(history.has_positions());
}

TEST(FrameHistory, RejectsBadConfig) {
  EXPECT_THROW(FrameHistory(1, 10), std::invalid_argument);
  EXPECT_THROW(FrameHistory(4, 0), std::invalid_argument);
}

/// Shared tiny fixture: an untrained (random-weight) model set is enough
/// to exercise the penalty plumbing and gradient chain.
LacoModels random_models(LacoScheme scheme) {
  LacoModels models;
  models.scheme = scheme;
  const SchemeTraits traits = traits_of(scheme);
  CongestionFcnConfig fc;
  fc.in_channels = f_in_channels(scheme);
  fc.base_width = 4;
  nn::reset_init_seed(17);
  models.congestion = std::make_shared<CongestionFcn>(fc);
  if (traits.uses_lookahead) {
    LookAheadConfig gc;
    gc.frames = 3;
    gc.channels_per_frame = g_channels(scheme);
    gc.base_width = 8;
    gc.inception_blocks = 1;
    gc.with_vae = traits.uses_vae;
    models.lookahead = std::make_shared<LookAheadModel>(gc);
  }
  return models;
}

PenaltyConfig tiny_penalty_config() {
  PenaltyConfig pc;
  pc.features_hi = FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, true};
  pc.features_lo = FeatureConfig{8, 8, QuasiVoxScheme::kWeightedSum, true};
  pc.frames = 3;
  pc.spacing = 5;
  pc.eta = 0.25;
  pc.start_iteration = 15;
  pc.apply_every = 1;
  return pc;
}

class PenaltySchemes : public ::testing::TestWithParam<LacoScheme> {};

TEST_P(PenaltySchemes, ProducesGradientsOnceReady) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 80;
  Design d = generate_design(gcfg);
  CongestionPenalty penalty(tiny_penalty_config(), random_models(GetParam()));

  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  // Seed a nonzero base gradient so the eta normalization has a scale.
  gx[static_cast<std::size_t>(d.movable_cells()[0])] = 1.0;

  double value = 0.0;
  for (int iter = 0; iter <= 20; ++iter) {
    value = penalty(d, iter, gx, gy);
    if (iter < 15) {
      EXPECT_DOUBLE_EQ(value, 0.0) << "iter " << iter;
    }
  }
  EXPECT_GT(value, 0.0);
  double grad_mag = 0.0;
  for (const double v : gy) grad_mag += std::abs(v);
  EXPECT_GT(grad_mag, 0.0);
}

TEST_P(PenaltySchemes, EtaNormalizationBoundsGradient) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 60;
  Design d = generate_design(gcfg);
  PenaltyConfig pc = tiny_penalty_config();
  pc.eta = 0.1;
  CongestionPenalty penalty(pc, random_models(GetParam()));

  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  for (const CellId cid : d.movable_cells()) gx[static_cast<std::size_t>(cid)] = 0.01;
  // Fill the history (no penalty applied before start_iteration).
  for (int iter = 0; iter < 15; ++iter) penalty(d, iter, gx, gy);
  const std::vector<double> gx_before = gx, gy_before = gy;
  double base = 0.0;
  for (const double v : gx) base += std::abs(v);
  penalty(d, 15, gx, gy);
  // The element-wise added penalty gradient has L1 mass eta * base.
  double added = 0.0;
  for (std::size_t i = 0; i < gx.size(); ++i) {
    added += std::abs(gx[i] - gx_before[i]) + std::abs(gy[i] - gy_before[i]);
  }
  EXPECT_NEAR(added, pc.eta * base, 1e-6 * base);
}

INSTANTIATE_TEST_SUITE_P(AllPenaltySchemes, PenaltySchemes,
                         ::testing::Values(LacoScheme::kDreamCong, LacoScheme::kLookAheadOnly,
                                           LacoScheme::kCellFlow, LacoScheme::kCellFlowKL,
                                           LacoScheme::kNoFlowKL, LacoScheme::kLessFlowKL));

TEST(CongestionPenalty, PredictProducesMapOnceReady) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 80;
  Design d = generate_design(gcfg);
  CongestionPenalty penalty(tiny_penalty_config(), random_models(LacoScheme::kCellFlowKL));
  GridMap out;
  EXPECT_FALSE(penalty.predict(d, out));  // no history yet
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  gx[static_cast<std::size_t>(d.movable_cells()[0])] = 1.0;
  for (int iter = 0; iter <= 10; ++iter) penalty(d, iter, gx, gy);
  ASSERT_TRUE(penalty.predict(d, out));
  EXPECT_EQ(out.nx(), 16);
  EXPECT_EQ(out.ny(), 16);
}

TEST(CongestionPenalty, DreamCongPredictWorksImmediately) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 50;
  Design d = generate_design(gcfg);
  CongestionPenalty penalty(tiny_penalty_config(), random_models(LacoScheme::kDreamCong));
  GridMap out;
  EXPECT_TRUE(penalty.predict(d, out));
}

TEST(CongestionPenalty, RequiresModels) {
  LacoModels broken;
  broken.scheme = LacoScheme::kCellFlowKL;
  EXPECT_THROW(CongestionPenalty(tiny_penalty_config(), broken), std::invalid_argument);
  LacoModels no_g = random_models(LacoScheme::kCellFlowKL);
  no_g.lookahead.reset();
  EXPECT_THROW(CongestionPenalty(tiny_penalty_config(), no_g), std::invalid_argument);
}

TEST(RunLacoPlacement, DreamPlaceBaselineNeedsNoModels) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 120;
  Design d = generate_design(gcfg);
  LacoPlacerConfig cfg;
  cfg.scheme = LacoScheme::kDreamPlace;
  cfg.placer.bin_nx = 8;
  cfg.placer.bin_ny = 8;
  cfg.placer.max_iterations = 80;
  cfg.placer.min_iterations = 30;
  cfg.router.grid.nx = 16;
  cfg.router.grid.ny = 16;
  const LacoRunResult result = run_laco_placement(d, cfg, nullptr);
  EXPECT_GT(result.placement.iterations, 0);
  EXPECT_EQ(result.evaluation.legality_violations, 0u);
  EXPECT_GT(result.evaluation.routed_wirelength, 0.0);
}

TEST(RunLacoPlacement, PenaltySchemeRequiresMatchingModels) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 60;
  Design d = generate_design(gcfg);
  LacoPlacerConfig cfg;
  cfg.scheme = LacoScheme::kDreamCong;
  EXPECT_THROW(run_laco_placement(d, cfg, nullptr), std::invalid_argument);
  const LacoModels wrong = random_models(LacoScheme::kCellFlow);
  EXPECT_THROW(run_laco_placement(d, cfg, &wrong), std::invalid_argument);
}

TEST(RunLacoPlacement, LacoSchemeRunsEndToEnd) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 100;
  Design d = generate_design(gcfg);
  LacoPlacerConfig cfg;
  cfg.scheme = LacoScheme::kCellFlowKL;
  cfg.placer.bin_nx = 8;
  cfg.placer.bin_ny = 8;
  cfg.placer.max_iterations = 60;
  cfg.placer.min_iterations = 60;
  cfg.placer.target_overflow = 0.0;
  cfg.penalty = PenaltyConfig{FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, true},
                              FeatureConfig{8, 8, QuasiVoxScheme::kWeightedSum, true},
                              3, 5, 0.2, 20, 5};
  cfg.router.grid.nx = 16;
  cfg.router.grid.ny = 16;
  const LacoModels models = random_models(LacoScheme::kCellFlowKL);
  const LacoRunResult result = run_laco_placement(d, cfg, &models);
  EXPECT_EQ(result.evaluation.legality_violations, 0u);
  // The penalty fired at least once.
  bool fired = false;
  for (const auto& stats : result.placement.history) fired |= stats.penalty > 0.0;
  EXPECT_TRUE(fired);
  // Runtime breakdown recorded the LACO phases.
  EXPECT_GT(result.breakdown.seconds("congestion model"), 0.0);
  EXPECT_GT(result.breakdown.seconds("look-ahead model"), 0.0);
  EXPECT_GT(result.breakdown.seconds("feature gathering"), 0.0);
}

}  // namespace
}  // namespace laco
