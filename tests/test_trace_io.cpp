// Round-trip tests for the trace dataset serialization and the
// pipeline's on-disk trace cache.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "laco/pipeline.hpp"
#include "netlist/generator.hpp"
#include "train/trace_io.hpp"

namespace laco {
namespace {

PlacementTrace tiny_trace(unsigned seed) {
  GeneratorConfig gcfg;
  gcfg.num_cells = 100;
  gcfg.seed = seed;
  Design d = generate_design(gcfg);
  TraceCollectionConfig cfg;
  cfg.snapshot.spacing = 10;
  cfg.snapshot.features = FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, true};
  cfg.snapshot.lookahead_features = FeatureConfig{8, 8, QuasiVoxScheme::kWeightedSum, true};
  cfg.placer.bin_nx = 8;
  cfg.placer.bin_ny = 8;
  cfg.placer.max_iterations = 40;
  cfg.placer.min_iterations = 40;
  cfg.placer.target_overflow = 0.0;
  cfg.router.grid.nx = 16;
  cfg.router.grid.ny = 16;
  return collect_trace(d, cfg);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const std::vector<PlacementTrace> traces{tiny_trace(1), tiny_trace(2)};
  std::stringstream ss;
  save_traces(traces, ss);
  const auto loaded = load_traces(ss);
  ASSERT_EQ(loaded.size(), traces.size());
  for (std::size_t t = 0; t < traces.size(); ++t) {
    EXPECT_EQ(loaded[t].design_name, traces[t].design_name);
    EXPECT_EQ(loaded[t].spacing, traces[t].spacing);
    EXPECT_DOUBLE_EQ(loaded[t].final_hpwl, traces[t].final_hpwl);
    EXPECT_DOUBLE_EQ(loaded[t].final_overflow, traces[t].final_overflow);
    EXPECT_NEAR(GridMap::l1_distance(loaded[t].congestion_label, traces[t].congestion_label),
                0.0, 1e-12);
    ASSERT_EQ(loaded[t].snapshots.size(), traces[t].snapshots.size());
    for (std::size_t s = 0; s < traces[t].snapshots.size(); ++s) {
      EXPECT_EQ(loaded[t].snapshots[s].iteration, traces[t].snapshots[s].iteration);
      for (int c = 0; c < FeatureFrame::kNumChannels; ++c) {
        EXPECT_NEAR(GridMap::l1_distance(loaded[t].snapshots[s].frame.channel(c),
                                         traces[t].snapshots[s].frame.channel(c)),
                    0.0, 1e-12);
        EXPECT_NEAR(GridMap::l1_distance(loaded[t].snapshots[s].lo_frame.channel(c),
                                         traces[t].snapshots[s].lo_frame.channel(c)),
                    0.0, 1e-12);
      }
    }
  }
}

TEST(TraceIo, FileRoundTrip) {
  const std::vector<PlacementTrace> traces{tiny_trace(3)};
  const std::string path = ::testing::TempDir() + "/traces.bin";
  ASSERT_TRUE(save_traces_file(traces, path));
  const auto loaded = load_traces_file(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0].final_hpwl, traces[0].final_hpwl);
  std::filesystem::remove(path);
}

TEST(TraceIo, RejectsGarbage) {
  std::stringstream ss("not a trace file at all");
  EXPECT_THROW(load_traces(ss), std::runtime_error);
  EXPECT_THROW(load_traces_file("/nonexistent/x.traces"), std::runtime_error);
}

TEST(TraceIo, PipelineDiskCacheReloads) {
  const std::string dir = ::testing::TempDir() + "/laco_trace_cache_test";
  std::filesystem::remove_all(dir);

  PipelineConfig cfg = default_pipeline_config();
  cfg.scale = 0.002;
  cfg.runs_per_design = 1;
  cfg.trace.placer.max_iterations = 40;
  cfg.trace.placer.min_iterations = 40;
  cfg.trace.snapshot.spacing = 10;
  cfg.trace.snapshot.features = FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, true};
  cfg.trace.snapshot.lookahead_features =
      FeatureConfig{8, 8, QuasiVoxScheme::kWeightedSum, true};
  cfg.trace.router.grid.nx = 16;
  cfg.trace.router.grid.ny = 16;

  double first_hpwl = 0.0;
  {
    Pipeline pipeline(cfg);
    pipeline.set_trace_cache_dir(dir);
    const auto& traces = pipeline.traces_for({"fft_1"});
    ASSERT_EQ(traces.size(), 1u);
    first_hpwl = traces[0].final_hpwl;
  }
  // A second pipeline instance must hit the disk cache and agree exactly.
  ASSERT_FALSE(std::filesystem::is_empty(dir));
  {
    Pipeline pipeline(cfg);
    pipeline.set_trace_cache_dir(dir);
    const auto& traces = pipeline.traces_for({"fft_1"});
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_DOUBLE_EQ(traces[0].final_hpwl, first_hpwl);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace laco
