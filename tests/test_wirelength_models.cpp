// Tests for the wirelength-model variants (WA vs LSE) and the Steiner
// net decomposition.
#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "placer/wirelength.hpp"
#include "router/net_decomposition.hpp"

namespace laco {
namespace {

Design two_pin_design(Point a, Point b) {
  Design d("t", Rect{0, 0, 16, 16}, 1.0);
  for (const Point p : {a, b}) {
    Cell c;
    c.width = 1.0;
    c.height = 1.0;
    c.x = p.x - 0.5;
    c.y = p.y - 0.5;
    d.add_cell(c);
  }
  const NetId n = d.add_net("n");
  d.add_pin(0, n, 0.5, 0.5);
  d.add_pin(1, n, 0.5, 0.5);
  return d;
}

TEST(LseWirelength, UpperBoundsHpwlAndConverges) {
  const Design d = two_pin_design({2, 3}, {11, 9});
  const double hpwl = d.hpwl();
  WirelengthModel coarse(2.0, WirelengthKind::kLogSumExp);
  WirelengthModel fine(0.05, WirelengthKind::kLogSumExp);
  // LSE over-approximates HPWL from above and tightens as γ→0.
  EXPECT_GE(coarse.evaluate(d), hpwl - 1e-9);
  EXPECT_GE(fine.evaluate(d), hpwl - 1e-9);
  EXPECT_LT(fine.evaluate(d) - hpwl, coarse.evaluate(d) - hpwl);
  EXPECT_NEAR(fine.evaluate(d), hpwl, 0.05 * hpwl);
}

class LseGradient : public ::testing::TestWithParam<double> {};

TEST_P(LseGradient, MatchesFiniteDifference) {
  GeneratorConfig cfg;
  cfg.num_cells = 30;
  cfg.seed = 8;
  Design d = generate_design(cfg);
  WirelengthModel model(GetParam(), WirelengthKind::kLogSumExp);
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  model.evaluate_with_grad(d, gx, gy);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < d.movable_cells().size(); i += 7) {
    const CellId cid = d.movable_cells()[i];
    Cell& cell = d.cell(cid);
    const double saved = cell.x;
    cell.x = saved + eps;
    const double up = model.evaluate(d);
    cell.x = saved - eps;
    const double down = model.evaluate(d);
    cell.x = saved;
    EXPECT_NEAR((up - down) / (2 * eps), gx[static_cast<std::size_t>(cid)],
                1e-4 * std::max(1.0, std::abs(gx[static_cast<std::size_t>(cid)])));
  }
}

INSTANTIATE_TEST_SUITE_P(Gammas, LseGradient, ::testing::Values(0.2, 1.0, 4.0));

TEST(LseWirelength, GradientIsBoundedByOne) {
  // LSE per-axis gradients are softmax differences: each in [-1, 1].
  GeneratorConfig cfg;
  cfg.num_cells = 50;
  Design d = generate_design(cfg);
  WirelengthModel model(0.5, WirelengthKind::kLogSumExp);
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  model.evaluate_with_grad(d, gx, gy);
  // Cells on multiple nets accumulate; bound by pin count. Check the
  // per-net bound via a 2-pin design instead.
  Design two = two_pin_design({3, 3}, {12, 12});
  std::vector<double> g2x(two.num_cells(), 0.0), g2y(two.num_cells(), 0.0);
  model.evaluate_with_grad(two, g2x, g2y);
  for (const double v : g2x) EXPECT_LE(std::abs(v), 1.0 + 1e-9);
}

TEST(Steiner, ThreePinStarBeatsMst) {
  // Terminals at (0,0), (10,0), (5,8): the Steiner point is (5,0); the
  // star costs 5+5+8=18 gcells, the MST costs 10+sqrt... (manhattan MST:
  // 10 + 9 = 19 via nearest pair).
  Design d("s", Rect{0, 0, 16, 16}, 1.0);
  const NetId n = d.add_net("n");
  const double px[3] = {0.2, 10.2, 5.2};
  const double py[3] = {0.2, 0.2, 8.2};
  for (int i = 0; i < 3; ++i) {
    Cell c;
    c.width = 0.5;
    c.height = 0.5;
    c.x = px[i];
    c.y = py[i];
    const CellId cid = d.add_cell(c);
    d.add_pin(cid, n, 0.25, 0.25);
  }
  GridGraphConfig gc;
  gc.nx = 16;
  gc.ny = 16;
  const GridGraph g(d, gc);
  const auto star = decompose_net(d, d.net(0), g, /*use_steiner=*/true);
  const auto mst = decompose_net(d, d.net(0), g, /*use_steiner=*/false);
  EXPECT_EQ(star.size(), 3u);
  EXPECT_EQ(mst.size(), 2u);
  EXPECT_LE(decomposition_length(star), decomposition_length(mst));
}

TEST(Steiner, DegenerateCollinearCaseMatchesMst) {
  // Collinear pins: the Steiner point coincides with the middle pin, so
  // the star has two segments of the same total length as the MST.
  Design d("s", Rect{0, 0, 16, 16}, 1.0);
  const NetId n = d.add_net("n");
  for (int i = 0; i < 3; ++i) {
    Cell c;
    c.width = 0.5;
    c.height = 0.5;
    c.x = 1.0 + 5.0 * i;
    c.y = 7.0;
    const CellId cid = d.add_cell(c);
    d.add_pin(cid, n, 0.25, 0.25);
  }
  GridGraphConfig gc;
  gc.nx = 16;
  gc.ny = 16;
  const GridGraph g(d, gc);
  const auto star = decompose_net(d, d.net(0), g, true);
  const auto mst = decompose_net(d, d.net(0), g, false);
  EXPECT_EQ(decomposition_length(star), decomposition_length(mst));
}

TEST(Steiner, FourPinNetsStillUseMst) {
  Design d("s", Rect{0, 0, 16, 16}, 1.0);
  const NetId n = d.add_net("n");
  const double pts[4][2] = {{1, 1}, {14, 1}, {1, 14}, {14, 14}};
  for (const auto& p : pts) {
    Cell c;
    c.width = 0.5;
    c.height = 0.5;
    c.x = p[0];
    c.y = p[1];
    const CellId cid = d.add_cell(c);
    d.add_pin(cid, n, 0.25, 0.25);
  }
  GridGraphConfig gc;
  gc.nx = 16;
  gc.ny = 16;
  const GridGraph g(d, gc);
  EXPECT_EQ(decompose_net(d, d.net(0), g, true).size(), 3u);  // MST: n-1 edges
}

}  // namespace
}  // namespace laco
