// Negative-path coverage for laco-bench-check
// (tools/bench_check_core.hpp): schema rejection, missing metric keys,
// drift gating with --strict, and the --metric filter. Reports are
// written to a scratch dir and fed through benchcheck::run, the same
// entry point the CLI uses.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_check_core.hpp"

namespace {

namespace fs = std::filesystem;

class BenchCheck : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test dir: ctest runs each TEST_F as its own process in
    // parallel, so a shared path would race with TearDown.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("laco_bench_check_") + info->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write(const std::string& name, const std::string& json) {
    const fs::path p = dir_ / name;
    std::ofstream out(p);
    out << json;
    return p.string();
  }

  /// A minimal valid laco-bench v1 report with the given metrics body,
  /// e.g. R"("a": 1.0, "b": 2.0)".
  static std::string report(const std::string& metrics,
                            const std::string& schema_version = "1") {
    return std::string("{\"schema\": \"laco-bench\", \"schema_version\": ") +
           schema_version +
           ", \"name\": \"fixture\", \"settings\": {}, \"series\": {}, \"metrics\": {" +
           metrics + "}}";
  }

  int run(const std::vector<std::string>& args) {
    out_.str("");
    err_.str("");
    return laco::benchcheck::run(args, out_, err_);
  }

  fs::path dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(BenchCheck, WithinToleranceIsCleanEvenStrict) {
  const std::string cur = write("cur.json", report("\"runtime_ms\": 104.0"));
  const std::string base = write("base.json", report("\"runtime_ms\": 100.0"));
  EXPECT_EQ(run({cur, base, "--max-drift", "10", "--strict"}), 0);
  EXPECT_NE(out_.str().find("1 metric(s) compared, 0 beyond threshold"), std::string::npos)
      << out_.str();
}

TEST_F(BenchCheck, DriftBeyondToleranceGatesOnlyUnderStrict) {
  const std::string cur = write("cur.json", report("\"runtime_ms\": 150.0"));
  const std::string base = write("base.json", report("\"runtime_ms\": 100.0"));
  // Warn-only by default (machine perf varies)...
  EXPECT_EQ(run({cur, base, "--max-drift", "10"}), 0);
  EXPECT_NE(out_.str().find("** DRIFT **"), std::string::npos) << out_.str();
  // ...but --strict turns the same drift into exit 1.
  EXPECT_EQ(run({cur, base, "--max-drift", "10", "--strict"}), 1);
  EXPECT_EQ(run({cur, base, "--max-drift", "60", "--strict"}), 0);
}

TEST_F(BenchCheck, MissingMetricKeyIsFlagged) {
  const std::string cur = write("cur.json", report("\"other\": 1.0"));
  const std::string base = write("base.json", report("\"runtime_ms\": 100.0"));
  EXPECT_EQ(run({cur, base, "--strict"}), 1);
  EXPECT_NE(out_.str().find("runtime_ms: MISSING from current report"), std::string::npos)
      << out_.str();
}

TEST_F(BenchCheck, SchemaVersionMismatchIsExitTwo) {
  const std::string cur = write("cur.json", report("\"runtime_ms\": 100.0"));
  const std::string base = write("base.json", report("\"runtime_ms\": 100.0", "99"));
  EXPECT_EQ(run({cur, base}), 2);
  EXPECT_NE(err_.str().find("schema_version"), std::string::npos) << err_.str();
}

TEST_F(BenchCheck, InvalidJsonAndUnreadableFilesAreExitTwo) {
  const std::string cur = write("cur.json", report("\"runtime_ms\": 100.0"));
  const std::string garbage = write("garbage.json", "{not json");
  EXPECT_EQ(run({cur, garbage}), 2);
  EXPECT_EQ(run({cur, (dir_ / "no_such.json").string()}), 2);
  EXPECT_NE(err_.str().find("cannot read"), std::string::npos) << err_.str();
}

TEST_F(BenchCheck, MetricFilterComparesOnlySelectedKeys) {
  // wall_ms drifts wildly but is not selected; the scale-invariant
  // counter is stable, so the gate passes.
  const std::string cur =
      write("cur.json", report("\"wall_ms\": 900.0, \"allocs_per_fwd\": 2.0"));
  const std::string base =
      write("base.json", report("\"wall_ms\": 100.0, \"allocs_per_fwd\": 2.0"));
  EXPECT_EQ(run({cur, base, "--strict", "--max-drift", "5", "--metric", "allocs_per_fwd"}),
            0);
  EXPECT_EQ(out_.str().find("wall_ms"), std::string::npos) << out_.str();
  // A selected key absent from the baseline must fail, not pass
  // vacuously.
  EXPECT_EQ(run({cur, base, "--strict", "--metric", "no_such_metric"}), 1);
  EXPECT_NE(out_.str().find("no_such_metric: MISSING from baseline report"),
            std::string::npos)
      << out_.str();
}

TEST_F(BenchCheck, UsageErrorsAreExitTwo) {
  EXPECT_EQ(run({}), 2);
  EXPECT_EQ(run({"only_one.json"}), 2);
  EXPECT_EQ(run({"a.json", "b.json", "--unknown-flag"}), 2);
  EXPECT_NE(err_.str().find("usage:"), std::string::npos) << err_.str();
}

}  // namespace
