// Fence regions and routing blockages — the ISPD-2015 suite's defining
// constraints. Covers the data model, generator, placement flow
// (GP → LG → DP keeps fences satisfied), router derating, and I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "netlist/bookshelf_io.hpp"
#include "netlist/design_stats.hpp"
#include "netlist/generator.hpp"
#include "netlist/ispd2015_suite.hpp"
#include "placer/global_placer.hpp"
#include "router/congestion_eval.hpp"

namespace laco {
namespace {

Design fenced_toy() {
  Design d("ft", Rect{0, 0, 20, 20}, 1.0);
  for (int i = 0; i < 6; ++i) {
    Cell c;
    c.width = 1;
    c.height = 1;
    c.x = 10;
    c.y = 10;
    d.add_cell(c);
  }
  const FenceId f = d.add_fence("fence0", Rect{2, 2, 8, 8});
  d.assign_to_fence(0, f);
  d.assign_to_fence(1, f);
  const NetId n = d.add_net("n");
  d.add_pin(0, n, 0.5, 0.5);
  d.add_pin(3, n, 0.5, 0.5);
  return d;
}

TEST(Fence, ApiAndValidation) {
  Design d = fenced_toy();
  EXPECT_EQ(d.fences().size(), 1u);
  EXPECT_EQ(d.fence_of(0), 0);
  EXPECT_EQ(d.fence_of(3), kNoFence);
  EXPECT_EQ(d.fences()[0].members.size(), 2u);
  EXPECT_THROW(d.assign_to_fence(0, 0), std::invalid_argument);  // already fenced
  EXPECT_THROW(d.assign_to_fence(99, 0), std::out_of_range);
  EXPECT_THROW(d.assign_to_fence(2, 5), std::out_of_range);
  EXPECT_THROW(d.add_fence("bad", Rect{5, 5, 5, 9}), std::invalid_argument);
}

TEST(Fence, FixedCellsCannotBeFenced) {
  Design d("f", Rect{0, 0, 10, 10}, 1.0);
  Cell pad;
  pad.kind = CellKind::kPad;
  pad.fixed = true;
  pad.width = 1;
  pad.height = 1;
  d.add_cell(pad);
  const FenceId f = d.add_fence("fence", Rect{1, 1, 5, 5});
  EXPECT_THROW(d.assign_to_fence(0, f), std::invalid_argument);
}

TEST(Fence, SetPositionsClampsMembersIntoFence) {
  Design d = fenced_toy();
  std::vector<double> x, y;
  d.get_movable_positions(x, y);
  for (double& v : x) v = 15.0;  // far outside the fence
  for (double& v : y) v = 15.0;
  d.set_movable_positions(x, y);
  for (const CellId member : d.fences()[0].members) {
    const Rect& region = d.fences()[0].region;
    EXPECT_GE(d.cell(member).x, region.xl - 1e-9);
    EXPECT_LE(d.cell(member).x + d.cell(member).width, region.xh + 1e-9);
  }
  // Unfenced cells clamp to the core only.
  EXPECT_DOUBLE_EQ(d.cell(3).center().x, 15.0);
}

TEST(Fence, GeneratorCreatesExclusiveFences) {
  GeneratorConfig cfg;
  cfg.num_cells = 600;
  cfg.num_fences = 2;
  cfg.seed = 21;
  const Design d = generate_design(cfg);
  const DesignStats stats = compute_stats(d);
  EXPECT_GE(stats.num_fences, 1u);
  EXPECT_GT(stats.num_fenced_cells, 0u);
  // Fences do not overlap each other or macros.
  for (std::size_t i = 0; i < d.fences().size(); ++i) {
    for (std::size_t j = i + 1; j < d.fences().size(); ++j) {
      EXPECT_DOUBLE_EQ(overlap_area(d.fences()[i].region, d.fences()[j].region), 0.0);
    }
    for (const Cell& c : d.cells()) {
      if (c.kind != CellKind::kMacro) continue;
      EXPECT_DOUBLE_EQ(overlap_area(d.fences()[i].region, c.rect()), 0.0);
    }
  }
}

TEST(Fence, GeneratorCreatesRoutingBlockages) {
  GeneratorConfig cfg;
  cfg.num_cells = 200;
  cfg.num_routing_blockages = 3;
  const Design d = generate_design(cfg);
  EXPECT_EQ(d.routing_blockages().size(), 3u);
  for (const Rect& b : d.routing_blockages()) {
    EXPECT_GT(b.area(), 0.0);
    EXPECT_GE(b.xl, d.core().xl - 1e-9);
    EXPECT_LE(b.xh, d.core().xh + 1e-9);
  }
}

TEST(Fence, FullFlowKeepsFencesLegal) {
  GeneratorConfig cfg;
  cfg.num_cells = 500;
  cfg.num_fences = 2;
  cfg.seed = 33;
  Design d = generate_design(cfg);
  ASSERT_FALSE(d.fences().empty());
  GlobalPlacerOptions opts;
  opts.bin_nx = 16;
  opts.bin_ny = 16;
  opts.max_iterations = 200;
  opts.min_iterations = 50;
  GlobalPlacer placer(d, opts);
  placer.run();
  // GP keeps members inside via position clamping.
  for (const Fence& fence : d.fences()) {
    for (const CellId member : fence.members) {
      EXPECT_GT(overlap_area(d.cell(member).rect(), fence.region), 0.0);
    }
  }
  GlobalRouterConfig rc;
  rc.grid.nx = 16;
  rc.grid.ny = 16;
  const PlacementEvaluation eval = evaluate_placement(d, rc);
  EXPECT_EQ(eval.legality_violations, 0u)
      << "fences: " << d.fences().size() << " members: " << d.fences()[0].members.size();
}

TEST(Fence, BookshelfRoundTripPreservesConstraints) {
  GeneratorConfig cfg;
  cfg.num_cells = 300;
  cfg.num_fences = 1;
  cfg.num_routing_blockages = 2;
  cfg.seed = 44;
  const Design d = generate_design(cfg);
  std::stringstream ss;
  write_bookshelf(d, ss);
  const Design r = read_bookshelf(ss);
  ASSERT_EQ(r.fences().size(), d.fences().size());
  for (std::size_t i = 0; i < d.fences().size(); ++i) {
    EXPECT_EQ(r.fences()[i].members, d.fences()[i].members);
    EXPECT_EQ(r.fences()[i].region, d.fences()[i].region);
  }
  EXPECT_EQ(r.routing_blockages().size(), d.routing_blockages().size());
}

TEST(Fence, RoutingBlockageDeratesRouterCapacity) {
  Design d("b", Rect{0, 0, 16, 16}, 1.0);
  Cell c;
  c.width = 1;
  c.height = 1;
  d.add_cell(c);
  d.add_routing_blockage(Rect{4, 4, 10, 10});
  GridGraphConfig gc;
  gc.nx = 16;
  gc.ny = 16;
  const GridGraph g(d, gc);
  EXPECT_LT(g.h_capacity(6, 6), g.h_capacity(0, 0));
  EXPECT_LT(g.v_capacity(6, 6), g.v_capacity(0, 0));
}

TEST(Fence, SuiteVariantsCarryConstraints) {
  const Design a = make_ispd2015_analog("des_perf_a", 0.004);
  const Design plain = make_ispd2015_analog("des_perf_1", 0.004);
  EXPECT_GT(a.fences().size() + a.routing_blockages().size(), 0u);
  EXPECT_EQ(plain.fences().size(), 0u);
}

}  // namespace
}  // namespace laco
