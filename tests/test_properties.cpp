// Property-based sweeps: invariants that must hold across the whole
// generated design family, parameterized over seeds and configurations
// (TEST_P). These complement the example-based unit tests with breadth.
#include <gtest/gtest.h>

#include "features/feature_stack.hpp"
#include "features/rudy.hpp"
#include "util/rng.hpp"
#include "laco/congestion_penalty.hpp"
#include "metrics/kl_divergence.hpp"
#include "obs/metrics.hpp"
#include "metrics/nrms.hpp"
#include "metrics/ssim.hpp"
#include "netlist/bookshelf_io.hpp"
#include "netlist/generator.hpp"
#include "placer/global_placer.hpp"
#include "placer/legalizer.hpp"
#include "router/congestion_eval.hpp"
#include "router/global_router.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>

namespace laco {
namespace {

struct DesignParams {
  int cells;
  int macros;
  double macro_fraction;
  double utilization;
  unsigned seed;
};

void PrintTo(const DesignParams& p, std::ostream* os) {
  *os << "cells" << p.cells << "_m" << p.macros << "_seed" << p.seed;
}

class DesignFamily : public ::testing::TestWithParam<DesignParams> {
 protected:
  static Design make(const DesignParams& p) {
    GeneratorConfig cfg;
    cfg.num_cells = p.cells;
    cfg.num_macros = p.macros;
    cfg.macro_area_fraction = p.macro_fraction;
    cfg.target_utilization = p.utilization;
    cfg.seed = p.seed;
    return generate_design(cfg);
  }
};

TEST_P(DesignFamily, StructuralInvariants) {
  const Design d = make(GetParam());
  // Every pin references a valid cell and net; every net has >= 2 pins.
  for (const Pin& pin : d.pins()) {
    ASSERT_GE(pin.cell, 0);
    ASSERT_LT(static_cast<std::size_t>(pin.cell), d.num_cells());
    ASSERT_GE(pin.net, 0);
    ASSERT_LT(static_cast<std::size_t>(pin.net), d.num_nets());
  }
  for (const Net& net : d.nets()) {
    EXPECT_GE(net.degree(), 2);
  }
  // Pin offsets stay inside their cell.
  for (PinId pid = 0; pid < static_cast<PinId>(d.num_pins()); ++pid) {
    const Pin& pin = d.pin(pid);
    const Cell& cell = d.cell(pin.cell);
    EXPECT_GE(pin.offset_x, -1e-9);
    EXPECT_LE(pin.offset_x, cell.width + 1e-9);
    EXPECT_GE(pin.offset_y, -1e-9);
    EXPECT_LE(pin.offset_y, cell.height + 1e-9);
  }
  // Movable list is exactly the non-fixed cells.
  std::size_t movable = 0;
  for (const Cell& cell : d.cells()) movable += cell.fixed ? 0 : 1;
  EXPECT_EQ(movable, d.num_movable());
}

TEST_P(DesignFamily, FeatureMapsAreFiniteAndSigned) {
  const Design d = make(GetParam());
  FeatureExtractor ex(FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, false});
  const FeatureFrame frame = ex.compute(d);
  for (int c = 0; c < 3; ++c) {
    for (const double v : frame.channel(c).data()) {
      ASSERT_TRUE(std::isfinite(v));
      ASSERT_GE(v, 0.0);  // RUDY, PinRUDY, MacroRegion are non-negative
    }
  }
  // MacroRegion is binary.
  for (const double v : frame.macro_region.data()) {
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
}

TEST_P(DesignFamily, BookshelfRoundTripPreservesHpwl) {
  const Design d = make(GetParam());
  std::stringstream ss;
  write_bookshelf(d, ss);
  const Design r = read_bookshelf(ss);
  EXPECT_EQ(r.num_pins(), d.num_pins());
  EXPECT_NEAR(r.hpwl(), d.hpwl(), 1e-9 * std::max(1.0, d.hpwl()));
}

TEST_P(DesignFamily, LegalizationAlwaysSucceedsAndIsLegal) {
  Design d = make(GetParam());
  // Worst case input: everything clumped at the center.
  std::vector<double> x(d.num_movable(), d.core().center().x);
  std::vector<double> y(d.num_movable(), d.core().center().y);
  d.set_movable_positions(x, y);
  const LegalizeResult result = legalize(d);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(count_legality_violations(d), 0u);
}

TEST_P(DesignFamily, RouterConservesSegmentDemand) {
  const Design d = make(GetParam());
  GlobalRouterConfig cfg;
  cfg.grid.nx = 16;
  cfg.grid.ny = 16;
  cfg.rrr_rounds = 0;  // pattern routing only: demand exactly = path length
  GlobalRouter router(d, cfg);
  const RoutingResult result = router.route();
  double total_usage = 0.0;
  for (int l = 0; l < 16; ++l) {
    for (int k = 0; k + 1 < 16; ++k) total_usage += router.grid().h_usage(k, l);
  }
  for (int l = 0; l + 1 < 16; ++l) {
    for (int k = 0; k < 16; ++k) total_usage += router.grid().v_usage(k, l);
  }
  // Every routed edge contributes exactly 1 track of usage.
  double expected_edges = 0.0;
  expected_edges += result.routed_wirelength / router.grid().gcell_w();  // approx if w==h
  EXPECT_GT(total_usage, 0.0);
  // Exact identity: routed WL = Σ edge-steps × gcell size; with square
  // gcells usage count equals WL / gcell size.
  EXPECT_NEAR(total_usage, result.routed_wirelength / router.grid().gcell_w(),
              1e-6 * total_usage + 1e-6);
}

TEST_P(DesignFamily, PlacementPipelineEndsLegalAndRouted) {
  Design d = make(GetParam());
  GlobalPlacerOptions opts;
  opts.bin_nx = 12;
  opts.bin_ny = 12;
  opts.max_iterations = 120;
  opts.min_iterations = 60;
  GlobalPlacer placer(d, opts);
  placer.run();
  GlobalRouterConfig rc;
  rc.grid.nx = 16;
  rc.grid.ny = 16;
  const PlacementEvaluation eval = evaluate_placement(d, rc);
  EXPECT_EQ(eval.legality_violations, 0u);
  EXPECT_GT(eval.routed_wirelength, 0.0);
  EXPECT_TRUE(std::isfinite(eval.wcs_h));
  EXPECT_TRUE(std::isfinite(eval.wcs_v));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DesignFamily,
    ::testing::Values(DesignParams{150, 0, 0.0, 0.6, 1}, DesignParams{150, 2, 0.15, 0.7, 2},
                      DesignParams{400, 4, 0.25, 0.8, 3}, DesignParams{400, 1, 0.05, 0.65, 4},
                      DesignParams{800, 6, 0.3, 0.75, 5}, DesignParams{250, 3, 0.2, 0.85, 6}));

// --- metric properties over random map pairs ----------------------------

class MetricPairs : public ::testing::TestWithParam<unsigned> {};

TEST_P(MetricPairs, MetricAxioms) {
  Rng rng(GetParam());
  GridMap truth(12, 12, Rect{0, 0, 1, 1});
  GridMap pred(12, 12, Rect{0, 0, 1, 1});
  for (std::size_t i = 0; i < truth.size(); ++i) {
    truth[i] = rng.uniform(0.0, 2.0);
    pred[i] = rng.uniform(0.0, 2.0);
  }
  // NRMS: non-negative, zero iff identical.
  EXPECT_GE(nrms(pred, truth), 0.0);
  EXPECT_DOUBLE_EQ(nrms(truth, truth), 0.0);
  // SSIM: bounded by 1, symmetric in its two arguments.
  EXPECT_LE(ssim(pred, truth), 1.0 + 1e-9);
  EXPECT_NEAR(ssim(pred, truth), ssim(truth, pred), 1e-12);
  // KL: non-negative (Gibbs), zero on identical distributions.
  EXPECT_GE(kl_divergence(pred, truth), -1e-12);
  EXPECT_NEAR(kl_divergence(pred, pred), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPairs, ::testing::Values(11u, 22u, 33u, 44u, 55u));

// --- wirelength property: WA upper-bounds smoothness --------------------

class WirelengthGamma : public ::testing::TestWithParam<double> {};

TEST_P(WirelengthGamma, GradientMatchesFiniteDifferenceAcrossGamma) {
  GeneratorConfig cfg;
  cfg.num_cells = 40;
  cfg.seed = 12;
  Design d = generate_design(cfg);
  WirelengthModel model(GetParam());
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  model.evaluate_with_grad(d, gx, gy);
  const double eps = 1e-6;
  // Probe a handful of movable cells.
  for (std::size_t i = 0; i < d.movable_cells().size(); i += 13) {
    const CellId cid = d.movable_cells()[i];
    Cell& cell = d.cell(cid);
    const double saved = cell.y;
    cell.y = saved + eps;
    const double up = model.evaluate(d);
    cell.y = saved - eps;
    const double down = model.evaluate(d);
    cell.y = saved;
    EXPECT_NEAR((up - down) / (2 * eps), gy[static_cast<std::size_t>(cid)],
                1e-4 * std::max(1.0, std::abs(gy[static_cast<std::size_t>(cid)])));
  }
}

INSTANTIATE_TEST_SUITE_P(Gammas, WirelengthGamma, ::testing::Values(0.1, 0.5, 2.0, 8.0));

// --- Eq. 17 RUDY backward: gradient vs finite differences ---------------
//
// rudy_backward deliberately drops the spread-geometry transport term:
// it differentiates the net *value* (1/w + 1/h) through the boundary
// pins while freezing which bins the value lands in (see
// src/features/rudy.cpp, "only boundary pins move the value"). The
// faithful property is therefore: the returned gradient is the exact
// derivative of the frozen-geometry surrogate
//
//   φ̃(pos) = Σ_n weight_n · (1/w_eff_n(pos) + 1/h_eff_n(pos)) · S_n,
//
// where S_n = Σ_bins upstream · overlap(base spread)/bin_area is fixed
// at the base positions. φ̃ is smooth in w and h, so central differences
// are tight and a mismatch means a sign/indexing/accumulation bug.

class RudyBackwardFD : public ::testing::TestWithParam<unsigned> {};

TEST_P(RudyBackwardFD, MatchesFiniteDifferenceOfFrozenGeometrySurrogate) {
  GeneratorConfig cfg;
  cfg.num_cells = 45;
  cfg.seed = GetParam();
  Design d = generate_design(cfg);
  const int n = 10;
  GridMap upstream(n, n, d.core(), 0.0);
  for (std::size_t i = 0; i < upstream.size(); ++i) {
    upstream[i] = std::sin(0.7 * static_cast<double>(i)) + 0.2;
  }
  const double min_w = upstream.bin_width();
  const double min_h = upstream.bin_height();

  // Per-net raw pin bounding box at the current positions.
  const auto net_box = [&](const Net& net) {
    Rect box;
    bool first = true;
    for (const PinId pid : net.pins) {
      const Point p = d.pin_position(pid);
      if (first || p.x < box.xl) box.xl = p.x;
      if (first || p.x > box.xh) box.xh = p.x;
      if (first || p.y < box.yl) box.yl = p.y;
      if (first || p.y > box.yh) box.yh = p.y;
      first = false;
    }
    return box;
  };

  // Frozen spread weights S_n at the base positions.
  std::vector<double> S(d.num_nets(), 0.0);
  for (std::size_t ni = 0; ni < d.num_nets(); ++ni) {
    const Net& net = d.nets()[ni];
    if (net.degree() < 2) continue;
    const Rect box = net_box(net);
    const double w_eff = std::max(box.width(), min_w);
    const double h_eff = std::max(box.height(), min_h);
    const Point c = box.center();
    const Rect spread{c.x - w_eff * 0.5, c.y - h_eff * 0.5, c.x + w_eff * 0.5,
                      c.y + h_eff * 0.5};
    GridMap unit(n, n, d.core(), 0.0);
    unit.add_rect(spread, 1.0, /*density_mode=*/false);
    for (std::size_t i = 0; i < unit.size(); ++i) S[ni] += upstream[i] * unit[i];
  }

  const auto surrogate = [&] {
    double phi = 0.0;
    for (std::size_t ni = 0; ni < d.num_nets(); ++ni) {
      const Net& net = d.nets()[ni];
      if (net.degree() < 2) continue;
      const Rect box = net_box(net);
      const double w_eff = std::max(box.width(), min_w);
      const double h_eff = std::max(box.height(), min_h);
      phi += net.weight * (1.0 / w_eff + 1.0 / h_eff) * S[ni];
    }
    return phi;
  };

  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  rudy_backward(d, upstream, gx, gy);

  const double eps = 1e-6 * d.core().width();
  for (std::size_t i = 0; i < d.movable_cells().size(); i += 5) {
    const CellId cid = d.movable_cells()[i];
    const std::size_t ci = static_cast<std::size_t>(cid);
    for (const bool horizontal : {true, false}) {
      Cell& cell = d.cell(cid);
      double& coord = horizontal ? cell.x : cell.y;
      const double saved = coord;
      coord = saved + eps;
      const double up = surrogate();
      coord = saved - eps;
      const double down = surrogate();
      coord = saved;
      const double fd = (up - down) / (2 * eps);
      const double got = horizontal ? gx[ci] : gy[ci];
      EXPECT_NEAR(fd, got, 1e-4 * std::max(std::abs(fd), std::abs(got)) + 1e-8)
          << "cell " << cid << (horizontal ? " x" : " y");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RudyBackwardFD, ::testing::Values(3u, 19u, 42u));

// --- analytic RUDY fallback: loss formula and gradient chain ------------
//
// analytic_rudy_penalty documents L = (1/MN) Σ (s·rudy_i)² with upstream
// d_rudy_i = 2 s² rudy_i / MN chained through the shared feature
// backward (src/laco/congestion_penalty.hpp). Both halves are checked
// against the public APIs; combined with RudyBackwardFD above, the
// whole fallback gradient chain is covered.

TEST(AnalyticRudyPenalty, LossAndGradientMatchDocumentedChain) {
  GeneratorConfig cfg;
  cfg.num_cells = 50;
  cfg.seed = 9;
  Design d = generate_design(cfg);
  const int n = 12;
  const FeatureExtractor ex(FeatureConfig{n, n, QuasiVoxScheme::kWeightedSum, false});
  const double s = 0.7;

  std::vector<double> pen_gx(d.num_movable(), 0.0), pen_gy(d.num_movable(), 0.0);
  const double loss = analytic_rudy_penalty(d, ex, s, pen_gx, pen_gy);

  const FeatureFrame frame = ex.compute(d);
  const double inv_size = 1.0 / static_cast<double>(frame.rudy.size());
  double want_loss = 0.0;
  GridMap d_rudy(n, n, d.core(), 0.0);
  for (std::size_t i = 0; i < frame.rudy.size(); ++i) {
    want_loss += (s * frame.rudy[i]) * (s * frame.rudy[i]) * inv_size;
    d_rudy[i] = 2.0 * s * s * frame.rudy[i] * inv_size;
  }
  EXPECT_GT(loss, 0.0);
  EXPECT_NEAR(loss, want_loss, 1e-12 * std::max(1.0, want_loss));

  const GridMap zero(n, n, d.core(), 0.0);
  const FeatureFrameGrad upstream{d_rudy, zero, zero, zero};
  std::vector<double> want_gx, want_gy;
  ex.backward(d, upstream, want_gx, want_gy);
  ASSERT_EQ(pen_gx.size(), want_gx.size());
  double grad_norm = 0.0;
  for (std::size_t i = 0; i < want_gx.size(); ++i) {
    EXPECT_NEAR(pen_gx[i], want_gx[i], 1e-12 + 1e-9 * std::abs(want_gx[i]));
    EXPECT_NEAR(pen_gy[i], want_gy[i], 1e-12 + 1e-9 * std::abs(want_gy[i]));
    grad_norm += std::abs(want_gx[i]) + std::abs(want_gy[i]);
  }
  EXPECT_GT(grad_norm, 0.0) << "fallback gradient should push cells somewhere";
}

// --- histogram percentiles vs a sorted-vector oracle --------------------
//
// The fixed-bucket estimator interpolates inside the bucket containing
// the target rank, so its error is bounded by that bucket's width
// (src/obs/metrics.hpp). Checked against the exact sorted-sample
// percentile across several distributions.

class HistogramOracle : public ::testing::TestWithParam<unsigned> {};

TEST_P(HistogramOracle, PercentileWithinOneBucketOfSortedOracle) {
  std::mt19937 rng(GetParam());
  std::lognormal_distribution<double> dist(0.0, 1.0);
  obs::Histogram hist(obs::Histogram::exponential_bounds(0.01, 200.0, 1.5));
  std::vector<double> values;
  values.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    const double v = std::min(150.0, dist(rng));
    values.push_back(v);
    hist.observe(v);
  }
  std::sort(values.begin(), values.end());
  const obs::HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.total, values.size());
  EXPECT_EQ(snap.min, values.front());
  EXPECT_EQ(snap.max, values.back());
  double sum = 0.0;
  for (const double v : values) sum += v;
  EXPECT_NEAR(snap.mean(), sum / static_cast<double>(values.size()), 1e-9);

  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    // Exact continuous-rank percentile of the sorted sample.
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const std::size_t lo_idx = static_cast<std::size_t>(rank);
    const std::size_t hi_idx = std::min(lo_idx + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo_idx);
    const double oracle = values[lo_idx] * (1.0 - frac) + values[hi_idx] * frac;

    // Width of the bucket containing the oracle value.
    const auto it = std::lower_bound(snap.bounds.begin(), snap.bounds.end(), oracle);
    const std::size_t b = static_cast<std::size_t>(it - snap.bounds.begin());
    const double blo = b == 0 ? snap.min : snap.bounds[b - 1];
    const double bhi = b < snap.bounds.size() ? snap.bounds[b] : snap.max;
    const double width = std::max(1e-12, bhi - blo);
    EXPECT_NEAR(snap.percentile(p), oracle, width + 1e-9) << "p" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramOracle, ::testing::Values(1u, 7u, 23u));

}  // namespace
}  // namespace laco
