// Property-based sweeps: invariants that must hold across the whole
// generated design family, parameterized over seeds and configurations
// (TEST_P). These complement the example-based unit tests with breadth.
#include <gtest/gtest.h>

#include "features/feature_stack.hpp"
#include "metrics/kl_divergence.hpp"
#include "metrics/nrms.hpp"
#include "metrics/ssim.hpp"
#include "netlist/bookshelf_io.hpp"
#include "netlist/generator.hpp"
#include "placer/global_placer.hpp"
#include "placer/legalizer.hpp"
#include "router/congestion_eval.hpp"
#include "router/global_router.hpp"

#include <sstream>

namespace laco {
namespace {

struct DesignParams {
  int cells;
  int macros;
  double macro_fraction;
  double utilization;
  unsigned seed;
};

void PrintTo(const DesignParams& p, std::ostream* os) {
  *os << "cells" << p.cells << "_m" << p.macros << "_seed" << p.seed;
}

class DesignFamily : public ::testing::TestWithParam<DesignParams> {
 protected:
  static Design make(const DesignParams& p) {
    GeneratorConfig cfg;
    cfg.num_cells = p.cells;
    cfg.num_macros = p.macros;
    cfg.macro_area_fraction = p.macro_fraction;
    cfg.target_utilization = p.utilization;
    cfg.seed = p.seed;
    return generate_design(cfg);
  }
};

TEST_P(DesignFamily, StructuralInvariants) {
  const Design d = make(GetParam());
  // Every pin references a valid cell and net; every net has >= 2 pins.
  for (const Pin& pin : d.pins()) {
    ASSERT_GE(pin.cell, 0);
    ASSERT_LT(static_cast<std::size_t>(pin.cell), d.num_cells());
    ASSERT_GE(pin.net, 0);
    ASSERT_LT(static_cast<std::size_t>(pin.net), d.num_nets());
  }
  for (const Net& net : d.nets()) {
    EXPECT_GE(net.degree(), 2);
  }
  // Pin offsets stay inside their cell.
  for (PinId pid = 0; pid < static_cast<PinId>(d.num_pins()); ++pid) {
    const Pin& pin = d.pin(pid);
    const Cell& cell = d.cell(pin.cell);
    EXPECT_GE(pin.offset_x, -1e-9);
    EXPECT_LE(pin.offset_x, cell.width + 1e-9);
    EXPECT_GE(pin.offset_y, -1e-9);
    EXPECT_LE(pin.offset_y, cell.height + 1e-9);
  }
  // Movable list is exactly the non-fixed cells.
  std::size_t movable = 0;
  for (const Cell& cell : d.cells()) movable += cell.fixed ? 0 : 1;
  EXPECT_EQ(movable, d.num_movable());
}

TEST_P(DesignFamily, FeatureMapsAreFiniteAndSigned) {
  const Design d = make(GetParam());
  FeatureExtractor ex(FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, false});
  const FeatureFrame frame = ex.compute(d);
  for (int c = 0; c < 3; ++c) {
    for (const double v : frame.channel(c).data()) {
      ASSERT_TRUE(std::isfinite(v));
      ASSERT_GE(v, 0.0);  // RUDY, PinRUDY, MacroRegion are non-negative
    }
  }
  // MacroRegion is binary.
  for (const double v : frame.macro_region.data()) {
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
}

TEST_P(DesignFamily, BookshelfRoundTripPreservesHpwl) {
  const Design d = make(GetParam());
  std::stringstream ss;
  write_bookshelf(d, ss);
  const Design r = read_bookshelf(ss);
  EXPECT_EQ(r.num_pins(), d.num_pins());
  EXPECT_NEAR(r.hpwl(), d.hpwl(), 1e-9 * std::max(1.0, d.hpwl()));
}

TEST_P(DesignFamily, LegalizationAlwaysSucceedsAndIsLegal) {
  Design d = make(GetParam());
  // Worst case input: everything clumped at the center.
  std::vector<double> x(d.num_movable(), d.core().center().x);
  std::vector<double> y(d.num_movable(), d.core().center().y);
  d.set_movable_positions(x, y);
  const LegalizeResult result = legalize(d);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(count_legality_violations(d), 0u);
}

TEST_P(DesignFamily, RouterConservesSegmentDemand) {
  const Design d = make(GetParam());
  GlobalRouterConfig cfg;
  cfg.grid.nx = 16;
  cfg.grid.ny = 16;
  cfg.rrr_rounds = 0;  // pattern routing only: demand exactly = path length
  GlobalRouter router(d, cfg);
  const RoutingResult result = router.route();
  double total_usage = 0.0;
  for (int l = 0; l < 16; ++l) {
    for (int k = 0; k + 1 < 16; ++k) total_usage += router.grid().h_usage(k, l);
  }
  for (int l = 0; l + 1 < 16; ++l) {
    for (int k = 0; k < 16; ++k) total_usage += router.grid().v_usage(k, l);
  }
  // Every routed edge contributes exactly 1 track of usage.
  double expected_edges = 0.0;
  expected_edges += result.routed_wirelength / router.grid().gcell_w();  // approx if w==h
  EXPECT_GT(total_usage, 0.0);
  // Exact identity: routed WL = Σ edge-steps × gcell size; with square
  // gcells usage count equals WL / gcell size.
  EXPECT_NEAR(total_usage, result.routed_wirelength / router.grid().gcell_w(),
              1e-6 * total_usage + 1e-6);
}

TEST_P(DesignFamily, PlacementPipelineEndsLegalAndRouted) {
  Design d = make(GetParam());
  GlobalPlacerOptions opts;
  opts.bin_nx = 12;
  opts.bin_ny = 12;
  opts.max_iterations = 120;
  opts.min_iterations = 60;
  GlobalPlacer placer(d, opts);
  placer.run();
  GlobalRouterConfig rc;
  rc.grid.nx = 16;
  rc.grid.ny = 16;
  const PlacementEvaluation eval = evaluate_placement(d, rc);
  EXPECT_EQ(eval.legality_violations, 0u);
  EXPECT_GT(eval.routed_wirelength, 0.0);
  EXPECT_TRUE(std::isfinite(eval.wcs_h));
  EXPECT_TRUE(std::isfinite(eval.wcs_v));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DesignFamily,
    ::testing::Values(DesignParams{150, 0, 0.0, 0.6, 1}, DesignParams{150, 2, 0.15, 0.7, 2},
                      DesignParams{400, 4, 0.25, 0.8, 3}, DesignParams{400, 1, 0.05, 0.65, 4},
                      DesignParams{800, 6, 0.3, 0.75, 5}, DesignParams{250, 3, 0.2, 0.85, 6}));

// --- metric properties over random map pairs ----------------------------

class MetricPairs : public ::testing::TestWithParam<unsigned> {};

TEST_P(MetricPairs, MetricAxioms) {
  Rng rng(GetParam());
  GridMap truth(12, 12, Rect{0, 0, 1, 1});
  GridMap pred(12, 12, Rect{0, 0, 1, 1});
  for (std::size_t i = 0; i < truth.size(); ++i) {
    truth[i] = rng.uniform(0.0, 2.0);
    pred[i] = rng.uniform(0.0, 2.0);
  }
  // NRMS: non-negative, zero iff identical.
  EXPECT_GE(nrms(pred, truth), 0.0);
  EXPECT_DOUBLE_EQ(nrms(truth, truth), 0.0);
  // SSIM: bounded by 1, symmetric in its two arguments.
  EXPECT_LE(ssim(pred, truth), 1.0 + 1e-9);
  EXPECT_NEAR(ssim(pred, truth), ssim(truth, pred), 1e-12);
  // KL: non-negative (Gibbs), zero on identical distributions.
  EXPECT_GE(kl_divergence(pred, truth), -1e-12);
  EXPECT_NEAR(kl_divergence(pred, pred), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPairs, ::testing::Values(11u, 22u, 33u, 44u, 55u));

// --- wirelength property: WA upper-bounds smoothness --------------------

class WirelengthGamma : public ::testing::TestWithParam<double> {};

TEST_P(WirelengthGamma, GradientMatchesFiniteDifferenceAcrossGamma) {
  GeneratorConfig cfg;
  cfg.num_cells = 40;
  cfg.seed = 12;
  Design d = generate_design(cfg);
  WirelengthModel model(GetParam());
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  model.evaluate_with_grad(d, gx, gy);
  const double eps = 1e-6;
  // Probe a handful of movable cells.
  for (std::size_t i = 0; i < d.movable_cells().size(); i += 13) {
    const CellId cid = d.movable_cells()[i];
    Cell& cell = d.cell(cid);
    const double saved = cell.y;
    cell.y = saved + eps;
    const double up = model.evaluate(d);
    cell.y = saved - eps;
    const double down = model.evaluate(d);
    cell.y = saved;
    EXPECT_NEAR((up - down) / (2 * eps), gy[static_cast<std::size_t>(cid)],
                1e-4 * std::max(1.0, std::abs(gy[static_cast<std::size_t>(cid)])));
  }
}

INSTANTIATE_TEST_SUITE_P(Gammas, WirelengthGamma, ::testing::Values(0.1, 0.5, 2.0, 8.0));

}  // namespace
}  // namespace laco
