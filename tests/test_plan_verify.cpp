// Tests for the plan IR verifier (src/plan/verifier.hpp): every plan
// the compiler produces for randomized model configs must verify
// clean, hand-corrupted plans (via PlanSurgeon) must be rejected per
// corruption class, and the post-compile hook must record
// plan.verify.* metrics and respect set_verify_enabled().
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "models/congestion_fcn.hpp"
#include "nn/layers.hpp"
#include "nn/ops.hpp"
#include "obs/metrics.hpp"
#include "plan/plan.hpp"
#include "plan/verifier.hpp"

namespace laco {
namespace {

nn::Tensor random_input(const nn::Shape& shape, unsigned seed) {
  nn::Tensor t = nn::Tensor::zeros(shape);
  unsigned state = seed * 2654435761u + 1u;
  for (float& v : t.data()) {
    state = state * 1664525u + 1013904223u;
    v = static_cast<float>(state >> 8) / static_cast<float>(1u << 24);
  }
  return t;
}

std::shared_ptr<CongestionFcn> tiny_fcn(int in_channels, int base_width, unsigned seed) {
  CongestionFcnConfig fc;
  fc.in_channels = in_channels;
  fc.base_width = base_width;
  nn::reset_init_seed(seed);
  auto fcn = std::make_shared<CongestionFcn>(fc);
  for (nn::Tensor p : fcn->parameters()) p.set_requires_grad(false);
  return fcn;
}

plan::CompileResult compile_fcn(const std::shared_ptr<CongestionFcn>& fcn,
                                const nn::Shape& shape, unsigned seed) {
  return plan::compile(
      [&](const std::vector<nn::Tensor>& in) { return fcn->forward(in[0]); },
      {random_input(shape, seed)});
}

bool has_check(const plan::VerifyReport& report, const std::string& id) {
  for (const plan::VerifyIssue& issue : report.issues) {
    if (issue.check == id) return true;
  }
  return false;
}

/// A verified-good compiled plan with at least two nodes and a
/// non-trivial arena, used as the corruption substrate.
plan::Plan good_plan() {
  const auto fcn = tiny_fcn(3, 4, 911);
  const plan::CompileResult res = compile_fcn(fcn, {1, 3, 8, 8}, 7);
  EXPECT_TRUE(res.plan != nullptr) << res.error;
  EXPECT_TRUE(plan::verify(*res.plan).ok());
  return plan::PlanSurgeon::copy(*res.plan);
}

// ----------------------------------------------------------- acceptance

TEST(PlanVerify, AcceptsEveryRandomizedCompiledPlan) {
  unsigned seed = 100;
  for (const int in_channels : {1, 3, 5}) {
    for (const int base_width : {4, 8}) {
      const auto fcn = tiny_fcn(in_channels, base_width, ++seed);
      for (const int grid : {4, 8}) {
        for (const int batch : {1, 2}) {
          const plan::CompileResult res =
              compile_fcn(fcn, {batch, in_channels, grid, grid}, ++seed);
          ASSERT_TRUE(res.plan != nullptr) << res.error;
          const plan::VerifyReport report = plan::verify(*res.plan);
          EXPECT_TRUE(report.ok()) << report.str();
          EXPECT_GT(report.checks_run, 0);
        }
      }
    }
  }
}

TEST(PlanVerify, AcceptsPassthroughPlan) {
  const nn::Tensor x = random_input({2, 3, 4, 4}, 5);
  const plan::CompileResult res =
      plan::compile([](const std::vector<nn::Tensor>& in) { return in[0]; }, {x});
  ASSERT_TRUE(res.plan != nullptr) << res.error;
  EXPECT_EQ(res.plan->num_nodes(), 0u);
  const plan::VerifyReport report = plan::verify(*res.plan);
  EXPECT_TRUE(report.ok()) << report.str();

  // Flipping the passthrough flag leaves a plan with zero output
  // writers — the verifier must notice.
  plan::Plan corrupt = plan::PlanSurgeon::copy(*res.plan);
  plan::PlanSurgeon::passthrough(corrupt) = false;
  const plan::VerifyReport bad = plan::verify(corrupt);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(has_check(bad, "output-alias")) << bad.str();
}

// ---------------------------------------------------- corruption classes

TEST(PlanVerify, RejectsShuffledNodeOrder) {
  plan::Plan p = good_plan();
  auto& nodes = plan::PlanSurgeon::nodes(p);
  ASSERT_GE(nodes.size(), 2u);
  std::swap(nodes[0], nodes[1]);
  const plan::VerifyReport report = plan::verify(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_check(report, "topo-order") || has_check(report, "liveness"))
      << report.str();
}

TEST(PlanVerify, RejectsTruncatedArena) {
  plan::Plan p = good_plan();
  ASSERT_GT(plan::PlanSurgeon::arena_floats(p), 1u);
  plan::PlanSurgeon::arena_floats(p) /= 2;
  const plan::VerifyReport report = plan::verify(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_check(report, "arena-bounds")) << report.str();
}

TEST(PlanVerify, RejectsAliasedLiveSpans) {
  plan::Plan p = good_plan();
  auto& spans = plan::PlanSurgeon::spans(p);
  // Find two spans whose lifetimes overlap and force them onto the
  // same offset; the pairwise non-aliasing check must fire.
  std::size_t a = spans.size();
  std::size_t b = spans.size();
  for (std::size_t i = 0; i < spans.size() && a == spans.size(); ++i) {
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      if (spans[i].def <= spans[j].last_use && spans[j].def <= spans[i].last_use &&
          spans[i].offset != spans[j].offset) {
        a = i;
        b = j;
        break;
      }
    }
  }
  ASSERT_LT(a, spans.size()) << "fixture plan has no temporally-overlapping spans";
  spans[b].offset = spans[a].offset;
  const plan::VerifyReport report = plan::verify(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_check(report, "arena-overlap")) << report.str();
}

TEST(PlanVerify, RejectsMissingKernel) {
  plan::Plan p = good_plan();
  auto& nodes = plan::PlanSurgeon::nodes(p);
  ASSERT_FALSE(nodes.empty());
  nodes.front().kernel = nullptr;
  const plan::VerifyReport report = plan::verify(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_check(report, "kernel")) << report.str();
}

TEST(PlanVerify, RejectsOutputShapeMismatch) {
  plan::Plan p = good_plan();
  plan::PlanSurgeon::output_numel(p) += 1;
  const plan::VerifyReport report = plan::verify(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_check(report, "output-shape")) << report.str();
}

TEST(PlanVerify, RejectsDanglingConstantPointer) {
  plan::Plan p = good_plan();
  auto& ptrs = plan::PlanSurgeon::constant_ptrs(p);
  ASSERT_FALSE(ptrs.empty());
  ptrs.front() = nullptr;
  const plan::VerifyReport report = plan::verify(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_check(report, "constant-table")) << report.str();
}

// ------------------------------------------------- compile hook + metrics

std::uint64_t verify_runs() {
  return obs::MetricRegistry::global().snapshot().counters["plan.verify.runs"];
}

TEST(PlanVerify, CompileHookRunsOnlyWhenEnabled) {
  const bool was_enabled = plan::verify_enabled();
  const auto fcn = tiny_fcn(3, 4, 77);

  plan::set_verify_enabled(false);
  const std::uint64_t before_disabled = verify_runs();
  ASSERT_TRUE(compile_fcn(fcn, {1, 3, 4, 4}, 1).plan != nullptr);
  EXPECT_EQ(verify_runs(), before_disabled);

  plan::set_verify_enabled(true);
  const std::uint64_t before_enabled = verify_runs();
  ASSERT_TRUE(compile_fcn(fcn, {1, 3, 4, 4}, 2).plan != nullptr);
  EXPECT_EQ(verify_runs(), before_enabled + 1);

  plan::set_verify_enabled(was_enabled);
}

}  // namespace
}  // namespace laco
