#include <gtest/gtest.h>

#include "gridmap/grid_map.hpp"

namespace laco {
namespace {

TEST(GridMap, ConstructionAndIndexing) {
  GridMap m(4, 3, Rect{0, 0, 8, 6}, 1.5);
  EXPECT_EQ(m.nx(), 4);
  EXPECT_EQ(m.ny(), 3);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_DOUBLE_EQ(m.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(m.bin_height(), 2.0);
  EXPECT_DOUBLE_EQ(m.at(3, 2), 1.5);
  EXPECT_THROW(GridMap(0, 3), std::invalid_argument);
  EXPECT_THROW(GridMap(4, 3, Rect{0, 0, 0, 6}), std::invalid_argument);
}

TEST(GridMap, BinOfClampsToGrid) {
  GridMap m(4, 4, Rect{0, 0, 4, 4});
  EXPECT_EQ(m.bin_of({0.5, 0.5}), (GridIndex{0, 0}));
  EXPECT_EQ(m.bin_of({3.9, 3.9}), (GridIndex{3, 3}));
  EXPECT_EQ(m.bin_of({-1.0, 10.0}), (GridIndex{0, 3}));
}

TEST(GridMap, BinRect) {
  GridMap m(4, 4, Rect{0, 0, 4, 4});
  EXPECT_EQ(m.bin_rect(1, 2), (Rect{1, 2, 2, 3}));
}

TEST(GridMap, AddRectConservesIntegralInDensityMode) {
  GridMap m(8, 8, Rect{0, 0, 8, 8});
  m.add_rect(Rect{1.3, 2.7, 4.1, 5.2}, 10.0, /*density_mode=*/true);
  EXPECT_NEAR(m.sum(), 10.0, 1e-9);
}

TEST(GridMap, AddRectAreaWeightedValue) {
  GridMap m(2, 1, Rect{0, 0, 2, 1});
  // Rect covering left bin fully and half of the right one with value 1:
  // the left bin averages 1.0, the right 0.5.
  m.add_rect(Rect{0, 0, 1.5, 1}, 1.0, /*density_mode=*/false);
  EXPECT_NEAR(m.at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(m.at(1, 0), 0.5, 1e-12);
}

TEST(GridMap, DegenerateRectHitsCenterBin) {
  GridMap m(4, 4, Rect{0, 0, 4, 4});
  m.add_rect(Rect{2.5, 2.5, 2.5, 2.5}, 3.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.sum(), 3.0);
}

TEST(GridMap, BilinearSamplingAtCentersIsExact) {
  GridMap m(4, 4, Rect{0, 0, 4, 4});
  m.at(1, 2) = 7.0;
  // Bin (1,2) center: (1.5, 2.5).
  EXPECT_NEAR(m.sample_bilinear({1.5, 2.5}), 7.0, 1e-12);
}

TEST(GridMap, BilinearInterpolatesBetweenCenters) {
  GridMap m(2, 1, Rect{0, 0, 2, 1});
  m.at(0, 0) = 0.0;
  m.at(1, 0) = 10.0;
  // Midpoint between centers (0.5, .5) and (1.5, .5).
  EXPECT_NEAR(m.sample_bilinear({1.0, 0.5}), 5.0, 1e-12);
}

TEST(GridMap, Statistics) {
  GridMap m(2, 2, Rect{0, 0, 1, 1});
  m.at(0, 0) = 1;
  m.at(1, 0) = 2;
  m.at(0, 1) = 3;
  m.at(1, 1) = 4;
  EXPECT_DOUBLE_EQ(m.min(), 1);
  EXPECT_DOUBLE_EQ(m.max(), 4);
  EXPECT_DOUBLE_EQ(m.sum(), 10);
  EXPECT_DOUBLE_EQ(m.mean(), 2.5);
}

TEST(GridMap, ArithmeticOperators) {
  GridMap a(2, 1, Rect{0, 0, 1, 1});
  GridMap b(2, 1, Rect{0, 0, 1, 1});
  a.at(0, 0) = 1;
  a.at(1, 0) = 2;
  b.at(0, 0) = 10;
  b.at(1, 0) = 20;
  a += b;
  EXPECT_DOUBLE_EQ(a.at(1, 0), 22);
  a -= b;
  EXPECT_DOUBLE_EQ(a.at(1, 0), 2);
  a *= 3.0;
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3);
  GridMap c(3, 1, Rect{0, 0, 1, 1});
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(GridMap, ResampleDownPreservesMean) {
  GridMap m(8, 8, Rect{0, 0, 8, 8});
  for (int l = 0; l < 8; ++l) {
    for (int k = 0; k < 8; ++k) m.at(k, l) = k + 10.0 * l;
  }
  const GridMap down = m.resampled(4, 4);
  EXPECT_NEAR(down.mean(), m.mean(), 1e-9);
  // Top-left output bin averages the 2x2 input block {0,1,10,11}.
  EXPECT_NEAR(down.at(0, 0), (0 + 1 + 10 + 11) / 4.0, 1e-9);
}

TEST(GridMap, ResampleUpPreservesMean) {
  GridMap m(2, 2, Rect{0, 0, 2, 2});
  m.at(0, 0) = 4.0;
  const GridMap up = m.resampled(8, 8);
  EXPECT_NEAR(up.mean(), m.mean(), 1e-9);
  EXPECT_NEAR(up.at(0, 0), 4.0, 1e-9);
  EXPECT_NEAR(up.at(7, 7), 0.0, 1e-9);
}

TEST(GridMap, L1Distance) {
  GridMap a(2, 1, Rect{0, 0, 1, 1});
  GridMap b(2, 1, Rect{0, 0, 1, 1});
  a.at(0, 0) = 1;
  b.at(1, 0) = 2;
  EXPECT_DOUBLE_EQ(GridMap::l1_distance(a, b), 3.0);
}

TEST(GridMapDeathTest, OutOfRangeIndexAbortsInAllBuildTypes) {
  // LACO_CHECK (not assert): a bad bin index must abort in Release
  // instead of silently corrupting congestion maps.
  GridMap m(4, 3, Rect{0, 0, 8, 6});
  EXPECT_DEATH(m.at(4, 0), "LACO_CHECK failed");
  EXPECT_DEATH(m.at(0, 3), "LACO_CHECK failed");
  EXPECT_DEATH(m.at(-1, 0), "LACO_CHECK failed");
}

}  // namespace
}  // namespace laco
