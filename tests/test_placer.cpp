#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "util/rng.hpp"
#include "placer/density.hpp"
#include "placer/global_placer.hpp"
#include "placer/nesterov.hpp"
#include "placer/wirelength.hpp"

namespace laco {
namespace {

Design two_pin_design(Point a, Point b) {
  Design d("t", Rect{0, 0, 16, 16}, 1.0);
  for (const Point p : {a, b}) {
    Cell c;
    c.width = 1.0;
    c.height = 1.0;
    c.x = p.x - 0.5;
    c.y = p.y - 0.5;
    d.add_cell(c);
  }
  const NetId n = d.add_net("n");
  d.add_pin(0, n, 0.5, 0.5);
  d.add_pin(1, n, 0.5, 0.5);
  return d;
}

TEST(Wirelength, ApproachesHpwlAsGammaShrinks) {
  const Design d = two_pin_design({2, 3}, {10, 9});
  const double hpwl = d.hpwl();
  WirelengthModel coarse(4.0), fine(0.05);
  EXPECT_NEAR(fine.evaluate(d), hpwl, 0.05 * hpwl);
  // Coarser gamma is a smooth upper-biased surrogate but still close.
  EXPECT_NEAR(coarse.evaluate(d), hpwl, 0.6 * hpwl);
}

TEST(Wirelength, GradientMatchesFiniteDifference) {
  Design d = two_pin_design({2.3, 3.1}, {10.2, 9.4});
  WirelengthModel model(1.0);
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  model.evaluate_with_grad(d, gx, gy);
  const double eps = 1e-6;
  for (const CellId cid : d.movable_cells()) {
    Cell& cell = d.cell(cid);
    const double saved = cell.x;
    cell.x = saved + eps;
    const double up = model.evaluate(d);
    cell.x = saved - eps;
    const double down = model.evaluate(d);
    cell.x = saved;
    EXPECT_NEAR((up - down) / (2 * eps), gx[static_cast<std::size_t>(cid)], 1e-5);
  }
}

TEST(Wirelength, GradientPullsPinsTogether) {
  Design d = two_pin_design({2, 8}, {14, 8});
  WirelengthModel model(0.5);
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  model.evaluate_with_grad(d, gx, gy);
  // Descending means the left cell moves +x, the right cell −x.
  EXPECT_LT(gx[0], 0.0);
  EXPECT_GT(gx[1], 0.0);
}

TEST(Wirelength, FixedCellsGetNoGradient) {
  Design d = two_pin_design({2, 8}, {14, 8});
  d.cell(1).fixed = true;
  WirelengthModel model(0.5);
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  model.evaluate_with_grad(d, gx, gy);
  EXPECT_DOUBLE_EQ(gx[1], 0.0);
}

TEST(Wirelength, WeightScalesContribution) {
  Design d = two_pin_design({2, 8}, {14, 8});
  WirelengthModel model(0.5);
  const double base = model.evaluate(d);
  d.net(0).weight = 2.5;
  EXPECT_NEAR(model.evaluate(d), 2.5 * base, 1e-9);
}

TEST(Density, OverflowHighWhenClumpedLowWhenSpread) {
  GeneratorConfig cfg;
  cfg.num_cells = 300;
  cfg.num_macros = 0;
  cfg.macro_area_fraction = 0.0;
  Design d = generate_design(cfg);
  DensityModel density(d, 16, 16);

  // Clump everything at the center.
  std::vector<double> x(d.num_movable(), d.core().center().x);
  std::vector<double> y(d.num_movable(), d.core().center().y);
  d.set_movable_positions(x, y);
  density.update(d);
  const double clumped = density.overflow(d);

  // Spread uniformly on a grid.
  const int side = static_cast<int>(std::ceil(std::sqrt(d.num_movable())));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = d.core().xl + (0.5 + static_cast<double>(i % side)) * d.core().width() / side;
    y[i] = d.core().yl +
           (0.5 + static_cast<double>(i / static_cast<std::size_t>(side))) *
               d.core().height() / side;
  }
  d.set_movable_positions(x, y);
  density.update(d);
  const double spread = density.overflow(d);

  EXPECT_GT(clumped, 0.5);
  EXPECT_LT(spread, 0.25);
  EXPECT_LT(spread, clumped);
}

TEST(Density, GradientPushesOutOfClump) {
  GeneratorConfig cfg;
  cfg.num_cells = 200;
  cfg.num_macros = 0;
  cfg.macro_area_fraction = 0.0;
  Design d = generate_design(cfg);
  // Clump at center, then pick the leftmost cell of the clump: its x
  // gradient should push it further left (descent = -grad).
  std::vector<double> x(d.num_movable()), y(d.num_movable());
  const Point c = d.core().center();
  Rng rng(4);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = c.x + rng.normal(0.0, 0.4);
    y[i] = c.y + rng.normal(0.0, 0.4);
  }
  d.set_movable_positions(x, y);
  DensityModel density(d, 16, 16);
  density.update(d);
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  density.add_gradient(d, 1.0, gx, gy);
  // Find extreme cells in the clump.
  CellId leftmost = d.movable_cells()[0];
  CellId rightmost = leftmost;
  for (const CellId cid : d.movable_cells()) {
    if (d.cell(cid).center().x < d.cell(leftmost).center().x) leftmost = cid;
    if (d.cell(cid).center().x > d.cell(rightmost).center().x) rightmost = cid;
  }
  // Gradient descent moves cells along −grad: leftmost should move left
  // (positive gradient) and rightmost right (negative gradient).
  EXPECT_GT(gx[static_cast<std::size_t>(leftmost)], 0.0);
  EXPECT_LT(gx[static_cast<std::size_t>(rightmost)], 0.0);
}

TEST(Nesterov, ConvergesOnQuadratic) {
  // f(p) = 0.5 |p - t|², grad = p - t.
  std::vector<double> x{0.0}, y{0.0};
  NesterovOptimizer opt(x, y, 0.5);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> gx{opt.vx()[0] - 3.0};
    std::vector<double> gy{opt.vy()[0] + 2.0};
    opt.step(gx, gy);
  }
  EXPECT_NEAR(opt.vx()[0], 3.0, 1e-3);
  EXPECT_NEAR(opt.vy()[0], -2.0, 1e-3);
}

TEST(Nesterov, RejectsMismatchedSizes) {
  NesterovOptimizer opt({0.0}, {0.0}, 1.0);
  EXPECT_THROW(opt.step({1.0, 2.0}, {1.0}), std::invalid_argument);
}

TEST(GlobalPlacer, ReducesOverflowBelowTarget) {
  GeneratorConfig cfg;
  cfg.num_cells = 400;
  cfg.seed = 5;
  Design d = generate_design(cfg);
  GlobalPlacerOptions opts;
  opts.bin_nx = 16;
  opts.bin_ny = 16;
  opts.max_iterations = 300;
  opts.min_iterations = 30;
  opts.target_overflow = 0.12;
  GlobalPlacer placer(d, opts);
  const PlacementResult result = placer.run();
  EXPECT_TRUE(result.converged) << "final overflow " << result.final_overflow;
  EXPECT_LT(result.final_overflow, 0.15);
  ASSERT_FALSE(result.history.empty());
  // Overflow trends down: last < first.
  EXPECT_LT(result.final_overflow, result.history.front().overflow);
}

TEST(GlobalPlacer, ObserverSeesEveryIteration) {
  GeneratorConfig cfg;
  cfg.num_cells = 100;
  Design d = generate_design(cfg);
  GlobalPlacerOptions opts;
  opts.bin_nx = 8;
  opts.bin_ny = 8;
  opts.max_iterations = 40;
  opts.min_iterations = 40;
  opts.target_overflow = 0.0;  // never converges early
  GlobalPlacer placer(d, opts);
  int calls = 0;
  placer.set_observer([&](const Design&, const IterationStats& stats) {
    EXPECT_EQ(stats.iteration, calls);
    ++calls;
  });
  placer.run();
  EXPECT_EQ(calls, 40);
}

TEST(GlobalPlacer, PenaltyHookIsInvokedAndReported) {
  GeneratorConfig cfg;
  cfg.num_cells = 100;
  Design d = generate_design(cfg);
  GlobalPlacerOptions opts;
  opts.bin_nx = 8;
  opts.bin_ny = 8;
  opts.max_iterations = 10;
  opts.min_iterations = 10;
  opts.target_overflow = 0.0;
  GlobalPlacer placer(d, opts);
  int penalty_calls = 0;
  placer.set_penalty_hook([&](const Design&, int, std::vector<double>&, std::vector<double>&) {
    ++penalty_calls;
    return 0.5;
  });
  const PlacementResult result = placer.run();
  EXPECT_EQ(penalty_calls, 10);
  EXPECT_DOUBLE_EQ(result.history.back().penalty, 0.5);
}

TEST(GlobalPlacer, DeterministicForFixedSeed) {
  GeneratorConfig cfg;
  cfg.num_cells = 120;
  const auto run_once = [&]() {
    Design d = generate_design(cfg);
    GlobalPlacerOptions opts;
    opts.bin_nx = 8;
    opts.bin_ny = 8;
    opts.max_iterations = 50;
    opts.min_iterations = 50;
    opts.target_overflow = 0.0;
    GlobalPlacer placer(d, opts);
    placer.run();
    return d.hpwl();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(GlobalPlacer, HpwlImprovesOverCenteredInit) {
  GeneratorConfig cfg;
  cfg.num_cells = 300;
  cfg.seed = 9;
  Design d = generate_design(cfg);
  GlobalPlacerOptions opts;
  opts.bin_nx = 16;
  opts.bin_ny = 16;
  opts.max_iterations = 250;
  opts.min_iterations = 30;
  GlobalPlacer placer(d, opts);
  const PlacementResult result = placer.run();
  // Wirelength should not blow up: final HPWL below a random-uniform
  // placement's expectation (~0.33·(W+H) per net).
  double random_hpwl = 0.0;
  for (const Net& n : d.nets()) {
    if (n.degree() >= 2) random_hpwl += 0.33 * (d.core().width() + d.core().height());
  }
  EXPECT_LT(result.final_hpwl, random_hpwl);
}

}  // namespace
}  // namespace laco
