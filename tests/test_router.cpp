#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "router/congestion_eval.hpp"
#include "router/global_router.hpp"
#include "router/maze_route.hpp"
#include "router/net_decomposition.hpp"
#include "router/pattern_route.hpp"

namespace laco {
namespace {

Design empty_design(int n = 16) {
  Design d("r", Rect{0, 0, static_cast<double>(n), static_cast<double>(n)}, 1.0);
  Cell c;
  c.width = 1;
  c.height = 1;
  d.add_cell(c);  // grid graph construction needs a design, not its cells
  return d;
}

GridGraph make_grid(const Design& d, int n = 16) {
  GridGraphConfig cfg;
  cfg.nx = n;
  cfg.ny = n;
  return GridGraph(d, cfg);
}

TEST(GridGraph, CapacityUniformWithoutMacros) {
  const Design d = empty_design();
  const GridGraph g = make_grid(d);
  const double cap = g.h_capacity(0, 0);
  EXPECT_GT(cap, 0.0);
  for (int l = 0; l < g.ny(); ++l) {
    for (int k = 0; k + 1 < g.nx(); ++k) EXPECT_DOUBLE_EQ(g.h_capacity(k, l), cap);
  }
}

TEST(GridGraph, MacroDeratesCapacity) {
  Design d = empty_design();
  Cell macro;
  macro.kind = CellKind::kMacro;
  macro.fixed = true;
  macro.width = 6;
  macro.height = 6;
  macro.x = 4;
  macro.y = 4;
  d.add_cell(macro);
  const GridGraph g = make_grid(d);
  EXPECT_LT(g.h_capacity(6, 6), g.h_capacity(0, 0));
  EXPECT_LT(g.v_capacity(6, 6), g.v_capacity(0, 0));
}

TEST(GridGraph, UsageAndOverflowBookkeeping) {
  const Design d = empty_design();
  GridGraph g = make_grid(d);
  const double cap = g.h_capacity(3, 3);
  g.add_h_usage(3, 3, cap + 2.0);
  EXPECT_DOUBLE_EQ(g.total_h_overflow(), 2.0);
  EXPECT_NEAR(g.wcs_h(), 2.0 / cap, 1e-12);
  EXPECT_DOUBLE_EQ(g.total_v_overflow(), 0.0);
  g.clear_usage();
  EXPECT_DOUBLE_EQ(g.total_h_overflow(), 0.0);
}

TEST(GridGraph, CongestionMapReflectsUtilization) {
  const Design d = empty_design();
  GridGraph g = make_grid(d);
  g.add_h_usage(5, 5, g.h_capacity(5, 5));  // fully used edge
  const GridMap m = g.congestion_map();
  EXPECT_NEAR(m.at(5, 5), 1.0, 1e-12);
  EXPECT_NEAR(m.at(6, 5), 1.0, 1e-12);  // shares the edge
  EXPECT_NEAR(m.at(10, 10), 0.0, 1e-12);
}

TEST(NetDecomposition, MstHasNMinusOneEdges) {
  Design d("t", Rect{0, 0, 16, 16}, 1.0);
  std::vector<CellId> cells;
  const double px[4] = {1, 14, 1, 14};
  const double py[4] = {1, 1, 14, 14};
  const NetId n = d.add_net("n");
  for (int i = 0; i < 4; ++i) {
    Cell c;
    c.width = 1;
    c.height = 1;
    c.x = px[i];
    c.y = py[i];
    const CellId cid = d.add_cell(c);
    d.add_pin(cid, n, 0.5, 0.5);
  }
  const GridGraph g = make_grid(d);
  const auto segs = decompose_net(d, d.net(0), g);
  EXPECT_EQ(segs.size(), 3u);
}

TEST(NetDecomposition, SameGcellPinsCollapse) {
  Design d("t", Rect{0, 0, 16, 16}, 1.0);
  const NetId n = d.add_net("n");
  for (int i = 0; i < 3; ++i) {
    Cell c;
    c.width = 0.2;
    c.height = 0.2;
    c.x = 5.0 + 0.2 * i;
    c.y = 5.0;
    const CellId cid = d.add_cell(c);
    d.add_pin(cid, n, 0.1, 0.1);
  }
  const GridGraph g = make_grid(d);
  EXPECT_TRUE(decompose_net(d, d.net(0), g).empty());
}

TEST(PatternRoute, LRouteLengthIsManhattan) {
  const Design d = empty_design();
  const GridGraph g = make_grid(d);
  const RoutePath path = best_l_route(g, {2, 3}, {7, 9});
  EXPECT_EQ(path.gcells.size(), 1u + 5 + 6);
  EXPECT_EQ(path.gcells.front(), (GridIndex{2, 3}));
  EXPECT_EQ(path.gcells.back(), (GridIndex{7, 9}));
  // Unit steps only.
  for (std::size_t i = 1; i < path.gcells.size(); ++i) {
    const int dk = std::abs(path.gcells[i].k - path.gcells[i - 1].k);
    const int dl = std::abs(path.gcells[i].l - path.gcells[i - 1].l);
    EXPECT_EQ(dk + dl, 1);
  }
}

TEST(PatternRoute, ZRouteAvoidsCongestedColumn) {
  const Design d = empty_design();
  GridGraph g = make_grid(d);
  // Saturate the vertical edges of the direct L corners so a middle
  // column Z route becomes cheaper.
  for (int l = 0; l < 15; ++l) {
    g.add_v_usage(2, l, 100.0);
    g.add_v_usage(12, l, 100.0);
  }
  const RoutePath z = best_z_route(g, {2, 2}, {12, 12}, 16);
  // The route should jog through an interior column, not k=2 or k=12.
  bool uses_interior_vertical = false;
  for (std::size_t i = 1; i < z.gcells.size(); ++i) {
    if (z.gcells[i].k == z.gcells[i - 1].k && z.gcells[i].k != 2 && z.gcells[i].k != 12 &&
        z.gcells[i].l != z.gcells[i - 1].l) {
      uses_interior_vertical = true;
    }
  }
  EXPECT_TRUE(uses_interior_vertical);
}

TEST(PatternRoute, CommitAndUncommitConserveUsage) {
  const Design d = empty_design();
  GridGraph g = make_grid(d);
  const RoutePath path = best_l_route(g, {1, 1}, {10, 8});
  commit_path(g, path, 1.0);
  double used = 0.0;
  for (int l = 0; l < g.ny(); ++l) {
    for (int k = 0; k + 1 < g.nx(); ++k) used += g.h_usage(k, l);
  }
  for (int l = 0; l + 1 < g.ny(); ++l) {
    for (int k = 0; k < g.nx(); ++k) used += g.v_usage(k, l);
  }
  EXPECT_DOUBLE_EQ(used, 9 + 7);  // manhattan length in edges
  commit_path(g, path, -1.0);
  EXPECT_DOUBLE_EQ(g.total_h_overflow() + g.total_v_overflow(), 0.0);
  double residual = 0.0;
  for (int l = 0; l < g.ny(); ++l) {
    for (int k = 0; k + 1 < g.nx(); ++k) residual += std::abs(g.h_usage(k, l));
  }
  EXPECT_DOUBLE_EQ(residual, 0.0);
}

TEST(MazeRoute, FindsShortestPathInFreeGrid) {
  const Design d = empty_design();
  const GridGraph g = make_grid(d);
  const RoutePath path = maze_route(g, {1, 1}, {9, 5}, 4);
  EXPECT_EQ(path.gcells.size(), 1u + 8 + 4);
  EXPECT_EQ(path.gcells.front(), (GridIndex{1, 1}));
  EXPECT_EQ(path.gcells.back(), (GridIndex{9, 5}));
}

TEST(MazeRoute, DetoursAroundCongestion) {
  const Design d = empty_design();
  GridGraph g = make_grid(d);
  // Build a congested vertical wall at k=8 spanning most rows.
  for (int l = 0; l < 14; ++l) {
    g.add_h_usage(7, l, 1000.0);  // edges crossing from k=7 to k=8
  }
  const RoutePath path = maze_route(g, {2, 2}, {14, 2}, 14);
  // It must cross k=7→8 somewhere; with rows 0..13 blocked it should
  // cross at l >= 14 (the free gap).
  bool crossed_high = false;
  for (std::size_t i = 1; i < path.gcells.size(); ++i) {
    if (path.gcells[i - 1].k == 7 && path.gcells[i].k == 8) {
      crossed_high = path.gcells[i].l >= 14;
    }
  }
  EXPECT_TRUE(crossed_high);
}

TEST(MazeRoute, TrivialSameCell) {
  const Design d = empty_design();
  const GridGraph g = make_grid(d);
  const RoutePath path = maze_route(g, {3, 3}, {3, 3});
  EXPECT_EQ(path.gcells.size(), 1u);
}

TEST(GlobalRouter, RoutesGeneratedDesign) {
  GeneratorConfig cfg;
  cfg.num_cells = 300;
  cfg.seed = 8;
  Design d = generate_design(cfg);
  GlobalRouterConfig rc;
  rc.grid.nx = 24;
  rc.grid.ny = 24;
  const RoutingResult result = route_design(d, rc);
  EXPECT_GT(result.segments, 0u);
  EXPECT_GT(result.routed_wirelength, 0.0);
  EXPECT_EQ(result.congestion.nx(), 24);
  EXPECT_GE(result.wcs_h, 0.0);
  EXPECT_GE(result.wcs_v, 0.0);
}

TEST(GlobalRouter, Deterministic) {
  GeneratorConfig cfg;
  cfg.num_cells = 200;
  Design d = generate_design(cfg);
  GlobalRouterConfig rc;
  rc.grid.nx = 16;
  rc.grid.ny = 16;
  const RoutingResult a = route_design(d, rc);
  const RoutingResult b = route_design(d, rc);
  EXPECT_DOUBLE_EQ(a.routed_wirelength, b.routed_wirelength);
  EXPECT_DOUBLE_EQ(a.wcs_h, b.wcs_h);
}

TEST(GlobalRouter, RoutedWirelengthAtLeastHpwlScale) {
  // Routed WL over gcell steps must be at least the sum of segment
  // manhattan distances — sanity against silently dropped segments.
  GeneratorConfig cfg;
  cfg.num_cells = 150;
  Design d = generate_design(cfg);
  GlobalRouterConfig rc;
  rc.grid.nx = 16;
  rc.grid.ny = 16;
  GlobalRouter router(d, rc);
  const RoutingResult result = router.route();
  double min_wl = 0.0;
  for (const Net& net : d.nets()) {
    if (net.degree() < 2) continue;
    for (const auto& seg : decompose_net(d, net, router.grid())) {
      min_wl += std::abs(seg.a.k - seg.b.k) * router.grid().gcell_w() +
                std::abs(seg.a.l - seg.b.l) * router.grid().gcell_h();
    }
  }
  EXPECT_GE(result.routed_wirelength, min_wl - 1e-6);
}

TEST(GlobalRouter, SpreadPlacementRoutesBetterThanClumped) {
  GeneratorConfig cfg;
  cfg.num_cells = 400;
  cfg.seed = 12;
  Design d = generate_design(cfg);
  GlobalRouterConfig rc;
  rc.grid.nx = 24;
  rc.grid.ny = 24;

  // Clumped: everything at the center.
  std::vector<double> x(d.num_movable(), d.core().center().x);
  std::vector<double> y(d.num_movable(), d.core().center().y);
  d.set_movable_positions(x, y);
  const RoutingResult clumped = route_design(d, rc);

  // Spread: golden (cluster) positions from the generator are reasonable.
  Design fresh = generate_design(cfg);
  const RoutingResult spread = route_design(fresh, rc);

  EXPECT_LT(spread.total_overflow_h + spread.total_overflow_v,
            clumped.total_overflow_h + clumped.total_overflow_v);
}

TEST(CongestionEval, FullFlowProducesLegalRoutedPlacement) {
  GeneratorConfig cfg;
  cfg.num_cells = 200;
  Design d = generate_design(cfg);
  GlobalRouterConfig rc;
  rc.grid.nx = 16;
  rc.grid.ny = 16;
  const PlacementEvaluation eval = evaluate_placement(d, rc);
  EXPECT_EQ(eval.legality_violations, 0u);
  EXPECT_GT(eval.hpwl, 0.0);
  EXPECT_GT(eval.routed_wirelength, 0.0);
}

}  // namespace
}  // namespace laco
