#include <gtest/gtest.h>

#include <cmath>

#include "metrics/kl_divergence.hpp"
#include "util/rng.hpp"
#include "metrics/nrms.hpp"
#include "metrics/ssim.hpp"
#include "netlist/generator.hpp"

namespace laco {
namespace {

GridMap ramp(int n, double scale = 1.0) {
  GridMap m(n, n, Rect{0, 0, 1, 1});
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = scale * static_cast<double>(i);
  return m;
}

TEST(Nrms, ZeroForPerfectPrediction) {
  const GridMap truth = ramp(8);
  EXPECT_DOUBLE_EQ(nrms(truth, truth), 0.0);
}

TEST(Nrms, KnownValue) {
  GridMap truth(2, 1, Rect{0, 0, 1, 1});
  truth.at(0, 0) = 0.0;
  truth.at(1, 0) = 2.0;  // range = 2, N = 2
  GridMap pred = truth;
  pred.at(0, 0) = 1.0;  // error vector (1, 0), ||.||2 = 1
  EXPECT_NEAR(nrms(pred, truth), 1.0 / (2.0 * std::sqrt(2.0)), 1e-12);
}

TEST(Nrms, InvariantToTruthShiftOfBoth) {
  const GridMap truth = ramp(8);
  GridMap pred = ramp(8);
  pred.at(3, 3) += 5.0;
  const double base = nrms(pred, truth);
  GridMap truth2 = truth;
  GridMap pred2 = pred;
  for (std::size_t i = 0; i < truth2.size(); ++i) {
    truth2[i] += 100.0;
    pred2[i] += 100.0;
  }
  EXPECT_NEAR(nrms(pred2, truth2), base, 1e-12);
}

TEST(Nrms, ShapeMismatchThrows) {
  EXPECT_THROW(nrms(ramp(4), ramp(8)), std::invalid_argument);
}

TEST(Ssim, OneForIdenticalMaps) {
  const GridMap m = ramp(8);
  EXPECT_NEAR(ssim(m, m), 1.0, 1e-9);
}

TEST(Ssim, LowForAnticorrelatedMaps) {
  const GridMap truth = ramp(8);
  GridMap pred(8, 8, Rect{0, 0, 1, 1});
  for (std::size_t i = 0; i < pred.size(); ++i) {
    pred[i] = static_cast<double>(pred.size()) - 1.0 - static_cast<double>(i);
  }
  EXPECT_LT(ssim(pred, truth), 0.2);
}

TEST(Ssim, DecreasesWithNoise) {
  const GridMap truth = ramp(16);
  GridMap slightly = truth;
  GridMap very = truth;
  Rng rng(2);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double noise = rng.normal(0.0, 1.0);
    slightly[i] += 2.0 * noise;
    very[i] += 40.0 * noise;
  }
  EXPECT_GT(ssim(slightly, truth), ssim(very, truth));
}

TEST(KlDivergence, ZeroForIdenticalDistributions) {
  const GridMap m = ramp(8, 0.1);
  EXPECT_NEAR(kl_divergence(m, m), 0.0, 1e-9);
}

TEST(KlDivergence, PositiveAndAsymmetric) {
  GridMap p(4, 1, Rect{0, 0, 1, 1});
  GridMap q(4, 1, Rect{0, 0, 1, 1});
  p.at(0, 0) = 10.0;
  p.at(1, 0) = 1.0;
  q.at(0, 0) = 1.0;
  q.at(1, 0) = 10.0;
  const double pq = kl_divergence(p, q);
  const double qp = kl_divergence(q, p);
  EXPECT_GT(pq, 0.0);
  // Symmetric construction gives equal values here; perturb to check
  // general asymmetry.
  q.at(2, 0) = 5.0;
  EXPECT_NE(kl_divergence(p, q), kl_divergence(q, p));
  (void)qp;
}

TEST(KlDivergence, NormalizationInvariant) {
  GridMap p(4, 1, Rect{0, 0, 1, 1});
  GridMap q(4, 1, Rect{0, 0, 1, 1});
  for (int k = 0; k < 4; ++k) {
    p.at(k, 0) = k + 1.0;
    q.at(k, 0) = 5.0 - k;
  }
  const double base = kl_divergence(p, q);
  GridMap p2 = p;
  p2 *= 7.0;  // unnormalized scale must not matter
  EXPECT_NEAR(kl_divergence(p2, q), base, 1e-6);
}

TEST(KlDivergence, GrowsWithSeparation) {
  // Concentrated p vs progressively different q.
  GridMap p(8, 1, Rect{0, 0, 1, 1});
  p.at(0, 0) = 1.0;
  GridMap q_near = p;
  q_near.at(1, 0) = 0.3;
  GridMap q_far(8, 1, Rect{0, 0, 1, 1});
  q_far.at(7, 0) = 1.0;
  EXPECT_LT(kl_divergence(p, q_near), kl_divergence(p, q_far));
}

TEST(CellLocationHistogram, CountsCellsPerBin) {
  GeneratorConfig cfg;
  cfg.num_cells = 100;
  const Design d = generate_design(cfg);
  const GridMap hist = cell_location_histogram(d, 8, 8);
  EXPECT_DOUBLE_EQ(hist.sum(), 100.0);
}

}  // namespace
}  // namespace laco
