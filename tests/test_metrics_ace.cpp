#include <gtest/gtest.h>

#include "metrics/ace.hpp"
#include "util/rng.hpp"
#include "nn/autograd.hpp"
#include "nn/ops.hpp"
#include "train/congestion_trainer.hpp"

namespace laco {
namespace {

TEST(Ace, TopFractionMeans) {
  GridMap m(10, 10, Rect{0, 0, 1, 1});
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = static_cast<double>(i);  // 0..99
  // Top 5% of 100 values = {99, 98, 97, 96, 95}.
  EXPECT_DOUBLE_EQ(ace(m, 0.05), (99 + 98 + 97 + 96 + 95) / 5.0);
  // Top 1% = {99}.
  EXPECT_DOUBLE_EQ(ace(m, 0.01), 99.0);
  // Whole map.
  EXPECT_DOUBLE_EQ(ace(m, 1.0), m.mean());
}

TEST(Ace, FractionBelowOneCellClampsToOne) {
  GridMap m(4, 1, Rect{0, 0, 1, 1});
  m.at(3, 0) = 7.0;
  EXPECT_DOUBLE_EQ(ace(m, 0.001), 7.0);
}

TEST(Ace, ProfileIsMonotoneNonIncreasing) {
  GridMap m(16, 16, Rect{0, 0, 1, 1});
  Rng rng(5);
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = rng.uniform(0.0, 2.0);
  const AceProfile p = ace_profile(m);
  EXPECT_GE(p.ace_05, p.ace_1);
  EXPECT_GE(p.ace_1, p.ace_2);
  EXPECT_GE(p.ace_2, p.ace_5);
  EXPECT_GE(p.ace_5, 0.0);
}

TEST(Ace, RejectsBadFraction) {
  GridMap m(2, 2, Rect{0, 0, 1, 1});
  EXPECT_THROW(ace(m, 0.0), std::invalid_argument);
  EXPECT_THROW(ace(m, 1.5), std::invalid_argument);
}

TEST(StackBatch, ForwardAndShape) {
  nn::Tensor a = nn::Tensor::from_data({1, 2, 1, 1}, {1, 2});
  nn::Tensor b = nn::Tensor::from_data({2, 2, 1, 1}, {3, 4, 5, 6});
  nn::Tensor s = nn::stack_batch({a, b});
  EXPECT_EQ(s.shape(), (nn::Shape{3, 2, 1, 1}));
  EXPECT_FLOAT_EQ(s.data()[0], 1.0f);
  EXPECT_FLOAT_EQ(s.data()[5], 6.0f);
  nn::Tensor c = nn::Tensor::from_data({1, 3, 1, 1}, {0, 0, 0});
  EXPECT_THROW(nn::stack_batch({a, c}), std::invalid_argument);
  EXPECT_THROW(nn::stack_batch({}), std::invalid_argument);
}

TEST(StackBatch, GradientRoutesToInputs) {
  nn::Tensor a = nn::Tensor::from_data({1, 2}, {1, 2}, true);
  nn::Tensor b = nn::Tensor::from_data({1, 2}, {3, 4}, true);
  nn::Tensor loss = nn::sum(nn::square(nn::stack_batch({a, b})));
  loss.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 4.0f);
  EXPECT_FLOAT_EQ(b.grad()[0], 6.0f);
  EXPECT_FLOAT_EQ(b.grad()[1], 8.0f);
}

TEST(BatchTraining, BatchedAndValidatedTrainingConverges) {
  // Fit f on synthetic identity samples with batch_size > 1 + validation.
  nn::reset_init_seed(55);
  CongestionFcnConfig fc;
  fc.in_channels = 3;
  fc.base_width = 4;
  CongestionFcn model(fc);
  std::vector<CongestionSample> samples;
  for (unsigned i = 0; i < 8; ++i) {
    nn::Tensor input = nn::Tensor::zeros({1, 3, 8, 8});
    nn::fill_uniform(input, 0.0f, 1.0f, 100 + i);
    CongestionSample sample;
    sample.label = nn::slice_channels(input, 0, 1).detach();
    sample.input = input;
    samples.push_back(std::move(sample));
  }
  CongestionTrainerConfig tc;
  tc.epochs = 10;
  tc.batch_size = 4;
  tc.validation_fraction = 0.25;
  const TrainHistory history = train_congestion(model, samples, tc);
  ASSERT_EQ(history.epoch_losses.size(), 10u);
  ASSERT_EQ(history.val_losses.size(), 10u);
  EXPECT_LT(history.epoch_losses.back(), history.epoch_losses.front());
  EXPECT_GT(history.best_val_loss(), 0.0);
}

}  // namespace
}  // namespace laco
