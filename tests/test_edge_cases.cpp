// Degenerate-input edge cases across the flow: designs with no movable
// cells, single cells, coincident pins, empty nets lists — the inputs a
// robust library must survive without special-casing by the caller.
#include <gtest/gtest.h>

#include "features/feature_stack.hpp"
#include "features/rudy.hpp"
#include "placer/global_placer.hpp"
#include "placer/legalizer.hpp"
#include "router/congestion_eval.hpp"

namespace laco {
namespace {

Design fixed_only_design() {
  Design d("fixed", Rect{0, 0, 10, 10}, 1.0);
  Cell macro;
  macro.kind = CellKind::kMacro;
  macro.fixed = true;
  macro.width = 3;
  macro.height = 3;
  macro.x = 2;
  macro.y = 2;
  d.add_cell(macro);
  Cell pad;
  pad.kind = CellKind::kPad;
  pad.fixed = true;
  pad.width = 1;
  pad.height = 1;
  pad.x = 0;
  pad.y = 9;
  const CellId p1 = d.add_cell(pad);
  pad.x = 9;
  const CellId p2 = d.add_cell(pad);
  const NetId n = d.add_net("io");
  d.add_pin(p1, n, 0.5, 0.5);
  d.add_pin(p2, n, 0.5, 0.5);
  return d;
}

TEST(EdgeCases, PlacerSurvivesDesignWithoutMovableCells) {
  Design d = fixed_only_design();
  ASSERT_EQ(d.num_movable(), 0u);
  GlobalPlacerOptions opts;
  opts.bin_nx = 4;
  opts.bin_ny = 4;
  opts.max_iterations = 10;
  opts.min_iterations = 1;
  GlobalPlacer placer(d, opts);
  const PlacementResult result = placer.run();
  EXPECT_GE(result.iterations, 1);
  EXPECT_DOUBLE_EQ(result.final_overflow, 0.0);
}

TEST(EdgeCases, LegalizersHandleNoMovableCells) {
  Design d = fixed_only_design();
  const LegalizeResult result = legalize(d);
  EXPECT_EQ(result.placed, 0u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(count_legality_violations(d), 0u);
}

TEST(EdgeCases, RouterHandlesFixedOnlyDesign) {
  Design d = fixed_only_design();
  GlobalRouterConfig rc;
  rc.grid.nx = 8;
  rc.grid.ny = 8;
  const RoutingResult result = route_design(d, rc);
  EXPECT_EQ(result.segments, 1u);  // the io net
  EXPECT_GT(result.routed_wirelength, 0.0);
}

TEST(EdgeCases, SingleMovableCellFullFlow) {
  Design d("one", Rect{0, 0, 8, 8}, 1.0);
  Cell c;
  c.width = 1;
  c.height = 1;
  c.x = 4;
  c.y = 4;
  d.add_cell(c);
  Cell pad;
  pad.kind = CellKind::kPad;
  pad.fixed = true;
  pad.width = 0.5;
  pad.height = 1;
  pad.x = 0;
  pad.y = 0;
  const CellId p = d.add_cell(pad);
  const NetId n = d.add_net("n");
  d.add_pin(0, n, 0.5, 0.5);
  d.add_pin(p, n, 0.25, 0.5);

  GlobalPlacerOptions opts;
  opts.bin_nx = 4;
  opts.bin_ny = 4;
  opts.max_iterations = 30;
  opts.min_iterations = 5;
  GlobalPlacer placer(d, opts);
  placer.run();
  GlobalRouterConfig rc;
  rc.grid.nx = 8;
  rc.grid.ny = 8;
  const PlacementEvaluation eval = evaluate_placement(d, rc);
  EXPECT_EQ(eval.legality_violations, 0u);
}

TEST(EdgeCases, FeaturesOnCoincidentPins) {
  Design d("coin", Rect{0, 0, 8, 8}, 1.0);
  for (int i = 0; i < 3; ++i) {
    Cell c;
    c.width = 1;
    c.height = 1;
    c.x = 3.5;
    c.y = 3.5;
    d.add_cell(c);
  }
  const NetId n = d.add_net("n");
  for (CellId cid = 0; cid < 3; ++cid) d.add_pin(cid, n, 0.5, 0.5);
  FeatureExtractor ex(FeatureConfig{8, 8, QuasiVoxScheme::kWeightedSum, true});
  const FeatureFrame frame = ex.compute(d);
  for (const double v : frame.rudy.data()) EXPECT_TRUE(std::isfinite(v));
  // Degenerate box still deposits (widened to one bin).
  EXPECT_GT(frame.rudy.sum(), 0.0);
  // Backward with coincident pins must not produce NaNs.
  std::vector<double> gx(d.num_cells(), 0.0), gy(d.num_cells(), 0.0);
  GridMap up(8, 8, d.core(), 1.0);
  rudy_backward(d, up, gx, gy);
  for (const double v : gx) EXPECT_TRUE(std::isfinite(v));
}

TEST(EdgeCases, EmptyNetListDesignStillPlaces) {
  Design d("nonet", Rect{0, 0, 8, 8}, 1.0);
  for (int i = 0; i < 10; ++i) {
    Cell c;
    c.width = 1;
    c.height = 1;
    c.x = 4;
    c.y = 4;
    d.add_cell(c);
  }
  GlobalPlacerOptions opts;
  opts.bin_nx = 4;
  opts.bin_ny = 4;
  opts.max_iterations = 50;
  opts.min_iterations = 5;
  GlobalPlacer placer(d, opts);
  const PlacementResult result = placer.run();
  // Density-only objective: cells spread, no NaNs.
  EXPECT_LT(result.final_overflow, 1.0);
  EXPECT_TRUE(std::isfinite(result.final_hpwl));
}

TEST(EdgeCases, SnapshotOnNetlessDesignIsFinite) {
  Design d("nonet2", Rect{0, 0, 8, 8}, 1.0);
  Cell c;
  c.width = 1;
  c.height = 1;
  d.add_cell(c);
  FeatureExtractor ex(FeatureConfig{4, 4, QuasiVoxScheme::kWeightedSum, false});
  const FeatureFrame frame = ex.compute(d);
  EXPECT_DOUBLE_EQ(frame.rudy.sum(), 0.0);
  EXPECT_DOUBLE_EQ(frame.pin_rudy.sum(), 0.0);
}

}  // namespace
}  // namespace laco
