// Golden end-to-end regression test: one small, fully deterministic
// DREAM-Cong placement (fixed generator seed, fixed model-init seed,
// forced iteration count) whose headline metrics are pinned against
// tests/golden/laco_place_small.json.
//
//   * exact keys  — integer metrics (iteration count, PenaltyStats,
//     legality violations) must match the golden file exactly;
//   * approx keys — float metrics (HPWL, overflow, routed WL, WCS) are
//     stored as {"value", "rtol"} and checked within their own relative
//     tolerance, so a compiler/libm change does not flake the suite
//     while a real regression still fails;
//   * phases      — the RuntimeBreakdown must report exactly the
//     expected phase-timer keys (docs/OBSERVABILITY.md).
//
// Determinism levers: target_overflow=0 + stall_window=0 +
// min_iterations=max_iterations force the exact iteration count, and
// penalty start_iteration=30 / apply_every=10 over 80 iterations yields
// exactly 5 penalty applications — exact-integer territory. The test
// also runs the whole flow twice in-process and requires bitwise
// identical results, which catches nondeterminism at its source rather
// than as a golden-file mystery.
//
// Regenerate after an intentional behavior change with
//   LACO_UPDATE_GOLDEN=1 ctest -R GoldenE2E
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "laco/laco_placer.hpp"
#include "netlist/generator.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace laco {
namespace {

using obs::Json;

constexpr int kIterations = 80;

std::string golden_path() { return std::string(LACO_GOLDEN_DIR) + "/laco_place_small.json"; }

/// Random-but-seeded DREAM-Cong model set: untrained weights are fine —
/// the golden pins the *mechanism* (penalty plumbing, gradient chain,
/// full GP→LG→DP→route flow), not model quality.
LacoModels golden_models() {
  LacoModels models;
  models.scheme = LacoScheme::kDreamCong;
  CongestionFcnConfig fc;
  fc.in_channels = f_in_channels(models.scheme);
  fc.base_width = 4;
  nn::reset_init_seed(0x601d);
  models.congestion = std::make_shared<CongestionFcn>(fc);
  return models;
}

LacoPlacerConfig golden_config() {
  LacoPlacerConfig cfg;
  cfg.scheme = LacoScheme::kDreamCong;
  cfg.placer.bin_nx = 8;
  cfg.placer.bin_ny = 8;
  cfg.placer.max_iterations = kIterations;
  cfg.placer.min_iterations = kIterations;  // exact iteration count
  cfg.placer.target_overflow = 0.0;
  cfg.placer.stall_window = 0;
  cfg.placer.seed = 7;
  cfg.penalty.features_hi = FeatureConfig{16, 16, QuasiVoxScheme::kWeightedSum, true};
  cfg.penalty.features_lo = FeatureConfig{8, 8, QuasiVoxScheme::kWeightedSum, true};
  cfg.penalty.start_iteration = 30;
  cfg.penalty.apply_every = 10;  // applications at 30,40,50,60,70 → 5
  cfg.router.grid.nx = 16;
  cfg.router.grid.ny = 16;
  return cfg;
}

LacoRunResult run_once() {
  GeneratorConfig gcfg;
  gcfg.num_cells = 150;
  gcfg.seed = 11;
  Design design = generate_design(gcfg);
  const LacoModels models = golden_models();
  return run_laco_placement(design, golden_config(), &models);
}

std::vector<std::string> phase_names(const LacoRunResult& result) {
  std::vector<std::string> names;
  for (const auto& [phase, seconds, frac] : result.breakdown.table()) names.push_back(phase);
  std::sort(names.begin(), names.end());
  return names;
}

Json exact_metrics(const LacoRunResult& r) {
  Json e = Json::object();
  e["iterations"] = r.placement.iterations;
  e["legality_violations"] = static_cast<std::uint64_t>(r.evaluation.legality_violations);
  e["penalty.applications"] = r.penalty_stats.applications;
  e["penalty.learned_applications"] = r.penalty_stats.learned_applications;
  e["penalty.learned_failures"] = r.penalty_stats.learned_failures;
  e["penalty.analytic_fallbacks"] = r.penalty_stats.analytic_fallbacks;
  e["penalty.degradations"] = r.penalty_stats.degradations;
  return e;
}

/// name → measured value for the tolerance-checked metrics.
std::vector<std::pair<std::string, double>> approx_metrics(const LacoRunResult& r) {
  return {
      {"hpwl", r.evaluation.hpwl},
      {"final_overflow", r.placement.final_overflow},
      {"routed_wirelength", r.evaluation.routed_wirelength},
      {"wcs_h", r.evaluation.wcs_h},
      {"wcs_v", r.evaluation.wcs_v},
  };
}

Json load_golden() {
  std::ifstream in(golden_path());
  if (!in) ADD_FAILURE() << "cannot open golden file " << golden_path()
                         << " (regenerate with LACO_UPDATE_GOLDEN=1)";
  std::ostringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

void write_golden(const LacoRunResult& r) {
  Json g = Json::object();
  g["schema"] = "laco-golden";
  g["schema_version"] = 1;
  g["name"] = "laco_place_small";
  g["exact"] = exact_metrics(r);
  Json approx = Json::object();
  for (const auto& [name, value] : approx_metrics(r)) {
    Json entry = Json::object();
    entry["value"] = value;
    entry["rtol"] = 0.15;  // generous: float metrics vary across toolchains
    approx[name] = std::move(entry);
  }
  g["approx"] = approx;
  Json phases = Json::array();
  for (const std::string& name : phase_names(r)) phases.push_back(name);
  g["phases"] = std::move(phases);
  std::ofstream out(golden_path(), std::ios::trunc);
  ASSERT_TRUE(out) << "cannot write " << golden_path();
  out << g.dump(1);
}

TEST(GoldenE2E, DeterministicAcrossRuns) {
  const LacoRunResult a = run_once();
  const LacoRunResult b = run_once();
  // Bitwise equality, not tolerance: the flow is single-threaded and
  // seeded, so any drift between in-process runs is a real bug.
  EXPECT_EQ(a.placement.iterations, b.placement.iterations);
  EXPECT_EQ(a.evaluation.hpwl, b.evaluation.hpwl);
  EXPECT_EQ(a.placement.final_overflow, b.placement.final_overflow);
  EXPECT_EQ(a.evaluation.routed_wirelength, b.evaluation.routed_wirelength);
  EXPECT_EQ(a.evaluation.wcs_h, b.evaluation.wcs_h);
  EXPECT_EQ(a.evaluation.wcs_v, b.evaluation.wcs_v);
  EXPECT_EQ(a.penalty_stats.applications, b.penalty_stats.applications);
  EXPECT_EQ(a.penalty_stats.learned_applications, b.penalty_stats.learned_applications);
}

TEST(GoldenE2E, PenaltyScheduleIsExact) {
  // 80 iterations, start 30, every 10 → exactly 5 learned applications,
  // and the registry mirror (laco.penalty.*) agrees with PenaltyStats.
  obs::Counter& apps = obs::MetricRegistry::global().counter("laco.penalty.applications");
  obs::Counter& learned =
      obs::MetricRegistry::global().counter("laco.penalty.learned_applications");
  const std::uint64_t apps0 = apps.value();
  const std::uint64_t learned0 = learned.value();

  const LacoRunResult r = run_once();
  EXPECT_EQ(r.placement.iterations, kIterations);
  EXPECT_EQ(r.penalty_stats.applications, 5u);
  EXPECT_EQ(r.penalty_stats.learned_applications, 5u);
  EXPECT_EQ(r.penalty_stats.learned_failures, 0u);
  EXPECT_EQ(r.penalty_stats.analytic_fallbacks, 0u);
  EXPECT_EQ(r.penalty_stats.degradations, 0u);
  EXPECT_EQ(apps.value() - apps0, r.penalty_stats.applications);
  EXPECT_EQ(learned.value() - learned0, r.penalty_stats.learned_applications);
}

TEST(GoldenE2E, MatchesGolden) {
  const LacoRunResult r = run_once();

  if (std::getenv("LACO_UPDATE_GOLDEN") != nullptr) {
    write_golden(r);
    GTEST_SKIP() << "golden file regenerated: " << golden_path();
  }

  const Json g = load_golden();
  ASSERT_EQ(g.at("schema").as_string(), "laco-golden");
  ASSERT_EQ(g.at("schema_version").as_int(), 1);

  const Json measured_exact = exact_metrics(r);
  for (const auto& [key, want] : g.at("exact").as_object()) {
    ASSERT_TRUE(measured_exact.contains(key)) << "golden exact key missing from run: " << key;
    EXPECT_EQ(measured_exact.at(key).as_int(), want.as_int()) << "exact metric: " << key;
  }

  for (const auto& [name, value] : approx_metrics(r)) {
    ASSERT_TRUE(g.at("approx").contains(name)) << "golden approx key missing: " << name;
    const Json& entry = g.at("approx").at(name);
    const double want = entry.at("value").as_double();
    const double rtol = entry.at("rtol").as_double();
    const double tol = rtol * std::max(std::abs(want), 1e-12);
    EXPECT_NEAR(value, want, tol) << "approx metric: " << name << " (rtol " << rtol << ")";
  }

  const std::vector<std::string> measured_phases = phase_names(r);
  std::vector<std::string> golden_phases;
  for (const Json& p : g.at("phases").as_array()) golden_phases.push_back(p.as_string());
  EXPECT_EQ(measured_phases, golden_phases) << "phase-timer keys changed";
}

}  // namespace
}  // namespace laco
