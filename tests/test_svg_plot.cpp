#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "netlist/generator.hpp"
#include "netlist/svg_plot.hpp"

namespace laco {
namespace {

Design plot_design() {
  GeneratorConfig cfg;
  cfg.num_cells = 120;
  cfg.num_macros = 2;
  cfg.num_fences = 1;
  cfg.num_routing_blockages = 1;
  cfg.seed = 77;
  return generate_design(cfg);
}

TEST(SvgPlot, ContainsAllLayerKinds) {
  const Design d = plot_design();
  const std::string svg = design_to_svg(d);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("#6b6b6b"), std::string::npos);  // macro fill
  EXPECT_NE(svg.find("#4477cc"), std::string::npos);  // std cell fill
  EXPECT_NE(svg.find("#2e8b57"), std::string::npos);  // pad fill
  if (!d.fences().empty()) {
    EXPECT_NE(svg.find("#e08020"), std::string::npos);  // fence outline
  }
  if (!d.routing_blockages().empty()) {
    EXPECT_NE(svg.find("#cc3333"), std::string::npos);  // blockage
  }
}

TEST(SvgPlot, RectCountMatchesCells) {
  const Design d = plot_design();
  SvgPlotOptions options;
  options.draw_fences = false;
  options.draw_blockages = false;
  const std::string svg = design_to_svg(d, options);
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_EQ(rects, d.num_cells() + 1);  // +1 for the core outline
}

TEST(SvgPlot, OverlayAddsHeatCells) {
  const Design d = plot_design();
  GridMap heat(4, 4, d.core(), 0.0);
  heat.at(1, 1) = 1.0;
  SvgPlotOptions options;
  options.draw_cells = false;
  options.draw_fences = false;
  options.draw_blockages = false;
  options.overlay = &heat;
  const std::string svg = design_to_svg(d, options);
  EXPECT_NE(svg.find("#ff2200"), std::string::npos);
  // Only the single hot bin is drawn (plus core outline).
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_EQ(rects, 2u);
}

TEST(SvgPlot, WritesFile) {
  const Design d = plot_design();
  const std::string path = ::testing::TempDir() + "/plot.svg";
  ASSERT_TRUE(write_svg_file(d, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace laco
