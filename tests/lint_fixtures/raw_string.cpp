// Fixture: rule patterns inside raw string literals must not fire —
// the tokenizer-based stripper blanks R"(...)" bodies, embedded
// quotes and all, while preserving line numbers.
#include <string>

const char* kEmbeddedViolations = R"doc(
  int* leak = new int[8];
  srand(42);
  std::cout << "chatty";
)doc";

int* really_allocates = new int[4];
