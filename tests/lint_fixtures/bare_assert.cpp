// Fixture: bare assert() in library code. Expected: one [bare-assert]
// diagnostic at line 10 — and none for static_assert, LACO_CHECK, or
// the token inside a string literal.
#include <cassert>

static_assert(sizeof(int) >= 2, "sane platform");

int fixture_checked(int x) {
  const char* prose = "please assert(nothing) here";
  assert(x > 0);
  return x + (prose != nullptr);
}
