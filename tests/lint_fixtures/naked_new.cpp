// Fixture: manual memory management. Expected: [naked-new] at lines 8
// and 9 — and none for the deleted copy constructor or `new_size`.
struct FixtureOwner {
  FixtureOwner(const FixtureOwner&) = delete;
};

int* fixture_leaky(int new_size) {
  int* p = new int[new_size];
  delete[] p;
  return nullptr;
}
