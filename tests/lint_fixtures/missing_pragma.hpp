// Fixture: a header with an old-style include guard instead of
// '#pragma once'. Expected: one [pragma-once] diagnostic at line 1.
#ifndef LACO_TESTS_LINT_FIXTURES_MISSING_PRAGMA_HPP
#define LACO_TESTS_LINT_FIXTURES_MISSING_PRAGMA_HPP

inline int fixture_value() { return 42; }

#endif
