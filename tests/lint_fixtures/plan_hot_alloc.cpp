// Fixture: allocating constructs inside the plan executor hot path.
// Linted under the relpath src/plan/executor_fixture.cpp, each line in
// hot() below must trip the plan-hot-alloc rule exactly once.
#include <memory>
#include <vector>

void hot(std::vector<float>& arena) {
  auto t = laco::nn::Tensor::zeros({1, 3, 4, 4});
  auto w = laco::nn::Tensor::full({4}, 0.5f);
  auto owner = std::make_shared<float>(1.0f);
  auto box = std::make_unique<float>(2.0f);
  arena.push_back(1.0f);
  arena.emplace_back(2.0f);
  arena.resize(64);
  arena.reserve(128);
}
