// Fixture: a header that satisfies every laco-lint rule. Expected:
// zero diagnostics under any relpath.
#pragma once

#include <mutex>

#define LACO_GUARDED_BY(x)

class FixtureClean {
 public:
  int value() const;

 private:
  mutable std::mutex mutex_;
  int value_ LACO_GUARDED_BY(mutex_) = 0;
};
