// Fixture: a string literal spliced across lines with backslash-newline
// must be blanked without eating the newline, so diagnostics after it
// keep exact line numbers.
const char* kSpliced = "first half \
second half";

int* after_splice = new int[2];
