// Fixture: terminal output from library code. Expected: [iostream] at
// lines 6 and 7 when linted under src/, none when linted under bench/.
#include <iostream>

void fixture_print() {
  std::cout << "congestion map ready\n";
  std::cerr << "overflow!\n";
}
