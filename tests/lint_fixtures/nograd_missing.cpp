// Fixture: a model forward outside any NoGradGuard scope, as if a
// serve-layer file forgot the tensor.hpp concurrency contract.
// Expected (linted as src/serve/...): [nograd-forward] at lines 7 and
// 12, and nothing for the guarded forward between them. (Fixtures are
// lint inputs, not translation units — they are never compiled.)
int fixture_serve(FixtureModel& model) {
  int bad = model.forward(1);
  {
    nn::NoGradGuard guard;
    bad += model.forward(2);
  }
  bad += model.forward(3);
  return bad;
}
