// Fixture: C PRNG usage. Expected: [rand] at lines 7 and 8 — and none
// for identifiers that merely contain the substring.
#include <cstdlib>

int fixture_random() {
  int operand = 3;
  std::srand(42);
  return rand() + operand;
}
