// Fixture: a mutex member with no LACO_GUARDED_BY annotation anywhere
// in the header. Expected: [mutex-guard] at the member's line.
#pragma once

#include <mutex>

class FixtureCache {
 public:
  int value() const;

 private:
  mutable std::mutex mutex_;
  int value_ = 0;
};
