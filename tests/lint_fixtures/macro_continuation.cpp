// Fixture: preprocessor continuation lines (a directive spliced with
// backslash-newline) are macro body, not code — per-line rules must
// not fire inside them.
#define FIXTURE_SCRATCH(n) \
  do {                     \
    auto* p = new int[n];  \
    srand(n);              \
    delete[] p;            \
  } while (0)

int fixture_use(int n) {
  FIXTURE_SCRATCH(n);
  return n;
}
