// Fixture for the catch-swallow rule: exactly one violating handler.
#include <exception>

void risky();
void fail_batch(std::exception_ptr);

int swallowing() {
  try {
    risky();
  } catch (...) {
    return -1;  // fault erased: no rethrow, no log, no forwarding
  }
  return 0;
}

void rethrowing() {
  try {
    risky();
  } catch (...) {
    throw;
  }
}

void forwarding() {
  try {
    risky();
  } catch (...) {
    fail_batch(std::current_exception());
  }
}
