// Additional placer coverage: warm starts, LSE-driven global placement,
// stagnation stop, fence-constrained global placement, and runtime
// breakdown plumbing.
#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "placer/global_placer.hpp"

namespace laco {
namespace {

GeneratorConfig base_config(int cells, unsigned seed) {
  GeneratorConfig cfg;
  cfg.num_cells = cells;
  cfg.seed = seed;
  return cfg;
}

TEST(GlobalPlacerExtra, WarmStartKeepsExistingPositions) {
  Design d = generate_design(base_config(150, 3));
  std::vector<double> x0, y0;
  d.get_movable_positions(x0, y0);

  GlobalPlacerOptions opts;
  opts.bin_nx = 8;
  opts.bin_ny = 8;
  opts.max_iterations = 1;
  opts.min_iterations = 1;
  opts.target_overflow = 0.0;
  opts.center_init = false;  // warm start
  GlobalPlacer placer(d, opts);
  double first_hpwl = -1.0;
  placer.set_observer([&](const Design& design, const IterationStats& stats) {
    if (stats.iteration == 0) first_hpwl = design.hpwl();
  });
  placer.run();
  // At iteration 0 the design is still (near) the warm-start positions;
  // a center init would have collapsed HPWL dramatically.
  Design fresh = generate_design(base_config(150, 3));
  fresh.set_movable_positions(x0, y0);
  EXPECT_NEAR(first_hpwl, fresh.hpwl(), 0.3 * fresh.hpwl());
}

TEST(GlobalPlacerExtra, LseModeAlsoSpreads) {
  Design d = generate_design(base_config(300, 4));
  GlobalPlacerOptions opts;
  opts.bin_nx = 12;
  opts.bin_ny = 12;
  opts.max_iterations = 250;
  opts.min_iterations = 40;
  opts.wirelength_kind = WirelengthKind::kLogSumExp;
  GlobalPlacer placer(d, opts);
  const PlacementResult result = placer.run();
  EXPECT_LT(result.final_overflow, result.history.front().overflow);
  EXPECT_LT(result.final_overflow, 0.3);
}

TEST(GlobalPlacerExtra, StagnationStopTriggersBeforeMaxIterations) {
  // Impossible target forces the stagnation path once the ratio caps.
  Design d = generate_design(base_config(150, 5));
  GlobalPlacerOptions opts;
  opts.bin_nx = 24;  // very fine bins: granularity floor well above 0
  opts.bin_ny = 24;
  opts.max_iterations = 2000;
  opts.min_iterations = 50;
  opts.target_overflow = 1e-6;
  opts.stall_window = 40;
  GlobalPlacer placer(d, opts);
  const PlacementResult result = placer.run();
  EXPECT_FALSE(result.converged);
  EXPECT_LT(result.iterations, 2000);
}

TEST(GlobalPlacerExtra, StallWindowZeroDisablesEarlyStop) {
  Design d = generate_design(base_config(80, 6));
  GlobalPlacerOptions opts;
  opts.bin_nx = 16;
  opts.bin_ny = 16;
  opts.max_iterations = 150;
  opts.min_iterations = 10;
  opts.target_overflow = 1e-9;
  opts.stall_window = 0;
  GlobalPlacer placer(d, opts);
  const PlacementResult result = placer.run();
  EXPECT_EQ(result.iterations, 150);
}

TEST(GlobalPlacerExtra, FencedCellsStayInRegionThroughoutGp) {
  GeneratorConfig cfg = base_config(400, 7);
  cfg.num_fences = 2;
  Design d = generate_design(cfg);
  if (d.fences().empty()) GTEST_SKIP() << "generator produced no fences for this seed";
  GlobalPlacerOptions opts;
  opts.bin_nx = 12;
  opts.bin_ny = 12;
  opts.max_iterations = 100;
  opts.min_iterations = 100;
  opts.target_overflow = 0.0;
  GlobalPlacer placer(d, opts);
  int checked = 0;
  placer.set_observer([&](const Design& design, const IterationStats& stats) {
    if (stats.iteration % 25 != 0) return;
    for (const Fence& fence : design.fences()) {
      for (const CellId member : fence.members) {
        EXPECT_GT(overlap_area(design.cell(member).rect(), fence.region), 0.0)
            << "iteration " << stats.iteration;
      }
    }
    ++checked;
  });
  placer.run();
  EXPECT_GT(checked, 0);
}

TEST(GlobalPlacerExtra, RuntimeBreakdownIsPopulated) {
  Design d = generate_design(base_config(120, 8));
  GlobalPlacerOptions opts;
  opts.bin_nx = 8;
  opts.bin_ny = 8;
  opts.max_iterations = 30;
  opts.min_iterations = 30;
  opts.target_overflow = 0.0;
  GlobalPlacer placer(d, opts);
  RuntimeBreakdown breakdown;
  placer.set_runtime_breakdown(&breakdown);
  placer.run();
  EXPECT_GT(breakdown.seconds("placement: wirelength"), 0.0);
  EXPECT_GT(breakdown.seconds("placement: density"), 0.0);
}

TEST(GlobalPlacerExtra, HistoryRecordsMonotoneIterations) {
  Design d = generate_design(base_config(100, 9));
  GlobalPlacerOptions opts;
  opts.bin_nx = 8;
  opts.bin_ny = 8;
  opts.max_iterations = 25;
  opts.min_iterations = 25;
  opts.target_overflow = 0.0;
  GlobalPlacer placer(d, opts);
  const PlacementResult result = placer.run();
  ASSERT_EQ(result.history.size(), 25u);
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    EXPECT_EQ(result.history[i].iteration, static_cast<int>(i));
    EXPECT_GT(result.history[i].step_size, 0.0);
  }
}

}  // namespace
}  // namespace laco
