#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "placer/net_weighting.hpp"
#include "router/congestion_eval.hpp"

namespace laco {
namespace {

NetWeightingOptions tiny_options() {
  NetWeightingOptions nw;
  nw.rounds = 2;
  nw.placer.bin_nx = 12;
  nw.placer.bin_ny = 12;
  nw.placer.max_iterations = 120;
  nw.placer.min_iterations = 50;
  nw.router.grid.nx = 16;
  nw.router.grid.ny = 16;
  return nw;
}

TEST(NetWeighting, RestoresOriginalWeights) {
  GeneratorConfig cfg;
  cfg.num_cells = 250;
  cfg.seed = 4;
  Design d = generate_design(cfg);
  std::vector<double> weights;
  for (const Net& n : d.nets()) weights.push_back(n.weight);
  const NetWeightingResult result = run_net_weighting_placement(d, tiny_options());
  EXPECT_EQ(result.rounds_run, 2);
  for (std::size_t n = 0; n < d.num_nets(); ++n) {
    EXPECT_DOUBLE_EQ(d.net(static_cast<NetId>(n)).weight, weights[n]);
  }
}

TEST(NetWeighting, ReweightsOnDenseDesign) {
  GeneratorConfig cfg;
  cfg.num_cells = 400;
  cfg.target_utilization = 0.85;
  cfg.seed = 6;
  Design d = generate_design(cfg);
  NetWeightingOptions nw = tiny_options();
  nw.rounds = 3;
  nw.utilization_threshold = 0.5;
  const NetWeightingResult result = run_net_weighting_placement(d, nw);
  EXPECT_GT(result.reweighted_fraction, 0.0);
  EXPECT_GT(result.mean_weight, 1.0);
  EXPECT_EQ(result.overflow_per_round.size(), 3u);
}

TEST(NetWeighting, PlacementRemainsLegalizable) {
  GeneratorConfig cfg;
  cfg.num_cells = 300;
  cfg.seed = 8;
  Design d = generate_design(cfg);
  run_net_weighting_placement(d, tiny_options());
  GlobalRouterConfig rc;
  rc.grid.nx = 16;
  rc.grid.ny = 16;
  const PlacementEvaluation eval = evaluate_placement(d, rc);
  EXPECT_EQ(eval.legality_violations, 0u);
}

TEST(NetWeighting, CapBoundsWeights) {
  GeneratorConfig cfg;
  cfg.num_cells = 300;
  cfg.target_utilization = 0.9;
  Design d = generate_design(cfg);
  NetWeightingOptions nw = tiny_options();
  nw.rounds = 4;
  nw.utilization_threshold = 0.1;  // reweight aggressively
  nw.growth_rate = 10.0;
  nw.max_weight = 2.0;
  // Observe weights mid-flight via an observer on the last round's
  // placer? Simpler: rely on the invariant that restored weights match
  // and the run completes without the objective exploding.
  const NetWeightingResult result = run_net_weighting_placement(d, nw);
  EXPECT_LE(result.mean_weight, 2.0 + 1e-9);
}

}  // namespace
}  // namespace laco
