// Fixture tests for laco-analyze (tools/analyze_core.hpp): every rule
// has at least one failing fixture pinning the exact diagnostic text,
// plus tokenizer unit tests for the cases the old line-oriented
// stripper got wrong (raw strings, digit separators, spliced
// literals).
#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze_core.hpp"

namespace {

namespace analyze = laco::analyze;
namespace fs = std::filesystem;

fs::path fixture(const std::string& name) {
  return fs::path(LACO_ANALYZE_FIXTURE_DIR) / name;
}

/// Runs the per-file rules on one fixture under a fake src/ relpath
/// and renders the diagnostics.
std::vector<std::string> file_diags(const std::string& name) {
  std::vector<std::string> out;
  for (const analyze::Diagnostic& d :
       analyze::analyze_file(fixture(name), "src/fixture/" + name)) {
    out.push_back(d.str());
  }
  return out;
}

std::vector<std::string> tree_diags(const std::string& tree_name) {
  std::vector<std::string> out;
  for (const analyze::Diagnostic& d : analyze::analyze_tree(fixture(tree_name))) {
    out.push_back(d.str());
  }
  return out;
}

// ------------------------------------------------------------ file rules

TEST(AnalyzeRules, TensorByValueFlagsValueParamsAndHonorsSuppression) {
  EXPECT_EQ(
      file_diags("tensor_by_value.cpp"),
      (std::vector<std::string>{
          "src/fixture/tensor_by_value.cpp:7: [tensor-by-value] parameter 'dense' takes "
          "nn::Tensor by value (one shared-impl copy per call); pass const Tensor& — or, "
          "for an intentional sink parameter, add // analyze-ok(tensor-by-value)",
          "src/fixture/tensor_by_value.cpp:8: [tensor-by-value] parameter 'frames' takes "
          "nn::Tensor by value (one shared-impl copy per call); pass const Tensor& — or, "
          "for an intentional sink parameter, add // analyze-ok(tensor-by-value)"}));
}

TEST(AnalyzeRules, DeterministicRegionsRejectUnorderedAccumulation) {
  EXPECT_EQ(
      file_diags("nondet_accum.cpp"),
      (std::vector<std::string>{
          "src/fixture/nondet_accum.cpp:11: [nondeterministic-accum] atomic fetch_add "
          "inside a LACO_DETERMINISTIC region: cross-thread accumulation order is "
          "unspecified — use per-shard partial sums reduced in index order",
          "src/fixture/nondet_accum.cpp:20: [nondeterministic-accum] reduction over "
          "std::unordered_map inside a LACO_DETERMINISTIC region: iteration order is "
          "unspecified — use a sorted container or index-ordered loop",
          "src/fixture/nondet_accum.cpp:29: [nondeterministic-accum] std::atomic<double> "
          "inside a LACO_DETERMINISTIC region: floating-point accumulation through an "
          "atomic is unordered — use per-shard partial sums reduced in index order"}));
}

TEST(AnalyzeRules, TiledReductionPatternPassesAndSharedAccumulateFails) {
  // The kernel-pool idiom (docs/KERNELS.md): per-tile partials merged
  // in index order are clean; one shared atomic across tiles is not.
  EXPECT_EQ(
      file_diags("tiled_reduction.cpp"),
      (std::vector<std::string>{
          "src/fixture/tiled_reduction.cpp:34: [nondeterministic-accum] atomic fetch_add "
          "inside a LACO_DETERMINISTIC region: cross-thread accumulation order is "
          "unspecified — use per-shard partial sums reduced in index order"}));
}

TEST(AnalyzeRules, GuardedAccessRequiresLockOrAnnotation) {
  // Only Counter::bump fires: locked_bump holds a MutexLock,
  // annotated_bump is LACO_REQUIRES, and the declaration line itself
  // is exempt.
  EXPECT_EQ(file_diags("guarded_access.cpp"),
            (std::vector<std::string>{
                "src/fixture/guarded_access.cpp:24: [guarded-access] field 'value_' is "
                "LACO_GUARDED_BY a mutex but is touched with no MutexLock in scope and "
                "outside any LACO_REQUIRES method — lock first, or annotate the method"}));
}

TEST(AnalyzeRules, DuplicateIncludeFlagsSecondOccurrence) {
  EXPECT_EQ(file_diags("dup_include.cpp"),
            (std::vector<std::string>{
                "src/fixture/dup_include.cpp:4: [duplicate-include] \"cstddef\" is "
                "already included by this file — drop the duplicate"}));
}

TEST(AnalyzeRules, CleanFixtureProducesNoDiagnostics) {
  EXPECT_EQ(file_diags("clean.cpp"), std::vector<std::string>{});
}

TEST(AnalyzeRules, SerialVersionedDemandsExplicitFormatVersion) {
  // GoodBlob (kVersion) and PlainStruct (no serial usage) stay quiet;
  // SuppressedBlob is analyze-ok'd.
  EXPECT_EQ(file_diags("serial_versioned.cpp"),
            (std::vector<std::string>{
                "src/fixture/serial_versioned.cpp:13: [serial-versioned] 'BadBlob' is "
                "serialized through laco::serial but declares no kVersion — every "
                "serialized struct carries an explicit format version so old files fail "
                "cleanly (docs/RELIABILITY.md)",
                "src/fixture/serial_versioned.cpp:17: [serial-versioned] 'BadReaderBlob' "
                "is serialized through laco::serial but declares no kVersion — every "
                "serialized struct carries an explicit format version so old files fail "
                "cleanly (docs/RELIABILITY.md)"}));
}

// ------------------------------------------------------------ tree rules

TEST(AnalyzeTree, LayerDagCycleAndIwyuFireOnSeededTree) {
  // layer_tree/ is a miniature repo: an nn header including serve
  // (upward include), two util headers including each other (cycle),
  // and a .cpp including a header it never references (IWYU).
  EXPECT_EQ(
      tree_diags("layer_tree"),
      (std::vector<std::string>{
          "src/nn/bad_upward.hpp:3: [layer-dag] include of \"src/serve/svc.hpp\" breaks "
          "the layer DAG: layer 'nn' must not depend on layer 'serve' "
          "(docs/STATIC_ANALYSIS.md)",
          "src/util/cycle_a.hpp:3: [include-cycle] include cycle: src/util/cycle_a.hpp "
          "-> src/util/cycle_b.hpp -> src/util/cycle_a.hpp",
          "src/util/unused_inc.cpp:1: [iwyu-unused-include] nothing declared by "
          "\"src/util/provides.hpp\" is referenced in this file — drop the include (or "
          "include what you actually use)"}));
}

TEST(AnalyzeTree, SerialRoundTripCoverageFlagsUntestedCodecs) {
  // serial_tree/ has two versioned codec structs; only CoveredBlob is
  // mentioned by its tests/test_snapshot.cpp.
  EXPECT_EQ(tree_diags("serial_tree"),
            (std::vector<std::string>{
                "src/util/blob.hpp:12: [serial-roundtrip] 'UncoveredBlob' is serialized "
                "through laco::serial but never appears in tests/test_snapshot.cpp — "
                "cover it in the snapshot round-trip suite"}));
}

TEST(AnalyzeTree, LayerTableMatchesLinkGraph) {
  EXPECT_TRUE(analyze::layer_may_include("placer", "util"));   // transitive
  EXPECT_TRUE(analyze::layer_may_include("serve", "plan"));    // direct
  EXPECT_TRUE(analyze::layer_may_include("nn", "nn"));         // reflexive
  EXPECT_FALSE(analyze::layer_may_include("nn", "serve"));     // upward
  EXPECT_FALSE(analyze::layer_may_include("util", "gridmap")); // upward
  EXPECT_FALSE(analyze::layer_may_include("placer", "router"));  // would be a cycle

  EXPECT_EQ(analyze::layer_of("src/nn/tensor.hpp"), "nn");
  EXPECT_EQ(analyze::layer_of("src/placer/nesterov.cpp"), "placer");
  // The laco_flows sources live under src/placer/ but sit above router.
  EXPECT_EQ(analyze::layer_of("src/placer/inflation.cpp"), "flows");
  EXPECT_EQ(analyze::layer_of("src/placer/net_weighting.hpp"), "flows");
  EXPECT_EQ(analyze::layer_of("tools/laco_cli.cpp"), "");
}

// ------------------------------------------------------------- tokenizer

TEST(AnalyzeTokenizer, RawStringsAreBlankedWithLinesPreserved) {
  const std::string src =
      "int x = 0;\n"
      "const char* doc = R\"doc(\n"
      "  int* leak = new int[8];\n"
      ")doc\";\n"
      "int y = 1;\n";
  const std::string stripped = analyze::strip_source(src);
  EXPECT_EQ(stripped.find("new int"), std::string::npos);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  // `y` still lexes on its true line after the multi-line literal.
  const analyze::TokenizedFile tf = analyze::tokenize(src);
  bool found = false;
  for (const analyze::Token& t : tf.tokens) {
    if (t.text == "y") {
      EXPECT_EQ(t.line, 5);
      found = true;
    }
    EXPECT_NE(t.text, "leak");
  }
  EXPECT_TRUE(found);
}

TEST(AnalyzeTokenizer, DigitSeparatorsDoNotOpenCharLiterals) {
  // The old stripper treated the ' in 50'000 as a char literal opener
  // and blanked everything to the next apostrophe.
  const std::string src =
      "int big = 50'000;\n"
      "char c = 'x';\n"
      "int after = 1;\n";
  const analyze::TokenizedFile tf = analyze::tokenize(src);
  bool saw_number = false;
  bool saw_after = false;
  for (const analyze::Token& t : tf.tokens) {
    if (t.text == "50'000") {
      EXPECT_EQ(t.kind, analyze::Token::Kind::kNumber);
      saw_number = true;
    }
    if (t.text == "after") {
      EXPECT_EQ(t.line, 3);
      saw_after = true;
    }
    EXPECT_NE(t.text, "x");  // char literal contents stay blanked
  }
  EXPECT_TRUE(saw_number);
  EXPECT_TRUE(saw_after);
}

TEST(AnalyzeTokenizer, SplicedStringLiteralKeepsLineNumbers) {
  const std::string src =
      "const char* s = \"abc\\\n"
      "def\";\n"
      "int after_splice = 2;\n";
  const std::string stripped = analyze::strip_source(src);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  const analyze::TokenizedFile tf = analyze::tokenize(src);
  bool found = false;
  for (const analyze::Token& t : tf.tokens) {
    if (t.text == "after_splice") {
      EXPECT_EQ(t.line, 3);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AnalyzeTokenizer, MarkersAndSuppressionsAreCaptured) {
  const std::string src =
      "// LACO_DETERMINISTIC: ordered reduction\n"
      "int a = 1;  // analyze-ok(tensor-by-value): fixture\n";
  const analyze::TokenizedFile tf = analyze::tokenize(src);
  ASSERT_EQ(tf.deterministic_marks.size(), 1u);
  EXPECT_EQ(tf.deterministic_marks[0], 1);
  ASSERT_EQ(tf.suppressions.count(2), 1u);
  EXPECT_EQ(tf.suppressions.at(2).count("tensor-by-value"), 1u);
}

TEST(AnalyzeTokenizer, PreprocessorDirectivesProduceNoTokens) {
  const std::string src =
      "#define FIXTURE_MACRO(n) \\\n"
      "  do { auto* p = new int[n]; delete[] p; } while (0)\n"
      "#include \"util/check.hpp\"\n"
      "int code = 3;\n";
  const analyze::TokenizedFile tf = analyze::tokenize(src);
  for (const analyze::Token& t : tf.tokens) {
    EXPECT_NE(t.text, "new");  // macro body is not code
    EXPECT_NE(t.text, "do");
  }
  ASSERT_EQ(tf.includes.size(), 1u);
  EXPECT_EQ(tf.includes[0].path, "util/check.hpp");
  EXPECT_FALSE(tf.includes[0].angled);
  EXPECT_EQ(tf.includes[0].line, 3);
  ASSERT_EQ(tf.defines.size(), 1u);
  EXPECT_EQ(tf.defines[0], "FIXTURE_MACRO");
}

}  // namespace
