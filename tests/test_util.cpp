#include <gtest/gtest.h>

#include "util/csv.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace laco {
namespace {

TEST(Geometry, RectBasics) {
  const Rect r{1.0, 2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 4.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_EQ(r.center(), (Point{2.5, 4.0}));
  EXPECT_TRUE(r.contains({1.0, 2.0}));
  EXPECT_TRUE(r.contains({4.0, 6.0}));
  EXPECT_FALSE(r.contains({4.1, 6.0}));
}

TEST(Geometry, OverlapArea) {
  const Rect a{0, 0, 2, 2};
  const Rect b{1, 1, 3, 3};
  EXPECT_DOUBLE_EQ(overlap_area(a, b), 1.0);
  const Rect c{5, 5, 6, 6};
  EXPECT_DOUBLE_EQ(overlap_area(a, c), 0.0);
  // Touching rectangles overlap with zero area.
  const Rect d{2, 0, 4, 2};
  EXPECT_DOUBLE_EQ(overlap_area(a, d), 0.0);
}

TEST(Geometry, ManhattanAndNorm) {
  EXPECT_DOUBLE_EQ(manhattan({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(dot({1, 2}, {3, 4}), 11.0);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
    const int n = rng.uniform_int(-3, 3);
    EXPECT_GE(n, -3);
    EXPECT_LE(n, 3);
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(7);
  std::vector<double> weights{0.0, 10.0, 0.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(3);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Table, FormatAndCsv) {
  Table t({"name", "value"});
  t.add_row({"a", Table::fmt(1.234, 2)});
  t.add_row({"b,c", "2"});
  EXPECT_EQ(t.num_rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"b,c\""), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(RuntimeBreakdown, AccumulatesAndSorts) {
  RuntimeBreakdown bd;
  bd.add("a", 1.0);
  bd.add("b", 3.0);
  bd.add("a", 1.0);
  EXPECT_DOUBLE_EQ(bd.seconds("a"), 2.0);
  EXPECT_DOUBLE_EQ(bd.total(), 5.0);
  const auto table = bd.table();
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(std::get<0>(table[0]), "b");
  EXPECT_NEAR(std::get<2>(table[0]), 0.6, 1e-12);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
}

}  // namespace
}  // namespace laco
