// Tests for the Abacus legalizer, including the head-to-head property
// it exists for: lower displacement than the Tetris legalizer.
#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "placer/abacus.hpp"
#include "placer/detailed_placer.hpp"
#include "placer/global_placer.hpp"
#include "router/congestion_eval.hpp"

namespace laco {
namespace {

Design placed(int cells, unsigned seed, int fences = 0) {
  GeneratorConfig cfg;
  cfg.num_cells = cells;
  cfg.seed = seed;
  cfg.num_fences = fences;
  Design d = generate_design(cfg);
  GlobalPlacerOptions opts;
  opts.bin_nx = 16;
  opts.bin_ny = 16;
  opts.max_iterations = 200;
  opts.min_iterations = 40;
  GlobalPlacer placer(d, opts);
  placer.run();
  return d;
}

TEST(Abacus, ProducesLegalPlacement) {
  Design d = placed(300, 2);
  const LegalizeResult result = abacus_legalize(d);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.placed, d.num_movable());
  EXPECT_EQ(count_legality_violations(d), 0u);
}

TEST(Abacus, HandlesClumpedInput) {
  GeneratorConfig cfg;
  cfg.num_cells = 250;
  Design d = generate_design(cfg);
  std::vector<double> x(d.num_movable(), d.core().center().x);
  std::vector<double> y(d.num_movable(), d.core().center().y);
  d.set_movable_positions(x, y);
  const LegalizeResult result = abacus_legalize(d);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(count_legality_violations(d), 0u);
}

TEST(Abacus, RespectsFences) {
  Design d = placed(400, 7, 2);
  abacus_legalize(d);
  EXPECT_EQ(count_legality_violations(d), 0u);
}

class AbacusVsTetris : public ::testing::TestWithParam<unsigned> {};

TEST_P(AbacusVsTetris, AbacusDisplacesLess) {
  Design tetris_design = placed(350, GetParam());
  Design abacus_design = tetris_design;  // identical starting point
  const LegalizeResult tetris = legalize(tetris_design);
  const LegalizeResult abacus = abacus_legalize(abacus_design);
  ASSERT_EQ(tetris.failed, 0u);
  ASSERT_EQ(abacus.failed, 0u);
  EXPECT_EQ(count_legality_violations(abacus_design), 0u);
  // The quadratic-optimal cluster packing should not be (much) worse; in
  // the common case it is clearly better. Allow 10% slack for ties.
  EXPECT_LE(abacus.total_displacement, tetris.total_displacement * 1.1)
      << "abacus " << abacus.total_displacement << " vs tetris " << tetris.total_displacement;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbacusVsTetris, ::testing::Values(11u, 23u, 35u));

TEST(Abacus, EndToEndRoutesCleanly) {
  Design d = placed(300, 13);
  abacus_legalize(d);
  detailed_place(d);
  EXPECT_EQ(count_legality_violations(d), 0u);
  GlobalRouterConfig rc;
  rc.grid.nx = 16;
  rc.grid.ny = 16;
  const RoutingResult routing = route_design(d, rc);
  EXPECT_GT(routing.routed_wirelength, 0.0);
}

}  // namespace
}  // namespace laco
