// Tests for the cell-inflation baseline placer and the router's
// PathFinder history negotiation.
#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "placer/inflation.hpp"
#include "router/congestion_eval.hpp"

namespace laco {
namespace {

InflationOptions tiny_options() {
  InflationOptions io;
  io.rounds = 2;
  io.placer.bin_nx = 12;
  io.placer.bin_ny = 12;
  io.placer.max_iterations = 120;
  io.placer.min_iterations = 50;
  io.router.grid.nx = 16;
  io.router.grid.ny = 16;
  return io;
}

TEST(Inflation, RestoresCellSizes) {
  GeneratorConfig cfg;
  cfg.num_cells = 250;
  cfg.seed = 3;
  Design d = generate_design(cfg);
  std::vector<double> widths;
  for (const CellId cid : d.movable_cells()) widths.push_back(d.cell(cid).width);
  const InflationResult result = run_inflation_placement(d, tiny_options());
  EXPECT_EQ(result.rounds_run, 2);
  for (std::size_t i = 0; i < widths.size(); ++i) {
    EXPECT_DOUBLE_EQ(d.cell(d.movable_cells()[i]).width, widths[i]);
  }
}

TEST(Inflation, InflatesSomethingOnCongestedDesign) {
  GeneratorConfig cfg;
  cfg.num_cells = 400;
  cfg.target_utilization = 0.85;  // dense: guaranteed hotspots
  cfg.seed = 9;
  Design d = generate_design(cfg);
  InflationOptions io = tiny_options();
  io.rounds = 3;
  io.utilization_threshold = 0.5;
  const InflationResult result = run_inflation_placement(d, io);
  EXPECT_GT(result.inflated_fraction, 0.0);
  EXPECT_GT(result.mean_inflation, 1.0);
  EXPECT_EQ(result.overflow_per_round.size(), 3u);
}

TEST(Inflation, PlacementRemainsLegalizable) {
  GeneratorConfig cfg;
  cfg.num_cells = 300;
  cfg.seed = 5;
  Design d = generate_design(cfg);
  run_inflation_placement(d, tiny_options());
  GlobalRouterConfig rc;
  rc.grid.nx = 16;
  rc.grid.ny = 16;
  const PlacementEvaluation eval = evaluate_placement(d, rc);
  EXPECT_EQ(eval.legality_violations, 0u);
}

TEST(RouterHistory, AccumulatesOnOverflowedEdgesOnly) {
  Design d("h", Rect{0, 0, 8, 8}, 1.0);
  Cell c;
  c.width = 1;
  c.height = 1;
  d.add_cell(c);
  GridGraphConfig gc;
  gc.nx = 8;
  gc.ny = 8;
  GridGraph g(d, gc);
  g.add_h_usage(2, 2, g.h_capacity(2, 2) + 1.0);  // overflowed
  g.add_h_usage(4, 4, 0.5);                        // in capacity
  g.accumulate_history(0.7);
  EXPECT_DOUBLE_EQ(g.h_history(2, 2), 0.7);
  EXPECT_DOUBLE_EQ(g.h_history(4, 4), 0.0);
  // History raises the edge cost even after the demand is ripped up.
  g.add_h_usage(2, 2, -(g.h_capacity(2, 2) + 1.0));
  EXPECT_GT(g.h_cost(2, 2), g.h_cost(4, 4));
  g.clear_history();
  EXPECT_DOUBLE_EQ(g.h_history(2, 2), 0.0);
}

TEST(RouterHistory, NegotiationDoesNotWorsenOverflow) {
  GeneratorConfig cfg;
  cfg.num_cells = 400;
  cfg.target_utilization = 0.85;
  cfg.seed = 7;
  Design d = generate_design(cfg);
  GlobalRouterConfig base;
  base.grid.nx = 16;
  base.grid.ny = 16;
  base.rrr_rounds = 0;
  GlobalRouterConfig negotiated = base;
  negotiated.rrr_rounds = 3;
  const RoutingResult before = route_design(d, base);
  const RoutingResult after = route_design(d, negotiated);
  EXPECT_LE(after.total_overflow_h + after.total_overflow_v,
            before.total_overflow_h + before.total_overflow_v + 1e-9);
}

}  // namespace
}  // namespace laco
