// serial-versioned fixture: GoodBlob declares kVersion, BadBlob and
// BadReaderBlob do not, SuppressedBlob opts out with analyze-ok.
namespace serial {
class Writer;
class Reader;
}  // namespace serial

struct GoodBlob {
  static constexpr unsigned kVersion = 1;
  void save(serial::Writer& w) const;
};

struct BadBlob {
  void save(serial::Writer& w) const;
};

class BadReaderBlob {
 public:
  void load(serial::Reader& r);
};

struct SuppressedBlob {  // analyze-ok(serial-versioned): scratch-only format
  void save(serial::Writer& w) const;
};

struct PlainStruct {  // no serial usage: out of scope
  int value = 0;
};
