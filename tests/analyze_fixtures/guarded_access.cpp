// laco-analyze fixture: guarded fields touched without a lock.
#define LACO_GUARDED_BY(mu)
#define LACO_REQUIRES(mu)

class MutexLock {
 public:
  explicit MutexLock(int& mu) : mu_(mu) {}

 private:
  int& mu_;
};

class Counter {
 public:
  void bump();
  void locked_bump();
  void annotated_bump() LACO_REQUIRES(mu_);

 private:
  int mu_ = 0;
  int value_ LACO_GUARDED_BY(mu_) = 0;
};

void Counter::bump() { value_ += 1; }

void Counter::locked_bump() {
  MutexLock lock(mu_);
  value_ += 1;
}

void Counter::annotated_bump() { value_ += 1; }
