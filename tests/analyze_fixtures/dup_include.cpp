// laco-analyze fixture: the same header included twice.
#include <cstddef>
#include <vector>
#include <cstddef>

std::size_t fixture_size(const std::vector<int>& xs) { return xs.size(); }
