// laco-analyze fixture: nothing here should fire any rule.
#include <vector>

namespace laco {
float sum(const std::vector<float>& xs) {
  float total = 0.0f;
  for (const float x : xs) total += x;
  return total;
}
}  // namespace laco
