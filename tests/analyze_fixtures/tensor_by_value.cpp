// laco-analyze fixture: nn::Tensor parameters taken by value.
namespace laco {
namespace nn {
class Tensor {};
}  // namespace nn

float consume(nn::Tensor dense, int k);
float copy_anyway(const nn::Tensor frames);
float sink(nn::Tensor owned);  // analyze-ok(tensor-by-value): fixture sink
float fine(const nn::Tensor& ref, float* out);

}  // namespace laco
