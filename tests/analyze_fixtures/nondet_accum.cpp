// laco-analyze fixture: unordered accumulation inside marked regions.
#include <atomic>
#include <cstddef>
#include <unordered_map>
#include <vector>

float parallel_sum(const std::vector<float>& xs) {
  std::atomic<float> acc{0.0f};  // outside any marked region: allowed
  // LACO_DETERMINISTIC: fixture region (atomic RMW)
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc.fetch_add(xs[i]);
  }
  return acc.load();
}

double keyed_total(const std::unordered_map<int, double>& m) {
  double total = 0.0;
  // LACO_DETERMINISTIC: fixture region (hash iteration)
  {
    std::unordered_map<int, double> scratch(m.begin(), m.end());
    for (const auto& [key, value] : scratch) total += value;
  }
  return total;
}

double shared_cell(std::size_t n) {
  // LACO_DETERMINISTIC: fixture region (atomic FP cell)
  {
    std::atomic<double> cell{0.0};
    for (std::size_t i = 0; i < n; ++i) cell.store(cell.load() + 1.0);
    return cell.load();
  }
}
