#pragma once

#include "serve/svc.hpp"

namespace laco::nn {
inline int ask_service() { return serve::answer_rpc(); }
}  // namespace laco::nn
