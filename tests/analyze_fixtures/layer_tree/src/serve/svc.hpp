#pragma once

namespace laco::serve {
inline int answer_rpc() { return 42; }
}  // namespace laco::serve
