#pragma once

#include "util/cycle_a.hpp"

namespace laco::util {
inline int beta() { return 2; }
inline int alpha_twice() { return alpha() * 2; }
}  // namespace laco::util
