#pragma once

#include "util/cycle_b.hpp"

namespace laco::util {
inline int alpha() { return beta() + 1; }
}  // namespace laco::util
