#include "util/provides.hpp"

namespace laco::util {
int standalone_helper() { return 7; }
}  // namespace laco::util
