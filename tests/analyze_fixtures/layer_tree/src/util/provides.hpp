#pragma once

namespace laco::util {
struct ProvidedThing {
  int payload = 0;
};
}  // namespace laco::util
