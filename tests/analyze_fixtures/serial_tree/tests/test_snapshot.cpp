// Mini round-trip suite: exercises CoveredBlob, never UncoveredBlob.
void round_trip_covered_blob() {
  CoveredBlob blob;
  (void)blob;
}
