#pragma once

namespace serial {
class Writer;
}  // namespace serial

struct CoveredBlob {
  static constexpr unsigned kVersion = 1;
  void save(serial::Writer& w) const;
};

struct UncoveredBlob {
  static constexpr unsigned kVersion = 1;
  void save(serial::Writer& w) const;
};
