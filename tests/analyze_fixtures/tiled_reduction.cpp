// laco-analyze fixture: the kernel-pool tiled-reduction idiom
// (docs/KERNELS.md). tiled_sum_ordered is the sanctioned pattern —
// each tile owns a disjoint partial, merged in index order — and must
// produce no diagnostics. tiled_sum_racy funnels every tile through
// one shared atomic instead; the fetch_add inside the marked region
// must be flagged.
#include <atomic>
#include <cstddef>
#include <vector>

float tiled_sum_ordered(const std::vector<float>& xs, std::size_t tiles) {
  std::vector<double> partials(tiles, 0.0);
  const std::size_t per = (xs.size() + tiles - 1) / tiles;
  // LACO_DETERMINISTIC: tile t owns partials[t]; merged in index order below.
  for (std::size_t t = 0; t < tiles; ++t) {
    const std::size_t lo = t * per;
    const std::size_t hi = lo + per < xs.size() ? lo + per : xs.size();
    for (std::size_t i = lo; i < hi; ++i) partials[t] += xs[i];
  }
  double total = 0.0;
  for (std::size_t t = 0; t < tiles; ++t) total += partials[t];
  return static_cast<float>(total);
}

float tiled_sum_racy(const std::vector<float>& xs, std::size_t tiles) {
  std::atomic<float> total{0.0f};  // outside any marked region: allowed
  const std::size_t per = (xs.size() + tiles - 1) / tiles;
  // LACO_DETERMINISTIC: fixture region (shared accumulator across tiles)
  for (std::size_t t = 0; t < tiles; ++t) {
    float local = 0.0f;
    const std::size_t lo = t * per;
    const std::size_t hi = lo + per < xs.size() ? lo + per : xs.size();
    for (std::size_t i = lo; i < hi; ++i) local += xs[i];
    total.fetch_add(local);
  }
  return total.load();
}
