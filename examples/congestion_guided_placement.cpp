// The paper's end-to-end use case: congestion-guided global placement.
// Trains LACO models on a training set, then places a held-out design
// three ways — plain DREAMPlace, DREAM-Cong, and LACO (Cell-flow+KL) —
// and compares the routed congestion (WCS) and wirelength.
//
//   ./congestion_guided_placement [design] [scale]
//       (defaults: edit_dist_a 0.004)
#include <cstdlib>
#include <iostream>

#include "laco/laco_placer.hpp"
#include "laco/pipeline.hpp"
#include "netlist/ispd2015_suite.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace laco;
  set_log_level(LogLevel::kInfo);

  const std::string target = argc > 1 ? argv[1] : "edit_dist_a";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.004;

  PipelineConfig config = default_pipeline_config();
  config.scale = scale;
  config.runs_per_design = 2;
  Pipeline pipeline(config);

  std::cout << "training models on fft_1/fft_2/des_perf_1/des_perf_b...\n";
  const auto& traces = pipeline.traces_for({"fft_1", "fft_2", "des_perf_1", "des_perf_b"});
  const LacoModels dreamcong = pipeline.train_models(LacoScheme::kDreamCong, traces);
  const LacoModels laco_models = pipeline.train_models(LacoScheme::kCellFlowKL, traces);

  Table table({"scheme", "WCS_H", "WCS_V", "ACE(5%)", "routed WL", "HPWL", "GP iters"});
  for (const LacoScheme scheme :
       {LacoScheme::kDreamPlace, LacoScheme::kDreamCong, LacoScheme::kCellFlowKL}) {
    Design design = make_ispd2015_analog(target, scale);
    LacoPlacerConfig cfg;
    cfg.scheme = scheme;
    cfg.placer = config.trace.placer;
    cfg.penalty = pipeline.penalty_config();
    cfg.router = config.trace.router;
    const LacoModels* models = scheme == LacoScheme::kDreamCong ? &dreamcong
                               : scheme == LacoScheme::kCellFlowKL ? &laco_models
                                                                   : nullptr;
    std::cout << "placing " << target << " with " << to_string(scheme) << "...\n";
    const LacoRunResult result = run_laco_placement(design, cfg, models);
    table.add_row({to_string(scheme), Table::fmt(result.evaluation.wcs_h, 3),
                   Table::fmt(result.evaluation.wcs_v, 3),
                   Table::fmt(result.evaluation.ace.ace_5, 3),
                   Table::fmt(result.evaluation.routed_wirelength, 1),
                   Table::fmt(result.evaluation.hpwl, 1),
                   std::to_string(result.placement.iterations)});
  }
  std::cout << '\n' << table.to_string()
            << "\nExpected shape (paper Table I): LACO attains the lowest worst congestion "
               "score at comparable wirelength.\n";
  return 0;
}
