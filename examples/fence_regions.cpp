// ISPD-2015-style constraints walkthrough: generates a design with
// exclusive fence regions and routing blockages, runs the full placement
// flow, verifies the constraints hold, and writes SVG snapshots before
// and after placement (with the routed congestion overlaid).
//
//   ./fence_regions [num_cells] [num_fences]     (defaults 1500, 2)
#include <cstdlib>
#include <iostream>

#include "netlist/design_stats.hpp"
#include "placer/detailed_placer.hpp"
#include "placer/legalizer.hpp"
#include "netlist/generator.hpp"
#include "netlist/svg_plot.hpp"
#include "placer/abacus.hpp"
#include "placer/global_placer.hpp"
#include "router/congestion_eval.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace laco;
  set_log_level(LogLevel::kInfo);

  GeneratorConfig gen;
  gen.name = "fence_demo";
  gen.num_cells = argc > 1 ? std::atoi(argv[1]) : 1500;
  gen.num_fences = argc > 2 ? std::atoi(argv[2]) : 2;
  gen.num_routing_blockages = 2;
  gen.num_macros = 3;
  gen.seed = 11;
  Design design = generate_design(gen);
  std::cout << "generated: " << to_string(compute_stats(design)) << '\n';
  for (const Fence& fence : design.fences()) {
    std::cout << "  fence '" << fence.name << "' at " << fence.region << " holds "
              << fence.members.size() << " cells\n";
  }
  write_svg_file(design, "fence_demo_before.svg");

  GlobalPlacerOptions options;
  options.bin_nx = 24;
  options.bin_ny = 24;
  options.max_iterations = 350;
  GlobalPlacer placer(design, options);
  const PlacementResult gp = placer.run();
  std::cout << "global placement: " << gp.iterations << " iterations, overflow "
            << gp.final_overflow << '\n';

  // Use the Abacus legalizer here (lower displacement than Tetris).
  const LegalizeResult lg = abacus_legalize(design);
  detailed_place(design);
  std::cout << "legalized (abacus): displacement total " << lg.total_displacement << ", max "
            << lg.max_displacement << ", violations " << count_legality_violations(design)
            << '\n';

  GlobalRouterConfig rc;
  rc.grid.nx = 32;
  rc.grid.ny = 32;
  const RoutingResult routing = route_design(design, rc);
  std::cout << "routing: WCS_H " << routing.wcs_h << ", WCS_V " << routing.wcs_v
            << ", routed WL " << routing.routed_wirelength << '\n';

  SvgPlotOptions plot;
  plot.overlay = &routing.congestion;
  plot.overlay_max = 1.0;
  write_svg_file(design, "fence_demo_after.svg", plot);
  std::cout << "wrote fence_demo_before.svg / fence_demo_after.svg\n";

  // Constraint audit, the point of the demo.
  bool ok = true;
  for (const Fence& fence : design.fences()) {
    for (const CellId member : fence.members) {
      if (overlap_area(design.cell(member).rect(), fence.region) <
          design.cell(member).area() - 1e-9) {
        ok = false;
      }
    }
  }
  std::cout << (ok ? "all fence constraints satisfied\n" : "FENCE VIOLATIONS FOUND\n");
  return ok ? 0 : 1;
}
