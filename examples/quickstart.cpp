// Quickstart: generate a synthetic circuit, run the full placement flow
// (global placement → legalization → detailed placement), route it, and
// print the quality metrics. No ML involved — this is the substrate the
// LACO method builds on.
//
//   ./quickstart [num_cells]          (default 2000)
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "netlist/design_stats.hpp"
#include "netlist/generator.hpp"
#include "placer/global_placer.hpp"
#include "router/congestion_eval.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace laco;
  set_log_level(LogLevel::kInfo);

  GeneratorConfig gen;
  gen.name = "quickstart";
  gen.num_cells = argc > 1 ? std::atoi(argv[1]) : 2000;
  gen.num_macros = 3;
  gen.macro_area_fraction = 0.12;
  gen.seed = 42;
  Design design = generate_design(gen);
  std::cout << "generated design: " << to_string(compute_stats(design)) << "\n\n";

  // Bin resolution tracks the design size: a few cells per bin keeps the
  // overflow metric meaningful.
  const int bins = std::clamp(static_cast<int>(std::sqrt(gen.num_cells / 2.0)), 8, 64);
  GlobalPlacerOptions options;
  options.bin_nx = bins;
  options.bin_ny = bins;
  options.max_iterations = 400;
  options.target_overflow = 0.10;
  GlobalPlacer placer(design, options);
  const PlacementResult gp = placer.run();
  std::cout << "global placement: " << gp.iterations << " iterations, HPWL " << gp.final_hpwl
            << ", overflow " << gp.final_overflow << (gp.converged ? " (converged)" : "")
            << "\n";

  GlobalRouterConfig router;
  router.grid.nx = 32;
  router.grid.ny = 32;
  const PlacementEvaluation eval = evaluate_placement(design, router);
  std::cout << "after legalization + detailed placement: HPWL " << eval.hpwl
            << ", legality violations " << eval.legality_violations << "\n";
  std::cout << "global routing: WCS_H " << eval.wcs_h << ", WCS_V " << eval.wcs_v
            << ", routed wirelength " << eval.routed_wirelength << ", overflowed tracks H/V "
            << eval.routing.total_overflow_h << "/" << eval.routing.total_overflow_v << "\n";
  std::cout << "peak gcell congestion: " << eval.routing.congestion.max() << "\n";
  return 0;
}
