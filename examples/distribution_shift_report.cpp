// Analysis tool for the paper's motivating observation (Fig. 1): runs a
// plain global placement on any suite design and reports how the
// RUDY / PinRUDY / cell-location distributions drift relative to the
// final iteration, as KL divergences plus spread statistics.
//
//   ./distribution_shift_report [design] [scale] [iterations]
//       (defaults: des_perf_1 0.02 240)
#include <cstdlib>
#include <iostream>

#include "features/feature_stack.hpp"
#include "metrics/kl_divergence.hpp"
#include "netlist/ispd2015_suite.hpp"
#include "placer/global_placer.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace laco;
  set_log_level(LogLevel::kWarn);

  const std::string name = argc > 1 ? argv[1] : "des_perf_1";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.02;
  const int iterations = argc > 3 ? std::atoi(argv[3]) : 240;

  Design design = make_ispd2015_analog(name, scale);
  std::cout << "design " << name << " analog: " << design.num_movable()
            << " movable cells\n";

  const int grid = 16;
  FeatureExtractor extractor(FeatureConfig{grid, grid, QuasiVoxScheme::kWeightedSum, false});
  struct Sample {
    int iteration;
    GridMap rudy, pin_rudy, cells;
  };
  std::vector<Sample> samples;

  GlobalPlacerOptions options;
  options.bin_nx = 32;
  options.bin_ny = 32;
  options.max_iterations = iterations;
  options.min_iterations = iterations;  // run the full horizon for a clean curve
  options.target_overflow = 0.0;
  GlobalPlacer placer(design, options);
  const int stride = std::max(1, iterations / 20);
  placer.set_observer([&](const Design& d, const IterationStats& stats) {
    if (stats.iteration % stride != 0) return;
    FeatureFrame frame = extractor.compute(d);
    samples.push_back({stats.iteration, std::move(frame.rudy), std::move(frame.pin_rudy),
                       cell_location_histogram(d, grid, grid)});
  });
  placer.run();

  const Sample& final_sample = samples.back();
  Table table({"iteration", "KL(RUDY||final)", "KL(PinRUDY||final)", "KL(cells||final)"});
  for (const Sample& s : samples) {
    table.add_row({std::to_string(s.iteration),
                   Table::fmt(kl_divergence(s.rudy, final_sample.rudy), 4),
                   Table::fmt(kl_divergence(s.pin_rudy, final_sample.pin_rudy), 4),
                   Table::fmt(kl_divergence(s.cells, final_sample.cells), 4)});
  }
  std::cout << table.to_string();
  std::cout << "\nInterpretation: large KL at early/mid iterations is the distribution\n"
               "shift that breaks congestion models trained on end-of-placement features\n"
               "— the problem LACO's look-ahead mechanism mitigates.\n";
  return 0;
}
