// Trains the full LACO model stack from scratch and saves it to disk:
//   1. collect placement traces on a few ISPD-2015 analog designs;
//   2. train the look-ahead model g (multi-task: prediction + VAE losses);
//   3. train the congestion model f on g's look-ahead inputs;
//   4. report held-out congestion prediction quality (NRMS / SSIM);
//   5. save f, g, and the feature normalization for later runs.
//
//   ./train_lookahead [scale] [out_prefix]    (defaults 0.004, "laco_model")
#include <cstdlib>
#include <iostream>

#include "laco/pipeline.hpp"
#include "netlist/ispd2015_suite.hpp"
#include "nn/serialize.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace laco;
  set_log_level(LogLevel::kInfo);

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.004;
  const std::string prefix = argc > 2 ? argv[2] : "laco_model";

  PipelineConfig config = default_pipeline_config();
  config.scale = scale;
  config.runs_per_design = 2;
  Pipeline pipeline(config);

  const std::vector<std::string> train_designs{"des_perf_1", "des_perf_a", "fft_1", "fft_2"};
  const std::vector<std::string> test_designs{"pci_bridge32_b"};
  std::cout << "collecting training traces on " << train_designs.size() << " designs...\n";
  const auto& train_traces = pipeline.traces_for(train_designs);
  const auto& test_traces = pipeline.traces_for(test_designs);

  std::cout << "training Cell-flow+KL (full LACO) models...\n";
  const LacoModels models = pipeline.train_models(LacoScheme::kCellFlowKL, train_traces);
  std::cout << "  look-ahead parameters: " << models.lookahead->num_parameters() << "\n"
            << "  congestion parameters: " << models.congestion->num_parameters() << "\n";

  const PredictionQuality train_q = pipeline.evaluate_prediction(models, train_traces);
  const PredictionQuality test_q = pipeline.evaluate_prediction(models, test_traces);
  std::cout << "prediction quality (mid-placement vs final routed congestion):\n"
            << "  train: NRMS " << train_q.nrms << ", SSIM " << train_q.ssim << " ("
            << train_q.samples << " samples)\n"
            << "  test:  NRMS " << test_q.nrms << ", SSIM " << test_q.ssim << " ("
            << test_q.samples << " samples)\n";

  const std::string f_path = prefix + "_congestion.bin";
  const std::string g_path = prefix + "_lookahead.bin";
  const std::string s_hi = prefix + "_scale_hi.txt";
  const std::string s_lo = prefix + "_scale_lo.txt";
  if (!nn::save_parameters_file(*models.congestion, f_path) ||
      !nn::save_parameters_file(*models.lookahead, g_path) || !models.scale_hi.save(s_hi) ||
      !models.scale_lo.save(s_lo)) {
    std::cerr << "failed to save model files\n";
    return 1;
  }
  std::cout << "saved: " << f_path << ", " << g_path << ", " << s_hi << ", " << s_lo << "\n";
  return 0;
}
