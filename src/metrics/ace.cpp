#include "metrics/ace.hpp"

#include <algorithm>
#include <stdexcept>

namespace laco {

double ace(const GridMap& congestion, double top_fraction) {
  if (!(top_fraction > 0.0) || top_fraction > 1.0) {
    throw std::invalid_argument("ace: top_fraction must be in (0, 1]");
  }
  std::vector<double> values = congestion.data();
  if (values.empty()) return 0.0;
  const std::size_t count =
      std::max<std::size_t>(1, static_cast<std::size_t>(top_fraction * values.size()));
  std::partial_sort(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(count),
                    values.end(), std::greater<>());
  double sum = 0.0;
  for (std::size_t i = 0; i < count; ++i) sum += values[i];
  return sum / static_cast<double>(count);
}

AceProfile ace_profile(const GridMap& congestion) {
  return {ace(congestion, 0.005), ace(congestion, 0.01), ace(congestion, 0.02),
          ace(congestion, 0.05)};
}

}  // namespace laco
