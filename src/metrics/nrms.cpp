#include "metrics/nrms.hpp"

#include <cmath>
#include <stdexcept>

namespace laco {

double nrms(const GridMap& prediction, const GridMap& truth) {
  if (prediction.nx() != truth.nx() || prediction.ny() != truth.ny()) {
    throw std::invalid_argument("nrms: shape mismatch");
  }
  double se = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = prediction[i] - truth[i];
    se += d * d;
  }
  const double range = truth.max() - truth.min();
  if (range <= 1e-12) return std::sqrt(se / truth.size()) > 1e-12 ? 1.0 : 0.0;
  return std::sqrt(se) / (range * std::sqrt(static_cast<double>(truth.size())));
}

}  // namespace laco
