#include "metrics/kl_divergence.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace laco {

double kl_divergence(const GridMap& p, const GridMap& q, double eps) {
  if (p.nx() != q.nx() || p.ny() != q.ny()) {
    throw std::invalid_argument("kl_divergence: shape mismatch");
  }
  const std::size_t n = p.size();
  double sum_p = 0.0, sum_q = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_p += std::max(0.0, p[i]) + eps;
    sum_q += std::max(0.0, q[i]) + eps;
  }
  double kl = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pi = (std::max(0.0, p[i]) + eps) / sum_p;
    const double qi = (std::max(0.0, q[i]) + eps) / sum_q;
    kl += pi * std::log(pi / qi);
  }
  return kl;
}

GridMap cell_location_histogram(const Design& design, int nx, int ny) {
  GridMap hist(nx, ny, design.core(), 0.0);
  for (const CellId cid : design.movable_cells()) {
    const GridIndex b = hist.bin_of(design.cell(cid).center());
    hist.at(b.k, b.l) += 1.0;
  }
  return hist;
}

}  // namespace laco
