// ACE — Average Congestion of the top-x% most congested routing edges
// (Wei et al., "GLARE", DAC'12; the standard contest routability
// metric). Complements WCS (a max statistic) with tail averages that are
// less sensitive to a single outlier gcell.
#pragma once

#include <vector>

#include "gridmap/grid_map.hpp"

namespace laco {

/// ACE(x): mean of the top x-fraction of values (0 < x ≤ 1) of a
/// congestion/utilization map.
double ace(const GridMap& congestion, double top_fraction);

/// The customary profile ACE(0.5%), ACE(1%), ACE(2%), ACE(5%).
struct AceProfile {
  double ace_05 = 0.0;
  double ace_1 = 0.0;
  double ace_2 = 0.0;
  double ace_5 = 0.0;
};

AceProfile ace_profile(const GridMap& congestion);

}  // namespace laco
