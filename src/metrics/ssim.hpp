// Structural similarity, paper Eq. (20) — global-statistics form over
// the whole congestion map:
//   SSIM = (2 μY μŶ + C1)(2 σ_{Y,Ŷ} + C2) /
//          ((μY² + μŶ² + C1)(σY² + σŶ² + C2))
#pragma once

#include "gridmap/grid_map.hpp"

namespace laco {

struct SsimConstants {
  double c1 = 1e-4;
  double c2 = 9e-4;
};

double ssim(const GridMap& prediction, const GridMap& truth, const SsimConstants& c = {});

}  // namespace laco
