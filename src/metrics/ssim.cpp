#include "metrics/ssim.hpp"

#include <stdexcept>

namespace laco {

double ssim(const GridMap& prediction, const GridMap& truth, const SsimConstants& c) {
  if (prediction.nx() != truth.nx() || prediction.ny() != truth.ny()) {
    throw std::invalid_argument("ssim: shape mismatch");
  }
  const std::size_t n = truth.size();
  const double mu_p = prediction.mean();
  const double mu_t = truth.mean();
  double var_p = 0.0, var_t = 0.0, cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dp = prediction[i] - mu_p;
    const double dt = truth[i] - mu_t;
    var_p += dp * dp;
    var_t += dt * dt;
    cov += dp * dt;
  }
  var_p /= n;
  var_t /= n;
  cov /= n;
  return ((2.0 * mu_t * mu_p + c.c1) * (2.0 * cov + c.c2)) /
         ((mu_t * mu_t + mu_p * mu_p + c.c1) * (var_t + var_p + c.c2));
}

}  // namespace laco
