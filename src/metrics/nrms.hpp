// Normalized root-mean-square error, paper Eq. (19):
//   NRMS(Ŷ, Y) = ‖Ŷ − Y‖₂ / ((Y_max − Y_min)·√N_Y)
// the congestion-prediction accuracy metric of the ablation studies.
#pragma once

#include "gridmap/grid_map.hpp"

namespace laco {

/// NRMS of prediction vs ground truth; normalization uses the ground
/// truth's value range (returns 0 for a perfectly flat, matched truth).
double nrms(const GridMap& prediction, const GridMap& truth);

}  // namespace laco
