// Histogram KL divergence between spatial distributions — the Fig. 1(c)
// measurement: KL(p_i ‖ p_final) where p is the normalized distribution
// of RUDY, PinRUDY, or cell locations over the grid.
#pragma once

#include <vector>

#include "gridmap/grid_map.hpp"
#include "netlist/design.hpp"

namespace laco {

/// KL(p ‖ q) where p and q are the maps normalized to probability
/// distributions (non-negative entries, eps-smoothed).
double kl_divergence(const GridMap& p, const GridMap& q, double eps = 1e-9);

/// Cell-location occupancy histogram: movable-cell count per bin.
GridMap cell_location_histogram(const Design& design, int nx, int ny);

}  // namespace laco
