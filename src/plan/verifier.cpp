// Plan IR verifier implementation. Every check is pure inspection of
// the Plan's compiled tables; see verifier.hpp for the invariant
// catalogue and docs/PLAN.md for the IR itself.
#include "plan/verifier.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace laco::plan {

namespace {

std::int64_t shape_numel(const nn::Shape& shape) {
  std::int64_t n = 1;
  for (const std::int64_t d : shape) n *= d;
  return n;
}

bool default_verify_enabled() {
  if (const char* env = std::getenv("LACO_PLAN_VERIFY")) {
    return env[0] != '0';
  }
#if defined(LACO_PLAN_VERIFY) || !defined(NDEBUG)
  return true;
#else
  return false;
#endif
}

std::atomic<bool>& verify_flag() {
  static std::atomic<bool> enabled{default_verify_enabled()};
  return enabled;
}

}  // namespace

bool verify_enabled() { return verify_flag().load(std::memory_order_relaxed); }
void set_verify_enabled(bool enabled) {
  verify_flag().store(enabled, std::memory_order_relaxed);
}

std::string VerifyIssue::str() const {
  std::string out = check;
  if (node >= 0) out += "@node" + std::to_string(node);
  return out + ": " + detail;
}

std::string VerifyReport::str() const {
  std::string out;
  for (const VerifyIssue& issue : issues) {
    if (!out.empty()) out += '\n';
    out += "  " + issue.str();
  }
  return out;
}

/// Friend of Plan: the actual checks, reading private tables directly.
struct PlanVerifier {
  static VerifyReport run(const Plan& p) {
    VerifyReport r;
    const auto issue = [&](const char* check, int node, std::string detail) {
      r.issues.push_back(VerifyIssue{check, node, std::move(detail)});
    };
    const auto check = [&](bool ok, const char* check_id, int node,
                           const std::function<std::string()>& detail) {
      ++r.checks_run;
      if (!ok) issue(check_id, node, detail());
    };
    const int num_nodes = static_cast<int>(p.nodes_.size());

    // --- plan-level structure -----------------------------------------
    check(p.output_numel_ == shape_numel(p.output_shape_), "output-shape", -1, [&] {
      return "output_numel " + std::to_string(p.output_numel_) +
             " != numel(output_shape) " + std::to_string(shape_numel(p.output_shape_));
    });
    check(p.constant_ptrs_.size() == p.constants_.size(), "constant-table", -1, [&] {
      return "constant pointer table size " + std::to_string(p.constant_ptrs_.size()) +
             " != anchored constants " + std::to_string(p.constants_.size());
    });
    for (std::size_t ci = 0; ci < std::min(p.constants_.size(), p.constant_ptrs_.size());
         ++ci) {
      check(p.constants_[ci] != nullptr &&
                p.constant_ptrs_[ci] == p.constants_[ci]->data.data(),
            "constant-table", -1, [&] {
              return "constant " + std::to_string(ci) +
                     " pointer does not match its anchored storage (dangling constant)";
            });
    }

    // --- arena spans: bounds, def range, pairwise non-aliasing --------
    for (std::size_t si = 0; si < p.spans_.size(); ++si) {
      const ArenaSpan& s = p.spans_[si];
      check(s.offset + s.size <= p.arena_floats_, "arena-bounds", s.def, [&] {
        return "span [" + std::to_string(s.offset) + ", " +
               std::to_string(s.offset + s.size) + ") exceeds arena of " +
               std::to_string(p.arena_floats_) + " floats (truncated arena?)";
      });
      check(s.def >= 0 && s.def < num_nodes && s.last_use >= s.def &&
                s.last_use < num_nodes,
            "span-lifetime", s.def, [&] {
              return "span lifetime [" + std::to_string(s.def) + ", " +
                     std::to_string(s.last_use) + "] outside node range [0, " +
                     std::to_string(num_nodes) + ")";
            });
    }
    for (std::size_t a = 0; a < p.spans_.size(); ++a) {
      for (std::size_t b = a + 1; b < p.spans_.size(); ++b) {
        const ArenaSpan& sa = p.spans_[a];
        const ArenaSpan& sb = p.spans_[b];
        const bool lives_overlap = sa.def <= sb.last_use && sb.def <= sa.last_use;
        const bool bytes_overlap =
            sa.offset < sb.offset + sb.size && sb.offset < sa.offset + sa.size;
        check(!(lives_overlap && bytes_overlap), "arena-overlap", sa.def, [&] {
          return "simultaneously-live spans alias: [" + std::to_string(sa.offset) + ", " +
                 std::to_string(sa.offset + sa.size) + ") live [" + std::to_string(sa.def) +
                 ", " + std::to_string(sa.last_use) + "] vs [" + std::to_string(sb.offset) +
                 ", " + std::to_string(sb.offset + sb.size) + ") live [" +
                 std::to_string(sb.def) + ", " + std::to_string(sb.last_use) + "]";
        });
      }
    }

    // --- per-node bindings --------------------------------------------
    int output_writer = -1;
    int output_writers = 0;
    for (int ni = 0; ni < num_nodes; ++ni) {
      const PlanNode& node = p.nodes_[ni];
      check(static_cast<bool>(node.kernel), "kernel", ni,
            [&] { return std::string("op '") + node.op + "' has no replay kernel"; });
      for (std::size_t oi = 0; oi < node.inputs.size(); ++oi) {
        check_read(p, r, ni, static_cast<int>(oi), node.inputs[oi], output_writer);
      }
      const Binding& out = node.output;
      check(out.kind == BindKind::kArena || out.kind == BindKind::kOutput, "node-output",
            ni, [&] {
              return std::string("op '") + node.op +
                     "' writes a read-only or undefined binding";
            });
      if (out.kind == BindKind::kArena) {
        // The span defined by this node must exist at this offset —
        // shuffled node order breaks exactly this correspondence.
        const ArenaSpan* own = nullptr;
        for (const ArenaSpan& s : p.spans_) {
          if (s.def == ni) {
            own = &s;
            break;
          }
        }
        check(own != nullptr && own->offset == out.offset && own->size == out.numel,
              "topo-order", ni, [&] {
                return std::string("op '") + node.op + "' writes arena offset " +
                       std::to_string(out.offset) +
                       " but no span is defined by this node there (nodes reordered after "
                       "layout?)";
              });
      } else if (out.kind == BindKind::kOutput) {
        ++output_writers;
        if (output_writer < 0) output_writer = ni;
        check(static_cast<std::int64_t>(out.numel) == p.output_numel_, "binding-shape", ni,
              [&] {
                return "output write of " + std::to_string(out.numel) +
                       " floats into a buffer of " + std::to_string(p.output_numel_);
              });
      }
    }

    // --- output wiring -------------------------------------------------
    if (p.passthrough_) {
      check(output_writers == 0, "output-alias", -1, [&] {
        return "passthrough plan also has " + std::to_string(output_writers) +
               " node(s) writing the output buffer";
      });
      const Binding& src = p.passthrough_src_;
      check(src.kind == BindKind::kInput || src.kind == BindKind::kConstant,
            "output-alias", -1,
            [&] { return "passthrough source must be an input or constant"; });
      if (src.kind == BindKind::kInput) {
        check(src.index < p.input_shapes_.size() &&
                  shape_numel(p.input_shapes_[src.index]) == p.output_numel_,
              "binding-shape", -1, [&] {
                return "passthrough input " + std::to_string(src.index) +
                       " does not match the output element count";
              });
      } else if (src.kind == BindKind::kConstant) {
        check(src.index < p.constants_.size() &&
                  p.constants_[src.index] != nullptr &&
                  static_cast<std::int64_t>(p.constants_[src.index]->data.size()) ==
                      p.output_numel_,
              "binding-shape", -1, [&] {
                return "passthrough constant " + std::to_string(src.index) +
                       " does not match the output element count";
              });
      }
    } else {
      check(output_writers == 1, "output-alias", -1, [&] {
        return std::to_string(output_writers) +
               " nodes write the output buffer (exactly one must)";
      });
    }
    return r;
  }

  /// One operand read: index bounds, shape agreement, and — for arena
  /// reads — a covering span whose producer ran strictly earlier.
  static void check_read(const Plan& p, VerifyReport& r, int ni, int oi, const Binding& b,
                         int output_writer) {
    const auto issue = [&](const char* check_id, std::string detail) {
      r.issues.push_back(VerifyIssue{check_id, ni, std::move(detail)});
    };
    const auto where = [&] { return "operand " + std::to_string(oi); };
    switch (b.kind) {
      case BindKind::kUndefined:
        ++r.checks_run;  // nothing to validate: kernels null-check these
        break;
      case BindKind::kInput:
        ++r.checks_run;
        if (b.index >= p.input_shapes_.size()) {
          issue("binding-index", where() + ": input index " + std::to_string(b.index) +
                                     " out of range (" +
                                     std::to_string(p.input_shapes_.size()) + " inputs)");
        } else if (static_cast<std::int64_t>(b.numel) !=
                   shape_numel(p.input_shapes_[b.index])) {
          issue("binding-shape", where() + ": reads " + std::to_string(b.numel) +
                                     " floats from input " + std::to_string(b.index) +
                                     " of " +
                                     std::to_string(shape_numel(p.input_shapes_[b.index])));
        }
        break;
      case BindKind::kConstant:
        ++r.checks_run;
        if (b.index >= p.constants_.size() || p.constants_[b.index] == nullptr) {
          issue("binding-index", where() + ": constant index " + std::to_string(b.index) +
                                     " out of range (" +
                                     std::to_string(p.constants_.size()) + " constants)");
        } else if (b.numel != p.constants_[b.index]->data.size()) {
          issue("binding-shape", where() + ": reads " + std::to_string(b.numel) +
                                     " floats from constant " + std::to_string(b.index) +
                                     " of " +
                                     std::to_string(p.constants_[b.index]->data.size()));
        }
        break;
      case BindKind::kArena: {
        ++r.checks_run;
        const ArenaSpan* covering = nullptr;
        for (const ArenaSpan& s : p.spans_) {
          if (s.offset == b.offset && s.size == b.numel && s.def < ni && s.last_use >= ni) {
            covering = &s;
            break;
          }
        }
        if (covering == nullptr) {
          issue("liveness", where() + ": arena read at offset " + std::to_string(b.offset) +
                                " (" + std::to_string(b.numel) +
                                " floats) has no live span produced before this node");
        }
        break;
      }
      case BindKind::kOutput:
        ++r.checks_run;
        if (output_writer < 0 || output_writer >= ni) {
          issue("liveness",
                where() + ": reads the output buffer before any node has written it");
        }
        break;
    }
  }
};

VerifyReport verify(const Plan& plan) { return PlanVerifier::run(plan); }

}  // namespace laco::plan
