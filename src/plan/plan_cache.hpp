// Shape-keyed program cache for compiled inference plans, mirrored on
// serve::ModelRegistry's coalescing LRU (and tt-metal's program_cache
// keying-by-op-parameters idea): a plan is compiled at most once per
// (model identity, variant, input signature), concurrent requests for
// the same key wait on the in-flight compile, and the cache is LRU-
// bounded by plan count. Failed compiles (unsupported op in the
// trace) are negatively cached so the eager fallback never pays the
// trace cost twice. See docs/PLAN.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <vector>

#include "plan/plan.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace laco::plan {

/// Cache key: `identity` is the frozen network's address (the caller
/// passes a keep-alive anchor so the pointer can never be recycled
/// while the entry lives), `variant` disambiguates distinct traced
/// functions over one network (e.g. serve::ModelKind or a scheme tag),
/// `dims` is the flattened input-shape signature.
struct PlanKey {
  const void* identity = nullptr;
  int variant = 0;
  std::vector<int> dims;

  bool operator<(const PlanKey& o) const {
    if (identity != o.identity) return identity < o.identity;
    if (variant != o.variant) return variant < o.variant;
    return dims < o.dims;
  }
};

/// Flattened shape signature for PlanKey::dims: rank then extents per
/// input, so [2,3,8,8] and [2,3],[8,8] cannot collide.
std::vector<int> shape_signature(const std::vector<nn::Tensor>& inputs);

struct PlanCacheConfig {
  std::size_t max_plans = 64;  ///< LRU bound (compiled + negative entries)
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  ///< compiles attempted (including failures)
  std::uint64_t evictions = 0;
  std::uint64_t compile_failures = 0;
  std::size_t size = 0;  ///< resident entries
};

class PlanCache {
 public:
  explicit PlanCache(PlanCacheConfig config = {});

  using CompileFn = std::function<CompileResult()>;

  /// Returns the cached plan for `key`, compiling via `compile_fn` on
  /// first use (concurrent callers for one key coalesce onto a single
  /// compile). Returns nullptr when compilation failed — the failure
  /// is cached, and callers run the eager path. `anchor` keeps the
  /// model alive while the entry exists so `key.identity` can never
  /// be recycled into a different model (pointer ABA).
  std::shared_ptr<const Plan> get_or_compile(const PlanKey& key,
                                             std::shared_ptr<const void> anchor,
                                             const CompileFn& compile_fn) LACO_EXCLUDES(mutex_);

  /// Drops every entry whose key matches `identity` (model reloaded or
  /// evicted from the registry).
  void invalidate(const void* identity) LACO_EXCLUDES(mutex_);

  void clear() LACO_EXCLUDES(mutex_);

  PlanCacheStats stats() const LACO_EXCLUDES(mutex_);

  const PlanCacheConfig& config() const { return config_; }

 private:
  struct Entry {
    std::shared_ptr<const Plan> plan;  ///< null = negative (fallback) entry
    std::shared_ptr<const void> anchor;
    std::uint64_t last_used = 0;
  };

  void evict_locked() LACO_REQUIRES(mutex_);

  PlanCacheConfig config_;
  mutable Mutex mutex_;
  std::map<PlanKey, Entry> entries_ LACO_GUARDED_BY(mutex_);
  /// In-flight compiles, so concurrent gets of one key compile once.
  std::map<PlanKey, std::shared_future<std::shared_ptr<const Plan>>> pending_
      LACO_GUARDED_BY(mutex_);
  std::uint64_t tick_ LACO_GUARDED_BY(mutex_) = 0;
  PlanCacheStats stats_ LACO_GUARDED_BY(mutex_);
};

/// Process-wide cache shared by serve::Batcher forwards and
/// laco::CongestionPenalty; hung off serve::ModelRegistry (which
/// invalidates entries for evicted models).
PlanCache& shared_plan_cache();

/// Global plan-path switch (default on). `laco serve --no-plan` and
/// benches flip it; when off, integration points skip the cache and
/// run eagerly.
bool plans_enabled();
void set_plans_enabled(bool enabled);

}  // namespace laco::plan
