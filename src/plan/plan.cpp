// Workspace sizing and the allocating convenience wrapper around the
// allocation-free executor (src/plan/executor.cpp).
#include <stdexcept>

#include "obs/metrics.hpp"
#include "plan/plan.hpp"

namespace laco::plan {

namespace {
obs::Counter& executions_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter("plan.executions");
  return c;
}
}  // namespace

void Workspace::prepare(const Plan& plan) {
  if (arena_.size() < plan.arena_floats_) arena_.resize(plan.arena_floats_);
  if (operand_scratch_.size() < plan.max_operands_) operand_scratch_.resize(plan.max_operands_);
  if (input_scratch_.size() < plan.input_shapes_.size()) {
    input_scratch_.resize(plan.input_shapes_.size());
  }
}

nn::Tensor Plan::run(const std::vector<nn::Tensor>& inputs, Workspace& ws) const {
  if (inputs.size() != input_shapes_.size()) {
    throw std::invalid_argument("Plan::run: expected " + std::to_string(input_shapes_.size()) +
                                " inputs, got " + std::to_string(inputs.size()));
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!inputs[i].defined() || inputs[i].shape() != input_shapes_[i]) {
      throw std::invalid_argument("Plan::run: input " + std::to_string(i) +
                                  " shape mismatch (plans are shape-specialized; key cache "
                                  "lookups by shape)");
    }
  }
  ws.prepare(*this);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ws.input_scratch_[i] = inputs[i].data().data();
  }
  // The plan path's single per-forward allocation: the output tensor.
  nn::Tensor out = nn::Tensor::zeros(output_shape_);
  execute(ws.input_scratch_.data(), out.data().data(), ws);
  executions_counter().add();
  return out;
}

}  // namespace laco::plan
