// Plan compiler: traces a tensor function once, classifies every
// TensorImpl the trace touched (input / constant / intermediate),
// runs a liveness pass over the node list and packs intermediates
// into one arena with first-fit free-list reuse. See docs/PLAN.md.
#include <algorithm>
#include <exception>
#include <map>
#include <utility>

#include "obs/metrics.hpp"
#include "plan/plan.hpp"
#include "plan/verifier.hpp"
#include "util/check.hpp"

namespace laco::plan {

namespace {

/// Arena offsets are rounded to 16 floats (64 bytes, a cache line) so
/// kernels never share a line across concurrently-written buffers.
constexpr std::size_t kAlignFloats = 16;

std::size_t align_up(std::size_t n) { return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats; }

struct TraceRecord {
  const char* op;
  std::vector<std::shared_ptr<nn::TensorImpl>> inputs;
  std::shared_ptr<nn::TensorImpl> output;
  nn::OpKernel kernel;
};

/// Collects the op stream plus the set of all op outputs, so the
/// compiler can detect "holes": tensors produced by ops with no
/// replay kernel.
class RecordingSink final : public nn::OpTraceSink {
 public:
  void note_output(const std::shared_ptr<nn::TensorImpl>& out) override {
    noted_.push_back(out.get());
  }

  void record_op(const char* op, std::vector<std::shared_ptr<nn::TensorImpl>> inputs,
                 const std::shared_ptr<nn::TensorImpl>& out, nn::OpKernel kernel) override {
    records_.push_back(TraceRecord{op, std::move(inputs), out, std::move(kernel)});
  }

  std::vector<TraceRecord> records_;
  std::vector<const nn::TensorImpl*> noted_;
};

/// First-fit free list over arena blocks, coalescing on release.
class ArenaAllocator {
 public:
  std::size_t allocate(std::size_t floats) {
    const std::size_t want = align_up(floats);
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].size >= want) {
        const std::size_t off = free_[i].offset;
        free_[i].offset += want;
        free_[i].size -= want;
        if (free_[i].size == 0) free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
        return off;
      }
    }
    const std::size_t off = end_;
    end_ += want;
    return off;
  }

  void release(std::size_t offset, std::size_t floats) {
    free_.push_back({offset, align_up(floats)});
    std::sort(free_.begin(), free_.end(),
              [](const Block& a, const Block& b) { return a.offset < b.offset; });
    for (std::size_t i = 0; i + 1 < free_.size();) {
      if (free_[i].offset + free_[i].size == free_[i + 1].offset) {
        free_[i].size += free_[i + 1].size;
        free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      } else {
        ++i;
      }
    }
  }

  std::size_t high_water() const { return end_; }

 private:
  struct Block {
    std::size_t offset;
    std::size_t size;
  };
  std::vector<Block> free_;
  std::size_t end_ = 0;
};

struct ValueInfo {
  enum Kind { kInput, kConstant, kIntermediate } kind = kIntermediate;
  std::uint32_t index = 0;   ///< input/constant index
  std::size_t size = 0;      ///< floats
  int def = -1;              ///< producing node (intermediates)
  int last_use = -1;         ///< last reading node
  std::size_t offset = 0;    ///< arena offset (intermediates)
  bool is_output = false;
};

}  // namespace

/// Private-access builder: assembles Plan fields (friend of Plan).
struct PlanBuilder {
  static CompileResult build(const TracedFn& fn, const std::vector<nn::Tensor>& example_inputs);
};

CompileResult PlanBuilder::build(const TracedFn& fn,
                                 const std::vector<nn::Tensor>& example_inputs) {
  CompileResult result;

  RecordingSink sink;
  nn::Tensor traced;
  {
    nn::NoGradGuard no_grad;
    nn::OpTraceScope scope(&sink);
    try {
      traced = fn(example_inputs);
    } catch (const std::exception& e) {
      result.error = std::string("plan: traced fn threw: ") + e.what();
      return result;
    }
  }
  if (!traced.defined()) {
    result.error = "plan: traced fn returned an undefined tensor";
    return result;
  }
  result.traced_output = traced;

  // Hole detection: every tensor an op produced must belong to a
  // recorded (replayable) node, or the plan would silently skip work.
  {
    std::map<const nn::TensorImpl*, bool> recorded;
    for (const TraceRecord& r : sink.records_) recorded[r.output.get()] = true;
    for (const nn::TensorImpl* impl : sink.noted_) {
      if (!recorded.count(impl)) {
        result.error = "plan: trace contains an op without replay support (unsupported op)";
        return result;
      }
    }
  }

  auto plan = std::make_shared<Plan>();

  // Classify every impl the trace touched.
  std::map<const nn::TensorImpl*, ValueInfo> values;
  for (std::size_t i = 0; i < example_inputs.size(); ++i) {
    const nn::Tensor& t = example_inputs[i];
    if (!t.defined()) {
      result.error = "plan: undefined example input";
      return result;
    }
    ValueInfo v;
    v.kind = ValueInfo::kInput;
    v.index = static_cast<std::uint32_t>(i);
    v.size = t.data().size();
    values[t.impl().get()] = v;
    plan->input_shapes_.push_back(t.shape());
  }

  const auto classify_operand = [&](const std::shared_ptr<nn::TensorImpl>& impl) -> ValueInfo& {
    auto it = values.find(impl.get());
    if (it != values.end()) return it->second;
    // First sighting and not an op output: a captured constant
    // (frozen weight / precomputed buffer). Anchor it for the plan's
    // lifetime.
    ValueInfo v;
    v.kind = ValueInfo::kConstant;
    v.index = static_cast<std::uint32_t>(plan->constants_.size());
    v.size = impl->data.size();
    plan->constants_.push_back(impl);
    plan->constant_ptrs_.push_back(impl->data.data());
    return values.emplace(impl.get(), v).first->second;
  };

  // Walk the records (already in execution = topological order),
  // registering nodes and computing liveness.
  for (std::size_t ni = 0; ni < sink.records_.size(); ++ni) {
    TraceRecord& rec = sink.records_[ni];
    PlanNode node;
    node.op = rec.op;
    node.kernel = std::move(rec.kernel);
    node.inputs.reserve(rec.inputs.size());
    for (const auto& in : rec.inputs) {
      if (!in) {
        node.inputs.push_back(Binding{BindKind::kUndefined, 0, 0, 0});
        continue;
      }
      ValueInfo& v = classify_operand(in);
      if (v.kind == ValueInfo::kIntermediate && v.def < 0) {
        result.error = "plan: node reads a tensor produced after it (non-topological trace)";
        return result;
      }
      v.last_use = static_cast<int>(ni);
      Binding b;
      switch (v.kind) {
        case ValueInfo::kInput:
          b = Binding{BindKind::kInput, v.index, 0, v.size};
          break;
        case ValueInfo::kConstant:
          b = Binding{BindKind::kConstant, v.index, 0, v.size};
          break;
        case ValueInfo::kIntermediate:
          // Offset patched after the liveness pass below.
          b = Binding{BindKind::kArena, 0, 0, v.size};
          break;
      }
      node.inputs.push_back(b);
    }
    plan->max_operands_ = std::max(plan->max_operands_, node.inputs.size());

    ValueInfo out_v;
    out_v.kind = ValueInfo::kIntermediate;
    out_v.size = rec.output->data.size();
    out_v.def = static_cast<int>(ni);
    out_v.last_use = static_cast<int>(ni);
    if (values.count(rec.output.get())) {
      result.error = "plan: op output aliases an existing tensor";
      return result;
    }
    values[rec.output.get()] = out_v;
    plan->nodes_.push_back(std::move(node));
  }

  // The returned value: either a node output (bound straight to the
  // caller's output buffer) or a passthrough of an input/constant.
  {
    auto it = values.find(traced.impl().get());
    if (it == values.end()) {
      // fn returned a tensor created outside the trace: capture it as
      // a constant and copy it out on every execution.
      ValueInfo& v = classify_operand(traced.impl());
      plan->passthrough_ = true;
      plan->passthrough_src_ = Binding{BindKind::kConstant, v.index, 0, v.size};
    } else if (it->second.kind != ValueInfo::kIntermediate) {
      plan->passthrough_ = true;
      plan->passthrough_src_ =
          it->second.kind == ValueInfo::kInput
              ? Binding{BindKind::kInput, it->second.index, 0, it->second.size}
              : Binding{BindKind::kConstant, it->second.index, 0, it->second.size};
    } else {
      it->second.is_output = true;
    }
  }
  plan->output_shape_ = traced.shape();
  plan->output_numel_ = traced.numel();

  // Liveness/offset pass: walk nodes in order, placing each
  // intermediate output with first-fit reuse and releasing buffers at
  // their last use. The output value never lands in the arena — it is
  // bound directly to the caller's buffer.
  {
    // def-node -> impl of the value it produces (reverse index).
    std::vector<const nn::TensorImpl*> def_impl(plan->nodes_.size(), nullptr);
    for (const auto& [impl, v] : values) {
      if (v.kind == ValueInfo::kIntermediate && v.def >= 0) {
        def_impl[static_cast<std::size_t>(v.def)] = impl;
      }
    }
    ArenaAllocator arena;
    for (std::size_t ni = 0; ni < plan->nodes_.size(); ++ni) {
      const nn::TensorImpl* out_impl = def_impl[ni];
      LACO_CHECK(out_impl != nullptr);
      ValueInfo& out_v = values[out_impl];
      if (out_v.is_output) {
        plan->nodes_[ni].output = Binding{BindKind::kOutput, 0, 0, out_v.size};
      } else {
        out_v.offset = arena.allocate(out_v.size);
        plan->nodes_[ni].output = Binding{BindKind::kArena, 0, out_v.offset, out_v.size};
        plan->spans_.push_back(ArenaSpan{out_v.offset, out_v.size, out_v.def, out_v.last_use});
      }
      // Patch this node's arena operand offsets (their producers ran
      // earlier, so offsets are final by now).
      {
        const TraceRecord& rec = sink.records_[ni];
        PlanNode& node = plan->nodes_[ni];
        for (std::size_t oi = 0; oi < node.inputs.size(); ++oi) {
          if (node.inputs[oi].kind != BindKind::kArena) continue;
          const ValueInfo& v = values[rec.inputs[oi].get()];
          if (v.is_output) {
            node.inputs[oi] = Binding{BindKind::kOutput, 0, 0, v.size};
          } else {
            node.inputs[oi].offset = v.offset;
          }
        }
      }
      // Release buffers whose last use is this node (inputs that die
      // here, and this output if nothing ever reads it).
      for (const auto& in : sink.records_[ni].inputs) {
        if (!in) continue;
        const ValueInfo& v = values[in.get()];
        if (v.kind == ValueInfo::kIntermediate && !v.is_output &&
            v.last_use == static_cast<int>(ni) && v.def != static_cast<int>(ni)) {
          arena.release(v.offset, v.size);
        }
      }
      if (!out_v.is_output && out_v.last_use == static_cast<int>(ni)) {
        arena.release(out_v.offset, out_v.size);
      }
    }
    plan->arena_floats_ = arena.high_water();
  }

  // Fix the spans' last_use for values read by later nodes (the map
  // entries were final, but spans_ were pushed at def time with the
  // then-current last_use — refresh from the final table).
  for (ArenaSpan& span : plan->spans_) {
    for (const auto& [impl, v] : values) {
      if (v.kind == ValueInfo::kIntermediate && v.def == span.def) {
        span.last_use = v.last_use;
        break;
      }
    }
  }

  // Observability: arena high-water mark across all compiled plans.
  obs::MetricRegistry::global().gauge("plan.arena_bytes").record_max(
      static_cast<double>(plan->arena_floats_ * sizeof(float)));

  // Post-compile verification (Debug / -DLACO_PLAN_VERIFY builds, see
  // src/plan/verifier.hpp): a plan that fails its own static checks is
  // dropped with a diagnostic, so callers fall back to the eager path
  // instead of executing a miscompiled node list. Compile-time only —
  // Release execution latency is untouched.
  if (verify_enabled()) {
    auto& metrics = obs::MetricRegistry::global();
    metrics.counter("plan.verify.runs").add(1);
    const VerifyReport report = verify(*plan);
    if (!report.ok()) {
      metrics.counter("plan.verify.failures").add(1);
      metrics.counter("plan.verify.issues").add(report.issues.size());
      result.error = "plan: verifier rejected compiled plan:\n" + report.str();
      return result;
    }
  }

  result.plan = std::move(plan);
  return result;
}

CompileResult compile(const TracedFn& fn, const std::vector<nn::Tensor>& example_inputs) {
  return PlanBuilder::build(fn, example_inputs);
}

}  // namespace laco::plan
