// Plan executor — THE hot path of the serving and penalty inner
// loops. This translation unit must stay allocation-free: no Tensor
// factories, no make_shared/make_unique, no container growth
// (push_back/emplace_back/resize/reserve). laco-lint enforces this
// with the `plan-hot-alloc` rule; preallocation belongs in
// Workspace::prepare (src/plan/plan.cpp).
#include <cstring>

#include "plan/plan.hpp"
#include "util/check.hpp"

namespace laco::plan {

namespace {

inline const float* resolve_read(const Binding& b, const float* const* inputs,
                                 const float* const* constants, const float* arena,
                                 const float* output) {
  switch (b.kind) {
    case BindKind::kUndefined:
      return nullptr;
    case BindKind::kInput:
      return inputs[b.index];
    case BindKind::kConstant:
      return constants[b.index];
    case BindKind::kArena:
      return arena + b.offset;
    case BindKind::kOutput:
      return output;
  }
  return nullptr;
}

}  // namespace

void Plan::execute(const float* const* inputs, float* output, Workspace& ws) const {
  LACO_CHECK(ws.arena_.size() >= arena_floats_);
  LACO_CHECK(ws.operand_scratch_.size() >= max_operands_);
  float* arena = ws.arena_.data();
  const float** operands = ws.operand_scratch_.data();
  const float* const* constants = constant_ptrs_.data();

  for (const PlanNode& node : nodes_) {
    const std::size_t n_in = node.inputs.size();
    for (std::size_t i = 0; i < n_in; ++i) {
      operands[i] = resolve_read(node.inputs[i], inputs, constants, arena, output);
    }
    float* dst = node.output.kind == BindKind::kOutput ? output : arena + node.output.offset;
    node.kernel(operands, dst);
  }

  if (passthrough_) {
    const float* src = resolve_read(passthrough_src_, inputs, constants, arena, output);
    LACO_CHECK(src != nullptr);
    std::memcpy(output, src, static_cast<std::size_t>(output_numel_) * sizeof(float));
  }
}

}  // namespace laco::plan
