// Compiled inference plans for frozen models (docs/PLAN.md).
//
// A Plan is the result of tracing a tensor function once on example
// inputs: a topologically ordered list of op kernels with static
// argument bindings, plus a liveness-packed arena layout for every
// intermediate. Executing a plan replays the kernels against a
// caller-owned Workspace arena — no autograd bookkeeping, no dynamic
// dispatch through the Tensor graph, and (after the first call sized
// the workspace) no allocations. Kernels are the same code the eager
// ops run (nn/op_trace.hpp), so plan execution is bitwise-equal to
// the eager forward.
//
// Threading: a Plan is immutable after compile() and may be executed
// concurrently from many threads, each with its own Workspace. The
// traced model's weights are captured as constants by shared_ptr, so
// a Plan keeps them alive; the usual frozen-weights contract
// (nn/tensor.hpp) applies.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/op_trace.hpp"
#include "nn/tensor.hpp"

namespace laco::plan {

/// Where a node operand or result lives at execution time.
enum class BindKind : std::uint8_t {
  kUndefined,  ///< optional operand that was an undefined Tensor (nullptr)
  kInput,      ///< caller-provided input tensor `index`
  kConstant,   ///< frozen weight/buffer captured at compile time
  kArena,      ///< intermediate at `offset` floats into the workspace arena
  kOutput,     ///< the caller-provided output buffer
};

struct Binding {
  BindKind kind = BindKind::kUndefined;
  std::uint32_t index = 0;  ///< input index (kInput) or constant index (kConstant)
  std::size_t offset = 0;   ///< arena offset in floats (kArena)
  /// Element count of the bound buffer, recorded at compile time from
  /// the traced tensor. Not needed to execute (kernels know their
  /// shapes); the plan verifier checks it against what the binding
  /// points at (src/plan/verifier.hpp).
  std::size_t numel = 0;
};

struct PlanNode {
  const char* op = "";  ///< op name; string literal owned by the op's TU
  nn::OpKernel kernel;
  std::vector<Binding> inputs;
  Binding output;
};

/// Debug/test view of one arena-resident intermediate's lifetime.
struct ArenaSpan {
  std::size_t offset = 0;  ///< floats
  std::size_t size = 0;    ///< floats (unpadded)
  int def = 0;             ///< node index that writes this buffer
  int last_use = 0;        ///< last node index that reads it (== def if unread)
};

class Plan;

/// Per-thread scratch for plan execution: the arena plus pointer
/// tables. Not thread-safe — each executing thread owns one and may
/// reuse it across plans; prepare() grows storage outside the hot
/// path so Plan::execute never allocates.
class Workspace {
 public:
  /// Ensures capacity for `plan`. Idempotent and cheap when already
  /// large enough.
  void prepare(const Plan& plan);

  std::size_t arena_floats() const { return arena_.size(); }

 private:
  friend class Plan;
  std::vector<float> arena_;
  std::vector<const float*> operand_scratch_;
  std::vector<const float*> input_scratch_;
};

class Plan {
 public:
  std::size_t num_inputs() const { return input_shapes_.size(); }
  const std::vector<nn::Shape>& input_shapes() const { return input_shapes_; }
  const nn::Shape& output_shape() const { return output_shape_; }
  std::int64_t output_numel() const { return output_numel_; }
  std::size_t num_nodes() const { return nodes_.size(); }
  /// Arena size in floats (sum of live intermediate peaks, not of all
  /// intermediates — the liveness pass reuses dead buffers).
  std::size_t arena_floats() const { return arena_floats_; }
  /// Test/debug introspection of the arena layout.
  const std::vector<ArenaSpan>& arena_spans() const { return spans_; }

  /// Hot path (src/plan/executor.cpp — allocation-free, lint-gated):
  /// replays the node list. `inputs` must hold num_inputs() pointers
  /// whose tensors match input_shapes(); `output` must have room for
  /// output_numel() floats; `ws` must be prepare()d for this plan.
  void execute(const float* const* inputs, float* output, Workspace& ws) const;

  /// Convenience wrapper: validates shapes, prepares `ws`, allocates
  /// the output tensor (the plan path's only per-forward allocation)
  /// and runs execute(). Increments the `plan.executions` counter.
  nn::Tensor run(const std::vector<nn::Tensor>& inputs, Workspace& ws) const;

 private:
  friend class Workspace;
  friend struct PlanBuilder;   // compiler.cpp
  friend struct PlanVerifier;  // verifier.cpp (read-only checks)
  friend struct PlanSurgeon;   // verifier.hpp (test-only corruption)

  std::vector<PlanNode> nodes_;
  /// Keep-alive anchors for captured weights/buffers, parallel to
  /// constant_ptrs_ (which execute() indexes).
  std::vector<std::shared_ptr<const nn::TensorImpl>> constants_;
  std::vector<const float*> constant_ptrs_;
  std::vector<nn::Shape> input_shapes_;
  nn::Shape output_shape_;
  std::int64_t output_numel_ = 0;
  std::size_t arena_floats_ = 0;
  std::size_t max_operands_ = 0;
  /// When the traced fn returned an input or constant verbatim, the
  /// node list may be empty and the result is copied from here.
  bool passthrough_ = false;
  Binding passthrough_src_;
  std::vector<ArenaSpan> spans_;
};

/// A tensor function of explicit inputs, e.g. a frozen Module forward.
using TracedFn = std::function<nn::Tensor(const std::vector<nn::Tensor>&)>;

struct CompileResult {
  std::shared_ptr<const Plan> plan;  ///< null when compilation fell back
  std::string error;                 ///< reason when plan == nullptr
  nn::Tensor traced_output;          ///< eager output of the tracing run
};

/// Traces `fn` once on `example_inputs` (under nn::NoGradGuard) and
/// compiles the recorded ops into a Plan. Returns a null plan with a
/// diagnostic when the trace contains an op without replay support
/// (callers fall back to eager execution), or when `fn` throws a
/// std::exception.
CompileResult compile(const TracedFn& fn, const std::vector<nn::Tensor>& example_inputs);

}  // namespace laco::plan
