// Plan IR verifier (docs/PLAN.md): a static checker over a compiled
// Plan that proves, without executing it, that
//
//   - structure: every binding index is in range, every kernel is
//     callable, constants are anchored and their pointer table is
//     consistent;
//   - shapes: every binding's element count matches what it points at
//     (input shape, constant storage, arena span, output buffer);
//   - topo/liveness: every arena read is covered by a span whose
//     producer ran strictly earlier and whose lifetime extends to the
//     reader — shuffled node order is rejected here;
//   - non-aliasing: no two simultaneously-live arena spans overlap in
//     bytes, and spans never extend past the arena end (truncated
//     arenas are rejected here);
//   - output: exactly one node writes the caller's output buffer (or a
//     valid passthrough source), and nothing reads it before that.
//
// The compiler runs the verifier after every compile when
// verify_enabled() — the default in Debug and -DLACO_PLAN_VERIFY=ON
// (CI) builds — and drops the plan with a diagnostic on failure, so a
// miscompiled plan falls back to eager execution instead of reading
// stale floats. Release plan *execution* is untouched: verification
// happens at compile time only. Metrics: plan.verify.runs /
// plan.verify.failures / plan.verify.issues. Offline: `laco
// plan-verify`. Tests corrupt plans through PlanSurgeon below.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "plan/plan.hpp"

namespace laco::plan {

struct VerifyIssue {
  std::string check;   ///< stable id, e.g. "topo-order", "arena-overlap"
  int node = -1;       ///< offending node index, -1 for plan-level issues
  std::string detail;

  /// "check@node: detail" (node omitted when -1).
  std::string str() const;
};

struct VerifyReport {
  std::vector<VerifyIssue> issues;
  int checks_run = 0;  ///< individual assertions evaluated

  bool ok() const { return issues.empty(); }
  /// Multi-line human-readable rendering of all issues.
  std::string str() const;
};

/// Runs every check against `plan`. Pure: no side effects on the plan,
/// no metrics (callers record those).
VerifyReport verify(const Plan& plan);

/// Whether PlanBuilder verifies each plan post-compile. Defaults to on
/// when NDEBUG is not defined or the build sets LACO_PLAN_VERIFY; the
/// LACO_PLAN_VERIFY environment variable ("0"/"1") overrides at
/// startup. Thread-safe.
bool verify_enabled();
void set_verify_enabled(bool enabled);

/// Test-only mutable access to a Plan's internals (friend of Plan), so
/// property tests can hand-corrupt a compiled plan and assert the
/// verifier rejects it. Never used outside tests.
struct PlanSurgeon {
  static Plan copy(const Plan& plan) { return plan; }
  static std::vector<PlanNode>& nodes(Plan& plan) { return plan.nodes_; }
  static std::vector<ArenaSpan>& spans(Plan& plan) { return plan.spans_; }
  static std::size_t& arena_floats(Plan& plan) { return plan.arena_floats_; }
  static std::int64_t& output_numel(Plan& plan) { return plan.output_numel_; }
  static bool& passthrough(Plan& plan) { return plan.passthrough_; }
  static Binding& passthrough_src(Plan& plan) { return plan.passthrough_src_; }
  static std::vector<const float*>& constant_ptrs(Plan& plan) { return plan.constant_ptrs_; }
};

}  // namespace laco::plan
