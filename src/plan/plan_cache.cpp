#include "plan/plan_cache.hpp"

#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace laco::plan {

namespace {

std::atomic<bool> g_plans_enabled{true};

struct CacheMetrics {
  obs::Counter& hits = obs::MetricRegistry::global().counter("plan.cache.hits");
  obs::Counter& misses = obs::MetricRegistry::global().counter("plan.cache.misses");
  obs::Counter& evictions = obs::MetricRegistry::global().counter("plan.cache.evictions");
  obs::Counter& compile_failures =
      obs::MetricRegistry::global().counter("plan.compile.failures");
  obs::Gauge& size = obs::MetricRegistry::global().gauge("plan.cache.size");
  obs::Histogram& compile_ms = obs::MetricRegistry::global().histogram("plan.compile_ms");
};

CacheMetrics& metrics() {
  static CacheMetrics m;
  return m;
}

}  // namespace

std::vector<int> shape_signature(const std::vector<nn::Tensor>& inputs) {
  std::vector<int> dims;
  for (const nn::Tensor& t : inputs) {
    dims.push_back(static_cast<int>(t.shape().size()));
    for (const int d : t.shape()) dims.push_back(d);
  }
  return dims;
}

PlanCache::PlanCache(PlanCacheConfig config) : config_(config) {}

std::shared_ptr<const Plan> PlanCache::get_or_compile(const PlanKey& key,
                                                      std::shared_ptr<const void> anchor,
                                                      const CompileFn& compile_fn) {
  MutexLock lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    it->second.last_used = ++tick_;
    metrics().hits.add();
    return it->second.plan;  // may be null: cached fallback decision
  }
  const auto pending_it = pending_.find(key);
  if (pending_it != pending_.end()) {
    // A coalesced wait counts as a hit: someone else's compile serves
    // this caller, so hits + misses == lookups holds.
    ++stats_.hits;
    metrics().hits.add();
    auto future = pending_it->second;
    lock.unlock();
    // Coalesced wait; compile failures surface as a null plan, never
    // an exception, so no rethrow path is needed here.
    return future.get();
  }

  // Become the compiler for this key.
  std::promise<std::shared_ptr<const Plan>> promise;
  pending_.emplace(key, promise.get_future().share());
  ++stats_.misses;
  metrics().misses.add();
  lock.unlock();

  const auto start = std::chrono::steady_clock::now();
  CompileResult compiled = compile_fn();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  metrics().compile_ms.observe(elapsed_ms);
  if (!compiled.plan) {
    metrics().compile_failures.add();
    LACO_LOG_WARN << "plan: compile failed, caching eager fallback: " << compiled.error;
  }

  lock.lock();
  if (!compiled.plan) ++stats_.compile_failures;
  Entry entry;
  entry.plan = compiled.plan;
  entry.anchor = std::move(anchor);
  entry.last_used = ++tick_;
  entries_[key] = std::move(entry);
  evict_locked();
  stats_.size = entries_.size();
  metrics().size.set(static_cast<double>(entries_.size()));
  pending_.erase(key);
  lock.unlock();
  promise.set_value(compiled.plan);
  return compiled.plan;
}

void PlanCache::invalidate(const void* identity) {
  MutexLock lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.identity == identity) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.size = entries_.size();
  metrics().size.set(static_cast<double>(entries_.size()));
}

void PlanCache::clear() {
  MutexLock lock(mutex_);
  entries_.clear();
  stats_.size = 0;
  metrics().size.set(0.0);
}

PlanCacheStats PlanCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void PlanCache::evict_locked() {
  while (entries_.size() > config_.max_plans) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    entries_.erase(victim);
    ++stats_.evictions;
    metrics().evictions.add();
  }
}

PlanCache& shared_plan_cache() {
  static PlanCache cache;
  return cache;
}

bool plans_enabled() { return g_plans_enabled.load(std::memory_order_relaxed); }
void set_plans_enabled(bool enabled) {
  g_plans_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace laco::plan
