// Seeded random number generation. Every stochastic component (netlist
// generator, placer initialization, trainers) takes an Rng so the whole
// pipeline is reproducible from a single seed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace laco {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1ac0ull) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }
  /// Gaussian with given mean / stddev.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  /// Bernoulli trial.
  bool flip(double p = 0.5) {
    return std::bernoulli_distribution(p)(engine_);
  }
  /// Samples an index from unnormalized non-negative weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  template <typename It>
  void shuffle(It first, It last) {
    std::shuffle(first, last, engine_);
  }

  /// Derives an independent child stream (for parallel-safe decomposition).
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace laco
