// Deterministic fault injection for chaos testing. A failpoint is a
// named hook compiled into a code path (LACO_FAILPOINT("serve.forward"))
// that normally does nothing; tests, the chaos CLI, or the
// LACO_FAILPOINTS environment variable arm it with a mode:
//
//   error  — throw FailpointError (a TransientError, so retry/fallback
//            paths exercise their real recovery logic)
//   delay  — sleep delay_ms (latency injection: deadlines, backpressure)
//   crash  — abort the process (crash-the-worker drills)
//
// Firing is DETERMINISTIC: each armed point keeps an evaluation
// counter, and evaluation n fires iff hash(seed, n) < probability. The
// same seed always yields the same fire pattern, so a chaos failure
// reproduces exactly — no wall clock, no global RNG.
//
// Hook sites compile to a no-op statement unless the build defines
// LACO_FAILPOINTS (CMake -DLACO_FAILPOINTS=ON; the chaos CI job). The
// registry API itself is always compiled so tests and tooling link in
// every configuration. The catalog of hook sites lives in
// docs/RELIABILITY.md.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/errors.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace laco {

enum class FailpointMode { kOff, kError, kDelay, kCrash };

const char* to_string(FailpointMode mode);

struct FailpointSpec {
  FailpointMode mode = FailpointMode::kOff;
  double probability = 1.0;      ///< chance each evaluation fires, in [0, 1]
  std::uint64_t seed = 0x1ac0;   ///< fire pattern is a pure function of this
  double delay_ms = 1.0;         ///< sleep length for kDelay fires
};

struct FailpointStats {
  std::uint64_t evaluations = 0;  ///< times the armed hook was reached
  std::uint64_t fires = 0;        ///< times it actually fired
};

/// Thrown by a fired `error` failpoint. Derives TransientError so the
/// serving retry policy treats injected faults as retryable.
class FailpointError : public TransientError {
 public:
  explicit FailpointError(const std::string& name)
      : TransientError("failpoint '" + name + "' fired"), name_(name) {}
  const std::string& failpoint() const { return name_; }

 private:
  std::string name_;
};

/// Process-wide failpoint table. Thread-safe: hooks evaluate under the
/// registry mutex, and the blocking/throwing action happens after the
/// lock is released.
class FailpointRegistry {
 public:
  static FailpointRegistry& instance();

  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  void arm(const std::string& name, FailpointSpec spec) LACO_EXCLUDES(mutex_);
  void disarm(const std::string& name) LACO_EXCLUDES(mutex_);
  void disarm_all() LACO_EXCLUDES(mutex_);

  /// Hook-site entry point (use the LACO_FAILPOINT macro, not this).
  /// Deterministically decides from (seed, per-name counter) whether to
  /// fire; unarmed names return immediately.
  void evaluate(const char* name) LACO_EXCLUDES(mutex_);

  FailpointStats stats(const std::string& name) const LACO_EXCLUDES(mutex_);
  std::vector<std::string> armed() const LACO_EXCLUDES(mutex_);

  /// Arms points from a spec string:
  ///   name=mode[:prob[:seed[:delay_ms]]][,name=mode...]
  /// e.g. "serve.forward=error:0.1:42,registry.load=delay:1:7:5".
  /// Returns the number of points armed; throws std::invalid_argument
  /// on a malformed spec.
  int configure_from_spec(const std::string& spec) LACO_EXCLUDES(mutex_);

  /// configure_from_spec(getenv("LACO_FAILPOINTS")); 0 when unset.
  int configure_from_env() LACO_EXCLUDES(mutex_);

 private:
  struct Point {
    FailpointSpec spec;
    FailpointStats stats;
  };

  FailpointRegistry() = default;

  mutable Mutex mutex_;
  std::map<std::string, Point> points_ LACO_GUARDED_BY(mutex_);
};

/// Whether LACO_FAILPOINT hook sites are active in this build.
constexpr bool failpoints_compiled_in() {
#ifdef LACO_FAILPOINTS
  return true;
#else
  return false;
#endif
}

}  // namespace laco

#ifdef LACO_FAILPOINTS
#define LACO_FAILPOINT(name) ::laco::FailpointRegistry::instance().evaluate(name)
#else
/// Hook sites vanish entirely outside chaos builds: no lookup, no lock.
#define LACO_FAILPOINT(name) \
  do {                       \
  } while (0)
#endif
