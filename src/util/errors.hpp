// Error taxonomy shared by the fault-tolerance layer. The distinction
// that matters operationally is transient vs. permanent: a transient
// failure (injected fault, interrupted I/O, overloaded dependency) may
// succeed on retry, while a permanent one (shape mismatch, missing
// model) never will. Retry policies (serve::InferenceService) and the
// placer's degradation path key on these types rather than parsing
// message strings.
#pragma once

#include <stdexcept>
#include <string>

namespace laco {

/// A failure that retrying the same operation may resolve. Throw this
/// (or a subclass) from any operation whose failure is not a caller
/// bug; std::runtime_error siblings are treated as permanent.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace laco
