// CRC-32 (IEEE 802.3 / zlib polynomial) for checkpoint integrity. A
// truncated or bit-flipped model file must fail loudly at load time,
// not produce a silently corrupted network; the serializers append a
// CRC over their payload and verify it on read (nn/serialize,
// train/trace_io).
#pragma once

#include <cstddef>
#include <cstdint>

namespace laco {

/// Incremental CRC-32: pass the previous return value as `crc` to
/// extend a running checksum (zlib semantics; start with 0).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc = 0);

}  // namespace laco
