#include "util/serial.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "util/crc32.hpp"

namespace laco::serial {

void Writer::bytes(const void* data, std::size_t n, bool checksum) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (checksum) crc_ = crc32(data, n, crc_);
}

void Reader::fail(const std::string& what) const {
  throw std::runtime_error(context_ + ": " + what + " at byte offset " +
                           std::to_string(offset_) + " in '" + source_ + "'");
}

void Reader::bytes(void* dst, std::size_t n, const char* what) {
  in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (!in_) fail(std::string("truncated read (") + what + ")");
  if (checksumming_) crc_ = crc32(dst, n, crc_);
  offset_ += n;
}

std::string Reader::str(const char* what, std::uint32_t max_len) {
  const std::uint32_t n = u32(what);
  if (n > max_len) {
    fail(std::string("implausible string length ") + std::to_string(n) + " (" + what + ")");
  }
  std::string s(n, '\0');
  bytes(s.data(), n, what);
  return s;
}

std::vector<double> Reader::doubles(const char* what, std::uint64_t max_elems) {
  const std::uint64_t n = u64(what);
  if (n > max_elems) {
    fail(std::string("implausible array length ") + std::to_string(n) + " (" + what + ")");
  }
  std::vector<double> v(static_cast<std::size_t>(n));
  bytes(v.data(), v.size() * sizeof(double), what);
  return v;
}

void write_frame_header(Writer& w, std::uint32_t magic, std::uint32_t version) {
  w.u32(magic, /*checksum=*/false);
  w.u32(kVersionSentinel, /*checksum=*/false);
  w.u32(version);
}

void write_frame_trailer(Writer& w) {
  const std::uint32_t digest = w.crc();
  w.u32(digest, /*checksum=*/false);
}

void read_frame_header(Reader& r, std::uint32_t magic, std::uint32_t expected_version,
                       const char* kind) {
  if (r.u32("magic") != magic) r.fail(std::string("bad magic (not a ") + kind + ")");
  if (r.u32("header") != kVersionSentinel) {
    r.fail(std::string("missing version sentinel (not a versioned ") + kind + ")");
  }
  r.start_checksum();
  const std::uint32_t version = r.u32("version");
  if (version != expected_version) {
    r.fail("unsupported format version " + std::to_string(version));
  }
}

void read_frame_trailer(Reader& r) {
  const std::uint32_t computed = r.crc();
  r.stop_checksum();
  const std::uint32_t stored = r.u32("checksum");
  if (stored != computed) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "checksum mismatch (stored 0x%08x, computed 0x%08x)", stored,
                  computed);
    r.fail(std::string(buf) + " — checkpoint corrupt");
  }
}

bool atomic_write_file(const std::string& path, const std::function<bool(std::ostream&)>& fn) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    const bool produced = fn(out);
    out.flush();
    if (!produced || !out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  // rename(2) is atomic within a filesystem: readers see either the old
  // complete file or the new complete file, never a partial write.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace laco::serial
