#include "util/logging.hpp"

#include <atomic>
#include <iostream>

#include "util/mutex.hpp"

namespace laco {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug]";
    case LogLevel::kInfo: return "[info ]";
    case LogLevel::kWarn: return "[warn ]";
    case LogLevel::kError: return "[error]";
    default: return "[?????]";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const MutexLock lock(g_mutex);
  std::cerr << level_tag(level) << ' ' << message << '\n';
}
}  // namespace detail

}  // namespace laco
