// Shared framing codec for the project's CRC-32 "v2" container format
// (docs/RELIABILITY.md "Checkpoint integrity"):
//
//   [magic u32]            not checksummed
//   [0xFFFFFFFF sentinel]  not checksummed — distinguishes versioned
//                          streams from the legacy v1 layout, whose
//                          second word was a payload count
//   [version u32]          checksummed
//   [payload ...]          checksummed
//   [CRC-32 u32]           not checksummed
//
// Both file kinds the project persists — model checkpoints
// (nn/serialize) and placement snapshots (placer/snapshot) — build on
// these primitives, so corruption detection, error wording, and the
// atomic publish protocol behave identically everywhere. The layer DAG
// allows every src/ layer to depend on util, which is why the codec
// lives here rather than in nn.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace laco::serial {

/// Second header word of every versioned stream. Can never collide with
/// a legacy v1 count, so readers use it to detect the framed layout.
constexpr std::uint32_t kVersionSentinel = 0xffffffffu;

/// Default corruption guards: a flipped bit in a length field must
/// produce a clean error, not a multi-gigabyte allocation. Callers with
/// tighter domain knowledge pass their own caps per read.
constexpr std::uint32_t kMaxStringBytes = 1u << 24;
constexpr std::uint64_t kMaxArrayElements = std::uint64_t{1} << 27;

/// Serializer that mirrors every checksummed byte into a running CRC.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void bytes(const void* data, std::size_t n, bool checksum = true);
  void u32(std::uint32_t v, bool checksum = true) { bytes(&v, sizeof(v), checksum); }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void i32(std::int32_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) { bytes(&v, sizeof(v)); }
  void flag(bool v) { u32(v ? 1u : 0u); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
  void doubles(const std::vector<double>& v) {
    u64(v.size());
    bytes(v.data(), v.size() * sizeof(double));
  }
  std::uint32_t crc() const { return crc_; }

 private:
  std::ostream& out_;
  std::uint32_t crc_ = 0;
};

/// Deserializer tracking the byte offset of every read (for error
/// messages) and, once start_checksum() is called, the running CRC of
/// everything consumed.
class Reader {
 public:
  /// `context` prefixes every error ("load_parameters", "load_snapshot")
  /// so messages stay attributable to the file kind being read.
  Reader(std::istream& in, std::string source, std::string context)
      : in_(in), source_(std::move(source)), context_(std::move(context)) {}

  /// Error qualified with the source and the offset where the failing
  /// read began — "at byte offset 132 in 'congestion.bin'".
  [[noreturn]] void fail(const std::string& what) const;

  void bytes(void* dst, std::size_t n, const char* what);
  std::uint32_t u32(const char* what) {
    std::uint32_t v = 0;
    bytes(&v, sizeof(v), what);
    return v;
  }
  std::uint64_t u64(const char* what) {
    std::uint64_t v = 0;
    bytes(&v, sizeof(v), what);
    return v;
  }
  std::int32_t i32(const char* what) {
    std::int32_t v = 0;
    bytes(&v, sizeof(v), what);
    return v;
  }
  double f64(const char* what) {
    double v = 0.0;
    bytes(&v, sizeof(v), what);
    return v;
  }
  bool flag(const char* what) { return u32(what) != 0; }
  std::string str(const char* what, std::uint32_t max_len = kMaxStringBytes);
  std::vector<double> doubles(const char* what, std::uint64_t max_elems = kMaxArrayElements);

  void start_checksum() { checksumming_ = true; }
  void stop_checksum() { checksumming_ = false; }
  std::uint32_t crc() const { return crc_; }
  const std::string& source() const { return source_; }

 private:
  std::istream& in_;
  std::string source_;
  std::string context_;
  std::size_t offset_ = 0;
  std::uint32_t crc_ = 0;
  bool checksumming_ = false;
};

/// Writes [magic][sentinel][version] and leaves the Writer's CRC
/// covering the version word onward (magic and sentinel stay outside
/// the digest, matching the v2 checkpoint layout).
void write_frame_header(Writer& w, std::uint32_t magic, std::uint32_t version);

/// Appends the trailing CRC-32 over everything checksummed so far.
void write_frame_trailer(Writer& w);

/// Reads and validates [magic][sentinel][version]; starts the CRC at
/// the version word; fails unless version == expected_version. `kind`
/// names the file kind in errors ("placement snapshot").
void read_frame_header(Reader& r, std::uint32_t magic, std::uint32_t expected_version,
                       const char* kind);

/// Reads the trailing digest and fails on mismatch with the canonical
/// "checksum mismatch (stored 0x…, computed 0x…)" wording.
void read_frame_trailer(Reader& r);

/// Atomic publish: streams through `fn` into `path + ".tmp"`, flushes,
/// then rename(2)s over `path` — readers see either the old complete
/// file or the new complete file, never a partial write. Returns false
/// on any failure (the temp file is removed).
bool atomic_write_file(const std::string& path, const std::function<bool(std::ostream&)>& fn);

}  // namespace laco::serial
