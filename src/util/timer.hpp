// Wall-clock timing helpers. RuntimeBreakdown accumulates named phase
// timings — used to reproduce the paper's Fig. 8 runtime breakdown.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace laco {

class Timer {
 public:
  Timer() { reset(); }
  void reset() { start_ = std::chrono::steady_clock::now(); }
  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates seconds per named phase across many invocations.
class RuntimeBreakdown {
 public:
  void add(const std::string& phase, double seconds) { seconds_[phase] += seconds; }
  double seconds(const std::string& phase) const;
  double total() const;
  /// (phase, seconds, fraction-of-total), sorted by descending seconds.
  std::vector<std::tuple<std::string, double, double>> table() const;
  void clear() { seconds_.clear(); }

 private:
  std::map<std::string, double> seconds_;
};

/// RAII phase timer: adds elapsed time to a breakdown on destruction.
class ScopedPhase {
 public:
  ScopedPhase(RuntimeBreakdown& breakdown, std::string phase)
      : breakdown_(breakdown), phase_(std::move(phase)) {}
  ~ScopedPhase() { breakdown_.add(phase_, timer_.seconds()); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  RuntimeBreakdown& breakdown_;
  std::string phase_;
  Timer timer_;
};

}  // namespace laco
