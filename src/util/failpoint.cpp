#include "util/failpoint.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>

namespace laco {
namespace {

/// splitmix64 — one multiply-xor-shift round per call; the standard
/// seedable mixer. Purely functional, so the fire decision for
/// evaluation n is reproducible from (seed, n) alone.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic uniform in [0, 1) from (seed, counter).
double unit_hash(std::uint64_t seed, std::uint64_t counter) {
  const std::uint64_t h = mix64(seed ^ mix64(counter));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FailpointMode parse_mode(const std::string& token) {
  if (token == "off") return FailpointMode::kOff;
  if (token == "error") return FailpointMode::kError;
  if (token == "delay") return FailpointMode::kDelay;
  if (token == "crash") return FailpointMode::kCrash;
  throw std::invalid_argument("failpoint spec: unknown mode '" + token + "'");
}

}  // namespace

const char* to_string(FailpointMode mode) {
  switch (mode) {
    case FailpointMode::kOff: return "off";
    case FailpointMode::kError: return "error";
    case FailpointMode::kDelay: return "delay";
    case FailpointMode::kCrash: return "crash";
  }
  return "?";
}

FailpointRegistry& FailpointRegistry::instance() {
  static FailpointRegistry registry;
  return registry;
}

void FailpointRegistry::arm(const std::string& name, FailpointSpec spec) {
  if (spec.probability < 0.0 || spec.probability > 1.0) {
    throw std::invalid_argument("FailpointRegistry::arm: probability must be in [0, 1]");
  }
  MutexLock lock(mutex_);
  Point& point = points_[name];
  point.spec = spec;
  point.stats = FailpointStats{};  // arming restarts the deterministic sequence
}

void FailpointRegistry::disarm(const std::string& name) {
  MutexLock lock(mutex_);
  points_.erase(name);
}

void FailpointRegistry::disarm_all() {
  MutexLock lock(mutex_);
  points_.clear();
}

void FailpointRegistry::evaluate(const char* name) {
  FailpointMode action = FailpointMode::kOff;
  double delay_ms = 0.0;
  {
    MutexLock lock(mutex_);
    const auto it = points_.find(name);
    if (it == points_.end() || it->second.spec.mode == FailpointMode::kOff) return;
    Point& point = it->second;
    const std::uint64_t n = point.stats.evaluations++;
    if (unit_hash(point.spec.seed, n) >= point.spec.probability) return;
    ++point.stats.fires;
    action = point.spec.mode;
    delay_ms = point.spec.delay_ms;
  }
  // Act outside the lock: sleeping or unwinding while holding the
  // registry mutex would serialize every other hook site behind us.
  switch (action) {
    case FailpointMode::kOff:
      return;
    case FailpointMode::kError:
      throw FailpointError(name);
    case FailpointMode::kDelay:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
      return;
    case FailpointMode::kCrash:
      // Mirrors the LACO_CHECK failure path: report without allocating,
      // then die hard — chaos drills want a real crash, not an unwind.
      std::fprintf(stderr, "LACO_FAILPOINT '%s' fired in crash mode\n", name);
      std::fflush(stderr);
      std::abort();
  }
}

FailpointStats FailpointRegistry::stats(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = points_.find(name);
  return it == points_.end() ? FailpointStats{} : it->second.stats;
}

std::vector<std::string> FailpointRegistry::armed() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    if (point.spec.mode != FailpointMode::kOff) names.push_back(name);
  }
  return names;
}

int FailpointRegistry::configure_from_spec(const std::string& spec) {
  int armed_count = 0;
  std::string::size_type pos = 0;
  while (pos < spec.size()) {
    auto end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("failpoint spec: expected name=mode in '" + entry + "'");
    }
    const std::string name = entry.substr(0, eq);
    std::vector<std::string> fields;
    std::string::size_type fpos = eq + 1;
    while (fpos <= entry.size()) {
      auto colon = entry.find(':', fpos);
      if (colon == std::string::npos) colon = entry.size();
      fields.push_back(entry.substr(fpos, colon - fpos));
      fpos = colon + 1;
    }
    if (fields.empty() || fields[0].empty()) {
      throw std::invalid_argument("failpoint spec: missing mode in '" + entry + "'");
    }
    FailpointSpec parsed;
    try {
      parsed.mode = parse_mode(fields[0]);
      if (fields.size() > 1 && !fields[1].empty()) parsed.probability = std::stod(fields[1]);
      if (fields.size() > 2 && !fields[2].empty()) {
        parsed.seed = static_cast<std::uint64_t>(std::stoull(fields[2]));
      }
      if (fields.size() > 3 && !fields[3].empty()) parsed.delay_ms = std::stod(fields[3]);
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("failpoint spec: malformed entry '" + entry + "'");
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("failpoint spec: value out of range in '" + entry + "'");
    }
    arm(name, parsed);
    ++armed_count;
  }
  return armed_count;
}

int FailpointRegistry::configure_from_env() {
  const char* spec = std::getenv("LACO_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return 0;
  return configure_from_spec(spec);
}

}  // namespace laco
