#include "util/timer.hpp"

#include <algorithm>

namespace laco {

double RuntimeBreakdown::seconds(const std::string& phase) const {
  const auto it = seconds_.find(phase);
  return it == seconds_.end() ? 0.0 : it->second;
}

double RuntimeBreakdown::total() const {
  double sum = 0.0;
  for (const auto& [_, s] : seconds_) sum += s;
  return sum;
}

std::vector<std::tuple<std::string, double, double>> RuntimeBreakdown::table() const {
  const double sum = total();
  std::vector<std::tuple<std::string, double, double>> rows;
  rows.reserve(seconds_.size());
  for (const auto& [phase, s] : seconds_) {
    rows.emplace_back(phase, s, sum > 0.0 ? s / sum : 0.0);
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return std::get<1>(a) > std::get<1>(b); });
  return rows;
}

}  // namespace laco
