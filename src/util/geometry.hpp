// Basic 2D geometry primitives used across the placer, router, and
// feature extraction. All coordinates are in layout units (double) or
// grid indices (int); the types carry no invariants beyond well-formed
// rectangles, so they are plain structs per the Core Guidelines.
#pragma once

#include <algorithm>
#include <cmath>
#include <ostream>

namespace laco {

/// 2D point in layout coordinates.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
  friend bool operator==(const Point&, const Point&) = default;
};

inline double dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }
inline double norm(Point a) { return std::sqrt(dot(a, a)); }
inline double manhattan(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// 2D integer grid index (column k along x, row l along y).
struct GridIndex {
  int k = 0;  ///< column (x direction)
  int l = 0;  ///< row (y direction)
  friend bool operator==(const GridIndex&, const GridIndex&) = default;
};

/// Axis-aligned rectangle, half-open in spirit but stored as [lo, hi].
struct Rect {
  double xl = 0.0;
  double yl = 0.0;
  double xh = 0.0;
  double yh = 0.0;

  double width() const { return xh - xl; }
  double height() const { return yh - yl; }
  double area() const { return std::max(0.0, width()) * std::max(0.0, height()); }
  Point center() const { return {(xl + xh) * 0.5, (yl + yh) * 0.5}; }

  bool contains(Point p) const {
    return p.x >= xl && p.x <= xh && p.y >= yl && p.y <= yh;
  }
  bool valid() const { return xh >= xl && yh >= yl; }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Intersection; returns a possibly-degenerate rectangle (area() == 0 when
/// the operands do not overlap).
inline Rect intersect(const Rect& a, const Rect& b) {
  return {std::max(a.xl, b.xl), std::max(a.yl, b.yl),
          std::min(a.xh, b.xh), std::min(a.yh, b.yh)};
}

inline double overlap_area(const Rect& a, const Rect& b) {
  const Rect i = intersect(a, b);
  return i.valid() ? i.area() : 0.0;
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}
inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.xl << ", " << r.yl << "; " << r.xh << ", " << r.yh << ']';
}

}  // namespace laco
