// Minimal leveled logger. Placement/routing loops log through this so
// benches can silence the library while examples keep progress visible.
#pragma once

#include <sstream>
#include <string>

namespace laco {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kSilent = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

/// Streaming log statement: collects one line, emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { detail::log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace laco

#define LACO_LOG_DEBUG ::laco::LogStream(::laco::LogLevel::kDebug)
#define LACO_LOG_INFO ::laco::LogStream(::laco::LogLevel::kInfo)
#define LACO_LOG_WARN ::laco::LogStream(::laco::LogLevel::kWarn)
#define LACO_LOG_ERROR ::laco::LogStream(::laco::LogLevel::kError)
