// Tiny CSV/table writer used by benches and examples to emit
// paper-style tables both to stdout (aligned) and to .csv files.
#pragma once

#include <string>
#include <vector>

namespace laco {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row);
  /// Formats a double with fixed precision (helper for row building).
  static std::string fmt(double value, int precision = 2);

  /// Renders an aligned, human-readable table.
  std::string to_string() const;
  /// Renders RFC-4180-ish CSV.
  std::string to_csv() const;
  /// Writes CSV to a file; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace laco
