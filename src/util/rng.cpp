#include "util/rng.hpp"

#include <numeric>
#include <stdexcept>

namespace laco {

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0 || weights.empty()) {
    throw std::invalid_argument("weighted_index: weights must be non-empty with positive sum");
  }
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace laco
