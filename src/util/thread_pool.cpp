#include "util/thread_pool.hpp"

#include <algorithm>

namespace laco {

ThreadPool::ThreadPool(int num_threads, std::size_t queue_capacity)
    : capacity_(std::max<std::size_t>(1, queue_capacity)) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    while (!stopping_ && queue_.size() >= capacity_) not_full_.wait(mutex_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
    max_depth_ = std::max(max_depth_, queue_.size());
  }
  not_empty_.notify_one();
  return true;
}

bool ThreadPool::try_submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    if (stopping_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
    max_depth_ = std::max(max_depth_, queue_.size());
  }
  not_empty_.notify_one();
  return true;
}

void ThreadPool::shutdown() {
  {
    MutexLock lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

std::size_t ThreadPool::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

std::size_t ThreadPool::max_queue_depth() const {
  MutexLock lock(mutex_);
  return max_depth_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) not_empty_.wait(mutex_);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    task();
  }
}

}  // namespace laco
