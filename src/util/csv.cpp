#include "util/csv.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace laco {

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::string rule;
  for (const auto w : widths) rule += std::string(w + 2, '-');
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const bool quote = row[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (const char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

}  // namespace laco
