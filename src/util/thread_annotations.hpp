// Clang Thread Safety Analysis annotations — the compile-time race
// detector that complements the TSan CI job. Under clang these expand
// to capability attributes checked by -Wthread-safety; under every
// other compiler they vanish, so annotated code stays portable.
//
// Usage (see util/mutex.hpp for the annotated primitives):
//   laco::Mutex mutex_;
//   int value_ LACO_GUARDED_BY(mutex_);
//   void touch() LACO_EXCLUDES(mutex_);         // takes the lock itself
//   void touch_locked() LACO_REQUIRES(mutex_);  // caller holds the lock
//
// The CI job `clang-thread-safety` builds with
// -Wthread-safety -Werror=thread-safety, so a missing or wrong
// annotation is a build failure, not a maybe-flaky TSan report.
#pragma once

#if defined(__clang__)
#define LACO_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define LACO_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

/// Marks a class as a lockable capability (mutexes).
#define LACO_CAPABILITY(x) LACO_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define LACO_SCOPED_CAPABILITY LACO_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member that may only be read or written while holding `x`.
#define LACO_GUARDED_BY(x) LACO_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define LACO_PT_GUARDED_BY(x) LACO_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function that may only be called while holding the given capabilities.
#define LACO_REQUIRES(...) \
  LACO_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function that may only be called while holding the capabilities shared.
#define LACO_REQUIRES_SHARED(...) \
  LACO_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the given capabilities and does not release them.
#define LACO_ACQUIRE(...) \
  LACO_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function that releases the given capabilities.
#define LACO_RELEASE(...) \
  LACO_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `ret`.
#define LACO_TRY_ACQUIRE(ret, ...) \
  LACO_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called while holding the given capabilities
/// (it acquires them itself, or would deadlock).
#define LACO_EXCLUDES(...) LACO_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the capability guarding its result.
#define LACO_RETURN_CAPABILITY(x) LACO_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Lock-ordering declarations (deadlock prevention).
#define LACO_ACQUIRED_BEFORE(...) \
  LACO_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define LACO_ACQUIRED_AFTER(...) \
  LACO_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Escape hatch: disables analysis for one function. Every use must
/// carry a justification comment (enforced by review, not laco-lint).
#define LACO_NO_THREAD_SAFETY_ANALYSIS \
  LACO_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
