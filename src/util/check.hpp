// Runtime invariant checks that survive Release builds. The placement
// pipeline feeds congestion maps and gradients through tight index
// arithmetic; a bounds bug that `assert` would have caught in Debug
// silently corrupts those maps under NDEBUG. LACO_CHECK aborts with
// file:line in every build type; LACO_DCHECK keeps assert's
// debug-only cost model for hot-loop checks that are too expensive to
// ship. laco-lint rejects bare assert() in src/ in favor of these.
//
// The failure path writes to stderr with fprintf (not util/logging):
// a failed invariant must report even when the logger itself is the
// broken invariant, and abort handlers should not allocate.
#pragma once

#include <cstdio>
#include <cstdlib>

/// Aborts with `file:line: condition` when `condition` is false.
/// Enabled in ALL build types, including NDEBUG Release.
#define LACO_CHECK(condition)                                                      \
  do {                                                                             \
    if (!(condition)) {                                                            \
      std::fprintf(stderr, "LACO_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, \
                   #condition);                                                    \
      std::fflush(stderr);                                                         \
      std::abort();                                                                \
    }                                                                              \
  } while (0)

#ifdef NDEBUG
/// Debug-only check: compiled out under NDEBUG (condition NOT
/// evaluated), aborts like LACO_CHECK otherwise. The sizeof keeps the
/// operands name-checked in all builds without evaluating them.
#define LACO_DCHECK(condition) \
  do {                         \
    (void)sizeof(!(condition)); \
  } while (0)
#else
#define LACO_DCHECK(condition) LACO_CHECK(condition)
#endif
