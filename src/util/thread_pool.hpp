// Fixed-size worker pool over a bounded MPMC task queue — the execution
// substrate for the inference service (src/serve) and any future
// parallel subsystem. submit() applies backpressure: it blocks while the
// queue is at capacity, so producers cannot outrun the workers without
// bound. Tasks are plain std::function<void()>; exceptions escaping a
// task terminate (tasks own their error handling, e.g. via promises).
//
// Locking discipline is statically checked: every shared member is
// LACO_GUARDED_BY(mutex_) and the clang -Wthread-safety CI job fails
// on any unlocked access (see docs/STATIC_ANALYSIS.md).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace laco {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to ≥1). `queue_capacity`
  /// bounds the number of queued-but-not-running tasks (clamped to ≥1).
  explicit ThreadPool(int num_threads, std::size_t queue_capacity = 1024);

  /// Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task, blocking while the queue is full. Returns false
  /// (dropping the task) after shutdown() has been called.
  bool submit(std::function<void()> task) LACO_EXCLUDES(mutex_);

  /// Non-blocking enqueue; false when the queue is full or shut down.
  bool try_submit(std::function<void()> task) LACO_EXCLUDES(mutex_);

  /// Stops accepting tasks, runs everything already queued, joins the
  /// workers. Idempotent; also called by the destructor.
  void shutdown() LACO_EXCLUDES(mutex_);

  int num_threads() const { return static_cast<int>(workers_.size()); }
  std::size_t queue_depth() const LACO_EXCLUDES(mutex_);
  /// High-water mark of the queue depth since construction.
  std::size_t max_queue_depth() const LACO_EXCLUDES(mutex_);

 private:
  void worker_loop() LACO_EXCLUDES(mutex_);

  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<std::function<void()>> queue_ LACO_GUARDED_BY(mutex_);
  std::size_t max_depth_ LACO_GUARDED_BY(mutex_) = 0;
  bool stopping_ LACO_GUARDED_BY(mutex_) = false;
  // Written only by the constructor and shutdown(); workers never touch
  // it, so it needs no capability.
  std::vector<std::thread> workers_;
};

}  // namespace laco
