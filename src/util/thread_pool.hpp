// Fixed-size worker pool over a bounded MPMC task queue — the execution
// substrate for the inference service (src/serve) and any future
// parallel subsystem. submit() applies backpressure: it blocks while the
// queue is at capacity, so producers cannot outrun the workers without
// bound. Tasks are plain std::function<void()>; exceptions escaping a
// task terminate (tasks own their error handling, e.g. via promises).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace laco {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to ≥1). `queue_capacity`
  /// bounds the number of queued-but-not-running tasks (clamped to ≥1).
  explicit ThreadPool(int num_threads, std::size_t queue_capacity = 1024);

  /// Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task, blocking while the queue is full. Returns false
  /// (dropping the task) after shutdown() has been called.
  bool submit(std::function<void()> task);

  /// Non-blocking enqueue; false when the queue is full or shut down.
  bool try_submit(std::function<void()> task);

  /// Stops accepting tasks, runs everything already queued, joins the
  /// workers. Idempotent; also called by the destructor.
  void shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }
  std::size_t queue_depth() const;
  /// High-water mark of the queue depth since construction.
  std::size_t max_queue_depth() const;

 private:
  void worker_loop();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  std::size_t max_depth_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace laco
