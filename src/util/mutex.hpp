// Annotated mutual-exclusion primitives: thin wrappers over std::mutex
// and std::condition_variable that carry Clang Thread Safety Analysis
// capability attributes (util/thread_annotations.hpp). libstdc++'s
// std::mutex is not annotated, so locking through these wrappers is
// what makes -Wthread-safety actually prove LACO_GUARDED_BY contracts
// in thread_pool / serve at compile time; at runtime they compile to
// exactly the std:: primitives, so TSan instrumentation still applies.
//
// Condition-variable waits deliberately take the Mutex itself
// (`cv.wait(mutex_)`) instead of a predicate lambda: the analysis
// cannot see that a predicate runs under the lock, so callers write
//   MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(mutex_);
// which keeps every guarded read inside the locked scope it checks.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace laco {

class CondVar;

/// Annotated exclusive lock. Prefer MutexLock over manual lock()/unlock().
class LACO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LACO_ACQUIRE() { raw_.lock(); }
  void unlock() LACO_RELEASE() { raw_.unlock(); }
  bool try_lock() LACO_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex raw_;
};

/// RAII scoped lock over Mutex, with explicit unlock()/lock() for the
/// drop-the-lock-around-slow-work pattern (see serve::ModelRegistry).
/// The destructor releases only if currently held.
class LACO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) LACO_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() LACO_RELEASE() {
    if (held_) mutex_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (e.g. before blocking I/O); safe to re-lock() later.
  void unlock() LACO_RELEASE() {
    mutex_.unlock();
    held_ = false;
  }

  /// Re-acquires after an explicit unlock().
  void lock() LACO_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }

 private:
  Mutex& mutex_;
  bool held_ = true;
};

/// Condition variable waiting on an annotated Mutex. Backed by
/// std::condition_variable via the adopt/release trick, so there is no
/// condition_variable_any overhead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, sleeps, re-acquires before returning.
  /// Spurious wakeups happen: always wait in a `while (!condition)` loop.
  void wait(Mutex& mutex) LACO_REQUIRES(mutex) {
    std::unique_lock<std::mutex> adopted(mutex.raw_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  /// wait() with a timeout; returns std::cv_status::timeout when the
  /// relative deadline passed without a notification.
  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mutex, const std::chrono::duration<Rep, Period>& rel_time)
      LACO_REQUIRES(mutex) {
    std::unique_lock<std::mutex> adopted(mutex.raw_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(adopted, rel_time);
    adopted.release();
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace laco
