#include "util/crc32.hpp"

#include <array>

namespace laco {
namespace {

// Slice-by-8: eight derived tables let the inner loop fold eight
// bytes per step instead of one, which matters because the CRC is
// the single hottest instruction stream in a snapshot save (the
// payload is CRC'd once on write and once on read, at ~8x the speed
// of the classic byte-at-a-time loop). Same polynomial, same result.
using Crc32Tables = std::array<std::array<std::uint32_t, 256>, 8>;

Crc32Tables make_tables() {
  Crc32Tables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xffu] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc) {
  static const Crc32Tables t = make_tables();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xffffffffu;
  // Compose words from bytes (not memcpy of a u32) so the fold is
  // byte-order independent; compilers emit a single load anyway.
  while (size >= 8) {
    const std::uint32_t lo = static_cast<std::uint32_t>(bytes[0]) |
                             static_cast<std::uint32_t>(bytes[1]) << 8 |
                             static_cast<std::uint32_t>(bytes[2]) << 16 |
                             static_cast<std::uint32_t>(bytes[3]) << 24;
    const std::uint32_t hi = static_cast<std::uint32_t>(bytes[4]) |
                             static_cast<std::uint32_t>(bytes[5]) << 8 |
                             static_cast<std::uint32_t>(bytes[6]) << 16 |
                             static_cast<std::uint32_t>(bytes[7]) << 24;
    c ^= lo;
    c = t[7][c & 0xffu] ^ t[6][(c >> 8) & 0xffu] ^ t[5][(c >> 16) & 0xffu] ^ t[4][c >> 24] ^
        t[3][hi & 0xffu] ^ t[2][(hi >> 8) & 0xffu] ^ t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
    bytes += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = t[0][(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace laco
