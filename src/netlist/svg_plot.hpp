// SVG rendering of placements: cells, macros, pads, fence regions,
// routing blockages, and an optional congestion-map overlay. The
// standard way to eyeball a placement or a hotspot without an EDA GUI.
#pragma once

#include <string>

#include "gridmap/grid_map.hpp"
#include "netlist/design.hpp"

namespace laco {

struct SvgPlotOptions {
  int width_px = 800;           ///< image width; height follows the aspect ratio
  bool draw_cells = true;
  bool draw_fences = true;
  bool draw_blockages = true;
  /// Optional heat overlay (e.g. routed congestion); rendered as
  /// semi-transparent red cells scaled by value / overlay_max.
  const GridMap* overlay = nullptr;
  double overlay_max = 0.0;  ///< 0 → use the overlay's own max
};

std::string design_to_svg(const Design& design, const SvgPlotOptions& options = {});
bool write_svg_file(const Design& design, const std::string& path,
                    const SvgPlotOptions& options = {});

}  // namespace laco
