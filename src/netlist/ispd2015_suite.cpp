#include "netlist/ispd2015_suite.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace laco {

const std::vector<BenchmarkSpec>& ispd2015_suite() {
  // Scales (#cells, #nets) follow the paper's Table I. Macro fractions
  // and counts are qualitative: des_perf/fft/matrix_mult/pci_bridge are
  // macro-light logic blocks of varying density; the *_a/_b variants are
  // the congested floorplans of the suite (higher utilization, more
  // blockage); superblue* are large macro-heavy mixed-size designs.
  // The *_a/_b variants are the suite's fence-region + routing-blockage
  // floorplans ("ISPD 2015 benchmarks with fence regions and routing
  // blockages"); the *_1/_2 variants are unconstrained.
  static const std::vector<BenchmarkSpec> suite = {
      {"des_perf_1", 113, 113, 0.04, 2, 0.68, 0.82, 0, 0, true},
      {"des_perf_a", 109, 110, 0.18, 5, 0.78, 0.80, 2, 2, true},
      {"des_perf_b", 113, 113, 0.10, 4, 0.66, 0.82, 2, 1, true},
      {"edit_dist_a", 130, 131, 0.22, 6, 0.80, 0.78, 2, 2, true},
      {"fft_1", 35, 33, 0.04, 2, 0.66, 0.84, 0, 0, true},
      {"fft_2", 35, 33, 0.06, 2, 0.70, 0.84, 0, 0, true},
      {"fft_a", 34, 32, 0.14, 3, 0.72, 0.82, 1, 1, true},
      {"fft_b", 34, 32, 0.20, 4, 0.80, 0.80, 1, 1, true},
      {"matrix_mult_1", 160, 159, 0.05, 2, 0.68, 0.82, 0, 0, false},
      {"matrix_mult_2", 160, 159, 0.05, 2, 0.68, 0.82, 0, 0, false},
      {"matrix_mult_a", 154, 154, 0.12, 4, 0.72, 0.80, 2, 1, false},
      {"matrix_mult_b", 151, 152, 0.24, 6, 0.82, 0.78, 2, 2, false},
      {"matrix_mult_c", 151, 152, 0.12, 4, 0.70, 0.80, 2, 1, false},
      {"pci_bridge32_a", 30, 30, 0.16, 4, 0.76, 0.80, 1, 1, false},
      {"pci_bridge32_b", 29, 29, 0.08, 3, 0.62, 0.82, 1, 0, false},
      {"superblue11_a", 954, 936, 0.30, 10, 0.80, 0.76, 2, 2, false},
      {"superblue12", 1293, 1293, 0.26, 10, 0.78, 0.76, 0, 2, false},
      {"superblue14", 634, 620, 0.26, 8, 0.76, 0.78, 0, 2, false},
      {"superblue16_a", 698, 697, 0.28, 8, 0.80, 0.76, 2, 2, false},
      {"superblue19", 522, 512, 0.24, 8, 0.76, 0.78, 0, 1, false},
  };
  return suite;
}

const BenchmarkSpec& ispd2015_spec(const std::string& name) {
  for (const BenchmarkSpec& spec : ispd2015_suite()) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("ispd2015_spec: unknown design '" + name + "'");
}

std::vector<std::string> ispd2015_design_names() {
  std::vector<std::string> names;
  names.reserve(ispd2015_suite().size());
  for (const BenchmarkSpec& spec : ispd2015_suite()) names.push_back(spec.name);
  return names;
}

std::vector<std::string> ispd2015_first8_names() {
  std::vector<std::string> names;
  for (const BenchmarkSpec& spec : ispd2015_suite()) {
    if (spec.first8) names.push_back(spec.name);
  }
  return names;
}

GeneratorConfig ispd2015_config(const std::string& name, double scale,
                                std::uint64_t seed_offset) {
  const BenchmarkSpec& spec = ispd2015_spec(name);
  GeneratorConfig cfg;
  cfg.name = name;
  cfg.num_cells = std::max(64, static_cast<int>(std::lround(spec.paper_cells_k * 1000.0 * scale)));
  cfg.nets_per_cell =
      spec.paper_cells_k > 0 ? static_cast<double>(spec.paper_nets_k) / spec.paper_cells_k : 1.0;
  cfg.target_utilization = spec.utilization;
  cfg.num_macros = spec.num_macros;
  cfg.macro_area_fraction = spec.macro_area_fraction;
  cfg.locality = spec.locality;
  cfg.num_fences = spec.num_fences;
  cfg.num_routing_blockages = spec.num_blockages;
  cfg.num_io_pads = std::clamp(cfg.num_cells / 16, 16, 256);
  // Deterministic per-design seed so each named analog is stable across
  // runs; seed_offset generates the "100 placement solutions" variants.
  cfg.seed = std::hash<std::string>{}(name) ^ (0x9e3779b97f4a7c15ull * (seed_offset + 1));
  return cfg;
}

Design make_ispd2015_analog(const std::string& name, double scale,
                            std::uint64_t seed_offset) {
  return generate_design(ispd2015_config(name, scale, seed_offset));
}

}  // namespace laco
