#include "netlist/design.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace laco {

CellId Design::add_cell(Cell cell) {
  const CellId id = static_cast<CellId>(cells_.size());
  if (!cell.fixed) movable_.push_back(id);
  cells_.push_back(std::move(cell));
  cell_fence_.push_back(kNoFence);
  return id;
}

FenceId Design::add_fence(std::string fence_name, Rect region) {
  if (!region.valid() || region.area() <= 0.0) {
    throw std::invalid_argument("add_fence: degenerate region");
  }
  const FenceId id = static_cast<FenceId>(fences_.size());
  Fence fence;
  fence.name = std::move(fence_name);
  fence.region = region;
  fences_.push_back(std::move(fence));
  return id;
}

void Design::assign_to_fence(CellId cell_id, FenceId fence_id) {
  if (cell_id < 0 || static_cast<std::size_t>(cell_id) >= cells_.size()) {
    throw std::out_of_range("assign_to_fence: bad cell id");
  }
  if (fence_id < 0 || static_cast<std::size_t>(fence_id) >= fences_.size()) {
    throw std::out_of_range("assign_to_fence: bad fence id");
  }
  if (cells_[static_cast<std::size_t>(cell_id)].fixed) {
    throw std::invalid_argument("assign_to_fence: fixed cells cannot be fenced");
  }
  FenceId& slot = cell_fence_[static_cast<std::size_t>(cell_id)];
  if (slot != kNoFence) throw std::invalid_argument("assign_to_fence: cell already fenced");
  slot = fence_id;
  fences_[static_cast<std::size_t>(fence_id)].members.push_back(cell_id);
}

FenceId Design::fence_of(CellId cell_id) const {
  return cell_fence_[static_cast<std::size_t>(cell_id)];
}

NetId Design::add_net(std::string net_name, double weight) {
  const NetId id = static_cast<NetId>(nets_.size());
  Net n;
  n.name = std::move(net_name);
  n.weight = weight;
  nets_.push_back(std::move(n));
  return id;
}

PinId Design::add_pin(CellId cell_id, NetId net_id, double offset_x, double offset_y) {
  if (cell_id < 0 || static_cast<std::size_t>(cell_id) >= cells_.size()) {
    throw std::out_of_range("add_pin: bad cell id");
  }
  if (net_id < 0 || static_cast<std::size_t>(net_id) >= nets_.size()) {
    throw std::out_of_range("add_pin: bad net id");
  }
  const PinId id = static_cast<PinId>(pins_.size());
  pins_.push_back(Pin{cell_id, net_id, offset_x, offset_y});
  nets_[static_cast<std::size_t>(net_id)].pins.push_back(id);
  return id;
}

double Design::total_movable_area() const {
  double a = 0.0;
  for (const CellId id : movable_) a += cells_[static_cast<std::size_t>(id)].area();
  return a;
}

double Design::total_fixed_area() const {
  double a = 0.0;
  for (const Cell& c : cells_) {
    if (c.fixed && c.kind == CellKind::kMacro) a += overlap_area(c.rect(), core_);
  }
  return a;
}

double Design::utilization() const {
  const double free_area = core_.area() - total_fixed_area();
  return free_area > 0.0 ? total_movable_area() / free_area : 1.0;
}

void Design::get_movable_positions(std::vector<double>& x, std::vector<double>& y) const {
  x.resize(movable_.size());
  y.resize(movable_.size());
  for (std::size_t i = 0; i < movable_.size(); ++i) {
    const Cell& c = cells_[static_cast<std::size_t>(movable_[i])];
    const Point p = c.center();
    x[i] = p.x;
    y[i] = p.y;
  }
}

void Design::set_movable_positions(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != movable_.size() || y.size() != movable_.size()) {
    throw std::invalid_argument("set_movable_positions: size mismatch");
  }
  for (std::size_t i = 0; i < movable_.size(); ++i) {
    const CellId cid = movable_[i];
    Cell& c = cells_[static_cast<std::size_t>(cid)];
    // Clamp the center into the core — or the cell's fence region, which
    // acts as the effective placement domain for fenced cells.
    Rect domain = core_;
    const FenceId fence = cell_fence_[static_cast<std::size_t>(cid)];
    if (fence != kNoFence) domain = fences_[static_cast<std::size_t>(fence)].region;
    const double cx = std::clamp(x[i], domain.xl + c.width * 0.5, domain.xh - c.width * 0.5);
    const double cy = std::clamp(y[i], domain.yl + c.height * 0.5, domain.yh - c.height * 0.5);
    c.x = cx - c.width * 0.5;
    c.y = cy - c.height * 0.5;
  }
}

double Design::hpwl() const {
  double total = 0.0;
  for (const Net& net : nets_) {
    if (net.degree() < 2) continue;
    const Rect bb = net_bbox(*this, net);
    total += net.weight * (bb.width() + bb.height());
  }
  return total;
}

Rect net_bbox(const Design& design, const Net& net) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  Rect bb{inf, inf, -inf, -inf};
  for (const PinId pid : net.pins) {
    const Point p = design.pin_position(pid);
    bb.xl = std::min(bb.xl, p.x);
    bb.yl = std::min(bb.yl, p.y);
    bb.xh = std::max(bb.xh, p.x);
    bb.yh = std::max(bb.yh, p.y);
  }
  if (net.pins.empty()) bb = Rect{0, 0, 0, 0};
  return bb;
}

}  // namespace laco
