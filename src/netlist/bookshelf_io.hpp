// Plain-text design serialization in a Bookshelf-inspired single-file
// format (.lbk — "laco bookshelf"). Lets users persist generated
// analogs, exchange placements between tools, and diff runs. Format:
//
//   CORE xl yl xh yh row_height
//   CELL name kind width height x y fixed
//   NET name weight
//   PIN cell_index offset_x offset_y        (attaches to the latest NET)
//
// kind is one of std|macro|pad; indices refer to CELL declaration order.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/design.hpp"

namespace laco {

void write_bookshelf(const Design& design, std::ostream& out);
bool write_bookshelf_file(const Design& design, const std::string& path);

/// Parses a design; throws std::runtime_error on malformed input.
Design read_bookshelf(std::istream& in);
Design read_bookshelf_file(const std::string& path);

}  // namespace laco
