// Circuit data model for placement and routing: cells, pins, nets, and
// the die/core geometry. Mirrors the level of detail a Bookshelf/ISPD
// benchmark carries — enough for global placement, legalization, global
// routing, and the placement features the LACO paper consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/geometry.hpp"

namespace laco {

using CellId = std::int32_t;
using PinId = std::int32_t;
using NetId = std::int32_t;
inline constexpr CellId kNoCell = -1;

enum class CellKind : std::uint8_t {
  kStandard,  ///< movable standard cell
  kMacro,     ///< fixed macro block (defines MacroRegion)
  kPad,       ///< fixed I/O pad on the periphery
};

struct Cell {
  std::string name;
  CellKind kind = CellKind::kStandard;
  double width = 0.0;
  double height = 0.0;
  double x = 0.0;  ///< lower-left corner
  double y = 0.0;
  bool fixed = false;

  Rect rect() const { return {x, y, x + width, y + height}; }
  Point center() const { return {x + width * 0.5, y + height * 0.5}; }
  double area() const { return width * height; }
};

struct Pin {
  CellId cell = kNoCell;  ///< owning cell; kNoCell only in malformed inputs
  NetId net = -1;
  double offset_x = 0.0;  ///< offset from the owning cell's lower-left corner
  double offset_y = 0.0;
};

struct Net {
  std::string name;
  std::vector<PinId> pins;
  double weight = 1.0;

  int degree() const { return static_cast<int>(pins.size()); }
};

/// Fence region (ISPD 2015): an exclusive rectangular region that a set
/// of member cells must be placed inside and non-members must stay out
/// of. Simplified to a single rectangle per fence.
struct Fence {
  std::string name;
  Rect region;
  std::vector<CellId> members;
};
using FenceId = std::int32_t;
inline constexpr FenceId kNoFence = -1;

/// A placement/routing instance. Owns all cells, pins, and nets plus the
/// core region geometry. Cell coordinates are the mutable placement
/// state; everything else is immutable once construction finishes.
class Design {
 public:
  Design() = default;
  Design(std::string name, Rect core, double row_height)
      : name_(std::move(name)), core_(core), row_height_(row_height) {}

  const std::string& name() const { return name_; }
  const Rect& core() const { return core_; }
  double row_height() const { return row_height_; }

  CellId add_cell(Cell cell);
  NetId add_net(std::string net_name, double weight = 1.0);
  /// Attaches a pin at (offset_x, offset_y) from `cell`'s origin to `net`.
  PinId add_pin(CellId cell, NetId net, double offset_x, double offset_y);
  /// Declares a fence region; membership is assigned via assign_to_fence.
  FenceId add_fence(std::string fence_name, Rect region);
  /// Puts a movable cell under a fence constraint (one fence per cell).
  void assign_to_fence(CellId cell, FenceId fence);
  /// Registers a routing blockage rectangle (derates router capacity).
  void add_routing_blockage(Rect region) { routing_blockages_.push_back(region); }

  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_nets() const { return nets_.size(); }
  std::size_t num_pins() const { return pins_.size(); }
  std::size_t num_movable() const { return movable_.size(); }

  Cell& cell(CellId id) { return cells_[static_cast<std::size_t>(id)]; }
  const Cell& cell(CellId id) const { return cells_[static_cast<std::size_t>(id)]; }
  Net& net(NetId id) { return nets_[static_cast<std::size_t>(id)]; }
  const Net& net(NetId id) const { return nets_[static_cast<std::size_t>(id)]; }
  const Pin& pin(PinId id) const { return pins_[static_cast<std::size_t>(id)]; }

  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<Pin>& pins() const { return pins_; }
  /// Ids of movable (non-fixed) cells, in id order.
  const std::vector<CellId>& movable_cells() const { return movable_; }

  const std::vector<Fence>& fences() const { return fences_; }
  /// Fence constraint of a cell, or kNoFence.
  FenceId fence_of(CellId cell) const;
  const std::vector<Rect>& routing_blockages() const { return routing_blockages_; }

  /// Absolute layout position of a pin (cell origin + offset).
  Point pin_position(PinId id) const {
    const Pin& p = pins_[static_cast<std::size_t>(id)];
    const Cell& c = cells_[static_cast<std::size_t>(p.cell)];
    return {c.x + p.offset_x, c.y + p.offset_y};
  }

  double total_movable_area() const;
  double total_fixed_area() const;  ///< macro area clipped to the core
  /// Movable area / (core area − fixed area): the target density floor.
  double utilization() const;

  /// Gathers movable-cell center coordinates into x/y (placer interface).
  void get_movable_positions(std::vector<double>& x, std::vector<double>& y) const;
  /// Scatters movable-cell center coordinates back, clamping centers so
  /// each cell stays inside the core region — and inside its fence
  /// region when the cell carries a fence constraint.
  void set_movable_positions(const std::vector<double>& x, const std::vector<double>& y);

  /// Half-perimeter wirelength of the current placement.
  double hpwl() const;

 private:
  std::string name_;
  Rect core_{};
  double row_height_ = 1.0;
  std::vector<Cell> cells_;
  std::vector<Pin> pins_;
  std::vector<Net> nets_;
  std::vector<CellId> movable_;
  std::vector<Fence> fences_;
  std::vector<FenceId> cell_fence_;  ///< CellId-indexed; kNoFence default
  std::vector<Rect> routing_blockages_;
};

/// Bounding box of a net's pins; returns an empty/degenerate rect for
/// nets with fewer than one pin.
Rect net_bbox(const Design& design, const Net& net);

}  // namespace laco
