#include "netlist/design_stats.hpp"

#include <sstream>

namespace laco {

DesignStats compute_stats(const Design& design) {
  DesignStats s;
  s.num_cells = design.num_cells();
  s.num_movable = design.num_movable();
  s.num_nets = design.num_nets();
  s.num_pins = design.num_pins();
  for (const Cell& c : design.cells()) {
    if (c.kind == CellKind::kMacro) ++s.num_macros;
    if (c.kind == CellKind::kPad) ++s.num_pads;
  }
  double degree_sum = 0.0;
  for (const Net& n : design.nets()) {
    const int d = n.degree();
    degree_sum += d;
    s.max_net_degree = std::max(s.max_net_degree, d);
    ++s.degree_histogram[d];
  }
  s.avg_net_degree = design.num_nets() ? degree_sum / design.num_nets() : 0.0;
  s.utilization = design.utilization();
  s.macro_area_fraction =
      design.core().area() > 0.0 ? design.total_fixed_area() / design.core().area() : 0.0;
  s.num_fences = design.fences().size();
  for (const Fence& fence : design.fences()) s.num_fenced_cells += fence.members.size();
  s.num_routing_blockages = design.routing_blockages().size();
  return s;
}

std::string to_string(const DesignStats& s) {
  std::ostringstream os;
  os << "cells=" << s.num_cells << " (movable=" << s.num_movable
     << ", macros=" << s.num_macros << ", pads=" << s.num_pads << ")"
     << " nets=" << s.num_nets << " pins=" << s.num_pins
     << " avg_degree=" << s.avg_net_degree << " max_degree=" << s.max_net_degree
     << " util=" << s.utilization << " macro_frac=" << s.macro_area_fraction
     << " fences=" << s.num_fences << " (cells=" << s.num_fenced_cells << ")"
     << " blockages=" << s.num_routing_blockages;
  return os.str();
}

}  // namespace laco
