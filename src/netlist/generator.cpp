#include "netlist/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace laco {
namespace {

/// Cluster of cells with a spatial anchor; nets are drawn mostly within
/// a cluster, giving the netlist Rent's-rule-like locality.
struct Cluster {
  Point center;
  std::vector<CellId> members;
};

double compute_core_width(const GeneratorConfig& cfg, double movable_area) {
  // free_area * util = movable_area, core = free + macro
  const double free_area = movable_area / cfg.target_utilization;
  const double core_area = free_area / std::max(1e-9, 1.0 - cfg.macro_area_fraction);
  return std::sqrt(core_area / cfg.aspect_ratio);
}

/// Places `count` non-overlapping macros inside the core by rejection
/// sampling; shrinks the macro size if a spot cannot be found.
std::vector<Rect> place_macros(const GeneratorConfig& cfg, const Rect& core, Rng& rng) {
  std::vector<Rect> macros;
  if (cfg.num_macros <= 0 || cfg.macro_area_fraction <= 0.0) return macros;
  const double total_macro_area = core.area() * cfg.macro_area_fraction;
  double per_macro = total_macro_area / cfg.num_macros;
  for (int m = 0; m < cfg.num_macros; ++m) {
    double area = per_macro * rng.uniform(0.7, 1.3);
    for (int attempt = 0; attempt < 200; ++attempt) {
      const double ar = rng.uniform(0.6, 1.7);
      double w = std::sqrt(area * ar);
      double h = area / w;
      w = std::min(w, core.width() * 0.45);
      h = std::min(h, core.height() * 0.45);
      const double x = rng.uniform(core.xl, core.xh - w);
      const double y = rng.uniform(core.yl, core.yh - h);
      const Rect cand{x, y, x + w, y + h};
      // Keep a clearance band between macros so routing channels exist.
      const Rect inflated{cand.xl - 0.02 * core.width(), cand.yl - 0.02 * core.height(),
                          cand.xh + 0.02 * core.width(), cand.yh + 0.02 * core.height()};
      bool clash = false;
      for (const Rect& other : macros) {
        if (overlap_area(inflated, other) > 0.0) { clash = true; break; }
      }
      if (!clash) {
        macros.push_back(cand);
        break;
      }
      if (attempt % 50 == 49) area *= 0.8;  // give up on size, not on count
    }
  }
  return macros;
}

bool inside_any(const std::vector<Rect>& rects, Point p) {
  return std::any_of(rects.begin(), rects.end(),
                     [&](const Rect& r) { return r.contains(p); });
}

}  // namespace

Design generate_design(const GeneratorConfig& cfg) {
  if (cfg.num_cells <= 1) throw std::invalid_argument("generate_design: need >= 2 cells");
  Rng rng(cfg.seed);

  // --- Cell sizes ------------------------------------------------------
  std::vector<double> widths(static_cast<std::size_t>(cfg.num_cells));
  double movable_area = 0.0;
  for (double& w : widths) {
    // Geometric number of sites with the configured mean, min 1 site.
    const double p = 1.0 / std::max(1.0, cfg.mean_cell_sites);
    int sites = 1;
    while (sites < 16 && !rng.flip(p)) ++sites;
    w = sites * cfg.site_width;
    movable_area += w * cfg.row_height;
  }

  const double core_w = compute_core_width(cfg, movable_area);
  const double core_h = core_w * cfg.aspect_ratio;
  const Rect core{0.0, 0.0, core_w, core_h};
  Design design(cfg.name, core, cfg.row_height);

  // --- Macros ----------------------------------------------------------
  const std::vector<Rect> macro_rects = place_macros(cfg, core, rng);
  for (std::size_t m = 0; m < macro_rects.size(); ++m) {
    const Rect& r = macro_rects[m];
    Cell macro;
    macro.name = "macro_" + std::to_string(m);
    macro.kind = CellKind::kMacro;
    macro.width = r.width();
    macro.height = r.height();
    macro.x = r.xl;
    macro.y = r.yl;
    macro.fixed = true;
    design.add_cell(std::move(macro));
  }

  // --- Clusters and golden locations -----------------------------------
  const int num_clusters = std::max(4, static_cast<int>(std::sqrt(cfg.num_cells)));
  std::vector<Cluster> clusters(static_cast<std::size_t>(num_clusters));
  for (Cluster& cl : clusters) {
    // Cluster anchors avoid macro interiors so the golden arrangement is
    // realizable; a few retries suffice given the clearance bands.
    Point p;
    for (int attempt = 0; attempt < 64; ++attempt) {
      p = {rng.uniform(core.xl, core.xh), rng.uniform(core.yl, core.yh)};
      if (!inside_any(macro_rects, p)) break;
    }
    cl.center = p;
  }

  const double jitter = 0.08 * core_w;
  std::vector<CellId> std_cells;
  std_cells.reserve(widths.size());
  std::vector<int> cell_cluster(widths.size());
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const int cl = rng.uniform_int(0, num_clusters - 1);
    cell_cluster[i] = cl;
    Point golden{clusters[static_cast<std::size_t>(cl)].center.x + rng.normal(0.0, jitter),
                 clusters[static_cast<std::size_t>(cl)].center.y + rng.normal(0.0, jitter)};
    golden.x = std::clamp(golden.x, core.xl + widths[i], core.xh - widths[i]);
    golden.y = std::clamp(golden.y, core.yl + cfg.row_height, core.yh - cfg.row_height);
    Cell c;
    c.name = "c" + std::to_string(i);
    c.kind = CellKind::kStandard;
    c.width = widths[i];
    c.height = cfg.row_height;
    c.x = golden.x - c.width * 0.5;
    c.y = golden.y - c.height * 0.5;
    const CellId id = design.add_cell(std::move(c));
    clusters[static_cast<std::size_t>(cl)].members.push_back(id);
    std_cells.push_back(id);
  }

  // --- I/O pads on the periphery ---------------------------------------
  std::vector<CellId> pads;
  for (int p = 0; p < cfg.num_io_pads; ++p) {
    const int side = p % 4;
    const double t = rng.uniform(0.05, 0.95);
    Cell pad;
    pad.name = "pad_" + std::to_string(p);
    pad.kind = CellKind::kPad;
    pad.width = cfg.site_width;
    pad.height = cfg.row_height;
    pad.fixed = true;
    switch (side) {
      case 0: pad.x = core.xl; pad.y = core.yl + t * core_h; break;
      case 1: pad.x = core.xh - pad.width; pad.y = core.yl + t * core_h; break;
      case 2: pad.x = core.xl + t * core_w; pad.y = core.yl; break;
      default: pad.x = core.xl + t * core_w; pad.y = core.yh - pad.height; break;
    }
    pads.push_back(design.add_cell(std::move(pad)));
  }

  // --- Nets --------------------------------------------------------------
  const int num_nets = std::max(1, static_cast<int>(cfg.num_cells * cfg.nets_per_cell));
  const auto random_member = [&](const Cluster& cl) -> CellId {
    return cl.members[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(cl.members.size()) - 1))];
  };
  const auto pin_offset = [&](const Cell& c, double& ox, double& oy) {
    ox = rng.uniform(0.1, 0.9) * c.width;
    oy = rng.uniform(0.1, 0.9) * c.height;
  };

  for (int n = 0; n < num_nets; ++n) {
    const NetId net = design.add_net("n" + std::to_string(n));
    // Anchor cell drives the net; its cluster supplies most sinks.
    const CellId anchor = std_cells[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(std_cells.size()) - 1))];
    const Cluster& home =
        clusters[static_cast<std::size_t>(cell_cluster[static_cast<std::size_t>(anchor - static_cast<CellId>(macro_rects.size()))])];

    int degree = 2;
    const double p_stop = 1.0 / (1.0 + cfg.mean_extra_degree);
    while (degree < cfg.max_net_degree && !rng.flip(p_stop)) ++degree;

    std::vector<CellId> members{anchor};
    for (int d = 1; d < degree; ++d) {
      CellId pick;
      if (rng.flip(cfg.locality) && home.members.size() > 1) {
        pick = random_member(home);
      } else if (!pads.empty() && rng.flip(0.03)) {
        pick = pads[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(pads.size()) - 1))];
      } else {
        pick = std_cells[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(std_cells.size()) - 1))];
      }
      if (std::find(members.begin(), members.end(), pick) == members.end()) {
        members.push_back(pick);
      }
    }
    if (members.size() < 2) {
      // Guarantee 2-pin minimum: add the anchor's nearest cluster mate or
      // any other standard cell.
      CellId other = anchor;
      while (other == anchor) {
        other = std_cells[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(std_cells.size()) - 1))];
      }
      members.push_back(other);
    }
    for (const CellId cid : members) {
      double ox, oy;
      pin_offset(design.cell(cid), ox, oy);
      design.add_pin(cid, net, ox, oy);
    }
  }

  // --- Fence regions (ISPD-2015-style exclusive regions) ----------------
  const std::size_t cells_per_fence =
      static_cast<std::size_t>(cfg.fence_cell_fraction * static_cast<double>(std_cells.size()));
  std::vector<bool> fenced(design.num_cells(), false);
  for (int f = 0; f < cfg.num_fences && cells_per_fence > 0; ++f) {
    // Members: an entire cluster (plus neighbors), so fences inherit the
    // netlist locality real region constraints have.
    const int cl = rng.uniform_int(0, num_clusters - 1);
    std::vector<CellId> members;
    double member_area = 0.0;
    for (const CellId cid : clusters[static_cast<std::size_t>(cl)].members) {
      if (fenced[static_cast<std::size_t>(cid)]) continue;
      members.push_back(cid);
      member_area += design.cell(cid).area();
      if (members.size() >= cells_per_fence) break;
    }
    if (members.size() < 4) continue;
    // Region: sized for ~50% row utilization, snapped to whole placement
    // rows (so the legalizer sees its full capacity), centered near the
    // cluster, clear of macros and earlier fences.
    const double region_area = member_area / 0.5;
    bool placed_region = false;
    for (int attempt = 0; attempt < 100 && !placed_region; ++attempt) {
      const double ar = rng.uniform(0.7, 1.4);
      const int rows_needed = std::max(
          2, static_cast<int>(std::ceil(std::sqrt(region_area / ar) / cfg.row_height)));
      const double h = rows_needed * cfg.row_height;
      const double w = std::min(region_area / h * 1.1, core.width() * 0.4);
      Point c = clusters[static_cast<std::size_t>(cl)].center;
      c.x += rng.normal(0.0, 0.05 * core.width());
      c.y += rng.normal(0.0, 0.05 * core.height());
      // Snap the bottom edge to the row grid.
      double yl = core.yl +
                  std::floor((c.y - h / 2 - core.yl) / cfg.row_height) * cfg.row_height;
      yl = std::max(yl, core.yl);
      double yh = yl + h;
      if (yh > core.yh) {
        yh = core.yl + std::floor((core.yh - core.yl) / cfg.row_height) * cfg.row_height;
        yl = yh - h;
        if (yl < core.yl) continue;
      }
      Rect region{c.x - w / 2, yl, c.x + w / 2, yh};
      region.xl = std::max(region.xl, core.xl);
      region.xh = std::min(region.xh, core.xh);
      if (region.area() < region_area * 0.9) continue;
      bool clash = false;
      for (const Rect& m : macro_rects) {
        if (overlap_area(region, m) > 0.0) { clash = true; break; }
      }
      for (const Fence& other : design.fences()) {
        if (overlap_area(region, other.region) > 0.0) { clash = true; break; }
      }
      if (clash) continue;
      const FenceId fid = design.add_fence("fence_" + std::to_string(f), region);
      for (const CellId cid : members) {
        design.assign_to_fence(cid, fid);
        fenced[static_cast<std::size_t>(cid)] = true;
        // Seed the member inside its fence.
        Cell& cell = design.cell(cid);
        cell.x = std::clamp(cell.x, region.xl, region.xh - cell.width);
        cell.y = std::clamp(cell.y, region.yl, region.yh - cell.height);
      }
      placed_region = true;
    }
  }

  // --- Routing blockages --------------------------------------------------
  if (cfg.num_routing_blockages > 0 && cfg.routing_blockage_fraction > 0.0) {
    const double per_blockage =
        core.area() * cfg.routing_blockage_fraction / cfg.num_routing_blockages;
    for (int b = 0; b < cfg.num_routing_blockages; ++b) {
      const double ar = rng.uniform(0.5, 2.0);
      double w = std::min(std::sqrt(per_blockage * ar), core.width() * 0.35);
      double h = std::min(per_blockage / w, core.height() * 0.35);
      const double x = rng.uniform(core.xl, core.xh - w);
      const double y = rng.uniform(core.yl, core.yh - h);
      design.add_routing_blockage(Rect{x, y, x + w, y + h});
    }
  }

  return design;
}

}  // namespace laco
