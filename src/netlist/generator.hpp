// Synthetic circuit generator — the ISPD 2015 benchmark substitute.
//
// The real benchmarks are LEF/DEF-derived and not redistributable here,
// so we generate circuits that reproduce the *structural* properties
// the LACO paper depends on:
//   * netlist locality (Rent's-rule-style clustered connectivity) — the
//     reason wirelength-driven placement concentrates cells early
//     (the paper's Fig. 1 distribution-shift phenomenon);
//   * fixed macro blockages — the MacroRegion feature and the main
//     source of congestion hotspots;
//   * periphery I/O pads — long-range nets;
//   * realistic net degree distribution (mostly 2–5 pins, a heavy tail).
//
// The generator is fully deterministic for a given config (seed
// included), so every experiment is reproducible.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/design.hpp"

namespace laco {

struct GeneratorConfig {
  std::string name = "synthetic";
  int num_cells = 1000;             ///< movable standard cells
  double nets_per_cell = 1.0;       ///< #nets ≈ num_cells × this (ISPD ratio ≈ 1)
  double target_utilization = 0.7;  ///< movable area / free core area
  double aspect_ratio = 1.0;        ///< core height / width
  double row_height = 1.0;
  double site_width = 0.5;
  double mean_cell_sites = 2.0;     ///< mean cell width in sites (geometric)
  int num_macros = 4;
  double macro_area_fraction = 0.12;  ///< of the core area
  int num_io_pads = 64;
  double locality = 0.8;            ///< prob. a net pin stays in the anchor cluster
  double mean_extra_degree = 1.6;   ///< net degree = 2 + Geometric(mean_extra_degree)
  int max_net_degree = 32;
  /// ISPD-2015-style constraints: exclusive fence regions holding a
  /// cluster of cells each, and routing blockages derating router
  /// capacity without blocking placement.
  int num_fences = 0;
  double fence_cell_fraction = 0.08;  ///< of movable cells, per fence
  int num_routing_blockages = 0;
  double routing_blockage_fraction = 0.04;  ///< of core area, total
  std::uint64_t seed = 1;
};

/// Generates a design per the config. Movable cells are left at their
/// "golden" (cluster) locations; placers re-initialize positions anyway.
Design generate_design(const GeneratorConfig& config);

}  // namespace laco
