// ISPD 2015 benchmark analogs. The paper (Table I) evaluates on 20
// designs from the ISPD 2015 detailed-routing-driven placement suite.
// We can't ship those; this module captures each design's published
// scale (#cells, #nets) and qualitative character (macro-heaviness,
// utilization) and instantiates a synthetic analog at a configurable
// scale factor via the generator.
#pragma once

#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "netlist/generator.hpp"

namespace laco {

struct BenchmarkSpec {
  std::string name;
  int paper_cells_k = 0;   ///< #Cells in the paper's Table I, in thousands
  int paper_nets_k = 0;    ///< #Nets in the paper's Table I, in thousands
  double macro_area_fraction = 0.12;
  int num_macros = 4;
  double utilization = 0.7;
  double locality = 0.8;
  int num_fences = 0;     ///< ISPD-2015 fence regions (the *_a/_b variants)
  int num_blockages = 0;  ///< routing blockages
  bool first8 = false;    ///< member of the paper's first-8 training split
};

/// The 20 Table-I designs, in paper order.
const std::vector<BenchmarkSpec>& ispd2015_suite();

/// Spec lookup by name; throws std::out_of_range for unknown names.
const BenchmarkSpec& ispd2015_spec(const std::string& name);

/// Names in paper order.
std::vector<std::string> ispd2015_design_names();

/// Names of the first 8 designs (the paper's training split).
std::vector<std::string> ispd2015_first8_names();

/// Builds a generator config for `name` at `scale` (1.0 = paper size;
/// benches default to ~0.01 so CPU runs finish). `seed_offset` jitters
/// the seed for generating multiple placement instances per design.
GeneratorConfig ispd2015_config(const std::string& name, double scale,
                                std::uint64_t seed_offset = 0);

/// Convenience: generate the analog design directly.
Design make_ispd2015_analog(const std::string& name, double scale,
                            std::uint64_t seed_offset = 0);

}  // namespace laco
