#include "netlist/svg_plot.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace laco {
namespace {

/// Maps layout coordinates into SVG pixel space (y flipped: SVG grows
/// downward, layouts grow upward).
struct Mapper {
  const Rect core;
  const double scale;
  double x(double lx) const { return (lx - core.xl) * scale; }
  double y(double ly) const { return (core.yh - ly) * scale; }
  double w(double lw) const { return lw * scale; }
  double h(double lh) const { return lh * scale; }
};

void rect(std::ostringstream& os, const Mapper& m, const Rect& r, const std::string& fill,
          const std::string& stroke, double opacity = 1.0) {
  os << "<rect x=\"" << m.x(r.xl) << "\" y=\"" << m.y(r.yh) << "\" width=\"" << m.w(r.width())
     << "\" height=\"" << m.h(r.height()) << "\" fill=\"" << fill << "\" stroke=\"" << stroke
     << "\" stroke-width=\"0.5\" fill-opacity=\"" << opacity << "\"/>\n";
}

}  // namespace

std::string design_to_svg(const Design& design, const SvgPlotOptions& options) {
  const Rect& core = design.core();
  const double scale = options.width_px / std::max(1e-9, core.width());
  const int height_px = static_cast<int>(core.height() * scale) + 1;
  const Mapper m{core, scale};

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width_px
     << "\" height=\"" << height_px << "\" viewBox=\"0 0 " << options.width_px << ' '
     << height_px << "\">\n";
  os << "<!-- design: " << design.name() << " -->\n";
  rect(os, m, core, "#fcfcfc", "#404040");

  if (options.draw_cells) {
    for (const Cell& cell : design.cells()) {
      switch (cell.kind) {
        case CellKind::kMacro:
          rect(os, m, cell.rect(), "#6b6b6b", "#303030", 0.9);
          break;
        case CellKind::kPad:
          rect(os, m, cell.rect(), "#2e8b57", "#1e5b37", 0.9);
          break;
        case CellKind::kStandard:
          rect(os, m, cell.rect(), "#4477cc", "none", 0.7);
          break;
      }
    }
  }
  if (options.draw_fences) {
    for (const Fence& fence : design.fences()) {
      rect(os, m, fence.region, "none", "#e08020");
    }
  }
  if (options.draw_blockages) {
    for (const Rect& blockage : design.routing_blockages()) {
      rect(os, m, blockage, "#cc3333", "#881111", 0.15);
    }
  }
  if (options.overlay != nullptr) {
    const GridMap& heat = *options.overlay;
    const double lo = 0.0;
    const double hi = options.overlay_max > 0.0 ? options.overlay_max
                                                : std::max(1e-12, heat.max());
    for (int l = 0; l < heat.ny(); ++l) {
      for (int k = 0; k < heat.nx(); ++k) {
        const double t = std::clamp((heat.at(k, l) - lo) / (hi - lo), 0.0, 1.0);
        if (t < 0.05) continue;
        rect(os, m, heat.bin_rect(k, l), "#ff2200", "none", 0.6 * t);
      }
    }
  }
  os << "</svg>\n";
  return os.str();
}

bool write_svg_file(const Design& design, const std::string& path,
                    const SvgPlotOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  out << design_to_svg(design, options);
  return static_cast<bool>(out);
}

}  // namespace laco
