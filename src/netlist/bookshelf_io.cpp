#include "netlist/bookshelf_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace laco {
namespace {

const char* kind_name(CellKind kind) {
  switch (kind) {
    case CellKind::kStandard: return "std";
    case CellKind::kMacro: return "macro";
    case CellKind::kPad: return "pad";
  }
  return "std";
}

CellKind parse_kind(const std::string& word) {
  if (word == "std") return CellKind::kStandard;
  if (word == "macro") return CellKind::kMacro;
  if (word == "pad") return CellKind::kPad;
  throw std::runtime_error("bookshelf: unknown cell kind '" + word + "'");
}

}  // namespace

void write_bookshelf(const Design& design, std::ostream& out) {
  out << std::setprecision(17);  // round-trip exact for IEEE doubles
  out << "# laco bookshelf v1\n";
  out << "DESIGN " << (design.name().empty() ? "unnamed" : design.name()) << '\n';
  const Rect& c = design.core();
  out << "CORE " << c.xl << ' ' << c.yl << ' ' << c.xh << ' ' << c.yh << ' '
      << design.row_height() << '\n';
  for (const Cell& cell : design.cells()) {
    out << "CELL " << cell.name << ' ' << kind_name(cell.kind) << ' ' << cell.width << ' '
        << cell.height << ' ' << cell.x << ' ' << cell.y << ' ' << (cell.fixed ? 1 : 0) << '\n';
  }
  for (const Net& net : design.nets()) {
    out << "NET " << net.name << ' ' << net.weight << '\n';
    for (const PinId pid : net.pins) {
      const Pin& pin = design.pin(pid);
      out << "PIN " << pin.cell << ' ' << pin.offset_x << ' ' << pin.offset_y << '\n';
    }
  }
  for (const Fence& fence : design.fences()) {
    out << "FENCE " << fence.name << ' ' << fence.region.xl << ' ' << fence.region.yl << ' '
        << fence.region.xh << ' ' << fence.region.yh;
    for (const CellId member : fence.members) out << ' ' << member;
    out << '\n';
  }
  for (const Rect& b : design.routing_blockages()) {
    out << "BLOCKAGE " << b.xl << ' ' << b.yl << ' ' << b.xh << ' ' << b.yh << '\n';
  }
}

bool write_bookshelf_file(const Design& design, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_bookshelf(design, out);
  return static_cast<bool>(out);
}

Design read_bookshelf(std::istream& in) {
  std::string line;
  std::string design_name = "unnamed";
  Design design;
  bool have_core = false;
  NetId current_net = -1;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "DESIGN") {
      ls >> design_name;
    } else if (tag == "CORE") {
      Rect core;
      double row_height = 1.0;
      ls >> core.xl >> core.yl >> core.xh >> core.yh >> row_height;
      if (!ls) throw std::runtime_error("bookshelf: malformed CORE line");
      design = Design(design_name, core, row_height);
      have_core = true;
    } else if (tag == "CELL") {
      if (!have_core) throw std::runtime_error("bookshelf: CELL before CORE");
      Cell cell;
      std::string kind_word;
      int fixed = 0;
      ls >> cell.name >> kind_word >> cell.width >> cell.height >> cell.x >> cell.y >> fixed;
      if (!ls) throw std::runtime_error("bookshelf: malformed CELL line");
      cell.kind = parse_kind(kind_word);
      cell.fixed = fixed != 0;
      design.add_cell(std::move(cell));
    } else if (tag == "NET") {
      if (!have_core) throw std::runtime_error("bookshelf: NET before CORE");
      std::string net_name;
      double weight = 1.0;
      ls >> net_name >> weight;
      if (net_name.empty()) throw std::runtime_error("bookshelf: malformed NET line");
      current_net = design.add_net(net_name, weight);
    } else if (tag == "PIN") {
      if (current_net < 0) throw std::runtime_error("bookshelf: PIN before NET");
      CellId cell = kNoCell;
      double ox = 0.0, oy = 0.0;
      ls >> cell >> ox >> oy;
      if (!ls) throw std::runtime_error("bookshelf: malformed PIN line");
      design.add_pin(cell, current_net, ox, oy);
    } else if (tag == "FENCE") {
      std::string fence_name;
      Rect region;
      ls >> fence_name >> region.xl >> region.yl >> region.xh >> region.yh;
      if (!ls) throw std::runtime_error("bookshelf: malformed FENCE line");
      const FenceId fid = design.add_fence(fence_name, region);
      CellId member;
      while (ls >> member) design.assign_to_fence(member, fid);
    } else if (tag == "BLOCKAGE") {
      Rect region;
      ls >> region.xl >> region.yl >> region.xh >> region.yh;
      if (!ls) throw std::runtime_error("bookshelf: malformed BLOCKAGE line");
      design.add_routing_blockage(region);
    } else {
      throw std::runtime_error("bookshelf: unknown tag '" + tag + "'");
    }
  }
  if (!have_core) throw std::runtime_error("bookshelf: missing CORE");
  return design;
}

Design read_bookshelf_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("bookshelf: cannot open '" + path + "'");
  return read_bookshelf(in);
}

}  // namespace laco
