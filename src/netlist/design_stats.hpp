// Summary statistics over a Design: used by tests (generator sanity),
// the README tables, and the bench headers that echo Table I's
// #Cells / #Nets columns.
#pragma once

#include <map>
#include <string>

#include "netlist/design.hpp"

namespace laco {

struct DesignStats {
  std::size_t num_cells = 0;     ///< all cells including macros and pads
  std::size_t num_movable = 0;
  std::size_t num_macros = 0;
  std::size_t num_pads = 0;
  std::size_t num_nets = 0;
  std::size_t num_pins = 0;
  double avg_net_degree = 0.0;
  int max_net_degree = 0;
  double utilization = 0.0;
  double macro_area_fraction = 0.0;  ///< fixed macro area / core area
  std::size_t num_fences = 0;
  std::size_t num_fenced_cells = 0;
  std::size_t num_routing_blockages = 0;
  std::map<int, std::size_t> degree_histogram;
};

DesignStats compute_stats(const Design& design);

/// Human-readable one-design summary block.
std::string to_string(const DesignStats& stats);

}  // namespace laco
