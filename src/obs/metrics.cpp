#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace laco::obs {
namespace {

/// Default bounds for histogram() without explicit bounds: 0.05 ms to
/// ~52 s stepping ×2 — wide enough for both sub-millisecond batched
/// forwards and multi-second placement phases.
std::vector<double> default_latency_bounds() {
  return Histogram::exponential_bounds(0.05, 50'000.0, 2.0);
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

double HistogramSnapshot::percentile(double p) const {
  if (total == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Continuous target rank in [0, total]; interpolate within the bucket
  // where the cumulative count crosses it.
  const double rank = clamped / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double lo = i == 0 ? min : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : max;
      const double fraction =
          counts[i] == 0 ? 0.0 : (rank - before) / static_cast<double>(counts[i]);
      const double value = lo + (hi - lo) * fraction;
      return std::clamp(value, min, max);
    }
  }
  return max;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  LACO_CHECK(!bounds_.empty());
  LACO_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  MutexLock lock(mutex_);
  ++counts_[bucket];
  sum_ += value;
  if (total_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++total_;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  MutexLock lock(mutex_);
  s.counts = counts_;
  s.total = total_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  return s;
}

void Histogram::reset() {
  MutexLock lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi, double factor) {
  LACO_CHECK(lo > 0.0);
  LACO_CHECK(factor > 1.0);
  std::vector<double> bounds;
  for (double b = lo; ; b *= factor) {
    bounds.push_back(b);
    if (b >= hi) break;
  }
  return bounds;
}

Json MetricsSnapshot::to_json() const {
  Json counters_json = Json::object();
  for (const auto& [name, value] : counters) counters_json[name] = value;
  Json gauges_json = Json::object();
  for (const auto& [name, value] : gauges) gauges_json[name] = value;
  Json histograms_json = Json::object();
  for (const auto& [name, h] : histograms) {
    Json entry = Json::object();
    entry["count"] = h.total;
    entry["mean"] = h.mean();
    entry["min"] = h.min;
    entry["max"] = h.max;
    entry["p50"] = h.percentile(50.0);
    entry["p95"] = h.percentile(95.0);
    entry["p99"] = h.percentile(99.0);
    histograms_json[name] = std::move(entry);
  }
  Json out = Json::object();
  out["counters"] = std::move(counters_json);
  out["gauges"] = std::move(gauges_json);
  out["histograms"] = std::move(histograms_json);
  return out;
}

std::string MetricsSnapshot::to_string(const std::string& prefix) const {
  const auto matches = [&prefix](const std::string& name) {
    return prefix.empty() || name.rfind(prefix, 0) == 0;
  };
  std::string out;
  for (const auto& [name, value] : counters) {
    if (matches(name)) out += name + " = " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    if (matches(name)) out += name + " = " + fmt_double(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    if (!matches(name)) continue;
    out += name + " = count " + std::to_string(h.total) + ", mean " + fmt_double(h.mean()) +
           ", p50 " + fmt_double(h.percentile(50.0)) + ", p95 " + fmt_double(h.percentile(95.0)) +
           ", p99 " + fmt_double(h.percentile(99.0)) + "\n";
  }
  return out;
}

Counter& MetricRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(bounds.empty() ? default_latency_bounds()
                                                      : std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot MetricRegistry::snapshot() const {
  MetricsSnapshot s;
  MutexLock lock(mutex_);
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  return s;
}

void MetricRegistry::reset() {
  MutexLock lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

}  // namespace laco::obs
