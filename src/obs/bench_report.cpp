#include "obs/bench_report.hpp"

#include <fstream>
#include <utility>

namespace laco::obs {

BenchReporter::BenchReporter(std::string name) : name_(std::move(name)) {}

void BenchReporter::set_setting(const std::string& key, Json value) {
  settings_[key] = std::move(value);
}

void BenchReporter::set_metric(const std::string& key, double value) {
  metrics_[key] = value;
}

void BenchReporter::add_row(const std::string& series, Json row) {
  Json& slot = series_[series];
  if (slot.is_null()) slot = Json::array();
  slot.push_back(std::move(row));
}

Json BenchReporter::to_json() const {
  Json out = Json::object();
  out["schema"] = "laco-bench";
  out["schema_version"] = kSchemaVersion;
  out["name"] = name_;
  out["settings"] = settings_;
  out["metrics"] = metrics_;
  out["series"] = series_;
  return out;
}

bool BenchReporter::write(const std::string& path) const {
  const std::string target = path.empty() ? "BENCH_" + name_ + ".json" : path;
  std::ofstream out(target, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_json().dump(1);
  return static_cast<bool>(out);
}

std::string BenchReporter::validate(const Json& report) {
  if (!report.is_object()) return "report is not a JSON object";
  if (!report.contains("schema") || !report.at("schema").is_string() ||
      report.at("schema").as_string() != "laco-bench") {
    return "missing or wrong \"schema\" (want \"laco-bench\")";
  }
  if (!report.contains("schema_version") || !report.at("schema_version").is_number() ||
      report.at("schema_version").as_int() != kSchemaVersion) {
    return "missing or unsupported \"schema_version\"";
  }
  if (!report.contains("name") || !report.at("name").is_string() ||
      report.at("name").as_string().empty()) {
    return "missing \"name\"";
  }
  for (const char* section : {"settings", "metrics", "series"}) {
    if (!report.contains(section) || !report.at(section).is_object()) {
      return std::string("missing object section \"") + section + "\"";
    }
  }
  for (const auto& [key, value] : report.at("metrics").as_object()) {
    if (!value.is_number()) return "metric \"" + key + "\" is not a number";
  }
  for (const auto& [key, value] : report.at("series").as_object()) {
    if (!value.is_array()) return "series \"" + key + "\" is not an array";
  }
  return "";
}

}  // namespace laco::obs
