#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace laco::obs {
namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  throw std::runtime_error(std::string("Json: expected ") + want + ", holds type #" +
                           std::to_string(static_cast<int>(got)));
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  // Exactly-integral values print without a fraction so counters
  // round-trip as integers (doubles are exact up to 2^53).
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

/// Recursive-descent parser over a byte range.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("Json::parse: " + why + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == '}') return Json(std::move(members));
      if (sep != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray elements;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(elements));
    }
    for (;;) {
      elements.push_back(parse_value());
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == ']') return Json(std::move(elements));
      if (sep != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode (no surrogate-pair handling; the observability
          // artifacts are ASCII, escapes exist for control chars).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      eat_digits();
    }
    if (!digits) fail("expected a value");
    return Json(std::stod(text_.substr(start, pos_ - start)));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) type_error("bool", type());
  return std::get<bool>(value_);
}

double Json::as_double() const {
  if (!is_number()) type_error("number", type());
  return std::get<double>(value_);
}

std::int64_t Json::as_int() const {
  const double d = as_double();
  if (d != std::floor(d)) throw std::runtime_error("Json: number is not integral");
  return static_cast<std::int64_t>(d);
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("string", type());
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) type_error("array", type());
  return std::get<JsonArray>(value_);
}

JsonArray& Json::as_array() {
  if (!is_array()) type_error("array", type());
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) type_error("object", type());
  return std::get<JsonObject>(value_);
}

JsonObject& Json::as_object() {
  if (!is_object()) type_error("object", type());
  return std::get<JsonObject>(value_);
}

bool Json::contains(const std::string& key) const {
  if (!is_object()) return false;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return v;
  }
  throw std::runtime_error("Json: missing key '" + key + "'");
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  JsonObject& members = as_object();
  for (auto& [k, v] : members) {
    if (k == key) return v;
  }
  members.emplace_back(key, Json());
  return members.back().second;
}

void Json::push_back(Json value) {
  if (is_null()) value_ = JsonArray{};
  as_array().push_back(std::move(value));
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  return 0;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += std::get<bool>(value_) ? "true" : "false"; break;
    case Type::kNumber: append_number(out, std::get<double>(value_)); break;
    case Type::kString: append_escaped(out, std::get<std::string>(value_)); break;
    case Type::kArray: {
      const JsonArray& elements = std::get<JsonArray>(value_);
      if (elements.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < elements.size(); ++i) {
        if (i > 0) out += pretty ? "," : ", ";
        newline_pad(depth + 1);
        elements[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const JsonObject& members = std::get<JsonObject>(value_);
      if (members.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out += pretty ? "," : ", ";
        newline_pad(depth + 1);
        append_escaped(out, members[i].first);
        out += ": ";
        members[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace laco::obs
