#include "obs/trace.hpp"

#include <fstream>
#include <utility>

namespace laco::obs {

void TraceRecorder::start() {
  MutexLock lock(mutex_);
  events_.clear();
  tids_.clear();
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::record(std::string name, std::string category,
                           std::chrono::steady_clock::time_point begin,
                           std::chrono::steady_clock::time_point end) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  MutexLock lock(mutex_);
  const auto [it, inserted] =
      tids_.try_emplace(std::this_thread::get_id(), static_cast<int>(tids_.size()));
  event.tid = it->second;
  event.ts_us = std::chrono::duration<double, std::micro>(begin - epoch_).count();
  event.dur_us = std::chrono::duration<double, std::micro>(end - begin).count();
  events_.push_back(std::move(event));
}

std::size_t TraceRecorder::event_count() const {
  MutexLock lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  MutexLock lock(mutex_);
  return events_;
}

void TraceRecorder::clear() {
  MutexLock lock(mutex_);
  events_.clear();
  tids_.clear();
}

Json TraceRecorder::chrome_trace() const {
  Json events_json = Json::array();
  for (const TraceEvent& event : events()) {
    Json e = Json::object();
    e["name"] = event.name;
    e["cat"] = event.category;
    e["ph"] = "X";
    e["ts"] = event.ts_us;
    e["dur"] = event.dur_us;
    e["pid"] = 1;
    e["tid"] = event.tid;
    events_json.push_back(std::move(e));
  }
  Json out = Json::object();
  out["traceEvents"] = std::move(events_json);
  out["displayTimeUnit"] = "ms";
  return out;
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << chrome_trace().dump(1);
  return static_cast<bool>(out);
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

TraceSpan::TraceSpan(std::string name, std::string category)
    : active_(TraceRecorder::global().enabled()) {
  if (!active_) return;
  name_ = std::move(name);
  category_ = std::move(category);
  begin_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceRecorder::global().record(std::move(name_), std::move(category_), begin_,
                                 std::chrono::steady_clock::now());
}

PhaseSpan::PhaseSpan(RuntimeBreakdown* breakdown, const char* name)
    : breakdown_(breakdown), name_(name), tracing_(TraceRecorder::global().enabled()) {
  if (breakdown_ != nullptr || tracing_) begin_ = std::chrono::steady_clock::now();
}

PhaseSpan::~PhaseSpan() {
  if (breakdown_ == nullptr && !tracing_) return;
  const auto end = std::chrono::steady_clock::now();
  if (breakdown_ != nullptr) {
    breakdown_->add(name_, std::chrono::duration<double>(end - begin_).count());
  }
  if (tracing_) TraceRecorder::global().record(name_, "phase", begin_, end);
}

}  // namespace laco::obs
