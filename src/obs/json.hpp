// Minimal JSON value type — the serialization substrate of the
// observability layer (docs/OBSERVABILITY.md). One recursive value
// covers both directions:
//   * building: trace exports, metric snapshots, BENCH_*.json reports;
//   * parsing: golden-file regression tests and structural validation
//     of emitted artifacts (Chrome traces, bench schemas).
//
// Objects preserve insertion order (benches and goldens emit keys in a
// fixed order, so output is byte-deterministic for identical inputs);
// numbers are doubles, printed as integers when exactly integral so
// counters round-trip cleanly up to 2^53.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace laco::obs {

class Json;

/// Ordered key/value pairs; lookup is linear (objects here are small).
using JsonObject = std::vector<std::pair<std::string, Json>>;
using JsonArray = std::vector<Json>;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : value_(b) {}                // NOLINT(google-explicit-constructor)
  Json(double d) : value_(d) {}              // NOLINT(google-explicit-constructor)
  Json(int i) : value_(static_cast<double>(i)) {}  // NOLINT(google-explicit-constructor)
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}   // NOLINT
  Json(std::uint64_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}        // NOLINT
  Json(std::string s) : value_(std::move(s)) {}          // NOLINT
  Json(JsonArray a) : value_(std::move(a)) {}            // NOLINT
  Json(JsonObject o) : value_(std::move(o)) {}           // NOLINT

  static Json object() { return Json(JsonObject{}); }
  static Json array() { return Json(JsonArray{}); }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;  ///< as_double, checked integral
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

  /// Object access. set() replaces an existing key; operator[] creates
  /// the key (converting a null value to an empty object first).
  bool contains(const std::string& key) const;
  const Json& at(const std::string& key) const;  ///< throws if absent
  Json& operator[](const std::string& key);
  void set(const std::string& key, Json value) { (*this)[key] = std::move(value); }

  /// Array append (converts a null value to an empty array first).
  void push_back(Json value);
  std::size_t size() const;  ///< elements (array) or members (object)

  /// Renders the value. indent < 0: compact one-liner; otherwise
  /// pretty-printed with `indent` spaces per level and a trailing '\n'.
  std::string dump(int indent = -1) const;

  /// Parses a complete JSON document; throws std::runtime_error with a
  /// byte offset on malformed input or trailing garbage.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

}  // namespace laco::obs
