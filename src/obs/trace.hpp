// Tracing spans — RAII scopes that record per-thread begin/end events
// and export Chrome `trace_event` JSON, loadable in chrome://tracing or
// https://ui.perfetto.dev (docs/OBSERVABILITY.md).
//
// Recording is off by default: TraceSpan's constructor is one relaxed
// atomic load when disabled, so spans stay in hot paths permanently
// (`laco place --trace-out` flips them on for a run). Events carry a
// small per-thread tid so nested spans from concurrent workers render
// as separate, well-nested tracks.
//
// PhaseSpan is the migration bridge: one RAII object that both
// accumulates into a RuntimeBreakdown (the Fig. 8 phase tables) and
// emits a trace span, replacing the optional<ScopedPhase> pattern.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace laco::obs {

/// One completed span (Chrome "X" complete event).
struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;   ///< begin, microseconds since recorder start()
  double dur_us = 0.0;  ///< duration, microseconds
  int tid = 0;          ///< small dense id, assigned per recording thread
};

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Clears previous events and starts recording (idempotent).
  void start() LACO_EXCLUDES(mutex_);
  /// Stops recording; recorded events stay available for export.
  void stop() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one completed span for the calling thread. No-op while
  /// disabled (spans racing a stop() may still land; harmless).
  void record(std::string name, std::string category,
              std::chrono::steady_clock::time_point begin,
              std::chrono::steady_clock::time_point end) LACO_EXCLUDES(mutex_);

  std::size_t event_count() const LACO_EXCLUDES(mutex_);
  std::vector<TraceEvent> events() const LACO_EXCLUDES(mutex_);
  void clear() LACO_EXCLUDES(mutex_);

  /// {"traceEvents": [{"name", "cat", "ph": "X", "ts", "dur", "pid",
  /// "tid"}...], "displayTimeUnit": "ms"} — the Chrome trace format.
  Json chrome_trace() const LACO_EXCLUDES(mutex_);
  /// Writes chrome_trace() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// The process-wide recorder every span reports into.
  static TraceRecorder& global();

 private:
  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_;
  std::chrono::steady_clock::time_point epoch_ LACO_GUARDED_BY(mutex_);
  std::vector<TraceEvent> events_ LACO_GUARDED_BY(mutex_);
  std::map<std::thread::id, int> tids_ LACO_GUARDED_BY(mutex_);
};

/// RAII span against the global recorder. Construction while disabled
/// costs one atomic load; name/category are only copied when recording.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, std::string category = "laco");
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
  std::string name_;
  std::string category_;
  std::chrono::steady_clock::time_point begin_;
};

/// RAII phase probe: accumulates elapsed seconds into an optional
/// RuntimeBreakdown (Fig. 8 tables) and emits a trace span under the
/// "phase" category. Null breakdown disables only the breakdown half.
class PhaseSpan {
 public:
  PhaseSpan(RuntimeBreakdown* breakdown, const char* name);
  ~PhaseSpan();
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  RuntimeBreakdown* breakdown_;
  const char* name_;
  bool tracing_;
  std::chrono::steady_clock::time_point begin_;
};

}  // namespace laco::obs
