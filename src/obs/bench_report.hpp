// BenchReporter — schema-versioned machine-readable bench results.
// Every bench that feeds the perf trajectory writes one BENCH_<name>.json
// next to its human-readable table, so CI can archive the numbers and
// regressions are diffable (docs/OBSERVABILITY.md has the schema).
//
// Layout (schema "laco-bench", version 1):
//   {
//     "schema": "laco-bench",
//     "schema_version": 1,
//     "name": "serve",
//     "settings": { ...bench knobs, values of any JSON type... },
//     "metrics":  { ...headline numbers, name -> number... },
//     "series":   { ...optional named arrays of row objects... }
//   }
#pragma once

#include <string>

#include "obs/json.hpp"

namespace laco::obs {

class BenchReporter {
 public:
  static constexpr int kSchemaVersion = 1;

  explicit BenchReporter(std::string name);

  /// Records a bench knob (grid size, request count, scale ...).
  void set_setting(const std::string& key, Json value);
  /// Records a headline metric; must be a number.
  void set_metric(const std::string& key, double value);
  /// Appends one row object to the named series (created on demand).
  void add_row(const std::string& series, Json row);

  const std::string& name() const { return name_; }
  Json to_json() const;

  /// Writes to_json() to `path` (default "BENCH_<name>.json" in the
  /// working directory); false on I/O failure.
  bool write(const std::string& path = "") const;

  /// Structural schema check for a parsed report: returns an empty
  /// string when `report` is a valid laco-bench v1 document, otherwise
  /// a description of the first problem. Used by tests and CI smoke.
  static std::string validate(const Json& report);

 private:
  std::string name_;
  Json settings_ = Json::object();
  Json metrics_ = Json::object();
  Json series_ = Json::object();
};

}  // namespace laco::obs
