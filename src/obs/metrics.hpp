// Thread-safe metric registry — the one place every subsystem reports
// its telemetry (docs/OBSERVABILITY.md). Three instrument kinds:
//
//   * Counter   — monotonically increasing uint64 (requests, failures);
//   * Gauge     — last-write-wins double (queue depth, in-flight);
//   * Histogram — fixed-bucket distribution with p50/p95/p99 estimated
//                 by linear interpolation within the bucket (latency,
//                 batch occupancy).
//
// Instruments are created on first use and live for the registry's
// lifetime, so references returned by counter()/gauge()/histogram() are
// stable and may be cached in hot paths (serve::InferenceService does).
// Counters and gauges are lock-free atomics; histograms and the name
// maps are LACO_GUARDED_BY-annotated mutexes, proven by the clang
// -Wthread-safety CI job (docs/STATIC_ANALYSIS.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace laco::obs {

/// Monotonic event count. add() is wait-free; value() is a relaxed read
/// (totals are exact once writer threads are quiesced, e.g. joined).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value, plus a max-accumulate for
/// high-water marks.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if `v` is greater (high-water mark).
  void record_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of a histogram; percentile() interpolates
/// linearly inside the bucket containing the target rank, clamped to
/// the observed [min, max]. The error bound is therefore one bucket
/// width (tested against a sorted-vector oracle in test_properties).
struct HistogramSnapshot {
  std::vector<double> bounds;         ///< finite upper bucket bounds, ascending
  std::vector<std::uint64_t> counts;  ///< bounds.size()+1 entries; last = overflow
  std::uint64_t total = 0;
  double sum = 0.0;
  double min = 0.0;  ///< observed extrema (0 when total == 0)
  double max = 0.0;

  double mean() const { return total == 0 ? 0.0 : sum / static_cast<double>(total); }
  double percentile(double p) const;  ///< p in [0, 100]
};

/// Fixed-bucket histogram. Bucket i counts values <= bounds[i] (first
/// matching bound); an implicit overflow bucket counts the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) LACO_EXCLUDES(mutex_);
  HistogramSnapshot snapshot() const LACO_EXCLUDES(mutex_);
  void reset() LACO_EXCLUDES(mutex_);

  /// Geometric bucket bounds from `lo` up to at least `hi`, stepping by
  /// `factor` — the standard latency layout (e.g. 0.05ms … 50s, ×2).
  static std::vector<double> exponential_bounds(double lo, double hi, double factor = 2.0);

 private:
  const std::vector<double> bounds_;
  mutable Mutex mutex_;
  std::vector<std::uint64_t> counts_ LACO_GUARDED_BY(mutex_);
  std::uint64_t total_ LACO_GUARDED_BY(mutex_) = 0;
  double sum_ LACO_GUARDED_BY(mutex_) = 0.0;
  double min_ LACO_GUARDED_BY(mutex_) = 0.0;
  double max_ LACO_GUARDED_BY(mutex_) = 0.0;
};

/// Everything the registry knows, copied at one instant.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count", "mean", "min", "max", "p50", "p95", "p99"}}}.
  Json to_json() const;
  /// Human-readable lines ("name = value"), for CLI stats dumps.
  /// `prefix` filters to metric names starting with it.
  std::string to_string(const std::string& prefix = "") const;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Get-or-create by name. The returned reference is stable for the
  /// registry's lifetime. For histogram(), `bounds` applies only on
  /// first creation (empty = default exponential latency bounds).
  Counter& counter(const std::string& name) LACO_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) LACO_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {})
      LACO_EXCLUDES(mutex_);

  MetricsSnapshot snapshot() const LACO_EXCLUDES(mutex_);

  /// Zeroes every registered instrument without destroying it — cached
  /// references stay valid (tests isolate themselves with this).
  void reset() LACO_EXCLUDES(mutex_);

  /// The process-wide registry every subsystem reports into.
  static MetricRegistry& global();

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ LACO_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ LACO_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ LACO_GUARDED_BY(mutex_);
};

}  // namespace laco::obs
