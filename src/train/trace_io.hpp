// Binary (de)serialization of placement traces — the training dataset.
// Collecting traces (placement + routing per run) dominates experiment
// turnaround; caching them on disk lets benches and notebooks reuse one
// collection across schemes and sessions.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "train/dataset.hpp"

namespace laco {

void save_traces(const std::vector<PlacementTrace>& traces, std::ostream& out);
bool save_traces_file(const std::vector<PlacementTrace>& traces, const std::string& path);

/// Throws std::runtime_error on malformed input.
std::vector<PlacementTrace> load_traces(std::istream& in);
std::vector<PlacementTrace> load_traces_file(const std::string& path);

}  // namespace laco
