#include "train/dataset.hpp"

#include "util/rng.hpp"

#include <functional>

#include "netlist/ispd2015_suite.hpp"
#include "util/logging.hpp"

namespace laco {

PlacementTrace collect_trace(Design& design, const TraceCollectionConfig& config) {
  PlacementTrace trace;
  trace.design_name = design.name();
  trace.spacing = config.snapshot.spacing;

  SnapshotCollector collector(config.snapshot);
  GlobalPlacer placer(design, config.placer);
  placer.set_observer(std::ref(collector));
  const PlacementResult result = placer.run();
  trace.final_overflow = result.final_overflow;

  // Label: legalize + detailed-place + route the final placement.
  const PlacementEvaluation eval = evaluate_placement(design, config.router);
  trace.final_hpwl = eval.hpwl;
  trace.congestion_label = eval.routing.congestion;
  trace.snapshots = std::move(collector.snapshots());
  return trace;
}

std::vector<PlacementTrace> collect_traces(const std::vector<std::string>& design_names,
                                           double scale, int runs_per_design,
                                           const TraceCollectionConfig& config) {
  std::vector<PlacementTrace> traces;
  for (const std::string& name : design_names) {
    for (int run = 0; run < runs_per_design; ++run) {
      Design design = make_ispd2015_analog(name, scale, static_cast<std::uint64_t>(run));
      TraceCollectionConfig run_config = config;
      // The paper generates its 100 solutions per design "with different
      // parameters": jitter the placer seed and its main knobs per run.
      Rng jitter(config.placer.seed + static_cast<unsigned>(run * 977 + 1));
      run_config.placer.seed = static_cast<unsigned>(jitter.engine()());
      run_config.placer.target_overflow *= jitter.uniform(0.85, 1.2);
      run_config.placer.lambda_mult = 1.0 + (config.placer.lambda_mult - 1.0) * jitter.uniform(0.8, 1.3);
      run_config.placer.gamma_overflow_factor *= jitter.uniform(0.8, 1.25);
      run_config.placer.init_noise_frac *= jitter.uniform(0.5, 2.0);
      LACO_LOG_INFO << "collect_trace " << name << " run " << run;
      traces.push_back(collect_trace(design, run_config));
    }
  }
  return traces;
}

}  // namespace laco
