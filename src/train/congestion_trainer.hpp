// Trainer for the congestion prediction model f. Samples are prepared
// by the caller (scheme-dependent input assembly lives in laco/pipeline)
// and the label is always the routed congestion map of the trace's final
// placement — matching the paper's training protocol where ground truth
// comes from global routing of completed placements.
#pragma once

#include <vector>

#include "models/congestion_fcn.hpp"
#include "models/model_io.hpp"
#include "train/dataset.hpp"
#include "train/lookahead_trainer.hpp"  // TrainHistory

namespace laco {

struct CongestionSample {
  nn::Tensor input;  ///< [1, Cin, H, W]
  nn::Tensor label;  ///< [1, 1, H, W]
};

struct CongestionTrainerConfig {
  int epochs = 15;
  float lr = 1e-3f;
  int batch_size = 1;             ///< samples stacked per optimizer step
  double validation_fraction = 0.0;  ///< held-out tail of the sample list
  unsigned seed = 13;
};

/// DREAM-Cong protocol: end-of-placement 3-channel features → label.
std::vector<CongestionSample> build_dreamcong_samples(const std::vector<PlacementTrace>& traces,
                                                      const FeatureScale& scale);

/// Feature scale fitted on the traces' full-resolution frames.
FeatureScale fit_congestion_scale(const std::vector<PlacementTrace>& traces);

TrainHistory train_congestion(CongestionFcn& model, const std::vector<CongestionSample>& samples,
                              const CongestionTrainerConfig& config);

/// Mean MSE over samples (no grad).
double evaluate_congestion(const CongestionFcn& model,
                           const std::vector<CongestionSample>& samples);

}  // namespace laco
