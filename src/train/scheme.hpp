// The congestion-optimization schemes compared in the paper's
// experiments (Sec. IV-B and the Sec. IV-C ablations), and the traits
// that configure models and penalty plumbing per scheme.
#pragma once

#include <string>

namespace laco {

enum class LacoScheme {
  kDreamPlace,     ///< no congestion penalty (baseline placer)
  kDreamCong,      ///< congestion prediction only [22]
  kLookAheadOnly,  ///< predicted [r̄, p̄, m̄], no flow, no VAE
  kCellFlow,       ///< + cell flow channels into g and f
  kCellFlowKL,     ///< + VAE invariant feature space — the full LACO
  kNoFlowKL,       ///< CellFlowKL minus everything about flow (Fig. 7)
  kLessFlowKL,     ///< g keeps flow, f does not consume it (Fig. 7)
};

struct SchemeTraits {
  bool uses_lookahead = false;  ///< has a look-ahead model g
  bool g_uses_flow = false;     ///< g's frames include the flow pair
  bool f_uses_flow = false;     ///< f consumes predicted + current flow
  bool uses_vae = false;        ///< invariant-feature-space branch on g
  bool uses_penalty = false;    ///< placement objective includes η·L
};

constexpr SchemeTraits traits_of(LacoScheme scheme) {
  switch (scheme) {
    case LacoScheme::kDreamPlace:
      return {false, false, false, false, false};
    case LacoScheme::kDreamCong:
      return {false, false, false, false, true};
    case LacoScheme::kLookAheadOnly:
      return {true, false, false, false, true};
    case LacoScheme::kCellFlow:
      return {true, true, true, false, true};
    case LacoScheme::kCellFlowKL:
      return {true, true, true, true, true};
    case LacoScheme::kNoFlowKL:
      return {true, false, false, true, true};
    case LacoScheme::kLessFlowKL:
      return {true, true, false, true, true};
  }
  return {};
}

/// Channels per frame for the look-ahead model under this scheme.
constexpr int g_channels(LacoScheme scheme) {
  return traits_of(scheme).g_uses_flow ? 5 : 3;
}

/// Input channels for the congestion model f under this scheme:
/// DREAM-Cong sees the raw 3-channel stack; look-ahead schemes see the
/// predicted frame plus the current frame as a residual shortcut.
constexpr int f_in_channels(LacoScheme scheme) {
  const SchemeTraits t = traits_of(scheme);
  if (!t.uses_lookahead) return 3;
  const int per = t.f_uses_flow ? 5 : 3;
  return per * 2;  // prediction + shortcut
}

inline std::string to_string(LacoScheme scheme) {
  switch (scheme) {
    case LacoScheme::kDreamPlace: return "DREAMPlace";
    case LacoScheme::kDreamCong: return "DREAM-Cong";
    case LacoScheme::kLookAheadOnly: return "Look-ahead-only";
    case LacoScheme::kCellFlow: return "Cell-flow";
    case LacoScheme::kCellFlowKL: return "Cell-flow+KL";
    case LacoScheme::kNoFlowKL: return "No-flow-KL";
    case LacoScheme::kLessFlowKL: return "Less-flow-KL";
  }
  return "?";
}

}  // namespace laco
