// Trainer for the look-ahead model g: self-supervised next-frame
// prediction over snapshot sequences, with the multi-task loss of
// Sec. III-C/III-D — prediction MSE + VAE KL + VAE reconstruction.
#pragma once

#include <algorithm>
#include <vector>

#include "models/lookahead_simvp.hpp"
#include "models/model_io.hpp"
#include "train/dataset.hpp"

namespace laco {

/// One supervised pair: C history frames → the frame K iterations later.
/// Pointers reference snapshots owned by the traces (low-res frames).
struct LookAheadSample {
  std::vector<const FeatureFrame*> history;
  const FeatureFrame* target = nullptr;
};

struct LookAheadTrainerConfig {
  int epochs = 10;
  float lr = 1e-3f;
  float kl_weight = 0.01f;
  float recon_weight = 0.1f;
  unsigned seed = 11;
};

struct TrainHistory {
  std::vector<double> epoch_losses;
  /// Per-epoch held-out loss; empty when no validation split was used.
  std::vector<double> val_losses;
  double final_loss() const { return epoch_losses.empty() ? 0.0 : epoch_losses.back(); }
  double best_val_loss() const {
    return val_losses.empty() ? 0.0 : *std::min_element(val_losses.begin(), val_losses.end());
  }
};

/// All (history, target) windows from the traces' low-resolution frames.
std::vector<LookAheadSample> build_lookahead_samples(const std::vector<PlacementTrace>& traces,
                                                     int frames);

/// Feature scale fitted on the traces' low-resolution frames.
FeatureScale fit_lookahead_scale(const std::vector<PlacementTrace>& traces);

TrainHistory train_lookahead(LookAheadModel& model, const std::vector<LookAheadSample>& samples,
                             const FeatureScale& scale, const LookAheadTrainerConfig& config);

/// Mean prediction MSE of g over held-out samples (no VAE terms).
double evaluate_lookahead(const LookAheadModel& model,
                          const std::vector<LookAheadSample>& samples,
                          const FeatureScale& scale);

}  // namespace laco
