// Training data pipeline: run placements, snapshot feature frames,
// label final placements with the global router — the reproduction of
// the paper's "100 placement solutions per design, labeled by Innovus"
// protocol (Sec. IV-A).
#pragma once

#include <string>
#include <vector>

#include "router/congestion_eval.hpp"
#include "train/snapshot.hpp"

namespace laco {

/// One placement run: its snapshot sequence plus the routed congestion
/// label of the final (legalized) placement.
struct PlacementTrace {
  std::string design_name;
  std::vector<Snapshot> snapshots;
  GridMap congestion_label;     ///< at the congestion-model resolution
  int spacing = 50;             ///< K used during collection
  double final_hpwl = 0.0;
  double final_overflow = 1.0;
};

struct TraceCollectionConfig {
  SnapshotConfig snapshot;
  GlobalPlacerOptions placer;
  GlobalRouterConfig router;
};

/// Places `design` (mutating it), collecting snapshots, then legalizes
/// and routes to produce the label.
PlacementTrace collect_trace(Design& design, const TraceCollectionConfig& config);

/// Collects `runs_per_design` traces for each named ISPD-2015 analog at
/// `scale`, jittering the placer seed per run (the parameter-variation
/// protocol of Sec. IV-A).
std::vector<PlacementTrace> collect_traces(const std::vector<std::string>& design_names,
                                           double scale, int runs_per_design,
                                           const TraceCollectionConfig& config);

}  // namespace laco
