#include "train/congestion_trainer.hpp"

#include "nn/ops.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "nn/optimizer.hpp"
#include "util/logging.hpp"

namespace laco {

std::vector<CongestionSample> build_dreamcong_samples(const std::vector<PlacementTrace>& traces,
                                                      const FeatureScale& scale) {
  std::vector<CongestionSample> samples;
  for (const PlacementTrace& trace : traces) {
    if (trace.snapshots.empty()) continue;
    CongestionSample sample;
    sample.input = frame_to_tensor(trace.snapshots.back().frame, scale, 3);
    sample.label = gridmap_to_tensor(trace.congestion_label);
    samples.push_back(std::move(sample));
  }
  return samples;
}

FeatureScale fit_congestion_scale(const std::vector<PlacementTrace>& traces) {
  std::vector<const FeatureFrame*> frames;
  for (const PlacementTrace& trace : traces) {
    for (const Snapshot& snap : trace.snapshots) frames.push_back(&snap.frame);
  }
  return compute_feature_scale(frames);
}

TrainHistory train_congestion(CongestionFcn& model, const std::vector<CongestionSample>& samples,
                              const CongestionTrainerConfig& config) {
  TrainHistory history;
  if (samples.empty()) return history;

  // Optional validation split: deterministic tail of the sample list.
  std::size_t train_count = samples.size();
  std::vector<CongestionSample> validation;
  if (config.validation_fraction > 0.0 && samples.size() >= 4) {
    const std::size_t val_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(config.validation_fraction * samples.size()));
    train_count = samples.size() - val_count;
    validation.assign(samples.begin() + static_cast<std::ptrdiff_t>(train_count), samples.end());
  }

  nn::Adam optimizer(model.parameters(), config.lr);
  std::mt19937 rng(config.seed);
  std::vector<std::size_t> order(train_count);
  std::iota(order.begin(), order.end(), 0);
  const int batch = std::max(1, config.batch_size);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < order.size(); start += static_cast<std::size_t>(batch)) {
      const std::size_t end = std::min(order.size(), start + static_cast<std::size_t>(batch));
      std::vector<nn::Tensor> inputs, labels;
      for (std::size_t j = start; j < end; ++j) {
        inputs.push_back(samples[order[j]].input);
        labels.push_back(samples[order[j]].label);
      }
      optimizer.zero_grad();
      nn::Tensor input = inputs.size() == 1 ? inputs[0] : nn::stack_batch(inputs);
      nn::Tensor label = labels.size() == 1 ? labels[0] : nn::stack_batch(labels);
      nn::Tensor loss = nn::mse_loss(model.forward(input), label);
      loss.backward();
      optimizer.step();
      epoch_loss += loss.item() * static_cast<double>(end - start);
    }
    epoch_loss /= static_cast<double>(order.size());
    history.epoch_losses.push_back(epoch_loss);
    if (!validation.empty()) {
      history.val_losses.push_back(evaluate_congestion(model, validation));
    }
    LACO_LOG_INFO << "congestion epoch " << epoch << " loss " << epoch_loss
                  << (validation.empty()
                          ? ""
                          : " val " + std::to_string(history.val_losses.back()));
  }
  return history;
}

double evaluate_congestion(const CongestionFcn& model,
                           const std::vector<CongestionSample>& samples) {
  if (samples.empty()) return 0.0;
  nn::NoGradGuard guard;
  double total = 0.0;
  for (const CongestionSample& sample : samples) {
    total += nn::mse_loss(model.forward(sample.input), sample.label).item();
  }
  return total / static_cast<double>(samples.size());
}

}  // namespace laco
