// Feature-frame snapshot collection during a placement run. Frames are
// captured every K iterations (the paper's look-ahead spacing) at both
// the congestion-model resolution and the lower look-ahead resolution,
// with cell flow computed between consecutive snapshots.
#pragma once

#include <vector>

#include "features/feature_stack.hpp"
#include "placer/global_placer.hpp"

namespace laco {

struct SnapshotConfig {
  int spacing = 50;  ///< K: iterations between frames
  FeatureConfig features;  ///< congestion-model resolution (e.g. 64×64)
  FeatureConfig lookahead_features;  ///< look-ahead resolution (e.g. 32×32)
};

/// One captured instant of a placement run.
struct Snapshot {
  int iteration = 0;
  FeatureFrame frame;      ///< full-resolution features
  FeatureFrame lo_frame;   ///< look-ahead-resolution features
};

/// GlobalPlacer observer that accumulates snapshots. Attach with
/// placer.set_observer(std::ref(collector)).
class SnapshotCollector {
 public:
  explicit SnapshotCollector(const SnapshotConfig& config);

  void operator()(const Design& design, const IterationStats& stats);

  const std::vector<Snapshot>& snapshots() const { return snapshots_; }
  std::vector<Snapshot>& snapshots() { return snapshots_; }
  const SnapshotConfig& config() const { return config_; }

 private:
  SnapshotConfig config_;
  FeatureExtractor extractor_;
  FeatureExtractor lo_extractor_;
  std::vector<double> prev_x_, prev_y_;  ///< positions at the last snapshot
  bool have_prev_ = false;
  std::vector<Snapshot> snapshots_;
};

}  // namespace laco
