#include "train/snapshot.hpp"

#include "util/check.hpp"

namespace laco {

SnapshotCollector::SnapshotCollector(const SnapshotConfig& config)
    : config_(config),
      extractor_(config.features),
      lo_extractor_(config.lookahead_features) {
  // A zero spacing would make the `iteration % spacing` gate below a
  // divide-by-zero (SIGFPE); fail loudly at construction instead.
  LACO_CHECK(config_.spacing >= 1);
}

void SnapshotCollector::operator()(const Design& design, const IterationStats& stats) {
  if (stats.iteration % config_.spacing != 0) return;
  Snapshot snap;
  snap.iteration = stats.iteration;
  const std::vector<double>* px = have_prev_ ? &prev_x_ : nullptr;
  const std::vector<double>* py = have_prev_ ? &prev_y_ : nullptr;
  snap.frame = extractor_.compute(design, px, py, stats.iteration);
  snap.lo_frame = lo_extractor_.compute(design, px, py, stats.iteration);
  snapshots_.push_back(std::move(snap));
  design.get_movable_positions(prev_x_, prev_y_);
  have_prev_ = true;
}

}  // namespace laco
