#include "train/trace_io.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace laco {
namespace {

constexpr std::uint32_t kMagic = 0x4c54524bu;  // "LTRK"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("load_traces: truncated stream");
  return value;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const auto n = read_pod<std::uint32_t>(in);
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) throw std::runtime_error("load_traces: truncated string");
  return s;
}

void write_map(std::ostream& out, const GridMap& map) {
  write_pod<std::int32_t>(out, map.nx());
  write_pod<std::int32_t>(out, map.ny());
  const Rect& r = map.region();
  write_pod(out, r.xl);
  write_pod(out, r.yl);
  write_pod(out, r.xh);
  write_pod(out, r.yh);
  out.write(reinterpret_cast<const char*>(map.data().data()),
            static_cast<std::streamsize>(map.size() * sizeof(double)));
}

GridMap read_map(std::istream& in) {
  const auto nx = read_pod<std::int32_t>(in);
  const auto ny = read_pod<std::int32_t>(in);
  Rect r;
  r.xl = read_pod<double>(in);
  r.yl = read_pod<double>(in);
  r.xh = read_pod<double>(in);
  r.yh = read_pod<double>(in);
  GridMap map(nx, ny, r, 0.0);
  in.read(reinterpret_cast<char*>(map.data().data()),
          static_cast<std::streamsize>(map.size() * sizeof(double)));
  if (!in) throw std::runtime_error("load_traces: truncated map");
  return map;
}

void write_frame(std::ostream& out, const FeatureFrame& frame) {
  write_pod<std::int32_t>(out, frame.iteration);
  for (int c = 0; c < FeatureFrame::kNumChannels; ++c) write_map(out, frame.channel(c));
}

FeatureFrame read_frame(std::istream& in) {
  FeatureFrame frame;
  frame.iteration = read_pod<std::int32_t>(in);
  frame.rudy = read_map(in);
  frame.pin_rudy = read_map(in);
  frame.macro_region = read_map(in);
  frame.flow_x = read_map(in);
  frame.flow_y = read_map(in);
  return frame;
}

}  // namespace

void save_traces(const std::vector<PlacementTrace>& traces, std::ostream& out) {
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(traces.size()));
  for (const PlacementTrace& trace : traces) {
    write_string(out, trace.design_name);
    write_pod<std::int32_t>(out, trace.spacing);
    write_pod(out, trace.final_hpwl);
    write_pod(out, trace.final_overflow);
    write_map(out, trace.congestion_label);
    write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(trace.snapshots.size()));
    for (const Snapshot& snap : trace.snapshots) {
      write_pod<std::int32_t>(out, snap.iteration);
      write_frame(out, snap.frame);
      write_frame(out, snap.lo_frame);
    }
  }
}

bool save_traces_file(const std::vector<PlacementTrace>& traces, const std::string& path) {
  // Atomic publish, same contract as nn::save_parameters_file: the
  // trace cache (laco/pipeline.cpp) must never read a half-written file
  // after a crash mid-collection.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    save_traces(traces, out);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::vector<PlacementTrace> load_traces(std::istream& in) {
  if (read_pod<std::uint32_t>(in) != kMagic) throw std::runtime_error("load_traces: bad magic");
  if (read_pod<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("load_traces: unsupported version");
  }
  const auto count = read_pod<std::uint32_t>(in);
  std::vector<PlacementTrace> traces;
  traces.reserve(count);
  for (std::uint32_t t = 0; t < count; ++t) {
    PlacementTrace trace;
    trace.design_name = read_string(in);
    trace.spacing = read_pod<std::int32_t>(in);
    trace.final_hpwl = read_pod<double>(in);
    trace.final_overflow = read_pod<double>(in);
    trace.congestion_label = read_map(in);
    const auto snaps = read_pod<std::uint32_t>(in);
    trace.snapshots.reserve(snaps);
    for (std::uint32_t s = 0; s < snaps; ++s) {
      Snapshot snap;
      snap.iteration = read_pod<std::int32_t>(in);
      snap.frame = read_frame(in);
      snap.lo_frame = read_frame(in);
      trace.snapshots.push_back(std::move(snap));
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

std::vector<PlacementTrace> load_traces_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_traces: cannot open '" + path + "'");
  return load_traces(in);
}

}  // namespace laco
