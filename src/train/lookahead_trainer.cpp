#include "train/lookahead_trainer.hpp"

#include "nn/ops.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "nn/optimizer.hpp"
#include "util/logging.hpp"

namespace laco {

std::vector<LookAheadSample> build_lookahead_samples(const std::vector<PlacementTrace>& traces,
                                                     int frames) {
  std::vector<LookAheadSample> samples;
  for (const PlacementTrace& trace : traces) {
    const auto& snaps = trace.snapshots;
    // Window [t-(C-1), ..., t] predicts t+1 (snapshots are K apart).
    for (std::size_t t = static_cast<std::size_t>(frames) - 1; t + 1 < snaps.size(); ++t) {
      LookAheadSample sample;
      for (int c = frames - 1; c >= 0; --c) {
        sample.history.push_back(&snaps[t - static_cast<std::size_t>(c)].lo_frame);
      }
      sample.target = &snaps[t + 1].lo_frame;
      samples.push_back(std::move(sample));
    }
  }
  return samples;
}

FeatureScale fit_lookahead_scale(const std::vector<PlacementTrace>& traces) {
  std::vector<const FeatureFrame*> frames;
  for (const PlacementTrace& trace : traces) {
    for (const Snapshot& snap : trace.snapshots) frames.push_back(&snap.lo_frame);
  }
  return compute_feature_scale(frames);
}

TrainHistory train_lookahead(LookAheadModel& model, const std::vector<LookAheadSample>& samples,
                             const FeatureScale& scale, const LookAheadTrainerConfig& config) {
  TrainHistory history;
  if (samples.empty()) return history;
  const int nc = model.config().channels_per_frame;

  nn::Adam optimizer(model.parameters(), config.lr);
  std::mt19937 rng(config.seed);
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);

  unsigned vae_seed = config.seed * 7919u;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    double epoch_loss = 0.0;
    for (const std::size_t i : order) {
      const LookAheadSample& sample = samples[i];
      nn::Tensor input = frames_to_tensor(sample.history, scale, nc);
      nn::Tensor target = frame_to_tensor(*sample.target, scale, nc);

      optimizer.zero_grad();
      const LookAheadModel::Output out = model.forward(input);
      nn::Tensor loss = nn::mse_loss(out.prediction, target);
      if (model.has_vae()) {
        const VaeBranch::Output vo = model.vae().forward(out.latent, ++vae_seed);
        loss = nn::add(loss, model.vae().loss(vo, out.latent, config.kl_weight,
                                              config.recon_weight));
      }
      loss.backward();
      optimizer.step();
      epoch_loss += loss.item();
    }
    epoch_loss /= static_cast<double>(samples.size());
    history.epoch_losses.push_back(epoch_loss);
    LACO_LOG_INFO << "lookahead epoch " << epoch << " loss " << epoch_loss;
  }
  return history;
}

double evaluate_lookahead(const LookAheadModel& model,
                          const std::vector<LookAheadSample>& samples,
                          const FeatureScale& scale) {
  if (samples.empty()) return 0.0;
  const int nc = model.config().channels_per_frame;
  nn::NoGradGuard guard;
  double total = 0.0;
  for (const LookAheadSample& sample : samples) {
    nn::Tensor input = frames_to_tensor(sample.history, scale, nc);
    nn::Tensor target = frame_to_tensor(*sample.target, scale, nc);
    const LookAheadModel::Output out = model.forward(input);
    total += nn::mse_loss(out.prediction, target).item();
  }
  return total / static_cast<double>(samples.size());
}

}  // namespace laco
