#include <stdexcept>

#include "nn/ops.hpp"

namespace laco::nn {

Tensor sum(const Tensor& a) {
  auto ai = a.impl();
  Tensor out = make_op_output({1}, {&a}, [ai](TensorImpl& self) {
    if (!ai->requires_grad) return;
    ai->ensure_grad();
    const float g = self.grad[0];
    for (float& v : ai->grad) v += g;
  });
  double acc = 0.0;
  for (const float v : a.data()) acc += v;
  out.data()[0] = static_cast<float>(acc);
  return out;
}

Tensor mean(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a.numel());
  return scale(sum(a), inv);
}

Tensor mse_loss(const Tensor& prediction, const Tensor& target) {
  if (prediction.shape() != target.shape()) {
    throw std::invalid_argument("mse_loss: shape mismatch");
  }
  return mean(square(sub(prediction, target)));
}

Tensor mean_square(const Tensor& prediction) { return mean(square(prediction)); }

Tensor vae_kl_loss(const Tensor& mu, const Tensor& logvar) {
  if (mu.shape() != logvar.shape()) {
    throw std::invalid_argument("vae_kl_loss: mu/logvar shape mismatch");
  }
  // KL(N(mu, diag(exp(logvar))) || N(0, I))
  //   = 0.5 * sum(exp(logvar) + mu^2 - 1 - logvar)        (paper Eq. 16)
  // normalized by batch size (dim 0) to be batch-size invariant.
  const int batch = mu.shape().empty() ? 1 : mu.shape()[0];
  Tensor term = sub(add(exp_op(logvar), square(mu)), add_scalar(logvar, 1.0f));
  return scale(sum(term), 0.5f / static_cast<float>(batch));
}

}  // namespace laco::nn
