#include "nn/kernel_pool.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>
#include <thread>
#include <utility>

#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace laco::nn {
namespace {

int default_threads() {
  if (const char* env = std::getenv("LACO_NN_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// The shared pool is created lazily on first parallel call and swapped
// by set_kernel_threads(). The mutex only guards the pointer/count —
// tile execution never holds it.
Mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool LACO_GUARDED_BY(g_pool_mutex);
int g_threads LACO_GUARDED_BY(g_pool_mutex) = 0;  // 0 = not yet resolved

/// Shared state of one parallel_tiles() call. Tasks capture a
/// shared_ptr so a worker finishing its last tile after the caller
/// already returned never touches freed memory.
struct TileRun {
  TileRun(std::size_t count, const std::function<void(std::size_t)>& tile_fn)
      : tile_count(count), fn(tile_fn) {}

  const std::size_t tile_count;
  const std::function<void(std::size_t)>& fn;  // outlives the run: caller blocks
  std::atomic<std::size_t> next{0};
  Mutex mutex;
  CondVar done_cv;
  std::size_t finished LACO_GUARDED_BY(mutex) = 0;
  std::exception_ptr error LACO_GUARDED_BY(mutex);

  /// Claims tiles until none remain. Runs on pool workers and on the
  /// calling thread alike.
  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tile_count) return;
      std::exception_ptr tile_error;
      try {
        fn(i);
      } catch (...) {
        tile_error = std::current_exception();
      }
      MutexLock lock(mutex);
      if (tile_error != nullptr && error == nullptr) error = tile_error;
      if (++finished == tile_count) done_cv.notify_all();
    }
  }
};

}  // namespace

int kernel_threads() {
  MutexLock lock(g_pool_mutex);
  if (g_threads == 0) g_threads = default_threads();
  return g_threads;
}

void set_kernel_threads(int n) {
  if (n < 1) n = 1;
  std::unique_ptr<ThreadPool> retired;
  MutexLock lock(g_pool_mutex);
  g_threads = n;
  retired = std::move(g_pool);  // destroyed (joined) after the lock drops
}

void parallel_tiles(std::size_t tile_count, const std::function<void(std::size_t)>& fn) {
  if (tile_count == 0) return;
  int threads;
  ThreadPool* pool = nullptr;
  {
    MutexLock lock(g_pool_mutex);
    if (g_threads == 0) g_threads = default_threads();
    threads = g_threads;
    if (threads > 1 && tile_count > 1) {
      // The pool runs `threads - 1` workers: the calling thread is the
      // remaining lane, so a kernel never waits on a fully busy pool.
      if (g_pool == nullptr) g_pool = std::make_unique<ThreadPool>(threads - 1);
      pool = g_pool.get();
    }
  }

  if (pool == nullptr) {
    for (std::size_t i = 0; i < tile_count; ++i) fn(i);
    return;
  }

  auto run = std::make_shared<TileRun>(tile_count, fn);
  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(pool->num_threads()), tile_count - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    pool->submit([run] { run->drain(); });
  }
  run->drain();
  {
    MutexLock lock(run->mutex);
    while (run->finished != run->tile_count) run->done_cv.wait(run->mutex);
    if (run->error != nullptr) std::rethrow_exception(run->error);
  }
}

OpStats make_op_stats(const char* name) {
  obs::MetricRegistry& reg = obs::MetricRegistry::global();
  const std::string prefix = std::string("nn.op.") + name;
  return OpStats{reg.counter(prefix + ".calls"), reg.counter(prefix + ".ns")};
}

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}
}  // namespace

OpTimer::OpTimer(const OpStats& stats) : stats_(stats), start_ns_(now_ns()) {}

OpTimer::~OpTimer() {
  stats_.calls.add(1);
  stats_.ns.add(now_ns() - start_ns_);
}

}  // namespace laco::nn
