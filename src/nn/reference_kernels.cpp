// The naive kernels these files' optimized counterparts are diffed
// against. Bodies are the pre-tiling ops_conv.cpp / ops_norm.cpp code,
// unchanged: the accumulation order here *defines* the bitwise contract
// the tiled kernels must reproduce (docs/KERNELS.md).
#include "nn/reference_kernels.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace laco::nn::reference {
namespace {

void check_4d(const Tensor& t, const char* what) {
  if (!t.defined() || t.shape().size() != 4) {
    throw std::invalid_argument(std::string(what) + ": expected a 4-D NCHW tensor");
  }
}

std::size_t off4(int a, int b, int c, int d, int B, int C, int D) {
  return ((static_cast<std::size_t>(a) * B + b) * C + c) * D + d;
}

}  // namespace

Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias, int stride,
              int padding, int groups) {
  check_4d(x, "reference::conv2d input");
  check_4d(weight, "reference::conv2d weight");
  const int n = x.dim(0), cin = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int cout = weight.dim(0), cin_g = weight.dim(1), kh = weight.dim(2), kw = weight.dim(3);
  if (groups < 1 || cin % groups != 0 || cout % groups != 0 || cin / groups != cin_g) {
    throw std::invalid_argument("reference::conv2d: inconsistent groups/channels");
  }
  const int oh = (h + 2 * padding - kh) / stride + 1;
  const int ow = (w + 2 * padding - kw) / stride + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("reference::conv2d: non-positive output size");
  }
  const int cout_g = cout / groups;

  auto xi = x.impl();
  auto wi = weight.impl();
  auto bi = bias.defined() ? bias.impl() : nullptr;

  Tensor out = make_op_output(
      {n, cout, oh, ow}, {&x, &weight, &bias},
      [=](TensorImpl& self) {
        const bool need_x = xi->requires_grad;
        const bool need_w = wi->requires_grad;
        const bool need_b = bi && bi->requires_grad;
        if (need_x) xi->ensure_grad();
        if (need_w) wi->ensure_grad();
        if (need_b) bi->ensure_grad();
        for (int b = 0; b < n; ++b) {
          for (int co = 0; co < cout; ++co) {
            const int g = co / cout_g;
            for (int y = 0; y < oh; ++y) {
              for (int xo = 0; xo < ow; ++xo) {
                const float gout = self.grad[off4(b, co, y, xo, cout, oh, ow)];
                if (gout == 0.0f) continue;
                if (need_b) bi->grad[static_cast<std::size_t>(co)] += gout;
                for (int ci = 0; ci < cin_g; ++ci) {
                  const int cig = g * cin_g + ci;
                  for (int dy = 0; dy < kh; ++dy) {
                    const int iy = y * stride - padding + dy;
                    if (iy < 0 || iy >= h) continue;
                    for (int dx = 0; dx < kw; ++dx) {
                      const int ix = xo * stride - padding + dx;
                      if (ix < 0 || ix >= w) continue;
                      const std::size_t xoff = off4(b, cig, iy, ix, cin, h, w);
                      const std::size_t woff = off4(co, ci, dy, dx, cin_g, kh, kw);
                      if (need_x) xi->grad[xoff] += gout * wi->data[woff];
                      if (need_w) wi->grad[woff] += gout * xi->data[xoff];
                    }
                  }
                }
              }
            }
          }
        }
      });

  const float* xd = x.data().data();
  const float* wd = weight.data().data();
  const float* bd = bias.defined() ? bias.data().data() : nullptr;
  float* y = out.data().data();
  for (int b = 0; b < n; ++b) {
    for (int co = 0; co < cout; ++co) {
      const int g = co / cout_g;
      const float bval = bd != nullptr ? bd[static_cast<std::size_t>(co)] : 0.0f;
      for (int yy = 0; yy < oh; ++yy) {
        for (int xo = 0; xo < ow; ++xo) {
          float acc = bval;
          for (int ci = 0; ci < cin_g; ++ci) {
            const int cig = g * cin_g + ci;
            for (int dy = 0; dy < kh; ++dy) {
              const int iy = yy * stride - padding + dy;
              if (iy < 0 || iy >= h) continue;
              for (int dx = 0; dx < kw; ++dx) {
                const int ix = xo * stride - padding + dx;
                if (ix < 0 || ix >= w) continue;
                acc += xd[off4(b, cig, iy, ix, cin, h, w)] *
                       wd[off4(co, ci, dy, dx, cin_g, kh, kw)];
              }
            }
          }
          y[off4(b, co, yy, xo, cout, oh, ow)] = acc;
        }
      }
    }
  }
  return out;
}

Tensor conv_transpose2d(const Tensor& x, const Tensor& weight, const Tensor& bias, int stride,
                        int padding, int output_padding, int groups) {
  check_4d(x, "reference::conv_transpose2d input");
  check_4d(weight, "reference::conv_transpose2d weight");
  const int n = x.dim(0), cin = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int w_cin = weight.dim(0), cout_g = weight.dim(1), kh = weight.dim(2), kw = weight.dim(3);
  if (w_cin != cin || groups < 1 || cin % groups != 0) {
    throw std::invalid_argument("reference::conv_transpose2d: inconsistent channels/groups");
  }
  const int cin_g = cin / groups;
  const int cout = cout_g * groups;
  const int oh = (h - 1) * stride - 2 * padding + kh + output_padding;
  const int ow = (w - 1) * stride - 2 * padding + kw + output_padding;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("reference::conv_transpose2d: non-positive output");
  }

  auto xi = x.impl();
  auto wi = weight.impl();
  auto bi = bias.defined() ? bias.impl() : nullptr;

  Tensor out = make_op_output(
      {n, cout, oh, ow}, {&x, &weight, &bias},
      [=](TensorImpl& self) {
        const bool need_x = xi->requires_grad;
        const bool need_w = wi->requires_grad;
        const bool need_b = bi && bi->requires_grad;
        if (need_x) xi->ensure_grad();
        if (need_w) wi->ensure_grad();
        if (need_b) bi->ensure_grad();
        if (need_b) {
          for (int b = 0; b < n; ++b) {
            for (int co = 0; co < cout; ++co) {
              double acc = 0.0;
              for (int yy = 0; yy < oh; ++yy) {
                for (int xo = 0; xo < ow; ++xo) {
                  acc += self.grad[off4(b, co, yy, xo, cout, oh, ow)];
                }
              }
              bi->grad[static_cast<std::size_t>(co)] += static_cast<float>(acc);
            }
          }
        }
        if (!need_x && !need_w) return;
        for (int b = 0; b < n; ++b) {
          for (int ci = 0; ci < cin; ++ci) {
            const int g = ci / cin_g;
            for (int iy = 0; iy < h; ++iy) {
              for (int ix = 0; ix < w; ++ix) {
                const std::size_t xoff = off4(b, ci, iy, ix, cin, h, w);
                const float xval = xi->data[xoff];
                float xgrad = 0.0f;
                for (int co = 0; co < cout_g; ++co) {
                  const int cog = g * cout_g + co;
                  for (int dy = 0; dy < kh; ++dy) {
                    const int oy = iy * stride - padding + dy;
                    if (oy < 0 || oy >= oh) continue;
                    for (int dx = 0; dx < kw; ++dx) {
                      const int ox = ix * stride - padding + dx;
                      if (ox < 0 || ox >= ow) continue;
                      const float gout = self.grad[off4(b, cog, oy, ox, cout, oh, ow)];
                      if (gout == 0.0f) continue;
                      const std::size_t woff = off4(ci, co, dy, dx, cout_g, kh, kw);
                      if (need_x) xgrad += gout * wi->data[woff];
                      if (need_w) wi->grad[woff] += gout * xval;
                    }
                  }
                }
                if (need_x) xi->grad[xoff] += xgrad;
              }
            }
          }
        }
      });

  const float* xd = x.data().data();
  const float* wd = weight.data().data();
  const float* bd = bias.defined() ? bias.data().data() : nullptr;
  float* y = out.data().data();
  for (int b = 0; b < n; ++b) {
    for (int co = 0; co < cout; ++co) {
      const float bval = bd != nullptr ? bd[static_cast<std::size_t>(co)] : 0.0f;
      for (int yy = 0; yy < oh; ++yy) {
        for (int xo = 0; xo < ow; ++xo) y[off4(b, co, yy, xo, cout, oh, ow)] = bval;
      }
    }
  }
  for (int b = 0; b < n; ++b) {
    for (int ci = 0; ci < cin; ++ci) {
      const int g = ci / cin_g;
      for (int iy = 0; iy < h; ++iy) {
        for (int ix = 0; ix < w; ++ix) {
          const float xval = xd[off4(b, ci, iy, ix, cin, h, w)];
          if (xval == 0.0f) continue;
          for (int co = 0; co < cout_g; ++co) {
            const int cog = g * cout_g + co;
            for (int dy = 0; dy < kh; ++dy) {
              const int oy = iy * stride - padding + dy;
              if (oy < 0 || oy >= oh) continue;
              for (int dx = 0; dx < kw; ++dx) {
                const int ox = ix * stride - padding + dx;
                if (ox < 0 || ox >= ow) continue;
                y[off4(b, cog, oy, ox, cout, oh, ow)] +=
                    xval * wd[off4(ci, co, dy, dx, cout_g, kh, kw)];
              }
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor group_norm(const Tensor& x, int num_groups, const Tensor& gamma, const Tensor& beta,
                  float eps) {
  if (x.shape().size() != 4) throw std::invalid_argument("reference::group_norm: expected NCHW");
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (num_groups < 1 || c % num_groups != 0) {
    throw std::invalid_argument("reference::group_norm: channels not divisible by groups");
  }
  if (!gamma.defined() || !beta.defined() || gamma.numel() != c || beta.numel() != c) {
    throw std::invalid_argument("reference::group_norm: gamma/beta must have C elements");
  }
  const int cg = c / num_groups;
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const std::size_t group_size = static_cast<std::size_t>(cg) * plane;

  std::vector<float> means(static_cast<std::size_t>(n) * num_groups);
  std::vector<float> inv_stds(static_cast<std::size_t>(n) * num_groups);
  const float* xd = x.data().data();
  for (int b = 0; b < n; ++b) {
    for (int g = 0; g < num_groups; ++g) {
      const std::size_t base =
          (static_cast<std::size_t>(b) * c + static_cast<std::size_t>(g) * cg) * plane;
      double m = 0.0;
      for (std::size_t i = 0; i < group_size; ++i) m += xd[base + i];
      m /= static_cast<double>(group_size);
      double v = 0.0;
      for (std::size_t i = 0; i < group_size; ++i) {
        const double d = xd[base + i] - m;
        v += d * d;
      }
      v /= static_cast<double>(group_size);
      means[static_cast<std::size_t>(b) * num_groups + g] = static_cast<float>(m);
      inv_stds[static_cast<std::size_t>(b) * num_groups + g] =
          static_cast<float>(1.0 / std::sqrt(v + eps));
    }
  }

  auto xi = x.impl();
  auto gi = gamma.impl();
  auto bi = beta.impl();
  Tensor out = make_op_output(
      x.shape(), {&x, &gamma, &beta},
      [=](TensorImpl& self) {
        const bool need_x = xi->requires_grad;
        const bool need_g = gi->requires_grad;
        const bool need_b = bi->requires_grad;
        if (need_x) xi->ensure_grad();
        if (need_g) gi->ensure_grad();
        if (need_b) bi->ensure_grad();
        const float inv_m = 1.0f / static_cast<float>(group_size);
        for (int b = 0; b < n; ++b) {
          for (int g = 0; g < num_groups; ++g) {
            const std::size_t base =
                (static_cast<std::size_t>(b) * c + static_cast<std::size_t>(g) * cg) * plane;
            const float m = means[static_cast<std::size_t>(b) * num_groups + g];
            const float is = inv_stds[static_cast<std::size_t>(b) * num_groups + g];
            double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
            for (int cc = 0; cc < cg; ++cc) {
              const int ch = g * cg + cc;
              const float ga = gi->data[static_cast<std::size_t>(ch)];
              for (std::size_t i = 0; i < plane; ++i) {
                const std::size_t idx = base + static_cast<std::size_t>(cc) * plane + i;
                const float xhat = (xi->data[idx] - m) * is;
                const float gout = self.grad[idx];
                if (need_g) gi->grad[static_cast<std::size_t>(ch)] += gout * xhat;
                if (need_b) bi->grad[static_cast<std::size_t>(ch)] += gout;
                const float dxhat = gout * ga;
                sum_dxhat += dxhat;
                sum_dxhat_xhat += static_cast<double>(dxhat) * xhat;
              }
            }
            if (!need_x) continue;
            for (int cc = 0; cc < cg; ++cc) {
              const int ch = g * cg + cc;
              const float ga = gi->data[static_cast<std::size_t>(ch)];
              for (std::size_t i = 0; i < plane; ++i) {
                const std::size_t idx = base + static_cast<std::size_t>(cc) * plane + i;
                const float xhat = (xi->data[idx] - m) * is;
                const float dxhat = self.grad[idx] * ga;
                xi->grad[idx] += is * (dxhat - inv_m * static_cast<float>(sum_dxhat) -
                                       xhat * inv_m * static_cast<float>(sum_dxhat_xhat));
              }
            }
          }
        }
      });

  const float* ga = gamma.data().data();
  const float* be = beta.data().data();
  float* y = out.data().data();
  for (int b = 0; b < n; ++b) {
    for (int g = 0; g < num_groups; ++g) {
      const std::size_t base =
          (static_cast<std::size_t>(b) * c + static_cast<std::size_t>(g) * cg) * plane;
      const float m = means[static_cast<std::size_t>(b) * num_groups + g];
      const float is = inv_stds[static_cast<std::size_t>(b) * num_groups + g];
      for (int cc = 0; cc < cg; ++cc) {
        const int ch = g * cg + cc;
        const float gam = ga[static_cast<std::size_t>(ch)];
        const float bet = be[static_cast<std::size_t>(ch)];
        for (std::size_t i = 0; i < plane; ++i) {
          const std::size_t idx = base + static_cast<std::size_t>(cc) * plane + i;
          y[idx] = gam * (xd[idx] - m) * is + bet;
        }
      }
    }
  }
  return out;
}

}  // namespace laco::nn::reference
