#include "nn/autograd.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace laco::nn {

double gradient_check(const std::function<Tensor(const Tensor&)>& fn, Tensor& input,
                      double epsilon, int max_probes) {
  input.set_requires_grad(true);
  Tensor loss = fn(input);
  input.zero_grad();
  loss.backward();
  const std::vector<float> analytic = input.grad();

  std::mt19937 rng(1234);
  const std::int64_t n = input.numel();
  const int probes = static_cast<int>(std::min<std::int64_t>(n, max_probes));
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  std::shuffle(idx.begin(), idx.end(), rng);

  double max_rel_err = 0.0;
  for (int p = 0; p < probes; ++p) {
    const std::size_t i = static_cast<std::size_t>(idx[static_cast<std::size_t>(p)]);
    const float saved = input.data()[i];
    input.data()[i] = saved + static_cast<float>(epsilon);
    const double up = fn(input).item();
    input.data()[i] = saved - static_cast<float>(epsilon);
    const double down = fn(input).item();
    input.data()[i] = saved;
    const double numeric = (up - down) / (2.0 * epsilon);
    const double denom = std::max({std::abs(numeric), std::abs(static_cast<double>(analytic[i])), 1e-4});
    max_rel_err = std::max(max_rel_err, std::abs(numeric - analytic[i]) / denom);
  }
  return max_rel_err;
}

void fill_uniform(Tensor& tensor, float lo, float hi, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  for (float& v : tensor.data()) v = dist(rng);
}

void fill_kaiming(Tensor& tensor, int fan_in, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0f, std::sqrt(2.0f / std::max(1, fan_in)));
  for (float& v : tensor.data()) v = dist(rng);
}

}  // namespace laco::nn
