// Kernel execution runtime for the nn op library (docs/KERNELS.md):
// a process-wide ThreadPool the tiled conv/norm kernels fan work out
// on, plus the per-op timing counters (`nn.op.<name>.{calls,ns}`).
//
// Determinism contract: parallel_tiles() distributes *tiles* — disjoint
// slices of an op's output — over the pool. Each output element is
// written by exactly one tile, and every kernel accumulates into an
// element in a fixed, tile-independent order, so results are
// bitwise-identical across thread counts and tilings (the golden e2e
// test and the cross-thread determinism tests in test_nn_kernels.cpp
// pin this). The analyzer's `nondeterministic-accum` rule enforces the
// no-unordered-accumulation part inside `// LACO_DETERMINISTIC`
// regions (docs/STATIC_ANALYSIS.md).
#pragma once

#include <cstddef>
#include <functional>

#include "obs/metrics.hpp"

namespace laco::nn {

/// Threads the kernel tiling layer may use. Defaults to
/// LACO_NN_THREADS if set (≥1), else std::thread::hardware_concurrency.
int kernel_threads();

/// Replaces the shared kernel pool with one of `n` workers (clamped to
/// ≥1; n == 1 runs every tile inline on the caller). NOT safe to call
/// while kernels are executing on other threads — it is a test /
/// startup-configuration knob, and results are bitwise-identical for
/// every value anyway.
void set_kernel_threads(int n);

/// Runs fn(0), fn(1), …, fn(tile_count-1), distributing tiles over the
/// shared kernel pool; the calling thread participates, so this makes
/// progress even when every worker is busy with other kernels. Returns
/// after every tile completed; rethrows the first tile exception.
/// Tiles must touch disjoint output ranges; tile-to-thread assignment
/// is unspecified (see the determinism contract above for why that is
/// still bitwise-safe). Safe to call concurrently from many threads;
/// must not be called from inside a tile (no nesting).
void parallel_tiles(std::size_t tile_count, const std::function<void(std::size_t)>& fn);

/// Cached per-op instruments: `nn.op.<name>.calls` / `nn.op.<name>.ns`
/// in obs::MetricRegistry::global(). References are registry-stable, so
/// kernels hold one in a function-local static.
struct OpStats {
  obs::Counter& calls;
  obs::Counter& ns;
};

OpStats make_op_stats(const char* name);

/// RAII op timer: on destruction adds one call and the elapsed
/// wall-clock nanoseconds to `stats`. Wraps a whole kernel invocation
/// (including its parallel section), on the invoking thread only.
class OpTimer {
 public:
  explicit OpTimer(const OpStats& stats);
  ~OpTimer();
  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;

 private:
  const OpStats& stats_;
  std::uint64_t start_ns_;
};

}  // namespace laco::nn
