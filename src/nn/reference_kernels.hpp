// nn::reference — the pre-tiling naive conv2d / conv_transpose2d /
// group_norm implementations, kept verbatim as the differential-testing
// oracle for the optimized kernels in ops_conv.cpp / ops_norm.cpp
// (docs/KERNELS.md).
//
// The optimized kernels preserve these kernels' per-output-element
// accumulation order, so tests pin *bitwise* equality of forwards and
// backwards (tests/test_nn_kernels.cpp), not just rtol closeness.
// Reference ops record the same autograd closures the naive ops did;
// they are single-threaded, untimed, and never traced for plans —
// production code must not call them.
#pragma once

#include "nn/tensor.hpp"

namespace laco::nn::reference {

/// Naive nn::conv2d: full autograd, no op-trace hook, no tiling.
Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias, int stride = 1,
              int padding = 0, int groups = 1);

/// Naive nn::conv_transpose2d.
Tensor conv_transpose2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
                        int stride = 1, int padding = 0, int output_padding = 0,
                        int groups = 1);

/// Naive nn::group_norm.
Tensor group_norm(const Tensor& x, int num_groups, const Tensor& gamma, const Tensor& beta,
                  float eps = 1e-5f);

}  // namespace laco::nn::reference
