#include "nn/optimizer.hpp"

#include <cmath>

namespace laco::nn {

void Optimizer::zero_grad() {
  for (Tensor& p : params_) p.zero_grad();
}

Sgd::Sgd(std::vector<Tensor> parameters, float lr, float momentum)
    : Optimizer(std::move(parameters)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i].data().size(), 0.0f);
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (p.grad().size() != p.data().size()) continue;  // never touched by backward
    auto& vel = velocity_[i];
    for (std::size_t j = 0; j < p.data().size(); ++j) {
      vel[j] = momentum_ * vel[j] + p.grad()[j];
      p.data()[j] -= lr_ * vel[j];
    }
  }
}

Adam::Adam(std::vector<Tensor> parameters, float lr, float beta1, float beta2, float eps)
    : Optimizer(std::move(parameters)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].data().size(), 0.0f);
    v_[i].assign(params_[i].data().size(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (p.grad().size() != p.data().size()) continue;
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < p.data().size(); ++j) {
      const float g = p.grad()[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      p.data()[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace laco::nn
