#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/op_trace.hpp"
#include "nn/ops.hpp"

namespace laco::nn {
namespace {

/// Bilinear source sample for output index `o` (align_corners=false).
struct Lerp {
  int i0, i1;
  float w0, w1;
};

Lerp lerp_coeff(int o, int out_size, int in_size) {
  const float src = (static_cast<float>(o) + 0.5f) * in_size / out_size - 0.5f;
  const float clamped = std::clamp(src, 0.0f, static_cast<float>(in_size - 1));
  const int i0 = static_cast<int>(std::floor(clamped));
  const int i1 = std::min(i0 + 1, in_size - 1);
  const float t = clamped - static_cast<float>(i0);
  return {i0, i1, 1.0f - t, t};
}

// Forward loops shared by the eager path and traced plan kernels.

void upsample_bilinear_forward(int n, int c, int h, int w, int out_h, int out_w, const float* xd,
                               float* y) {
  for (int oy = 0; oy < out_h; ++oy) {
    const Lerp ly = lerp_coeff(oy, out_h, h);
    for (int ox = 0; ox < out_w; ++ox) {
      const Lerp lx = lerp_coeff(ox, out_w, w);
      for (int b = 0; b < n; ++b) {
        for (int ch = 0; ch < c; ++ch) {
          const std::size_t in_base = (static_cast<std::size_t>(b) * c + ch) * h * w;
          const std::size_t out_base = (static_cast<std::size_t>(b) * c + ch) * out_h * out_w;
          y[out_base + static_cast<std::size_t>(oy) * out_w + ox] =
              ly.w0 * (lx.w0 * xd[in_base + static_cast<std::size_t>(ly.i0) * w + lx.i0] +
                       lx.w1 * xd[in_base + static_cast<std::size_t>(ly.i0) * w + lx.i1]) +
              ly.w1 * (lx.w0 * xd[in_base + static_cast<std::size_t>(ly.i1) * w + lx.i0] +
                       lx.w1 * xd[in_base + static_cast<std::size_t>(ly.i1) * w + lx.i1]);
        }
      }
    }
  }
}

void avg_pool2d_forward(int n, int c, int h, int w, int oh, int ow, int k, float inv,
                        const float* xd, float* y) {
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const std::size_t ib = (static_cast<std::size_t>(b) * c + ch) * h * w;
      const std::size_t ob = (static_cast<std::size_t>(b) * c + ch) * oh * ow;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (int dy = 0; dy < k; ++dy) {
            for (int dx = 0; dx < k; ++dx) {
              acc += xd[ib + static_cast<std::size_t>(oy * k + dy) * w + ox * k + dx];
            }
          }
          y[ob + static_cast<std::size_t>(oy) * ow + ox] = acc * inv;
        }
      }
    }
  }
}

}  // namespace

Tensor upsample_bilinear(const Tensor& x, int out_h, int out_w) {
  if (x.shape().size() != 4) throw std::invalid_argument("upsample_bilinear: expected NCHW");
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (out_h <= 0 || out_w <= 0) throw std::invalid_argument("upsample_bilinear: bad size");

  auto xi = x.impl();
  Tensor out = make_op_output(
      {n, c, out_h, out_w}, {&x}, [xi, n, c, h, w, out_h, out_w](TensorImpl& self) {
        if (!xi->requires_grad) return;
        xi->ensure_grad();
        for (int oy = 0; oy < out_h; ++oy) {
          const Lerp ly = lerp_coeff(oy, out_h, h);
          for (int ox = 0; ox < out_w; ++ox) {
            const Lerp lx = lerp_coeff(ox, out_w, w);
            for (int b = 0; b < n; ++b) {
              for (int ch = 0; ch < c; ++ch) {
                const std::size_t in_base = (static_cast<std::size_t>(b) * c + ch) * h * w;
                const std::size_t out_base =
                    (static_cast<std::size_t>(b) * c + ch) * out_h * out_w;
                const float g = self.grad[out_base + static_cast<std::size_t>(oy) * out_w + ox];
                if (g == 0.0f) continue;
                xi->grad[in_base + static_cast<std::size_t>(ly.i0) * w + lx.i0] += g * ly.w0 * lx.w0;
                xi->grad[in_base + static_cast<std::size_t>(ly.i0) * w + lx.i1] += g * ly.w0 * lx.w1;
                xi->grad[in_base + static_cast<std::size_t>(ly.i1) * w + lx.i0] += g * ly.w1 * lx.w0;
                xi->grad[in_base + static_cast<std::size_t>(ly.i1) * w + lx.i1] += g * ly.w1 * lx.w1;
              }
            }
          }
        }
      });

  upsample_bilinear_forward(n, c, h, w, out_h, out_w, x.data().data(), out.data().data());
  trace_op("upsample_bilinear", {&x}, out, [n, c, h, w, out_h, out_w]() -> OpKernel {
    return [n, c, h, w, out_h, out_w](const float* const* in, float* o) {
      upsample_bilinear_forward(n, c, h, w, out_h, out_w, in[0], o);
    };
  });
  return out;
}

Tensor avg_pool2d(const Tensor& x, int k) {
  if (x.shape().size() != 4) throw std::invalid_argument("avg_pool2d: expected NCHW");
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (k <= 0 || h % k != 0 || w % k != 0) {
    throw std::invalid_argument("avg_pool2d: spatial dims must divide k");
  }
  const int oh = h / k, ow = w / k;
  const float inv = 1.0f / static_cast<float>(k * k);

  auto xi = x.impl();
  Tensor out = make_op_output(
      {n, c, oh, ow}, {&x}, [xi, n, c, h, w, oh, ow, k, inv](TensorImpl& self) {
        if (!xi->requires_grad) return;
        xi->ensure_grad();
        for (int b = 0; b < n; ++b) {
          for (int ch = 0; ch < c; ++ch) {
            const std::size_t ib = (static_cast<std::size_t>(b) * c + ch) * h * w;
            const std::size_t ob = (static_cast<std::size_t>(b) * c + ch) * oh * ow;
            for (int oy = 0; oy < oh; ++oy) {
              for (int ox = 0; ox < ow; ++ox) {
                const float g = self.grad[ob + static_cast<std::size_t>(oy) * ow + ox] * inv;
                for (int dy = 0; dy < k; ++dy) {
                  for (int dx = 0; dx < k; ++dx) {
                    xi->grad[ib + static_cast<std::size_t>(oy * k + dy) * w + ox * k + dx] += g;
                  }
                }
              }
            }
          }
        }
      });

  avg_pool2d_forward(n, c, h, w, oh, ow, k, inv, x.data().data(), out.data().data());
  trace_op("avg_pool2d", {&x}, out, [n, c, h, w, oh, ow, k, inv]() -> OpKernel {
    return [n, c, h, w, oh, ow, k, inv](const float* const* in, float* o) {
      avg_pool2d_forward(n, c, h, w, oh, ow, k, inv, in[0], o);
    };
  });
  return out;
}

Tensor global_avg_pool(const Tensor& x) {
  if (x.shape().size() != 4) throw std::invalid_argument("global_avg_pool: expected NCHW");
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const float inv = 1.0f / static_cast<float>(plane);

  auto xi = x.impl();
  Tensor out = make_op_output({n, c}, {&x}, [xi, n, c, plane, inv](TensorImpl& self) {
    if (!xi->requires_grad) return;
    xi->ensure_grad();
    for (int b = 0; b < n; ++b) {
      for (int ch = 0; ch < c; ++ch) {
        const float g = self.grad[static_cast<std::size_t>(b) * c + ch] * inv;
        const std::size_t base = (static_cast<std::size_t>(b) * c + ch) * plane;
        for (std::size_t i = 0; i < plane; ++i) xi->grad[base + i] += g;
      }
    }
  });
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      const std::size_t base = (static_cast<std::size_t>(b) * c + ch) * plane;
      double acc = 0.0;
      for (std::size_t i = 0; i < plane; ++i) acc += x.data()[base + i];
      out.data()[static_cast<std::size_t>(b) * c + ch] = static_cast<float>(acc * inv);
    }
  }
  return out;
}

}  // namespace laco::nn
