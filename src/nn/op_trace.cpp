#include "nn/op_trace.hpp"

namespace laco::nn {

namespace {
thread_local OpTraceSink* g_op_trace = nullptr;
}

OpTraceSink* active_op_trace() { return g_op_trace; }

OpTraceScope::OpTraceScope(OpTraceSink* sink) : previous_(g_op_trace) { g_op_trace = sink; }
OpTraceScope::~OpTraceScope() { g_op_trace = previous_; }

}  // namespace laco::nn
