// First-order optimizers over a flat parameter list: SGD (+momentum)
// and Adam. step() consumes the gradients accumulated by backward();
// call zero_grad() between iterations.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace laco::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> parameters) : params_(std::move(parameters)) {}
  virtual ~Optimizer() = default;
  virtual void step() = 0;
  void zero_grad();

 protected:
  std::vector<Tensor> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, float lr, float momentum = 0.0f);
  void step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_;
  int t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace laco::nn
