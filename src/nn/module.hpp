// Module: base class for parameterized networks. Parameters and child
// modules are registered by name, giving a flat, prefixed parameter
// dictionary for optimizers and serialization (PyTorch state_dict
// style).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "nn/tensor.hpp"

namespace laco::nn {

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters, depth-first, children after own.
  std::vector<Tensor> parameters() const;
  /// (dotted.name, tensor) pairs for serialization.
  std::vector<std::pair<std::string, Tensor>> named_parameters() const;

  void zero_grad();
  /// Total number of scalar parameters.
  std::int64_t num_parameters() const;

 protected:
  /// Registers and returns a trainable parameter.
  Tensor register_parameter(std::string name, Tensor tensor);  // analyze-ok(tensor-by-value): sink, moved into params_
  /// Registers a child whose parameters are exposed under `name.`.
  void register_module(std::string name, Module* child);

 private:
  void collect(const std::string& prefix,
               std::vector<std::pair<std::string, Tensor>>& out) const;

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace laco::nn
