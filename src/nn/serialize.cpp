#include "nn/serialize.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/crc32.hpp"

namespace laco::nn {
namespace {

constexpr std::uint32_t kMagic = 0x4c41434fu;  // "LACO"
// v1 wrote the entry count right after the magic; the sentinel can
// never be a real v1 count, so it cleanly marks versioned streams.
constexpr std::uint32_t kVersionSentinel = 0xffffffffu;
constexpr std::uint32_t kVersion = 2;

// Corruption guards: a flipped bit in a header length must produce a
// clean error, not a multi-gigabyte allocation.
constexpr std::uint32_t kMaxParameters = 1u << 20;
constexpr std::uint32_t kMaxNameLength = 1u << 12;
constexpr std::uint32_t kMaxRank = 8;
constexpr std::size_t kMaxTensorBytes = std::size_t{1} << 31;

/// Serializer that mirrors every checksummed byte into a running CRC.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void bytes(const void* data, std::size_t n, bool checksum = true) {
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    if (checksum) crc_ = crc32(data, n, crc_);
  }
  void u32(std::uint32_t v, bool checksum = true) { bytes(&v, sizeof(v), checksum); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
  std::uint32_t crc() const { return crc_; }

 private:
  std::ostream& out_;
  std::uint32_t crc_ = 0;
};

/// Deserializer tracking the byte offset of every read (for error
/// messages) and, once start_checksum() is called, the running CRC of
/// everything consumed.
class Reader {
 public:
  Reader(std::istream& in, std::string source) : in_(in), source_(std::move(source)) {}

  /// Error qualified with the source and the offset where the failing
  /// read began — "at byte offset 132 in 'congestion.bin'".
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("load_parameters: " + what + " at byte offset " +
                             std::to_string(offset_) + " in '" + source_ + "'");
  }

  void bytes(void* dst, std::size_t n, const char* what) {
    in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (!in_) fail(std::string("truncated read (") + what + ")");
    if (checksumming_) crc_ = crc32(dst, n, crc_);
    offset_ += n;
  }
  std::uint32_t u32(const char* what) {
    std::uint32_t v = 0;
    bytes(&v, sizeof(v), what);
    return v;
  }
  std::string str(const char* what) {
    const std::uint32_t n = u32(what);
    if (n > kMaxNameLength) {
      fail(std::string("implausible string length ") + std::to_string(n) + " (" + what + ")");
    }
    std::string s(n, '\0');
    bytes(s.data(), n, what);
    return s;
  }

  void start_checksum() { checksumming_ = true; }
  void stop_checksum() { checksumming_ = false; }
  std::uint32_t crc() const { return crc_; }
  const std::string& source() const { return source_; }

 private:
  std::istream& in_;
  std::string source_;
  std::size_t offset_ = 0;
  std::uint32_t crc_ = 0;
  bool checksumming_ = false;
};

}  // namespace

void save_parameters(const Module& module, std::ostream& out) {
  const auto named = module.named_parameters();
  Writer w(out);
  w.u32(kMagic, /*checksum=*/false);
  w.u32(kVersionSentinel, /*checksum=*/false);
  w.u32(kVersion);
  w.u32(static_cast<std::uint32_t>(named.size()));
  for (const auto& [name, tensor] : named) {
    w.str(name);
    w.u32(static_cast<std::uint32_t>(tensor.shape().size()));
    for (const int d : tensor.shape()) w.u32(static_cast<std::uint32_t>(d));
    w.bytes(tensor.data().data(), tensor.data().size() * sizeof(float));
  }
  const std::uint32_t digest = w.crc();
  w.u32(digest, /*checksum=*/false);
}

bool save_parameters_file(const Module& module, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    save_parameters(module, out);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  // rename(2) is atomic within a filesystem: readers see either the old
  // complete file or the new complete file, never a partial write.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void load_parameters(Module& module, std::istream& in, const std::string& source) {
  Reader r(in, source);
  if (r.u32("magic") != kMagic) r.fail("bad magic (not a LACO checkpoint)");

  std::uint32_t count = 0;
  bool versioned = false;
  const std::uint32_t second = r.u32("header");
  if (second == kVersionSentinel) {
    versioned = true;
    r.start_checksum();
    const std::uint32_t version = r.u32("version");
    if (version != kVersion) {
      r.fail("unsupported format version " + std::to_string(version));
    }
    count = r.u32("parameter count");
  } else {
    count = second;  // v1: the word after the magic is the entry count
  }
  if (count > kMaxParameters) {
    r.fail("implausible parameter count " + std::to_string(count));
  }

  std::map<std::string, std::pair<Shape, std::vector<float>>> loaded;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = r.str("parameter name");
    const std::uint32_t rank = r.u32("tensor rank");
    if (rank > kMaxRank) r.fail("implausible tensor rank " + std::to_string(rank));
    Shape shape(rank);
    std::size_t elements = 1;
    for (std::uint32_t d = 0; d < rank; ++d) {
      const std::uint32_t dim = r.u32("tensor dim");
      shape[d] = static_cast<int>(dim);
      if (shape[d] < 0 || (dim != 0 && elements > kMaxTensorBytes / sizeof(float) / dim)) {
        r.fail("implausible shape for '" + name + "'");
      }
      elements *= dim;
    }
    std::vector<float> data(elements);
    r.bytes(data.data(), data.size() * sizeof(float), "tensor data");
    loaded[name] = {std::move(shape), std::move(data)};
  }

  if (versioned) {
    const std::uint32_t computed = r.crc();
    r.stop_checksum();
    const std::uint32_t stored = r.u32("checksum");
    if (stored != computed) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "checksum mismatch (stored 0x%08x, computed 0x%08x)",
                    stored, computed);
      r.fail(std::string(buf) + " — checkpoint corrupt");
    }
  }

  for (auto& [name, tensor] : module.named_parameters()) {
    const auto it = loaded.find(name);
    if (it == loaded.end()) {
      throw std::runtime_error("load_parameters: missing '" + name + "' in '" + source + "'");
    }
    if (it->second.first != tensor.shape()) {
      throw std::runtime_error("load_parameters: shape mismatch for '" + name + "' in '" +
                               source + "'");
    }
    tensor.data() = it->second.second;
  }
}

void load_parameters_file(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_parameters: cannot open '" + path + "'");
  load_parameters(module, in, path);
}

}  // namespace laco::nn
