#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>

namespace laco::nn {
namespace {

constexpr std::uint32_t kMagic = 0x4c41434fu;  // "LACO"

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("load_parameters: truncated stream");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const std::uint32_t n = read_u32(in);
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) throw std::runtime_error("load_parameters: truncated string");
  return s;
}

}  // namespace

void save_parameters(const Module& module, std::ostream& out) {
  const auto named = module.named_parameters();
  write_u32(out, kMagic);
  write_u32(out, static_cast<std::uint32_t>(named.size()));
  for (const auto& [name, tensor] : named) {
    write_string(out, name);
    write_u32(out, static_cast<std::uint32_t>(tensor.shape().size()));
    for (const int d : tensor.shape()) write_u32(out, static_cast<std::uint32_t>(d));
    out.write(reinterpret_cast<const char*>(tensor.data().data()),
              static_cast<std::streamsize>(tensor.data().size() * sizeof(float)));
  }
}

bool save_parameters_file(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  save_parameters(module, out);
  return static_cast<bool>(out);
}

void load_parameters(Module& module, std::istream& in) {
  if (read_u32(in) != kMagic) throw std::runtime_error("load_parameters: bad magic");
  const std::uint32_t count = read_u32(in);
  std::map<std::string, std::pair<Shape, std::vector<float>>> loaded;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = read_string(in);
    const std::uint32_t rank = read_u32(in);
    Shape shape(rank);
    for (std::uint32_t d = 0; d < rank; ++d) shape[d] = static_cast<int>(read_u32(in));
    std::vector<float> data(static_cast<std::size_t>(numel(shape)));
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in) throw std::runtime_error("load_parameters: truncated tensor data");
    loaded[name] = {std::move(shape), std::move(data)};
  }
  for (auto& [name, tensor] : module.named_parameters()) {
    const auto it = loaded.find(name);
    if (it == loaded.end()) throw std::runtime_error("load_parameters: missing '" + name + "'");
    if (it->second.first != tensor.shape()) {
      throw std::runtime_error("load_parameters: shape mismatch for '" + name + "'");
    }
    tensor.data() = it->second.second;
  }
}

void load_parameters_file(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_parameters: cannot open '" + path + "'");
  load_parameters(module, in);
}

}  // namespace laco::nn
