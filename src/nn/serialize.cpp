#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/serial.hpp"

namespace laco::nn {
namespace {

constexpr std::uint32_t kMagic = 0x4c41434fu;  // "LACO"
constexpr std::uint32_t kVersion = 2;

// Corruption guards: a flipped bit in a header length must produce a
// clean error, not a multi-gigabyte allocation.
constexpr std::uint32_t kMaxParameters = 1u << 20;
constexpr std::uint32_t kMaxNameLength = 1u << 12;
constexpr std::uint32_t kMaxRank = 8;
constexpr std::size_t kMaxTensorBytes = std::size_t{1} << 31;

}  // namespace

void save_parameters(const Module& module, std::ostream& out) {
  const auto named = module.named_parameters();
  serial::Writer w(out);
  serial::write_frame_header(w, kMagic, kVersion);
  w.u32(static_cast<std::uint32_t>(named.size()));
  for (const auto& [name, tensor] : named) {
    w.str(name);
    w.u32(static_cast<std::uint32_t>(tensor.shape().size()));
    for (const int d : tensor.shape()) w.u32(static_cast<std::uint32_t>(d));
    w.bytes(tensor.data().data(), tensor.data().size() * sizeof(float));
  }
  serial::write_frame_trailer(w);
}

bool save_parameters_file(const Module& module, const std::string& path) {
  return serial::atomic_write_file(path, [&module](std::ostream& out) {
    save_parameters(module, out);
    return static_cast<bool>(out);
  });
}

void load_parameters(Module& module, std::istream& in, const std::string& source) {
  serial::Reader r(in, source, "load_parameters");
  if (r.u32("magic") != kMagic) r.fail("bad magic (not a LACO checkpoint)");

  std::uint32_t count = 0;
  bool versioned = false;
  const std::uint32_t second = r.u32("header");
  if (second == serial::kVersionSentinel) {
    versioned = true;
    r.start_checksum();
    const std::uint32_t version = r.u32("version");
    if (version != kVersion) {
      r.fail("unsupported format version " + std::to_string(version));
    }
    count = r.u32("parameter count");
  } else {
    count = second;  // v1: the word after the magic is the entry count
  }
  if (count > kMaxParameters) {
    r.fail("implausible parameter count " + std::to_string(count));
  }

  std::map<std::string, std::pair<Shape, std::vector<float>>> loaded;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = r.str("parameter name", kMaxNameLength);
    const std::uint32_t rank = r.u32("tensor rank");
    if (rank > kMaxRank) r.fail("implausible tensor rank " + std::to_string(rank));
    Shape shape(rank);
    std::size_t elements = 1;
    for (std::uint32_t d = 0; d < rank; ++d) {
      const std::uint32_t dim = r.u32("tensor dim");
      shape[d] = static_cast<int>(dim);
      if (shape[d] < 0 || (dim != 0 && elements > kMaxTensorBytes / sizeof(float) / dim)) {
        r.fail("implausible shape for '" + name + "'");
      }
      elements *= dim;
    }
    std::vector<float> data(elements);
    r.bytes(data.data(), data.size() * sizeof(float), "tensor data");
    loaded[name] = {std::move(shape), std::move(data)};
  }

  if (versioned) serial::read_frame_trailer(r);

  for (auto& [name, tensor] : module.named_parameters()) {
    const auto it = loaded.find(name);
    if (it == loaded.end()) {
      throw std::runtime_error("load_parameters: missing '" + name + "' in '" + source + "'");
    }
    if (it->second.first != tensor.shape()) {
      throw std::runtime_error("load_parameters: shape mismatch for '" + name + "' in '" +
                               source + "'");
    }
    tensor.data() = it->second.second;
  }
}

void load_parameters_file(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_parameters: cannot open '" + path + "'");
  load_parameters(module, in, path);
}

}  // namespace laco::nn
