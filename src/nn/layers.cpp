#include "nn/layers.hpp"

#include <atomic>

#include "nn/autograd.hpp"
#include "nn/ops.hpp"

namespace laco::nn {

namespace {
std::atomic<unsigned> g_init_seed{0x5eed};
}

unsigned next_init_seed() { return g_init_seed.fetch_add(0x9e37u) + 1u; }
void reset_init_seed(unsigned seed) { g_init_seed.store(seed); }

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride, int padding,
               int groups, bool bias)
    : stride_(stride),
      padding_(padding < 0 ? kernel / 2 : padding),  // default: "same" for stride 1
      groups_(groups) {
  Tensor w = Tensor::zeros({out_channels, in_channels / groups, kernel, kernel});
  fill_kaiming(w, (in_channels / groups) * kernel * kernel, next_init_seed());
  weight_ = register_parameter("weight", w);
  if (bias) {
    bias_ = register_parameter("bias", Tensor::zeros({out_channels}));
  }
}

Tensor Conv2d::forward(const Tensor& x) const {
  return conv2d(x, weight_, bias_, stride_, padding_, groups_);
}

ConvTranspose2d::ConvTranspose2d(int in_channels, int out_channels, int kernel, int stride,
                                 int padding, int output_padding, int groups, bool bias)
    : stride_(stride), padding_(padding), output_padding_(output_padding), groups_(groups) {
  Tensor w = Tensor::zeros({in_channels, out_channels / groups, kernel, kernel});
  fill_kaiming(w, (out_channels / groups) * kernel * kernel, next_init_seed());
  weight_ = register_parameter("weight", w);
  if (bias) {
    bias_ = register_parameter("bias", Tensor::zeros({out_channels}));
  }
}

Tensor ConvTranspose2d::forward(const Tensor& x) const {
  return conv_transpose2d(x, weight_, bias_, stride_, padding_, output_padding_, groups_);
}

GroupNorm::GroupNorm(int num_groups, int num_channels, float eps)
    : num_groups_(num_groups), eps_(eps) {
  gamma_ = register_parameter("gamma", Tensor::full({num_channels}, 1.0f));
  beta_ = register_parameter("beta", Tensor::zeros({num_channels}));
}

Tensor GroupNorm::forward(const Tensor& x) const {
  return group_norm(x, num_groups_, gamma_, beta_, eps_);
}

Linear::Linear(int in_features, int out_features, bool bias) {
  Tensor w = Tensor::zeros({out_features, in_features});
  fill_kaiming(w, in_features, next_init_seed());
  weight_ = register_parameter("weight", w);
  if (bias) {
    bias_ = register_parameter("bias", Tensor::zeros({out_features}));
  }
}

Tensor Linear::forward(const Tensor& x) const { return linear(x, weight_, bias_); }

}  // namespace laco::nn
