// Tiled group_norm kernel (docs/KERNELS.md): forward fuses the
// statistics and normalize passes per (batch, group) tile — each tile's
// double-precision mean/variance chains and normalized writes are the
// naive nn::reference loops verbatim, so outputs are bitwise-identical
// to the reference and across ThreadPool sizes. The backward
// parallelizes over groups: a group task owns its channels' gamma/beta
// gradient slots and its input-gradient slab, accumulating in the
// reference (b, c, i) ascending order.
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "nn/kernel_pool.hpp"
#include "nn/op_trace.hpp"
#include "nn/ops.hpp"

namespace laco::nn {
namespace {

// Shared between the eager forward and the traced plan kernel so
// replay is bitwise-equal: statistics are recomputed from the input at
// execution time with the same double accumulation.

struct GroupNormParams {
  int n, c, num_groups, cg;
  std::size_t plane, group_size;
  float eps;
};

/// Statistics + normalize for every (batch, group) tile. `means` /
/// `inv_stds` ([n × num_groups]) are filled as a side product for the
/// backward pass; each slot has exactly one writer.
void group_norm_forward(const GroupNormParams& p, const float* xd, const float* gamma,
                        const float* beta, float* means, float* inv_stds, float* y) {
  static const OpStats stats = make_op_stats("group_norm");
  OpTimer timer(stats);
  const std::size_t tiles = static_cast<std::size_t>(p.n) * p.num_groups;
  // LACO_DETERMINISTIC: per-(b, g) tile; double mean/var chains and
  // normalized writes in the reference element order.
  parallel_tiles(tiles, [&](std::size_t t) {
    const int g = static_cast<int>(t % p.num_groups);
    const int b = static_cast<int>(t / p.num_groups);
    const std::size_t base =
        (static_cast<std::size_t>(b) * p.c + static_cast<std::size_t>(g) * p.cg) * p.plane;
    double m = 0.0;
    for (std::size_t i = 0; i < p.group_size; ++i) m += xd[base + i];
    m /= static_cast<double>(p.group_size);
    double v = 0.0;
    for (std::size_t i = 0; i < p.group_size; ++i) {
      const double d = xd[base + i] - m;
      v += d * d;
    }
    v /= static_cast<double>(p.group_size);
    const float mf = static_cast<float>(m);
    const float is = static_cast<float>(1.0 / std::sqrt(v + p.eps));
    means[t] = mf;
    inv_stds[t] = is;
    for (int cc = 0; cc < p.cg; ++cc) {
      const int ch = g * p.cg + cc;
      const float ga = gamma[static_cast<std::size_t>(ch)];
      const float be = beta[static_cast<std::size_t>(ch)];
      const float* __restrict xrow = xd + base + static_cast<std::size_t>(cc) * p.plane;
      float* __restrict yrow = y + base + static_cast<std::size_t>(cc) * p.plane;
      for (std::size_t i = 0; i < p.plane; ++i) {
        yrow[i] = ga * (xrow[i] - mf) * is + be;
      }
    }
  });
}

}  // namespace

Tensor group_norm(const Tensor& x, int num_groups, const Tensor& gamma, const Tensor& beta,
                  float eps) {
  if (!x.defined() || x.shape().size() != 4) {
    throw std::invalid_argument("group_norm: expected NCHW, got " +
                                (x.defined() ? shape_str(x.shape()) : "an undefined tensor"));
  }
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (num_groups < 1 || c % num_groups != 0) {
    throw std::invalid_argument("group_norm: channels not divisible by groups (input " +
                                shape_str(x.shape()) + ", num_groups " +
                                std::to_string(num_groups) + ")");
  }
  if (!gamma.defined() || !beta.defined() || gamma.numel() != c || beta.numel() != c) {
    throw std::invalid_argument("group_norm: gamma/beta must have C = " + std::to_string(c) +
                                " elements");
  }
  const int cg = c / num_groups;
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const std::size_t group_size = static_cast<std::size_t>(cg) * plane;
  const GroupNormParams params{n, c, num_groups, cg, plane, group_size, eps};

  // Forward statistics, shared with the backward closure (filled by
  // group_norm_forward below, before any backward can run).
  auto means = std::make_shared<std::vector<float>>(static_cast<std::size_t>(n) * num_groups);
  auto inv_stds = std::make_shared<std::vector<float>>(means->size());

  auto xi = x.impl();
  auto gi = gamma.impl();
  auto bi = beta.impl();
  Tensor out = make_op_output(
      x.shape(), {&x, &gamma, &beta},
      [=](TensorImpl& self) {
        static const OpStats bstats = make_op_stats("group_norm_bwd");
        OpTimer timer(bstats);
        const bool need_x = xi->requires_grad;
        const bool need_g = gi->requires_grad;
        const bool need_b = bi->requires_grad;
        if (need_x) xi->ensure_grad();
        if (need_g) gi->ensure_grad();
        if (need_b) bi->ensure_grad();
        const float inv_m = 1.0f / static_cast<float>(group_size);
        // LACO_DETERMINISTIC: task-per-group ownership of that group's
        // gamma/beta slots and x-grad slab; (b, c, i) ascending chains.
        parallel_tiles(static_cast<std::size_t>(num_groups), [&](std::size_t g_t) {
          const int g = static_cast<int>(g_t);
          for (int b = 0; b < n; ++b) {
            const std::size_t base =
                (static_cast<std::size_t>(b) * c + static_cast<std::size_t>(g) * cg) * plane;
            const float m = (*means)[static_cast<std::size_t>(b) * num_groups + g];
            const float is = (*inv_stds)[static_cast<std::size_t>(b) * num_groups + g];
            // Accumulate the two reduction terms of the GN backward.
            double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
            for (int cc = 0; cc < cg; ++cc) {
              const int ch = g * cg + cc;
              const float ga = gi->data[static_cast<std::size_t>(ch)];
              for (std::size_t i = 0; i < plane; ++i) {
                const std::size_t idx = base + static_cast<std::size_t>(cc) * plane + i;
                const float xhat = (xi->data[idx] - m) * is;
                const float gout = self.grad[idx];
                if (need_g) gi->grad[static_cast<std::size_t>(ch)] += gout * xhat;
                if (need_b) bi->grad[static_cast<std::size_t>(ch)] += gout;
                const float dxhat = gout * ga;
                sum_dxhat += dxhat;
                sum_dxhat_xhat += static_cast<double>(dxhat) * xhat;
              }
            }
            if (!need_x) continue;
            for (int cc = 0; cc < cg; ++cc) {
              const int ch = g * cg + cc;
              const float ga = gi->data[static_cast<std::size_t>(ch)];
              for (std::size_t i = 0; i < plane; ++i) {
                const std::size_t idx = base + static_cast<std::size_t>(cc) * plane + i;
                const float xhat = (xi->data[idx] - m) * is;
                const float dxhat = self.grad[idx] * ga;
                xi->grad[idx] += is * (dxhat - inv_m * static_cast<float>(sum_dxhat) -
                                       xhat * inv_m * static_cast<float>(sum_dxhat_xhat));
              }
            }
          }
        });
      });

  group_norm_forward(params, x.data().data(), gamma.data().data(), beta.data().data(),
                     means->data(), inv_stds->data(), out.data().data());
  trace_op("group_norm", {&x, &gamma, &beta}, out, [params]() -> OpKernel {
    return [params](const float* const* in, float* o) {
      // Scratch for per-call statistics: local (not arena) so
      // concurrent executions of the same plan never share state.
      std::vector<float> k_means(static_cast<std::size_t>(params.n) * params.num_groups);
      std::vector<float> k_inv_stds(k_means.size());
      group_norm_forward(params, in[0], in[1], in[2], k_means.data(), k_inv_stds.data(), o);
    };
  });
  return out;
}

}  // namespace laco::nn
