#include <cmath>
#include <stdexcept>
#include <vector>

#include "nn/op_trace.hpp"
#include "nn/ops.hpp"

namespace laco::nn {
namespace {

// Shared between the eager forward and the traced plan kernel so
// replay is bitwise-equal: statistics are recomputed from the input at
// execution time with the same double accumulation.

struct GroupNormParams {
  int n, c, num_groups, cg;
  std::size_t plane, group_size;
  float eps;
};

void group_norm_stats(const GroupNormParams& p, const float* xd, float* means, float* inv_stds) {
  for (int b = 0; b < p.n; ++b) {
    for (int g = 0; g < p.num_groups; ++g) {
      const std::size_t base =
          (static_cast<std::size_t>(b) * p.c + static_cast<std::size_t>(g) * p.cg) * p.plane;
      double m = 0.0;
      for (std::size_t i = 0; i < p.group_size; ++i) m += xd[base + i];
      m /= static_cast<double>(p.group_size);
      double v = 0.0;
      for (std::size_t i = 0; i < p.group_size; ++i) {
        const double d = xd[base + i] - m;
        v += d * d;
      }
      v /= static_cast<double>(p.group_size);
      means[static_cast<std::size_t>(b) * p.num_groups + g] = static_cast<float>(m);
      inv_stds[static_cast<std::size_t>(b) * p.num_groups + g] =
          static_cast<float>(1.0 / std::sqrt(v + p.eps));
    }
  }
}

void group_norm_apply(const GroupNormParams& p, const float* xd, const float* gamma,
                      const float* beta, const float* means, const float* inv_stds, float* y) {
  for (int b = 0; b < p.n; ++b) {
    for (int g = 0; g < p.num_groups; ++g) {
      const std::size_t base =
          (static_cast<std::size_t>(b) * p.c + static_cast<std::size_t>(g) * p.cg) * p.plane;
      const float m = means[static_cast<std::size_t>(b) * p.num_groups + g];
      const float is = inv_stds[static_cast<std::size_t>(b) * p.num_groups + g];
      for (int cc = 0; cc < p.cg; ++cc) {
        const int ch = g * p.cg + cc;
        const float ga = gamma[static_cast<std::size_t>(ch)];
        const float be = beta[static_cast<std::size_t>(ch)];
        for (std::size_t i = 0; i < p.plane; ++i) {
          const std::size_t idx = base + static_cast<std::size_t>(cc) * p.plane + i;
          y[idx] = ga * (xd[idx] - m) * is + be;
        }
      }
    }
  }
}

}  // namespace

Tensor group_norm(const Tensor& x, int num_groups, const Tensor& gamma, const Tensor& beta,
                  float eps) {
  if (x.shape().size() != 4) throw std::invalid_argument("group_norm: expected NCHW");
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (num_groups < 1 || c % num_groups != 0) {
    throw std::invalid_argument("group_norm: channels not divisible by groups");
  }
  if (!gamma.defined() || !beta.defined() || gamma.numel() != c || beta.numel() != c) {
    throw std::invalid_argument("group_norm: gamma/beta must have C elements");
  }
  const int cg = c / num_groups;
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const std::size_t group_size = static_cast<std::size_t>(cg) * plane;
  const GroupNormParams params{n, c, num_groups, cg, plane, group_size, eps};

  // Forward statistics, captured for the backward pass.
  std::vector<float> means(static_cast<std::size_t>(n) * num_groups);
  std::vector<float> inv_stds(static_cast<std::size_t>(n) * num_groups);
  const auto& xd = x.data();
  group_norm_stats(params, xd.data(), means.data(), inv_stds.data());

  auto xi = x.impl();
  auto gi = gamma.impl();
  auto bi = beta.impl();
  Tensor out = make_op_output(
      x.shape(), {&x, &gamma, &beta},
      [=](TensorImpl& self) {
        const bool need_x = xi->requires_grad;
        const bool need_g = gi->requires_grad;
        const bool need_b = bi->requires_grad;
        if (need_x) xi->ensure_grad();
        if (need_g) gi->ensure_grad();
        if (need_b) bi->ensure_grad();
        const float inv_m = 1.0f / static_cast<float>(group_size);
        for (int b = 0; b < n; ++b) {
          for (int g = 0; g < num_groups; ++g) {
            const std::size_t base =
                (static_cast<std::size_t>(b) * c + static_cast<std::size_t>(g) * cg) * plane;
            const float m = means[static_cast<std::size_t>(b) * num_groups + g];
            const float is = inv_stds[static_cast<std::size_t>(b) * num_groups + g];
            // Accumulate the two reduction terms of the GN backward.
            double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
            for (int cc = 0; cc < cg; ++cc) {
              const int ch = g * cg + cc;
              const float ga = gi->data[static_cast<std::size_t>(ch)];
              for (std::size_t i = 0; i < plane; ++i) {
                const std::size_t idx = base + static_cast<std::size_t>(cc) * plane + i;
                const float xhat = (xi->data[idx] - m) * is;
                const float gout = self.grad[idx];
                if (need_g) gi->grad[static_cast<std::size_t>(ch)] += gout * xhat;
                if (need_b) bi->grad[static_cast<std::size_t>(ch)] += gout;
                const float dxhat = gout * ga;
                sum_dxhat += dxhat;
                sum_dxhat_xhat += static_cast<double>(dxhat) * xhat;
              }
            }
            if (!need_x) continue;
            for (int cc = 0; cc < cg; ++cc) {
              const int ch = g * cg + cc;
              const float ga = gi->data[static_cast<std::size_t>(ch)];
              for (std::size_t i = 0; i < plane; ++i) {
                const std::size_t idx = base + static_cast<std::size_t>(cc) * plane + i;
                const float xhat = (xi->data[idx] - m) * is;
                const float dxhat = self.grad[idx] * ga;
                xi->grad[idx] += is * (dxhat - inv_m * static_cast<float>(sum_dxhat) -
                                       xhat * inv_m * static_cast<float>(sum_dxhat_xhat));
              }
            }
          }
        }
      });

  group_norm_apply(params, xd.data(), gamma.data().data(), beta.data().data(), means.data(),
                   inv_stds.data(), out.data().data());
  trace_op("group_norm", {&x, &gamma, &beta}, out, [params]() -> OpKernel {
    return [params](const float* const* in, float* o) {
      // Scratch for per-call statistics: local (not arena) so
      // concurrent executions of the same plan never share state.
      std::vector<float> k_means(static_cast<std::size_t>(params.n) * params.num_groups);
      std::vector<float> k_inv_stds(k_means.size());
      group_norm_stats(params, in[0], k_means.data(), k_inv_stds.data());
      group_norm_apply(params, in[0], in[1], in[2], k_means.data(), k_inv_stds.data(), o);
    };
  });
  return out;
}

}  // namespace laco::nn
