// Op-introspection hooks for plan compilation (src/plan).
//
// A thread can install an OpTraceSink; while it is active, every op
// that supports replay calls trace_op() after computing its output
// eagerly, handing the sink a *kernel*: a closure over the op's static
// parameters (dims, strides, eps, ...) that reproduces the forward
// computation from raw input pointers into a raw output buffer. The
// kernel runs the exact same code path as the eager forward (ops
// factor their loops into shared helpers), so a replayed plan is
// bitwise-equal to eager execution by construction.
//
// make_op_output() additionally calls note_output() for *every* op
// while a sink is active — including ops that never call trace_op() —
// so the plan compiler can detect "holes" (outputs produced by an
// untraceable op) and fall back to eager execution instead of
// miscompiling.
//
// The sink pointer is thread-local: tracing on one thread never
// observes ops run concurrently by other threads.
#pragma once

#include <functional>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

#include "nn/tensor.hpp"

namespace laco::nn {

/// Replayable forward: `inputs[i]` is the raw data pointer of the i-th
/// input (nullptr for an undefined optional input, e.g. a missing
/// bias); `out` has room for the output's numel. Kernels are immutable
/// after construction and safe to invoke concurrently.
using OpKernel = std::function<void(const float* const* inputs, float* out)>;

class OpTraceSink {
 public:
  virtual ~OpTraceSink() = default;

  /// Called by make_op_output for every op output created while this
  /// sink is active (even ops that do not support replay).
  virtual void note_output(const std::shared_ptr<TensorImpl>& out) = 0;

  /// Called by replay-capable ops after eager computation. `inputs`
  /// holds one entry per op operand, nullptr where the operand was an
  /// undefined Tensor; the kernel expects pointers in the same order.
  virtual void record_op(const char* op, std::vector<std::shared_ptr<TensorImpl>> inputs,
                         const std::shared_ptr<TensorImpl>& out, OpKernel kernel) = 0;
};

/// The calling thread's active sink, or nullptr when not tracing.
OpTraceSink* active_op_trace();

/// RAII: installs `sink` as the calling thread's active sink.
class OpTraceScope {
 public:
  explicit OpTraceScope(OpTraceSink* sink);
  ~OpTraceScope();
  OpTraceScope(const OpTraceScope&) = delete;
  OpTraceScope& operator=(const OpTraceScope&) = delete;

 private:
  OpTraceSink* previous_;
};

/// Op-side helper: records `out = op(inputs)` with the sink if one is
/// active. `make_kernel` is only invoked while tracing, so untraced
/// forwards pay exactly one thread-local read.
template <typename MakeKernel>
inline void trace_op(const char* op, std::initializer_list<const Tensor*> inputs,
                     const Tensor& out, MakeKernel&& make_kernel) {
  OpTraceSink* sink = active_op_trace();
  if (sink == nullptr) return;
  std::vector<std::shared_ptr<TensorImpl>> ins;
  ins.reserve(inputs.size());
  for (const Tensor* t : inputs) ins.push_back(t->defined() ? t->impl() : nullptr);
  sink->record_op(op, std::move(ins), out.impl(), make_kernel());
}

/// Variadic-operand overload (cat_channels and friends).
template <typename MakeKernel>
inline void trace_op(const char* op, const std::vector<const Tensor*>& inputs, const Tensor& out,
                     MakeKernel&& make_kernel) {
  OpTraceSink* sink = active_op_trace();
  if (sink == nullptr) return;
  std::vector<std::shared_ptr<TensorImpl>> ins;
  ins.reserve(inputs.size());
  for (const Tensor* t : inputs) ins.push_back(t->defined() ? t->impl() : nullptr);
  sink->record_op(op, std::move(ins), out.impl(), make_kernel());
}

}  // namespace laco::nn
