#include "nn/tensor.hpp"

#include <sstream>
#include <stdexcept>

#include "nn/op_trace.hpp"
#include "obs/metrics.hpp"

namespace laco::nn {

namespace {
thread_local bool g_grad_enabled = true;

obs::Counter& tensor_alloc_counter() {
  // MetricRegistry::reset() zeroes but never destroys instruments, so
  // this reference stays valid for the process lifetime.
  static obs::Counter& counter = obs::MetricRegistry::global().counter("nn.tensor.allocs");
  return counter;
}
}  // namespace

std::uint64_t tensor_alloc_count() { return tensor_alloc_counter().value(); }

std::int64_t numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const int d : shape) n *= d;
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

bool grad_enabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

Tensor Tensor::zeros(Shape shape, bool requires_grad) {
  return full(std::move(shape), 0.0f, requires_grad);
}

Tensor Tensor::full(Shape shape, float value, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  const std::int64_t n = nn::numel(shape);
  if (n < 0) throw std::invalid_argument("Tensor: negative dimension in " + shape_str(shape));
  impl->shape = std::move(shape);
  impl->data.assign(static_cast<std::size_t>(n), value);
  impl->requires_grad = requires_grad;
  tensor_alloc_counter().add();
  return Tensor(std::move(impl));
}

Tensor Tensor::from_data(Shape shape, std::vector<float> values, bool requires_grad) {
  if (nn::numel(shape) != static_cast<std::int64_t>(values.size())) {
    throw std::invalid_argument("Tensor::from_data: size mismatch for " + shape_str(shape));
  }
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(values);
  impl->requires_grad = requires_grad;
  tensor_alloc_counter().add();
  return Tensor(std::move(impl));
}

Tensor Tensor::scalar(float value, bool requires_grad) {
  return from_data({1}, {value}, requires_grad);
}

int Tensor::dim(int i) const {
  if (i < 0 || static_cast<std::size_t>(i) >= impl_->shape.size()) {
    throw std::out_of_range("Tensor::dim");
  }
  return impl_->shape[static_cast<std::size_t>(i)];
}

float Tensor::item() const {
  if (impl_->data.size() != 1) {
    throw std::logic_error("Tensor::item: tensor has " + std::to_string(impl_->data.size()) +
                           " elements");
  }
  return impl_->data[0];
}

Tensor Tensor::detach() const {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;  // value copy keeps graphs separable and safe
  impl->requires_grad = false;
  tensor_alloc_counter().add();
  return Tensor(std::move(impl));
}

Tensor Tensor::clone() const { return detach(); }

Tensor make_op_output(Shape shape, std::vector<const Tensor*> inputs,
                      std::function<void(TensorImpl&)> backward_fn) {
  Tensor out = Tensor::zeros(std::move(shape));
  // Tracing sees *every* op output, including ops that never call
  // trace_op(); the plan compiler uses the mismatch to detect
  // unsupported ops and fall back to eager execution.
  if (OpTraceSink* sink = active_op_trace()) sink->note_output(out.impl());
  if (!grad_enabled()) return out;
  bool needs = false;
  for (const Tensor* in : inputs) {
    if (in->defined() && in->requires_grad()) {
      needs = true;
      break;
    }
  }
  if (!needs) return out;
  out.impl()->requires_grad = true;
  out.impl()->backward_fn = std::move(backward_fn);
  for (const Tensor* in : inputs) {
    if (in->defined()) out.impl()->parents.push_back(in->impl());
  }
  return out;
}

void Tensor::backward() {
  if (!impl_) throw std::logic_error("backward on undefined tensor");
  if (impl_->data.size() != 1) {
    throw std::logic_error("backward requires a scalar loss tensor");
  }
  // Topological order via iterative DFS over parent edges.
  std::vector<TensorImpl*> order;
  std::vector<std::pair<TensorImpl*, std::size_t>> stack;
  std::vector<TensorImpl*> visited;
  const auto is_visited = [&](TensorImpl* t) {
    for (TensorImpl* v : visited) {
      if (v == t) return true;
    }
    return false;
  };
  stack.emplace_back(impl_.get(), 0);
  visited.push_back(impl_.get());
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < node->parents.size()) {
      TensorImpl* parent = node->parents[next++].get();
      if (!is_visited(parent)) {
        visited.push_back(parent);
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // `order` is now children-after-parents; walk it reversed.
  impl_->ensure_grad();
  impl_->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn) {
      node->ensure_grad();
      node->backward_fn(*node);
    }
  }
}

}  // namespace laco::nn
