// All differentiable tensor operations. Implementations are split
// across ops_*.cpp by family; this single header is the op catalog.
#pragma once

#include "nn/tensor.hpp"

namespace laco::nn {

// --- elementwise (ops_elementwise.cpp) --------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);
Tensor add_scalar(const Tensor& a, float s);
Tensor neg(const Tensor& a);
Tensor leaky_relu(const Tensor& a, float negative_slope = 0.01f);
Tensor relu(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor tanh_op(const Tensor& a);
Tensor exp_op(const Tensor& a);
Tensor log_op(const Tensor& a);  ///< log(max(x, 1e-12))
Tensor square(const Tensor& a);

// --- reductions / losses (losses.cpp) ---------------------------------
Tensor sum(const Tensor& a);
Tensor mean(const Tensor& a);
Tensor mse_loss(const Tensor& prediction, const Tensor& target);
/// ||prediction||²/numel — the paper's congestion penalty form (Eq. 9).
Tensor mean_square(const Tensor& prediction);
/// Diagonal-Gaussian KL(N(mu, exp(logvar)) || N(0, I)) summed over all
/// elements and divided by batch size (paper Eq. 16).
Tensor vae_kl_loss(const Tensor& mu, const Tensor& logvar);

// --- linear algebra (ops_linear.cpp) ----------------------------------
/// x:[N,In] · weight:[Out,In]ᵀ + bias:[Out] → [N,Out]; bias may be undefined.
Tensor linear(const Tensor& x, const Tensor& weight, const Tensor& bias);

// --- convolutions, NCHW (ops_conv.cpp) --------------------------------
/// weight: [Cout, Cin/groups, Kh, Kw]; bias: [Cout] or undefined.
Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias, int stride = 1,
              int padding = 0, int groups = 1);
/// weight: [Cin, Cout/groups, Kh, Kw]; output spatial size
/// (H−1)·stride − 2·padding + Kh (+ output_padding).
Tensor conv_transpose2d(const Tensor& x, const Tensor& weight, const Tensor& bias,
                        int stride = 1, int padding = 0, int output_padding = 0,
                        int groups = 1);

// --- normalization (ops_norm.cpp) --------------------------------------
/// GroupNorm over NCHW with per-channel affine gamma/beta (shape [C]).
Tensor group_norm(const Tensor& x, int num_groups, const Tensor& gamma, const Tensor& beta,
                  float eps = 1e-5f);

// --- shape (ops_shape.cpp) ---------------------------------------------
Tensor reshape(const Tensor& a, Shape new_shape);
/// Concatenates NCHW tensors along the channel axis.
Tensor cat_channels(const std::vector<Tensor>& tensors);
/// Channels [begin, end) of an NCHW tensor.
Tensor slice_channels(const Tensor& a, int begin, int end);
/// Concatenates tensors along dim 0 (batch); trailing dims must match.
Tensor stack_batch(const std::vector<Tensor>& tensors);

// --- resampling (ops_resample.cpp) --------------------------------------
/// Bilinear resize of NCHW to (out_h, out_w), align_corners=false.
Tensor upsample_bilinear(const Tensor& x, int out_h, int out_w);
/// kxk average pooling with stride k (exact division required).
Tensor avg_pool2d(const Tensor& x, int k);
/// [N,C,H,W] → [N,C] spatial mean.
Tensor global_avg_pool(const Tensor& x);

}  // namespace laco::nn
