#include <algorithm>
#include <stdexcept>

#include "nn/op_trace.hpp"
#include "nn/ops.hpp"

namespace laco::nn {

Tensor reshape(const Tensor& a, Shape new_shape) {
  if (numel(new_shape) != a.numel()) {
    throw std::invalid_argument("reshape: element count mismatch " + shape_str(a.shape()) +
                                " -> " + shape_str(new_shape));
  }
  auto ai = a.impl();
  Tensor out = make_op_output(new_shape, {&a}, [ai](TensorImpl& self) {
    if (!ai->requires_grad) return;
    ai->ensure_grad();
    for (std::size_t i = 0; i < ai->grad.size(); ++i) ai->grad[i] += self.grad[i];
  });
  out.data() = a.data();
  trace_op("reshape", {&a}, out, [n = a.data().size()]() -> OpKernel {
    return [n](const float* const* in, float* o) { std::copy(in[0], in[0] + n, o); };
  });
  return out;
}

Tensor cat_channels(const std::vector<Tensor>& tensors) {
  if (tensors.empty()) throw std::invalid_argument("cat_channels: empty input");
  const int n = tensors[0].dim(0), h = tensors[0].dim(2), w = tensors[0].dim(3);
  int total_c = 0;
  for (const Tensor& t : tensors) {
    if (t.shape().size() != 4 || t.dim(0) != n || t.dim(2) != h || t.dim(3) != w) {
      throw std::invalid_argument("cat_channels: incompatible shapes");
    }
    total_c += t.dim(1);
  }
  const std::size_t plane = static_cast<std::size_t>(h) * w;

  std::vector<const Tensor*> inputs;
  std::vector<std::shared_ptr<TensorImpl>> impls;
  std::vector<int> channels;
  inputs.reserve(tensors.size());
  for (const Tensor& t : tensors) {
    inputs.push_back(&t);
    impls.push_back(t.impl());
    channels.push_back(t.dim(1));
  }

  Tensor out = make_op_output(
      {n, total_c, h, w}, inputs,
      [impls, channels, n, total_c, plane](TensorImpl& self) {
        int c_off = 0;
        for (std::size_t t = 0; t < impls.size(); ++t) {
          const int c = channels[t];
          auto& in = impls[t];
          if (in->requires_grad) {
            in->ensure_grad();
            for (int b = 0; b < n; ++b) {
              const std::size_t src =
                  (static_cast<std::size_t>(b) * total_c + c_off) * plane;
              const std::size_t dst = static_cast<std::size_t>(b) * c * plane;
              for (std::size_t i = 0; i < static_cast<std::size_t>(c) * plane; ++i) {
                in->grad[dst + i] += self.grad[src + i];
              }
            }
          }
          c_off += c;
        }
      });

  int c_off = 0;
  for (const Tensor& t : tensors) {
    const int c = t.dim(1);
    for (int b = 0; b < n; ++b) {
      const std::size_t dst = (static_cast<std::size_t>(b) * total_c + c_off) * plane;
      const std::size_t src = static_cast<std::size_t>(b) * c * plane;
      for (std::size_t i = 0; i < static_cast<std::size_t>(c) * plane; ++i) {
        out.data()[dst + i] = t.data()[src + i];
      }
    }
    c_off += c;
  }
  trace_op("cat_channels", inputs, out, [channels, n, total_c, plane]() -> OpKernel {
    return [channels, n, total_c, plane](const float* const* in, float* o) {
      int off = 0;
      for (std::size_t t = 0; t < channels.size(); ++t) {
        const int c = channels[t];
        for (int b = 0; b < n; ++b) {
          const std::size_t dst = (static_cast<std::size_t>(b) * total_c + off) * plane;
          const std::size_t src = static_cast<std::size_t>(b) * c * plane;
          for (std::size_t i = 0; i < static_cast<std::size_t>(c) * plane; ++i) {
            o[dst + i] = in[t][src + i];
          }
        }
        off += c;
      }
    };
  });
  return out;
}

Tensor slice_channels(const Tensor& a, int begin, int end) {
  if (a.shape().size() != 4) throw std::invalid_argument("slice_channels: expected NCHW");
  const int n = a.dim(0), c = a.dim(1), h = a.dim(2), w = a.dim(3);
  if (begin < 0 || end > c || begin >= end) {
    throw std::invalid_argument("slice_channels: bad range");
  }
  const int oc = end - begin;
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  auto ai = a.impl();
  Tensor out = make_op_output(
      {n, oc, h, w}, {&a}, [ai, n, c, oc, begin, plane](TensorImpl& self) {
        if (!ai->requires_grad) return;
        ai->ensure_grad();
        for (int b = 0; b < n; ++b) {
          const std::size_t src = (static_cast<std::size_t>(b) * c + begin) * plane;
          const std::size_t dst = static_cast<std::size_t>(b) * oc * plane;
          for (std::size_t i = 0; i < static_cast<std::size_t>(oc) * plane; ++i) {
            ai->grad[src + i] += self.grad[dst + i];
          }
        }
      });
  for (int b = 0; b < n; ++b) {
    const std::size_t src = (static_cast<std::size_t>(b) * c + begin) * plane;
    const std::size_t dst = static_cast<std::size_t>(b) * oc * plane;
    for (std::size_t i = 0; i < static_cast<std::size_t>(oc) * plane; ++i) {
      out.data()[dst + i] = a.data()[src + i];
    }
  }
  trace_op("slice_channels", {&a}, out, [n, c, oc, begin, plane]() -> OpKernel {
    return [n, c, oc, begin, plane](const float* const* in, float* o) {
      for (int b = 0; b < n; ++b) {
        const std::size_t src = (static_cast<std::size_t>(b) * c + begin) * plane;
        const std::size_t dst = static_cast<std::size_t>(b) * oc * plane;
        for (std::size_t i = 0; i < static_cast<std::size_t>(oc) * plane; ++i) {
          o[dst + i] = in[0][src + i];
        }
      }
    };
  });
  return out;
}

Tensor stack_batch(const std::vector<Tensor>& tensors) {
  if (tensors.empty()) throw std::invalid_argument("stack_batch: empty input");
  Shape tail = tensors[0].shape();
  if (tail.empty()) throw std::invalid_argument("stack_batch: need rank >= 1");
  int total_n = 0;
  for (const Tensor& t : tensors) {
    Shape s = t.shape();
    if (s.size() != tail.size() ||
        !std::equal(s.begin() + 1, s.end(), tail.begin() + 1)) {
      throw std::invalid_argument("stack_batch: trailing dims mismatch");
    }
    total_n += s[0];
  }
  Shape out_shape = tail;
  out_shape[0] = total_n;

  std::vector<const Tensor*> inputs;
  std::vector<std::shared_ptr<TensorImpl>> impls;
  std::vector<std::size_t> sizes;
  for (const Tensor& t : tensors) {
    inputs.push_back(&t);
    impls.push_back(t.impl());
    sizes.push_back(t.data().size());
  }

  Tensor out = make_op_output(out_shape, inputs, [impls, sizes](TensorImpl& self) {
    std::size_t offset = 0;
    for (std::size_t i = 0; i < impls.size(); ++i) {
      auto& in = impls[i];
      if (in->requires_grad) {
        in->ensure_grad();
        for (std::size_t j = 0; j < sizes[i]; ++j) in->grad[j] += self.grad[offset + j];
      }
      offset += sizes[i];
    }
  });
  std::size_t offset = 0;
  for (const Tensor& t : tensors) {
    std::copy(t.data().begin(), t.data().end(), out.data().begin() + static_cast<std::ptrdiff_t>(offset));
    offset += t.data().size();
  }
  return out;
}

}  // namespace laco::nn
