// Binary (de)serialization of a module's named parameters — a minimal
// state_dict so trained congestion / look-ahead models can be saved and
// reloaded by examples and benches.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/module.hpp"

namespace laco::nn {

void save_parameters(const Module& module, std::ostream& out);
bool save_parameters_file(const Module& module, const std::string& path);

/// Loads parameters by name; throws std::runtime_error on missing names
/// or shape mismatches (a strict load, matching PyTorch strict=True).
void load_parameters(Module& module, std::istream& in);
void load_parameters_file(Module& module, const std::string& path);

}  // namespace laco::nn
