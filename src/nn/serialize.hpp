// Binary (de)serialization of a module's named parameters — a minimal
// state_dict so trained congestion / look-ahead models can be saved and
// reloaded by examples and benches.
//
// Format v2 (current): [magic "LACO"][0xFFFFFFFF][version][count]
// [name, rank, dims, f32 data]×count [CRC-32]. The CRC covers every
// byte from the version word through the last tensor, so bit rot and
// truncation are detected before corrupt weights reach a model. The
// sentinel after the magic distinguishes v2 from the unversioned v1
// layout ([magic][count][entries], no checksum) — v1 files keep
// loading, they just skip CRC verification. See docs/RELIABILITY.md.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/module.hpp"

namespace laco::nn {

void save_parameters(const Module& module, std::ostream& out);

/// Atomic save: writes to `path + ".tmp"` then renames over `path`, so
/// a crash mid-write can never leave a half-written checkpoint at the
/// published path. Returns false (and removes the temp file) on any
/// write or rename failure.
bool save_parameters_file(const Module& module, const std::string& path);

/// Loads parameters by name; throws std::runtime_error on missing names
/// or shape mismatches (a strict load, matching PyTorch strict=True).
/// Corrupt or truncated streams throw with `source` and the byte offset
/// of the failed read; v2 streams additionally verify the CRC-32.
void load_parameters(Module& module, std::istream& in, const std::string& source = "<stream>");
void load_parameters_file(Module& module, const std::string& path);

}  // namespace laco::nn
