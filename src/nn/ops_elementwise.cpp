#include <cmath>
#include <stdexcept>

#include "nn/op_trace.hpp"
#include "nn/ops.hpp"

namespace laco::nn {
namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + shape_str(a.shape()) +
                                " vs " + shape_str(b.shape()));
  }
}

/// Generic unary op: out = f(a), da += df(a, out, dout). The backward
/// closure must NOT capture the output impl (self-reference cycle →
/// leaked graphs); backward_fn's `self` parameter IS the output node.
template <typename Fwd, typename Bwd>
Tensor unary_op(const char* name, const Tensor& a, Fwd fwd, Bwd bwd) {
  auto ai = a.impl();
  Tensor out = make_op_output(a.shape(), {&a}, [ai, bwd](TensorImpl& self) {
    if (!ai->requires_grad) return;
    ai->ensure_grad();
    for (std::size_t i = 0; i < ai->data.size(); ++i) {
      ai->grad[i] += bwd(ai->data[i], self.data[i]) * self.grad[i];
    }
  });
  const auto& x = a.data();
  auto& y = out.data();
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = fwd(x[i]);
  trace_op(name, {&a}, out, [fwd, n = x.size()]() -> OpKernel {
    return [fwd, n](const float* const* in, float* o) {
      const float* x_in = in[0];
      for (std::size_t i = 0; i < n; ++i) o[i] = fwd(x_in[i]);
    };
  });
  return out;
}

/// Generic same-shape binary op forward: out[i] = combine(a[i], b[i]).
template <typename Combine>
void trace_binary(const char* name, const Tensor& a, const Tensor& b, const Tensor& out,
                  Combine combine) {
  trace_op(name, {&a, &b}, out, [combine, n = a.data().size()]() -> OpKernel {
    return [combine, n](const float* const* in, float* o) {
      const float* x = in[0];
      const float* y = in[1];
      for (std::size_t i = 0; i < n; ++i) o[i] = combine(x[i], y[i]);
    };
  });
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  auto ai = a.impl();
  auto bi = b.impl();
  Tensor out = make_op_output(a.shape(), {&a, &b}, [ai, bi](TensorImpl& self) {
    if (ai->requires_grad) {
      ai->ensure_grad();
      for (std::size_t i = 0; i < ai->grad.size(); ++i) ai->grad[i] += self.grad[i];
    }
    if (bi->requires_grad) {
      bi->ensure_grad();
      for (std::size_t i = 0; i < bi->grad.size(); ++i) bi->grad[i] += self.grad[i];
    }
  });
  for (std::size_t i = 0; i < out.data().size(); ++i) out.data()[i] = a.data()[i] + b.data()[i];
  trace_binary("add", a, b, out, [](float x, float y) { return x + y; });
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  auto ai = a.impl();
  auto bi = b.impl();
  Tensor out = make_op_output(a.shape(), {&a, &b}, [ai, bi](TensorImpl& self) {
    if (ai->requires_grad) {
      ai->ensure_grad();
      for (std::size_t i = 0; i < ai->grad.size(); ++i) ai->grad[i] += self.grad[i];
    }
    if (bi->requires_grad) {
      bi->ensure_grad();
      for (std::size_t i = 0; i < bi->grad.size(); ++i) bi->grad[i] -= self.grad[i];
    }
  });
  for (std::size_t i = 0; i < out.data().size(); ++i) out.data()[i] = a.data()[i] - b.data()[i];
  trace_binary("sub", a, b, out, [](float x, float y) { return x - y; });
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  auto ai = a.impl();
  auto bi = b.impl();
  Tensor out = make_op_output(a.shape(), {&a, &b}, [ai, bi](TensorImpl& self) {
    if (ai->requires_grad) {
      ai->ensure_grad();
      for (std::size_t i = 0; i < ai->grad.size(); ++i) ai->grad[i] += bi->data[i] * self.grad[i];
    }
    if (bi->requires_grad) {
      bi->ensure_grad();
      for (std::size_t i = 0; i < bi->grad.size(); ++i) bi->grad[i] += ai->data[i] * self.grad[i];
    }
  });
  for (std::size_t i = 0; i < out.data().size(); ++i) out.data()[i] = a.data()[i] * b.data()[i];
  trace_binary("mul", a, b, out, [](float x, float y) { return x * y; });
  return out;
}

Tensor scale(const Tensor& a, float s) {
  return unary_op(
      "scale", a, [s](float x) { return x * s; }, [s](float, float) { return s; });
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(
      "add_scalar", a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; });
}

Tensor neg(const Tensor& a) { return scale(a, -1.0f); }

Tensor leaky_relu(const Tensor& a, float negative_slope) {
  return unary_op(
      "leaky_relu", a, [negative_slope](float x) { return x >= 0.0f ? x : negative_slope * x; },
      [negative_slope](float x, float) { return x >= 0.0f ? 1.0f : negative_slope; });
}

Tensor relu(const Tensor& a) { return leaky_relu(a, 0.0f); }

Tensor sigmoid(const Tensor& a) {
  return unary_op(
      "sigmoid", a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor tanh_op(const Tensor& a) {
  return unary_op(
      "tanh", a, [](float x) { return std::tanh(x); }, [](float, float y) { return 1.0f - y * y; });
}

Tensor exp_op(const Tensor& a) {
  return unary_op(
      "exp", a, [](float x) { return std::exp(x); }, [](float, float y) { return y; });
}

Tensor log_op(const Tensor& a) {
  return unary_op(
      "log", a, [](float x) { return std::log(std::max(x, 1e-12f)); },
      [](float x, float) { return 1.0f / std::max(x, 1e-12f); });
}

Tensor square(const Tensor& a) {
  return unary_op(
      "square", a, [](float x) { return x * x; }, [](float x, float) { return 2.0f * x; });
}

}  // namespace laco::nn
