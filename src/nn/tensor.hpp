// A small CPU tensor with reverse-mode automatic differentiation — the
// PyTorch substitute this reproduction trains and runs its DNNs on.
//
// Tensors are float32, dense, row-major, NCHW for images. A Tensor is a
// cheap value-type handle onto a shared TensorImpl; ops are free
// functions (nn/ops_*.hpp) that record backward closures onto the
// output's impl. Call backward() on a scalar to populate .grad() on
// every reachable tensor with requires_grad().
//
// Concurrency contract (relied on by src/serve):
//  - grad mode is thread-local: one thread's NoGradGuard never affects
//    another thread's graph recording.
//  - Ops never mutate their *input* impls. make_op_output only writes
//    parents/backward_fn on the freshly created output, and under
//    NoGradGuard it returns before even reading requires_grad, so
//    concurrent inference forwards over shared (frozen) weight tensors
//    are data-race free: weights are read-only, and grad/parents/
//    backward_fn of shared impls are never touched.
//  - backward() and ensure_grad() DO mutate reachable impls
//    (grad accumulation). Training, backward(), zero_grad(), and
//    set_requires_grad() require exclusive ownership of the tensors
//    involved — never run them concurrently with shared-weight
//    inference. Model owners freeze parameters once (requires_grad =
//    false, see serve::ModelRegistry) before sharing across threads.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace laco::nn {

using Shape = std::vector<int>;

std::int64_t numel(const Shape& shape);
std::string shape_str(const Shape& shape);

class Tensor;

struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  ///< allocated lazily on first backward touch
  bool requires_grad = false;
  /// Inputs that contributed to this tensor (graph edges for toposort).
  std::vector<std::shared_ptr<TensorImpl>> parents;
  /// Accumulates this tensor's grad into its parents' grads.
  std::function<void(TensorImpl&)> backward_fn;

  void ensure_grad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

/// Whether ops currently record the autograd graph (thread-local).
bool grad_enabled();

/// RAII guard disabling graph recording (inference / label generation).
/// Thread-local: guards on one thread do not affect others, so a
/// service worker under NoGradGuard can share weights with a training
/// thread that still records graphs on its own tensors.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  /// Uninitialized-to-zero tensor of the given shape.
  static Tensor zeros(Shape shape, bool requires_grad = false);
  static Tensor full(Shape shape, float value, bool requires_grad = false);
  static Tensor from_data(Shape shape, std::vector<float> values, bool requires_grad = false);
  /// Scalar (shape {1}) convenience.
  static Tensor scalar(float value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl_->shape; }
  int dim(int i) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(impl_->data.size()); }

  std::vector<float>& data() { return impl_->data; }
  const std::vector<float>& data() const { return impl_->data; }
  std::vector<float>& grad() { return impl_->grad; }
  const std::vector<float>& grad() const { return impl_->grad; }

  float item() const;  ///< value of a single-element tensor

  bool requires_grad() const { return impl_->requires_grad; }
  Tensor& set_requires_grad(bool value) {
    impl_->requires_grad = value;
    return *this;
  }
  void zero_grad() { impl_->grad.assign(impl_->data.size(), 0.0f); }

  /// Reverse-mode backward from this (scalar) tensor.
  void backward();

  /// Detached copy sharing no graph (fresh impl, same data values).
  Tensor detach() const;
  /// Deep value copy (no graph, independent storage).
  Tensor clone() const;

  std::shared_ptr<TensorImpl>& impl() { return impl_; }
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Creates an output tensor wired into the autograd graph: if grad mode
/// is on and any input requires grad, the closure and parent edges are
/// recorded and the output requires grad.
Tensor make_op_output(Shape shape, std::vector<const Tensor*> inputs,
                      std::function<void(TensorImpl&)> backward_fn);

/// Process-wide count of TensorImpl storage allocations (every zeros/
/// full/from_data/detach/op-output). Exported as the `nn.tensor.allocs`
/// counter via obs::MetricRegistry::global(); this accessor is the
/// cheap read used by benches and the plan tests to assert the
/// compiled-plan path performs ~0 allocations per forward.
std::uint64_t tensor_alloc_count();

}  // namespace laco::nn
