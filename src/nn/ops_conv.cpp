#include <stdexcept>

#include "nn/ops.hpp"

namespace laco::nn {
namespace {

void check_4d(const Tensor& t, const char* what) {
  if (!t.defined() || t.shape().size() != 4) {
    throw std::invalid_argument(std::string(what) + ": expected a 4-D NCHW tensor");
  }
}

std::size_t off4(int a, int b, int c, int d, int B, int C, int D) {
  return ((static_cast<std::size_t>(a) * B + b) * C + c) * D + d;
}

}  // namespace

Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias, int stride,
              int padding, int groups) {
  check_4d(x, "conv2d input");
  check_4d(weight, "conv2d weight");
  const int n = x.dim(0), cin = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int cout = weight.dim(0), cin_g = weight.dim(1), kh = weight.dim(2), kw = weight.dim(3);
  if (groups < 1 || cin % groups != 0 || cout % groups != 0 || cin / groups != cin_g) {
    throw std::invalid_argument("conv2d: inconsistent groups/channels");
  }
  const int oh = (h + 2 * padding - kh) / stride + 1;
  const int ow = (w + 2 * padding - kw) / stride + 1;
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("conv2d: non-positive output size");
  const int cout_g = cout / groups;

  auto xi = x.impl();
  auto wi = weight.impl();
  auto bi = bias.defined() ? bias.impl() : nullptr;

  Tensor out = make_op_output(
      {n, cout, oh, ow}, {&x, &weight, &bias},
      [=](TensorImpl& self) {
        const bool need_x = xi->requires_grad;
        const bool need_w = wi->requires_grad;
        const bool need_b = bi && bi->requires_grad;
        if (need_x) xi->ensure_grad();
        if (need_w) wi->ensure_grad();
        if (need_b) bi->ensure_grad();
        for (int b = 0; b < n; ++b) {
          for (int co = 0; co < cout; ++co) {
            const int g = co / cout_g;
            for (int y = 0; y < oh; ++y) {
              for (int xo = 0; xo < ow; ++xo) {
                const float gout = self.grad[off4(b, co, y, xo, cout, oh, ow)];
                if (gout == 0.0f) continue;
                if (need_b) bi->grad[static_cast<std::size_t>(co)] += gout;
                for (int ci = 0; ci < cin_g; ++ci) {
                  const int cig = g * cin_g + ci;
                  for (int dy = 0; dy < kh; ++dy) {
                    const int iy = y * stride - padding + dy;
                    if (iy < 0 || iy >= h) continue;
                    for (int dx = 0; dx < kw; ++dx) {
                      const int ix = xo * stride - padding + dx;
                      if (ix < 0 || ix >= w) continue;
                      const std::size_t xoff = off4(b, cig, iy, ix, cin, h, w);
                      const std::size_t woff = off4(co, ci, dy, dx, cin_g, kh, kw);
                      if (need_x) xi->grad[xoff] += gout * wi->data[woff];
                      if (need_w) wi->grad[woff] += gout * xi->data[xoff];
                    }
                  }
                }
              }
            }
          }
        }
      });

  auto& y = out.data();
  const auto& xd = x.data();
  const auto& wd = weight.data();
  for (int b = 0; b < n; ++b) {
    for (int co = 0; co < cout; ++co) {
      const int g = co / cout_g;
      const float bval = bias.defined() ? bias.data()[static_cast<std::size_t>(co)] : 0.0f;
      for (int yy = 0; yy < oh; ++yy) {
        for (int xo = 0; xo < ow; ++xo) {
          float acc = bval;
          for (int ci = 0; ci < cin_g; ++ci) {
            const int cig = g * cin_g + ci;
            for (int dy = 0; dy < kh; ++dy) {
              const int iy = yy * stride - padding + dy;
              if (iy < 0 || iy >= h) continue;
              for (int dx = 0; dx < kw; ++dx) {
                const int ix = xo * stride - padding + dx;
                if (ix < 0 || ix >= w) continue;
                acc += xd[off4(b, cig, iy, ix, cin, h, w)] * wd[off4(co, ci, dy, dx, cin_g, kh, kw)];
              }
            }
          }
          y[off4(b, co, yy, xo, cout, oh, ow)] = acc;
        }
      }
    }
  }
  return out;
}

Tensor conv_transpose2d(const Tensor& x, const Tensor& weight, const Tensor& bias, int stride,
                        int padding, int output_padding, int groups) {
  check_4d(x, "conv_transpose2d input");
  check_4d(weight, "conv_transpose2d weight");
  const int n = x.dim(0), cin = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int w_cin = weight.dim(0), cout_g = weight.dim(1), kh = weight.dim(2), kw = weight.dim(3);
  if (w_cin != cin || groups < 1 || cin % groups != 0) {
    throw std::invalid_argument("conv_transpose2d: inconsistent channels/groups");
  }
  const int cin_g = cin / groups;
  const int cout = cout_g * groups;
  const int oh = (h - 1) * stride - 2 * padding + kh + output_padding;
  const int ow = (w - 1) * stride - 2 * padding + kw + output_padding;
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("conv_transpose2d: non-positive output");

  auto xi = x.impl();
  auto wi = weight.impl();
  auto bi = bias.defined() ? bias.impl() : nullptr;

  Tensor out = make_op_output(
      {n, cout, oh, ow}, {&x, &weight, &bias},
      [=](TensorImpl& self) {
        const bool need_x = xi->requires_grad;
        const bool need_w = wi->requires_grad;
        const bool need_b = bi && bi->requires_grad;
        if (need_x) xi->ensure_grad();
        if (need_w) wi->ensure_grad();
        if (need_b) bi->ensure_grad();
        if (need_b) {
          for (int b = 0; b < n; ++b) {
            for (int co = 0; co < cout; ++co) {
              double acc = 0.0;
              for (int yy = 0; yy < oh; ++yy) {
                for (int xo = 0; xo < ow; ++xo) {
                  acc += self.grad[off4(b, co, yy, xo, cout, oh, ow)];
                }
              }
              bi->grad[static_cast<std::size_t>(co)] += static_cast<float>(acc);
            }
          }
        }
        if (!need_x && !need_w) return;
        for (int b = 0; b < n; ++b) {
          for (int ci = 0; ci < cin; ++ci) {
            const int g = ci / cin_g;
            for (int iy = 0; iy < h; ++iy) {
              for (int ix = 0; ix < w; ++ix) {
                const std::size_t xoff = off4(b, ci, iy, ix, cin, h, w);
                const float xval = xi->data[xoff];
                float xgrad = 0.0f;
                for (int co = 0; co < cout_g; ++co) {
                  const int cog = g * cout_g + co;
                  for (int dy = 0; dy < kh; ++dy) {
                    const int oy = iy * stride - padding + dy;
                    if (oy < 0 || oy >= oh) continue;
                    for (int dx = 0; dx < kw; ++dx) {
                      const int ox = ix * stride - padding + dx;
                      if (ox < 0 || ox >= ow) continue;
                      const float gout = self.grad[off4(b, cog, oy, ox, cout, oh, ow)];
                      if (gout == 0.0f) continue;
                      const std::size_t woff = off4(ci, co, dy, dx, cout_g, kh, kw);
                      if (need_x) xgrad += gout * wi->data[woff];
                      if (need_w) wi->grad[woff] += gout * xval;
                    }
                  }
                }
                if (need_x) xi->grad[xoff] += xgrad;
              }
            }
          }
        }
      });

  auto& y = out.data();
  if (bias.defined()) {
    for (int b = 0; b < n; ++b) {
      for (int co = 0; co < cout; ++co) {
        const float bval = bias.data()[static_cast<std::size_t>(co)];
        for (int yy = 0; yy < oh; ++yy) {
          for (int xo = 0; xo < ow; ++xo) y[off4(b, co, yy, xo, cout, oh, ow)] = bval;
        }
      }
    }
  }
  const auto& xd = x.data();
  const auto& wd = weight.data();
  for (int b = 0; b < n; ++b) {
    for (int ci = 0; ci < cin; ++ci) {
      const int g = ci / cin_g;
      for (int iy = 0; iy < h; ++iy) {
        for (int ix = 0; ix < w; ++ix) {
          const float xval = xd[off4(b, ci, iy, ix, cin, h, w)];
          if (xval == 0.0f) continue;
          for (int co = 0; co < cout_g; ++co) {
            const int cog = g * cout_g + co;
            for (int dy = 0; dy < kh; ++dy) {
              const int oy = iy * stride - padding + dy;
              if (oy < 0 || oy >= oh) continue;
              for (int dx = 0; dx < kw; ++dx) {
                const int ox = ix * stride - padding + dx;
                if (ox < 0 || ox >= ow) continue;
                y[off4(b, cog, oy, ox, cout, oh, ow)] +=
                    xval * wd[off4(ci, co, dy, dx, cout_g, kh, kw)];
              }
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace laco::nn
