#include <stdexcept>

#include "nn/op_trace.hpp"
#include "nn/ops.hpp"

namespace laco::nn {
namespace {

void check_4d(const Tensor& t, const char* what) {
  if (!t.defined() || t.shape().size() != 4) {
    throw std::invalid_argument(std::string(what) + ": expected a 4-D NCHW tensor");
  }
}

std::size_t off4(int a, int b, int c, int d, int B, int C, int D) {
  return ((static_cast<std::size_t>(a) * B + b) * C + c) * D + d;
}

// Raw-pointer forward kernels shared by the eager path and the traced
// plan kernels (nn/op_trace.hpp) — one definition keeps plan replay
// bitwise-equal to eager execution.

struct Conv2dParams {
  int n, cin, h, w, cout, cin_g, kh, kw, oh, ow, cout_g, stride, padding;
};

void conv2d_forward(const Conv2dParams& p, const float* xd, const float* wd, const float* bd,
                    float* y) {
  for (int b = 0; b < p.n; ++b) {
    for (int co = 0; co < p.cout; ++co) {
      const int g = co / p.cout_g;
      const float bval = bd != nullptr ? bd[static_cast<std::size_t>(co)] : 0.0f;
      for (int yy = 0; yy < p.oh; ++yy) {
        for (int xo = 0; xo < p.ow; ++xo) {
          float acc = bval;
          for (int ci = 0; ci < p.cin_g; ++ci) {
            const int cig = g * p.cin_g + ci;
            for (int dy = 0; dy < p.kh; ++dy) {
              const int iy = yy * p.stride - p.padding + dy;
              if (iy < 0 || iy >= p.h) continue;
              for (int dx = 0; dx < p.kw; ++dx) {
                const int ix = xo * p.stride - p.padding + dx;
                if (ix < 0 || ix >= p.w) continue;
                acc += xd[off4(b, cig, iy, ix, p.cin, p.h, p.w)] *
                       wd[off4(co, ci, dy, dx, p.cin_g, p.kh, p.kw)];
              }
            }
          }
          y[off4(b, co, yy, xo, p.cout, p.oh, p.ow)] = acc;
        }
      }
    }
  }
}

struct ConvT2dParams {
  int n, cin, h, w, cout, cin_g, cout_g, kh, kw, oh, ow, stride, padding;
};

// Fills the output with the bias (or zero — plan arenas hand the
// kernel dirty memory) and then accumulates the scattered taps.
void conv_transpose2d_forward(const ConvT2dParams& p, const float* xd, const float* wd,
                              const float* bd, float* y) {
  for (int b = 0; b < p.n; ++b) {
    for (int co = 0; co < p.cout; ++co) {
      const float bval = bd != nullptr ? bd[static_cast<std::size_t>(co)] : 0.0f;
      for (int yy = 0; yy < p.oh; ++yy) {
        for (int xo = 0; xo < p.ow; ++xo) y[off4(b, co, yy, xo, p.cout, p.oh, p.ow)] = bval;
      }
    }
  }
  for (int b = 0; b < p.n; ++b) {
    for (int ci = 0; ci < p.cin; ++ci) {
      const int g = ci / p.cin_g;
      for (int iy = 0; iy < p.h; ++iy) {
        for (int ix = 0; ix < p.w; ++ix) {
          const float xval = xd[off4(b, ci, iy, ix, p.cin, p.h, p.w)];
          if (xval == 0.0f) continue;
          for (int co = 0; co < p.cout_g; ++co) {
            const int cog = g * p.cout_g + co;
            for (int dy = 0; dy < p.kh; ++dy) {
              const int oy = iy * p.stride - p.padding + dy;
              if (oy < 0 || oy >= p.oh) continue;
              for (int dx = 0; dx < p.kw; ++dx) {
                const int ox = ix * p.stride - p.padding + dx;
                if (ox < 0 || ox >= p.ow) continue;
                y[off4(b, cog, oy, ox, p.cout, p.oh, p.ow)] +=
                    xval * wd[off4(ci, co, dy, dx, p.cout_g, p.kh, p.kw)];
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias, int stride,
              int padding, int groups) {
  check_4d(x, "conv2d input");
  check_4d(weight, "conv2d weight");
  const int n = x.dim(0), cin = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int cout = weight.dim(0), cin_g = weight.dim(1), kh = weight.dim(2), kw = weight.dim(3);
  if (groups < 1 || cin % groups != 0 || cout % groups != 0 || cin / groups != cin_g) {
    throw std::invalid_argument("conv2d: inconsistent groups/channels");
  }
  const int oh = (h + 2 * padding - kh) / stride + 1;
  const int ow = (w + 2 * padding - kw) / stride + 1;
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("conv2d: non-positive output size");
  const int cout_g = cout / groups;

  auto xi = x.impl();
  auto wi = weight.impl();
  auto bi = bias.defined() ? bias.impl() : nullptr;

  Tensor out = make_op_output(
      {n, cout, oh, ow}, {&x, &weight, &bias},
      [=](TensorImpl& self) {
        const bool need_x = xi->requires_grad;
        const bool need_w = wi->requires_grad;
        const bool need_b = bi && bi->requires_grad;
        if (need_x) xi->ensure_grad();
        if (need_w) wi->ensure_grad();
        if (need_b) bi->ensure_grad();
        for (int b = 0; b < n; ++b) {
          for (int co = 0; co < cout; ++co) {
            const int g = co / cout_g;
            for (int y = 0; y < oh; ++y) {
              for (int xo = 0; xo < ow; ++xo) {
                const float gout = self.grad[off4(b, co, y, xo, cout, oh, ow)];
                if (gout == 0.0f) continue;
                if (need_b) bi->grad[static_cast<std::size_t>(co)] += gout;
                for (int ci = 0; ci < cin_g; ++ci) {
                  const int cig = g * cin_g + ci;
                  for (int dy = 0; dy < kh; ++dy) {
                    const int iy = y * stride - padding + dy;
                    if (iy < 0 || iy >= h) continue;
                    for (int dx = 0; dx < kw; ++dx) {
                      const int ix = xo * stride - padding + dx;
                      if (ix < 0 || ix >= w) continue;
                      const std::size_t xoff = off4(b, cig, iy, ix, cin, h, w);
                      const std::size_t woff = off4(co, ci, dy, dx, cin_g, kh, kw);
                      if (need_x) xi->grad[xoff] += gout * wi->data[woff];
                      if (need_w) wi->grad[woff] += gout * xi->data[xoff];
                    }
                  }
                }
              }
            }
          }
        }
      });

  const Conv2dParams params{n, cin, h, w, cout, cin_g, kh, kw, oh, ow, cout_g, stride, padding};
  conv2d_forward(params, x.data().data(), weight.data().data(),
                 bias.defined() ? bias.data().data() : nullptr, out.data().data());
  trace_op("conv2d", {&x, &weight, &bias}, out, [params]() -> OpKernel {
    return [params](const float* const* in, float* o) {
      conv2d_forward(params, in[0], in[1], in[2], o);
    };
  });
  return out;
}

Tensor conv_transpose2d(const Tensor& x, const Tensor& weight, const Tensor& bias, int stride,
                        int padding, int output_padding, int groups) {
  check_4d(x, "conv_transpose2d input");
  check_4d(weight, "conv_transpose2d weight");
  const int n = x.dim(0), cin = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int w_cin = weight.dim(0), cout_g = weight.dim(1), kh = weight.dim(2), kw = weight.dim(3);
  if (w_cin != cin || groups < 1 || cin % groups != 0) {
    throw std::invalid_argument("conv_transpose2d: inconsistent channels/groups");
  }
  const int cin_g = cin / groups;
  const int cout = cout_g * groups;
  const int oh = (h - 1) * stride - 2 * padding + kh + output_padding;
  const int ow = (w - 1) * stride - 2 * padding + kw + output_padding;
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("conv_transpose2d: non-positive output");

  auto xi = x.impl();
  auto wi = weight.impl();
  auto bi = bias.defined() ? bias.impl() : nullptr;

  Tensor out = make_op_output(
      {n, cout, oh, ow}, {&x, &weight, &bias},
      [=](TensorImpl& self) {
        const bool need_x = xi->requires_grad;
        const bool need_w = wi->requires_grad;
        const bool need_b = bi && bi->requires_grad;
        if (need_x) xi->ensure_grad();
        if (need_w) wi->ensure_grad();
        if (need_b) bi->ensure_grad();
        if (need_b) {
          for (int b = 0; b < n; ++b) {
            for (int co = 0; co < cout; ++co) {
              double acc = 0.0;
              for (int yy = 0; yy < oh; ++yy) {
                for (int xo = 0; xo < ow; ++xo) {
                  acc += self.grad[off4(b, co, yy, xo, cout, oh, ow)];
                }
              }
              bi->grad[static_cast<std::size_t>(co)] += static_cast<float>(acc);
            }
          }
        }
        if (!need_x && !need_w) return;
        for (int b = 0; b < n; ++b) {
          for (int ci = 0; ci < cin; ++ci) {
            const int g = ci / cin_g;
            for (int iy = 0; iy < h; ++iy) {
              for (int ix = 0; ix < w; ++ix) {
                const std::size_t xoff = off4(b, ci, iy, ix, cin, h, w);
                const float xval = xi->data[xoff];
                float xgrad = 0.0f;
                for (int co = 0; co < cout_g; ++co) {
                  const int cog = g * cout_g + co;
                  for (int dy = 0; dy < kh; ++dy) {
                    const int oy = iy * stride - padding + dy;
                    if (oy < 0 || oy >= oh) continue;
                    for (int dx = 0; dx < kw; ++dx) {
                      const int ox = ix * stride - padding + dx;
                      if (ox < 0 || ox >= ow) continue;
                      const float gout = self.grad[off4(b, cog, oy, ox, cout, oh, ow)];
                      if (gout == 0.0f) continue;
                      const std::size_t woff = off4(ci, co, dy, dx, cout_g, kh, kw);
                      if (need_x) xgrad += gout * wi->data[woff];
                      if (need_w) wi->grad[woff] += gout * xval;
                    }
                  }
                }
                if (need_x) xi->grad[xoff] += xgrad;
              }
            }
          }
        }
      });

  const ConvT2dParams params{n, cin, h, w, cout, cin_g, cout_g, kh, kw, oh, ow, stride, padding};
  conv_transpose2d_forward(params, x.data().data(), weight.data().data(),
                           bias.defined() ? bias.data().data() : nullptr, out.data().data());
  trace_op("conv_transpose2d", {&x, &weight, &bias}, out, [params]() -> OpKernel {
    return [params](const float* const* in, float* o) {
      conv_transpose2d_forward(params, in[0], in[1], in[2], o);
    };
  });
  return out;
}

}  // namespace laco::nn
