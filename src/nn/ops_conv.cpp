// Tiled conv2d / conv_transpose2d kernels (docs/KERNELS.md).
//
// Forwards are im2col + register-blocked GEMM over the padding-free
// interior plus a tap-checked border path, parallelized over disjoint
// output tiles via nn::parallel_tiles. Backwards are gather-style
// passes parallelized over gradient-owner slices (one task per output
// channel for dW/db, one per input channel image for dX).
//
// Bitwise contract: every kernel reproduces the naive nn::reference
// accumulation order *per output element* — bias first, then taps in
// the reference loop order, with the same zero-skip conditions — so
// outputs and gradients are bitwise-identical to nn::reference and
// across ThreadPool sizes (pinned by tests/test_nn_kernels.cpp and the
// golden e2e test). Change an accumulation order here and the golden
// file changes; don't.
#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "nn/kernel_pool.hpp"
#include "nn/op_trace.hpp"
#include "nn/ops.hpp"

namespace laco::nn {
namespace {

void check_4d(const Tensor& t, const char* what) {
  if (!t.defined() || t.shape().size() != 4) {
    throw std::invalid_argument(std::string(what) + ": expected a 4-D NCHW tensor, got " +
                                (t.defined() ? shape_str(t.shape()) : "an undefined tensor"));
  }
}

std::size_t off4(int a, int b, int c, int d, int B, int C, int D) {
  return ((static_cast<std::size_t>(a) * B + b) * C + c) * D + d;
}

int div_ceil(int a, int b) { return a >= 0 ? (a + b - 1) / b : -((-a) / b); }

// 8-lane float vector for the GEMM micro-kernel. Element-wise + and *
// on these round exactly like the matching scalar ops (no fusion, no
// reassociation), so the bitwise contract is unaffected; it only picks
// better instructions than the auto-vectorizer does.
#if defined(__GNUC__) || defined(__clang__)
#define LACO_HAVE_VEC8 1
typedef float Vec8 __attribute__((vector_size(32)));
typedef int Vec8i __attribute__((vector_size(32)));
#else
#define LACO_HAVE_VEC8 0
#endif


/// Per-worker im2col scratch, grown on demand and reused across tiles.
thread_local std::vector<float> tl_col;

/// Splits `rows` into blocks: small enough that a K×ow im2col panel
/// stays cache-resident, yet numerous enough (together with the
/// batch×group grid) to feed every pool thread. Purely a performance
/// choice — outputs are bitwise-identical for any tiling.
int pick_row_block(int rows, std::size_t floats_per_row, long long base_tiles) {
  const std::size_t kColTargetFloats = 64 * 1024;  // ~256 KiB panel
  std::size_t block = kColTargetFloats / std::max<std::size_t>(1, floats_per_row);
  block = std::min<std::size_t>(std::max<std::size_t>(block, 1), static_cast<std::size_t>(rows));
  const long long want_tiles = 2LL * kernel_threads();
  if (base_tiles > 0 && base_tiles * ((rows + static_cast<long long>(block) - 1) /
                                     static_cast<long long>(block)) < want_tiles) {
    const long long per_base = div_ceil(static_cast<int>(want_tiles), static_cast<int>(base_tiles));
    block = std::max<std::size_t>(1, static_cast<std::size_t>(div_ceil(rows, static_cast<int>(per_base))));
  }
  return static_cast<int>(block);
}

// ------------------------------------------------------------- conv2d

// Raw-pointer kernels shared by the eager path and the traced plan
// kernels (nn/op_trace.hpp) — one definition keeps plan replay
// bitwise-equal to eager execution.

struct Conv2dParams {
  int n, cin, h, w, cout, cin_g, kh, kw, oh, ow, cout_g, groups, stride, padding;
};

/// One tile: output rows [y0, y1) of batch image `b`, group `g`, all of
/// the group's output channels. Interior pixels (no padding taps) go
/// through an im2col panel + 4-wide-channel GEMM; border pixels use the
/// reference tap-checked gather. Both accumulate taps in (ci, ky, kx)
/// ascending order starting from the bias — the reference order.
void conv2d_tile(const Conv2dParams& p, const float* xd, const float* wd, const float* bd,
                 float* y, int b, int g, int y0, int y1, int ry0, int ry1, int cx0, int cx1) {
  const int K = p.cin_g * p.kh * p.kw;
  const int iy0 = std::max(y0, ry0), iy1 = std::min(y1, ry1);
  const int icols = std::max(0, cx1 - cx0);
  // GEMM-covered columns: 8-pixel blocks of the interior (the last
  // block may be partial); the border path handles everything else
  // with the identical tap chain.
  constexpr int kJB = 8;
  const int nblk = div_ceil(icols, kJB);

  if (nblk > 0 && iy1 > iy0) {
    // Per-block im2col micro-panel: panel[k][0..8) for one output row
    // and 8 consecutive interior pixels. K×8 floats (~a few KiB) stays
    // L1-resident while every output-channel block streams over it.
    if (tl_col.size() < static_cast<std::size_t>(K) * kJB) {
      tl_col.resize(static_cast<std::size_t>(K) * kJB);
    }
    float* panel = tl_col.data();
    for (int yy = iy0; yy < iy1; ++yy) {
      for (int jb = 0; jb < nblk; ++jb) {
        const int cxb = cx0 + jb * kJB;
        const int bw = std::min(kJB, cx1 - cxb);  // last block may be partial
        // Pack k = (ci, dy, dx) in reference tap order.
        float* pp = panel;
        for (int ci = 0; ci < p.cin_g; ++ci) {
          const int cig = g * p.cin_g + ci;
          for (int dy = 0; dy < p.kh; ++dy) {
            const int iy = yy * p.stride - p.padding + dy;
            const float* xrow = xd + off4(b, cig, iy, 0, p.cin, p.h, p.w);
            const int xbase = cxb * p.stride - p.padding;
            // Lanes past bw are packed as zero: the micro-kernel
            // computes them anyway and the store drops them.
            if (p.stride == 1) {
              for (int dx = 0; dx < p.kw; ++dx, pp += kJB) {
                const float* __restrict src = xrow + xbase + dx;
                for (int j = 0; j < bw; ++j) pp[j] = src[j];
                for (int j = bw; j < kJB; ++j) pp[j] = 0.0f;
              }
            } else {
              for (int dx = 0; dx < p.kw; ++dx, pp += kJB) {
                const float* __restrict src = xrow + xbase + dx;
                for (int j = 0; j < bw; ++j) pp[j] = src[j * p.stride];
                for (int j = bw; j < kJB; ++j) pp[j] = 0.0f;
              }
            }
          }
        }
        // y[co][pix] = bias[co] + Σ_k w[co][k] · panel[k][pix], four
        // output channels per pass. Accumulators live in registers for
        // the whole k loop — each output element still sees bias first,
        // then k ascending, so blocking never reorders its addition
        // chain; lanes are independent elements, so element-wise SIMD
        // never touches any chain (and rounds exactly like scalar:
        // -ffp-contract=off in src/CMakeLists.txt forbids FMA fusion).
        for (int cb = 0; cb + 4 <= p.cout_g; cb += 4) {
          const float* __restrict w0r = wd + static_cast<std::size_t>(g * p.cout_g + cb) * K;
          const float* __restrict w1r = w0r + K;
          const float* __restrict w2r = w1r + K;
          const float* __restrict w3r = w2r + K;
          const float b0 = bd != nullptr ? bd[static_cast<std::size_t>(g * p.cout_g + cb)] : 0.0f;
          const float b1 = bd != nullptr ? bd[static_cast<std::size_t>(g * p.cout_g + cb + 1)] : 0.0f;
          const float b2 = bd != nullptr ? bd[static_cast<std::size_t>(g * p.cout_g + cb + 2)] : 0.0f;
          const float b3 = bd != nullptr ? bd[static_cast<std::size_t>(g * p.cout_g + cb + 3)] : 0.0f;
          float* yout = y + off4(b, g * p.cout_g + cb, yy, cxb, p.cout, p.oh, p.ow);
          const std::size_t yplane = static_cast<std::size_t>(p.oh) * p.ow;
#if LACO_HAVE_VEC8
          // Explicit 8-lane vectors: GCC's loop auto-vectorizer turns
          // the scalar form below into a shuffle-heavy outer-loop
          // vectorization that runs ~14x slower than this direct map
          // to one mul + one add per weight row.
          Vec8 a0, a1, a2, a3;
          for (int j = 0; j < kJB; ++j) { a0[j] = b0; a1[j] = b1; a2[j] = b2; a3[j] = b3; }
          const float* __restrict pk = panel;
          for (int k = 0; k < K; ++k, pk += kJB) {
            Vec8 c;
            __builtin_memcpy(&c, pk, sizeof c);
            a0 += w0r[k] * c;
            a1 += w1r[k] * c;
            a2 += w2r[k] * c;
            a3 += w3r[k] * c;
          }
          if (bw == kJB) {
            __builtin_memcpy(yout, &a0, sizeof a0);
            __builtin_memcpy(yout + yplane, &a1, sizeof a1);
            __builtin_memcpy(yout + 2 * yplane, &a2, sizeof a2);
            __builtin_memcpy(yout + 3 * yplane, &a3, sizeof a3);
          } else {
            for (int j = 0; j < bw; ++j) yout[j] = a0[j];
            for (int j = 0; j < bw; ++j) yout[yplane + j] = a1[j];
            for (int j = 0; j < bw; ++j) yout[2 * yplane + j] = a2[j];
            for (int j = 0; j < bw; ++j) yout[3 * yplane + j] = a3[j];
          }
#else
          float a0[kJB], a1[kJB], a2[kJB], a3[kJB];
          for (int j = 0; j < kJB; ++j) { a0[j] = b0; a1[j] = b1; a2[j] = b2; a3[j] = b3; }
          const float* __restrict pk = panel;
          for (int k = 0; k < K; ++k, pk += kJB) {
            const float w0 = w0r[k], w1 = w1r[k], w2 = w2r[k], w3 = w3r[k];
            for (int j = 0; j < kJB; ++j) {
              const float c = pk[j];
              a0[j] += w0 * c;
              a1[j] += w1 * c;
              a2[j] += w2 * c;
              a3[j] += w3 * c;
            }
          }
          for (int j = 0; j < bw; ++j) yout[j] = a0[j];
          for (int j = 0; j < bw; ++j) yout[yplane + j] = a1[j];
          for (int j = 0; j < bw; ++j) yout[2 * yplane + j] = a2[j];
          for (int j = 0; j < bw; ++j) yout[3 * yplane + j] = a3[j];
#endif
        }
        // Output-channel remainder: one register accumulator per
        // element, same bias-then-k-ascending chain over the panel.
        for (int cr = p.cout_g - p.cout_g % 4; cr < p.cout_g; ++cr) {
          const int co = g * p.cout_g + cr;
          const float* wr = wd + static_cast<std::size_t>(co) * K;
          float* yout = y + off4(b, co, yy, cxb, p.cout, p.oh, p.ow);
          for (int j = 0; j < bw; ++j) {
            float a = bd != nullptr ? bd[static_cast<std::size_t>(co)] : 0.0f;
            const float* pk = panel + j;
            for (int k = 0; k < K; ++k, pk += kJB) a += wr[k] * *pk;
            yout[j] = a;
          }
        }
      }
    }
  }

  // Border pixels: the taps passing the reference bounds checks form
  // contiguous [dy0, dy1) × [dx0, dx1) ranges, computed up front —
  // the accumulation visits exactly the reference's valid taps in the
  // reference order, just without per-tap index math.
  for (int yy = y0; yy < y1; ++yy) {
    const bool row_interior = yy >= iy0 && yy < iy1;
    const int bx0 = row_interior ? cx0 : 0;
    const int bx1 = row_interior ? cx1 : 0;  // [bx0, bx1) already done above
    const int ybase = yy * p.stride - p.padding;
    const int dy0 = std::max(0, -ybase);
    const int dy1 = std::min(p.kh, p.h - ybase);
    for (int xo = 0; xo < p.ow; ++xo) {
      if (xo >= bx0 && xo < bx1) continue;
      const int xbase = xo * p.stride - p.padding;
      const int dx0 = std::max(0, -xbase);
      const int dx1 = std::min(p.kw, p.w - xbase);
      float* yrow = y + off4(b, g * p.cout_g, yy, xo, p.cout, p.oh, p.ow);
      const std::size_t yplane = static_cast<std::size_t>(p.oh) * p.ow;
      for (int cr = 0; cr < p.cout_g; ++cr) {
        const int co = g * p.cout_g + cr;
        float acc = bd != nullptr ? bd[static_cast<std::size_t>(co)] : 0.0f;
        const float* wrow = wd + static_cast<std::size_t>(co) * K;
        for (int ci = 0; ci < p.cin_g; ++ci) {
          const float* xpl = xd + off4(b, g * p.cin_g + ci, 0, 0, p.cin, p.h, p.w);
          for (int dy = dy0; dy < dy1; ++dy) {
            const float* __restrict xrow = xpl + static_cast<std::size_t>(ybase + dy) * p.w + xbase;
            const float* __restrict wr = wrow + (ci * p.kh + dy) * p.kw;
            for (int dx = dx0; dx < dx1; ++dx) acc += xrow[dx] * wr[dx];
          }
        }
        yrow[static_cast<std::size_t>(cr) * yplane] = acc;
      }
    }
  }
}

void conv2d_forward(const Conv2dParams& p, const float* xd, const float* wd, const float* bd,
                    float* y) {
  static const OpStats stats = make_op_stats("conv2d");
  OpTimer timer(stats);
  // Interior rectangle: output rows/cols whose every kernel tap is in
  // bounds (all of the output when padding == 0).
  const int ry0 = std::min(p.oh, (p.padding + p.stride - 1) / p.stride);
  const int ry1 = std::max(
      ry0, std::min(p.oh, p.h - p.kh + p.padding >= 0
                              ? (p.h - p.kh + p.padding) / p.stride + 1
                              : 0));
  const int cx0 = std::min(p.ow, (p.padding + p.stride - 1) / p.stride);
  const int cx1 = std::max(
      cx0, std::min(p.ow, p.w - p.kw + p.padding >= 0
                              ? (p.w - p.kw + p.padding) / p.stride + 1
                              : 0));
  const std::size_t K = static_cast<std::size_t>(p.cin_g) * p.kh * p.kw;
  const int row_block =
      pick_row_block(p.oh, K * static_cast<std::size_t>(p.ow),
                     static_cast<long long>(p.n) * p.groups);
  const int nrb = div_ceil(p.oh, row_block);
  const std::size_t tiles = static_cast<std::size_t>(p.n) * p.groups * nrb;
  // LACO_DETERMINISTIC: each tile owns a disjoint output slab; per-element
  // accumulation order is fixed (bias, then taps ascending) for any tiling.
  parallel_tiles(tiles, [&](std::size_t t) {
    const int rb = static_cast<int>(t % nrb);
    const int g = static_cast<int>((t / nrb) % p.groups);
    const int b = static_cast<int>(t / (static_cast<std::size_t>(nrb) * p.groups));
    const int y0 = rb * row_block;
    const int y1 = std::min(p.oh, y0 + row_block);
    conv2d_tile(p, xd, wd, bd, y, b, g, y0, y1, ry0, ry1, cx0, cx1);
  });
}

/// dW/db pass: one task per output channel (it owns w.grad[co, ·] and
/// bias.grad[co]); contributions accumulate in (b, y, xo) ascending
/// order with the reference's gout == 0 skip.
void conv2d_backward_wb(const Conv2dParams& p, const float* gout_d, const float* xd, float* wg,
                        float* bg) {
  // LACO_DETERMINISTIC: task-per-co ownership; (b, y, xo) ascending chain.
  parallel_tiles(static_cast<std::size_t>(p.cout), [&](std::size_t co_t) {
    const int co = static_cast<int>(co_t);
    const int g = co / p.cout_g;
    const std::size_t K = static_cast<std::size_t>(p.cin_g) * p.kh * p.kw;
    float* wrow = wg != nullptr ? wg + static_cast<std::size_t>(co) * K : nullptr;
    for (int b = 0; b < p.n; ++b) {
      for (int y = 0; y < p.oh; ++y) {
        // In-bounds tap ranges, hoisted: iy = y·stride − padding + dy ∈
        // [0, h), and per column ix = xo·stride − padding + dx ∈ [0, w).
        const int dy0 = std::max(0, p.padding - y * p.stride);
        const int dy1 = std::min(p.kh, p.h + p.padding - y * p.stride);
        for (int xo = 0; xo < p.ow; ++xo) {
          const float gout = gout_d[off4(b, co, y, xo, p.cout, p.oh, p.ow)];
          if (gout == 0.0f) continue;
          if (bg != nullptr) bg[static_cast<std::size_t>(co)] += gout;
          if (wrow == nullptr) continue;
          const int dx0 = std::max(0, p.padding - xo * p.stride);
          const int dx1 = std::min(p.kw, p.w + p.padding - xo * p.stride);
          const int xbase = xo * p.stride - p.padding;
          for (int ci = 0; ci < p.cin_g; ++ci) {
            const int cig = g * p.cin_g + ci;
            for (int dy = dy0; dy < dy1; ++dy) {
              const int iy = y * p.stride - p.padding + dy;
              const float* __restrict xrow =
                  xd + off4(b, cig, iy, 0, p.cin, p.h, p.w) + xbase;
              float* __restrict wtap = wrow + (ci * p.kh + dy) * p.kw;
              for (int dx = dx0; dx < dx1; ++dx) wtap[dx] += gout * xrow[dx];
            }
          }
        }
      }
    }
  });
}

/// dX pass: one task per (batch, input channel) image. The gather
/// iterates (co asc, dy desc, dx desc), which is exactly the
/// reference's (co asc, y asc, xo asc) contribution order.
void conv2d_backward_x(const Conv2dParams& p, const float* gout_d, const float* wd, float* xg) {
  // LACO_DETERMINISTIC: task-per-(b, ci) ownership; (co, y, xo) ascending chain.
  parallel_tiles(static_cast<std::size_t>(p.n) * p.cin, [&](std::size_t t) {
    const int cig = static_cast<int>(t % p.cin);
    const int b = static_cast<int>(t / p.cin);
    const int g = cig / p.cin_g;
    const int ci = cig % p.cin_g;
    const std::size_t K = static_cast<std::size_t>(p.cin_g) * p.kh * p.kw;
    for (int iy = 0; iy < p.h; ++iy) {
      // Output rows that reach input row iy: y = (iy + padding − dy)/stride
      // for some dy ∈ [0, kh) with exact divisibility — y ascending is
      // exactly dy descending, the reference contribution order.
      const int y_lo = std::max(0, div_ceil(iy + p.padding - p.kh + 1, p.stride));
      const int y_hi = std::min(p.oh, (iy + p.padding) / p.stride + 1);
      for (int ix = 0; ix < p.w; ++ix) {
        const int xo_lo = std::max(0, div_ceil(ix + p.padding - p.kw + 1, p.stride));
        const int xo_hi = std::min(p.ow, (ix + p.padding) / p.stride + 1);
        float acc = xg[off4(b, cig, iy, ix, p.cin, p.h, p.w)];
        for (int cr = 0; cr < p.cout_g; ++cr) {
          const int co = g * p.cout_g + cr;
          const float* wrow = wd + static_cast<std::size_t>(co) * K +
                              static_cast<std::size_t>(ci) * p.kh * p.kw;
          for (int y = y_lo; y < y_hi; ++y) {
            const int dy = iy + p.padding - y * p.stride;
            const float* __restrict grow = gout_d + off4(b, co, y, 0, p.cout, p.oh, p.ow);
            const float* wk = wrow + dy * p.kw + (ix + p.padding);
            for (int xo = xo_lo; xo < xo_hi; ++xo) {
              const float gout = grow[xo];
              if (gout == 0.0f) continue;
              acc += gout * wk[-xo * p.stride];  // dx = ix + padding − xo·stride
            }
          }
        }
        xg[off4(b, cig, iy, ix, p.cin, p.h, p.w)] = acc;
      }
    }
  });
}

// ---------------------------------------------------- conv_transpose2d

struct ConvT2dParams {
  int n, cin, h, w, cout, cin_g, cout_g, groups, kh, kw, oh, ow, stride, padding;
};

/// One tile: output rows [y0, y1) of (batch `b`, output channel `cog`).
/// Output columns partition into classes r = ox mod stride: elements of
/// one class share their kernel-tap set (dx ≡ (r + padding) mod stride)
/// and are fed by *contiguous* input columns per tap. Each 8-element
/// class block keeps its accumulators in registers across every
/// (ci, iy, dx) tap — gathering, never scattering — and iterates
/// (ci asc, dy desc, dx desc), i.e. the reference's (ci, iy, ix)
/// ascending order per element. The reference's x == 0 skip is
/// reproduced exactly with a per-lane bit-select (skipped lanes keep
/// their accumulator bits verbatim).
void conv_transpose2d_tile(const ConvT2dParams& p, const float* xd, const float* wd,
                           const float* bd, float* y, int b, int cog, int y0, int y1) {
  const int g = cog / p.cout_g;
  const int co_rel = cog % p.cout_g;
  const float bval = bd != nullptr ? bd[static_cast<std::size_t>(cog)] : 0.0f;
  const int s = p.stride;
  const int classes = std::min(s, p.ow);
  const int q = p.ow / s, rem = p.ow % s;  // class r has q + (r < rem) columns
  const float* xg0 = xd + off4(b, g * p.cin_g, 0, 0, p.cin, p.h, p.w);
  const std::size_t xplane = static_cast<std::size_t>(p.h) * p.w;
  const std::size_t wchan = static_cast<std::size_t>(p.kh) * p.kw;
  for (int oy = y0; oy < y1; ++oy) {
    float* yrow = y + off4(b, cog, oy, 0, p.cout, p.oh, p.ow);
    for (int r = 0; r < classes; ++r) {
      const int len = q + (r < rem ? 1 : 0);
      const int dmod = (r + p.padding) % s;
      // Largest tap dx < kw in this class (taps step by -s), or -1.
      const int dx_start = dmod < p.kw ? dmod + ((p.kw - 1 - dmod) / s) * s : -1;
      // 32 class columns per pass: four independent 8-lane accumulator
      // blocks hide the add/select latency of a single chain.
      for (int m0 = 0; m0 < len; m0 += 32) {
        const int mb = std::min(32, len - m0);
        const int nsub = div_ceil(mb, 8);
#if LACO_HAVE_VEC8
        const Vec8 zero = {};
        Vec8 acc[4];
        for (int t = 0; t < 4; ++t)
          for (int j = 0; j < 8; ++j) acc[t][j] = bval;
#else
        float acc[4][8];
        for (int t = 0; t < 4; ++t)
          for (int j = 0; j < 8; ++j) acc[t][j] = bval;
#endif
        for (int ci = 0; ci < p.cin_g; ++ci) {
          const float* xchan = xg0 + static_cast<std::size_t>(ci) * xplane;
          const float* wbase =
              wd + (static_cast<std::size_t>(g * p.cin_g + ci) * p.cout_g + co_rel) * wchan;
          for (int dy = p.kh - 1; dy >= 0; --dy) {
            const int ty = oy + p.padding - dy;
            if (ty < 0 || ty % s != 0) continue;
            const int iy = ty / s;
            if (iy >= p.h) continue;
            const float* xrow = xchan + static_cast<std::size_t>(iy) * p.w;
            const float* wrow = wbase + static_cast<std::size_t>(dy) * p.kw;
            for (int dx = dx_start; dx >= 0; dx -= s) {
              // Lane j reads input column ix0 + j; the numerator is a
              // multiple of s by class construction, so the division
              // is exact even when negative.
              const int ix0 = (r + p.padding - dx) / s + m0;
              const float wk = wrow[dx];
              for (int t = 0; t < nsub; ++t) {
                const int ixt = ix0 + 8 * t;
                const int lanes = std::min(8, mb - 8 * t);
#if LACO_HAVE_VEC8
                if (lanes == 8 && ixt >= 0 && ixt + 8 <= p.w) {
                  Vec8 xv;
                  __builtin_memcpy(&xv, xrow + ixt, sizeof xv);
                  const Vec8 sum = acc[t] + wk * xv;
                  const Vec8i skip = (xv == zero);
                  acc[t] = (Vec8)(((Vec8i)acc[t] & skip) | ((Vec8i)sum & ~skip));
                  continue;
                }
#endif
                const int j_lo = std::max(0, -ixt);
                const int j_hi = std::min(lanes, p.w - ixt);
                for (int j = j_lo; j < j_hi; ++j) {
                  const float xv = xrow[ixt + j];
                  if (xv != 0.0f) acc[t][j] += wk * xv;
                }
              }
            }
          }
        }
        for (int j = 0; j < mb; ++j) {
          yrow[r + static_cast<std::size_t>(m0 + j) * s] = acc[j / 8][j % 8];
        }
      }
    }
  }
}

void conv_transpose2d_forward(const ConvT2dParams& p, const float* xd, const float* wd,
                              const float* bd, float* y) {
  static const OpStats stats = make_op_stats("conv_transpose2d");
  OpTimer timer(stats);
  const int row_block = pick_row_block(p.oh, static_cast<std::size_t>(p.ow) * p.cin_g,
                                       static_cast<long long>(p.n) * p.cout);
  const int nrb = div_ceil(p.oh, row_block);
  const std::size_t tiles = static_cast<std::size_t>(p.n) * p.cout * nrb;
  // LACO_DETERMINISTIC: each tile owns whole output rows of one channel;
  // contributions accumulate in the reference (ci, iy, ix) order.
  parallel_tiles(tiles, [&](std::size_t t) {
    const int rb = static_cast<int>(t % nrb);
    const int cog = static_cast<int>((t / nrb) % p.cout);
    const int b = static_cast<int>(t / (static_cast<std::size_t>(nrb) * p.cout));
    const int y0 = rb * row_block;
    const int y1 = std::min(p.oh, y0 + row_block);
    conv_transpose2d_tile(p, xd, wd, bd, y, b, cog, y0, y1);
  });
}

void conv_transpose2d_backward_b(const ConvT2dParams& p, const float* gout_d, float* bg) {
  // LACO_DETERMINISTIC: task-per-co; per-image double sums added in b order.
  parallel_tiles(static_cast<std::size_t>(p.cout), [&](std::size_t co_t) {
    const int co = static_cast<int>(co_t);
    for (int b = 0; b < p.n; ++b) {
      double acc = 0.0;
      for (int yy = 0; yy < p.oh; ++yy) {
        for (int xo = 0; xo < p.ow; ++xo) {
          acc += gout_d[off4(b, co, yy, xo, p.cout, p.oh, p.ow)];
        }
      }
      bg[static_cast<std::size_t>(co)] += static_cast<float>(acc);
    }
  });
}

/// dX/dW pass: one task per input channel (it owns x.grad[:, ci, ·] and
/// w.grad[ci, ·]); the loop body is the reference backward body with
/// the batch loop moved inside the channel loop, preserving every
/// per-target (b, iy, ix) ascending chain.
void conv_transpose2d_backward_xw(const ConvT2dParams& p, const float* gout_d, const float* xd,
                                  const float* wd, float* xg, float* wg) {
  // LACO_DETERMINISTIC: task-per-ci ownership; (b, iy, ix) ascending chains.
  parallel_tiles(static_cast<std::size_t>(p.cin), [&](std::size_t ci_t) {
    const int ci = static_cast<int>(ci_t);
    const int g = ci / p.cin_g;
    for (int b = 0; b < p.n; ++b) {
      for (int iy = 0; iy < p.h; ++iy) {
        for (int ix = 0; ix < p.w; ++ix) {
          const std::size_t xoff = off4(b, ci, iy, ix, p.cin, p.h, p.w);
          const float xval = xd[xoff];
          float xgrad = 0.0f;
          for (int co = 0; co < p.cout_g; ++co) {
            const int cog = g * p.cout_g + co;
            for (int dy = 0; dy < p.kh; ++dy) {
              const int oy = iy * p.stride - p.padding + dy;
              if (oy < 0 || oy >= p.oh) continue;
              for (int dx = 0; dx < p.kw; ++dx) {
                const int ox = ix * p.stride - p.padding + dx;
                if (ox < 0 || ox >= p.ow) continue;
                const float gout = gout_d[off4(b, cog, oy, ox, p.cout, p.oh, p.ow)];
                if (gout == 0.0f) continue;
                const std::size_t woff = off4(ci, co, dy, dx, p.cout_g, p.kh, p.kw);
                if (xg != nullptr) xgrad += gout * wd[woff];
                if (wg != nullptr) wg[woff] += gout * xval;
              }
            }
          }
          if (xg != nullptr) xg[xoff] += xgrad;
        }
      }
    }
  });
}

}  // namespace

Tensor conv2d(const Tensor& x, const Tensor& weight, const Tensor& bias, int stride,
              int padding, int groups) {
  check_4d(x, "conv2d input");
  check_4d(weight, "conv2d weight");
  const int n = x.dim(0), cin = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int cout = weight.dim(0), cin_g = weight.dim(1), kh = weight.dim(2), kw = weight.dim(3);
  if (groups < 1 || cin % groups != 0 || cout % groups != 0 || cin / groups != cin_g) {
    throw std::invalid_argument("conv2d: inconsistent groups/channels (input " +
                                shape_str(x.shape()) + ", weight " + shape_str(weight.shape()) +
                                ", groups " + std::to_string(groups) + ")");
  }
  const int oh = (h + 2 * padding - kh) / stride + 1;
  const int ow = (w + 2 * padding - kw) / stride + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument(
        "conv2d: non-positive output size " + std::to_string(oh) + "x" + std::to_string(ow) +
        " (input " + shape_str(x.shape()) + ", weight " + shape_str(weight.shape()) +
        ", stride " + std::to_string(stride) + ", padding " + std::to_string(padding) + ")");
  }
  const int cout_g = cout / groups;
  const Conv2dParams params{n,  cin, h,  w,      cout,   cin_g, kh,
                            kw, oh,  ow, cout_g, groups, stride, padding};

  auto xi = x.impl();
  auto wi = weight.impl();
  auto bi = bias.defined() ? bias.impl() : nullptr;

  Tensor out = make_op_output(
      {n, cout, oh, ow}, {&x, &weight, &bias},
      [=](TensorImpl& self) {
        static const OpStats bstats = make_op_stats("conv2d_bwd");
        OpTimer timer(bstats);
        const bool need_x = xi->requires_grad;
        const bool need_w = wi->requires_grad;
        const bool need_b = bi && bi->requires_grad;
        if (need_x) xi->ensure_grad();
        if (need_w) wi->ensure_grad();
        if (need_b) bi->ensure_grad();
        if (need_w || need_b) {
          conv2d_backward_wb(params, self.grad.data(), xi->data.data(),
                             need_w ? wi->grad.data() : nullptr,
                             need_b ? bi->grad.data() : nullptr);
        }
        if (need_x) conv2d_backward_x(params, self.grad.data(), wi->data.data(), xi->grad.data());
      });

  conv2d_forward(params, x.data().data(), weight.data().data(),
                 bias.defined() ? bias.data().data() : nullptr, out.data().data());
  trace_op("conv2d", {&x, &weight, &bias}, out, [params]() -> OpKernel {
    return [params](const float* const* in, float* o) {
      conv2d_forward(params, in[0], in[1], in[2], o);
    };
  });
  return out;
}

Tensor conv_transpose2d(const Tensor& x, const Tensor& weight, const Tensor& bias, int stride,
                        int padding, int output_padding, int groups) {
  check_4d(x, "conv_transpose2d input");
  check_4d(weight, "conv_transpose2d weight");
  const int n = x.dim(0), cin = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int w_cin = weight.dim(0), cout_g = weight.dim(1), kh = weight.dim(2), kw = weight.dim(3);
  if (w_cin != cin || groups < 1 || cin % groups != 0) {
    throw std::invalid_argument("conv_transpose2d: inconsistent channels/groups (input " +
                                shape_str(x.shape()) + ", weight " + shape_str(weight.shape()) +
                                ", groups " + std::to_string(groups) + ")");
  }
  const int cin_g = cin / groups;
  const int cout = cout_g * groups;
  const int oh = (h - 1) * stride - 2 * padding + kh + output_padding;
  const int ow = (w - 1) * stride - 2 * padding + kw + output_padding;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument(
        "conv_transpose2d: non-positive output size " + std::to_string(oh) + "x" +
        std::to_string(ow) + " (input " + shape_str(x.shape()) + ", weight " +
        shape_str(weight.shape()) + ", stride " + std::to_string(stride) + ", padding " +
        std::to_string(padding) + ", output_padding " + std::to_string(output_padding) + ")");
  }
  const ConvT2dParams params{n,  cin, h,  w,  cout, cin_g,  cout_g, groups,
                             kh, kw,  oh, ow, stride, padding};

  auto xi = x.impl();
  auto wi = weight.impl();
  auto bi = bias.defined() ? bias.impl() : nullptr;

  Tensor out = make_op_output(
      {n, cout, oh, ow}, {&x, &weight, &bias},
      [=](TensorImpl& self) {
        static const OpStats bstats = make_op_stats("conv_transpose2d_bwd");
        OpTimer timer(bstats);
        const bool need_x = xi->requires_grad;
        const bool need_w = wi->requires_grad;
        const bool need_b = bi && bi->requires_grad;
        if (need_x) xi->ensure_grad();
        if (need_w) wi->ensure_grad();
        if (need_b) bi->ensure_grad();
        if (need_b) conv_transpose2d_backward_b(params, self.grad.data(), bi->grad.data());
        if (!need_x && !need_w) return;
        conv_transpose2d_backward_xw(params, self.grad.data(), xi->data.data(),
                                     wi->data.data(), need_x ? xi->grad.data() : nullptr,
                                     need_w ? wi->grad.data() : nullptr);
      });

  conv_transpose2d_forward(params, x.data().data(), weight.data().data(),
                           bias.defined() ? bias.data().data() : nullptr, out.data().data());
  trace_op("conv_transpose2d", {&x, &weight, &bias}, out, [params]() -> OpKernel {
    return [params](const float* const* in, float* o) {
      conv_transpose2d_forward(params, in[0], in[1], in[2], o);
    };
  });
  return out;
}

}  // namespace laco::nn
