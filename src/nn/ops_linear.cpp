#include <stdexcept>

#include "nn/op_trace.hpp"
#include "nn/ops.hpp"

namespace laco::nn {
namespace {

void linear_forward(int n, int in, int out_f, const float* xd, const float* wd, const float* bd,
                    float* y) {
  for (int r = 0; r < n; ++r) {
    const float* xrow = &xd[static_cast<std::size_t>(r) * in];
    for (int o = 0; o < out_f; ++o) {
      const float* wrow = &wd[static_cast<std::size_t>(o) * in];
      float acc = bd != nullptr ? bd[static_cast<std::size_t>(o)] : 0.0f;
      for (int c = 0; c < in; ++c) acc += xrow[c] * wrow[c];
      y[static_cast<std::size_t>(r) * out_f + o] = acc;
    }
  }
}

}  // namespace

Tensor linear(const Tensor& x, const Tensor& weight, const Tensor& bias) {
  if (x.shape().size() != 2 || weight.shape().size() != 2) {
    throw std::invalid_argument("linear: expects x [N,In] and weight [Out,In]");
  }
  const int n = x.dim(0);
  const int in = x.dim(1);
  const int out_f = weight.dim(0);
  if (weight.dim(1) != in) throw std::invalid_argument("linear: In mismatch");
  if (bias.defined() && (bias.shape().size() != 1 || bias.dim(0) != out_f)) {
    throw std::invalid_argument("linear: bias must be [Out]");
  }

  auto xi = x.impl();
  auto wi = weight.impl();
  auto bi = bias.defined() ? bias.impl() : nullptr;
  Tensor out = make_op_output({n, out_f}, {&x, &weight, &bias},
                              [xi, wi, bi, n, in, out_f](TensorImpl& self) {
    if (xi->requires_grad) {
      xi->ensure_grad();
      for (int r = 0; r < n; ++r) {
        for (int o = 0; o < out_f; ++o) {
          const float g = self.grad[static_cast<std::size_t>(r) * out_f + o];
          if (g == 0.0f) continue;
          const float* wrow = &wi->data[static_cast<std::size_t>(o) * in];
          float* xg = &xi->grad[static_cast<std::size_t>(r) * in];
          for (int c = 0; c < in; ++c) xg[c] += g * wrow[c];
        }
      }
    }
    if (wi->requires_grad) {
      wi->ensure_grad();
      for (int r = 0; r < n; ++r) {
        const float* xrow = &xi->data[static_cast<std::size_t>(r) * in];
        for (int o = 0; o < out_f; ++o) {
          const float g = self.grad[static_cast<std::size_t>(r) * out_f + o];
          if (g == 0.0f) continue;
          float* wg = &wi->grad[static_cast<std::size_t>(o) * in];
          for (int c = 0; c < in; ++c) wg[c] += g * xrow[c];
        }
      }
    }
    if (bi && bi->requires_grad) {
      bi->ensure_grad();
      for (int r = 0; r < n; ++r) {
        for (int o = 0; o < out_f; ++o) {
          bi->grad[static_cast<std::size_t>(o)] +=
              self.grad[static_cast<std::size_t>(r) * out_f + o];
        }
      }
    }
  });

  linear_forward(n, in, out_f, x.data().data(), weight.data().data(),
                 bias.defined() ? bias.data().data() : nullptr, out.data().data());
  trace_op("linear", {&x, &weight, &bias}, out, [n, in, out_f]() -> OpKernel {
    return [n, in, out_f](const float* const* ins, float* o) {
      linear_forward(n, in, out_f, ins[0], ins[1], ins[2], o);
    };
  });
  return out;
}

}  // namespace laco::nn
