// Standard layers built on the op catalog: Conv2d, ConvTranspose2d,
// GroupNorm, Linear. Initialization is Kaiming-normal for conv/linear
// weights, zeros for biases, ones/zeros for norm affine — seeded
// deterministically from the layer's construction order.
#pragma once

#include "nn/module.hpp"

namespace laco::nn {

/// Deterministic per-layer seed source (reset between model builds if
/// bit-exact reproducibility across constructions is required).
unsigned next_init_seed();
void reset_init_seed(unsigned seed);

class Conv2d : public Module {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride = 1, int padding = -1,
         int groups = 1, bool bias = true);
  Tensor forward(const Tensor& x) const;

  int stride() const { return stride_; }
  int padding() const { return padding_; }

 private:
  Tensor weight_;
  Tensor bias_;
  int stride_;
  int padding_;
  int groups_;
};

class ConvTranspose2d : public Module {
 public:
  ConvTranspose2d(int in_channels, int out_channels, int kernel, int stride = 1,
                  int padding = 0, int output_padding = 0, int groups = 1, bool bias = true);
  Tensor forward(const Tensor& x) const;

 private:
  Tensor weight_;
  Tensor bias_;
  int stride_;
  int padding_;
  int output_padding_;
  int groups_;
};

class GroupNorm : public Module {
 public:
  GroupNorm(int num_groups, int num_channels, float eps = 1e-5f);
  Tensor forward(const Tensor& x) const;

 private:
  Tensor gamma_;
  Tensor beta_;
  int num_groups_;
  float eps_;
};

class Linear : public Module {
 public:
  Linear(int in_features, int out_features, bool bias = true);
  Tensor forward(const Tensor& x) const;

 private:
  Tensor weight_;
  Tensor bias_;
};

}  // namespace laco::nn
