#include "nn/module.hpp"

#include <stdexcept>

namespace laco::nn {

Tensor Module::register_parameter(std::string name, Tensor tensor) {  // analyze-ok(tensor-by-value): sink
  tensor.set_requires_grad(true);
  params_.emplace_back(std::move(name), tensor);
  return tensor;
}

void Module::register_module(std::string name, Module* child) {
  if (child == nullptr) throw std::invalid_argument("register_module: null child");
  children_.emplace_back(std::move(name), child);
}

void Module::collect(const std::string& prefix,
                     std::vector<std::pair<std::string, Tensor>>& out) const {
  for (const auto& [name, tensor] : params_) {
    out.emplace_back(prefix.empty() ? name : prefix + "." + name, tensor);
  }
  for (const auto& [name, child] : children_) {
    child->collect(prefix.empty() ? name : prefix + "." + name, out);
  }
}

std::vector<std::pair<std::string, Tensor>> Module::named_parameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  collect("", out);
  return out;
}

std::vector<Tensor> Module::parameters() const {
  std::vector<Tensor> out;
  for (auto& [name, tensor] : named_parameters()) out.push_back(tensor);
  return out;
}

void Module::zero_grad() {
  for (Tensor& p : parameters()) p.zero_grad();
}

std::int64_t Module::num_parameters() const {
  std::int64_t n = 0;
  for (const Tensor& p : parameters()) n += p.numel();
  return n;
}

}  // namespace laco::nn
