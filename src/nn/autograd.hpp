// Autograd support utilities: numerical gradient checking used by the
// test suite to validate every op's hand-written backward pass, plus
// graph-wide helpers.
#pragma once

#include <functional>

#include "nn/tensor.hpp"

namespace laco::nn {

/// Central-difference gradient check. `fn` maps the input tensor to a
/// scalar loss; the analytic gradient (via backward()) is compared to
/// finite differences on up to `max_probes` coordinates. Returns the
/// maximum relative error observed.
double gradient_check(const std::function<Tensor(const Tensor&)>& fn, Tensor& input,
                      double epsilon = 1e-3, int max_probes = 64);

/// Fills a tensor with uniform random values in [lo, hi] (mt19937 seeded).
void fill_uniform(Tensor& tensor, float lo, float hi, unsigned seed);

/// Fills with Kaiming-style normal noise: stddev = sqrt(2 / fan_in).
void fill_kaiming(Tensor& tensor, int fan_in, unsigned seed);

}  // namespace laco::nn
