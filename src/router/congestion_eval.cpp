#include "router/congestion_eval.hpp"

#include "placer/detailed_placer.hpp"
#include "placer/legalizer.hpp"

namespace laco {

PlacementEvaluation evaluate_placement(Design& design, const GlobalRouterConfig& config,
                                       bool run_legalization, bool run_detailed_placement) {
  PlacementEvaluation eval;
  if (run_legalization) {
    legalize(design);
    if (run_detailed_placement) detailed_place(design);
    eval.legality_violations = count_legality_violations(design);
  }
  eval.hpwl = design.hpwl();
  eval.routing = route_design(design, config);
  eval.wcs_h = eval.routing.wcs_h;
  eval.wcs_v = eval.routing.wcs_v;
  eval.routed_wirelength = eval.routing.routed_wirelength;
  eval.ace = ace_profile(eval.routing.congestion);
  return eval;
}

GridMap congestion_label(const Design& design, const GlobalRouterConfig& config) {
  return route_design(design, config).congestion;
}

}  // namespace laco
