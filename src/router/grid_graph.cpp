#include "router/grid_graph.hpp"

#include <algorithm>
#include <cmath>

namespace laco {

GridGraph::GridGraph(const Design& design, const GridGraphConfig& config)
    : nx_(config.nx), ny_(config.ny), region_(design.core()) {
  gcell_w_ = region_.width() / nx_;
  gcell_h_ = region_.height() / ny_;

  // Base capacity: tracks crossing one gcell boundary.
  const double h_base = config.tracks_per_unit * gcell_h_;  // horizontal wires span x
  const double v_base = config.tracks_per_unit * gcell_w_;
  h_cap_.assign(static_cast<std::size_t>(nx_ - 1) * ny_, h_base);
  h_use_.assign(h_cap_.size(), 0.0);
  h_hist_.assign(h_cap_.size(), 0.0);
  v_cap_.assign(static_cast<std::size_t>(nx_) * (ny_ - 1), v_base);
  v_use_.assign(v_cap_.size(), 0.0);
  v_hist_.assign(v_cap_.size(), 0.0);

  // Derating: gcells under macros or explicit routing blockages lose
  // `macro_blockage` of their tracks.
  GridMap macro_cover(nx_, ny_, region_, 0.0);
  for (const Cell& cell : design.cells()) {
    if (cell.kind != CellKind::kMacro) continue;
    macro_cover.add_rect(cell.rect(), 1.0, /*density_mode=*/false);
  }
  for (const Rect& blockage : design.routing_blockages()) {
    macro_cover.add_rect(blockage, 1.0, /*density_mode=*/false);
  }
  const auto covered = [&](int k, int l) { return macro_cover.at(k, l) > 0.5; };
  for (int l = 0; l < ny_; ++l) {
    for (int k = 0; k + 1 < nx_; ++k) {
      if (covered(k, l) || covered(k + 1, l)) {
        h_cap_[h_index(k, l)] = h_base * (1.0 - config.macro_blockage);
      }
    }
  }
  for (int l = 0; l + 1 < ny_; ++l) {
    for (int k = 0; k < nx_; ++k) {
      if (covered(k, l) || covered(k, l + 1)) {
        v_cap_[v_index(k, l)] = v_base * (1.0 - config.macro_blockage);
      }
    }
  }
}

GridIndex GridGraph::gcell_of(Point p) const {
  int k = static_cast<int>((p.x - region_.xl) / gcell_w_);
  int l = static_cast<int>((p.y - region_.yl) / gcell_h_);
  return {std::clamp(k, 0, nx_ - 1), std::clamp(l, 0, ny_ - 1)};
}

void GridGraph::clear_usage() {
  std::fill(h_use_.begin(), h_use_.end(), 0.0);
  std::fill(v_use_.begin(), v_use_.end(), 0.0);
}

void GridGraph::accumulate_history(double amount) {
  for (std::size_t i = 0; i < h_use_.size(); ++i) {
    if (h_use_[i] > h_cap_[i]) h_hist_[i] += amount;
  }
  for (std::size_t i = 0; i < v_use_.size(); ++i) {
    if (v_use_[i] > v_cap_[i]) v_hist_[i] += amount;
  }
}

void GridGraph::clear_history() {
  std::fill(h_hist_.begin(), h_hist_.end(), 0.0);
  std::fill(v_hist_.begin(), v_hist_.end(), 0.0);
}

double GridGraph::edge_cost(double use, double cap) {
  const double util = use / std::max(cap, 1e-9);
  // Smoothly escalating congestion penalty: cheap below ~70% utilization,
  // strongly discouraging overflow beyond capacity.
  const double excess = std::max(0.0, util - 0.7);
  return 1.0 + 4.0 * excess * excess + (util > 1.0 ? 8.0 * (util - 1.0) : 0.0);
}

double GridGraph::total_h_overflow() const {
  double of = 0.0;
  for (std::size_t i = 0; i < h_cap_.size(); ++i) of += std::max(0.0, h_use_[i] - h_cap_[i]);
  return of;
}

double GridGraph::total_v_overflow() const {
  double of = 0.0;
  for (std::size_t i = 0; i < v_cap_.size(); ++i) of += std::max(0.0, v_use_[i] - v_cap_[i]);
  return of;
}

double GridGraph::wcs_h() const {
  double wcs = 0.0;
  for (std::size_t i = 0; i < h_cap_.size(); ++i) {
    if (h_cap_[i] <= 1e-9) continue;
    wcs = std::max(wcs, std::max(0.0, h_use_[i] - h_cap_[i]) / h_cap_[i]);
  }
  return wcs;
}

double GridGraph::wcs_v() const {
  double wcs = 0.0;
  for (std::size_t i = 0; i < v_cap_.size(); ++i) {
    if (v_cap_[i] <= 1e-9) continue;
    wcs = std::max(wcs, std::max(0.0, v_use_[i] - v_cap_[i]) / v_cap_[i]);
  }
  return wcs;
}

GridMap GridGraph::congestion_map() const {
  GridMap map(nx_, ny_, region_, 0.0);
  const auto util = [](double use, double cap) { return cap > 1e-9 ? use / cap : 0.0; };
  for (int l = 0; l < ny_; ++l) {
    for (int k = 0; k < nx_; ++k) {
      double u = 0.0;
      if (k > 0) u = std::max(u, util(h_use_[h_index(k - 1, l)], h_cap_[h_index(k - 1, l)]));
      if (k + 1 < nx_) u = std::max(u, util(h_use_[h_index(k, l)], h_cap_[h_index(k, l)]));
      if (l > 0) u = std::max(u, util(v_use_[v_index(k, l - 1)], v_cap_[v_index(k, l - 1)]));
      if (l + 1 < ny_) u = std::max(u, util(v_use_[v_index(k, l)], v_cap_[v_index(k, l)]));
      map.at(k, l) = u;
    }
  }
  return map;
}

}  // namespace laco
