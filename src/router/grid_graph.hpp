// Routing grid graph: GCells over the core with directional edge
// capacities and usages. Horizontal edges connect (k,l)→(k+1,l), vertical
// edges (k,l)→(k,l+1). Capacities follow a track model (gcell span /
// track pitch × routing layers per direction) and are derated where
// macros block the routing stack — the congestion structure the LACO
// paper's labels come from.
#pragma once

#include <cstdint>
#include <vector>

#include "gridmap/grid_map.hpp"
#include "netlist/design.hpp"

namespace laco {

struct GridGraphConfig {
  int nx = 64;
  int ny = 64;
  /// Routing tracks per unit length per direction (layers × 1/pitch).
  double tracks_per_unit = 8.0;
  /// Fraction of tracks blocked over macro-covered gcells.
  double macro_blockage = 0.8;
};

class GridGraph {
 public:
  GridGraph(const Design& design, const GridGraphConfig& config);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  const Rect& region() const { return region_; }
  double gcell_w() const { return gcell_w_; }
  double gcell_h() const { return gcell_h_; }

  /// GCell containing a layout point (clamped).
  GridIndex gcell_of(Point p) const;

  // Horizontal edge (k, l) spans gcells (k,l)-(k+1,l); k in [0, nx-2].
  double h_capacity(int k, int l) const { return h_cap_[h_index(k, l)]; }
  double h_usage(int k, int l) const { return h_use_[h_index(k, l)]; }
  // Vertical edge (k, l) spans gcells (k,l)-(k,l+1); l in [0, ny-2].
  double v_capacity(int k, int l) const { return v_cap_[v_index(k, l)]; }
  double v_usage(int k, int l) const { return v_use_[v_index(k, l)]; }

  void add_h_usage(int k, int l, double amount) { h_use_[h_index(k, l)] += amount; }
  void add_v_usage(int k, int l, double amount) { v_use_[v_index(k, l)] += amount; }
  void clear_usage();

  /// PathFinder-style negotiation history: edges that stay overflowed
  /// across rip-up rounds accumulate a persistent cost so repeat
  /// offenders are avoided even when momentarily under capacity.
  void accumulate_history(double amount = 1.0);
  void clear_history();
  double h_history(int k, int l) const { return h_hist_[h_index(k, l)]; }
  double v_history(int k, int l) const { return v_hist_[v_index(k, l)]; }

  /// Edge cost for congestion-aware routing: 1 + penalty that grows
  /// quadratically once demand approaches capacity, plus the history term.
  double h_cost(int k, int l) const {
    return edge_cost(h_use_[h_index(k, l)], h_cap_[h_index(k, l)]) + h_hist_[h_index(k, l)];
  }
  double v_cost(int k, int l) const {
    return edge_cost(v_use_[v_index(k, l)], v_cap_[v_index(k, l)]) + v_hist_[v_index(k, l)];
  }

  /// Total overflow Σ max(0, use − cap) per direction.
  double total_h_overflow() const;
  double total_v_overflow() const;

  /// Worst congestion score per paper Eq. (18): max over edges of
  /// overflow tracks / available tracks, per direction.
  double wcs_h() const;
  double wcs_v() const;

  /// Per-gcell congestion map (max adjacent-edge utilization, both
  /// directions) — the training label for the congestion models.
  GridMap congestion_map() const;

 private:
  std::size_t h_index(int k, int l) const { return static_cast<std::size_t>(l) * (nx_ - 1) + k; }
  std::size_t v_index(int k, int l) const { return static_cast<std::size_t>(l) * nx_ + k; }
  static double edge_cost(double use, double cap);

  int nx_, ny_;
  Rect region_;
  double gcell_w_, gcell_h_;
  std::vector<double> h_cap_, h_use_, h_hist_;  // (nx-1) × ny
  std::vector<double> v_cap_, v_use_, v_hist_;  // nx × (ny-1)
};

}  // namespace laco
