#include "router/pattern_route.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace laco {
namespace {

/// Appends the straight run from `from` to (k, l) (exclusive of `from`,
/// inclusive of destination) assuming a single-axis move.
void append_run(std::vector<GridIndex>& path, GridIndex from, int k, int l) {
  while (from.k != k) {
    from.k += (k > from.k) ? 1 : -1;
    path.push_back(from);
  }
  while (from.l != l) {
    from.l += (l > from.l) ? 1 : -1;
    path.push_back(from);
  }
}

RoutePath make_path(const GridGraph& grid, GridIndex a, const std::vector<GridIndex>& bends,
                    GridIndex b) {
  RoutePath path;
  path.gcells.push_back(a);
  GridIndex cur = a;
  for (const GridIndex& bend : bends) {
    append_run(path.gcells, cur, bend.k, bend.l);
    cur = bend;
  }
  append_run(path.gcells, cur, b.k, b.l);
  path.cost = path_cost(grid, path);
  return path;
}

}  // namespace

double path_cost(const GridGraph& grid, const RoutePath& path) {
  double cost = 0.0;
  for (std::size_t i = 1; i < path.gcells.size(); ++i) {
    const GridIndex& p = path.gcells[i - 1];
    const GridIndex& q = path.gcells[i];
    if (p.l == q.l) {
      cost += grid.h_cost(std::min(p.k, q.k), p.l);
    } else {
      cost += grid.v_cost(p.k, std::min(p.l, q.l));
    }
  }
  return cost;
}

double path_length(const GridGraph& grid, const RoutePath& path) {
  double len = 0.0;
  for (std::size_t i = 1; i < path.gcells.size(); ++i) {
    len += (path.gcells[i - 1].l == path.gcells[i].l) ? grid.gcell_w() : grid.gcell_h();
  }
  return len;
}

void commit_path(GridGraph& grid, const RoutePath& path, double amount) {
  for (std::size_t i = 1; i < path.gcells.size(); ++i) {
    const GridIndex& p = path.gcells[i - 1];
    const GridIndex& q = path.gcells[i];
    if (p.l == q.l) {
      grid.add_h_usage(std::min(p.k, q.k), p.l, amount);
    } else {
      grid.add_v_usage(p.k, std::min(p.l, q.l), amount);
    }
  }
}

RoutePath best_l_route(const GridGraph& grid, GridIndex a, GridIndex b) {
  const RoutePath hv = make_path(grid, a, {{b.k, a.l}}, b);  // horizontal first
  const RoutePath vh = make_path(grid, a, {{a.k, b.l}}, b);  // vertical first
  return hv.cost <= vh.cost ? hv : vh;
}

RoutePath best_z_route(const GridGraph& grid, GridIndex a, GridIndex b, int max_candidates) {
  RoutePath best = best_l_route(grid, a, b);
  const int k_lo = std::min(a.k, b.k), k_hi = std::max(a.k, b.k);
  const int l_lo = std::min(a.l, b.l), l_hi = std::max(a.l, b.l);
  // HVH: go to column m, vertical, then to b.
  const int k_span = k_hi - k_lo;
  const int k_step = std::max(1, k_span / std::max(1, max_candidates));
  for (int m = k_lo + 1; m < k_hi; m += k_step) {
    RoutePath cand = make_path(grid, a, {{m, a.l}, {m, b.l}}, b);
    if (cand.cost < best.cost) best = std::move(cand);
  }
  // VHV: go to row m, horizontal, then to b.
  const int l_span = l_hi - l_lo;
  const int l_step = std::max(1, l_span / std::max(1, max_candidates));
  for (int m = l_lo + 1; m < l_hi; m += l_step) {
    RoutePath cand = make_path(grid, a, {{a.k, m}, {b.k, m}}, b);
    if (cand.cost < best.cost) best = std::move(cand);
  }
  return best;
}

}  // namespace laco
