// Multi-pin net decomposition into 2-pin segments: a rectilinear
// minimum spanning tree (Prim, Manhattan metric) over the net's pin
// GCells, with an optional exact improvement for 3-terminal nets — the
// rectilinear Steiner point at the coordinate medians, which makes the
// 3-pin topology a minimal Steiner tree instead of an MST.
#pragma once

#include <vector>

#include "router/grid_graph.hpp"

namespace laco {

struct TwoPinSegment {
  GridIndex a;
  GridIndex b;
};

/// Decomposition over unique pin gcells of `net` (empty for degree < 2
/// or when all pins share one gcell). With `use_steiner`, 3-terminal
/// nets route as a star through the median point.
std::vector<TwoPinSegment> decompose_net(const Design& design, const Net& net,
                                         const GridGraph& grid, bool use_steiner = true);

/// Total Manhattan gcell length of a decomposition (tests/benches).
int decomposition_length(const std::vector<TwoPinSegment>& segments);

}  // namespace laco
