#include "router/global_router.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "router/maze_route.hpp"
#include "router/net_decomposition.hpp"
#include "router/pattern_route.hpp"
#include "util/logging.hpp"

namespace laco {

GlobalRouter::GlobalRouter(const Design& design, GlobalRouterConfig config)
    : design_(design), config_(config), grid_(design, config.grid) {}

RoutingResult GlobalRouter::route() {
  grid_.clear_usage();

  // Decompose all nets.
  std::vector<TwoPinSegment> segments;
  for (const Net& net : design_.nets()) {
    if (net.degree() < 2) continue;
    const auto segs = decompose_net(design_, net, grid_, config_.steiner);
    segments.insert(segments.end(), segs.begin(), segs.end());
  }

  // Shortest-first ordering: long segments route last and adapt to the
  // congestion the short ones created.
  std::vector<std::size_t> order(segments.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto len = [&](const TwoPinSegment& s) {
      return std::abs(s.a.k - s.b.k) + std::abs(s.a.l - s.b.l);
    };
    return len(segments[a]) < len(segments[b]);
  });

  std::vector<RoutePath> paths(segments.size());
  for (const std::size_t i : order) {
    paths[i] = best_z_route(grid_, segments[i].a, segments[i].b, config_.z_candidates);
    commit_path(grid_, paths[i]);
  }

  // Negotiation: rip up segments that cross overflowed edges and reroute
  // them with the maze router under current (post-rip-up) costs.
  RoutingResult result;
  for (int round = 0; round < config_.rrr_rounds; ++round) {
    std::vector<std::size_t> victims;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      bool overflowed = false;
      const RoutePath& path = paths[i];
      for (std::size_t j = 1; j < path.gcells.size() && !overflowed; ++j) {
        const GridIndex& p = path.gcells[j - 1];
        const GridIndex& q = path.gcells[j];
        if (p.l == q.l) {
          const int k = std::min(p.k, q.k);
          overflowed = grid_.h_usage(k, p.l) > grid_.h_capacity(k, p.l);
        } else {
          const int l = std::min(p.l, q.l);
          overflowed = grid_.v_usage(p.k, l) > grid_.v_capacity(p.k, l);
        }
      }
      if (overflowed) victims.push_back(i);
    }
    if (victims.empty()) break;
    // Negotiation: overflowed edges accrue history cost so they stay
    // expensive for the re-routed victims even after rip-up frees them.
    grid_.accumulate_history(config_.history_cost);
    // Longest victims first: they have the most detour freedom.
    std::sort(victims.begin(), victims.end(), [&](std::size_t a, std::size_t b) {
      return paths[a].gcells.size() > paths[b].gcells.size();
    });
    for (const std::size_t i : victims) {
      commit_path(grid_, paths[i], -1.0);
      RoutePath rerouted = maze_route(grid_, segments[i].a, segments[i].b, config_.maze_window);
      commit_path(grid_, rerouted);
      paths[i] = std::move(rerouted);
      ++result.rerouted_segments;
    }
    LACO_LOG_DEBUG << "router round " << round << ": rerouted " << victims.size()
                   << " segments, overflow h=" << grid_.total_h_overflow()
                   << " v=" << grid_.total_v_overflow();
  }

  result.segments = segments.size();
  result.wcs_h = grid_.wcs_h();
  result.wcs_v = grid_.wcs_v();
  result.total_overflow_h = grid_.total_h_overflow();
  result.total_overflow_v = grid_.total_v_overflow();
  result.congestion = grid_.congestion_map();
  double wl = 0.0;
  for (const RoutePath& path : paths) wl += path_length(grid_, path);
  result.routed_wirelength = wl;
  return result;
}

RoutingResult route_design(const Design& design, const GlobalRouterConfig& config) {
  GlobalRouter router(design, config);
  return router.route();
}

}  // namespace laco
