// Congestion-aware maze routing (Dijkstra on the gcell graph) — the
// escalation path for segments that pattern routing leaves overflowed.
// Search is restricted to the segment's bounding box inflated by a
// configurable window.
#pragma once

#include "router/pattern_route.hpp"

namespace laco {

/// Shortest congestion-cost path a→b, confined to bbox(a, b) inflated by
/// `window` gcells. Returns an empty path only if a == b.
RoutePath maze_route(const GridGraph& grid, GridIndex a, GridIndex b, int window = 8);

}  // namespace laco
