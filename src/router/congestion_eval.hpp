// End-of-flow placement evaluation — the Table-I measurement protocol:
// legalize + detailed-place the global placement, run global routing,
// report WCS_H, WCS_V (Eq. 18), and routed wirelength. Also the label
// generator for the congestion-model training set.
#pragma once

#include "metrics/ace.hpp"
#include "router/global_router.hpp"

namespace laco {

struct PlacementEvaluation {
  double wcs_h = 0.0;
  double wcs_v = 0.0;
  double routed_wirelength = 0.0;
  double hpwl = 0.0;
  std::size_t legality_violations = 0;
  AceProfile ace;  ///< tail-average congestion (GLARE metric)
  RoutingResult routing;
};

/// Runs LG → DP → GR on `design` (mutates positions to the legalized
/// ones) and reports the routed metrics.
PlacementEvaluation evaluate_placement(Design& design, const GlobalRouterConfig& config = {},
                                       bool run_legalization = true,
                                       bool run_detailed_placement = true);

/// Congestion ground-truth label at the design's *current* placement
/// (no legalization) — used to label intermediate-iteration snapshots.
GridMap congestion_label(const Design& design, const GlobalRouterConfig& config = {});

}  // namespace laco
