#include "router/net_decomposition.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace laco {

std::vector<TwoPinSegment> decompose_net(const Design& design, const Net& net,
                                         const GridGraph& grid, bool use_steiner) {
  std::vector<GridIndex> nodes;
  for (const PinId pid : net.pins) {
    const GridIndex g = grid.gcell_of(design.pin_position(pid));
    if (std::find(nodes.begin(), nodes.end(), g) == nodes.end()) nodes.push_back(g);
  }
  std::vector<TwoPinSegment> segments;
  if (nodes.size() < 2) return segments;

  if (use_steiner && nodes.size() == 3) {
    // The optimal rectilinear Steiner point of three terminals is the
    // per-axis median; a star through it is a minimal Steiner tree.
    std::array<int, 3> xs{nodes[0].k, nodes[1].k, nodes[2].k};
    std::array<int, 3> ys{nodes[0].l, nodes[1].l, nodes[2].l};
    std::sort(xs.begin(), xs.end());
    std::sort(ys.begin(), ys.end());
    const GridIndex steiner{xs[1], ys[1]};
    for (const GridIndex& node : nodes) {
      if (!(node == steiner)) segments.push_back({steiner, node});
    }
    return segments;
  }

  // Prim's MST with Manhattan gcell distance.
  const std::size_t n = nodes.size();
  std::vector<bool> in_tree(n, false);
  std::vector<int> best_dist(n, std::numeric_limits<int>::max());
  std::vector<std::size_t> best_parent(n, 0);
  in_tree[0] = true;
  for (std::size_t i = 1; i < n; ++i) {
    best_dist[i] = std::abs(nodes[i].k - nodes[0].k) + std::abs(nodes[i].l - nodes[0].l);
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = n;
    int pick_dist = std::numeric_limits<int>::max();
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_tree[i] && best_dist[i] < pick_dist) {
        pick = i;
        pick_dist = best_dist[i];
      }
    }
    in_tree[pick] = true;
    segments.push_back({nodes[best_parent[pick]], nodes[pick]});
    for (std::size_t i = 0; i < n; ++i) {
      if (in_tree[i]) continue;
      const int d = std::abs(nodes[i].k - nodes[pick].k) + std::abs(nodes[i].l - nodes[pick].l);
      if (d < best_dist[i]) {
        best_dist[i] = d;
        best_parent[i] = pick;
      }
    }
  }
  return segments;
}

int decomposition_length(const std::vector<TwoPinSegment>& segments) {
  int total = 0;
  for (const TwoPinSegment& s : segments) {
    total += std::abs(s.a.k - s.b.k) + std::abs(s.a.l - s.b.l);
  }
  return total;
}

}  // namespace laco
