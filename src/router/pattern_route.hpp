// Pattern routing: L-shaped (1 bend) and Z-shaped (2 bend) candidate
// paths for a 2-pin segment, scored by congestion-aware edge cost. The
// cheap first pass of the global router; overflowed segments escalate to
// maze routing.
#pragma once

#include <vector>

#include "router/grid_graph.hpp"

namespace laco {

struct RoutePath {
  std::vector<GridIndex> gcells;  ///< contiguous gcell sequence (unit steps)
  double cost = 0.0;

  bool empty() const { return gcells.empty(); }
};

/// Cost of an existing path under current usage.
double path_cost(const GridGraph& grid, const RoutePath& path);
/// Wirelength of a path in layout units.
double path_length(const GridGraph& grid, const RoutePath& path);
/// Adds (amount=+1) or removes (amount=−1) a path's track demand.
void commit_path(GridGraph& grid, const RoutePath& path, double amount = 1.0);

/// Best of the two L-shaped routes a→b.
RoutePath best_l_route(const GridGraph& grid, GridIndex a, GridIndex b);
/// Best Z-shaped route (HVH and VHV families, sampled intermediate
/// positions, L-shapes included as degenerate cases).
RoutePath best_z_route(const GridGraph& grid, GridIndex a, GridIndex b,
                       int max_candidates = 16);

}  // namespace laco
