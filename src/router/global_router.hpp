// The global router — this reproduction's stand-in for the Cadence
// Innovus global routing the paper uses for ground truth. Flow:
//   1. decompose every net into 2-pin MST segments;
//   2. pattern-route all segments (best Z/L by congestion cost),
//      shortest segments first;
//   3. rip-up & re-route segments crossing overflowed edges with maze
//      routing, for a configurable number of negotiation rounds.
// Outputs: per-direction WCS (paper Eq. 18), routed wirelength, total
// overflow, and the gcell congestion map used as the DNN training label.
#pragma once

#include "router/grid_graph.hpp"

namespace laco {

struct GlobalRouterConfig {
  GridGraphConfig grid;
  int rrr_rounds = 2;          ///< rip-up & re-route negotiation rounds
  int maze_window = 8;         ///< maze search bbox inflation (gcells)
  int z_candidates = 12;       ///< intermediate positions tried per Z family
  double history_cost = 0.5;   ///< PathFinder history added per overflowed round
  bool steiner = true;         ///< median Steiner point for 3-terminal nets
};

struct RoutingResult {
  double wcs_h = 0.0;
  double wcs_v = 0.0;
  double routed_wirelength = 0.0;
  double total_overflow_h = 0.0;
  double total_overflow_v = 0.0;
  std::size_t segments = 0;
  std::size_t rerouted_segments = 0;
  GridMap congestion;  ///< per-gcell max edge utilization
};

class GlobalRouter {
 public:
  GlobalRouter(const Design& design, GlobalRouterConfig config);

  /// Routes the design at its current cell positions.
  RoutingResult route();

  const GridGraph& grid() const { return grid_; }

 private:
  const Design& design_;
  GlobalRouterConfig config_;
  GridGraph grid_;
};

/// Convenience: route and return only the evaluation metrics.
RoutingResult route_design(const Design& design, const GlobalRouterConfig& config = {});

}  // namespace laco
