#include "router/maze_route.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace laco {

RoutePath maze_route(const GridGraph& grid, GridIndex a, GridIndex b, int window) {
  RoutePath out;
  if (a == b) {
    out.gcells = {a};
    return out;
  }
  const int k0 = std::max(0, std::min(a.k, b.k) - window);
  const int k1 = std::min(grid.nx() - 1, std::max(a.k, b.k) + window);
  const int l0 = std::max(0, std::min(a.l, b.l) - window);
  const int l1 = std::min(grid.ny() - 1, std::max(a.l, b.l) + window);
  const int w = k1 - k0 + 1;
  const int h = l1 - l0 + 1;
  const auto idx = [&](int k, int l) {
    return static_cast<std::size_t>(l - l0) * w + (k - k0);
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(w) * h, kInf);
  std::vector<std::int8_t> parent(dist.size(), -1);  // 0:L 1:R 2:D 3:U (came-from move)

  using QItem = std::pair<double, std::pair<int, int>>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> queue;
  dist[idx(a.k, a.l)] = 0.0;
  queue.push({0.0, {a.k, a.l}});

  while (!queue.empty()) {
    const auto [d, kl] = queue.top();
    queue.pop();
    const auto [k, l] = kl;
    if (d > dist[idx(k, l)]) continue;
    if (k == b.k && l == b.l) break;
    // Right
    if (k + 1 <= k1) {
      const double nd = d + grid.h_cost(k, l);
      if (nd < dist[idx(k + 1, l)]) {
        dist[idx(k + 1, l)] = nd;
        parent[idx(k + 1, l)] = 0;
        queue.push({nd, {k + 1, l}});
      }
    }
    // Left
    if (k - 1 >= k0) {
      const double nd = d + grid.h_cost(k - 1, l);
      if (nd < dist[idx(k - 1, l)]) {
        dist[idx(k - 1, l)] = nd;
        parent[idx(k - 1, l)] = 1;
        queue.push({nd, {k - 1, l}});
      }
    }
    // Up
    if (l + 1 <= l1) {
      const double nd = d + grid.v_cost(k, l);
      if (nd < dist[idx(k, l + 1)]) {
        dist[idx(k, l + 1)] = nd;
        parent[idx(k, l + 1)] = 2;
        queue.push({nd, {k, l + 1}});
      }
    }
    // Down
    if (l - 1 >= l0) {
      const double nd = d + grid.v_cost(k, l - 1);
      if (nd < dist[idx(k, l - 1)]) {
        dist[idx(k, l - 1)] = nd;
        parent[idx(k, l - 1)] = 3;
        queue.push({nd, {k, l - 1}});
      }
    }
  }

  // Trace back from b.
  std::vector<GridIndex> reverse_path;
  int k = b.k, l = b.l;
  if (dist[idx(k, l)] == kInf) {
    // Window too tight (cannot happen with window ≥ 0 on a connected
    // grid, but guard anyway): fall back to an L route.
    return best_l_route(grid, a, b);
  }
  while (!(k == a.k && l == a.l)) {
    reverse_path.push_back({k, l});
    switch (parent[idx(k, l)]) {
      case 0: --k; break;
      case 1: ++k; break;
      case 2: --l; break;
      case 3: ++l; break;
      default: return best_l_route(grid, a, b);  // corrupt trace guard
    }
  }
  reverse_path.push_back({a.k, a.l});
  out.gcells.assign(reverse_path.rbegin(), reverse_path.rend());
  out.cost = dist[idx(b.k, b.l)];
  return out;
}

}  // namespace laco
