// The look-ahead model g (paper Sec. III-C), adapted from SimVP
// [Gao et al., CVPR'22]: given C stacked feature frames
// {X_{i-(C-1)K}, ..., X_i} it predicts the frame K iterations ahead,
// X̄_{i+K} (paper Eq. 11).
//
// Structure: an encoder of [conv, GroupNorm, LeakyReLU] blocks (two of
// them strided), a middle net of SimVP Inception modules (1×1 bottleneck
// followed by parallel group convolutions with different kernel sizes),
// and a decoder of [deconv, GroupNorm, LeakyReLU] blocks. A VAE-like
// branch can be attached to the encoder latent during training to learn
// an invariant feature space (Sec. III-D).
#pragma once

#include <memory>
#include <vector>

#include "models/vae_branch.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace laco {

struct LookAheadConfig {
  int frames = 4;              ///< C, input history length (paper: 4)
  int channels_per_frame = 5;  ///< RUDY, PinRUDY, MacroRegion, flow x/y
  int base_width = 16;         ///< hidden width (paper-scale: 64)
  int inception_blocks = 2;    ///< middle-net depth
  int groups = 4;              ///< group conv / GroupNorm groups
  float leaky_slope = 0.1f;
  bool with_vae = true;        ///< attach the invariant-space branch
};

/// One SimVP Inception module: 1×1 bottleneck then parallel group convs
/// with kernel sizes {3, 5, 7}, concatenated and fused by a 1×1 conv.
class InceptionBlock : public nn::Module {
 public:
  InceptionBlock(int channels, int groups, float leaky_slope);
  nn::Tensor forward(const nn::Tensor& x) const;

 private:
  float slope_;
  nn::Conv2d bottleneck_;
  nn::Conv2d branch3_;
  nn::Conv2d branch5_;
  nn::Conv2d branch7_;
  nn::Conv2d fuse_;
};

class LookAheadModel : public nn::Module {
 public:
  explicit LookAheadModel(LookAheadConfig config);

  struct Output {
    nn::Tensor prediction;  ///< X̄_{i+K}: [N, channels_per_frame, H, W]
    nn::Tensor latent;      ///< encoder output (VAE branch input)
  };

  /// frames: [N, C·channels_per_frame, H, W], H and W divisible by 4.
  Output forward(const nn::Tensor& frames) const;

  /// The VAE branch; only valid when config.with_vae.
  const VaeBranch& vae() const { return *vae_; }
  bool has_vae() const { return vae_ != nullptr; }

  const LookAheadConfig& config() const { return config_; }

 private:
  LookAheadConfig config_;
  // Encoder: stem + two strided stages.
  nn::Conv2d enc1_;
  nn::GroupNorm gn1_;
  nn::Conv2d enc2_;
  nn::GroupNorm gn2_;
  nn::Conv2d enc3_;
  nn::GroupNorm gn3_;
  std::vector<std::unique_ptr<InceptionBlock>> middle_;
  // Decoder: two up stages + head.
  nn::ConvTranspose2d dec1_;
  nn::GroupNorm gn4_;
  nn::ConvTranspose2d dec2_;
  nn::GroupNorm gn5_;
  nn::Conv2d head_;
  std::unique_ptr<VaeBranch> vae_;
};

}  // namespace laco
