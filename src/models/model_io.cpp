#include "models/model_io.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace laco {

bool FeatureScale::save(const std::string& path) const {
  // Atomic publish (write-temp-then-rename), same contract as
  // nn::save_parameters_file: no reader ever sees a partial file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << "feature_scale v1\n";
    for (const float s : scale) out << s << '\n';
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

FeatureScale FeatureScale::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("FeatureScale::load: cannot open '" + path + "'");
  std::string header, version;
  in >> header >> version;
  if (header != "feature_scale") {
    throw std::runtime_error("FeatureScale::load: bad header in '" + path + "'");
  }
  FeatureScale fs;
  for (std::size_t c = 0; c < fs.scale.size(); ++c) {
    if (!(in >> fs.scale[c])) {
      throw std::runtime_error("FeatureScale::load: truncated at channel " + std::to_string(c) +
                               " in '" + path + "'");
    }
  }
  return fs;
}

FeatureScale compute_feature_scale(const std::vector<const FeatureFrame*>& frames) {
  FeatureScale fs;
  for (int c = 0; c < FeatureFrame::kNumChannels; ++c) {
    std::vector<double> magnitudes;
    for (const FeatureFrame* frame : frames) {
      for (const double v : frame->channel(c).data()) magnitudes.push_back(std::abs(v));
    }
    if (magnitudes.empty()) continue;
    const std::size_t q = static_cast<std::size_t>(0.99 * (magnitudes.size() - 1));
    std::nth_element(magnitudes.begin(), magnitudes.begin() + static_cast<std::ptrdiff_t>(q),
                     magnitudes.end());
    const double p99 = magnitudes[q];
    fs.scale[static_cast<std::size_t>(c)] = p99 > 1e-9 ? static_cast<float>(1.0 / p99) : 1.0f;
  }
  return fs;
}

nn::Tensor gridmap_to_tensor(const GridMap& map) {
  std::vector<float> data(map.size());
  for (std::size_t i = 0; i < map.size(); ++i) data[i] = static_cast<float>(map[i]);
  return nn::Tensor::from_data({1, 1, map.ny(), map.nx()}, std::move(data));
}

GridMap tensor_to_gridmap(const nn::Tensor& t, int batch, int channel, const Rect& region) {
  if (t.shape().size() != 4) throw std::invalid_argument("tensor_to_gridmap: expected NCHW");
  const int c = t.dim(1), h = t.dim(2), w = t.dim(3);
  if (batch >= t.dim(0) || channel >= c) throw std::out_of_range("tensor_to_gridmap");
  GridMap map(w, h, region, 0.0);
  const std::size_t base = (static_cast<std::size_t>(batch) * c + channel) *
                           static_cast<std::size_t>(h) * w;
  for (std::size_t i = 0; i < map.size(); ++i) {
    map[i] = static_cast<double>(t.data()[base + i]);
  }
  return map;
}

nn::Tensor frame_to_tensor(const FeatureFrame& frame, const FeatureScale& scale, int channels) {
  const int h = frame.rudy.ny(), w = frame.rudy.nx();
  std::vector<float> data;
  data.reserve(static_cast<std::size_t>(channels) * h * w);
  for (int c = 0; c < channels; ++c) {
    const GridMap& m = frame.channel(c);
    if (m.ny() != h || m.nx() != w) {
      throw std::invalid_argument("frame_to_tensor: channel resolution mismatch");
    }
    const float s = scale.scale[static_cast<std::size_t>(c)];
    for (const double v : m.data()) data.push_back(static_cast<float>(v) * s);
  }
  return nn::Tensor::from_data({1, channels, h, w}, std::move(data));
}

nn::Tensor frames_to_tensor(const std::vector<const FeatureFrame*>& frames,
                            const FeatureScale& scale, int channels) {
  if (frames.empty()) throw std::invalid_argument("frames_to_tensor: no frames");
  const int h = frames[0]->rudy.ny(), w = frames[0]->rudy.nx();
  std::vector<float> data;
  data.reserve(frames.size() * static_cast<std::size_t>(channels) * h * w);
  for (const FeatureFrame* frame : frames) {
    for (int c = 0; c < channels; ++c) {
      const GridMap& m = frame->channel(c);
      if (m.ny() != h || m.nx() != w) {
        throw std::invalid_argument("frames_to_tensor: resolution mismatch across frames");
      }
      const float s = scale.scale[static_cast<std::size_t>(c)];
      for (const double v : m.data()) data.push_back(static_cast<float>(v) * s);
    }
  }
  return nn::Tensor::from_data({1, static_cast<int>(frames.size()) * channels, h, w},
                               std::move(data));
}

}  // namespace laco
