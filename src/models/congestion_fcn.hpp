// The congestion prediction model f (paper Sec. III-E): following
// DREAM-Cong [Liu et al., DATE'21], a fully-convolutional network with
// five convolution and two deconvolution layers. Input is the feature
// stack (3 channels for DREAM-Cong: RUDY, PinRUDY, MacroRegion; 5+ for
// LACO variants that add cell flow and the X_i shortcut), output is a
// 1-channel congestion hotspot map at input resolution.
#pragma once

#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace laco {

struct CongestionFcnConfig {
  int in_channels = 3;
  int base_width = 16;  ///< paper-scale would use 32+; CPU default is 16
  float leaky_slope = 0.1f;
};

class CongestionFcn : public nn::Module {
 public:
  explicit CongestionFcn(CongestionFcnConfig config);

  /// [N, Cin, H, W] → [N, 1, H, W]; H and W must be divisible by 4.
  nn::Tensor forward(const nn::Tensor& x) const;

  const CongestionFcnConfig& config() const { return config_; }

 private:
  CongestionFcnConfig config_;
  nn::Conv2d conv1_, conv2_, conv3_, conv4_, conv5_;
  nn::ConvTranspose2d deconv1_, deconv2_;
};

}  // namespace laco
