#include "models/lookahead_simvp.hpp"

#include "nn/ops.hpp"

namespace laco {

InceptionBlock::InceptionBlock(int channels, int groups, float leaky_slope)
    : slope_(leaky_slope),
      bottleneck_(channels, channels, 1, 1, 0),
      branch3_(channels, channels, 3, 1, -1, groups),
      branch5_(channels, channels, 5, 1, -1, groups),
      branch7_(channels, channels, 7, 1, -1, groups),
      fuse_(channels * 3, channels, 1, 1, 0) {
  register_module("bottleneck", &bottleneck_);
  register_module("branch3", &branch3_);
  register_module("branch5", &branch5_);
  register_module("branch7", &branch7_);
  register_module("fuse", &fuse_);
}

nn::Tensor InceptionBlock::forward(const nn::Tensor& x) const {
  nn::Tensor b = nn::leaky_relu(bottleneck_.forward(x), slope_);
  nn::Tensor p3 = nn::leaky_relu(branch3_.forward(b), slope_);
  nn::Tensor p5 = nn::leaky_relu(branch5_.forward(b), slope_);
  nn::Tensor p7 = nn::leaky_relu(branch7_.forward(b), slope_);
  nn::Tensor fused = fuse_.forward(nn::cat_channels({p3, p5, p7}));
  // Residual connection keeps the middle net stable at depth.
  return nn::add(fused, x);
}

LookAheadModel::LookAheadModel(LookAheadConfig config)
    : config_(config),
      enc1_(config.frames * config.channels_per_frame, config.base_width, 3, 1),
      gn1_(config.groups, config.base_width),
      enc2_(config.base_width, config.base_width * 2, 3, 2, 1),
      gn2_(config.groups, config.base_width * 2),
      enc3_(config.base_width * 2, config.base_width * 2, 3, 2, 1),
      gn3_(config.groups, config.base_width * 2),
      dec1_(config.base_width * 2, config.base_width * 2, 4, 2, 1),
      gn4_(config.groups, config.base_width * 2),
      dec2_(config.base_width * 2, config.base_width, 4, 2, 1),
      gn5_(config.groups, config.base_width),
      head_(config.base_width, config.channels_per_frame, 3, 1) {
  register_module("enc1", &enc1_);
  register_module("gn1", &gn1_);
  register_module("enc2", &enc2_);
  register_module("gn2", &gn2_);
  register_module("enc3", &enc3_);
  register_module("gn3", &gn3_);
  for (int i = 0; i < config.inception_blocks; ++i) {
    middle_.push_back(std::make_unique<InceptionBlock>(config.base_width * 2, config.groups,
                                                       config.leaky_slope));
    register_module("inception" + std::to_string(i), middle_.back().get());
  }
  register_module("dec1", &dec1_);
  register_module("gn4", &gn4_);
  register_module("dec2", &dec2_);
  register_module("gn5", &gn5_);
  register_module("head", &head_);
  if (config.with_vae) {
    VaeBranchConfig vc;
    vc.latent_channels = config.base_width * 2;
    vc.z_channels = std::max(2, config.base_width / 2);
    vc.leaky_slope = config.leaky_slope;
    vae_ = std::make_unique<VaeBranch>(vc);
    register_module("vae", vae_.get());
  }
}

LookAheadModel::Output LookAheadModel::forward(const nn::Tensor& frames) const {
  const float s = config_.leaky_slope;
  nn::Tensor h = nn::leaky_relu(gn1_.forward(enc1_.forward(frames)), s);
  h = nn::leaky_relu(gn2_.forward(enc2_.forward(h)), s);
  h = nn::leaky_relu(gn3_.forward(enc3_.forward(h)), s);
  Output out;
  out.latent = h;
  for (const auto& block : middle_) h = block->forward(h);
  h = nn::leaky_relu(gn4_.forward(dec1_.forward(h)), s);
  h = nn::leaky_relu(gn5_.forward(dec2_.forward(h)), s);
  out.prediction = head_.forward(h);
  return out;
}

}  // namespace laco
