// The VAE-like invariant-feature-space branch (paper Sec. III-D).
// Attached to the look-ahead encoder's latent feature map during
// training only: two conv heads produce mu and log-variance maps, a
// reparameterized sample is decoded back, and the branch contributes
//   KL(N(mu, Sigma) || N(0, I))        (paper Eq. 16)
//   MSE(reconstruction, latent)         (reconstruction loss)
// to the multi-task objective. At inference the branch is skipped, so it
// adds no runtime overhead (paper Sec. III-D, last paragraph).
#pragma once

#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace laco {

struct VaeBranchConfig {
  int latent_channels = 32;
  int z_channels = 8;
  float leaky_slope = 0.1f;
};

class VaeBranch : public nn::Module {
 public:
  explicit VaeBranch(VaeBranchConfig config);

  struct Output {
    nn::Tensor mu;              ///< [N, z, h, w]
    nn::Tensor logvar;          ///< [N, z, h, w]
    nn::Tensor reconstruction;  ///< [N, latent, h, w]
  };

  /// Encodes, reparameterizes with noise from `seed`, decodes.
  Output forward(const nn::Tensor& latent, unsigned seed) const;

  /// Combined branch loss: kl_weight · KL + recon_weight · MSE.
  nn::Tensor loss(const Output& out, const nn::Tensor& latent, float kl_weight,
                  float recon_weight) const;

 private:
  VaeBranchConfig config_;
  nn::Conv2d enc_;
  nn::Conv2d mu_head_;
  nn::Conv2d logvar_head_;
  nn::Conv2d dec1_;
  nn::Conv2d dec2_;
};

}  // namespace laco
