#include "models/vae_branch.hpp"

#include <random>

#include "nn/ops.hpp"

namespace laco {

VaeBranch::VaeBranch(VaeBranchConfig config)
    : config_(config),
      enc_(config.latent_channels, config.latent_channels, 3, 1),
      mu_head_(config.latent_channels, config.z_channels, 1, 1, 0),
      logvar_head_(config.latent_channels, config.z_channels, 1, 1, 0),
      dec1_(config.z_channels, config.latent_channels, 3, 1),
      dec2_(config.latent_channels, config.latent_channels, 3, 1) {
  register_module("enc", &enc_);
  register_module("mu_head", &mu_head_);
  register_module("logvar_head", &logvar_head_);
  register_module("dec1", &dec1_);
  register_module("dec2", &dec2_);
}

VaeBranch::Output VaeBranch::forward(const nn::Tensor& latent, unsigned seed) const {
  const float s = config_.leaky_slope;
  nn::Tensor h = nn::leaky_relu(enc_.forward(latent), s);
  Output out;
  out.mu = mu_head_.forward(h);
  out.logvar = logvar_head_.forward(h);

  // Reparameterization: z = mu + eps * exp(logvar / 2), eps ~ N(0, I).
  nn::Tensor eps = nn::Tensor::zeros(out.mu.shape());
  std::mt19937 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (float& v : eps.data()) v = dist(rng);
  nn::Tensor z = nn::add(out.mu, nn::mul(eps, nn::exp_op(nn::scale(out.logvar, 0.5f))));

  nn::Tensor d = nn::leaky_relu(dec1_.forward(z), s);
  out.reconstruction = dec2_.forward(d);
  return out;
}

nn::Tensor VaeBranch::loss(const Output& out, const nn::Tensor& latent, float kl_weight,
                           float recon_weight) const {
  // Normalize KL by element count so the weight is resolution-invariant.
  nn::Tensor kl = nn::scale(nn::vae_kl_loss(out.mu, out.logvar),
                            1.0f / static_cast<float>(out.mu.numel() / out.mu.dim(0)));
  nn::Tensor recon = nn::mse_loss(out.reconstruction, latent);
  return nn::add(nn::scale(kl, kl_weight), nn::scale(recon, recon_weight));
}

}  // namespace laco
