// Glue between the feature world (GridMap / FeatureFrame) and the
// tensor world (nn::Tensor, NCHW with H=ny rows, W=nx columns), plus the
// per-channel linear normalization applied before the networks.
//
// Normalization is *multiplicative only* so the gradient chain from the
// congestion penalty back to cell coordinates (paper Sec. III-E) just
// scales: dL/dfeature = scale · dL/dtensor_entry.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "features/feature_stack.hpp"
#include "gridmap/grid_map.hpp"
#include "nn/tensor.hpp"

namespace laco {

/// Per-channel multiplicative scale for the 5 feature channels.
struct FeatureScale {
  std::array<float, FeatureFrame::kNumChannels> scale{1.0f, 1.0f, 1.0f, 1.0f, 1.0f};

  bool save(const std::string& path) const;
  static FeatureScale load(const std::string& path);
};

/// Derives scales that map each channel's observed 99th-percentile
/// magnitude to 1.0 across the given frames (robust to hotspots).
FeatureScale compute_feature_scale(const std::vector<const FeatureFrame*>& frames);

/// [1, 1, H, W] tensor from a map.
nn::Tensor gridmap_to_tensor(const GridMap& map);
/// Extracts (batch, channel) of an NCHW tensor into a map over `region`.
GridMap tensor_to_gridmap(const nn::Tensor& t, int batch, int channel, const Rect& region);

/// [1, nc, H, W] tensor of one frame's first `channels` channels (3 =
/// RUDY/PinRUDY/MacroRegion, 5 adds the flow pair), scaled.
nn::Tensor frame_to_tensor(const FeatureFrame& frame, const FeatureScale& scale,
                           int channels = FeatureFrame::kNumChannels);
/// [1, nc·C, H, W] stack of C frames, oldest first (the look-ahead input).
nn::Tensor frames_to_tensor(const std::vector<const FeatureFrame*>& frames,
                            const FeatureScale& scale,
                            int channels = FeatureFrame::kNumChannels);

}  // namespace laco
