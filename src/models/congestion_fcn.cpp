#include "models/congestion_fcn.hpp"

#include "nn/ops.hpp"

namespace laco {

CongestionFcn::CongestionFcn(CongestionFcnConfig config)
    : config_(config),
      // Five convolutions: two strided stages squeeze spatial context,
      // mirroring the encoder of [22]'s FCN.
      conv1_(config.in_channels, config.base_width, 3, 1),
      conv2_(config.base_width, config.base_width, 3, 2, 1),
      conv3_(config.base_width, config.base_width * 2, 3, 2, 1),
      conv4_(config.base_width * 2, config.base_width * 2, 3, 1),
      conv5_(config.base_width * 2, config.base_width * 2, 3, 1),
      // Two deconvolutions restore input resolution.
      deconv1_(config.base_width * 2, config.base_width, 4, 2, 1),
      deconv2_(config.base_width, 1, 4, 2, 1) {
  register_module("conv1", &conv1_);
  register_module("conv2", &conv2_);
  register_module("conv3", &conv3_);
  register_module("conv4", &conv4_);
  register_module("conv5", &conv5_);
  register_module("deconv1", &deconv1_);
  register_module("deconv2", &deconv2_);
}

nn::Tensor CongestionFcn::forward(const nn::Tensor& x) const {
  const float s = config_.leaky_slope;
  nn::Tensor h = nn::leaky_relu(conv1_.forward(x), s);
  h = nn::leaky_relu(conv2_.forward(h), s);
  h = nn::leaky_relu(conv3_.forward(h), s);
  h = nn::leaky_relu(conv4_.forward(h), s);
  h = nn::leaky_relu(conv5_.forward(h), s);
  h = nn::leaky_relu(deconv1_.forward(h), s);
  // Final layer is linear: congestion overflow ratios are unbounded above.
  return deconv2_.forward(h);
}

}  // namespace laco
