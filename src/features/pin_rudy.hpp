// PinRUDY, paper Eqs. (5)–(6): each pin deposits its net's RUDY value
// (1/w + 1/h) into the single grid-cell containing the pin. The backward
// pass follows the RUDY pattern (paper Sec. III-E item 2): only the net
// bounding-box value term carries gradient; the bin-membership function
// is piecewise constant and contributes none.
#pragma once

#include <vector>

#include "gridmap/grid_map.hpp"
#include "netlist/design.hpp"

namespace laco {

GridMap compute_pin_rudy(const Design& design, int nx, int ny);

/// Accumulates dL/dx, dL/dy per cell (indexed by CellId) given
/// dL/dPinRUDY[k,l]. Fixed cells receive no gradient.
void pin_rudy_backward(const Design& design, const GridMap& upstream,
                       std::vector<double>& grad_x, std::vector<double>& grad_y);

}  // namespace laco
