#include "features/rudy.hpp"

#include <algorithm>
#include <stdexcept>

namespace laco {
namespace {

/// Widened net box and the pins attaining each extreme.
struct NetBox {
  Rect box;          ///< raw pin bounding box
  double w_eff = 0;  ///< max(width, bin_w): keeps 1/w finite
  double h_eff = 0;
  PinId at_xl = -1, at_xh = -1, at_yl = -1, at_yh = -1;
};

NetBox net_box(const Design& design, const Net& net, double min_w, double min_h) {
  NetBox nb;
  bool first = true;
  for (const PinId pid : net.pins) {
    const Point p = design.pin_position(pid);
    if (first || p.x < nb.box.xl) { nb.box.xl = p.x; nb.at_xl = pid; }
    if (first || p.x > nb.box.xh) { nb.box.xh = p.x; nb.at_xh = pid; }
    if (first || p.y < nb.box.yl) { nb.box.yl = p.y; nb.at_yl = pid; }
    if (first || p.y > nb.box.yh) { nb.box.yh = p.y; nb.at_yh = pid; }
    first = false;
  }
  nb.w_eff = std::max(nb.box.width(), min_w);
  nb.h_eff = std::max(nb.box.height(), min_h);
  return nb;
}

}  // namespace

GridMap compute_rudy(const Design& design, int nx, int ny) {
  GridMap map(nx, ny, design.core(), 0.0);
  for (const Net& net : design.nets()) {
    if (net.degree() < 2) continue;
    const NetBox nb = net_box(design, net, map.bin_width(), map.bin_height());
    const double value = net.weight * (1.0 / nb.w_eff + 1.0 / nb.h_eff);
    // Spread over the *effective* box so degenerate nets still occupy a bin.
    const Point c = nb.box.center();
    const Rect spread{c.x - nb.w_eff * 0.5, c.y - nb.h_eff * 0.5,
                      c.x + nb.w_eff * 0.5, c.y + nb.h_eff * 0.5};
    map.add_rect(spread, value, /*density_mode=*/false);
  }
  return map;
}

void rudy_backward(const Design& design, const GridMap& upstream,
                   std::vector<double>& grad_x, std::vector<double>& grad_y) {
  if (grad_x.size() != design.num_cells() || grad_y.size() != design.num_cells()) {
    throw std::invalid_argument("rudy_backward: gradient buffers must have num_cells entries");
  }
  const double min_w = upstream.bin_width();
  const double min_h = upstream.bin_height();
  for (const Net& net : design.nets()) {
    if (net.degree() < 2) continue;
    const NetBox nb = net_box(design, net, min_w, min_h);
    // dL/dvalue = sum over bins of upstream * overlap fraction.
    const Point c = nb.box.center();
    const Rect spread{c.x - nb.w_eff * 0.5, c.y - nb.h_eff * 0.5,
                      c.x + nb.w_eff * 0.5, c.y + nb.h_eff * 0.5};
    int k0, k1, l0, l1;
    upstream.bin_range(spread, k0, k1, l0, l1);
    double s = 0.0;
    for (int l = l0; l <= l1; ++l) {
      for (int k = k0; k <= k1; ++k) {
        const double ov = overlap_area(upstream.bin_rect(k, l), spread);
        if (ov > 0.0) s += upstream.at(k, l) * ov / upstream.bin_area();
      }
    }
    if (s == 0.0) continue;
    s *= net.weight;
    // Eq. 17b: value = 1/w + 1/h; only boundary pins move the value.
    // Clamped (degenerate) axes have zero gradient: widening dominates.
    const auto add = [&](PinId pid, double gx, double gy) {
      const CellId cid = design.pin(pid).cell;
      const Cell& cell = design.cell(cid);
      if (cell.fixed) return;
      grad_x[static_cast<std::size_t>(cid)] += gx;
      grad_y[static_cast<std::size_t>(cid)] += gy;
    };
    if (nb.box.width() >= min_w) {
      const double d = s / (nb.w_eff * nb.w_eff);
      add(nb.at_xh, -d, 0.0);
      add(nb.at_xl, +d, 0.0);
    }
    if (nb.box.height() >= min_h) {
      const double d = s / (nb.h_eff * nb.h_eff);
      add(nb.at_yh, 0.0, -d);
      add(nb.at_yl, 0.0, +d);
    }
  }
}

}  // namespace laco
