#include "features/cell_flow.hpp"

#include <stdexcept>

namespace laco {
namespace {

/// Per-bin aggregation state shared by the three schemes.
struct BinState {
  int count = 0;
  double best_size = -1.0;  // sampling: size of the largest cell so far
  double best_fx = 0.0, best_fy = 0.0;
  double sum_fx = 0.0, sum_fy = 0.0;            // averaging
  double wsum_fx = 0.0, wsum_fy = 0.0;          // weighted-sum
};

}  // namespace

const char* to_string(QuasiVoxScheme scheme) {
  switch (scheme) {
    case QuasiVoxScheme::kSampling: return "sampling";
    case QuasiVoxScheme::kAveraging: return "averaging";
    case QuasiVoxScheme::kWeightedSum: return "weighted-sum";
  }
  return "?";
}

CellFlow compute_cell_flow(const Design& design, const std::vector<double>& prev_x,
                           const std::vector<double>& prev_y, int nx, int ny,
                           QuasiVoxScheme scheme) {
  const auto& movable = design.movable_cells();
  if (prev_x.size() != movable.size() || prev_y.size() != movable.size()) {
    throw std::invalid_argument("compute_cell_flow: prev position size mismatch");
  }
  CellFlow out{GridMap(nx, ny, design.core(), 0.0), GridMap(nx, ny, design.core(), 0.0)};
  std::vector<BinState> bins(static_cast<std::size_t>(nx) * ny);

  for (std::size_t i = 0; i < movable.size(); ++i) {
    const Cell& cell = design.cell(movable[i]);
    const Point now = cell.center();
    const double fx = now.x - prev_x[i];
    const double fy = now.y - prev_y[i];
    const GridIndex b = out.flow_x.bin_of(now);
    BinState& st = bins[static_cast<std::size_t>(b.l) * nx + b.k];
    st.count += 1;
    const double s = cell.area();
    if (s > st.best_size) {
      st.best_size = s;
      st.best_fx = fx;
      st.best_fy = fy;
    }
    st.sum_fx += fx;
    st.sum_fy += fy;
    st.wsum_fx += s * fx;
    st.wsum_fy += s * fy;
  }

  for (int l = 0; l < ny; ++l) {
    for (int k = 0; k < nx; ++k) {
      const BinState& st = bins[static_cast<std::size_t>(l) * nx + k];
      if (st.count == 0) continue;
      switch (scheme) {
        case QuasiVoxScheme::kSampling:
          out.flow_x.at(k, l) = st.best_size * st.best_fx;
          out.flow_y.at(k, l) = st.best_size * st.best_fy;
          break;
        case QuasiVoxScheme::kAveraging:
          out.flow_x.at(k, l) = st.sum_fx / st.count;
          out.flow_y.at(k, l) = st.sum_fy / st.count;
          break;
        case QuasiVoxScheme::kWeightedSum:
          out.flow_x.at(k, l) = st.wsum_fx / st.count;
          out.flow_y.at(k, l) = st.wsum_fy / st.count;
          break;
      }
    }
  }
  return out;
}

void cell_flow_backward(const Design& design, const GridMap& upstream_x,
                        const GridMap& upstream_y, QuasiVoxScheme scheme,
                        std::vector<double>& grad_x, std::vector<double>& grad_y) {
  if (grad_x.size() != design.num_cells() || grad_y.size() != design.num_cells()) {
    throw std::invalid_argument("cell_flow_backward: gradient buffers must have num_cells entries");
  }
  const int nx = upstream_x.nx();
  const int ny = upstream_x.ny();
  const auto& movable = design.movable_cells();

  // First pass: per-bin cell count and (for sampling) the selected cell.
  std::vector<int> count(static_cast<std::size_t>(nx) * ny, 0);
  std::vector<double> best_size(static_cast<std::size_t>(nx) * ny, -1.0);
  std::vector<CellId> best_cell(static_cast<std::size_t>(nx) * ny, kNoCell);
  for (const CellId cid : movable) {
    const Cell& cell = design.cell(cid);
    const GridIndex b = upstream_x.bin_of(cell.center());
    const std::size_t idx = static_cast<std::size_t>(b.l) * nx + b.k;
    count[idx] += 1;
    if (cell.area() > best_size[idx]) {
      best_size[idx] = cell.area();
      best_cell[idx] = cid;
    }
  }

  for (const CellId cid : movable) {
    const Cell& cell = design.cell(cid);
    const GridIndex b = upstream_x.bin_of(cell.center());
    const std::size_t idx = static_cast<std::size_t>(b.l) * nx + b.k;
    double coeff = 0.0;
    switch (scheme) {
      case QuasiVoxScheme::kSampling:
        coeff = (cid == best_cell[idx]) ? cell.area() : 0.0;
        break;
      case QuasiVoxScheme::kAveraging:
        coeff = 1.0 / count[idx];
        break;
      case QuasiVoxScheme::kWeightedSum:
        coeff = cell.area() / count[idx];
        break;
    }
    if (coeff == 0.0) continue;
    grad_x[static_cast<std::size_t>(cid)] += coeff * upstream_x.at(b.k, b.l);
    grad_y[static_cast<std::size_t>(cid)] += coeff * upstream_y.at(b.k, b.l);
  }
}

}  // namespace laco
