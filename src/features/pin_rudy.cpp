#include "features/pin_rudy.hpp"

#include <algorithm>
#include <stdexcept>

namespace laco {
namespace {

struct Extremes {
  double xl, xh, yl, yh;
  PinId at_xl = -1, at_xh = -1, at_yl = -1, at_yh = -1;
};

Extremes net_extremes(const Design& design, const Net& net) {
  Extremes e{0, 0, 0, 0, -1, -1, -1, -1};
  bool first = true;
  for (const PinId pid : net.pins) {
    const Point p = design.pin_position(pid);
    if (first || p.x < e.xl) { e.xl = p.x; e.at_xl = pid; }
    if (first || p.x > e.xh) { e.xh = p.x; e.at_xh = pid; }
    if (first || p.y < e.yl) { e.yl = p.y; e.at_yl = pid; }
    if (first || p.y > e.yh) { e.yh = p.y; e.at_yh = pid; }
    first = false;
  }
  return e;
}

}  // namespace

GridMap compute_pin_rudy(const Design& design, int nx, int ny) {
  GridMap map(nx, ny, design.core(), 0.0);
  for (const Net& net : design.nets()) {
    if (net.degree() < 2) continue;
    const Extremes e = net_extremes(design, net);
    const double w_eff = std::max(e.xh - e.xl, map.bin_width());
    const double h_eff = std::max(e.yh - e.yl, map.bin_height());
    const double value = net.weight * (1.0 / w_eff + 1.0 / h_eff);
    for (const PinId pid : net.pins) {
      const GridIndex b = map.bin_of(design.pin_position(pid));
      map.at(b.k, b.l) += value;
    }
  }
  return map;
}

void pin_rudy_backward(const Design& design, const GridMap& upstream,
                       std::vector<double>& grad_x, std::vector<double>& grad_y) {
  if (grad_x.size() != design.num_cells() || grad_y.size() != design.num_cells()) {
    throw std::invalid_argument("pin_rudy_backward: gradient buffers must have num_cells entries");
  }
  for (const Net& net : design.nets()) {
    if (net.degree() < 2) continue;
    const Extremes e = net_extremes(design, net);
    const double w = e.xh - e.xl;
    const double h = e.yh - e.yl;
    const double w_eff = std::max(w, upstream.bin_width());
    const double h_eff = std::max(h, upstream.bin_height());
    // dL/dvalue = sum of upstream at every pin's bin (each pin deposits value once).
    double s = 0.0;
    for (const PinId pid : net.pins) {
      const GridIndex b = upstream.bin_of(design.pin_position(pid));
      s += upstream.at(b.k, b.l);
    }
    if (s == 0.0) continue;
    s *= net.weight;
    const auto add = [&](PinId pid, double gx, double gy) {
      const CellId cid = design.pin(pid).cell;
      if (design.cell(cid).fixed) return;
      grad_x[static_cast<std::size_t>(cid)] += gx;
      grad_y[static_cast<std::size_t>(cid)] += gy;
    };
    if (w >= upstream.bin_width()) {
      const double d = s / (w_eff * w_eff);
      add(e.at_xh, -d, 0.0);
      add(e.at_xl, +d, 0.0);
    }
    if (h >= upstream.bin_height()) {
      const double d = s / (h_eff * h_eff);
      add(e.at_yh, 0.0, -d);
      add(e.at_yl, 0.0, +d);
    }
  }
}

}  // namespace laco
