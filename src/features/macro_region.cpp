#include "features/macro_region.hpp"

namespace laco {

GridMap compute_macro_region(const Design& design, int nx, int ny) {
  GridMap coverage(nx, ny, design.core(), 0.0);
  for (const Cell& cell : design.cells()) {
    if (cell.kind != CellKind::kMacro) continue;
    coverage.add_rect(cell.rect(), 1.0, /*density_mode=*/false);
  }
  GridMap out(nx, ny, design.core(), 0.0);
  for (std::size_t i = 0; i < coverage.size(); ++i) {
    out[i] = coverage[i] > 0.5 ? 1.0 : 0.0;
  }
  return out;
}

}  // namespace laco
