// RUDY (Rectangular Uniform wire DensitY), paper Eqs. (2)–(4), and its
// analytic gradient w.r.t. cell coordinates, paper Eq. (17).
//
// For each net e with pin bounding box [xl, xh] × [yl, yh], the net
// contributes the constant value (1/w + 1/h) inside its box; the
// grid-cell value is the overlap-area-weighted sum over nets. Degenerate
// boxes are widened to one grid-cell so the value (and gradient) stays
// finite — the same guard DREAMPlace-style implementations use.
#pragma once

#include <vector>

#include "gridmap/grid_map.hpp"
#include "netlist/design.hpp"

namespace laco {

/// Forward RUDY map on an nx × ny grid over the design core.
GridMap compute_rudy(const Design& design, int nx, int ny);

/// Accumulates the paper's Eq. (17) gradient: given dL/dRUDY[k,l],
/// adds dL/dx, dL/dy for each *cell* (indexed by CellId) into grad_x /
/// grad_y. Only the pins attaining a net's bounding-box extremes carry
/// gradient (the value term of Eq. 17b); fixed cells receive none.
void rudy_backward(const Design& design, const GridMap& upstream,
                   std::vector<double>& grad_x, std::vector<double>& grad_y);

}  // namespace laco
