// FeatureStack bundles the paper's per-iteration frame
//   X_i = [RUDY, PinRUDY, MacroRegion, CellFlow_x, CellFlow_y]
// (Sec. III-A) and provides the combined backward pass that routes
// upstream gradients on each channel back to movable-cell coordinates
// — the ∇_x X_i / ∇_y X_i pieces of paper Sec. III-E.
#pragma once

#include <optional>
#include <vector>

#include "features/cell_flow.hpp"
#include "gridmap/grid_map.hpp"
#include "netlist/design.hpp"

namespace laco {

/// One frame of placement features. flow_* are zero maps when the frame
/// was computed without a previous snapshot (first iterations).
struct FeatureFrame {
  GridMap rudy;
  GridMap pin_rudy;
  GridMap macro_region;
  GridMap flow_x;
  GridMap flow_y;
  int iteration = 0;

  static constexpr int kNumChannels = 5;
  const GridMap& channel(int c) const;
};

/// Upstream gradients for the differentiable channels of a frame.
/// MacroRegion is constant (zero gradient) and has no slot.
struct FeatureFrameGrad {
  GridMap d_rudy;
  GridMap d_pin_rudy;
  GridMap d_flow_x;
  GridMap d_flow_y;
};

struct FeatureConfig {
  int nx = 64;
  int ny = 64;
  QuasiVoxScheme scheme = QuasiVoxScheme::kWeightedSum;
  bool with_flow = true;
};

class FeatureExtractor {
 public:
  explicit FeatureExtractor(FeatureConfig config) : config_(config) {}
  const FeatureConfig& config() const { return config_; }

  /// Computes X_i from the design's current cell positions. When
  /// `prev_x`/`prev_y` (movable order, iteration i−K) are provided and
  /// flow is enabled, the cell-flow channels are populated.
  FeatureFrame compute(const Design& design,
                       const std::vector<double>* prev_x = nullptr,
                       const std::vector<double>* prev_y = nullptr,
                       int iteration = 0) const;

  /// Combined backward: accumulates dL/d(position) for movable cells (in
  /// Design::movable_cells() order) given upstream channel gradients.
  void backward(const Design& design, const FeatureFrameGrad& upstream,
                std::vector<double>& grad_x_movable,
                std::vector<double>& grad_y_movable) const;

 private:
  FeatureConfig config_;
};

}  // namespace laco
