// MacroRegion, paper Eq. (7): 1 where a grid-cell lies inside a fixed
// macro, 0 elsewhere. Macros never move (paper Sec. III-E item 3), so
// the feature carries zero gradient and there is no backward function.
#pragma once

#include "gridmap/grid_map.hpp"
#include "netlist/design.hpp"

namespace laco {

/// Binary macro-coverage map. A grid-cell counts as "in a macro" when
/// more than half of its area is covered by macro cells.
GridMap compute_macro_region(const Design& design, int nx, int ny);

}  // namespace laco
