// Cell flow, the paper's optical-flow analog (Sec. III-B). For each
// movable cell j, the per-cell flow between iterations i−K and i is
//   c'_j = (x_{i,j} − x_{i−K,j}, y_{i,j} − y_{i−K,j}).
// The per-cell flows are downsampled onto the feature grid by one of
// three quasi-voxelization schemes, paper Eqs. (13)–(15):
//   sampling      c(k,l) = s_ĵ · c'_ĵ,   ĵ = argmax_j s_j
//   averaging     c(k,l) = (1/N) Σ c'_j
//   weighted-sum  c(k,l) = Σ (s_j/N) · c'_j
// producing a 2 × M × N field (horizontal + vertical components).
//
// Gradients (paper Sec. III-E item 4): w.r.t. the *current* positions,
// d c(k,l) / d x_j is s_ĵ (sampling, selected cell only), 1/N
// (averaging), or s_j/N (weighted-sum).
#pragma once

#include <vector>

#include "gridmap/grid_map.hpp"
#include "netlist/design.hpp"

namespace laco {

enum class QuasiVoxScheme { kSampling, kAveraging, kWeightedSum };

const char* to_string(QuasiVoxScheme scheme);

/// Horizontal (x) and vertical (y) downsampled flow components.
struct CellFlow {
  GridMap flow_x;
  GridMap flow_y;
};

/// Computes the downsampled cell flow. `prev_x` / `prev_y` are movable-
/// cell center coordinates at iteration i−K, in Design::movable_cells()
/// order; current positions come from the design itself. Cells are
/// assigned to grid-cells by their *current* centers. `s_j` is cell area.
CellFlow compute_cell_flow(const Design& design, const std::vector<double>& prev_x,
                           const std::vector<double>& prev_y, int nx, int ny,
                           QuasiVoxScheme scheme);

/// Accumulates dL/dx, dL/dy per cell (CellId-indexed) given upstream
/// gradients on both flow components.
void cell_flow_backward(const Design& design, const GridMap& upstream_x,
                        const GridMap& upstream_y, QuasiVoxScheme scheme,
                        std::vector<double>& grad_x, std::vector<double>& grad_y);

}  // namespace laco
