#include "features/feature_stack.hpp"

#include <stdexcept>

#include "features/macro_region.hpp"
#include "features/pin_rudy.hpp"
#include "features/rudy.hpp"

namespace laco {

const GridMap& FeatureFrame::channel(int c) const {
  switch (c) {
    case 0: return rudy;
    case 1: return pin_rudy;
    case 2: return macro_region;
    case 3: return flow_x;
    case 4: return flow_y;
    default: throw std::out_of_range("FeatureFrame::channel");
  }
}

FeatureFrame FeatureExtractor::compute(const Design& design,
                                       const std::vector<double>* prev_x,
                                       const std::vector<double>* prev_y,
                                       int iteration) const {
  FeatureFrame frame{
      compute_rudy(design, config_.nx, config_.ny),
      compute_pin_rudy(design, config_.nx, config_.ny),
      compute_macro_region(design, config_.nx, config_.ny),
      GridMap(config_.nx, config_.ny, design.core(), 0.0),
      GridMap(config_.nx, config_.ny, design.core(), 0.0),
      iteration,
  };
  if (config_.with_flow && prev_x != nullptr && prev_y != nullptr) {
    CellFlow flow = compute_cell_flow(design, *prev_x, *prev_y, config_.nx, config_.ny,
                                      config_.scheme);
    frame.flow_x = std::move(flow.flow_x);
    frame.flow_y = std::move(flow.flow_y);
  }
  return frame;
}

void FeatureExtractor::backward(const Design& design, const FeatureFrameGrad& upstream,
                                std::vector<double>& grad_x_movable,
                                std::vector<double>& grad_y_movable) const {
  std::vector<double> gx(design.num_cells(), 0.0);
  std::vector<double> gy(design.num_cells(), 0.0);
  rudy_backward(design, upstream.d_rudy, gx, gy);
  pin_rudy_backward(design, upstream.d_pin_rudy, gx, gy);
  if (config_.with_flow) {
    cell_flow_backward(design, upstream.d_flow_x, upstream.d_flow_y, config_.scheme, gx, gy);
  }
  const auto& movable = design.movable_cells();
  grad_x_movable.assign(movable.size(), 0.0);
  grad_y_movable.assign(movable.size(), 0.0);
  for (std::size_t i = 0; i < movable.size(); ++i) {
    grad_x_movable[i] = gx[static_cast<std::size_t>(movable[i])];
    grad_y_movable[i] = gy[static_cast<std::size_t>(movable[i])];
  }
}

}  // namespace laco
