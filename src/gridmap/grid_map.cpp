#include "gridmap/grid_map.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/check.hpp"

namespace laco {

GridMap::GridMap(int nx, int ny, Rect region, double fill)
    : nx_(nx), ny_(ny), region_(region) {
  if (nx <= 0 || ny <= 0) throw std::invalid_argument("GridMap: non-positive resolution");
  if (!(region.width() > 0.0) || !(region.height() > 0.0)) {
    throw std::invalid_argument("GridMap: degenerate region");
  }
  bin_w_ = region.width() / nx;
  bin_h_ = region.height() / ny;
  data_.assign(static_cast<std::size_t>(nx) * ny, fill);
}

std::size_t GridMap::index(int k, int l) const {
  // LACO_CHECK (not assert): an out-of-range bin index in a Release
  // build must abort rather than silently corrupt congestion maps.
  LACO_CHECK(k >= 0 && k < nx_ && l >= 0 && l < ny_);
  return static_cast<std::size_t>(l) * nx_ + k;
}

GridIndex GridMap::bin_of(Point p) const {
  int k = static_cast<int>((p.x - region_.xl) / bin_w_);
  int l = static_cast<int>((p.y - region_.yl) / bin_h_);
  k = std::clamp(k, 0, nx_ - 1);
  l = std::clamp(l, 0, ny_ - 1);
  return {k, l};
}

Rect GridMap::bin_rect(int k, int l) const {
  return {region_.xl + k * bin_w_, region_.yl + l * bin_h_,
          region_.xl + (k + 1) * bin_w_, region_.yl + (l + 1) * bin_h_};
}

void GridMap::bin_range(const Rect& r, int& k0, int& k1, int& l0, int& l1) const {
  k0 = std::clamp(static_cast<int>((r.xl - region_.xl) / bin_w_), 0, nx_ - 1);
  k1 = std::clamp(static_cast<int>((r.xh - region_.xl) / bin_w_), 0, nx_ - 1);
  l0 = std::clamp(static_cast<int>((r.yl - region_.yl) / bin_h_), 0, ny_ - 1);
  l1 = std::clamp(static_cast<int>((r.yh - region_.yl) / bin_h_), 0, ny_ - 1);
}

void GridMap::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

void GridMap::add_rect(const Rect& r, double value, bool density_mode) {
  if (!r.valid() || r.area() <= 0.0) {
    // Degenerate rectangles (e.g. single-pin nets) contribute to the
    // single bin containing their center.
    const GridIndex b = bin_of(r.center());
    at(b.k, b.l) += value;
    return;
  }
  int k0, k1, l0, l1;
  bin_range(r, k0, k1, l0, l1);
  const double inv_area = density_mode ? 1.0 / r.area() : 1.0 / bin_area();
  for (int l = l0; l <= l1; ++l) {
    for (int k = k0; k <= k1; ++k) {
      const double ov = overlap_area(bin_rect(k, l), r);
      if (ov > 0.0) at(k, l) += value * ov * inv_area;
    }
  }
}

double GridMap::sample_bilinear(Point p) const {
  // Sample sites are bin centers; clamp to the border band.
  const double gx = (p.x - region_.xl) / bin_w_ - 0.5;
  const double gy = (p.y - region_.yl) / bin_h_ - 0.5;
  const int k0 = std::clamp(static_cast<int>(std::floor(gx)), 0, nx_ - 1);
  const int l0 = std::clamp(static_cast<int>(std::floor(gy)), 0, ny_ - 1);
  const int k1 = std::min(k0 + 1, nx_ - 1);
  const int l1 = std::min(l0 + 1, ny_ - 1);
  const double tx = std::clamp(gx - k0, 0.0, 1.0);
  const double ty = std::clamp(gy - l0, 0.0, 1.0);
  const double a = at(k0, l0) * (1 - tx) + at(k1, l0) * tx;
  const double b = at(k0, l1) * (1 - tx) + at(k1, l1) * tx;
  return a * (1 - ty) + b * ty;
}

double GridMap::min() const { return *std::min_element(data_.begin(), data_.end()); }
double GridMap::max() const { return *std::max_element(data_.begin(), data_.end()); }
double GridMap::sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0); }
double GridMap::mean() const { return data_.empty() ? 0.0 : sum() / data_.size(); }

GridMap& GridMap::operator+=(const GridMap& other) {
  if (other.nx_ != nx_ || other.ny_ != ny_) throw std::invalid_argument("GridMap +=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

GridMap& GridMap::operator-=(const GridMap& other) {
  if (other.nx_ != nx_ || other.ny_ != ny_) throw std::invalid_argument("GridMap -=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

GridMap& GridMap::operator*=(double scale) {
  for (double& v : data_) v *= scale;
  return *this;
}

GridMap GridMap::resampled(int new_nx, int new_ny) const {
  GridMap out(new_nx, new_ny, region_, 0.0);
  // Area-weighted average: each output bin averages the input field over
  // its footprint, which preserves means under both up and downsampling.
  for (int l = 0; l < new_ny; ++l) {
    for (int k = 0; k < new_nx; ++k) {
      const Rect target = out.bin_rect(k, l);
      int k0, k1, l0, l1;
      bin_range(target, k0, k1, l0, l1);
      double acc = 0.0;
      for (int il = l0; il <= l1; ++il) {
        for (int ik = k0; ik <= k1; ++ik) {
          acc += at(ik, il) * overlap_area(bin_rect(ik, il), target);
        }
      }
      out.at(k, l) = acc / target.area();
    }
  }
  return out;
}

double GridMap::l1_distance(const GridMap& a, const GridMap& b) {
  if (a.nx() != b.nx() || a.ny() != b.ny()) throw std::invalid_argument("l1_distance: shape mismatch");
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d;
}

}  // namespace laco
