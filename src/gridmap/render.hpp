// Terminal rendering of GridMaps — congestion maps, density maps, RUDY
// — as ASCII heatmaps. Used by examples and benches to make results
// inspectable without a plotting stack.
#pragma once

#include <string>

#include "gridmap/grid_map.hpp"

namespace laco {

struct RenderOptions {
  int max_width = 64;   ///< downsample wider maps to at most this many columns
  int max_height = 32;
  /// Ramp from low to high; default has 10 levels.
  std::string ramp = " .:-=+*#%@";
  /// Fixed scale bounds; if lo >= hi, the map's min/max are used.
  double lo = 0.0;
  double hi = 0.0;
};

/// Renders the map north-up (row ny-1 first). Appends a legend line with
/// the value range.
std::string ascii_heatmap(const GridMap& map, const RenderOptions& options = {});

}  // namespace laco
