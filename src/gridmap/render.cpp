#include "gridmap/render.hpp"

#include <algorithm>
#include <sstream>

namespace laco {

std::string ascii_heatmap(const GridMap& map, const RenderOptions& options) {
  const GridMap* source = &map;
  GridMap resampled_storage;
  if (map.nx() > options.max_width || map.ny() > options.max_height) {
    const int nx = std::min(map.nx(), options.max_width);
    const int ny = std::min(map.ny(), options.max_height);
    resampled_storage = map.resampled(nx, ny);
    source = &resampled_storage;
  }
  double lo = options.lo, hi = options.hi;
  if (!(lo < hi)) {
    lo = source->min();
    hi = source->max();
  }
  const double span = hi - lo;
  const std::string& ramp = options.ramp;
  std::ostringstream os;
  for (int l = source->ny() - 1; l >= 0; --l) {
    for (int k = 0; k < source->nx(); ++k) {
      double t = span > 0.0 ? (source->at(k, l) - lo) / span : 0.0;
      t = std::clamp(t, 0.0, 1.0);
      const std::size_t idx = std::min(ramp.size() - 1,
                                       static_cast<std::size_t>(t * static_cast<double>(ramp.size())));
      os << ramp[idx];
    }
    os << '\n';
  }
  os << "[" << lo << " '" << ramp.front() << "' .. '" << ramp.back() << "' " << hi << "]\n";
  return os.str();
}

}  // namespace laco
