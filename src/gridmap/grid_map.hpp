// GridMap: a dense 2D scalar field over the layout region, divided into
// nx × ny grid-cells ("bins" in placement, "GCells" in routing). It is
// the common currency between feature extraction (RUDY et al.), the
// neural models (as tensor channels), the router (capacity/usage maps),
// and the metrics (NRMS/SSIM/KL).
#pragma once

#include <cstddef>
#include <vector>

#include "util/geometry.hpp"

namespace laco {

class GridMap {
 public:
  GridMap() = default;
  /// A field of nx columns × ny rows over `region`, initialized to `fill`.
  GridMap(int nx, int ny, Rect region, double fill = 0.0);
  /// Unit-square region convenience constructor.
  GridMap(int nx, int ny, double fill = 0.0)
      : GridMap(nx, ny, Rect{0.0, 0.0, 1.0, 1.0}, fill) {}

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::size_t size() const { return data_.size(); }
  const Rect& region() const { return region_; }
  double bin_width() const { return bin_w_; }
  double bin_height() const { return bin_h_; }
  double bin_area() const { return bin_w_ * bin_h_; }

  double& at(int k, int l) { return data_[index(k, l)]; }
  double at(int k, int l) const { return data_[index(k, l)]; }
  /// Row-major flat access (l * nx + k).
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// Grid-cell containing layout point p, clamped to the grid.
  GridIndex bin_of(Point p) const;
  /// Layout-space bounding box of grid-cell (k, l).
  Rect bin_rect(int k, int l) const;
  /// Range [k0, k1] × [l0, l1] of bins overlapping `r` (clamped).
  void bin_range(const Rect& r, int& k0, int& k1, int& l0, int& l1) const;

  void fill(double value);
  /// Adds `value` × (overlap area fraction of each bin) over rectangle r.
  /// With `density_mode` the value is spread so the *integral* over r is
  /// value (i.e. each bin receives value * overlap / area(r)).
  void add_rect(const Rect& r, double value, bool density_mode = false);
  /// Bilinear interpolation of the field at layout point p (bin centers
  /// are the sample sites; clamped at the boundary).
  double sample_bilinear(Point p) const;

  double min() const;
  double max() const;
  double mean() const;
  double sum() const;

  GridMap& operator+=(const GridMap& other);
  GridMap& operator-=(const GridMap& other);
  GridMap& operator*=(double scale);

  /// Area-weighted resampling to a new resolution over the same region.
  GridMap resampled(int new_nx, int new_ny) const;
  /// Per-element |a - b| sum; used by tests.
  static double l1_distance(const GridMap& a, const GridMap& b);

 private:
  std::size_t index(int k, int l) const;

  int nx_ = 0;
  int ny_ = 0;
  Rect region_{};
  double bin_w_ = 0.0;
  double bin_h_ = 0.0;
  std::vector<double> data_;
};

}  // namespace laco
