#include "placer/inflation.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace laco {

InflationResult run_inflation_placement(Design& design, const InflationOptions& options) {
  InflationResult result;
  const auto& movable = design.movable_cells();

  // Original widths, restored on exit; factors accumulate across rounds.
  std::vector<double> base_width(movable.size());
  std::vector<double> factor(movable.size(), 1.0);
  for (std::size_t i = 0; i < movable.size(); ++i) {
    base_width[i] = design.cell(movable[i]).width;
  }
  const auto apply_widths = [&]() {
    for (std::size_t i = 0; i < movable.size(); ++i) {
      Cell& cell = design.cell(movable[i]);
      const Point c = cell.center();
      cell.width = base_width[i] * factor[i];
      cell.x = c.x - cell.width * 0.5;  // keep the center fixed
    }
  };

  GlobalPlacerOptions placer_options = options.placer;
  for (int round = 0; round < options.rounds; ++round) {
    {
      GlobalPlacer placer(design, placer_options);
      result.last_placement = placer.run();
    }
    placer_options.center_init = false;  // warm start from here on

    const RoutingResult routing = route_design(design, options.router);
    result.overflow_per_round.push_back(routing.total_overflow_h + routing.total_overflow_v);
    ++result.rounds_run;
    LACO_LOG_INFO << "inflation round " << round << ": overflow "
                  << result.overflow_per_round.back();
    if (round + 1 == options.rounds) break;

    // Grow cells that sit in over-utilized gcells.
    for (std::size_t i = 0; i < movable.size(); ++i) {
      const Cell& cell = design.cell(movable[i]);
      const GridIndex g = routing.congestion.bin_of(cell.center());
      const double utilization = routing.congestion.at(g.k, g.l);
      if (utilization > options.utilization_threshold) {
        factor[i] = std::min(options.max_inflation,
                             factor[i] * (1.0 + options.growth_rate *
                                                    (utilization - options.utilization_threshold)));
      }
    }
    apply_widths();
  }

  // Deflate: restore true footprints, keep centers.
  std::size_t inflated = 0;
  double factor_sum = 0.0;
  for (std::size_t i = 0; i < movable.size(); ++i) {
    Cell& cell = design.cell(movable[i]);
    const Point c = cell.center();
    cell.width = base_width[i];
    cell.x = c.x - cell.width * 0.5;
    if (factor[i] > 1.0 + 1e-12) ++inflated;
    factor_sum += factor[i];
  }
  result.inflated_fraction =
      movable.empty() ? 0.0 : static_cast<double>(inflated) / static_cast<double>(movable.size());
  result.mean_inflation = movable.empty() ? 1.0 : factor_sum / static_cast<double>(movable.size());
  return result;
}

}  // namespace laco
