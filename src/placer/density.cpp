#include "placer/density.hpp"

#include <algorithm>
#include <cmath>

namespace laco {

DensityModel::DensityModel(const Design& design, int nx, int ny)
    : nx_(nx),
      ny_(ny),
      solver_(nx, ny, design.core().width(), design.core().height()),
      density_(nx, ny, design.core(), 0.0),
      movable_density_(nx, ny, design.core(), 0.0),
      capacity_(nx, ny, design.core(), 0.0),
      potential_(nx, ny, design.core(), 0.0),
      field_x_(nx, ny, design.core(), 0.0),
      field_y_(nx, ny, design.core(), 0.0) {
  // Uniform spread of all charge (movable + fixed macro) over all bins —
  // the DC level removed before the Poisson solve.
  const double total_charge = design.total_movable_area() + design.total_fixed_area();
  target_density_ = total_charge / (static_cast<double>(nx) * ny);

  // Per-bin capacity for overflow: macro-free area, scaled so total
  // capacity equals total movable area (a perfectly spread placement has
  // zero overflow by construction).
  GridMap fixed(nx, ny, design.core(), 0.0);
  for (const Cell& cell : design.cells()) {
    if (cell.kind != CellKind::kMacro || !cell.fixed) continue;
    fixed.add_rect(cell.rect(), overlap_area(cell.rect(), design.core()),
                   /*density_mode=*/true);
  }
  double free_total = 0.0;
  for (std::size_t i = 0; i < capacity_.size(); ++i) {
    capacity_[i] = std::max(0.0, capacity_.bin_area() - fixed[i]);
    free_total += capacity_[i];
  }
  const double scale = free_total > 0.0 ? design.total_movable_area() / free_total : 0.0;
  capacity_ *= scale;
}

void DensityModel::update(const Design& design) {
  density_.fill(0.0);
  movable_density_.fill(0.0);
  const double min_w = density_.bin_width();
  const double min_h = density_.bin_height();
  for (const Cell& cell : design.cells()) {
    if (cell.kind == CellKind::kPad) continue;
    Rect r = cell.rect();
    // Smooth small cells to at least one bin; density_mode preserves the
    // total deposited charge (the cell's true area).
    const double w = std::max(r.width(), min_w);
    const double h = std::max(r.height(), min_h);
    const Point c = r.center();
    const Rect expanded{c.x - w * 0.5, c.y - h * 0.5, c.x + w * 0.5, c.y + h * 0.5};
    density_.add_rect(expanded, cell.area(), /*density_mode=*/true);
    if (!cell.fixed) {
      movable_density_.add_rect(expanded, cell.area(), /*density_mode=*/true);
    }
  }
  // Remove the DC (target) level so the field pushes toward uniformity.
  std::vector<double> rho = density_.data();
  for (double& v : rho) v -= target_density_;
  PoissonSolver::Solution sol = solver_.solve(rho);
  potential_.data() = std::move(sol.potential);
  field_x_.data() = std::move(sol.field_x);
  field_y_.data() = std::move(sol.field_y);
}

double DensityModel::energy(const Design& design) const {
  double e = 0.0;
  for (const CellId id : design.movable_cells()) {
    const Cell& cell = design.cell(id);
    e += cell.area() * potential_.sample_bilinear(cell.center());
  }
  return 0.5 * e;
}

void DensityModel::add_gradient(const Design& design, double weight,
                                std::vector<double>& grad_x, std::vector<double>& grad_y) const {
  for (const CellId id : design.movable_cells()) {
    const Cell& cell = design.cell(id);
    const Point c = cell.center();
    // dD/dx = −q·E_x: cells are driven along the field (downhill in ψ).
    grad_x[static_cast<std::size_t>(id)] -= weight * cell.area() * field_x_.sample_bilinear(c);
    grad_y[static_cast<std::size_t>(id)] -= weight * cell.area() * field_y_.sample_bilinear(c);
  }
}

double DensityModel::overflow(const Design& design) const {
  const double movable_area = design.total_movable_area();
  if (movable_area <= 0.0) return 0.0;
  double excess = 0.0;
  // LACO_DETERMINISTIC: overflow reduction in bin index order
  for (std::size_t i = 0; i < movable_density_.size(); ++i) {
    excess += std::max(0.0, movable_density_[i] - capacity_[i]);
  }
  return excess / movable_area;
}

}  // namespace laco
