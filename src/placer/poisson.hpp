// Spectral Poisson solver for the electrostatic density model (ePlace /
// DREAMPlace). Solves ∇²ψ = −ρ with Neumann boundary conditions on the
// core region via a 2-D DCT expansion:
//   ρ(k,l)  = Σ_{u,v} b_uv cos(w_u x_k) cos(w_v y_l)
//   ψ(k,l)  = Σ'      b_uv / (w_u² + w_v²) · cos cos      (b_00 dropped)
//   E_x(k,l)= Σ'      b_uv · w_u / (w_u² + w_v²) · sin cos
//   E_y(k,l)= Σ'      b_uv · w_v / (w_u² + w_v²) · cos sin
// with w_u = πu/Lx, w_v = πv/Ly, sampled at bin centers. The transforms
// use precomputed cosine/sine matrices (O(N³), fast at placement bin
// resolutions).
#pragma once

#include <vector>

namespace laco {

class PoissonSolver {
 public:
  /// Grid of nx × ny bins over a region of physical size lx × ly.
  PoissonSolver(int nx, int ny, double lx, double ly);

  struct Solution {
    std::vector<double> potential;  ///< ψ, nx·ny row-major (l·nx + k)
    std::vector<double> field_x;    ///< E_x = −∂ψ/∂x
    std::vector<double> field_y;    ///< E_y = −∂ψ/∂y
  };

  /// density: nx·ny row-major. The mean (DC) component is implicitly
  /// removed — pass ρ − ρ_target or raw ρ, the result is identical.
  Solution solve(const std::vector<double>& density) const;

  int nx() const { return nx_; }
  int ny() const { return ny_; }

 private:
  int nx_, ny_;
  double lx_, ly_;
  // Basis tables: cos_x_[u * nx + k] = cos(pi u (k+0.5) / nx), etc.
  std::vector<double> cos_x_, sin_x_, cos_y_, sin_y_;
  std::vector<double> wu_, wv_;  ///< angular frequencies
};

}  // namespace laco
