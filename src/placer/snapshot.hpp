// Durable placement snapshots: the complete Nesterov loop state,
// serialized in the project's CRC-32 v2 container (util/serial) and
// published with atomic write-temp-rename into a double-buffered slot
// directory. Restoring a snapshot and continuing reproduces the
// uninterrupted run bitwise, which is what makes placement jobs
// preemptible, migratable, and restartable (docs/RELIABILITY.md
// "Placement snapshots & resume").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "placer/global_placer.hpp"
#include "placer/nesterov.hpp"
#include "util/mutex.hpp"
#include "util/serial.hpp"
#include "util/thread_annotations.hpp"

namespace laco {

/// Everything GlobalPlacer::run() needs to continue from an iteration
/// boundary: optimizer vectors and scalars, the λ-ramp state, overflow
/// bookkeeping, the per-iteration history, RNG stream, rollback
/// bookkeeping, and an opaque penalty-state blob (frame history +
/// stats, owned by the laco layer's codec).
struct PlacementSnapshot {
  static constexpr std::uint32_t kVersion = 1;

  std::string design_name;
  std::uint64_t num_movable = 0;
  int iteration = 0;  ///< next loop iteration to execute
  double ratio = 0.0;
  double prev_overflow = 1.0;
  double best_overflow = 1.0;
  int best_overflow_iter = 0;
  std::uint64_t rollbacks = 0;   ///< cumulative across resumes
  double rollback_damp = 1.0;    ///< compounded watchdog damping in effect
  int last_rollback_iter = -1;
  std::string rng_state;         ///< mt19937_64 stream state (post-init)
  NesterovState optimizer;
  std::vector<IterationStats> history;
  std::string penalty_state;     ///< opaque penalty section (may be empty)

  void save(serial::Writer& w) const;
  static PlacementSnapshot load(serial::Reader& r);
};

/// Serializes the optimizer state as a snapshot sub-section.
void save_nesterov_state(serial::Writer& w, const NesterovState& state);
NesterovState load_nesterov_state(serial::Reader& r);

/// Writes `snap` to `path` atomically (temp + rename); false on failure.
bool save_snapshot_file(const PlacementSnapshot& snap, const std::string& path);
/// Loads and validates a snapshot; throws std::runtime_error naming the
/// source and byte offset on any corruption (bad magic, bad version,
/// truncation, checksum mismatch).
PlacementSnapshot load_snapshot_file(const std::string& path);

/// Double-buffered snapshot slots in one directory: saves alternate
/// between two files, each published atomically, so a crash mid-save
/// always leaves the previous snapshot intact. load_latest() returns
/// the valid slot with the highest iteration, skipping any slot that is
/// missing, truncated, or corrupt. Mirrors activity into the
/// `placer.snapshot.*` metrics.
class SnapshotStore {
 public:
  explicit SnapshotStore(std::string dir);
  /// Drains any pending async save (the handed-off state must land on
  /// disk even when the run unwinds via an exception), then joins the
  /// writer thread.
  ~SnapshotStore();
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Saves into the slot NOT holding the newest valid snapshot.
  /// Synchronous: the snapshot is durable (written + renamed) when
  /// this returns.
  bool save(const PlacementSnapshot& snap);

  /// Hands `snap` to the background writer and returns after an
  /// in-memory copy — the serialize + CRC + write-temp-rename happens
  /// off the caller's critical path (the placement loop's wall
  /// overhead is the copy, not the I/O). Latest-wins: if a save is
  /// still in flight when the next one arrives, the queued-but-
  /// unwritten older state is replaced, never the file being written.
  void save_async(const PlacementSnapshot& snap);
  /// Blocks until the background writer is idle and every handed-off
  /// snapshot has been written (or failed).
  void flush();
  /// Completed / failed background writes (after flush() these cover
  /// everything handed to save_async that was not superseded).
  std::uint64_t async_writes() const;
  std::uint64_t async_failures() const;

  /// Best valid snapshot, or nullopt; `why` (optional) collects the
  /// per-slot failure reasons for logging.
  std::optional<PlacementSnapshot> load_latest(std::string* why = nullptr) const;

  const std::string& dir() const { return dir_; }
  /// The two slot file paths inside `dir`.
  static std::vector<std::string> slot_paths(const std::string& dir);

 private:
  void writer_loop();
  bool write_slot(const PlacementSnapshot& snap);

  std::string dir_;
  Mutex io_mu_;  ///< serializes slot writes (sync save vs writer thread)
  int next_slot_ LACO_GUARDED_BY(io_mu_) = 0;

  mutable Mutex mu_;
  CondVar cv_;
  std::optional<PlacementSnapshot> pending_ LACO_GUARDED_BY(mu_);
  /// Written-out snapshot recycled as the next copy's buffer, so the
  /// caller-side copy in save_async reuses vector capacity instead of
  /// allocating (and page-faulting) megabytes per save.
  std::optional<PlacementSnapshot> spare_ LACO_GUARDED_BY(mu_);
  bool stop_ LACO_GUARDED_BY(mu_) = false;
  bool writing_ LACO_GUARDED_BY(mu_) = false;
  std::uint64_t async_writes_ LACO_GUARDED_BY(mu_) = 0;
  std::uint64_t async_failures_ LACO_GUARDED_BY(mu_) = 0;
  /// Started lazily by the first save_async (under mu_); joined by the
  /// destructor after stop_ is set, when no other thread can touch it —
  /// deliberately unannotated, the join must not hold mu_.
  std::thread writer_;
};

}  // namespace laco
