#include "placer/snapshot.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace laco {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kSnapshotMagic = 0x4c534e50u;  // "PNSL" little-endian: "LSNP"

// Corruption guards mirroring nn/serialize: a flipped bit in a length
// field must produce a clean error, not a huge allocation.
constexpr std::uint64_t kMaxHistory = std::uint64_t{1} << 22;
constexpr std::uint32_t kMaxRngStateBytes = 1u << 16;

/// Registry mirror for the snapshot subsystem. Saves happen once per
/// snapshot_every iterations — off the hot path.
obs::Counter& snapshot_counter(const char* field) {
  return obs::MetricRegistry::global().counter(std::string("placer.snapshot.") + field);
}

void save_iteration_stats(serial::Writer& w, const IterationStats& s) {
  w.i32(s.iteration);
  w.f64(s.wa_wirelength);
  w.f64(s.hpwl);
  w.f64(s.overflow);
  w.f64(s.lambda);
  w.f64(s.penalty);
  w.f64(s.step_size);
}

IterationStats load_iteration_stats(serial::Reader& r) {
  IterationStats s;
  s.iteration = r.i32("stats iteration");
  s.wa_wirelength = r.f64("stats wirelength");
  s.hpwl = r.f64("stats hpwl");
  s.overflow = r.f64("stats overflow");
  s.lambda = r.f64("stats lambda");
  s.penalty = r.f64("stats penalty");
  s.step_size = r.f64("stats step");
  return s;
}

}  // namespace

void save_nesterov_state(serial::Writer& w, const NesterovState& state) {
  w.doubles(state.ux);
  w.doubles(state.uy);
  w.doubles(state.vx);
  w.doubles(state.vy);
  w.doubles(state.prev_vx);
  w.doubles(state.prev_vy);
  w.doubles(state.prev_gx);
  w.doubles(state.prev_gy);
  w.f64(state.a);
  w.f64(state.initial_step);
  w.f64(state.step_scale);
  w.flag(state.have_prev);
}

NesterovState load_nesterov_state(serial::Reader& r) {
  NesterovState s;
  s.ux = r.doubles("optimizer ux");
  s.uy = r.doubles("optimizer uy");
  s.vx = r.doubles("optimizer vx");
  s.vy = r.doubles("optimizer vy");
  s.prev_vx = r.doubles("optimizer prev_vx");
  s.prev_vy = r.doubles("optimizer prev_vy");
  s.prev_gx = r.doubles("optimizer prev_gx");
  s.prev_gy = r.doubles("optimizer prev_gy");
  s.a = r.f64("optimizer a");
  s.initial_step = r.f64("optimizer initial_step");
  s.step_scale = r.f64("optimizer step_scale");
  s.have_prev = r.flag("optimizer have_prev");
  return s;
}

void PlacementSnapshot::save(serial::Writer& w) const {
  w.str(design_name);
  w.u64(num_movable);
  w.i32(iteration);
  w.f64(ratio);
  w.f64(prev_overflow);
  w.f64(best_overflow);
  w.i32(best_overflow_iter);
  w.u64(rollbacks);
  w.f64(rollback_damp);
  w.i32(last_rollback_iter);
  w.str(rng_state);
  save_nesterov_state(w, optimizer);
  w.u64(history.size());
  for (const IterationStats& s : history) save_iteration_stats(w, s);
  w.str(penalty_state);
}

PlacementSnapshot PlacementSnapshot::load(serial::Reader& r) {
  PlacementSnapshot snap;
  snap.design_name = r.str("design name");
  snap.num_movable = r.u64("movable count");
  snap.iteration = r.i32("iteration");
  snap.ratio = r.f64("lambda ratio");
  snap.prev_overflow = r.f64("prev overflow");
  snap.best_overflow = r.f64("best overflow");
  snap.best_overflow_iter = r.i32("best overflow iter");
  snap.rollbacks = r.u64("rollbacks");
  snap.rollback_damp = r.f64("rollback damp");
  snap.last_rollback_iter = r.i32("last rollback iter");
  snap.rng_state = r.str("rng state", kMaxRngStateBytes);
  snap.optimizer = load_nesterov_state(r);
  const std::uint64_t n = r.u64("history length");
  if (n > kMaxHistory) {
    r.fail("implausible history length " + std::to_string(n));
  }
  snap.history.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) snap.history.push_back(load_iteration_stats(r));
  snap.penalty_state = r.str("penalty state");
  return snap;
}

bool save_snapshot_file(const PlacementSnapshot& snap, const std::string& path) {
  return serial::atomic_write_file(path, [&snap](std::ostream& out) {
    serial::Writer w(out);
    serial::write_frame_header(w, kSnapshotMagic, PlacementSnapshot::kVersion);
    snap.save(w);
    serial::write_frame_trailer(w);
    return static_cast<bool>(out);
  });
}

PlacementSnapshot load_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_snapshot: cannot open '" + path + "'");
  serial::Reader r(in, path, "load_snapshot");
  serial::read_frame_header(r, kSnapshotMagic, PlacementSnapshot::kVersion,
                            "placement snapshot");
  PlacementSnapshot snap = PlacementSnapshot::load(r);
  serial::read_frame_trailer(r);
  return snap;
}

std::vector<std::string> SnapshotStore::slot_paths(const std::string& dir) {
  return {(fs::path(dir) / "snapshot.a.lsnap").string(),
          (fs::path(dir) / "snapshot.b.lsnap").string()};
}

SnapshotStore::SnapshotStore(std::string dir) : dir_(std::move(dir)) {
  // Aim the first save at the slot NOT holding the newest valid
  // snapshot, so a crash mid-save never clobbers the last good file.
  const auto paths = slot_paths(dir_);
  int best_slot = -1;
  int best_iter = -1;
  for (int slot = 0; slot < 2; ++slot) {
    std::error_code ec;
    if (!fs::exists(paths[static_cast<std::size_t>(slot)], ec)) continue;
    try {
      const PlacementSnapshot snap = load_snapshot_file(paths[static_cast<std::size_t>(slot)]);
      if (snap.iteration > best_iter) {
        best_iter = snap.iteration;
        best_slot = slot;
      }
    } catch (const std::exception&) {
      // A corrupt slot is exactly the one to overwrite first.
    }
  }
  MutexLock lock(io_mu_);
  next_slot_ = best_slot >= 0 ? best_slot ^ 1 : 0;
}

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}

}  // namespace

SnapshotStore::~SnapshotStore() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

bool SnapshotStore::write_slot(const PlacementSnapshot& snap) {
  MutexLock lock(io_mu_);
  std::error_code ec;
  fs::create_directories(dir_, ec);
  const auto paths = slot_paths(dir_);
  const std::string& path = paths[static_cast<std::size_t>(next_slot_)];
  if (!save_snapshot_file(snap, path)) {
    snapshot_counter("save_failures").add(1);
    LACO_LOG_WARN << "snapshot save failed for '" << path << "' (disk full or unwritable)";
    return false;
  }
  next_slot_ ^= 1;
  snapshot_counter("saves").add(1);
  std::error_code size_ec;
  const auto size = fs::file_size(path, size_ec);
  if (!size_ec) snapshot_counter("bytes").add(static_cast<std::uint64_t>(size));
  return true;
}

bool SnapshotStore::save(const PlacementSnapshot& snap) {
  // save_ns accumulates wall time the *caller* was blocked on snapshot
  // work, which is what the bench_fig8_runtime overhead guardrail
  // measures; the background writer's time lands in write_ns instead.
  const auto start = std::chrono::steady_clock::now();
  const bool ok = write_slot(snap);
  snapshot_counter("save_ns").add(elapsed_ns(start));
  return ok;
}

void SnapshotStore::save_async(const PlacementSnapshot& snap) {
  const auto start = std::chrono::steady_clock::now();
  // The copy is the only work on the caller's critical path. Copy into
  // the recycled buffer from the last completed write when one exists:
  // copy-assignment reuses the vectors' capacity, so steady state is a
  // memcpy, not a round of large allocations.
  std::optional<PlacementSnapshot> buf;
  {
    MutexLock lock(mu_);
    buf.swap(spare_);
  }
  if (buf.has_value()) {
    *buf = snap;
  } else {
    buf.emplace(snap);
  }
  {
    MutexLock lock(mu_);
    if (!writer_.joinable()) writer_ = std::thread(&SnapshotStore::writer_loop, this);
    pending_.swap(buf);  // a superseded pending_ becomes the next spare
    if (buf.has_value() && !spare_.has_value()) spare_.swap(buf);
  }
  cv_.notify_all();
  snapshot_counter("save_ns").add(elapsed_ns(start));
}

void SnapshotStore::flush() {
  MutexLock lock(mu_);
  while (pending_.has_value() || writing_) cv_.wait(mu_);
}

std::uint64_t SnapshotStore::async_writes() const {
  MutexLock lock(mu_);
  return async_writes_;
}

std::uint64_t SnapshotStore::async_failures() const {
  MutexLock lock(mu_);
  return async_failures_;
}

void SnapshotStore::writer_loop() {
  for (;;) {
    std::optional<PlacementSnapshot> job;
    {
      MutexLock lock(mu_);
      while (!pending_.has_value() && !stop_) cv_.wait(mu_);
      if (!pending_.has_value() && stop_) return;
      job = std::move(pending_);
      pending_.reset();
      writing_ = true;
    }
    const auto start = std::chrono::steady_clock::now();
    const bool ok = write_slot(*job);
    snapshot_counter("write_ns").add(elapsed_ns(start));
    {
      MutexLock lock(mu_);
      writing_ = false;
      if (ok) {
        ++async_writes_;
      } else {
        ++async_failures_;
      }
      if (!spare_.has_value()) spare_.swap(job);  // recycle the buffers
    }
    cv_.notify_all();
  }
}

std::optional<PlacementSnapshot> SnapshotStore::load_latest(std::string* why) const {
  std::optional<PlacementSnapshot> best;
  std::string reasons;
  for (const std::string& path : slot_paths(dir_)) {
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      reasons += path + ": missing; ";
      continue;
    }
    try {
      PlacementSnapshot snap = load_snapshot_file(path);
      snapshot_counter("loads").add(1);
      if (!best || snap.iteration > best->iteration) best = std::move(snap);
    } catch (const std::exception& e) {
      snapshot_counter("load_failures").add(1);
      LACO_LOG_WARN << "snapshot slot rejected: " << e.what();
      reasons += std::string(e.what()) + "; ";
    }
  }
  if (why != nullptr) *why = reasons;
  return best;
}

}  // namespace laco
