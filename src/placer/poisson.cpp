#include "placer/poisson.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace laco {

PoissonSolver::PoissonSolver(int nx, int ny, double lx, double ly)
    : nx_(nx), ny_(ny), lx_(lx), ly_(ly) {
  if (nx <= 0 || ny <= 0 || lx <= 0.0 || ly <= 0.0) {
    throw std::invalid_argument("PoissonSolver: non-positive dimensions");
  }
  cos_x_.resize(static_cast<std::size_t>(nx) * nx);
  sin_x_.resize(static_cast<std::size_t>(nx) * nx);
  cos_y_.resize(static_cast<std::size_t>(ny) * ny);
  sin_y_.resize(static_cast<std::size_t>(ny) * ny);
  wu_.resize(static_cast<std::size_t>(nx));
  wv_.resize(static_cast<std::size_t>(ny));
  for (int u = 0; u < nx; ++u) {
    wu_[static_cast<std::size_t>(u)] = std::numbers::pi * u / lx;
    for (int k = 0; k < nx; ++k) {
      const double arg = std::numbers::pi * u * (k + 0.5) / nx;
      cos_x_[static_cast<std::size_t>(u) * nx + k] = std::cos(arg);
      sin_x_[static_cast<std::size_t>(u) * nx + k] = std::sin(arg);
    }
  }
  for (int v = 0; v < ny; ++v) {
    wv_[static_cast<std::size_t>(v)] = std::numbers::pi * v / ly;
    for (int l = 0; l < ny; ++l) {
      const double arg = std::numbers::pi * v * (l + 0.5) / ny;
      cos_y_[static_cast<std::size_t>(v) * ny + l] = std::cos(arg);
      sin_y_[static_cast<std::size_t>(v) * ny + l] = std::sin(arg);
    }
  }
}

PoissonSolver::Solution PoissonSolver::solve(const std::vector<double>& density) const {
  const std::size_t n = static_cast<std::size_t>(nx_) * ny_;
  if (density.size() != n) throw std::invalid_argument("PoissonSolver::solve: size mismatch");

  // Forward DCT-II along x: tmp[v-run later] — first transform rows.
  // A[u][l] = sum_k density[l][k] * cos_x[u][k]
  std::vector<double> a_ul(static_cast<std::size_t>(nx_) * ny_, 0.0);
  for (int l = 0; l < ny_; ++l) {
    for (int u = 0; u < nx_; ++u) {
      double acc = 0.0;
      const double* cx = &cos_x_[static_cast<std::size_t>(u) * nx_];
      const double* row = &density[static_cast<std::size_t>(l) * nx_];
      for (int k = 0; k < nx_; ++k) acc += row[k] * cx[k];
      a_ul[static_cast<std::size_t>(u) * ny_ + l] = acc;
    }
  }
  // Then columns: B[u][v] = sum_l A[u][l] * cos_y[v][l], with DCT-III
  // normalization folded in: b_uv = alpha_u alpha_v B[u][v],
  // alpha_0 = 1/N, alpha_{>0} = 2/N.
  std::vector<double> b_uv(static_cast<std::size_t>(nx_) * ny_, 0.0);
  for (int u = 0; u < nx_; ++u) {
    const double au = (u == 0 ? 1.0 : 2.0) / nx_;
    for (int v = 0; v < ny_; ++v) {
      const double av = (v == 0 ? 1.0 : 2.0) / ny_;
      double acc = 0.0;
      const double* cy = &cos_y_[static_cast<std::size_t>(v) * ny_];
      const double* row = &a_ul[static_cast<std::size_t>(u) * ny_];
      for (int l = 0; l < ny_; ++l) acc += row[l] * cy[l];
      b_uv[static_cast<std::size_t>(u) * ny_ + v] = au * av * acc;
    }
  }

  // Spectral coefficients for potential and field.
  std::vector<double> p_uv(b_uv.size(), 0.0);   // psi coefficients
  std::vector<double> fx_uv(b_uv.size(), 0.0);  // E_x coefficients (sin-cos basis)
  std::vector<double> fy_uv(b_uv.size(), 0.0);  // E_y coefficients (cos-sin basis)
  for (int u = 0; u < nx_; ++u) {
    for (int v = 0; v < ny_; ++v) {
      if (u == 0 && v == 0) continue;
      const double w2 = wu_[static_cast<std::size_t>(u)] * wu_[static_cast<std::size_t>(u)] +
                        wv_[static_cast<std::size_t>(v)] * wv_[static_cast<std::size_t>(v)];
      const double p = b_uv[static_cast<std::size_t>(u) * ny_ + v] / w2;
      p_uv[static_cast<std::size_t>(u) * ny_ + v] = p;
      fx_uv[static_cast<std::size_t>(u) * ny_ + v] = p * wu_[static_cast<std::size_t>(u)];
      fy_uv[static_cast<std::size_t>(u) * ny_ + v] = p * wv_[static_cast<std::size_t>(v)];
    }
  }

  // Synthesis helper: out[l][k] = sum_{u,v} coeff[u][v] * bx[u][k] * by[v][l].
  const auto synthesize = [&](const std::vector<double>& coeff, const std::vector<double>& bx,
                              const std::vector<double>& by, std::vector<double>& out) {
    // First contract over v: T[u][l] = sum_v coeff[u][v] by[v][l].
    std::vector<double> t(static_cast<std::size_t>(nx_) * ny_, 0.0);
    for (int u = 0; u < nx_; ++u) {
      for (int v = 0; v < ny_; ++v) {
        const double c = coeff[static_cast<std::size_t>(u) * ny_ + v];
        if (c == 0.0) continue;
        const double* byrow = &by[static_cast<std::size_t>(v) * ny_];
        double* trow = &t[static_cast<std::size_t>(u) * ny_];
        for (int l = 0; l < ny_; ++l) trow[l] += c * byrow[l];
      }
    }
    out.assign(static_cast<std::size_t>(nx_) * ny_, 0.0);
    for (int u = 0; u < nx_; ++u) {
      const double* bxrow = &bx[static_cast<std::size_t>(u) * nx_];
      const double* trow = &t[static_cast<std::size_t>(u) * ny_];
      for (int l = 0; l < ny_; ++l) {
        const double tv = trow[l];
        if (tv == 0.0) continue;
        double* orow = &out[static_cast<std::size_t>(l) * nx_];
        for (int k = 0; k < nx_; ++k) orow[k] += tv * bxrow[k];
      }
    }
  };

  Solution sol;
  synthesize(p_uv, cos_x_, cos_y_, sol.potential);
  synthesize(fx_uv, sin_x_, cos_y_, sol.field_x);
  synthesize(fy_uv, cos_x_, sin_y_, sol.field_y);
  return sol;
}

}  // namespace laco
