// Abacus legalization (Spindler, Schlichtmann & Johannes, ISPD'08): a
// cluster-based dynamic-programming legalizer that minimizes total
// squared displacement. Cells are processed left-to-right; within a row
// segment, abutting cells merge into clusters whose optimal position is
// the weighted mean of member targets (clamped to the segment), so
// cells shift smoothly instead of piling at a cursor. Typically yields
// noticeably lower displacement than the Tetris legalizer in
// legalizer.cpp at slightly higher cost.
//
// Honors the same constraints as legalize(): macro blockages and
// exclusive fence regions.
#pragma once

#include "placer/legalizer.hpp"

namespace laco {

/// Drop-in alternative to legalize().
LegalizeResult abacus_legalize(Design& design, const LegalizerOptions& options = {});

}  // namespace laco
