#include "placer/abacus.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace laco {
namespace {

/// A maximal free interval of one row holding Abacus clusters.
struct Cluster {
  double e = 0.0;  ///< total weight (cell areas)
  double q = 0.0;  ///< Σ eᵢ·(targetᵢ − offsetᵢ-in-cluster)
  double w = 0.0;  ///< total width
  double x = 0.0;  ///< placed position of the cluster's left edge
  std::vector<CellId> cells;
};

struct Segment {
  double xl, xh;
  std::vector<Cluster> clusters;

  double used() const {
    double total = 0.0;
    for (const Cluster& c : clusters) total += c.w;
    return total;
  }
};

struct Row {
  double y;
  std::vector<Segment> segments;
};

double cluster_position(const Cluster& c, const Segment& seg) {
  return std::clamp(c.q / c.e, seg.xl, seg.xh - c.w);
}

/// Abacus Collapse: place the last cluster; merge into its predecessor
/// while they overlap.
void collapse(Segment& seg) {
  while (true) {
    Cluster& cur = seg.clusters.back();
    cur.x = cluster_position(cur, seg);
    if (seg.clusters.size() < 2) return;
    Cluster& prev = seg.clusters[seg.clusters.size() - 2];
    if (prev.x + prev.w <= cur.x + 1e-12) return;
    // Merge cur into prev: members keep their order and offsets.
    prev.q += cur.q - cur.e * prev.w;
    prev.e += cur.e;
    prev.w += cur.w;
    prev.cells.insert(prev.cells.end(), cur.cells.begin(), cur.cells.end());
    seg.clusters.pop_back();
    seg.clusters.back().x = cluster_position(seg.clusters.back(), seg);
  }
}

/// Appends a cell (left-to-right order assumed) as its own cluster and
/// collapses. The cell's resulting x is the cluster position plus the
/// widths of the members ahead of it.
void append_cell(Segment& seg, CellId cid, double target, double width, double weight) {
  Cluster next;
  next.e = weight;
  next.q = weight * target;
  next.w = width;
  next.cells.push_back(cid);
  seg.clusters.push_back(std::move(next));
  collapse(seg);
}

std::vector<Row> build_rows(const Design& design, const Rect& domain,
                            const std::vector<Rect>& exclusions) {
  const Rect& core = design.core();
  const double rh = design.row_height();
  const int first_row =
      std::max(0, static_cast<int>(std::ceil((domain.yl - core.yl) / rh - 1e-9)));
  const int num_core_rows = std::max(1, static_cast<int>(std::floor(core.height() / rh)));
  std::vector<Row> rows;
  for (int r = first_row; r < num_core_rows; ++r) {
    const double y = core.yl + r * rh;
    if (y + rh > domain.yh + 1e-9) break;
    const double xl = std::max(domain.xl, core.xl);
    const double xh = std::min(domain.xh, core.xh);
    if (xh - xl <= 0.0) continue;
    rows.push_back({y, {Segment{xl, xh, {}}}});
  }
  const auto carve = [&](const Rect& cut) {
    for (Row& row : rows) {
      if (cut.yh <= row.y || cut.yl >= row.y + rh) continue;
      std::vector<Segment> updated;
      for (Segment& seg : row.segments) {
        if (cut.xh <= seg.xl || cut.xl >= seg.xh) {
          updated.push_back(std::move(seg));
          continue;
        }
        if (cut.xl > seg.xl) updated.push_back(Segment{seg.xl, cut.xl, {}});
        if (cut.xh < seg.xh) updated.push_back(Segment{cut.xh, seg.xh, {}});
      }
      row.segments = std::move(updated);
    }
  };
  for (const Cell& cell : design.cells()) {
    if (cell.kind == CellKind::kMacro) carve(cell.rect());
  }
  for (const Rect& r : exclusions) carve(r);
  return rows;
}

void place_cells(Design& design, std::vector<CellId> order, std::vector<Row>& rows,
                 const LegalizerOptions& options, LegalizeResult& result) {
  if (rows.empty()) {
    result.failed += order.size();
    return;
  }
  std::sort(order.begin(), order.end(),
            [&](CellId a, CellId b) { return design.cell(a).x < design.cell(b).x; });
  const double rh = design.row_height();
  const double rows_y0 = rows.front().y;

  // Records of final segment assignment; positions written in finalize.
  for (const CellId cid : order) {
    Cell& cell = design.cell(cid);
    const double tx = cell.x;
    const double ty = cell.y;
    const int target_row = static_cast<int>(std::clamp(
        std::round((ty - rows_y0) / rh), 0.0, static_cast<double>(rows.size()) - 1.0));

    // Trial: cheap cost = |resulting cluster-appended position − target|
    // simulated on a scratch copy of the segment's trailing cluster.
    double best_cost = std::numeric_limits<double>::infinity();
    Segment* best_seg = nullptr;
    double best_y = 0.0;
    const int max_radius = static_cast<int>(rows.size());
    for (int radius = 0; radius <= max_radius; ++radius) {
      if (best_seg != nullptr && radius > options.row_search_window) break;
      for (const int dir : {-1, 1}) {
        if (radius == 0 && dir == 1) continue;
        const int r = target_row + dir * radius;
        if (r < 0 || static_cast<std::size_t>(r) >= rows.size()) continue;
        Row& row = rows[static_cast<std::size_t>(r)];
        for (Segment& seg : row.segments) {
          if (seg.xh - seg.xl - seg.used() < cell.width) continue;
          Segment scratch{seg.xl, seg.xh, seg.clusters};  // cluster copy (small)
          const double weight = std::max(1e-9, cell.area());
          append_cell(scratch, cid, tx, cell.width, weight);
          // Position of the appended cell: cluster x + widths before it.
          const Cluster& host = scratch.clusters.back();
          double x = host.x;
          for (const CellId member : host.cells) {
            if (member == cid) break;
            x += design.cell(member).width;
          }
          const double cost = std::abs(x - tx) + std::abs(row.y - ty);
          if (cost < best_cost) {
            best_cost = cost;
            best_seg = &seg;
            best_y = row.y;
          }
        }
      }
    }
    if (best_seg == nullptr) {
      ++result.failed;
      continue;
    }
    append_cell(*best_seg, cid, tx, cell.width, std::max(1e-9, cell.area()));
    result.total_displacement += std::abs(best_y - ty);
    cell.y = best_y;  // final x written in the finalize pass
    ++result.placed;
  }

  // Finalize: write member positions from cluster layouts.
  for (Row& row : rows) {
    for (Segment& seg : row.segments) {
      for (const Cluster& cluster : seg.clusters) {
        double x = cluster.x;
        for (const CellId member : cluster.cells) {
          Cell& cell = design.cell(member);
          const double disp = std::abs(x - cell.x);
          result.total_displacement += disp;
          result.max_displacement = std::max(result.max_displacement, disp);
          cell.x = x;
          x += cell.width;
        }
      }
    }
  }
}

}  // namespace

LegalizeResult abacus_legalize(Design& design, const LegalizerOptions& options) {
  LegalizeResult result;
  std::vector<Rect> fence_rects;
  for (const Fence& fence : design.fences()) fence_rects.push_back(fence.region);

  for (const Fence& fence : design.fences()) {
    std::vector<Row> rows = build_rows(design, fence.region, {});
    std::vector<CellId> members;
    for (const CellId cid : fence.members) {
      if (!design.cell(cid).fixed) members.push_back(cid);
    }
    place_cells(design, std::move(members), rows, options, result);
  }
  std::vector<Row> rows = build_rows(design, design.core(), fence_rects);
  std::vector<CellId> unfenced;
  for (const CellId cid : design.movable_cells()) {
    if (design.fence_of(cid) == kNoFence) unfenced.push_back(cid);
  }
  place_cells(design, std::move(unfenced), rows, options, result);
  return result;
}

}  // namespace laco
