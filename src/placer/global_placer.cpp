#include "placer/global_placer.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "placer/nesterov.hpp"
#include "placer/snapshot.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace laco {
namespace {

/// Registry mirror for watchdog/rollback events (docs/OBSERVABILITY.md).
obs::Counter& recovery_counter(const char* field) {
  return obs::MetricRegistry::global().counter(std::string("placer.recovery.") + field);
}

bool all_finite(const std::vector<double>& a, const std::vector<double>& b) {
  for (const double v : a) {
    if (!std::isfinite(v)) return false;
  }
  for (const double v : b) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

double abs_sum(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (const double v : a) s += std::abs(v);
  for (const double v : b) s += std::abs(v);
  return s;
}

/// Gathers CellId-indexed gradients into movable-order vectors.
void gather_movable(const Design& design, const std::vector<double>& gx_cell,
                    const std::vector<double>& gy_cell, std::vector<double>& gx,
                    std::vector<double>& gy) {
  const auto& movable = design.movable_cells();
  gx.resize(movable.size());
  gy.resize(movable.size());
  for (std::size_t i = 0; i < movable.size(); ++i) {
    gx[i] = gx_cell[static_cast<std::size_t>(movable[i])];
    gy[i] = gy_cell[static_cast<std::size_t>(movable[i])];
  }
}

}  // namespace

GlobalPlacer::GlobalPlacer(Design& design, GlobalPlacerOptions options)
    : design_(design),
      options_(options),
      density_(design, options.bin_nx, options.bin_ny),
      wirelength_(density_.density().bin_width(), options.wirelength_kind) {
  pin_count_.assign(design.num_cells(), 0.0);
  for (const Pin& pin : design.pins()) {
    pin_count_[static_cast<std::size_t>(pin.cell)] += 1.0;
  }
  bin_area_ = density_.density().bin_area();
}

void GlobalPlacer::initialize_positions(std::vector<double>& x, std::vector<double>& y) {
  design_.get_movable_positions(x, y);
  if (!options_.center_init) return;
  rng_ = Rng(options_.seed);  // re-seed: run() is reproducible per call
  const Point c = design_.core().center();
  const double noise = options_.init_noise_frac * design_.core().width();
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = c.x + rng_.normal(0.0, noise);
    y[i] = c.y + rng_.normal(0.0, noise);
  }
  design_.set_movable_positions(x, y);
  design_.get_movable_positions(x, y);  // re-read after clamping
}

PlacementResult GlobalPlacer::run() {
  PlacementResult result;
  const PlacerRecoveryOptions& rec = options_.recovery;
  std::vector<double> x, y;
  initialize_positions(x, y);

  const double bin_w = density_.density().bin_width();
  // Initial BB-free step: a fraction of a bin per unit normalized gradient.
  NesterovOptimizer optimizer(x, y, /*initial_step=*/1.0);

  std::vector<double> gx_cell(design_.num_cells());
  std::vector<double> gy_cell(design_.num_cells());
  std::vector<double> dgx_cell(design_.num_cells());
  std::vector<double> dgy_cell(design_.num_cells());
  std::vector<double> gx, gy;

  // λ is re-derived every iteration from the gradient norms: the density
  // pressure is `ratio` × the wirelength pressure, with the ratio ramped
  // multiplicatively and capped. Self-normalizing, so the schedule is
  // stable across designs and scales (DREAMPlace tunes a raw λ instead).
  double ratio = options_.lambda_init_ratio;
  double prev_overflow = 1.0;
  double best_overflow = 1.0;
  int best_overflow_iter = 0;
  int iter = 0;
  // Rollback bookkeeping. rollback_damp compounds across rollbacks and
  // rides in snapshots; hpwl_peak is derived from history after every
  // restore, so it never needs to be serialized.
  std::uint64_t carried_rollbacks = 0;
  double rollback_damp = 1.0;
  int last_rollback_iter = -1;
  double hpwl_peak = 0.0;

  std::optional<SnapshotStore> store;
  if (!rec.snapshot_dir.empty() && (rec.snapshot_every > 0 || rec.resume)) {
    store.emplace(rec.snapshot_dir);
  }

  const auto capture = [&](int next_iter) {
    PlacementSnapshot snap;
    snap.design_name = design_.name();
    snap.num_movable = design_.num_movable();
    snap.iteration = next_iter;
    snap.ratio = ratio;
    snap.prev_overflow = prev_overflow;
    snap.best_overflow = best_overflow;
    snap.best_overflow_iter = best_overflow_iter;
    snap.rollbacks = carried_rollbacks + result.recovery.rollbacks;
    snap.rollback_damp = rollback_damp;
    snap.last_rollback_iter = last_rollback_iter;
    std::ostringstream rng_out;
    rng_out << rng_.engine();
    snap.rng_state = rng_out.str();
    snap.optimizer = optimizer.state();
    snap.history = result.history;
    if (penalty_saver_) snap.penalty_state = penalty_saver_();
    return snap;
  };

  const auto restore_loop_state = [&](const PlacementSnapshot& snap) {
    optimizer.restore(snap.optimizer);
    ratio = snap.ratio;
    prev_overflow = snap.prev_overflow;
    best_overflow = snap.best_overflow;
    best_overflow_iter = snap.best_overflow_iter;
    result.history = snap.history;
    hpwl_peak = 0.0;
    for (const IterationStats& s : result.history) hpwl_peak = std::max(hpwl_peak, s.hpwl);
    if (!snap.rng_state.empty()) {
      std::istringstream rng_in(snap.rng_state);
      rng_in >> rng_.engine();
    }
    if (penalty_restorer_) penalty_restorer_(snap.penalty_state);
    iter = snap.iteration;
    design_.set_movable_positions(snap.optimizer.vx, snap.optimizer.vy);
  };

  std::optional<PlacementSnapshot> last_good;
  if (rec.resume && store) {
    std::string why;
    if (auto snap = store->load_latest(&why)) {
      if (snap->design_name != design_.name() ||
          snap->num_movable != static_cast<std::uint64_t>(design_.num_movable())) {
        throw std::runtime_error("GlobalPlacer: snapshot in '" + rec.snapshot_dir +
                                 "' belongs to design '" + snap->design_name + "' (" +
                                 std::to_string(snap->num_movable) + " movables), not '" +
                                 design_.name() + "'");
      }
      restore_loop_state(*snap);
      carried_rollbacks = snap->rollbacks;
      rollback_damp = snap->rollback_damp;
      last_rollback_iter = snap->last_rollback_iter;
      result.recovery.resumed_from_iteration = snap->iteration;
      recovery_counter("resumes").add(1);
      LACO_LOG_INFO << design_.name() << " resumed from snapshot at iteration " << iter;
      last_good = std::move(*snap);
    } else {
      LACO_LOG_WARN << design_.name() << " --resume found no usable snapshot in '"
                    << rec.snapshot_dir << "' (" << why << "); starting fresh";
    }
  }

  // Last-good refresh cadence: the durable snapshot period when enabled,
  // else a cheap in-memory period so the watchdog has a rollback target.
  const int cadence =
      rec.snapshot_every > 0 ? rec.snapshot_every : (rec.watchdog ? rec.capture_every : 0);

  const auto handle_divergence = [&](const std::string& reason) {
    ++result.recovery.watchdog_trips;
    recovery_counter("watchdog_trips").add(1);
    LACO_LOG_WARN << design_.name() << " divergence at iteration " << iter << ": " << reason;
    if (!last_good ||
        result.recovery.rollbacks >= static_cast<std::uint64_t>(rec.max_rollbacks)) {
      recovery_counter("failures").add(1);
      throw PlacementDivergedError(
          design_.name() + ": placement diverged at iteration " + std::to_string(iter) + " (" +
              reason + ")" +
              (last_good ? " after " + std::to_string(result.recovery.rollbacks) + " rollbacks"
                         : " with no snapshot to roll back to"),
          iter);
    }
    restore_loop_state(*last_good);
    ++result.recovery.rollbacks;
    recovery_counter("rollbacks").add(1);
    // Compound the damping: the restored snapshot carries the step scale
    // it was captured with, so re-applying a single damp() would replay
    // the exact diverging trajectory on every retry.
    rollback_damp *= rec.damp_factor;
    optimizer.set_step_scale(last_good->optimizer.step_scale * rollback_damp);
    last_rollback_iter = iter;
    LACO_LOG_WARN << design_.name() << " rolled back to iteration " << iter << ", step scale "
                  << optimizer.step_scale();
  };

  while (iter < options_.max_iterations) {
    // Chaos hook: crash/error injection at the iteration boundary, the
    // granularity the snapshot/resume protocol guarantees recovery at.
    LACO_FAILPOINT("placer.iteration");
    if (cadence > 0 && iter % cadence == 0 && (!last_good || last_good->iteration != iter)) {
      last_good = capture(iter);
      if (store && rec.snapshot_every > 0) {
        // Hand the copy to the store's background writer: the loop
        // pays for the in-memory copy only, and the destructor/flush
        // guarantee the write lands even if this run throws.
        store->save_async(*last_good);
        ++result.recovery.snapshot_saves;
      }
    }

    obs::TraceSpan iter_span("placement: iteration", "placer");
    design_.set_movable_positions(optimizer.vx(), optimizer.vy());

    {
      obs::PhaseSpan phase(breakdown_, "placement: density");
      density_.update(design_);
    }
    const double overflow = density_.overflow(design_);
    const double hpwl_now = design_.hpwl();
    if (rec.watchdog && last_good && !last_good->history.empty() &&
        overflow > last_good->history.back().overflow + rec.overflow_explode_margin) {
      handle_divergence("overflow explosion (" + std::to_string(overflow) + " vs last good " +
                        std::to_string(last_good->history.back().overflow) + ")");
      continue;
    }
    if (rec.watchdog && hpwl_peak > 0.0 &&
        !(hpwl_now <= rec.hpwl_explode_factor * hpwl_peak)) {
      handle_divergence("hpwl explosion (" + std::to_string(hpwl_now) + " vs peak " +
                        std::to_string(hpwl_peak) + ")");
      continue;
    }

    // γ anneals with overflow: smooth early, HPWL-accurate late.
    const double gamma =
        options_.gamma_base_bins * bin_w *
        (0.1 + options_.gamma_overflow_factor * std::min(1.0, overflow));
    wirelength_.set_gamma(gamma);

    std::fill(gx_cell.begin(), gx_cell.end(), 0.0);
    std::fill(gy_cell.begin(), gy_cell.end(), 0.0);
    double wa_wl = 0.0;
    {
      obs::PhaseSpan phase(breakdown_, "placement: wirelength");
      wa_wl = wirelength_.evaluate_with_grad(design_, gx_cell, gy_cell);
    }

    std::fill(dgx_cell.begin(), dgx_cell.end(), 0.0);
    std::fill(dgy_cell.begin(), dgy_cell.end(), 0.0);
    density_.add_gradient(design_, 1.0, dgx_cell, dgy_cell);
    const double wl_norm = abs_sum(gx_cell, gy_cell);
    const double d_norm = abs_sum(dgx_cell, dgy_cell);
    const double lambda = d_norm > 0.0 ? ratio * wl_norm / d_norm : 0.0;
    for (std::size_t i = 0; i < gx_cell.size(); ++i) {
      gx_cell[i] += lambda * dgx_cell[i];
      gy_cell[i] += lambda * dgy_cell[i];
    }
    // Jacobi preconditioning (DREAMPlace): normalize each cell's gradient
    // by its wirelength stake (pin count) + λ-weighted density stake
    // (area), which evens out per-cell step sizes.
    for (const CellId cid : design_.movable_cells()) {
      const std::size_t i = static_cast<std::size_t>(cid);
      const double precond =
          std::max(1.0, pin_count_[i] + lambda * design_.cell(cid).area() / bin_area_);
      gx_cell[i] /= precond;
      gy_cell[i] /= precond;
    }

    double penalty_value = 0.0;
    if (penalty_) {
      penalty_value = penalty_(design_, iter, gx_cell, gy_cell);
    }

    gather_movable(design_, gx_cell, gy_cell, gx, gy);
    // Check the gradient before feeding it to the optimizer: one NaN
    // would poison the BB history and every subsequent iterate.
    if (rec.watchdog && !all_finite(gx, gy)) {
      handle_divergence("non-finite gradient");
      continue;
    }
    const double step = optimizer.step(gx, gy, options_.max_move_bins * bin_w);
    if (rec.watchdog && !all_finite(optimizer.vx(), optimizer.vy())) {
      handle_divergence("non-finite positions");
      continue;
    }

    IterationStats stats;
    stats.iteration = iter;
    stats.wa_wirelength = wa_wl;
    stats.hpwl = hpwl_now;
    stats.overflow = overflow;
    stats.lambda = lambda;
    stats.penalty = penalty_value;
    stats.step_size = step;
    result.history.push_back(stats);
    hpwl_peak = std::max(hpwl_peak, stats.hpwl);
    if (observer_) observer_(design_, stats);

    if (iter % 50 == 0) {
      LACO_LOG_INFO << design_.name() << " iter " << iter << " hpwl=" << stats.hpwl
                    << " overflow=" << overflow << " lambda=" << lambda;
    }

    // Sustained recovery: after a healthy window since the last rollback
    // (or relax), ease the damped step scale back toward 1.0 so one bad
    // stretch doesn't permanently collapse the step length.
    if (rec.watchdog && last_rollback_iter >= 0 && optimizer.step_scale() < 1.0 &&
        iter - last_rollback_iter >= rec.recover_window) {
      optimizer.set_step_scale(std::min(1.0, optimizer.step_scale() / rec.damp_factor));
      rollback_damp = std::min(1.0, rollback_damp / rec.damp_factor);
      last_rollback_iter = iter;
      ++result.recovery.step_scale_relaxes;
      recovery_counter("step_scale_relaxes").add(1);
      LACO_LOG_INFO << design_.name() << " relaxed step scale to " << optimizer.step_scale()
                    << " after " << rec.recover_window << " healthy iterations";
    }

    // Adaptive ramp: raise the density pressure while spreading has
    // stalled, hold it while overflow is actively dropping. This smooths
    // the clump→spread transition that a pure time-based ramp turns into
    // one violent burst.
    const double overflow_drop = prev_overflow - overflow;
    if (overflow_drop < 0.004) {
      ratio = std::min(ratio * options_.lambda_mult, options_.lambda_ratio_cap);
    }
    prev_overflow = overflow;

    if (overflow < options_.target_overflow && iter >= options_.min_iterations) {
      result.converged = true;
      result.iterations = iter + 1;
      break;
    }
    // Stagnation stop: the density pressure is maxed out and overflow has
    // hit its (bin-granularity) floor — further iterations only churn.
    if (overflow < best_overflow - 1e-3) {
      best_overflow = overflow;
      best_overflow_iter = iter;
    }
    if (options_.stall_window > 0 && ratio >= options_.lambda_ratio_cap &&
        iter - best_overflow_iter > options_.stall_window && iter >= options_.min_iterations) {
      result.iterations = iter + 1;
      LACO_LOG_INFO << design_.name() << " stopping on overflow stagnation at iter " << iter;
      break;
    }
    ++iter;
  }
  if (result.iterations == 0) result.iterations = options_.max_iterations;

  // Leave the design at the major (u) sequence? v is the last synced
  // point; re-sync to the final iterate for deterministic output.
  design_.set_movable_positions(optimizer.vx(), optimizer.vy());
  result.final_hpwl = design_.hpwl();
  result.final_overflow = density_.overflow(design_);
  if (store) {
    store->flush();
    result.recovery.snapshot_save_failures = store->async_failures();
  }
  return result;
}

}  // namespace laco
