#include "placer/global_placer.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "placer/nesterov.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace laco {
namespace {

double abs_sum(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (const double v : a) s += std::abs(v);
  for (const double v : b) s += std::abs(v);
  return s;
}

/// Gathers CellId-indexed gradients into movable-order vectors.
void gather_movable(const Design& design, const std::vector<double>& gx_cell,
                    const std::vector<double>& gy_cell, std::vector<double>& gx,
                    std::vector<double>& gy) {
  const auto& movable = design.movable_cells();
  gx.resize(movable.size());
  gy.resize(movable.size());
  for (std::size_t i = 0; i < movable.size(); ++i) {
    gx[i] = gx_cell[static_cast<std::size_t>(movable[i])];
    gy[i] = gy_cell[static_cast<std::size_t>(movable[i])];
  }
}

}  // namespace

GlobalPlacer::GlobalPlacer(Design& design, GlobalPlacerOptions options)
    : design_(design),
      options_(options),
      density_(design, options.bin_nx, options.bin_ny),
      wirelength_(density_.density().bin_width(), options.wirelength_kind) {
  pin_count_.assign(design.num_cells(), 0.0);
  for (const Pin& pin : design.pins()) {
    pin_count_[static_cast<std::size_t>(pin.cell)] += 1.0;
  }
  bin_area_ = density_.density().bin_area();
}

void GlobalPlacer::initialize_positions(std::vector<double>& x, std::vector<double>& y) {
  design_.get_movable_positions(x, y);
  if (!options_.center_init) return;
  Rng rng(options_.seed);
  const Point c = design_.core().center();
  const double noise = options_.init_noise_frac * design_.core().width();
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = c.x + rng.normal(0.0, noise);
    y[i] = c.y + rng.normal(0.0, noise);
  }
  design_.set_movable_positions(x, y);
  design_.get_movable_positions(x, y);  // re-read after clamping
}

PlacementResult GlobalPlacer::run() {
  PlacementResult result;
  std::vector<double> x, y;
  initialize_positions(x, y);

  const double bin_w = density_.density().bin_width();
  // Initial BB-free step: a fraction of a bin per unit normalized gradient.
  NesterovOptimizer optimizer(x, y, /*initial_step=*/1.0);

  std::vector<double> gx_cell(design_.num_cells());
  std::vector<double> gy_cell(design_.num_cells());
  std::vector<double> dgx_cell(design_.num_cells());
  std::vector<double> dgy_cell(design_.num_cells());
  std::vector<double> gx, gy;

  // λ is re-derived every iteration from the gradient norms: the density
  // pressure is `ratio` × the wirelength pressure, with the ratio ramped
  // multiplicatively and capped. Self-normalizing, so the schedule is
  // stable across designs and scales (DREAMPlace tunes a raw λ instead).
  double ratio = options_.lambda_init_ratio;
  double prev_overflow = 1.0;
  double best_overflow = 1.0;
  int best_overflow_iter = 0;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    obs::TraceSpan iter_span("placement: iteration", "placer");
    design_.set_movable_positions(optimizer.vx(), optimizer.vy());

    {
      obs::PhaseSpan phase(breakdown_, "placement: density");
      density_.update(design_);
    }
    const double overflow = density_.overflow(design_);

    // γ anneals with overflow: smooth early, HPWL-accurate late.
    const double gamma =
        options_.gamma_base_bins * bin_w *
        (0.1 + options_.gamma_overflow_factor * std::min(1.0, overflow));
    wirelength_.set_gamma(gamma);

    std::fill(gx_cell.begin(), gx_cell.end(), 0.0);
    std::fill(gy_cell.begin(), gy_cell.end(), 0.0);
    double wa_wl = 0.0;
    {
      obs::PhaseSpan phase(breakdown_, "placement: wirelength");
      wa_wl = wirelength_.evaluate_with_grad(design_, gx_cell, gy_cell);
    }

    std::fill(dgx_cell.begin(), dgx_cell.end(), 0.0);
    std::fill(dgy_cell.begin(), dgy_cell.end(), 0.0);
    density_.add_gradient(design_, 1.0, dgx_cell, dgy_cell);
    const double wl_norm = abs_sum(gx_cell, gy_cell);
    const double d_norm = abs_sum(dgx_cell, dgy_cell);
    const double lambda = d_norm > 0.0 ? ratio * wl_norm / d_norm : 0.0;
    for (std::size_t i = 0; i < gx_cell.size(); ++i) {
      gx_cell[i] += lambda * dgx_cell[i];
      gy_cell[i] += lambda * dgy_cell[i];
    }
    // Jacobi preconditioning (DREAMPlace): normalize each cell's gradient
    // by its wirelength stake (pin count) + λ-weighted density stake
    // (area), which evens out per-cell step sizes.
    for (const CellId cid : design_.movable_cells()) {
      const std::size_t i = static_cast<std::size_t>(cid);
      const double precond =
          std::max(1.0, pin_count_[i] + lambda * design_.cell(cid).area() / bin_area_);
      gx_cell[i] /= precond;
      gy_cell[i] /= precond;
    }

    double penalty_value = 0.0;
    if (penalty_) {
      penalty_value = penalty_(design_, iter, gx_cell, gy_cell);
    }

    gather_movable(design_, gx_cell, gy_cell, gx, gy);
    const double step = optimizer.step(gx, gy, options_.max_move_bins * bin_w);

    IterationStats stats;
    stats.iteration = iter;
    stats.wa_wirelength = wa_wl;
    stats.hpwl = design_.hpwl();
    stats.overflow = overflow;
    stats.lambda = lambda;
    stats.penalty = penalty_value;
    stats.step_size = step;
    result.history.push_back(stats);
    if (observer_) observer_(design_, stats);

    if (iter % 50 == 0) {
      LACO_LOG_INFO << design_.name() << " iter " << iter << " hpwl=" << stats.hpwl
                    << " overflow=" << overflow << " lambda=" << lambda;
    }

    // Adaptive ramp: raise the density pressure while spreading has
    // stalled, hold it while overflow is actively dropping. This smooths
    // the clump→spread transition that a pure time-based ramp turns into
    // one violent burst.
    const double overflow_drop = prev_overflow - overflow;
    if (overflow_drop < 0.004) {
      ratio = std::min(ratio * options_.lambda_mult, options_.lambda_ratio_cap);
    }
    prev_overflow = overflow;

    if (overflow < options_.target_overflow && iter >= options_.min_iterations) {
      result.converged = true;
      result.iterations = iter + 1;
      break;
    }
    // Stagnation stop: the density pressure is maxed out and overflow has
    // hit its (bin-granularity) floor — further iterations only churn.
    if (overflow < best_overflow - 1e-3) {
      best_overflow = overflow;
      best_overflow_iter = iter;
    }
    if (options_.stall_window > 0 && ratio >= options_.lambda_ratio_cap &&
        iter - best_overflow_iter > options_.stall_window && iter >= options_.min_iterations) {
      result.iterations = iter + 1;
      LACO_LOG_INFO << design_.name() << " stopping on overflow stagnation at iter " << iter;
      break;
    }
  }
  if (result.iterations == 0) result.iterations = options_.max_iterations;

  // Leave the design at the major (u) sequence? v is the last synced
  // point; re-sync to the final iterate for deterministic output.
  design_.set_movable_positions(optimizer.vx(), optimizer.vy());
  result.final_hpwl = design_.hpwl();
  result.final_overflow = density_.overflow(design_);
  return result;
}

}  // namespace laco
