// Greedy detailed placement on a legalized design: per-row adjacent-pair
// swaps accepted when they reduce HPWL. Deliberately simple — the paper
// focuses on global placement; DP exists so the full GP→LG→DP flow is
// exercised end to end.
#pragma once

#include "netlist/design.hpp"

namespace laco {

struct DetailedPlacerOptions {
  int passes = 2;
};

struct DetailedPlaceResult {
  std::size_t swaps_accepted = 0;
  double hpwl_before = 0.0;
  double hpwl_after = 0.0;
};

DetailedPlaceResult detailed_place(Design& design, const DetailedPlacerOptions& options = {});

}  // namespace laco
