#include "placer/net_weighting.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace laco {

NetWeightingResult run_net_weighting_placement(Design& design,
                                               const NetWeightingOptions& options) {
  NetWeightingResult result;

  std::vector<double> base_weight(design.num_nets());
  for (std::size_t n = 0; n < design.num_nets(); ++n) {
    base_weight[n] = design.net(static_cast<NetId>(n)).weight;
  }

  GlobalPlacerOptions placer_options = options.placer;
  for (int round = 0; round < options.rounds; ++round) {
    {
      GlobalPlacer placer(design, placer_options);
      result.last_placement = placer.run();
    }
    placer_options.center_init = false;  // warm start from here on

    const RoutingResult routing = route_design(design, options.router);
    result.overflow_per_round.push_back(routing.total_overflow_h + routing.total_overflow_v);
    ++result.rounds_run;
    LACO_LOG_INFO << "net weighting round " << round << ": overflow "
                  << result.overflow_per_round.back();
    if (round + 1 == options.rounds) break;

    // Reweight nets whose bounding box touches congested gcells.
    for (std::size_t n = 0; n < design.num_nets(); ++n) {
      Net& net = design.net(static_cast<NetId>(n));
      if (net.degree() < 2) continue;
      const Rect bb = net_bbox(design, net);
      int k0, k1, l0, l1;
      routing.congestion.bin_range(bb, k0, k1, l0, l1);
      double worst = 0.0;
      for (int l = l0; l <= l1; ++l) {
        for (int k = k0; k <= k1; ++k) worst = std::max(worst, routing.congestion.at(k, l));
      }
      if (worst > options.utilization_threshold) {
        net.weight = std::min(
            options.max_weight * base_weight[n],
            net.weight * (1.0 + options.growth_rate * (worst - options.utilization_threshold)));
      }
    }
  }

  std::size_t reweighted = 0;
  double weight_sum = 0.0;
  for (std::size_t n = 0; n < design.num_nets(); ++n) {
    Net& net = design.net(static_cast<NetId>(n));
    if (net.weight > base_weight[n] + 1e-12) ++reweighted;
    weight_sum += base_weight[n] > 0.0 ? net.weight / base_weight[n] : 1.0;
    net.weight = base_weight[n];  // restore the original objective
  }
  result.reweighted_fraction =
      design.num_nets() ? static_cast<double>(reweighted) / design.num_nets() : 0.0;
  result.mean_weight = design.num_nets() ? weight_sum / design.num_nets() : 1.0;
  return result;
}

}  // namespace laco
