#include "placer/wirelength.hpp"

#include <cmath>
#include <stdexcept>

namespace laco {
namespace {

/// One axis of the WA model for one net. Returns the WA span and adds
/// per-pin derivatives into `dcoord` (same order as `coords`).
double wa_axis(const std::vector<double>& coords, double gamma, std::vector<double>* dcoord) {
  double cmax = coords[0], cmin = coords[0];
  for (const double c : coords) {
    cmax = std::max(cmax, c);
    cmin = std::min(cmin, c);
  }
  const double inv_g = 1.0 / gamma;
  double sp = 0.0, sxp = 0.0, sm = 0.0, sxm = 0.0;
  std::vector<double> ep(coords.size()), em(coords.size());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    ep[i] = std::exp((coords[i] - cmax) * inv_g);
    em[i] = std::exp((cmin - coords[i]) * inv_g);
    sp += ep[i];
    sxp += coords[i] * ep[i];
    sm += em[i];
    sxm += coords[i] * em[i];
  }
  const double wa_max = sxp / sp;
  const double wa_min = sxm / sm;
  if (dcoord != nullptr) {
    for (std::size_t i = 0; i < coords.size(); ++i) {
      // d(WA⁺)/dxᵢ = eᵢ/S⁺ · (1 + (xᵢ − WA⁺)/γ)
      const double dmax = ep[i] / sp * (1.0 + (coords[i] - wa_max) * inv_g);
      // d(WA⁻)/dxᵢ = eᵢ/S⁻ · (1 − (xᵢ − WA⁻)/γ)
      const double dmin = em[i] / sm * (1.0 - (coords[i] - wa_min) * inv_g);
      (*dcoord)[i] += dmax - dmin;
    }
  }
  return wa_max - wa_min;
}

/// One axis of the LSE model for one net.
double lse_axis(const std::vector<double>& coords, double gamma, std::vector<double>* dcoord) {
  double cmax = coords[0], cmin = coords[0];
  for (const double c : coords) {
    cmax = std::max(cmax, c);
    cmin = std::min(cmin, c);
  }
  const double inv_g = 1.0 / gamma;
  double sp = 0.0, sm = 0.0;
  std::vector<double> ep(coords.size()), em(coords.size());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    ep[i] = std::exp((coords[i] - cmax) * inv_g);
    em[i] = std::exp((cmin - coords[i]) * inv_g);
    sp += ep[i];
    sm += em[i];
  }
  // W = γ(log Σe^{x/γ} + log Σe^{−x/γ}); shifted logs restore the offsets.
  const double value = gamma * (std::log(sp) + std::log(sm)) + (cmax - cmin);
  if (dcoord != nullptr) {
    for (std::size_t i = 0; i < coords.size(); ++i) {
      // dW/dxᵢ = softmax⁺ᵢ − softmax⁻ᵢ
      (*dcoord)[i] += ep[i] / sp - em[i] / sm;
    }
  }
  return value;
}

double axis_value(WirelengthKind kind, const std::vector<double>& coords, double gamma,
                  std::vector<double>* dcoord) {
  return kind == WirelengthKind::kWeightedAverage ? wa_axis(coords, gamma, dcoord)
                                                  : lse_axis(coords, gamma, dcoord);
}

}  // namespace

double WirelengthModel::evaluate_with_grad(const Design& design, std::vector<double>& grad_x,
                                           std::vector<double>& grad_y) const {
  if (grad_x.size() != design.num_cells() || grad_y.size() != design.num_cells()) {
    throw std::invalid_argument("WirelengthModel: gradient buffers must have num_cells entries");
  }
  double total = 0.0;
  std::vector<double> px, py, dx, dy;
  // LACO_DETERMINISTIC: per-net reduction in netlist index order
  for (const Net& net : design.nets()) {
    if (net.degree() < 2) continue;
    const std::size_t deg = net.pins.size();
    px.resize(deg);
    py.resize(deg);
    dx.assign(deg, 0.0);
    dy.assign(deg, 0.0);
    for (std::size_t i = 0; i < deg; ++i) {
      const Point p = design.pin_position(net.pins[i]);
      px[i] = p.x;
      py[i] = p.y;
    }
    total += net.weight *
             (axis_value(kind_, px, gamma_, &dx) + axis_value(kind_, py, gamma_, &dy));
    for (std::size_t i = 0; i < deg; ++i) {
      const CellId cid = design.pin(net.pins[i]).cell;
      if (design.cell(cid).fixed) continue;
      grad_x[static_cast<std::size_t>(cid)] += net.weight * dx[i];
      grad_y[static_cast<std::size_t>(cid)] += net.weight * dy[i];
    }
  }
  return total;
}

double WirelengthModel::evaluate(const Design& design) const {
  double total = 0.0;
  std::vector<double> px, py;
  for (const Net& net : design.nets()) {
    if (net.degree() < 2) continue;
    px.resize(net.pins.size());
    py.resize(net.pins.size());
    for (std::size_t i = 0; i < net.pins.size(); ++i) {
      const Point p = design.pin_position(net.pins[i]);
      px[i] = p.x;
      py[i] = p.y;
    }
    total += net.weight * (axis_value(kind_, px, gamma_, nullptr) +
                           axis_value(kind_, py, gamma_, nullptr));
  }
  return total;
}

}  // namespace laco
