// Electrostatics-based density model D(x, y) (ePlace / DREAMPlace,
// paper Eq. 1). Movable cells are charges with quantity q_i = area;
// fixed macros are charges too, so cells are pushed out of blockages.
// The density map is the charge distribution; the Poisson potential
// gives the energy D = ½ Σ q_i ψ(x_i) and the field gives the gradient
// dD/dx_i = −q_i E_x(x_i).
//
// Small standard cells are smoothed to at least one bin in each
// dimension (value rescaled to preserve total charge), the standard
// ePlace local-smoothing trick.
#pragma once

#include <vector>

#include "gridmap/grid_map.hpp"
#include "netlist/design.hpp"
#include "placer/poisson.hpp"

namespace laco {

class DensityModel {
 public:
  DensityModel(const Design& design, int nx, int ny);

  /// Recomputes the charge map for the design's current positions,
  /// solves Poisson, and caches potential/field.
  void update(const Design& design);

  /// Energy ½ Σ q_i ψ(center_i) over movable cells (call after update()).
  double energy(const Design& design) const;

  /// Accumulates dD/dx, dD/dy into CellId-indexed buffers.
  void add_gradient(const Design& design, double weight, std::vector<double>& grad_x,
                    std::vector<double>& grad_y) const;

  /// Density overflow: Σ_b max(0, movable_b − capacity_b) / Σ movable
  /// area, where capacity_b scales each bin's macro-free area so total
  /// capacity equals total movable area. Reaches ~0 when spread evenly.
  double overflow(const Design& design) const;

  const GridMap& density() const { return density_; }
  const GridMap& movable_density() const { return movable_density_; }
  const GridMap& potential() const { return potential_; }
  double target_density() const { return target_density_; }

 private:
  int nx_, ny_;
  PoissonSolver solver_;
  GridMap density_;          ///< total charge (movable + macro) per bin
  GridMap movable_density_;  ///< movable area per bin
  GridMap capacity_;         ///< per-bin movable-area capacity
  GridMap potential_;
  GridMap field_x_;
  GridMap field_y_;
  double target_density_ = 0.0;  ///< charge per bin when perfectly spread
};

}  // namespace laco
