#include "placer/nesterov.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace laco {

NesterovOptimizer::NesterovOptimizer(std::vector<double> x0, std::vector<double> y0,
                                     double initial_step)
    : ux_(x0), uy_(y0), vx_(std::move(x0)), vy_(std::move(y0)), initial_step_(initial_step) {
  if (ux_.size() != uy_.size()) throw std::invalid_argument("NesterovOptimizer: size mismatch");
}

double NesterovOptimizer::step(const std::vector<double>& grad_x,
                               const std::vector<double>& grad_y, double max_move) {
  if (grad_x.size() != ux_.size() || grad_y.size() != uy_.size()) {
    throw std::invalid_argument("NesterovOptimizer::step: gradient size mismatch");
  }
  // Barzilai–Borwein: alpha = |Δv| / |Δg| once two samples exist.
  double alpha = initial_step_;
  if (have_prev_) {
    double dv2 = 0.0, dg2 = 0.0;
    // LACO_DETERMINISTIC: BB step-length reduction in cell index order
    for (std::size_t i = 0; i < ux_.size(); ++i) {
      const double dvx = vx_[i] - prev_vx_[i];
      const double dvy = vy_[i] - prev_vy_[i];
      const double dgx = grad_x[i] - prev_gx_[i];
      const double dgy = grad_y[i] - prev_gy_[i];
      dv2 += dvx * dvx + dvy * dvy;
      dg2 += dgx * dgx + dgy * dgy;
    }
    if (dg2 > 1e-30 && dv2 > 0.0) {
      alpha = std::sqrt(dv2 / dg2);
    }
  }
  alpha *= step_scale_;

  // Trust region: cap the largest coordinate move this iteration, which
  // keeps the high-λ end game stable.
  double gmax = 0.0;
  for (std::size_t i = 0; i < grad_x.size(); ++i) {
    gmax = std::max({gmax, std::abs(grad_x[i]), std::abs(grad_y[i])});
  }
  if (gmax > 0.0 && alpha * gmax > max_move) alpha = max_move / gmax;

  prev_vx_ = vx_;
  prev_vy_ = vy_;
  prev_gx_ = grad_x;
  prev_gy_ = grad_y;
  have_prev_ = true;

  const double a_next = (1.0 + std::sqrt(4.0 * a_ * a_ + 1.0)) * 0.5;
  const double coef = (a_ - 1.0) / a_next;
  a_ = a_next;

  for (std::size_t i = 0; i < ux_.size(); ++i) {
    const double new_ux = vx_[i] - alpha * grad_x[i];
    const double new_uy = vy_[i] - alpha * grad_y[i];
    vx_[i] = new_ux + coef * (new_ux - ux_[i]);
    vy_[i] = new_uy + coef * (new_uy - uy_[i]);
    ux_[i] = new_ux;
    uy_[i] = new_uy;
  }
  return alpha;
}

NesterovState NesterovOptimizer::state() const {
  NesterovState s;
  s.ux = ux_;
  s.uy = uy_;
  s.vx = vx_;
  s.vy = vy_;
  s.prev_vx = prev_vx_;
  s.prev_vy = prev_vy_;
  s.prev_gx = prev_gx_;
  s.prev_gy = prev_gy_;
  s.a = a_;
  s.initial_step = initial_step_;
  s.step_scale = step_scale_;
  s.have_prev = have_prev_;
  return s;
}

void NesterovOptimizer::restore(const NesterovState& state) {
  const std::size_t n = state.ux.size();
  const bool main_ok =
      state.uy.size() == n && state.vx.size() == n && state.vy.size() == n;
  // The prev vectors are empty until the first step() populates them.
  const bool prev_ok = state.have_prev
                           ? (state.prev_vx.size() == n && state.prev_vy.size() == n &&
                              state.prev_gx.size() == n && state.prev_gy.size() == n)
                           : (state.prev_vx.empty() && state.prev_vy.empty() &&
                              state.prev_gx.empty() && state.prev_gy.empty());
  if (!main_ok || !prev_ok) {
    throw std::invalid_argument("NesterovOptimizer::restore: inconsistent state sizes");
  }
  ux_ = state.ux;
  uy_ = state.uy;
  vx_ = state.vx;
  vy_ = state.vy;
  prev_vx_ = state.prev_vx;
  prev_vy_ = state.prev_vy;
  prev_gx_ = state.prev_gx;
  prev_gy_ = state.prev_gy;
  a_ = state.a;
  initial_step_ = state.initial_step;
  step_scale_ = state.step_scale;
  have_prev_ = state.have_prev;
}

}  // namespace laco
