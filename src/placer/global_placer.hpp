// The global placement driver: minimizes
//   Σ_e W_e(x, y) + λ·D(x, y) [+ η·L(x, y)]        (paper Eqs. 1 and 8)
// with Nesterov + BB steps, λ ramped each iteration so density
// gradually dominates — the iterative spreading whose distribution
// shift the LACO paper studies.
//
// The congestion penalty L is injected through a hook so the same
// driver runs plain DREAMPlace, DREAM-Cong, and LACO configurations.
// An observer hook receives the design after every iteration (feature
// snapshots, Fig. 1 statistics, training data collection).
#pragma once

#include <functional>
#include <vector>

#include "netlist/design.hpp"
#include "placer/density.hpp"
#include "placer/wirelength.hpp"
#include "util/timer.hpp"

namespace laco {

struct IterationStats {
  int iteration = 0;
  double wa_wirelength = 0.0;
  double hpwl = 0.0;
  double overflow = 1.0;
  double lambda = 0.0;
  double penalty = 0.0;   ///< congestion penalty value (0 when disabled)
  double step_size = 0.0;
};

struct GlobalPlacerOptions {
  int bin_nx = 64;
  int bin_ny = 64;
  int max_iterations = 600;
  int min_iterations = 100;
  double target_overflow = 0.08;
  double lambda_init_ratio = 1e-2;  ///< initial density/wirelength gradient ratio
  double lambda_mult = 1.03;        ///< ratio ramp per iteration
  double lambda_ratio_cap = 30.0;   ///< max density/wirelength gradient ratio
  double max_move_bins = 1.0;       ///< trust region: max move per iter (bins)
  double gamma_base_bins = 1.0;     ///< γ = bins·bin_w·(0.1 + factor·overflow)
  double gamma_overflow_factor = 4.0;
  WirelengthKind wirelength_kind = WirelengthKind::kWeightedAverage;
  bool center_init = true;          ///< start all movables near the core center
  double init_noise_frac = 0.02;    ///< noise stddev as fraction of core width
  /// Stop early when the density ratio is at its cap and overflow has
  /// not improved for this many iterations (0 disables).
  int stall_window = 50;
  unsigned seed = 7;
};

struct PlacementResult {
  int iterations = 0;
  double final_hpwl = 0.0;
  double final_overflow = 1.0;
  bool converged = false;
  std::vector<IterationStats> history;
};

class GlobalPlacer {
 public:
  /// Penalty hook: called with the design synced to the current
  /// positions; returns the penalty value and *accumulates* the already-
  /// weighted gradient η·∇L into the CellId-indexed buffers.
  using PenaltyHook = std::function<double(const Design&, int iteration,
                                           std::vector<double>& grad_x,
                                           std::vector<double>& grad_y)>;
  using Observer = std::function<void(const Design&, const IterationStats&)>;

  GlobalPlacer(Design& design, GlobalPlacerOptions options);

  void set_penalty_hook(PenaltyHook hook) { penalty_ = std::move(hook); }
  void set_observer(Observer observer) { observer_ = std::move(observer); }
  /// Phase timings are recorded here when set (Fig. 8 reproduction).
  void set_runtime_breakdown(RuntimeBreakdown* breakdown) { breakdown_ = breakdown; }

  PlacementResult run();

  const DensityModel& density_model() const { return density_; }

 private:
  void initialize_positions(std::vector<double>& x, std::vector<double>& y);

  Design& design_;
  GlobalPlacerOptions options_;
  DensityModel density_;
  WirelengthModel wirelength_;
  PenaltyHook penalty_;
  Observer observer_;
  RuntimeBreakdown* breakdown_ = nullptr;
  std::vector<double> pin_count_;  ///< per-cell pin counts (preconditioner)
  double bin_area_ = 1.0;
};

}  // namespace laco
