// The global placement driver: minimizes
//   Σ_e W_e(x, y) + λ·D(x, y) [+ η·L(x, y)]        (paper Eqs. 1 and 8)
// with Nesterov + BB steps, λ ramped each iteration so density
// gradually dominates — the iterative spreading whose distribution
// shift the LACO paper studies.
//
// The congestion penalty L is injected through a hook so the same
// driver runs plain DREAMPlace, DREAM-Cong, and LACO configurations.
// An observer hook receives the design after every iteration (feature
// snapshots, Fig. 1 statistics, training data collection).
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "placer/density.hpp"
#include "placer/wirelength.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace laco {

struct IterationStats {
  int iteration = 0;
  double wa_wirelength = 0.0;
  double hpwl = 0.0;
  double overflow = 1.0;
  double lambda = 0.0;
  double penalty = 0.0;   ///< congestion penalty value (0 when disabled)
  double step_size = 0.0;
};

/// Crash-safety and divergence-recovery knobs (docs/RELIABILITY.md
/// "Placement snapshots & resume"). Durable snapshots are opt-in; the
/// in-memory divergence watchdog is on by default and is numerically
/// neutral until it actually trips.
struct PlacerRecoveryOptions {
  int snapshot_every = 0;    ///< durable snapshot cadence in iterations (0 = off)
  std::string snapshot_dir;  ///< directory for the double-buffered slot files
  bool resume = false;       ///< resume from snapshot_dir when a valid snapshot exists
  bool watchdog = true;      ///< divergence detection + rollback
  /// In-memory last-good capture cadence when durable snapshots are off
  /// (the watchdog needs something to roll back to).
  int capture_every = 10;
  double damp_factor = 0.5;  ///< step-scale multiplier compounded per rollback
  int max_rollbacks = 8;     ///< rollback attempts per run before failing cleanly
  /// HPWL above this multiple of the running-peak HPWL trips the
  /// watchdog. The peak only grows, so legitimate spreading (which
  /// raises HPWL steadily) never trips it.
  double hpwl_explode_factor = 10.0;
  /// Overflow above last-good + this margin trips the watchdog.
  double overflow_explode_margin = 0.5;
  /// Healthy iterations after a rollback before the damped step scale
  /// relaxes one damp_factor back toward 1.0 (no one-way ratchet).
  int recover_window = 25;
};

/// Snapshot/rollback counters for one run(), mirrored into the
/// `placer.snapshot.*` / `placer.recovery.*` metrics.
struct PlacerRecoveryStats {
  /// Snapshots handed to the store's background writer (latest-wins:
  /// a capture superseded before its write started produces no file).
  std::uint64_t snapshot_saves = 0;
  std::uint64_t snapshot_save_failures = 0;  ///< failed background writes
  std::uint64_t watchdog_trips = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t step_scale_relaxes = 0;
  int resumed_from_iteration = -1;  ///< -1 = fresh start
};

/// Thrown when the divergence watchdog exhausts its rollback budget (or
/// has no snapshot to roll back to): the run failed cleanly rather than
/// emitting a garbage placement.
class PlacementDivergedError : public std::runtime_error {
 public:
  PlacementDivergedError(const std::string& what, int iteration)
      : std::runtime_error(what), iteration_(iteration) {}
  int iteration() const { return iteration_; }

 private:
  int iteration_;
};

struct GlobalPlacerOptions {
  int bin_nx = 64;
  int bin_ny = 64;
  int max_iterations = 600;
  int min_iterations = 100;
  double target_overflow = 0.08;
  double lambda_init_ratio = 1e-2;  ///< initial density/wirelength gradient ratio
  double lambda_mult = 1.03;        ///< ratio ramp per iteration
  double lambda_ratio_cap = 30.0;   ///< max density/wirelength gradient ratio
  double max_move_bins = 1.0;       ///< trust region: max move per iter (bins)
  double gamma_base_bins = 1.0;     ///< γ = bins·bin_w·(0.1 + factor·overflow)
  double gamma_overflow_factor = 4.0;
  WirelengthKind wirelength_kind = WirelengthKind::kWeightedAverage;
  bool center_init = true;          ///< start all movables near the core center
  double init_noise_frac = 0.02;    ///< noise stddev as fraction of core width
  /// Stop early when the density ratio is at its cap and overflow has
  /// not improved for this many iterations (0 disables).
  int stall_window = 50;
  unsigned seed = 7;
  PlacerRecoveryOptions recovery;
};

struct PlacementResult {
  int iterations = 0;
  double final_hpwl = 0.0;
  double final_overflow = 1.0;
  bool converged = false;
  std::vector<IterationStats> history;
  PlacerRecoveryStats recovery;
};

class GlobalPlacer {
 public:
  /// Penalty hook: called with the design synced to the current
  /// positions; returns the penalty value and *accumulates* the already-
  /// weighted gradient η·∇L into the CellId-indexed buffers.
  using PenaltyHook = std::function<double(const Design&, int iteration,
                                           std::vector<double>& grad_x,
                                           std::vector<double>& grad_y)>;
  using Observer = std::function<void(const Design&, const IterationStats&)>;
  /// Penalty state codec for snapshots: the saver serializes the penalty
  /// hook's internal state (frame history, stats) into an opaque blob,
  /// the restorer rebuilds it. String-typed so the placer stays
  /// decoupled from the serialization layer and from laco.
  using PenaltyStateSaver = std::function<std::string()>;
  using PenaltyStateRestorer = std::function<void(const std::string&)>;

  GlobalPlacer(Design& design, GlobalPlacerOptions options);

  void set_penalty_hook(PenaltyHook hook) { penalty_ = std::move(hook); }
  void set_observer(Observer observer) { observer_ = std::move(observer); }
  void set_penalty_state_codec(PenaltyStateSaver saver, PenaltyStateRestorer restorer) {
    penalty_saver_ = std::move(saver);
    penalty_restorer_ = std::move(restorer);
  }
  /// Phase timings are recorded here when set (Fig. 8 reproduction).
  void set_runtime_breakdown(RuntimeBreakdown* breakdown) { breakdown_ = breakdown; }

  PlacementResult run();

  const DensityModel& density_model() const { return density_; }

 private:
  void initialize_positions(std::vector<double>& x, std::vector<double>& y);

  Design& design_;
  GlobalPlacerOptions options_;
  DensityModel density_;
  WirelengthModel wirelength_;
  PenaltyHook penalty_;
  Observer observer_;
  PenaltyStateSaver penalty_saver_;
  PenaltyStateRestorer penalty_restorer_;
  RuntimeBreakdown* breakdown_ = nullptr;
  std::vector<double> pin_count_;  ///< per-cell pin counts (preconditioner)
  double bin_area_ = 1.0;
  /// Initialization RNG; a member (not a local) so its post-init state
  /// rides along in snapshots and resumes are bitwise reproducible.
  Rng rng_;
};

}  // namespace laco
