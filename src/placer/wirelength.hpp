// Smooth HPWL surrogates for analytical placement (paper Eq. 1):
//
//  * Weighted-average (WA), DREAMPlace's default:
//      WA⁺ = Σ xᵢ e^{xᵢ/γ} / Σ e^{xᵢ/γ},  WA⁻ = Σ xᵢ e^{−xᵢ/γ} / Σ e^{−xᵢ/γ}
//      W_e = (WA⁺ − WA⁻)_x + (WA⁺ − WA⁻)_y
//  * Log-sum-exp (LSE), the classic alternative (Naylor patent / APlace):
//      W_e = γ·(log Σ e^{xᵢ/γ} + log Σ e^{−xᵢ/γ}) per axis
//
// γ controls smoothness; as γ→0 both → HPWL (LSE from above). Exponents
// are shifted by the pin max/min for numerical stability.
#pragma once

#include <vector>

#include "netlist/design.hpp"

namespace laco {

enum class WirelengthKind { kWeightedAverage, kLogSumExp };

class WirelengthModel {
 public:
  explicit WirelengthModel(double gamma,
                           WirelengthKind kind = WirelengthKind::kWeightedAverage)
      : gamma_(gamma), kind_(kind) {}

  void set_gamma(double gamma) { gamma_ = gamma; }
  double gamma() const { return gamma_; }
  WirelengthKind kind() const { return kind_; }

  /// Evaluates total WA wirelength at the design's current positions and
  /// *accumulates* dW/dx, dW/dy per cell (CellId-indexed buffers of
  /// num_cells entries; fixed cells receive no gradient).
  double evaluate_with_grad(const Design& design, std::vector<double>& grad_x,
                            std::vector<double>& grad_y) const;

  /// Wirelength only (no gradient).
  double evaluate(const Design& design) const;

 private:
  double gamma_;
  WirelengthKind kind_;
};

}  // namespace laco
