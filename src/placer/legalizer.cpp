#include "placer/legalizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace laco {
namespace {

/// A maximal free interval of one row. Placed cells form one contiguous
/// block [lo, hi); new cells extend the block on either side, which
/// keeps both halves of a row usable even when the global placement is
/// still clumped near the row center.
struct Segment {
  double xl, xh;
  double lo, hi;  ///< occupied block; empty when lo == hi

  bool empty() const { return lo >= hi; }
  double free_left() const { return empty() ? xh - xl : lo - xl; }
  double free_right() const { return empty() ? xh - xl : xh - hi; }
};

struct Row {
  double y;
  std::vector<Segment> segments;
};

/// Removes [cut.xl, cut.xh] from every segment of rows the cut overlaps
/// vertically.
void carve(std::vector<Row>& rows, const Rect& cut, double row_height) {
  for (Row& row : rows) {
    if (cut.yh <= row.y || cut.yl >= row.y + row_height) continue;
    std::vector<Segment> updated;
    for (const Segment& seg : row.segments) {
      if (cut.xh <= seg.xl || cut.xl >= seg.xh) {
        updated.push_back(seg);
        continue;
      }
      if (cut.xl > seg.xl) updated.push_back({seg.xl, cut.xl, seg.xl, seg.xl});
      if (cut.xh < seg.xh) updated.push_back({cut.xh, seg.xh, cut.xh, cut.xh});
    }
    row.segments = std::move(updated);
  }
}

/// Rows covering `domain` (aligned to the core's row grid), with macros
/// and all `exclusions` carved out.
std::vector<Row> build_rows(const Design& design, const Rect& domain,
                            const std::vector<Rect>& exclusions) {
  const Rect& core = design.core();
  const double rh = design.row_height();
  const int first_row = std::max(0, static_cast<int>(std::ceil((domain.yl - core.yl) / rh - 1e-9)));
  const int num_core_rows = std::max(1, static_cast<int>(std::floor(core.height() / rh)));
  std::vector<Row> rows;
  for (int r = first_row; r < num_core_rows; ++r) {
    const double y = core.yl + r * rh;
    if (y + rh > domain.yh + 1e-9) break;
    const double xl = std::max(domain.xl, core.xl);
    const double xh = std::min(domain.xh, core.xh);
    if (xh - xl <= 0.0) continue;
    rows.push_back({y, {{xl, xh, xl, xl}}});
  }
  for (const Cell& cell : design.cells()) {
    if (cell.kind != CellKind::kMacro) continue;
    carve(rows, cell.rect(), rh);
  }
  for (const Rect& r : exclusions) carve(rows, r, rh);
  return rows;
}

/// Tetris placement of `order` into `rows`; updates `result`.
void place_cells(Design& design, const std::vector<CellId>& order, std::vector<Row>& rows,
                 const LegalizerOptions& options, LegalizeResult& result) {
  if (rows.empty()) {
    result.failed += order.size();
    return;
  }
  const double rh = design.row_height();
  const double rows_y0 = rows.front().y;
  for (const CellId cid : order) {
    Cell& cell = design.cell(cid);
    const double tx = cell.x;
    const double ty = cell.y;
    const int target_row = static_cast<int>(
        std::clamp(std::round((ty - rows_y0) / rh), 0.0, static_cast<double>(rows.size()) - 1.0));

    double best_cost = std::numeric_limits<double>::infinity();
    Segment* best_seg = nullptr;
    double best_x = 0.0, best_y = 0.0;
    bool best_left = false;
    const int max_radius = static_cast<int>(rows.size());
    for (int radius = 0; radius <= max_radius; ++radius) {
      if (best_seg != nullptr && radius > options.row_search_window) break;
      for (const int dir : {-1, 1}) {
        if (radius == 0 && dir == 1) continue;
        const int r = target_row + dir * radius;
        if (r < 0 || static_cast<std::size_t>(r) >= rows.size()) continue;
        Row& row = rows[static_cast<std::size_t>(r)];
        for (Segment& seg : row.segments) {
          const auto consider = [&](double x, bool left_side) {
            const double cost = std::abs(x - tx) + std::abs(row.y - ty);
            if (cost < best_cost) {
              best_cost = cost;
              best_seg = &seg;
              best_x = x;
              best_y = row.y;
              best_left = left_side;
            }
          };
          if (seg.free_right() >= cell.width) {
            consider(std::clamp(tx, seg.empty() ? seg.xl : seg.hi, seg.xh - cell.width), false);
          }
          if (!seg.empty() && seg.free_left() >= cell.width) {
            consider(std::clamp(tx, seg.xl, seg.lo - cell.width), true);
          }
        }
      }
    }
    if (best_seg == nullptr) {
      ++result.failed;
      continue;
    }
    cell.x = best_x;
    cell.y = best_y;
    if (best_seg->empty()) {
      best_seg->lo = best_x;
      best_seg->hi = best_x + cell.width;
    } else if (best_left) {
      best_seg->lo = best_x;
    } else {
      best_seg->hi = best_x + cell.width;
    }
    ++result.placed;
    const double disp = std::abs(best_x - tx) + std::abs(best_y - ty);
    result.total_displacement += disp;
    result.max_displacement = std::max(result.max_displacement, disp);
  }
}

std::vector<CellId> sorted_by_x(const Design& design, std::vector<CellId> cells) {
  std::sort(cells.begin(), cells.end(),
            [&](CellId a, CellId b) { return design.cell(a).x < design.cell(b).x; });
  return cells;
}

}  // namespace

LegalizeResult legalize(Design& design, const LegalizerOptions& options) {
  LegalizeResult result;

  // Fence regions are exclusive: members legalize inside their fence,
  // everyone else in the core minus all fences.
  std::vector<Rect> fence_rects;
  for (const Fence& fence : design.fences()) fence_rects.push_back(fence.region);

  for (const Fence& fence : design.fences()) {
    std::vector<Row> rows = build_rows(design, fence.region, {});
    std::vector<CellId> members;
    for (const CellId cid : fence.members) {
      if (!design.cell(cid).fixed) members.push_back(cid);
    }
    place_cells(design, sorted_by_x(design, std::move(members)), rows, options, result);
  }

  std::vector<Row> rows = build_rows(design, design.core(), fence_rects);
  std::vector<CellId> unfenced;
  for (const CellId cid : design.movable_cells()) {
    if (design.fence_of(cid) == kNoFence) unfenced.push_back(cid);
  }
  place_cells(design, sorted_by_x(design, std::move(unfenced)), rows, options, result);
  return result;
}

std::size_t count_legality_violations(const Design& design) {
  std::size_t violations = 0;
  const Rect& core = design.core();
  const double rh = design.row_height();
  // Row alignment and core containment.
  for (const CellId cid : design.movable_cells()) {
    const Cell& cell = design.cell(cid);
    const double row_offset = std::fmod(cell.y - core.yl, rh);
    if (std::min(row_offset, rh - row_offset) > 1e-6) ++violations;
    if (cell.x < core.xl - 1e-9 || cell.x + cell.width > core.xh + 1e-9 ||
        cell.y < core.yl - 1e-9 || cell.y + cell.height > core.yh + 1e-9) {
      ++violations;
    }
  }
  // Pairwise overlap via a sweep over row buckets.
  std::vector<std::vector<const Cell*>> by_row;
  const int num_rows = std::max(1, static_cast<int>(std::floor(core.height() / rh)));
  by_row.resize(static_cast<std::size_t>(num_rows));
  for (const CellId cid : design.movable_cells()) {
    const Cell& cell = design.cell(cid);
    const int r = std::clamp(static_cast<int>((cell.y - core.yl) / rh), 0, num_rows - 1);
    by_row[static_cast<std::size_t>(r)].push_back(&cell);
  }
  for (auto& row : by_row) {
    std::sort(row.begin(), row.end(), [](const Cell* a, const Cell* b) { return a->x < b->x; });
    for (std::size_t i = 1; i < row.size(); ++i) {
      if (row[i - 1]->x + row[i - 1]->width > row[i]->x + 1e-6) ++violations;
    }
  }
  // Overlap with macros.
  for (const CellId cid : design.movable_cells()) {
    const Cell& cell = design.cell(cid);
    for (const Cell& other : design.cells()) {
      if (other.kind != CellKind::kMacro) continue;
      if (overlap_area(cell.rect(), other.rect()) > 1e-9) {
        ++violations;
        break;
      }
    }
  }
  // Fence containment / exclusivity.
  for (const CellId cid : design.movable_cells()) {
    const Cell& cell = design.cell(cid);
    const FenceId fence = design.fence_of(cid);
    if (fence != kNoFence) {
      const Rect& region = design.fences()[static_cast<std::size_t>(fence)].region;
      if (overlap_area(cell.rect(), region) < cell.area() - 1e-9) ++violations;
    } else {
      for (const Fence& f : design.fences()) {
        if (overlap_area(cell.rect(), f.region) > 1e-9) {
          ++violations;
          break;
        }
      }
    }
  }
  return violations;
}

}  // namespace laco
