// Congestion-driven net weighting — the second classic routability
// family the paper's introduction references (alongside cell inflation):
// after routing, nets that cross congested regions get their wirelength
// weight increased, so the next placement round pulls them tighter and
// routes them shorter. Complements inflation (which makes *cells*
// bigger) by making *nets* more expensive.
//
//   repeat R rounds:
//     1. global placement (warm-started after round 1);
//     2. global routing → per-gcell utilization;
//     3. for each net, weight ×= 1 + rate·max(0, max-utilization-on-its
//        bbox − threshold), capped.
//
// Net weights are restored before returning so later evaluations use the
// original objective.
#pragma once

#include "placer/global_placer.hpp"
#include "router/global_router.hpp"

namespace laco {

struct NetWeightingOptions {
  int rounds = 3;
  double utilization_threshold = 0.85;
  double growth_rate = 1.0;   ///< weight factor per unit excess utilization
  double max_weight = 4.0;    ///< per-net weight cap
  GlobalPlacerOptions placer;
  GlobalRouterConfig router;
};

struct NetWeightingResult {
  int rounds_run = 0;
  double reweighted_fraction = 0.0;  ///< nets with weight > original
  double mean_weight = 1.0;
  PlacementResult last_placement;
  std::vector<double> overflow_per_round;
};

/// Runs the reweighting loop on `design` (positions mutate; net weights
/// are restored before returning).
NetWeightingResult run_net_weighting_placement(Design& design,
                                               const NetWeightingOptions& options);

}  // namespace laco
