// Nesterov accelerated gradient with Barzilai–Borwein step estimation —
// the optimizer DREAMPlace uses for Eq. (1). The caller evaluates the
// objective gradient at the look-ahead point v_k; step() advances the
// major sequence u_k and returns the step length it used.
#pragma once

#include <limits>
#include <vector>

namespace laco {

/// Complete optimizer loop state, exported for placement snapshots
/// (placer/snapshot.hpp) and divergence rollback. Restoring a state
/// reproduces the optimizer's trajectory bitwise.
struct NesterovState {
  std::vector<double> ux, uy;            ///< major sequence
  std::vector<double> vx, vy;            ///< look-ahead sequence
  std::vector<double> prev_vx, prev_vy;  ///< previous look-ahead (BB)
  std::vector<double> prev_gx, prev_gy;  ///< previous gradient (BB)
  double a = 1.0;                        ///< Nesterov momentum sequence
  double initial_step = 1.0;
  double step_scale = 1.0;
  bool have_prev = false;
};

class NesterovOptimizer {
 public:
  /// Starts from (x0, y0); `initial_step` is used before two gradient
  /// samples exist for the BB estimate (units: layout distance per unit
  /// gradient).
  NesterovOptimizer(std::vector<double> x0, std::vector<double> y0, double initial_step);

  /// The look-ahead point at which the caller must evaluate gradients.
  const std::vector<double>& vx() const { return vx_; }
  const std::vector<double>& vy() const { return vy_; }

  /// Consumes the gradient at (vx, vy), advances, returns the step used.
  /// `max_move` caps the largest single-coordinate displacement this
  /// iteration (trust region); pass +inf to disable.
  double step(const std::vector<double>& grad_x, const std::vector<double>& grad_y,
              double max_move = std::numeric_limits<double>::infinity());

  /// Rescales the next step (used when the placer detects divergence).
  void damp(double factor) { step_scale_ *= factor; }

  /// Current BB step multiplier (1.0 unless damped or restored).
  double step_scale() const { return step_scale_; }
  /// Sets the step multiplier outright — the recovery layer uses this
  /// both to compound rollback damping and to relax it back toward 1.0
  /// after sustained healthy progress.
  void set_step_scale(double scale) { step_scale_ = scale; }

  /// Copies out the complete loop state for snapshotting.
  NesterovState state() const;
  /// Restores a previously exported state; subsequent steps are bitwise
  /// identical to the run that produced it. Throws std::invalid_argument
  /// when the state's vector sizes are inconsistent.
  void restore(const NesterovState& state);

 private:
  std::vector<double> ux_, uy_;        // major sequence
  std::vector<double> vx_, vy_;        // look-ahead sequence
  std::vector<double> prev_vx_, prev_vy_;
  std::vector<double> prev_gx_, prev_gy_;
  double a_ = 1.0;                     // Nesterov momentum sequence
  double initial_step_;
  double step_scale_ = 1.0;
  bool have_prev_ = false;
};

}  // namespace laco
