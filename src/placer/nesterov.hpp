// Nesterov accelerated gradient with Barzilai–Borwein step estimation —
// the optimizer DREAMPlace uses for Eq. (1). The caller evaluates the
// objective gradient at the look-ahead point v_k; step() advances the
// major sequence u_k and returns the step length it used.
#pragma once

#include <limits>
#include <vector>

namespace laco {

class NesterovOptimizer {
 public:
  /// Starts from (x0, y0); `initial_step` is used before two gradient
  /// samples exist for the BB estimate (units: layout distance per unit
  /// gradient).
  NesterovOptimizer(std::vector<double> x0, std::vector<double> y0, double initial_step);

  /// The look-ahead point at which the caller must evaluate gradients.
  const std::vector<double>& vx() const { return vx_; }
  const std::vector<double>& vy() const { return vy_; }

  /// Consumes the gradient at (vx, vy), advances, returns the step used.
  /// `max_move` caps the largest single-coordinate displacement this
  /// iteration (trust region); pass +inf to disable.
  double step(const std::vector<double>& grad_x, const std::vector<double>& grad_y,
              double max_move = std::numeric_limits<double>::infinity());

  /// Rescales the next step (used when the placer detects divergence).
  void damp(double factor) { step_scale_ *= factor; }

 private:
  std::vector<double> ux_, uy_;        // major sequence
  std::vector<double> vx_, vy_;        // look-ahead sequence
  std::vector<double> prev_vx_, prev_vy_;
  std::vector<double> prev_gx_, prev_gy_;
  double a_ = 1.0;                     // Nesterov momentum sequence
  double initial_step_;
  double step_scale_ = 1.0;
  bool have_prev_ = false;
};

}  // namespace laco
