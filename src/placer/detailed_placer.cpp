#include "placer/detailed_placer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace laco {
namespace {

/// HPWL restricted to the nets touching the given cells.
double partial_hpwl(const Design& design, const std::vector<NetId>& nets) {
  double total = 0.0;
  for (const NetId nid : nets) {
    const Net& net = design.net(nid);
    if (net.degree() < 2) continue;
    const Rect bb = net_bbox(design, net);
    total += net.weight * (bb.width() + bb.height());
  }
  return total;
}

}  // namespace

DetailedPlaceResult detailed_place(Design& design, const DetailedPlacerOptions& options) {
  DetailedPlaceResult result;
  result.hpwl_before = design.hpwl();

  // Precompute pin lists per cell to avoid rescanning all pins per swap.
  std::vector<std::vector<NetId>> cell_nets(design.num_cells());
  for (PinId pid = 0; pid < static_cast<PinId>(design.num_pins()); ++pid) {
    const Pin& pin = design.pin(pid);
    cell_nets[static_cast<std::size_t>(pin.cell)].push_back(pin.net);
  }
  for (auto& nets : cell_nets) {
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  }
  const auto merged_nets = [&](CellId a, CellId b) {
    std::vector<NetId> nets = cell_nets[static_cast<std::size_t>(a)];
    nets.insert(nets.end(), cell_nets[static_cast<std::size_t>(b)].begin(),
                cell_nets[static_cast<std::size_t>(b)].end());
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
    return nets;
  };

  // Bucket movable cells by row.
  const double rh = design.row_height();
  const Rect& core = design.core();
  const int num_rows = std::max(1, static_cast<int>(std::floor(core.height() / rh)));
  std::vector<std::vector<CellId>> rows(static_cast<std::size_t>(num_rows));
  for (const CellId cid : design.movable_cells()) {
    const int r = std::clamp(static_cast<int>((design.cell(cid).y - core.yl) / rh), 0,
                             num_rows - 1);
    rows[static_cast<std::size_t>(r)].push_back(cid);
  }
  for (auto& row : rows) {
    std::sort(row.begin(), row.end(),
              [&](CellId a, CellId b) { return design.cell(a).x < design.cell(b).x; });
  }

  std::vector<const Cell*> macros;
  for (const Cell& c : design.cells()) {
    if (c.kind == CellKind::kMacro) macros.push_back(&c);
  }
  const auto violates_region = [&](CellId cid) {
    const Cell& c = design.cell(cid);
    for (const Cell* m : macros) {
      if (overlap_area(c.rect(), m->rect()) > 1e-9) return true;
    }
    // Fence exclusivity: members stay inside, others stay out.
    const FenceId fence = design.fence_of(cid);
    if (fence != kNoFence) {
      const Rect& region = design.fences()[static_cast<std::size_t>(fence)].region;
      if (overlap_area(c.rect(), region) < c.area() - 1e-9) return true;
    } else {
      for (const Fence& f : design.fences()) {
        if (overlap_area(c.rect(), f.region) > 1e-9) return true;
      }
    }
    return false;
  };

  for (int pass = 0; pass < options.passes; ++pass) {
    for (auto& row : rows) {
      for (std::size_t i = 0; i + 1 < row.size(); ++i) {
        Cell& a = design.cell(row[i]);
        Cell& b = design.cell(row[i + 1]);
        // Swap keeps the pair's left edge and packing: a takes b's slot
        // start only if widths permit without overlap — place b at a.x
        // and a right after b.
        const double ax = a.x, bx = b.x;
        const double gap = (bx + b.width) - ax;  // span occupied by the pair
        if (gap < a.width + b.width - 1e-9) continue;  // overlapping inputs; skip
        const std::vector<NetId> nets = merged_nets(row[i], row[i + 1]);
        const double before = partial_hpwl(design, nets);
        b.x = ax;
        a.x = ax + b.width + (gap - a.width - b.width);  // preserve right edge
        const double after = partial_hpwl(design, nets);
        // A pair straddling a macro gap or a fence boundary would swap
        // into the blockage / violate region exclusivity.
        const bool blocked = violates_region(row[i]) || violates_region(row[i + 1]);
        if (!blocked && after + 1e-12 < before) {
          std::swap(row[i], row[i + 1]);
          ++result.swaps_accepted;
        } else {
          a.x = ax;
          b.x = bx;
        }
      }
    }
  }
  result.hpwl_after = design.hpwl();
  return result;
}

}  // namespace laco
