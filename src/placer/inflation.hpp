// Classic routability-driven placement via cell inflation — the
// traditional congestion-optimization family the paper's introduction
// contrasts with DNN-guided methods ("integrate global routing into
// placement iterations and inflate cells according to the congestion
// map", Sec. I). Implemented here as a baseline:
//
//   repeat R rounds:
//     1. global placement (warm-started after round 1);
//     2. global routing at the current placement → congestion map;
//     3. inflate cells sitting in over-utilized gcells (width scaling,
//        capped), so the density model reserves them more space.
//
// After the last round, cell sizes are restored (centers kept) so the
// final legalization/evaluation sees true footprints.
#pragma once

#include "placer/global_placer.hpp"
#include "router/global_router.hpp"

namespace laco {

struct InflationOptions {
  int rounds = 3;              ///< GP→route→inflate iterations
  double utilization_threshold = 0.85;  ///< inflate above this gcell utilization
  double growth_rate = 0.8;    ///< width factor += rate·(utilization − threshold)
  double max_inflation = 2.0;  ///< per-cell width-factor cap
  GlobalPlacerOptions placer;
  GlobalRouterConfig router;
};

struct InflationResult {
  int rounds_run = 0;
  double inflated_fraction = 0.0;  ///< movable cells with factor > 1
  double mean_inflation = 1.0;     ///< average width factor after last round
  PlacementResult last_placement;
  /// Congestion totals per round (H+V overflow), to observe convergence.
  std::vector<double> overflow_per_round;
};

/// Runs the inflation loop on `design` (mutating positions; cell sizes
/// are restored before returning).
InflationResult run_inflation_placement(Design& design, const InflationOptions& options);

}  // namespace laco
