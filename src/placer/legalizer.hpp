// Tetris-style legalization: snaps movable standard cells onto rows,
// avoiding macro blockages and cell overlaps while minimizing
// displacement from the global-placement solution. Completes the
// GP → LG → DP flow (paper Sec. II-A) so routed metrics are measured on
// overlap-free placements.
#pragma once

#include "netlist/design.hpp"

namespace laco {

struct LegalizerOptions {
  int row_search_window = 6;  ///< rows above/below the target to consider
};

struct LegalizeResult {
  std::size_t placed = 0;
  std::size_t failed = 0;           ///< cells that found no slot (should be 0)
  double total_displacement = 0.0;  ///< Σ manhattan moves
  double max_displacement = 0.0;
};

LegalizeResult legalize(Design& design, const LegalizerOptions& options = {});

/// Post-legalization validity check: every movable cell on a row, inside
/// the core, no overlap with macros or other cells. Returns the number
/// of violations (0 = legal).
std::size_t count_legality_violations(const Design& design);

}  // namespace laco
