// Persistence for a complete trained model set (LacoModels): the
// scheme, both network configurations, all parameters, and the feature
// normalization — one directory, reload-and-run. Used by the examples so
// training and placement can live in different processes.
#pragma once

#include <string>

#include "laco/congestion_penalty.hpp"

namespace laco {

/// Writes <dir>/manifest.txt, congestion.bin, lookahead.bin (when
/// applicable), scale_hi.txt, scale_lo.txt. Creates the directory.
/// Returns false on I/O failure.
bool save_models(const LacoModels& models, const std::string& dir);

/// Rebuilds models from a directory written by save_models; throws
/// std::runtime_error on missing/corrupt files.
LacoModels load_models(const std::string& dir);

}  // namespace laco
