// The experiment pipeline — data collection, per-scheme model training,
// and prediction-quality evaluation. Benches and examples drive their
// experiments through this so the paper's protocol lives in one place:
//   * traces: placements of ISPD-2015 analogs with seed jitter, labeled
//     by the global router (Sec. IV-A);
//   * g trained self-supervised on snapshot sequences (Sec. III-C);
//   * f trained on look-ahead-predicted inputs (look-ahead schemes) or
//     end-of-placement features (DREAM-Cong) with routed labels;
//   * NRMS/SSIM evaluation of mid-placement congestion prediction
//     against the final routed congestion (Figs. 6 and 7).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "laco/congestion_penalty.hpp"
#include "metrics/nrms.hpp"
#include "metrics/ssim.hpp"
#include "train/congestion_trainer.hpp"
#include "train/lookahead_trainer.hpp"

namespace laco {

struct PipelineConfig {
  double scale = 0.01;       ///< design scale factor vs the paper's sizes
  int runs_per_design = 2;   ///< placement solutions per design
  TraceCollectionConfig trace;
  LookAheadConfig lookahead_model;        ///< channels/with_vae overridden per scheme
  CongestionFcnConfig congestion_model;   ///< in_channels overridden per scheme
  LookAheadTrainerConfig lookahead_trainer;
  CongestionTrainerConfig congestion_trainer;
};

/// Sensible defaults for CPU-scale experiments (64×64 congestion grid,
/// 32×32 look-ahead grid, K and C from the paper scaled to short runs).
PipelineConfig default_pipeline_config();

struct PredictionQuality {
  double nrms = 0.0;
  double ssim = 0.0;
  int samples = 0;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config) : config_(std::move(config)) {}

  const PipelineConfig& config() const { return config_; }

  /// Collects (and caches in memory) traces for the named designs. With
  /// a cache directory set, traces are additionally persisted to disk
  /// and reloaded across processes (keyed by design set + collection
  /// parameters).
  const std::vector<PlacementTrace>& traces_for(const std::vector<std::string>& names);

  /// Enables the on-disk trace cache (empty string disables).
  void set_trace_cache_dir(std::string dir) { trace_cache_dir_ = std::move(dir); }

  /// Trains f (and g where applicable) for `scheme` on `traces`.
  LacoModels train_models(LacoScheme scheme, const std::vector<PlacementTrace>& traces);

  /// Scheme-appropriate congestion-model training samples.
  std::vector<CongestionSample> build_f_samples(LacoScheme scheme, const LacoModels& models,
                                                const std::vector<PlacementTrace>& traces) const;

  /// Mid-placement congestion prediction vs final routed congestion.
  PredictionQuality evaluate_prediction(const LacoModels& models,
                                        const std::vector<PlacementTrace>& traces) const;
  /// Per-design breakdown of the same evaluation.
  std::map<std::string, PredictionQuality> evaluate_prediction_per_design(
      const LacoModels& models, const std::vector<PlacementTrace>& traces) const;

  /// Penalty config consistent with this pipeline's trace settings.
  PenaltyConfig penalty_config() const;

 private:
  /// f input tensor for one snapshot window ending at index t.
  nn::Tensor assemble_f_input(const LacoModels& models, const PlacementTrace& trace,
                              std::size_t t) const;

  PipelineConfig config_;
  std::map<std::string, std::vector<PlacementTrace>> trace_cache_;
  std::string trace_cache_dir_;
};

}  // namespace laco
