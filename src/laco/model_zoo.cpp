#include "laco/model_zoo.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "nn/serialize.hpp"

namespace laco {
namespace {

constexpr const char* kManifest = "manifest.txt";

std::map<std::string, std::string> read_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_models: cannot open " + path);
  std::map<std::string, std::string> kv;
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return kv;
}

int geti(const std::map<std::string, std::string>& kv, const std::string& key) {
  const auto it = kv.find(key);
  if (it == kv.end()) throw std::runtime_error("load_models: missing manifest key " + key);
  return std::stoi(it->second);
}

float getf(const std::map<std::string, std::string>& kv, const std::string& key) {
  const auto it = kv.find(key);
  if (it == kv.end()) throw std::runtime_error("load_models: missing manifest key " + key);
  return std::stof(it->second);
}

}  // namespace

bool save_models(const LacoModels& models, const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return false;

  // Weights first, manifest last and atomically: the manifest is the
  // publication point, so a crash mid-save leaves either the previous
  // complete model set or no manifest at all — never a manifest that
  // references half-written checkpoints.
  if (!nn::save_parameters_file(*models.congestion, dir + "/congestion.bin")) return false;
  if (models.lookahead &&
      !nn::save_parameters_file(*models.lookahead, dir + "/lookahead.bin")) {
    return false;
  }
  if (!models.scale_hi.save(dir + "/scale_hi.txt")) return false;
  if (!models.scale_lo.save(dir + "/scale_lo.txt")) return false;

  const std::string manifest_path = dir + "/" + kManifest;
  const std::string manifest_tmp = manifest_path + ".tmp";
  {
    std::ofstream manifest(manifest_tmp, std::ios::trunc);
    if (!manifest) return false;
    manifest << "format=laco-models-v1\n";
    manifest << "scheme=" << static_cast<int>(models.scheme) << '\n';
    const CongestionFcnConfig& fc = models.congestion->config();
    manifest << "f.in_channels=" << fc.in_channels << '\n'
             << "f.base_width=" << fc.base_width << '\n'
             << "f.leaky_slope=" << fc.leaky_slope << '\n';
    if (models.lookahead) {
      const LookAheadConfig& gc = models.lookahead->config();
      manifest << "g.frames=" << gc.frames << '\n'
               << "g.channels_per_frame=" << gc.channels_per_frame << '\n'
               << "g.base_width=" << gc.base_width << '\n'
               << "g.inception_blocks=" << gc.inception_blocks << '\n'
               << "g.groups=" << gc.groups << '\n'
               << "g.leaky_slope=" << gc.leaky_slope << '\n'
               << "g.with_vae=" << (gc.with_vae ? 1 : 0) << '\n';
    }
    manifest.flush();
    if (!manifest) {
      std::remove(manifest_tmp.c_str());
      return false;
    }
  }
  if (std::rename(manifest_tmp.c_str(), manifest_path.c_str()) != 0) {
    std::remove(manifest_tmp.c_str());
    return false;
  }
  return true;
}

LacoModels load_models(const std::string& dir) {
  const auto kv = read_manifest(dir + "/" + kManifest);
  if (kv.count("format") == 0 || kv.at("format") != "laco-models-v1") {
    throw std::runtime_error("load_models: unsupported manifest format");
  }
  LacoModels models;
  models.scheme = static_cast<LacoScheme>(geti(kv, "scheme"));

  CongestionFcnConfig fc;
  fc.in_channels = geti(kv, "f.in_channels");
  fc.base_width = geti(kv, "f.base_width");
  fc.leaky_slope = getf(kv, "f.leaky_slope");
  models.congestion = std::make_shared<CongestionFcn>(fc);
  nn::load_parameters_file(*models.congestion, dir + "/congestion.bin");

  if (kv.count("g.frames") != 0) {
    LookAheadConfig gc;
    gc.frames = geti(kv, "g.frames");
    gc.channels_per_frame = geti(kv, "g.channels_per_frame");
    gc.base_width = geti(kv, "g.base_width");
    gc.inception_blocks = geti(kv, "g.inception_blocks");
    gc.groups = geti(kv, "g.groups");
    gc.leaky_slope = getf(kv, "g.leaky_slope");
    gc.with_vae = geti(kv, "g.with_vae") != 0;
    models.lookahead = std::make_shared<LookAheadModel>(gc);
    nn::load_parameters_file(*models.lookahead, dir + "/lookahead.bin");
  }
  models.scale_hi = FeatureScale::load(dir + "/scale_hi.txt");
  models.scale_lo = FeatureScale::load(dir + "/scale_lo.txt");
  return models;
}

}  // namespace laco
