// High-level one-call placement flows: run a design through global
// placement under a chosen scheme (plain DREAMPlace, DREAM-Cong, or a
// LACO variant), then legalize, detailed-place, and route for the
// Table-I metrics.
#pragma once

#include <optional>

#include "laco/congestion_penalty.hpp"
#include "router/congestion_eval.hpp"
#include "train/scheme.hpp"

namespace laco {

struct LacoPlacerConfig {
  LacoScheme scheme = LacoScheme::kDreamPlace;
  GlobalPlacerOptions placer;
  PenaltyConfig penalty;
  GlobalRouterConfig router;
};

struct LacoRunResult {
  PlacementResult placement;
  PlacementEvaluation evaluation;
  RuntimeBreakdown breakdown;
  /// Degradation bookkeeping (zero-valued for schemes without a
  /// penalty): how often the learned penalty ran, failed, and fell back
  /// to the analytic RUDY penalty (docs/RELIABILITY.md).
  PenaltyStats penalty_stats;
};

/// Places `design` (mutating it). `models` must be provided for every
/// scheme with a congestion penalty; pass nullptr for kDreamPlace.
LacoRunResult run_laco_placement(Design& design, const LacoPlacerConfig& config,
                                 const LacoModels* models);

}  // namespace laco
