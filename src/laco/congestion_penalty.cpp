#include "laco/congestion_penalty.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "nn/ops.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/plan_cache.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/serial.hpp"

namespace laco {
namespace {

/// Registry mirror of one PenaltyStats field. The lookup takes the
/// registry lock, but the penalty runs once per apply_every placement
/// iterations — far off any hot path.
obs::Counter& penalty_counter(const char* field) {
  return obs::MetricRegistry::global().counter(std::string("laco.penalty.") + field);
}

void freeze(nn::Module& module) {
  // Conditional write: model sets handed out by serve::ModelRegistry
  // arrive pre-frozen and shared across threads; skipping the redundant
  // store keeps shared weight impls strictly read-only here.
  for (nn::Tensor p : module.parameters()) {
    if (p.requires_grad()) p.set_requires_grad(false);
  }
}

// LACO_DETERMINISTIC: gradient-norm reduction in index order
double abs_sum(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (const double v : a) s += std::abs(v);
  for (const double v : b) s += std::abs(v);
  return s;
}

/// Converts one channel of a tensor's gradient into a GridMap, applying
/// the (multiplicative) feature normalization's chain factor.
GridMap grad_channel(const nn::Tensor& t, int channel, const Rect& region, float scale) {
  const int c = t.dim(1), h = t.dim(2), w = t.dim(3);
  GridMap map(w, h, region, 0.0);
  if (t.grad().empty()) return map;
  const std::size_t base = static_cast<std::size_t>(channel) * h * w;
  (void)c;
  for (std::size_t i = 0; i < map.size(); ++i) {
    map[i] = static_cast<double>(t.grad()[base + i]) * scale;
  }
  return map;
}

}  // namespace

CongestionPenalty::CongestionPenalty(PenaltyConfig config, LacoModels models)
    : config_(config),
      models_(std::move(models)),
      traits_(traits_of(models_.scheme)),
      hi_extractor_([&] {
        FeatureConfig c = config.features_hi;
        c.with_flow = traits_.f_uses_flow;
        return c;
      }()),
      lo_extractor_([&] {
        FeatureConfig c = config.features_lo;
        c.with_flow = traits_.g_uses_flow;
        return c;
      }()),
      history_(config.frames, config.spacing) {
  if (!models_.congestion) {
    throw std::invalid_argument("CongestionPenalty: congestion model required");
  }
  if (traits_.uses_lookahead && !models_.lookahead) {
    throw std::invalid_argument("CongestionPenalty: look-ahead model required for scheme " +
                                to_string(models_.scheme));
  }
  // Inference-only models: freezing parameters keeps the autograd graph
  // restricted to the feature inputs, which is all the penalty needs.
  freeze(*models_.congestion);
  if (models_.lookahead) freeze(*models_.lookahead);
}

FeatureFrame CongestionPenalty::compute_frame(const Design& design,
                                              const FeatureExtractor& extractor,
                                              const std::vector<double>* px,
                                              const std::vector<double>* py,
                                              int iteration) const {
  FeatureFrame frame;
  {
    obs::PhaseSpan phase(breakdown_, "feature gathering");
    frame = extractor.compute(design, nullptr, nullptr, iteration);
  }
  if (extractor.config().with_flow && px != nullptr && py != nullptr) {
    obs::PhaseSpan phase(breakdown_, "cell flow");
    CellFlow flow = compute_cell_flow(design, *px, *py, extractor.config().nx,
                                      extractor.config().ny, extractor.config().scheme);
    frame.flow_x = std::move(flow.flow_x);
    frame.flow_y = std::move(flow.flow_y);
  }
  return frame;
}

void CongestionPenalty::build_feature_inputs(const Design& design, bool with_grad,
                                             nn::Tensor& hi_input, nn::Tensor& lo_input,
                                             nn::Tensor& context) {
  const int f_short_channels = traits_.uses_lookahead ? (traits_.f_uses_flow ? 5 : 3) : 3;
  const std::vector<double>* px = history_.has_positions() ? &history_.prev_x() : nullptr;
  const std::vector<double>* py = history_.has_positions() ? &history_.prev_y() : nullptr;

  // Current frame at congestion resolution (the shortcut / direct input).
  const bool hi_needs_flow = traits_.f_uses_flow;
  const FeatureFrame hi_frame =
      compute_frame(design, hi_extractor_, hi_needs_flow ? px : nullptr,
                    hi_needs_flow ? py : nullptr, 0);
  hi_input = frame_to_tensor(hi_frame, models_.scale_hi, f_short_channels);
  hi_input.set_requires_grad(with_grad);

  if (!traits_.uses_lookahead) return;

  // Current frame at look-ahead resolution.
  const int nc_g = models_.lookahead->config().channels_per_frame;
  const FeatureFrame lo_frame =
      compute_frame(design, lo_extractor_, traits_.g_uses_flow ? px : nullptr,
                    traits_.g_uses_flow ? py : nullptr, 0);
  lo_input = frame_to_tensor(lo_frame, models_.scale_lo, nc_g);
  lo_input.set_requires_grad(with_grad);

  context = frames_to_tensor(history_.context(), models_.scale_lo, nc_g);
}

nn::Tensor CongestionPenalty::build_input(const Design& design, nn::Tensor& hi_input,
                                          nn::Tensor& lo_input, bool with_grad) {
  nn::Tensor context;
  build_feature_inputs(design, with_grad, hi_input, lo_input, context);
  if (!traits_.uses_lookahead) return hi_input;

  const int nc_g = models_.lookahead->config().channels_per_frame;
  nn::Tensor g_in = nn::cat_channels({context, lo_input});

  nn::Tensor prediction;
  {
    obs::PhaseSpan phase(breakdown_, "look-ahead model");
    prediction = models_.lookahead->forward(g_in).prediction;
  }
  if (!traits_.f_uses_flow && nc_g > 3) {
    prediction = nn::slice_channels(prediction, 0, 3);  // Less-flow-KL
  }
  nn::Tensor pred_hi =
      nn::upsample_bilinear(prediction, config_.features_hi.ny, config_.features_hi.nx);
  return nn::cat_channels({pred_hi, hi_input});
}

nn::Tensor CongestionPenalty::assemble_f_input(const nn::Tensor& hi_input,
                                               const nn::Tensor& lo_input,
                                               const nn::Tensor& context) const {
  if (!traits_.uses_lookahead) return hi_input;
  const int nc_g = models_.lookahead->config().channels_per_frame;
  nn::Tensor g_in = nn::cat_channels({context, lo_input});
  nn::Tensor prediction = models_.lookahead->forward(g_in).prediction;
  if (!traits_.f_uses_flow && nc_g > 3) {
    prediction = nn::slice_channels(prediction, 0, 3);  // Less-flow-KL
  }
  nn::Tensor pred_hi =
      nn::upsample_bilinear(prediction, config_.features_hi.ny, config_.features_hi.nx);
  return nn::cat_channels({pred_hi, hi_input});
}

nn::Tensor CongestionPenalty::model_forward(const nn::Tensor& hi_input,
                                            const nn::Tensor& lo_input,
                                            const nn::Tensor& context) const {
  return models_.congestion->forward(assemble_f_input(hi_input, lo_input, context));
}

double CongestionPenalty::operator()(const Design& design, int iteration,
                                     std::vector<double>& grad_x, std::vector<double>& grad_y) {
  // History tick: capture the look-ahead frame every K iterations.
  if (traits_.uses_lookahead && history_.due(iteration)) {
    const std::vector<double>* px = history_.has_positions() ? &history_.prev_x() : nullptr;
    const std::vector<double>* py = history_.has_positions() ? &history_.prev_y() : nullptr;
    FeatureFrame lo = compute_frame(design, lo_extractor_,
                                    traits_.g_uses_flow ? px : nullptr,
                                    traits_.g_uses_flow ? py : nullptr, iteration);
    history_.capture(std::move(lo), design);
  }

  if (iteration < config_.start_iteration) return 0.0;
  if ((iteration - config_.start_iteration) % config_.apply_every != 0) return 0.0;
  if (traits_.uses_lookahead && !history_.ready()) return 0.0;

  ++stats_.applications;
  penalty_counter("applications").add(1);
  obs::TraceSpan span("laco.penalty", "laco");
  std::vector<double> pen_gx(design.num_movable(), 0.0);
  std::vector<double> pen_gy(design.num_movable(), 0.0);

  // Degraded mode: skip the learned path entirely while the bench timer
  // runs; when it reaches zero the next application re-probes it.
  bool use_learned = true;
  if (degraded_remaining_ > 0) {
    --degraded_remaining_;
    use_learned = false;
  }

  double loss = 0.0;
  bool have_loss = false;
  if (use_learned) {
    try {
      loss = learned_penalty(design, pen_gx, pen_gy);
      have_loss = true;
      ++stats_.learned_applications;
      penalty_counter("learned_applications").add(1);
      consecutive_failures_ = 0;
    } catch (const std::exception& e) {
      ++stats_.learned_failures;
      penalty_counter("learned_failures").add(1);
      ++consecutive_failures_;
      LACO_LOG_WARN << "CongestionPenalty: learned penalty failed at iteration " << iteration
                    << " (" << e.what() << "); using analytic RUDY fallback";
      if (consecutive_failures_ >= config_.degrade_threshold) {
        degraded_remaining_ = std::max(1, config_.reprobe_after);
        consecutive_failures_ = 0;
        ++stats_.degradations;
        penalty_counter("degradations").add(1);
        LACO_LOG_WARN << "CongestionPenalty: " << config_.degrade_threshold
                      << " consecutive failures; degrading to analytic penalty for "
                      << degraded_remaining_ << " applications before re-probing";
      }
      // The learned path may have thrown mid-accumulation.
      std::fill(pen_gx.begin(), pen_gx.end(), 0.0);
      std::fill(pen_gy.begin(), pen_gy.end(), 0.0);
    }
  }
  if (!have_loss) {
    ++stats_.analytic_fallbacks;
    penalty_counter("analytic_fallbacks").add(1);
    loss = analytic_penalty(design, pen_gx, pen_gy);
  }
  add_scaled(design, pen_gx, pen_gy, grad_x, grad_y);
  return loss;
}

double CongestionPenalty::learned_penalty(const Design& design, std::vector<double>& pen_gx,
                                          std::vector<double>& pen_gy) {
  LACO_FAILPOINT("laco.penalty");
  nn::Tensor hi_input, lo_input;
  nn::Tensor f_in = build_input(design, hi_input, lo_input, /*with_grad=*/true);

  nn::Tensor penalty;
  {
    obs::PhaseSpan phase(breakdown_, "congestion model");
    // Eq. (9)/(10): mean squared congestion prediction.
    penalty = nn::mean_square(models_.congestion->forward(f_in));
  }
  {
    obs::PhaseSpan phase(breakdown_, "penalty backward");
    penalty.backward();
  }

  // Chain tensor gradients back to cell coordinates through the analytic
  // feature backward passes.
  const Rect& region = design.core();
  const auto accumulate = [&](const nn::Tensor& input, const FeatureExtractor& extractor,
                              const FeatureScale& scale) {
    if (!input.defined() || input.grad().empty()) return;
    const int channels = input.dim(1);
    FeatureFrameGrad upstream{
        grad_channel(input, 0, region, scale.scale[0]),
        grad_channel(input, 1, region, scale.scale[1]),
        channels > 3 ? grad_channel(input, 3, region, scale.scale[3])
                     : GridMap(input.dim(3), input.dim(2), region, 0.0),
        channels > 4 ? grad_channel(input, 4, region, scale.scale[4])
                     : GridMap(input.dim(3), input.dim(2), region, 0.0),
    };
    std::vector<double> gx, gy;
    extractor.backward(design, upstream, gx, gy);
    for (std::size_t i = 0; i < gx.size(); ++i) {
      pen_gx[i] += gx[i];
      pen_gy[i] += gy[i];
    }
  };
  {
    obs::PhaseSpan phase(breakdown_, "penalty backward");
    accumulate(hi_input, hi_extractor_, models_.scale_hi);
    if (traits_.uses_lookahead) accumulate(lo_input, lo_extractor_, models_.scale_lo);
  }
  return penalty.item();
}

double analytic_rudy_penalty(const Design& design, const FeatureExtractor& extractor,
                             double rudy_scale, std::vector<double>& pen_gx,
                             std::vector<double>& pen_gy) {
  // L = (1/MN) Σ (s·rudy)² at the extractor's resolution — the same loss
  // shape as Eq. (12) with the identity model in place of f∘g, so the
  // η-normalized gradient keeps pushing cells out of RUDY hot spots even
  // with no usable network. dL/d rudy_i = 2 s² rudy_i / MN chains
  // through the exact RUDY backward.
  const FeatureFrame frame = extractor.compute(design, nullptr, nullptr, 0);
  const double s = rudy_scale;
  const double inv_size = 1.0 / static_cast<double>(frame.rudy.size());
  double loss = 0.0;
  GridMap d_rudy(extractor.config().nx, extractor.config().ny, design.core(), 0.0);
  for (std::size_t i = 0; i < frame.rudy.size(); ++i) {
    const double r = s * frame.rudy[i];
    loss += r * r * inv_size;
    d_rudy[i] = 2.0 * s * s * frame.rudy[i] * inv_size;
  }

  const GridMap zero(extractor.config().nx, extractor.config().ny, design.core(), 0.0);
  FeatureFrameGrad upstream{std::move(d_rudy), zero, zero, zero};
  std::vector<double> gx, gy;
  extractor.backward(design, upstream, gx, gy);
  for (std::size_t i = 0; i < gx.size(); ++i) {
    pen_gx[i] += gx[i];
    pen_gy[i] += gy[i];
  }
  return loss;
}

double CongestionPenalty::analytic_penalty(const Design& design, std::vector<double>& pen_gx,
                                           std::vector<double>& pen_gy) {
  obs::PhaseSpan phase(breakdown_, "analytic fallback");
  return analytic_rudy_penalty(design, hi_extractor_,
                               static_cast<double>(models_.scale_hi.scale[0]), pen_gx, pen_gy);
}

void CongestionPenalty::add_scaled(const Design& design, const std::vector<double>& pen_gx,
                                   const std::vector<double>& pen_gy,
                                   std::vector<double>& grad_x,
                                   std::vector<double>& grad_y) const {
  // Normalize the penalty gradient to an η fraction of the incoming
  // (wirelength + density) gradient norm, then add.
  const double base_norm = abs_sum(grad_x, grad_y);
  const double pen_norm = abs_sum(pen_gx, pen_gy);
  if (pen_norm > 1e-30 && base_norm > 0.0) {
    const double s = config_.eta * base_norm / pen_norm;
    const auto& movable = design.movable_cells();
    for (std::size_t i = 0; i < movable.size(); ++i) {
      grad_x[static_cast<std::size_t>(movable[i])] += s * pen_gx[i];
      grad_y[static_cast<std::size_t>(movable[i])] += s * pen_gy[i];
    }
  }
}

bool CongestionPenalty::predict(const Design& design, GridMap& out) {
  if (traits_.uses_lookahead && !history_.ready()) return false;
  nn::NoGradGuard guard;
  nn::Tensor hi_input, lo_input, context;
  build_feature_inputs(design, /*with_grad=*/false, hi_input, lo_input, context);

  nn::Tensor prediction;
  if (remote_forward_) {
    // Sharded-serving path: g (and feature assembly) ran locally above;
    // delegate only the congestion forward f. A shed / deadline /
    // breaker / model error falls through to the local path below —
    // predict() degrades, it does not fail.
    try {
      prediction = remote_forward_(assemble_f_input(hi_input, lo_input, context));
      ++stats_.remote_forwards;
      penalty_counter("remote_forwards").add(1);
    } catch (const std::exception& e) {
      ++stats_.remote_fallbacks;
      penalty_counter("remote_fallbacks").add(1);
      LACO_LOG_WARN << "CongestionPenalty: remote congestion forward failed (" << e.what()
                    << "); using local path";
    }
  }
  if (!prediction.defined() && plan::plans_enabled()) {
    // Inference-only path: route the whole f∘g chain through the
    // compiled-plan cache (docs/PLAN.md). Keyed on the congestion net's
    // identity with a variant offset so the serve-side per-network plans
    // (ModelKind-keyed) never collide on the same pointer.
    std::vector<nn::Tensor> inputs;
    if (traits_.uses_lookahead) {
      inputs = {hi_input, lo_input, context};
    } else {
      inputs = {hi_input};
    }
    plan::PlanKey key{models_.congestion.get(), 1000 + static_cast<int>(models_.scheme),
                      plan::shape_signature(inputs)};
    auto plan_ptr = plan::shared_plan_cache().get_or_compile(
        key, std::static_pointer_cast<const void>(models_.congestion), [&]() {
          return plan::compile(
              [this](const std::vector<nn::Tensor>& in) {
                return traits_.uses_lookahead ? model_forward(in[0], in[1], in[2])
                                              : model_forward(in[0], nn::Tensor(), nn::Tensor());
              },
              inputs);
        });
    if (plan_ptr) prediction = plan_ptr->run(inputs, plan_ws_);
  }
  if (!prediction.defined()) prediction = model_forward(hi_input, lo_input, context);
  out = tensor_to_gridmap(prediction, 0, 0, design.core());
  return true;
}

namespace {

// Snapshot codec limits: frame grids are bounded by the feature
// configs; anything past these is a corrupt length field.
constexpr std::uint64_t kMaxSnapshotFrames = 64;
constexpr int kMaxSnapshotGridSide = 1 << 14;

void save_grid(serial::Writer& w, const GridMap& grid) {
  w.i32(grid.nx());
  w.i32(grid.ny());
  const Rect& region = grid.region();
  w.f64(region.xl);
  w.f64(region.yl);
  w.f64(region.xh);
  w.f64(region.yh);
  w.doubles(grid.data());
}

GridMap load_grid(serial::Reader& r) {
  const int nx = r.i32("grid nx");
  const int ny = r.i32("grid ny");
  if (nx < 0 || ny < 0 || nx > kMaxSnapshotGridSide || ny > kMaxSnapshotGridSide) {
    r.fail("implausible grid dimensions " + std::to_string(nx) + "x" + std::to_string(ny));
  }
  Rect region;
  region.xl = r.f64("grid region xl");
  region.yl = r.f64("grid region yl");
  region.xh = r.f64("grid region xh");
  region.yh = r.f64("grid region yh");
  std::vector<double> data = r.doubles("grid data");
  if (data.size() != static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny)) {
    r.fail("grid data length does not match dimensions");
  }
  GridMap grid(nx, ny, region);
  grid.data() = std::move(data);
  return grid;
}

void save_frame(serial::Writer& w, const FeatureFrame& frame) {
  save_grid(w, frame.rudy);
  save_grid(w, frame.pin_rudy);
  save_grid(w, frame.macro_region);
  save_grid(w, frame.flow_x);
  save_grid(w, frame.flow_y);
  w.i32(frame.iteration);
}

FeatureFrame load_frame(serial::Reader& r) {
  FeatureFrame frame;
  frame.rudy = load_grid(r);
  frame.pin_rudy = load_grid(r);
  frame.macro_region = load_grid(r);
  frame.flow_x = load_grid(r);
  frame.flow_y = load_grid(r);
  frame.iteration = r.i32("frame iteration");
  return frame;
}

}  // namespace

void CongestionPenalty::save_state(serial::Writer& w) const {
  w.u32(kVersion);
  const FrameHistoryState hist = history_.state();
  w.u64(hist.frames.size());
  for (const FeatureFrame& frame : hist.frames) save_frame(w, frame);
  w.doubles(hist.prev_x);
  w.doubles(hist.prev_y);
  w.flag(hist.has_positions);
  w.u64(stats_.applications);
  w.u64(stats_.learned_applications);
  w.u64(stats_.learned_failures);
  w.u64(stats_.analytic_fallbacks);
  w.u64(stats_.degradations);
  w.u64(stats_.remote_forwards);
  w.u64(stats_.remote_fallbacks);
  w.i32(consecutive_failures_);
  w.i32(degraded_remaining_);
}

void CongestionPenalty::restore_state(serial::Reader& r) {
  const std::uint32_t version = r.u32("penalty state version");
  if (version != kVersion) {
    r.fail("unsupported penalty state version " + std::to_string(version));
  }
  FrameHistoryState hist;
  const std::uint64_t frames = r.u64("frame count");
  if (frames > kMaxSnapshotFrames) {
    r.fail("implausible frame count " + std::to_string(frames));
  }
  hist.frames.reserve(static_cast<std::size_t>(frames));
  for (std::uint64_t i = 0; i < frames; ++i) hist.frames.push_back(load_frame(r));
  hist.prev_x = r.doubles("previous x positions");
  hist.prev_y = r.doubles("previous y positions");
  hist.has_positions = r.flag("has positions");
  history_.restore(std::move(hist));
  stats_.applications = r.u64("applications");
  stats_.learned_applications = r.u64("learned applications");
  stats_.learned_failures = r.u64("learned failures");
  stats_.analytic_fallbacks = r.u64("analytic fallbacks");
  stats_.degradations = r.u64("degradations");
  stats_.remote_forwards = r.u64("remote forwards");
  stats_.remote_fallbacks = r.u64("remote fallbacks");
  consecutive_failures_ = r.i32("consecutive failures");
  degraded_remaining_ = r.i32("degraded remaining");
}

}  // namespace laco
