#include "laco/pipeline.hpp"

#include <filesystem>
#include <functional>
#include <sstream>

#include "train/trace_io.hpp"

#include "nn/ops.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace laco {

PipelineConfig default_pipeline_config() {
  PipelineConfig cfg;
  cfg.scale = 0.01;
  cfg.runs_per_design = 2;

  // Snapshots: K scaled down with the shorter CPU placements (paper uses
  // K=50 over ~600 iterations; we keep the same frames-per-run ratio).
  cfg.trace.snapshot.spacing = 20;
  cfg.trace.snapshot.features = FeatureConfig{64, 64, QuasiVoxScheme::kWeightedSum, true};
  cfg.trace.snapshot.lookahead_features =
      FeatureConfig{32, 32, QuasiVoxScheme::kWeightedSum, true};

  cfg.trace.placer.bin_nx = 32;
  cfg.trace.placer.bin_ny = 32;
  cfg.trace.placer.max_iterations = 260;
  cfg.trace.placer.min_iterations = 80;

  cfg.trace.router.grid.nx = 64;
  cfg.trace.router.grid.ny = 64;

  cfg.lookahead_model.frames = 4;
  cfg.lookahead_model.base_width = 8;
  cfg.lookahead_model.inception_blocks = 1;
  cfg.lookahead_model.groups = 4;

  cfg.congestion_model.base_width = 8;

  cfg.lookahead_trainer.epochs = 6;
  cfg.congestion_trainer.epochs = 8;
  return cfg;
}

PenaltyConfig Pipeline::penalty_config() const {
  PenaltyConfig pc;
  pc.features_hi = config_.trace.snapshot.features;
  pc.features_lo = config_.trace.snapshot.lookahead_features;
  pc.frames = config_.lookahead_model.frames;
  pc.spacing = config_.trace.snapshot.spacing;
  pc.start_iteration = config_.trace.snapshot.spacing * config_.lookahead_model.frames;
  pc.apply_every = 5;
  return pc;
}

const std::vector<PlacementTrace>& Pipeline::traces_for(const std::vector<std::string>& names) {
  std::ostringstream key_stream;
  for (const std::string& name : names) key_stream << name << '|';
  key_stream << "scale" << config_.scale << "_runs" << config_.runs_per_design << "_K"
             << config_.trace.snapshot.spacing << "_it" << config_.trace.placer.max_iterations
             << "_g" << config_.trace.snapshot.features.nx << "x"
             << config_.trace.snapshot.lookahead_features.nx << "_q"
             << static_cast<int>(config_.trace.snapshot.features.scheme)
             << static_cast<int>(config_.trace.snapshot.lookahead_features.scheme);
  const std::string key = key_stream.str();
  auto it = trace_cache_.find(key);
  if (it != trace_cache_.end()) return it->second;

  std::string cache_path;
  if (!trace_cache_dir_.empty()) {
    cache_path = trace_cache_dir_ + "/" +
                 std::to_string(std::hash<std::string>{}(key)) + ".traces";
    std::filesystem::create_directories(trace_cache_dir_);
    if (std::filesystem::exists(cache_path)) {
      try {
        auto traces = load_traces_file(cache_path);
        LACO_LOG_INFO << "trace cache hit: " << cache_path;
        return trace_cache_.emplace(key, std::move(traces)).first->second;
      } catch (const std::exception& e) {
        LACO_LOG_WARN << "trace cache unreadable (" << e.what() << "); recollecting";
      }
    }
  }
  obs::TraceSpan span("pipeline: collect traces", "pipeline");
  auto traces = collect_traces(names, config_.scale, config_.runs_per_design, config_.trace);
  if (!cache_path.empty()) {
    if (!save_traces_file(traces, cache_path)) {
      LACO_LOG_WARN << "failed to write trace cache " << cache_path;
    }
  }
  return trace_cache_.emplace(key, std::move(traces)).first->second;
}

LacoModels Pipeline::train_models(LacoScheme scheme, const std::vector<PlacementTrace>& traces) {
  obs::TraceSpan span("pipeline: train models", "pipeline");
  const SchemeTraits traits = traits_of(scheme);
  LacoModels models;
  models.scheme = scheme;
  models.scale_hi = fit_congestion_scale(traces);
  models.scale_lo = fit_lookahead_scale(traces);

  if (traits.uses_lookahead) {
    LookAheadConfig gc = config_.lookahead_model;
    gc.channels_per_frame = g_channels(scheme);
    gc.with_vae = traits.uses_vae;
    nn::reset_init_seed(0x5eed + static_cast<unsigned>(scheme));
    models.lookahead = std::make_shared<LookAheadModel>(gc);
    const auto samples = build_lookahead_samples(traces, gc.frames);
    LACO_LOG_INFO << "training look-ahead model for " << to_string(scheme) << " on "
                  << samples.size() << " samples";
    train_lookahead(*models.lookahead, samples, models.scale_lo, config_.lookahead_trainer);
  }

  CongestionFcnConfig fc = config_.congestion_model;
  fc.in_channels = f_in_channels(scheme);
  nn::reset_init_seed(0xf00d + static_cast<unsigned>(scheme));
  models.congestion = std::make_shared<CongestionFcn>(fc);
  const auto f_samples = build_f_samples(scheme, models, traces);
  LACO_LOG_INFO << "training congestion model for " << to_string(scheme) << " on "
                << f_samples.size() << " samples";
  train_congestion(*models.congestion, f_samples, config_.congestion_trainer);
  return models;
}

nn::Tensor Pipeline::assemble_f_input(const LacoModels& models, const PlacementTrace& trace,
                                      std::size_t t) const {
  const SchemeTraits traits = traits_of(models.scheme);
  const int f_short = traits.uses_lookahead ? (traits.f_uses_flow ? 5 : 3) : 3;
  nn::Tensor hi = frame_to_tensor(trace.snapshots[t].frame, models.scale_hi, f_short);
  if (!traits.uses_lookahead) return hi;

  const int nc_g = models.lookahead->config().channels_per_frame;
  const int frames = models.lookahead->config().frames;
  std::vector<const FeatureFrame*> window;
  for (int c = frames - 1; c >= 0; --c) {
    window.push_back(&trace.snapshots[t - static_cast<std::size_t>(c)].lo_frame);
  }
  nn::Tensor g_in = frames_to_tensor(window, models.scale_lo, nc_g);
  nn::Tensor prediction = models.lookahead->forward(g_in).prediction;
  if (!traits.f_uses_flow && nc_g > 3) prediction = nn::slice_channels(prediction, 0, 3);
  nn::Tensor pred_hi = nn::upsample_bilinear(prediction, hi.dim(2), hi.dim(3));
  return nn::cat_channels({pred_hi, hi});
}

std::vector<CongestionSample> Pipeline::build_f_samples(
    LacoScheme scheme, const LacoModels& models,
    const std::vector<PlacementTrace>& traces) const {
  const SchemeTraits traits = traits_of(scheme);
  if (!traits.uses_lookahead) return build_dreamcong_samples(traces, models.scale_hi);

  // Look-ahead schemes: f learns from g's predicted inputs across the
  // whole placement trajectory (this is what de-shifts its inputs).
  nn::NoGradGuard guard;
  const int frames = models.lookahead->config().frames;
  std::vector<CongestionSample> samples;
  for (const PlacementTrace& trace : traces) {
    for (std::size_t t = static_cast<std::size_t>(frames) - 1; t < trace.snapshots.size(); ++t) {
      CongestionSample sample;
      sample.input = assemble_f_input(models, trace, t).detach();
      sample.label = gridmap_to_tensor(trace.congestion_label);
      samples.push_back(std::move(sample));
    }
  }
  return samples;
}

PredictionQuality Pipeline::evaluate_prediction(const LacoModels& models,
                                                const std::vector<PlacementTrace>& traces) const {
  PredictionQuality total;
  const auto per_design = evaluate_prediction_per_design(models, traces);
  for (const auto& [name, q] : per_design) {
    total.nrms += q.nrms * q.samples;
    total.ssim += q.ssim * q.samples;
    total.samples += q.samples;
  }
  if (total.samples > 0) {
    total.nrms /= total.samples;
    total.ssim /= total.samples;
  }
  return total;
}

std::map<std::string, PredictionQuality> Pipeline::evaluate_prediction_per_design(
    const LacoModels& models, const std::vector<PlacementTrace>& traces) const {
  nn::NoGradGuard guard;
  // All schemes are scored on the same snapshot windows — those where a
  // look-ahead model has enough history — so DREAM-Cong is not penalized
  // extra for the (unpredictable-for-LACO) earliest iterations.
  const int frames = config_.lookahead_model.frames;
  std::map<std::string, PredictionQuality> out;
  for (const PlacementTrace& trace : traces) {
    PredictionQuality& q = out[trace.design_name];
    // Mid-placement windows only: the last snapshot is the (easy)
    // end-of-placement case every scheme fits by construction.
    for (std::size_t t = static_cast<std::size_t>(frames) - 1; t + 1 < trace.snapshots.size();
         ++t) {
      nn::Tensor input = assemble_f_input(models, trace, t);
      nn::Tensor prediction = models.congestion->forward(input);
      const GridMap pred_map = tensor_to_gridmap(prediction, 0, 0, trace.congestion_label.region());
      q.nrms += nrms(pred_map, trace.congestion_label);
      q.ssim += ssim(pred_map, trace.congestion_label);
      q.samples += 1;
    }
  }
  for (auto& [name, q] : out) {
    if (q.samples > 0) {
      q.nrms /= q.samples;
      q.ssim /= q.samples;
    }
  }
  return out;
}

}  // namespace laco
