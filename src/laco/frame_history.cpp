#include "laco/frame_history.hpp"

#include <stdexcept>
#include <utility>

namespace laco {

FrameHistory::FrameHistory(int frames, int spacing) : frames_(frames), spacing_(spacing) {
  if (frames < 2) throw std::invalid_argument("FrameHistory: need at least 2 frames");
  if (spacing < 1) throw std::invalid_argument("FrameHistory: spacing must be >= 1");
}

void FrameHistory::capture(FeatureFrame frame, const Design& design) {
  history_.push_back(std::move(frame));
  while (static_cast<int>(history_.size()) > frames_ - 1) history_.pop_front();
  design.get_movable_positions(prev_x_, prev_y_);
  has_positions_ = true;
}

std::vector<const FeatureFrame*> FrameHistory::context() const {
  std::vector<const FeatureFrame*> out;
  out.reserve(history_.size());
  for (const FeatureFrame& frame : history_) out.push_back(&frame);
  return out;
}

void FrameHistory::clear() {
  history_.clear();
  prev_x_.clear();
  prev_y_.clear();
  has_positions_ = false;
}

FrameHistoryState FrameHistory::state() const {
  FrameHistoryState s;
  s.frames.assign(history_.begin(), history_.end());
  s.prev_x = prev_x_;
  s.prev_y = prev_y_;
  s.has_positions = has_positions_;
  return s;
}

void FrameHistory::restore(FrameHistoryState state) {
  history_.clear();
  for (FeatureFrame& frame : state.frames) history_.push_back(std::move(frame));
  while (static_cast<int>(history_.size()) > frames_ - 1) history_.pop_front();
  prev_x_ = std::move(state.prev_x);
  prev_y_ = std::move(state.prev_y);
  has_positions_ = state.has_positions;
}

}  // namespace laco
