#include "laco/laco_placer.hpp"

#include <sstream>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/serial.hpp"

namespace laco {

LacoRunResult run_laco_placement(Design& design, const LacoPlacerConfig& config,
                                 const LacoModels* models) {
  LacoRunResult result;
  const SchemeTraits traits = traits_of(config.scheme);

  GlobalPlacer placer(design, config.placer);
  placer.set_runtime_breakdown(&result.breakdown);

  std::optional<CongestionPenalty> penalty;
  if (traits.uses_penalty) {
    if (models == nullptr) {
      throw std::invalid_argument("run_laco_placement: scheme " + to_string(config.scheme) +
                                  " requires trained models");
    }
    if (models->scheme != config.scheme) {
      throw std::invalid_argument("run_laco_placement: models trained for " +
                                  to_string(models->scheme) + ", requested " +
                                  to_string(config.scheme));
    }
    penalty.emplace(config.penalty, *models);
    penalty->set_runtime_breakdown(&result.breakdown);
    placer.set_penalty_hook([&penalty](const Design& d, int iter, std::vector<double>& gx,
                                       std::vector<double>& gy) {
      return (*penalty)(d, iter, gx, gy);
    });
    // Snapshot codec: the penalty's frame history and degradation state
    // ride along in placement snapshots as an opaque blob, so resumed
    // runs replay the penalty schedule bitwise (docs/RELIABILITY.md).
    placer.set_penalty_state_codec(
        [&penalty]() {
          std::ostringstream out;
          serial::Writer w(out);
          penalty->save_state(w);
          return out.str();
        },
        [&penalty](const std::string& blob) {
          if (blob.empty()) return;  // snapshot predates the penalty hook
          std::istringstream in(blob);
          serial::Reader r(in, "<placement snapshot>", "restore_penalty_state");
          penalty->restore_state(r);
        });
  }

  {
    obs::TraceSpan span("laco: global placement", "laco");
    result.placement = placer.run();
  }
  if (penalty) result.penalty_stats = penalty->stats();
  {
    obs::TraceSpan span("laco: evaluation routing", "laco");
    result.evaluation = evaluate_placement(design, config.router);
  }
  return result;
}

}  // namespace laco
