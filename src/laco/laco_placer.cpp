#include "laco/laco_placer.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace laco {

LacoRunResult run_laco_placement(Design& design, const LacoPlacerConfig& config,
                                 const LacoModels* models) {
  LacoRunResult result;
  const SchemeTraits traits = traits_of(config.scheme);

  GlobalPlacer placer(design, config.placer);
  placer.set_runtime_breakdown(&result.breakdown);

  std::optional<CongestionPenalty> penalty;
  if (traits.uses_penalty) {
    if (models == nullptr) {
      throw std::invalid_argument("run_laco_placement: scheme " + to_string(config.scheme) +
                                  " requires trained models");
    }
    if (models->scheme != config.scheme) {
      throw std::invalid_argument("run_laco_placement: models trained for " +
                                  to_string(models->scheme) + ", requested " +
                                  to_string(config.scheme));
    }
    penalty.emplace(config.penalty, *models);
    penalty->set_runtime_breakdown(&result.breakdown);
    placer.set_penalty_hook([&penalty](const Design& d, int iter, std::vector<double>& gx,
                                       std::vector<double>& gy) {
      return (*penalty)(d, iter, gx, gy);
    });
  }

  {
    obs::TraceSpan span("laco: global placement", "laco");
    result.placement = placer.run();
  }
  if (penalty) result.penalty_stats = penalty->stats();
  {
    obs::TraceSpan span("laco: evaluation routing", "laco");
    result.evaluation = evaluate_placement(design, config.router);
  }
  return result;
}

}  // namespace laco
