// Rolling history of look-ahead-resolution feature frames captured every
// K placement iterations — the {X_{i-(C-1)K}, ..., X_{i-K}} context the
// look-ahead model consumes (paper Eq. 11), plus the cell positions at
// the last capture (needed to compute the current frame's cell flow).
#pragma once

#include <deque>
#include <vector>

#include "features/feature_stack.hpp"

namespace laco {

/// Complete capture of a FrameHistory, exported for placement snapshots
/// (CongestionPenalty::save_state) and restored on resume. Frames are
/// oldest-first, matching context() order.
struct FrameHistoryState {
  std::vector<FeatureFrame> frames;
  std::vector<double> prev_x, prev_y;
  bool has_positions = false;
};

class FrameHistory {
 public:
  /// `frames` = C (total context length including the current frame);
  /// `spacing` = K.
  FrameHistory(int frames, int spacing);

  int spacing() const { return spacing_; }
  bool due(int iteration) const { return iteration % spacing_ == 0; }

  /// Stores a captured frame and the positions it was computed at.
  void capture(FeatureFrame frame, const Design& design);

  /// True once C−1 past frames are available (the current frame supplies
  /// the C-th).
  bool ready() const { return static_cast<int>(history_.size()) >= frames_ - 1; }

  /// The most recent C−1 stored frames, oldest first.
  std::vector<const FeatureFrame*> context() const;

  bool has_positions() const { return has_positions_; }
  const std::vector<double>& prev_x() const { return prev_x_; }
  const std::vector<double>& prev_y() const { return prev_y_; }

  void clear();

  /// Copies out the rolling state for snapshotting.
  FrameHistoryState state() const;
  /// Replaces the rolling state; restoring a state() capture and
  /// continuing reproduces the uninterrupted history bitwise.
  void restore(FrameHistoryState state);

 private:
  int frames_;
  int spacing_;
  std::deque<FeatureFrame> history_;
  std::vector<double> prev_x_, prev_y_;
  bool has_positions_ = false;
};

}  // namespace laco
