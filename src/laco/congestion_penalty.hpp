// The congestion penalty L(x, y) and its gradient chain — the paper's
// central mechanism (Sec. III-A and III-E):
//
//   L_i = (1/MN) ‖ f ∘ g(X_{i-(C-1)K}, ..., X_i) ‖²        (Eq. 12)
//
// For look-ahead schemes, the current frame X_i (at both the look-ahead
// and congestion resolutions) is a differentiable input: autograd
// produces ∇_{X_i} L, and the analytic feature backward passes (RUDY /
// PinRUDY / cell-flow, Eq. 17) chain it to ∇_{x,y} L, which is added to
// the placement gradient with weight η. DREAM-Cong is the degenerate
// case f(X_i) without g.
//
// η is interpreted as a *fraction of the incoming gradient norm* (the
// penalty gradient is rescaled so its L1 norm is η × the L1 norm of the
// wirelength+density gradient). This keeps the trade-off stable across
// designs and scales — a deviation from the paper's fixed η, documented
// in DESIGN.md.
#pragma once

#include <memory>

#include "features/feature_stack.hpp"
#include "laco/frame_history.hpp"
#include "models/congestion_fcn.hpp"
#include "models/lookahead_simvp.hpp"
#include "models/model_io.hpp"
#include "placer/global_placer.hpp"
#include "train/scheme.hpp"
#include "util/timer.hpp"

namespace laco {

/// Trained models shared by penalty instances and the pipeline.
struct LacoModels {
  LacoScheme scheme = LacoScheme::kCellFlowKL;
  std::shared_ptr<CongestionFcn> congestion;   ///< f
  std::shared_ptr<LookAheadModel> lookahead;   ///< g (null unless look-ahead)
  FeatureScale scale_hi;  ///< congestion-resolution normalization
  FeatureScale scale_lo;  ///< look-ahead-resolution normalization
};

struct PenaltyConfig {
  FeatureConfig features_hi;  ///< congestion-model grid (e.g. 64×64)
  FeatureConfig features_lo;  ///< look-ahead grid (e.g. 32×32)
  int frames = 4;             ///< C
  int spacing = 50;           ///< K
  double eta = 0.25;          ///< penalty gradient weight (norm fraction)
  int start_iteration = 50;   ///< no penalty before this iteration
  int apply_every = 5;        ///< penalty recomputed every n iterations
};

class CongestionPenalty {
 public:
  CongestionPenalty(PenaltyConfig config, LacoModels models);

  /// GlobalPlacer::PenaltyHook: returns L and accumulates η-scaled
  /// gradients into the CellId-indexed buffers.
  double operator()(const Design& design, int iteration, std::vector<double>& grad_x,
                    std::vector<double>& grad_y);

  void set_runtime_breakdown(RuntimeBreakdown* breakdown) { breakdown_ = breakdown; }

  /// Predicted congestion map at the design's current state (inference
  /// only, no gradients) — used for NRMS/SSIM evaluation mid-placement.
  /// Returns false (and leaves `out` untouched) when history is not yet
  /// ready for a look-ahead prediction.
  bool predict(const Design& design, GridMap& out);

  const PenaltyConfig& config() const { return config_; }

 private:
  /// Assembles f's input tensor; `hi_input`/`lo_input` receive the
  /// differentiable current-frame tensors (undefined if unused).
  nn::Tensor build_input(const Design& design, nn::Tensor& hi_input, nn::Tensor& lo_input,
                         bool with_grad);
  FeatureFrame compute_frame(const Design& design, const FeatureExtractor& extractor,
                             const std::vector<double>* px, const std::vector<double>* py,
                             int iteration) const;

  PenaltyConfig config_;
  LacoModels models_;
  SchemeTraits traits_;
  FeatureExtractor hi_extractor_;
  FeatureExtractor lo_extractor_;
  FrameHistory history_;
  // Positions at the last history tick, at congestion resolution reuse.
  RuntimeBreakdown* breakdown_ = nullptr;
};

}  // namespace laco
